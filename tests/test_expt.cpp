#include <gtest/gtest.h>

#include "algo/registry.hpp"
#include "expt/report.hpp"
#include "expt/trial.hpp"
#include "expt/workloads.hpp"
#include "graph/metrics.hpp"

namespace nc {
namespace {

TEST(Workloads, TheoremInstanceMeetsPremise) {
  const double eps = 0.2;
  const auto inst = make_theorem_instance(150, 0.4, eps, 0.08, 0.2, 7);
  EXPECT_EQ(inst.planted.size(), 60u);
  // The premise of Theorem 5.7: D is an eps^3-near clique of size delta*n.
  EXPECT_TRUE(is_near_clique(inst.graph, inst.planted, eps * eps * eps));
}

TEST(Workloads, DeterministicInSeed) {
  const auto a = make_theorem_instance(100, 0.5, 0.2, 0.1, 0.2, 3);
  const auto b = make_theorem_instance(100, 0.5, 0.2, 0.1, 0.2, 3);
  EXPECT_EQ(a.graph.edge_list(), b.graph.edge_list());
  EXPECT_EQ(a.planted, b.planted);
  const auto c = make_theorem_instance(100, 0.5, 0.2, 0.1, 0.2, 4);
  EXPECT_NE(a.graph.edge_list(), c.graph.edge_list());
}

TEST(Workloads, FamiliesProduceExpectedShapes) {
  EXPECT_EQ(make_linear_instance(100, 0.2, 1).planted.size(), 50u);
  const auto sub = make_sublinear_instance(500, 0.5, 2);
  EXPECT_GT(sub.planted.size(), 200u);
  EXPECT_LT(sub.planted.size(), 500u);
  const auto ce = make_counterexample_instance(100, 0.5, 3);
  EXPECT_EQ(ce.planted.size(), 50u);
  const auto barbell = make_barbell_instance(64, false);
  EXPECT_EQ(barbell.planted.size(), 16u);
  const auto web = make_web_instance(200, 30, 0.2, 4);
  EXPECT_EQ(web.planted.size(), 30u);
  EXPECT_FALSE(describe_instance("planted", 100, 0.5).empty());
}

TEST(Theorem57, BoundsFormula) {
  // (1 - 13/2 eps)|D| - eps^{-2}: with eps=0.1, |D|=1000 this is 250.
  const auto b = theorem57_bounds(0.1, 0.5, 1000);
  EXPECT_NEAR(b.min_size, 0.35 * 1000 - 100.0, 1e-9);
  EXPECT_NEAR(b.max_eps_out, (1.0 / 0.35) * (0.1 / 0.5), 1e-9);
  // Small planted sets: the -eps^{-2} term dominates and the floor applies.
  EXPECT_DOUBLE_EQ(theorem57_bounds(0.1, 0.5, 10).min_size, 2.0);
  EXPECT_DOUBLE_EQ(theorem57_bounds(0.1, 0.5, 100).min_size, 2.0);
}

TEST(TrialRunner, AggregatesDeterministically) {
  TrialSpec spec;
  spec.make_instance = [](std::uint64_t seed) {
    return make_theorem_instance(60, 0.5, 0.2, 0.08, 0.2, seed);
  };
  spec.run = [](const Graph& g, std::uint64_t seed) {
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.08;
    cfg.net.seed = seed;
    cfg.net.max_rounds = 2'000'000;
    return to_algo_result(run_dist_near_clique(g, cfg));
  };
  spec.success = [](const Instance& inst, const AlgoResult& res) {
    return theorem57_success(inst, res, 0.2, 0.5);
  };
  const auto a = run_trials(spec, 5, 1000);
  const auto b = run_trials(spec, 5, 1000);
  EXPECT_EQ(a.trials, 5u);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_GE(a.success_rate(), 0.0);
  EXPECT_LE(a.success_rate(), 1.0);
  const auto iv = a.success_interval();
  EXPECT_LE(iv.lo, a.success_rate());
  EXPECT_GE(iv.hi, a.success_rate());
}

TEST(Report, HeaderAndCellsAlign) {
  const auto headers = stats_headers();
  TrialStats stats;
  stats.trials = 4;
  stats.successes = 2;
  stats.rounds.add(10);
  stats.out_size.add(5);
  stats.out_density.add(0.9);
  stats.recall.add(0.8);
  stats.max_msg_bits.add(40);
  std::vector<std::string> row;
  append_stats_cells(row, stats);
  EXPECT_EQ(row.size(), headers.size());
}

}  // namespace
}  // namespace nc
