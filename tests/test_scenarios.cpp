#include <gtest/gtest.h>

#include <memory>

#include "core/driver.hpp"
#include "core/protocol.hpp"
#include "expt/workloads.hpp"
#include "graph/metrics.hpp"
#include "runtime/network.hpp"

namespace nc {
namespace {

// ------------------------------------------- Section 6 impossibility ------

/// Runs DistNearClique for exactly `rounds` rounds on `g` and returns the
/// per-node labels at that point (kBottom where undecided).
std::vector<Label> labels_after_rounds(const Graph& g, std::uint64_t rounds,
                                       std::uint64_t seed) {
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.15;
  cfg.net.seed = seed;
  cfg.net.max_rounds = 10'000'000;
  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  Network net(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  net.run_rounds(rounds);
  std::vector<Label> out(g.n(), kBottom);
  for (NodeId v = 0; v < g.n(); ++v) {
    out[v] = static_cast<DistNearCliqueNode&>(net.node(v)).label();
  }
  return out;
}

TEST(Impossibility, BSideCannotDistinguishScenariosBeforePathRounds) {
  // Section 6: with clique A, path P, clique B, the vertices of B must
  // behave identically for < |P| rounds whether or not A's edges exist —
  // because no information can cross the path faster than one hop per round.
  const NodeId n = 64;
  const auto with_a = make_barbell_instance(n, false);
  const auto without_a = make_barbell_instance(n, true);
  const auto lay = barbell_layout(n);
  const std::uint64_t horizon = lay.path_len / 2;  // well below |P|
  for (const std::uint64_t seed : {3ULL, 4ULL}) {
    const auto labels_with = labels_after_rounds(with_a.graph, horizon, seed);
    const auto labels_without =
        labels_after_rounds(without_a.graph, horizon, seed);
    for (NodeId v = lay.b_first; v < n; ++v) {
      EXPECT_EQ(labels_with[v], labels_without[v]) << "node " << v;
    }
  }
}

TEST(Impossibility, BothCliquesMayBeOutputAsSeparateNearCliques) {
  // The paper's resolution: the algorithm outputs a *disjoint collection*;
  // it never needs to suppress B globally. Run to completion and check that
  // any output cluster is a genuine near-clique on its side.
  const auto inst = make_barbell_instance(48, false);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.2;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 10'000'000;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(res.aborted());
  for (const auto& [label, members] : res.clusters()) {
    (void)label;
    const double bound =
        static_cast<double>(inst.graph.n()) * 0.2 /
        static_cast<double>(members.size());
    EXPECT_TRUE(is_near_clique(inst.graph, members, bound));
  }
}

// --------------------------------- E4 head-to-head on the Claim 1 family --

TEST(Counterexample, DistNearCliqueSucceedsWhereShinglesCannot) {
  // On G_n the planted clique C = C1 ∪ C2 has delta*n nodes. DistNearClique
  // must find a large near-clique with constant probability; across a few
  // seeds at least one run should recover a large dense set.
  const NodeId n = 120;
  const double delta = 0.5;
  int good = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = make_counterexample_instance(n, delta, seed);
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.05;
    cfg.net.seed = seed;
    cfg.net.max_rounds = 4'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    const auto best = res.largest_cluster();
    if (best.size() >= 30 && set_density(inst.graph, best) >= 0.8) ++good;
  }
  EXPECT_GE(good, 1);
}

// --------------------------------------------------- motivation domains ---

TEST(WebCommunities, PlantedCommunityDiscoverable) {
  const auto inst = make_web_instance(250, 35, 0.2, 11);
  int good = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.03;
    cfg.net.seed = seed;
    cfg.net.max_rounds = 4'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    const auto best = res.largest_cluster();
    std::size_t overlap = 0;
    for (const NodeId v : best) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++overlap;
      }
    }
    if (overlap >= 20) ++good;
  }
  EXPECT_GE(good, 1);
}

}  // namespace
}  // namespace nc
