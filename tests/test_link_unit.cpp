#include <gtest/gtest.h>

#include <memory>

#include "runtime/link.hpp"
#include "runtime/message.hpp"
#include "runtime/stream.hpp"

// Direct unit tests of the link layer: scheduling, chunking, round-robin,
// EOS piggybacking and pruning — independent of the Network round loop.

namespace nc {
namespace {

constexpr unsigned kHeader = 16;

OutChannel attach(Link& link, const StreamKey& key) {
  OutChannel ch;
  link.add_stream(key, ch.state());
  return ch;
}

TEST(SymbolBuffer, PacksMixedWidths) {
  SymbolBuffer buf;
  buf.put(0b101, 3);
  buf.put_bit(true);
  buf.put(0xffff, 16);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.bit_size(), 20u);
  SymbolCursor cur(std::make_shared<SymbolBuffer>(buf));
  EXPECT_EQ(cur.available(), 3u);
  EXPECT_EQ(cur.peek_width(), 3u);
  EXPECT_EQ(cur.pop(), 0b101u);
  EXPECT_EQ(cur.pop(), 1u);
  EXPECT_EQ(cur.pop(), 0xffffu);
  EXPECT_EQ(cur.available(), 0u);
}

TEST(SymbolBuffer, CursorSeesAppendsAfterConstruction) {
  auto buf = std::make_shared<SymbolBuffer>();
  SymbolCursor cur(buf);
  EXPECT_EQ(cur.available(), 0u);
  buf->put(7, 8);
  EXPECT_EQ(cur.available(), 1u);  // growth visible: pipelining depends on it
  EXPECT_EQ(cur.pop(), 7u);
}

TEST(Link, NothingPendingWhenEmpty) {
  Link link;
  EXPECT_FALSE(link.has_pending());
  EXPECT_FALSE(link.schedule(100, kHeader).has_value());
}

TEST(Link, SchedulesWithinBudgetAndChunks) {
  Link link;
  auto ch = attach(link, StreamKey{1, 0, 0});
  for (int i = 0; i < 10; ++i) ch.put(static_cast<std::uint64_t>(i), 8);
  ch.close();
  // Budget: header + 2 symbols and a bit of slack.
  std::vector<std::uint64_t> got;
  bool eos = false;
  while (auto d = link.schedule(kHeader + 20, kHeader)) {
    EXPECT_LE(d->wire_bits, kHeader + 20u);
    for (const auto& [v, w] : d->symbols) {
      EXPECT_EQ(w, 8u);
      got.push_back(v);
    }
    eos = eos || d->eos;
  }
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], static_cast<std::uint64_t>(i));
  EXPECT_TRUE(eos);
  EXPECT_FALSE(link.has_pending());
}

TEST(Link, EosPiggybacksOnLastChunk) {
  Link link;
  auto ch = attach(link, StreamKey{1, 0, 0});
  ch.put(1, 4);
  ch.close();
  const auto d = link.schedule(kHeader + 64, kHeader);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->eos);
  EXPECT_EQ(d->symbols.size(), 1u);
  EXPECT_FALSE(link.schedule(kHeader + 64, kHeader).has_value());
}

TEST(Link, EosOnlyMessageForEmptyClosedStream) {
  Link link;
  auto ch = attach(link, StreamKey{2, 7, 0});
  ch.close();  // header-only stream (e.g. kTreeFinal)
  const auto d = link.schedule(kHeader + 8, kHeader);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->eos);
  EXPECT_TRUE(d->symbols.empty());
  EXPECT_EQ(d->wire_bits, kHeader);
}

TEST(Link, RoundRobinAlternatesStreams) {
  Link link;
  auto a = attach(link, StreamKey{1, 0, 0});
  auto b = attach(link, StreamKey{2, 0, 0});
  for (int i = 0; i < 4; ++i) {
    a.put(1, 8);
    b.put(2, 8);
  }
  a.close();
  b.close();
  // One symbol fits per message: kinds must alternate.
  std::vector<std::uint16_t> kinds;
  while (auto d = link.schedule(kHeader + 8, kHeader)) {
    kinds.push_back(d->key.kind);
  }
  ASSERT_GE(kinds.size(), 8u);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NE(kinds[i], kinds[i - 1]);
}

TEST(Link, ThrowsWhenSymbolCannotFit) {
  Link link;
  auto ch = attach(link, StreamKey{1, 0, 0});
  ch.put(0xffffffff, 32);
  ch.close();
  EXPECT_THROW((void)link.schedule(kHeader + 8, kHeader), std::runtime_error);
}

TEST(Link, ThrowsWhenBudgetBelowHeader) {
  Link link;
  auto ch = attach(link, StreamKey{1, 0, 0});
  ch.put_bit(true);
  ch.close();
  EXPECT_THROW((void)link.schedule(kHeader - 1, kHeader), std::runtime_error);
}

TEST(Link, DrainAllDeliversEverythingAtOnce) {
  Link link;
  auto a = attach(link, StreamKey{1, 0, 0});
  auto b = attach(link, StreamKey{2, 0, 0});
  for (int i = 0; i < 100; ++i) a.put(i % 256, 8);
  a.close();
  b.put(5, 3);
  b.close();
  const auto ds = link.drain_all(kHeader);
  ASSERT_TRUE(ds.has_value());
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_EQ((*ds)[0].symbols.size(), 100u);
  EXPECT_TRUE((*ds)[0].eos);
  EXPECT_EQ((*ds)[1].symbols.size(), 1u);
  EXPECT_FALSE(link.drain_all(kHeader).has_value());
}

TEST(Link, AppendAfterPartialDrainContinues) {
  Link link;
  auto ch = attach(link, StreamKey{1, 0, 0});
  ch.put(1, 8);
  auto d1 = link.schedule(kHeader + 8, kHeader);
  ASSERT_TRUE(d1.has_value());
  EXPECT_FALSE(d1->eos);  // stream not closed yet
  ch.put(2, 8);
  ch.close();
  auto d2 = link.schedule(kHeader + 8, kHeader);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->symbols[0].first, 2u);
  EXPECT_TRUE(d2->eos);
}

TEST(Link, PruneKeepsActiveStreams) {
  Link link;
  auto done = attach(link, StreamKey{1, 0, 0});
  done.put(1, 4);
  done.close();
  auto live = attach(link, StreamKey{2, 0, 0});
  live.put(2, 4);
  EXPECT_EQ(link.stream_count(), 2u);
  (void)link.schedule(kHeader + 64, kHeader);  // drains `done` + its EOS
  (void)link.schedule(kHeader + 64, kHeader);  // drains `live`'s symbol
  link.prune_done();
  EXPECT_EQ(link.stream_count(), 1u);  // `done` pruned, `live` kept
  EXPECT_FALSE(link.has_pending());  // live has no pending symbols...
  live.put(3, 4);
  EXPECT_TRUE(link.has_pending());  // ...but is still attached after prune
  const auto d = link.schedule(kHeader + 64, kHeader);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->key.kind, 2u);
}

TEST(StreamHeaderBits, MatchesLayout) {
  // kind(5) + tag(id bits) + version(4) + eos(1).
  EXPECT_EQ(stream_header_bits(10), 5u + 10u + 4u + 1u);
  EXPECT_EQ(stream_header_bits(1), 11u);
}

}  // namespace
}  // namespace nc
