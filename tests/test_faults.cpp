// Fault & adversity engine coverage (src/runtime/faults.{hpp,cpp} and its
// integration into the sharded delivery pipeline):
//  - plan parsing/validation through the shared param-bag machinery;
//  - statistical checks: iid marginal loss rate, the Gilbert–Elliott
//    marginal (pi_bad * loss_bad + pi_good * loss_good), GE burstiness and
//    the lazy closed-form advance's cadence independence;
//  - runtime semantics: loss preserves scheduling cadence, delay preserves
//    FIFO stream contents, churn fires on_crash/on_recover and silences
//    links, permanent crashes still let the execution terminate;
//  - the determinism suite: fixed-seed faulty protocol runs bit-identical
//    at threads in {1, 2, 4, 64}, plus exact goldens for one lossy and one
//    churn scenario (the faulty counterpart of test_determinism.cpp).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "graph/generators.hpp"
#include "runtime/faults.hpp"
#include "runtime/network.hpp"
#include "runtime/reliability.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

constexpr std::uint16_t kData = 1;

// ---------------------------------------------------------------------------
// FaultPlan parsing and validation
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesCsvAndValidates) {
  const FaultPlan plan =
      parse_fault_plan("loss=0.05,delay_max=3,crash_frac=0.01");
  EXPECT_DOUBLE_EQ(plan.loss, 0.05);
  EXPECT_EQ(plan.delay_min, 0u);
  EXPECT_EQ(plan.delay_max, 3u);
  EXPECT_DOUBLE_EQ(plan.crash_frac, 0.01);
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(FaultPlan{}.any());

  EXPECT_THROW((void)parse_fault_plan("loss=1.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("no_such_knob=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("delay_min=4,delay_max=2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("ge_p=0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("crash_frac=0.1,crash_round=0"),
               std::invalid_argument);
}

TEST(FaultPlan, DefaultsDeclareEveryKey) {
  const auto& defaults = fault_param_defaults();
  for (const char* key :
       {"loss", "ge_p", "ge_r", "ge_loss_good", "ge_loss_bad", "delay_min",
        "delay_max", "crash_frac", "crash_round", "recover_after",
        "fault_seed"}) {
    EXPECT_TRUE(defaults.has_number(key)) << key;
  }
  // The all-defaults plan is the clean network.
  EXPECT_FALSE(fault_plan_from_params(defaults).any());
}

TEST(FaultPlan, SummaryNamesActiveModels) {
  EXPECT_EQ(FaultPlan{}.summary(), "none");
  const FaultPlan plan = parse_fault_plan("loss=0.1,crash_frac=0.5");
  EXPECT_NE(plan.summary().find("loss=0.1"), std::string::npos);
  EXPECT_NE(plan.summary().find("crash=0.5"), std::string::npos);
}

TEST(FaultHash, IsAPureKeyedFunction) {
  const std::uint64_t a = fault_mix(1, 2, 3, 4, 5);
  EXPECT_EQ(a, fault_mix(1, 2, 3, 4, 5));
  EXPECT_NE(a, fault_mix(2, 2, 3, 4, 5));  // seed
  EXPECT_NE(a, fault_mix(1, 9, 3, 4, 5));  // salt
  EXPECT_NE(a, fault_mix(1, 2, 9, 4, 5));  // round
  EXPECT_NE(a, fault_mix(1, 2, 3, 9, 5));  // src
  EXPECT_NE(a, fault_mix(1, 2, 3, 4, 9));  // dst
  const double u = fault_uniform(7, 7, 7, 7, 7);
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

// ---------------------------------------------------------------------------
// Statistical checks (fixed seeds; generous tolerances)
// ---------------------------------------------------------------------------

TEST(FaultStats, IidLossMarginal) {
  FaultPlan plan;
  plan.loss = 0.1;
  plan.fault_seed = 11;
  FaultEngine engine(plan, /*n=*/2, /*directed_edges=*/2, /*net_seed=*/1);
  std::size_t lost = 0;
  const std::size_t trials = 200'000;
  for (std::size_t r = 1; r <= trials; ++r) {
    lost += engine.lose(/*edge=*/0, /*src=*/0, /*dst=*/1, r);
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.1, 0.005);
}

TEST(FaultStats, GilbertElliottMarginalLossRate) {
  // pi_bad = p / (p + r) = 0.05 / 0.25 = 0.2; with loss_bad = 1 and
  // loss_good = 0 the marginal loss rate equals pi_bad.
  FaultPlan plan;
  plan.ge_p = 0.05;
  plan.ge_r = 0.2;
  plan.ge_loss_bad = 1.0;
  plan.ge_loss_good = 0.0;
  plan.fault_seed = 5;
  FaultEngine engine(plan, 2, 2, 1);
  EXPECT_DOUBLE_EQ(engine.ge_stationary_bad(), 0.2);

  std::size_t lost = 0;
  std::size_t runs = 0;  // maximal stretches of consecutive losses
  bool prev = false;
  const std::size_t trials = 300'000;
  for (std::size_t r = 1; r <= trials; ++r) {
    const bool l = engine.lose(0, 0, 1, r);
    lost += l;
    runs += (l && !prev);
    prev = l;
  }
  const double rate = static_cast<double>(lost) / trials;
  EXPECT_NEAR(rate, 0.2, 0.01);
  // Burstiness: mean loss-run length is 1/ge_r = 5 for the chain, vs
  // 1/(1 - rate) = 1.25 for iid loss at the same marginal.
  const double mean_run = static_cast<double>(lost) / runs;
  EXPECT_GT(mean_run, 3.0);
  EXPECT_LT(mean_run, 7.0);
}

TEST(FaultStats, GilbertElliottLazyAdvanceIsCadenceIndependent) {
  // Evaluating the chain only every 13th round must leave the marginal at
  // the stationary rate — the closed-form advance is exact for any gap.
  FaultPlan plan;
  plan.ge_p = 0.1;
  plan.ge_r = 0.3;
  plan.fault_seed = 21;
  FaultEngine engine(plan, 2, 2, 1);
  std::size_t lost = 0;
  std::size_t evals = 0;
  for (std::size_t r = 1; r < 13 * 100'000; r += 13) {
    lost += engine.lose(0, 0, 1, r);
    ++evals;
  }
  const double rate = static_cast<double>(lost) / evals;
  EXPECT_NEAR(rate, 0.25, 0.01);  // pi_bad = 0.1 / 0.4, loss_bad = 1
}

TEST(FaultStats, CrashScheduleMatchesFraction) {
  FaultPlan plan;
  plan.crash_frac = 0.3;
  plan.crash_round = 7;
  plan.recover_after = 5;
  plan.fault_seed = 3;
  const NodeId n = 4000;
  FaultEngine engine(plan, n, 0, 1);
  NodeId crashed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (engine.crash_round(v) != FaultEngine::kNever) {
      ++crashed;
      EXPECT_EQ(engine.crash_round(v), 7u);
      EXPECT_EQ(engine.recover_round(v), 12u);
      EXPECT_FALSE(engine.crashed_at(v, 6));
      EXPECT_TRUE(engine.crashed_at(v, 7));
      EXPECT_TRUE(engine.crashed_at(v, 11));
      EXPECT_FALSE(engine.crashed_at(v, 12));
    }
  }
  EXPECT_NEAR(static_cast<double>(crashed) / n, 0.3, 0.03);
}

TEST(FaultStats, LossHookTargetsDirectedEdges) {
  // The keyed hook is a per-direction overlay: probability 1 on 0->1 makes
  // that direction always lose while 1->0 and every other pair stay clean,
  // and a fractional hook composes with the iid model as independent loss.
  FaultPlan plan;
  plan.loss_hook = [](NodeId src, NodeId dst) {
    return src == 0 && dst == 1 ? 1.0 : 0.0;
  };
  EXPECT_TRUE(plan.any());  // the hook alone activates the engine
  FaultEngine engine(plan, 3, 4, 1);
  for (std::uint64_t r = 1; r <= 50; ++r) {
    EXPECT_TRUE(engine.lose(0, 0, 1, r));
    EXPECT_FALSE(engine.lose(1, 1, 0, r));
    EXPECT_FALSE(engine.lose(2, 1, 2, r));
  }

  FaultPlan mixed;
  mixed.loss = 0.1;
  mixed.fault_seed = 5;
  mixed.loss_hook = [](NodeId, NodeId) { return 0.2; };
  FaultEngine mixed_engine(mixed, 2, 2, 1);
  std::size_t lost = 0;
  const std::size_t trials = 200'000;
  for (std::size_t r = 1; r <= trials; ++r) {
    lost += mixed_engine.lose(0, 0, 1, r);
  }
  // Independent composition: 1 - 0.9 * 0.8 = 0.28.
  EXPECT_NEAR(static_cast<double>(lost) / trials, 0.28, 0.01);
}

// ---------------------------------------------------------------------------
// Runtime semantics
// ---------------------------------------------------------------------------

/// Streams `symbols` 8-bit symbols to every neighbour in on_start, records
/// everything received, finishes on an alarm (so lossy runs terminate
/// deterministically instead of waiting for traffic that never arrives).
class AlarmedChatter : public INode {
 public:
  AlarmedChatter(std::size_t symbols, std::uint64_t done_round)
      : symbols_(symbols), done_round_(done_round) {}

  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_all(StreamKey{kData, api.id(), 0});
    for (std::size_t i = 0; i < symbols_; ++i) ch.put(i & 0xffu, 8);
    ch.close();
    api.set_alarm(done_round_);
  }

  void on_round(NodeApi& api) override {
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      const NodeId from = api.neighbors()[ni];
      InStream* in = api.find_in(ni, StreamKey{kData, from, 0});
      if (in == nullptr) continue;
      while (in->available() > 0) received_.push_back(in->pop());
    }
    if (api.round() >= done_round_) {
      api.set_done();
    } else {
      api.set_alarm(done_round_);
    }
  }

  std::vector<std::uint64_t> received_;

 private:
  std::size_t symbols_;
  std::uint64_t done_round_;
};

TEST(FaultRuntime, LossPreservesSchedulingCadence) {
  // Lost messages are consumed from the link exactly like delivered ones
  // (sent-and-lost), so delivered + lost equals the clean run's count and
  // the active-link schedule is untouched.
  const Graph g = testing::complete_graph(6);
  const auto run_with = [&](double loss) {
    NetConfig cfg;
    cfg.bandwidth_factor = 16;
    cfg.seed = 9;
    cfg.faults.loss = loss;
    Network net(g, cfg, [](NodeId) {
      return std::make_unique<AlarmedChatter>(40, 80);
    });
    return net.run();
  };
  const RunStats clean = run_with(0.0);
  const RunStats lossy = run_with(0.25);
  EXPECT_EQ(clean.messages_lost, 0u);
  EXPECT_GT(lossy.messages_lost, 0u);
  EXPECT_EQ(lossy.messages + lossy.messages_lost, clean.messages);
  EXPECT_LT(lossy.bits, clean.bits);
}

TEST(FaultRuntime, DelayPreservesFifoStreamContents) {
  // Jittered per-message delay must never reorder a link's stream: the
  // receiver sees exactly the sent symbol sequence, just later.
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.bandwidth_factor = 16;
  cfg.faults.delay_min = 1;
  cfg.faults.delay_max = 5;
  Network net(g, cfg, [](NodeId) {
    return std::make_unique<AlarmedChatter>(100, 400);
  });
  const RunStats stats = net.run();
  EXPECT_GT(stats.messages_delayed, 0u);
  EXPECT_EQ(stats.messages_lost, 0u);
  for (const NodeId v : {0u, 1u}) {
    const auto& received =
        static_cast<AlarmedChatter&>(net.node(v)).received_;
    ASSERT_EQ(received.size(), 100u);
    for (std::size_t i = 0; i < received.size(); ++i) {
      EXPECT_EQ(received[i], i & 0xffu) << "node " << v << " symbol " << i;
    }
  }
}

TEST(FaultRuntime, DelayedTrafficKeepsTheNetworkAlive) {
  // A message in flight is pending traffic: the network must not stall (or
  // fast-forward past the arrival) while the last delayed message rides.
  const Graph g = testing::path_graph(2);
  class OneShotSender : public INode {
   public:
    void on_start(NodeApi& api) override {
      if (api.id() == 0) {
        auto ch = api.open_stream_all(StreamKey{kData, 0, 0});
        ch.put(42, 8);
        ch.close();
      }
      api.set_done();  // sender finishes immediately; receiver undone
    }
    void on_round(NodeApi&) override {}
  };
  class Receiver : public INode {
   public:
    void on_start(NodeApi&) override {}
    void on_round(NodeApi& api) override {
      InStream* in = api.find_in(0, StreamKey{kData, 0, 0});
      if (in == nullptr) return;
      while (in->available() > 0) in->pop();
      if (in->finished()) {
        got_at_ = api.round();
        api.set_done();
      }
    }
    std::uint64_t got_at_ = 0;
  };
  NetConfig cfg;
  cfg.bandwidth_factor = 16;
  cfg.faults.delay_min = 7;
  cfg.faults.delay_max = 7;
  Network net(g, cfg, [](NodeId v) -> std::unique_ptr<INode> {
    if (v == 0) return std::make_unique<OneShotSender>();
    return std::make_unique<Receiver>();
  });
  const RunStats stats = net.run();
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(static_cast<Receiver&>(net.node(1)).got_at_, 8u);  // 1 + 7
}

TEST(FaultRuntime, InFlightMessageSurvivesSenderCrashButNotReceiverCrash) {
  // The documented churn asymmetry: a delayed message already in flight
  // when its sender crashes is delivered (it left before the crash), but
  // one falling due while its *receiver* is crashed arrives at a dead
  // host and is dropped. Node 0 sends to 1 and 2 in round 1 with a fixed
  // 5-round delay; 0 and 2 crash at round 3 (while the messages ride).
  const Graph g = testing::star_graph(2);  // 0 — 1, 0 — 2
  class Sender : public INode {
   public:
    void on_start(NodeApi& api) override {
      auto ch = api.open_stream_all(StreamKey{kData, 0, 0});
      ch.put(7, 8);
      ch.close();
      api.set_alarm(20);
    }
    void on_round(NodeApi& api) override {
      if (api.round() >= 20) api.set_done();
    }
  };
  class Listener : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(20); }
    void on_round(NodeApi& api) override {
      InStream* in = api.find_in(0, StreamKey{kData, 0, 0});
      if (in != nullptr) {
        while (in->available() > 0) in->pop();
        if (in->finished()) got_ = true;
      }
      if (api.round() >= 20) api.set_done();
    }
    bool got_ = false;
  };
  NetConfig cfg;
  cfg.bandwidth_factor = 16;
  cfg.faults.delay_min = 5;
  cfg.faults.delay_max = 5;
  cfg.faults.crash_frac = 1.0;  // schedules every node...
  cfg.faults.crash_round = 3;
  cfg.faults.recover_after = 0;
  // ...then carve the exception: build an engine-equal plan where only
  // nodes 0 and 2 crash by probing fault seeds for that pattern.
  bool found = false;
  for (std::uint64_t fs = 1; fs < 200 && !found; ++fs) {
    FaultPlan probe = cfg.faults;
    probe.crash_frac = 0.67;
    probe.fault_seed = fs;
    const FaultEngine engine(probe, 3, 0, cfg.seed);
    if (engine.crash_round(0) == 3 && engine.crash_round(2) == 3 &&
        engine.crash_round(1) == FaultEngine::kNever) {
      cfg.faults = probe;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no fault seed produced the crash pattern";
  Network net(g, cfg, [](NodeId v) -> std::unique_ptr<INode> {
    if (v == 0) return std::make_unique<Sender>();
    return std::make_unique<Listener>();
  });
  const RunStats stats = net.run();
  // Node 1 (alive): the in-flight message from the crashed sender lands.
  EXPECT_TRUE(static_cast<Listener&>(net.node(1)).got_);
  // Node 2 (crashed at 3, in-flight due at 6): dropped on arrival.
  EXPECT_FALSE(static_cast<Listener&>(net.node(2)).got_);
  EXPECT_EQ(stats.messages_dropped_crash, 1u);
}

/// Records its crash/recover hook rounds and every on_round invocation.
class HookRecorder : public INode {
 public:
  void on_start(NodeApi& api) override { api.set_alarm(1); }
  void on_round(NodeApi& api) override {
    round_calls_.push_back(api.round());
    if (api.round() >= 40) {
      api.set_done();
    } else {
      api.set_alarm(api.round() + 1);
    }
  }
  void on_crash(NodeApi& api) override { crashed_at_.push_back(api.round()); }
  void on_recover(NodeApi& api) override {
    recovered_at_.push_back(api.round());
  }
  std::vector<std::uint64_t> round_calls_, crashed_at_, recovered_at_;
};

TEST(FaultRuntime, CrashRecoverFiresHooksAndSilencesTheWindow) {
  // crash_frac = 1: every node crashes at round 10 and recovers at 25. The
  // hooks fire exactly once at those rounds, no on_round runs inside the
  // window (alarms were cancelled), and the runtime's recovery wake lets
  // the nodes re-arm and finish.
  const Graph g = testing::cycle_graph(4);
  NetConfig cfg;
  cfg.faults.crash_frac = 1.0;
  cfg.faults.crash_round = 10;
  cfg.faults.recover_after = 15;
  Network net(g, cfg,
              [](NodeId) { return std::make_unique<HookRecorder>(); });
  const RunStats stats = net.run();
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.crash_events, 4u);
  EXPECT_EQ(stats.recover_events, 4u);
  for (NodeId v = 0; v < 4; ++v) {
    auto& node = static_cast<HookRecorder&>(net.node(v));
    EXPECT_EQ(node.crashed_at_, (std::vector<std::uint64_t>{10}));
    EXPECT_EQ(node.recovered_at_, (std::vector<std::uint64_t>{25}));
    for (const std::uint64_t r : node.round_calls_) {
      EXPECT_TRUE(r < 10 || r >= 25) << "on_round inside crash window: " << r;
    }
    EXPECT_EQ(node.round_calls_.back(), 40u);  // finished after recovery
  }
}

TEST(FaultRuntime, PermanentCrashStillTerminates) {
  // A permanently crashed node counts as done: the run completes instead
  // of stalling on it, and traffic addressed to it is silenced.
  const Graph g = testing::complete_graph(4);
  NetConfig cfg;
  cfg.bandwidth_factor = 16;
  cfg.seed = 13;
  cfg.faults.crash_frac = 1.0;
  cfg.faults.crash_round = 3;
  Network net(g, cfg, [](NodeId) {
    return std::make_unique<AlarmedChatter>(64, 100);
  });
  const RunStats stats = net.run();
  EXPECT_FALSE(stats.stalled);
  EXPECT_FALSE(stats.hit_round_limit);
  EXPECT_EQ(stats.crash_events, 4u);
  EXPECT_EQ(stats.recover_events, 0u);
  EXPECT_GT(stats.messages_dropped_crash, 0u);
  // Rounds 1 and 2 delivered normally before the crash.
  EXPECT_GT(stats.messages, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: faulty fixed-seed runs are bit-identical at every thread
// count, and two scenarios are locked as exact goldens.
// ---------------------------------------------------------------------------

DriverConfig faulty_driver_config() {
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.12;
  cfg.proto.versions = 2;
  cfg.net.seed = 41;
  cfg.net.max_rounds = 100'000;
  return cfg;
}

TEST(FaultDeterminism, ThreadCountsAreBitIdenticalUnderFaults) {
  Rng rng(13);
  const auto inst = planted_partition(56, 4, 0.8, 0.06, rng);
  DriverConfig cfg = faulty_driver_config();
  cfg.net.faults = parse_fault_plan(
      "loss=0.02,ge_p=0.02,ge_r=0.2,delay_max=2,crash_frac=0.05,"
      "crash_round=9,recover_after=20");

  cfg.net.threads = 1;
  const auto serial = run_dist_near_clique(inst.graph, cfg);
  EXPECT_GT(serial.stats.messages_lost, 0u);
  EXPECT_GT(serial.stats.messages_delayed, 0u);
  for (const unsigned threads : {2u, 4u, 64u}) {
    cfg.net.threads = threads;
    const auto sharded = run_dist_near_clique(inst.graph, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.stats.rounds, sharded.stats.rounds);
    EXPECT_EQ(serial.stats.messages, sharded.stats.messages);
    EXPECT_EQ(serial.stats.bits, sharded.stats.bits);
    EXPECT_EQ(serial.stats.max_message_bits, sharded.stats.max_message_bits);
    EXPECT_EQ(serial.stats.bits_by_kind, sharded.stats.bits_by_kind);
    EXPECT_EQ(serial.stats.messages_lost, sharded.stats.messages_lost);
    EXPECT_EQ(serial.stats.messages_delayed, sharded.stats.messages_delayed);
    EXPECT_EQ(serial.stats.messages_dropped_crash,
              sharded.stats.messages_dropped_crash);
    EXPECT_EQ(serial.stats.crash_events, sharded.stats.crash_events);
    EXPECT_EQ(serial.stats.recover_events, sharded.stats.recover_events);
    EXPECT_EQ(serial.labels, sharded.labels);
    EXPECT_EQ(serial.total_local_ops, sharded.total_local_ops);
  }
}

struct FaultGolden {
  std::uint64_t rounds;
  std::uint64_t messages;
  std::uint64_t bits;
  std::uint64_t lost;
  std::uint64_t delayed;
  std::uint64_t dropped_crash;
  std::uint64_t crashes;
  std::uint64_t recoveries;
  std::uint64_t label_hash;
};

std::uint64_t label_hash(const std::vector<Label>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Label l : labels) {
    h ^= l;
    h *= 1099511628211ULL;
  }
  return h;
}

void expect_fault_golden(const FaultPlan& plan, const FaultGolden& want) {
  Rng rng(7);
  PlantedNearCliqueParams pp;
  pp.n = 60;
  pp.clique_size = 24;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  const auto inst = planted_near_clique(pp, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 3;
  cfg.net.max_rounds = 50'000;
  cfg.net.faults = plan;
  for (const unsigned threads : {1u, 4u}) {
    cfg.net.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto res = run_dist_near_clique(inst.graph, cfg);
    EXPECT_EQ(res.stats.rounds, want.rounds);
    EXPECT_EQ(res.stats.messages, want.messages);
    EXPECT_EQ(res.stats.bits, want.bits);
    EXPECT_EQ(res.stats.messages_lost, want.lost);
    EXPECT_EQ(res.stats.messages_delayed, want.delayed);
    EXPECT_EQ(res.stats.messages_dropped_crash, want.dropped_crash);
    EXPECT_EQ(res.stats.crash_events, want.crashes);
    EXPECT_EQ(res.stats.recover_events, want.recoveries);
    EXPECT_EQ(label_hash(res.labels), want.label_hash);
  }
}

TEST(FaultDeterminism, LossyScenarioGolden) {
  // loss + jittered delay on the 60-node planted instance: 4 messages lost,
  // a 4-node near-clique still survives (partial recovery — the labels are
  // not all bottom). Values recorded from the threads=1 run at the fault
  // engine's introduction; any change to decision keying, delay buckets or
  // accounting shows up here.
  expect_fault_golden(parse_fault_plan("loss=0.001,delay_max=1,fault_seed=3"),
                      FaultGolden{49497, 5718, 187129, 4, 2860, 0, 0, 0,
                                  12291321823258236471ULL});
}

struct RelGolden {
  std::uint64_t rounds;
  std::uint64_t messages;
  std::uint64_t bits;
  std::uint64_t lost;
  std::uint64_t retx;
  std::uint64_t acks;
  std::uint64_t fec_repairs;
  std::uint64_t label_hash;
};

void expect_rel_golden(const FaultPlan& faults, const ReliabilityPlan& rel,
                       const RelGolden& want) {
  Rng rng(7);
  PlantedNearCliqueParams pp;
  pp.n = 60;
  pp.clique_size = 24;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  const auto inst = planted_near_clique(pp, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 3;
  cfg.net.max_rounds = 50'000;
  cfg.net.faults = faults;
  cfg.net.reliability = rel;
  for (const unsigned threads : {1u, 4u}) {
    cfg.net.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto res = run_dist_near_clique(inst.graph, cfg);
    EXPECT_EQ(res.stats.rounds, want.rounds);
    EXPECT_EQ(res.stats.messages, want.messages);
    EXPECT_EQ(res.stats.bits, want.bits);
    EXPECT_EQ(res.stats.messages_lost, want.lost);
    EXPECT_EQ(res.stats.messages_retransmitted, want.retx);
    EXPECT_EQ(res.stats.acks_sent, want.acks);
    EXPECT_EQ(res.stats.fec_repairs, want.fec_repairs);
    EXPECT_EQ(label_hash(res.labels), want.label_hash);
  }
}

TEST(FaultDeterminism, LossyArqScenarioGolden) {
  // The LossyScenarioGolden adversity (1e-3 iid loss + 1-round jitter) with
  // per-stream ARQ armed: every loss is retried back to delivery, the
  // labels match the *clean* golden hash, and the exact retransmit / ACK
  // counts pin the closed-form recovery accounting. Values recorded from
  // the threads=1 run at the reliability service's introduction.
  ReliabilityPlan rel;
  rel.mode = ReliabilityPlan::Mode::kAck;
  rel.ack_timeout = 1;
  rel.max_retx = 8;
  expect_rel_golden(parse_fault_plan("loss=0.001,delay_max=1,fault_seed=3"),
                    rel,
                    RelGolden{86, 7045, 359101, 0, 13, 7053, 0,
                              9160231386051612719ULL});
}

TEST(FaultDeterminism, LossyFecScenarioGolden) {
  // The same adversity under windowed FEC: blocked windows resolve with
  // exact repair-chunk counts and zero permanent losses.
  ReliabilityPlan rel;
  rel.mode = ReliabilityPlan::Mode::kFec;
  rel.fec_window = 3;
  rel.fec_repair = 8;
  expect_rel_golden(parse_fault_plan("loss=0.001,delay_max=1,fault_seed=3"),
                    rel,
                    RelGolden{87, 7045, 1344310, 0, 0, 0, 22896,
                              9160231386051612719ULL});
}

TEST(FaultDeterminism, ChurnScenarioGolden) {
  // 9 of 60 nodes crash at round 20 and recover at 45, silencing 453
  // messages mid-protocol; a 4-node near-clique still survives.
  expect_fault_golden(
      parse_fault_plan(
          "crash_frac=0.1,crash_round=20,recover_after=25,fault_seed=3"),
      FaultGolden{49493, 5245, 165954, 0, 0, 453, 9, 9,
                  12291321823258236471ULL});
}

}  // namespace
}  // namespace nc
