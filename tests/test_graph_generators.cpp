#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"

namespace nc {
namespace {

TEST(Generators, ErdosRenyiEdgeCountConcentrates) {
  Rng rng(1);
  const NodeId n = 200;
  const double p = 0.1;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.m()), expected, 0.15 * expected);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi(30, 0.0, rng).m(), 0u);
  EXPECT_EQ(erdos_renyi(30, 1.0, rng).m(), 30u * 29u / 2);
}

TEST(Generators, PlantedNearCliqueDensityIsExact) {
  for (const double eps3 : {0.0, 0.01, 0.05, 0.2}) {
    Rng rng(42);
    PlantedNearCliqueParams params;
    params.n = 120;
    params.clique_size = 60;
    params.eps_missing = eps3;
    params.background_p = 0.05;
    params.halo_p = 0.1;
    const auto inst = planted_near_clique(params, rng);
    ASSERT_EQ(inst.planted.size(), 60u);
    // Exactly floor(eps3 * d(d-1)) / 2 undirected pairs were removed, so the
    // planted set is an eps3-near clique and not much sparser.
    EXPECT_TRUE(is_near_clique(inst.graph, inst.planted, eps3));
    const double density = set_density(inst.graph, inst.planted);
    EXPECT_GE(density, 1.0 - eps3 - 1e-9);
    EXPECT_LE(density, 1.0);
    if (eps3 > 0.0) {
      EXPECT_FALSE(is_clique(inst.graph, inst.planted));
    }
  }
}

TEST(Generators, PlantedNearCliquePermutesIds) {
  Rng rng(7);
  PlantedNearCliqueParams params;
  params.n = 100;
  params.clique_size = 40;
  const auto inst = planted_near_clique(params, rng);
  // With permutation the planted set is essentially never {0..39}.
  std::vector<NodeId> prefix(40);
  for (NodeId i = 0; i < 40; ++i) prefix[i] = i;
  EXPECT_NE(inst.planted, prefix);
  EXPECT_TRUE(std::is_sorted(inst.planted.begin(), inst.planted.end()));
}

TEST(Generators, CounterexampleStructureMatchesClaim1) {
  Rng rng(3);
  const NodeId n = 80;
  const double delta = 0.5;
  const auto inst = shingles_counterexample(n, delta, rng, /*permute=*/false);
  const auto c = inst.planted;  // C = C1 ∪ C2, unpermuted layout [0, 40)
  ASSERT_EQ(c.size(), 40u);
  EXPECT_TRUE(is_clique(inst.graph, c));
  // Block degrees (unpermuted layout): C1 = [0,20): clique(19) + C2(20) +
  // I1(20) = 59; C2 symmetric with I2; I1 members: connected to all of C1.
  EXPECT_EQ(inst.graph.degree(0), 59u);
  EXPECT_EQ(inst.graph.degree(39), 59u);
  EXPECT_EQ(inst.graph.degree(40), 20u);  // I1 node
  EXPECT_EQ(inst.graph.degree(79), 20u);  // I2 node
  // I1 is independent.
  EXPECT_FALSE(inst.graph.has_edge(40, 41));
  // I1 connects to C1 but not C2 or I2.
  EXPECT_TRUE(inst.graph.has_edge(40, 0));
  EXPECT_FALSE(inst.graph.has_edge(40, 20));
  EXPECT_FALSE(inst.graph.has_edge(40, 79));
}

TEST(Generators, CounterexampleCase1DensityFormula) {
  // The candidate set C1 ∪ C2 ∪ I1 has density 2*delta/(1+delta) per the
  // Claim 1 proof; verify on the unpermuted instance.
  Rng rng(4);
  const NodeId n = 120;
  const double delta = 0.5;
  const auto inst = shingles_counterexample(n, delta, rng, false);
  std::vector<NodeId> candidate;
  for (NodeId v = 0; v < 90; ++v) candidate.push_back(v);  // C1,C2,I1
  const double density = set_density(inst.graph, candidate);
  EXPECT_NEAR(density, 2 * delta / (1 + delta), 0.02);
}

TEST(Generators, BarbellLayoutAndIndistinguishability) {
  const NodeId n = 64;
  const auto lay = barbell_layout(n);
  EXPECT_EQ(lay.a_size + lay.path_len + lay.b_size, n);
  const auto with_a = barbell_gadget(n, false);
  const auto without_a = barbell_gadget(n, true);
  // B is a clique in both.
  EXPECT_TRUE(is_clique(with_a.graph, with_a.planted));
  EXPECT_TRUE(is_clique(without_a.graph, without_a.planted));
  EXPECT_EQ(with_a.planted.front(), lay.b_first);
  // A's internal edges differ; everything at distance < path stays equal.
  EXPECT_TRUE(with_a.graph.has_edge(0, 1));
  EXPECT_FALSE(without_a.graph.has_edge(0, 1));
  // Same edges within B and on the path.
  for (NodeId v = lay.b_first; v < n; ++v) {
    EXPECT_EQ(with_a.graph.degree(v), without_a.graph.degree(v));
  }
  // With A's edges the gadget is connected; deleting them isolates all of
  // A except its path port, so the graph falls apart (which is fine for the
  // indistinguishability argument — B's side is identical either way).
  EXPECT_NE(graph_diameter(with_a.graph), kUnreachable);
  EXPECT_EQ(graph_diameter(without_a.graph), kUnreachable);
  const auto dist = induced_bfs_distances(
      without_a.graph,
      [&] {
        std::vector<NodeId> all(n);
        for (NodeId v = 0; v < n; ++v) all[v] = v;
        return all;
      }(),
      lay.a_size - 1);
  EXPECT_NE(dist[lay.b_first], kUnreachable);  // port-path-B still connected
}

TEST(Generators, SublinearCliqueSize) {
  Rng rng(5);
  const NodeId n = 1000;
  const auto inst = sublinear_clique(n, 0.5, 0.02, rng);
  // n / (log2 log2 n)^alpha: log2(1000)≈9.97, log2(9.97)≈3.32, sqrt≈1.82
  const double expected = 1000.0 / std::sqrt(std::log2(std::log2(1000.0)));
  EXPECT_NEAR(static_cast<double>(inst.planted.size()), expected, 2.0);
  EXPECT_TRUE(is_clique(inst.graph, inst.planted));
}

TEST(Generators, RandomGeometricRespectsRadius) {
  Rng rng(6);
  const Graph g = random_geometric(60, 0.0, rng);
  EXPECT_EQ(g.m(), 0u);
  Rng rng2(6);
  const Graph g2 = random_geometric(60, 2.0, rng2);  // diag < 2: complete
  EXPECT_EQ(g2.m(), 60u * 59u / 2);
}

TEST(Generators, PlantedPartitionGroupZeroIsDense) {
  Rng rng(8);
  const auto inst = planted_partition(120, 4, 0.9, 0.05, rng);
  EXPECT_EQ(inst.planted.size(), 30u);
  EXPECT_GE(set_density(inst.graph, inst.planted), 0.8);
}

TEST(Generators, PowerLawWebHasPlantedCommunity) {
  Rng rng(9);
  const auto inst = power_law_web(300, 2.5, 6.0, 30, 0.0, rng);
  EXPECT_EQ(inst.planted.size(), 30u);
  EXPECT_TRUE(is_clique(inst.graph, inst.planted));
  // Power-law-ish: max degree well above average.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    max_deg = std::max(max_deg, inst.graph.degree(v));
  }
  const double avg = 2.0 * static_cast<double>(inst.graph.m()) / 300.0;
  EXPECT_GT(static_cast<double>(max_deg), 3.0 * avg);
}

TEST(Generators, PermuteInstancePreservesStructure) {
  Rng rng(10);
  GraphBuilder b(20);
  b.add_clique({0, 1, 2, 3, 4});
  b.add_path({5, 6, 7});
  const Graph g = b.build();
  const auto inst = permute_instance(g, {0, 1, 2, 3, 4}, rng);
  EXPECT_EQ(inst.graph.n(), g.n());
  EXPECT_EQ(inst.graph.m(), g.m());
  EXPECT_TRUE(is_clique(inst.graph, inst.planted));
  EXPECT_EQ(inst.planted.size(), 5u);
}

TEST(Generators, DeterministicGivenSeed) {
  PlantedNearCliqueParams params;
  params.n = 80;
  params.clique_size = 30;
  params.eps_missing = 0.05;
  Rng r1(77), r2(77);
  const auto a = planted_near_clique(params, r1);
  const auto b = planted_near_clique(params, r2);
  EXPECT_EQ(a.graph.edge_list(), b.graph.edge_list());
  EXPECT_EQ(a.planted, b.planted);
}

}  // namespace
}  // namespace nc
