#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace nc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(r.next_u64());
  EXPECT_GT(vals.size(), 95u);  // not stuck
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng r(7);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(99);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[r.next_below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);  // within 10% relative
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
    EXPECT_FALSE(r.next_bernoulli(-0.5));
    EXPECT_TRUE(r.next_bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(11);
  const int trials = 50000;
  int heads = 0;
  for (int i = 0; i < trials; ++i) heads += r.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.02);
}

TEST(Rng, NextInRangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.next_in_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DeriveIsConstAndDeterministic) {
  const Rng parent(42);
  Rng a = parent.derive(7);
  Rng b = parent.derive(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DerivedStreamsAreIndependent) {
  const Rng parent(42);
  Rng a = parent.derive(1);
  Rng b = parent.derive(2);
  int equal = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DeriveDoesNotAdvanceParent) {
  Rng parent(42);
  Rng copy = parent;
  (void)parent.derive(1);
  (void)parent.derive(2);
  EXPECT_EQ(parent.next_u64(), copy.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(8);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);  // probability of identity is astronomically small
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Rng r(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = r.sample_without_replacement(100, 20);
    ASSERT_EQ(s.size(), 20u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    const std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (const auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementWholeRange) {
  Rng r(17);
  const auto s = r.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
  const auto t = r.sample_without_replacement(5, 50);
  EXPECT_EQ(t.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  Rng r(23);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (const auto x : r.sample_without_replacement(10, 3)) ++hits[x];
  }
  for (const int h : hits) EXPECT_NEAR(h, 6000, 600);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
  EXPECT_EQ(splitmix64(s2), b);
}

}  // namespace
}  // namespace nc
