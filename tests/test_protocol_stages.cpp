#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/driver.hpp"
#include "core/oracle.hpp"
#include "core/protocol.hpp"
#include "core/subsets.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "runtime/network.hpp"
#include "test_helpers.hpp"

// Stage-level verification of the distributed protocol: with p = 1 the
// sampled subgraph is the whole graph and every stage's outcome is
// deterministic, so the election, gather and decision stages can be checked
// against first principles (not just against the oracle).

namespace nc {
namespace {

struct RunHandle {
  std::unique_ptr<Network> net;
  std::vector<DistNearCliqueNode*> nodes;
  RunStats stats;
};

RunHandle run_protocol(const Graph& g, double p, double eps,
                       std::uint64_t seed,
                       std::uint32_t max_subsets = 1u << 18) {
  DriverConfig cfg;
  cfg.proto.eps = eps;
  cfg.proto.p = p;
  cfg.proto.max_subsets = max_subsets;
  cfg.net.seed = seed;
  cfg.net.max_rounds = 32'000'000;
  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  RunHandle h;
  h.net = std::make_unique<Network>(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  h.stats = h.net->run();
  for (NodeId v = 0; v < g.n(); ++v) {
    h.nodes.push_back(static_cast<DistNearCliqueNode*>(&h.net->node(v)));
  }
  return h;
}

TEST(ProtocolStages, RootIsMinimumIdPerComponent) {
  // Two separate cliques, p = 1: each component's root must be its minimum
  // ID, visible through the RootCandidate diagnostics.
  GraphBuilder b(20);
  b.add_clique({2, 5, 9, 12});
  b.add_clique({3, 7, 15, 19});
  const Graph g = b.build();
  const auto h = run_protocol(g, 1.0, 0.2, 4);
  EXPECT_FALSE(h.stats.stalled);
  std::set<NodeId> roots;
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) roots.insert(rc.root);
  }
  // Components: {2,5,9,12} -> root 2; {3,7,15,19} -> root 3; singletons are
  // their own roots (isolated nodes are sampled too at p=1).
  EXPECT_TRUE(roots.count(2));
  EXPECT_TRUE(roots.count(3));
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) {
      if (rc.root == 2) {
        EXPECT_EQ(rc.component_size, 4u);
      }
      if (rc.root == 3) {
        EXPECT_EQ(rc.component_size, 4u);
      }
    }
  }
}

TEST(ProtocolStages, ComponentSizesMatchInducedComponents) {
  // Random graph, fractional p: the roots' component_size diagnostics must
  // match the centralized induced-components computation on the same coins.
  Rng rng(8);
  GraphBuilder b(60);
  for (NodeId u = 0; u < 60; ++u) {
    for (NodeId v = u + 1; v < 60; ++v) {
      if (rng.next_bernoulli(0.12)) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  const auto h = run_protocol(g, 0.3, 0.2, 17, /*max_subsets=*/255);
  const auto sample = oracle_sample(g, 0.3, 17, 1);
  const auto comps = induced_components(g, sample);
  std::map<NodeId, std::uint32_t> expected;  // root -> size
  for (const auto& comp : comps) {
    expected[comp.front()] = static_cast<std::uint32_t>(comp.size());
  }
  std::map<NodeId, std::uint32_t> measured;
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) {
      measured[rc.root] = rc.component_size;
    }
  }
  EXPECT_EQ(measured, expected);
}

TEST(ProtocolStages, WinningCandidateIsGlobalMaximumT) {
  // The decision stage must let (at least) the globally largest candidate
  // survive (the paper's conflict-resolution guarantee).
  Rng rng(12);
  GraphBuilder b(50);
  b.add_clique({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = u + 1; v < 50; ++v) {
      if (rng.next_bernoulli(0.1)) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  const auto h = run_protocol(g, 0.15, 0.2, 23);
  std::uint32_t best_t = 0;
  bool best_survived = false;
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) {
      if (!rc.live) continue;
      if (rc.t_size > best_t) {
        best_t = rc.t_size;
        best_survived = rc.survived;
      }
    }
  }
  if (best_t > 0) {
    EXPECT_TRUE(best_survived);
  }
}

TEST(ProtocolStages, LabelsBelongToSurvivingCandidatesOnly) {
  const Graph g = testing::complete_graph(12);
  const auto h = run_protocol(g, 0.6, 0.2, 31);
  std::set<Label> surviving;
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) {
      if (rc.survived) surviving.insert(make_label(rc.root, rc.version));
    }
  }
  for (const auto* node : h.nodes) {
    if (node->label() != kBottom) {
      EXPECT_TRUE(surviving.count(node->label()));
    }
  }
}

TEST(ProtocolStages, SamplingCoinMatchesOracleDerivation) {
  // The protocol's per-node coin and oracle_sample must agree bit for bit.
  const Graph g = testing::complete_graph(50);
  const std::uint64_t seed = 77;
  const Rng master(seed);
  for (std::uint16_t w = 1; w <= 3; ++w) {
    const auto sample = oracle_sample(g, 0.4, seed, w);
    for (NodeId v = 0; v < g.n(); ++v) {
      const bool coin =
          DistNearCliqueNode::sampling_coin(master.derive(v), w, 0.4);
      EXPECT_EQ(coin, std::binary_search(sample.begin(), sample.end(), v));
    }
  }
}

TEST(ProtocolStages, TrafficScalesWithSubsetSpace) {
  // Doubling the component size should multiply exploration traffic by ~2^k:
  // compare total bits for planted cliques whose sampled component differs.
  const Graph g = testing::complete_graph(24);
  const auto small = run_protocol(g, 0.25, 0.2, 3);   // E[|S|] = 6
  const auto large = run_protocol(g, 0.5, 0.2, 3);    // E[|S|] = 12
  EXPECT_GT(large.stats.bits, 4 * small.stats.bits);
}

TEST(ProtocolStages, CandidateXStarSelectsLargestT) {
  // For a complete graph with p = 1 and a subset cap admitting everything,
  // T_eps(X) is the whole clique for every X, so X* must be the first
  // maximal index (tie-break: smallest mask) and |T| = n.
  const Graph g = testing::complete_graph(8);
  const auto h = run_protocol(g, 1.0, 0.2, 9);
  bool found_root = false;
  for (const auto* node : h.nodes) {
    for (const auto& rc : node->root_candidates()) {
      found_root = true;
      EXPECT_EQ(rc.root, 0u);
      EXPECT_EQ(rc.component_size, 8u);
      ASSERT_TRUE(rc.live);
      // With eps = 0.2, K_{0.08}(X) allows floor(0.08|X|) = 0 misses for all
      // |X| <= 12, so X's own members are excluded by self-non-adjacency and
      // K({v}) = Gamma(v) is the largest K achievable: t = n-1 = 7, attained
      // first at the singleton mask X = {node 0}.
      EXPECT_EQ(rc.t_size, 7u);
      EXPECT_EQ(rc.x_star, 1u);
      EXPECT_TRUE(rc.survived);
    }
  }
  EXPECT_TRUE(found_root);
}

TEST(ProtocolStages, VersionWindowsDoNotOverlapInTraffic) {
  // With lambda = 2 sequential windows, version-2 floods must not appear
  // before version 1's window ends; verified via label versions: every
  // surviving label's version is 1 or 2 and the run terminates cleanly.
  const Graph g = testing::complete_graph(14);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.4;
  cfg.proto.versions = 2;
  cfg.proto.version_budget = 50'000;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 1'000'000;
  const auto res = run_dist_near_clique(g, cfg);
  ASSERT_FALSE(res.aborted());
  for (const auto& [label, members] : res.clusters()) {
    (void)members;
    EXPECT_GE(label_version(label), 1u);
    EXPECT_LE(label_version(label), 2u);
  }
  // Rounds must reflect the second window's start (sequential layout).
  EXPECT_GT(res.stats.rounds, 50'000u);
}

TEST(ProtocolStages, LocalOpsAccountedForExploration) {
  const Graph g = testing::complete_graph(16);
  const auto h = run_protocol(g, 0.5, 0.2, 41);
  std::uint64_t total_ops = 0;
  for (const auto* node : h.nodes) total_ops += node->local_ops();
  EXPECT_GT(total_ops, 0u);
}

}  // namespace
}  // namespace nc
