#include <gtest/gtest.h>

#include <vector>

#include "util/bitio.hpp"
#include "util/bitvec.hpp"

namespace nc {
namespace {

// ---------------------------------------------------------------- BitVec --

TEST(BitVec, StartsAllZero) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.none());
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVec, SetAndClear) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_EQ(v.count(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, CountAndAcrossWords) {
  BitVec a(200), b(200);
  for (std::size_t i = 0; i < 200; i += 3) a.set(i);
  for (std::size_t i = 0; i < 200; i += 5) b.set(i);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 200; i += 15) ++expected;
  EXPECT_EQ(a.count_and(b), expected);
}

TEST(BitVec, UnionIntersectDifference) {
  BitVec a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  BitVec u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  BitVec i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(65));
  BitVec d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(BitVec, IndicesRoundTrip) {
  const std::vector<std::uint32_t> idx{0, 5, 63, 64, 127, 128};
  const BitVec v = BitVec::from_indices(200, idx);
  EXPECT_EQ(v.to_indices(), idx);
}

TEST(BitVec, EqualityIncludesSize) {
  BitVec a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(BitVec, AssignZeroResizes) {
  BitVec v(10);
  v.set(5);
  v.assign_zero(300);
  EXPECT_EQ(v.size(), 300u);
  EXPECT_TRUE(v.none());
}

// --------------------------------------------------------------- Bit I/O --

TEST(BitIo, SingleValueRoundTrip) {
  BitWriter w;
  w.put(0x2a, 7);
  BitReader r(w.words(), w.bit_size());
  EXPECT_EQ(r.get(7), 0x2au);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, MixedWidthsRoundTrip) {
  BitWriter w;
  w.put_bit(true);
  w.put(0x1234, 16);
  w.put_bit(false);
  w.put(0xdeadbeefcafeULL, 48);
  w.put(0xffffffffffffffffULL, 64);
  BitReader r(w.words(), w.bit_size());
  EXPECT_TRUE(r.get_bit());
  EXPECT_EQ(r.get(16), 0x1234u);
  EXPECT_FALSE(r.get_bit());
  EXPECT_EQ(r.get(48), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.get(64), 0xffffffffffffffffULL);
}

TEST(BitIo, CrossesWordBoundaries) {
  BitWriter w;
  for (int i = 0; i < 13; ++i) w.put(static_cast<std::uint64_t>(i), 13);
  EXPECT_EQ(w.bit_size(), 13u * 13u);
  BitReader r(w.words(), w.bit_size());
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(r.get(13), static_cast<std::uint64_t>(i));
  }
}

TEST(BitIo, ManyBitsStressRoundTrip) {
  BitWriter w;
  std::vector<std::pair<std::uint64_t, unsigned>> data;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 1000; ++i) {
    const unsigned width = 1 + (x % 64);
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t value = width == 64 ? x : (x & ((1ULL << width) - 1));
    data.emplace_back(value, width);
    w.put(value, width);
  }
  BitReader r(w.words(), w.bit_size());
  for (const auto& [value, width] : data) EXPECT_EQ(r.get(width), value);
}

TEST(BitIo, IdWidthBounds) {
  EXPECT_EQ(id_width(0), 1u);
  EXPECT_EQ(id_width(1), 1u);
  EXPECT_EQ(id_width(2), 2u);
  EXPECT_EQ(id_width(3), 2u);
  EXPECT_EQ(id_width(4), 3u);
  EXPECT_EQ(id_width(255), 8u);
  EXPECT_EQ(id_width(256), 9u);
  EXPECT_EQ(id_width(1000), 10u);
  // Any value in [0, n] must fit in id_width(n) bits.
  for (std::uint64_t n : {1ULL, 7ULL, 100ULL, 4097ULL}) {
    const unsigned w = id_width(n);
    EXPECT_GE((w == 64 ? ~0ULL : (1ULL << w) - 1), n);
  }
}

}  // namespace
}  // namespace nc
