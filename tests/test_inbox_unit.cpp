#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "runtime/inbox.hpp"

// Direct unit tests of the flat kind-bucketed inbox: deterministic
// (ni, key) iteration order, kind isolation, find/open semantics, the
// consumed-prefix cursor and the kind-range guard.
//
// Contract note: the runtime only ever touches a stream through open()
// immediately before delivering into it, so these tests do the same — an
// entry that exists but has never received anything is indistinguishable
// from a consumed one, and for_each's prefix cursor is allowed to skip it.

namespace nc {
namespace {

using Seen = std::vector<std::tuple<std::size_t, NodeId, std::uint16_t>>;

Seen collect(Inbox& inbox, std::uint16_t kind) {
  Seen seen;
  inbox.for_each(kind, [&](std::size_t ni, const StreamKey& key, InStream&) {
    EXPECT_EQ(key.kind, kind);
    seen.emplace_back(ni, key.tag, key.version);
  });
  return seen;
}

TEST(Inbox, IterationOrderIsSortedRegardlessOfInsertionOrder) {
  Inbox inbox;
  // Scrambled insertion: (ni, tag, version) triples of kind 3.
  const std::vector<std::tuple<std::size_t, NodeId, std::uint16_t>> scrambled{
      {2, 5, 0}, {0, 9, 1}, {2, 1, 2}, {0, 9, 0}, {1, 0, 0}, {2, 1, 1}};
  for (const auto& [ni, tag, version] : scrambled) {
    inbox.open(ni, StreamKey{3, tag, version}).deliver(1, 4);
  }
  const Seen want{{0, 9, 0}, {0, 9, 1}, {1, 0, 0},
                  {2, 1, 1}, {2, 1, 2}, {2, 5, 0}};
  EXPECT_EQ(collect(inbox, 3), want);
}

TEST(Inbox, KindsAreIsolated) {
  Inbox inbox;
  inbox.open(0, StreamKey{1, 7, 0}).deliver(1, 4);
  inbox.open(1, StreamKey{2, 7, 0}).deliver(1, 4);
  inbox.open(2, StreamKey{1, 8, 0}).deliver(1, 4);
  EXPECT_EQ(collect(inbox, 1).size(), 2u);
  EXPECT_EQ(collect(inbox, 2).size(), 1u);
  EXPECT_TRUE(collect(inbox, 5).empty());
  EXPECT_EQ(inbox.size(), 3u);
}

TEST(Inbox, OpenIsFindOrCreateAndFindDoesNotCreate) {
  Inbox inbox;
  const StreamKey key{4, 11, 2};
  EXPECT_EQ(inbox.find(3, key), nullptr);
  InStream& s = inbox.open(3, key);
  s.deliver(42, 8);
  InStream* found = inbox.find(3, key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &inbox.open(3, key));  // same stream, not a duplicate
  EXPECT_EQ(found->pop(), 42u);
  // Near-miss keys do not match.
  EXPECT_EQ(inbox.find(3, StreamKey{4, 11, 3}), nullptr);
  EXPECT_EQ(inbox.find(3, StreamKey{4, 12, 2}), nullptr);
  EXPECT_EQ(inbox.find(2, key), nullptr);
  EXPECT_EQ(inbox.size(), 1u);
}

TEST(Inbox, ConsumedPrefixIsSkippedAndRevivedByDelivery) {
  Inbox inbox;
  const std::uint16_t kind = 3;
  for (std::size_t ni = 0; ni < 3; ++ni) {
    inbox.open(ni, StreamKey{kind, 0, 0}).deliver(ni, 4);
  }
  // First sweep sees all three and drains them.
  std::size_t visited = 0;
  inbox.for_each(kind, [&](std::size_t, const StreamKey&, InStream& s) {
    ++visited;
    while (s.available() > 0) (void)s.pop();
  });
  EXPECT_EQ(visited, 3u);
  // Everything is drained and unclosed: the whole bucket is consumed
  // prefix now, and the next sweep skips it.
  EXPECT_TRUE(collect(inbox, kind).empty());
  // A delivery to the middle entry pulls the cursor back over it; the
  // trailing (still dead) entry is visited too — only the *prefix* is
  // skipped, so iteration order never changes for surviving entries.
  inbox.open(1, StreamKey{kind, 0, 0}).deliver(7, 4);
  const Seen want{{1, 0, 0}, {2, 0, 0}};
  EXPECT_EQ(collect(inbox, kind), want);
}

TEST(Inbox, ClosedStreamsAreNeverSkipped) {
  Inbox inbox;
  const std::uint16_t kind = 2;
  // Entry 0 closes (EOS delivered through open(), as the runtime does);
  // entry 1 stays open and gets drained.
  inbox.open(0, StreamKey{kind, 0, 0}).deliver_eos();
  InStream& s1 = inbox.open(1, StreamKey{kind, 0, 0});
  s1.deliver(5, 4);
  while (s1.available() > 0) (void)s1.pop();
  // The closed head pins the prefix: visitors that count finished streams
  // (tree finalization, component announce) must keep seeing it, every
  // sweep, even though it has nothing left to pop.
  for (int sweep = 0; sweep < 2; ++sweep) {
    const Seen want{{0, 0, 0}, {1, 0, 0}};
    EXPECT_EQ(collect(inbox, kind), want);
  }
}

TEST(Inbox, OutOfRangeKindThrows) {
  Inbox inbox;
  EXPECT_THROW((void)inbox.find(0, StreamKey{32, 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)inbox.open(0, StreamKey{40, 0, 0}), std::invalid_argument);
  EXPECT_THROW(inbox.for_each(99, [](std::size_t, const StreamKey&,
                                     InStream&) {}),
               std::invalid_argument);
  // The largest valid kind works.
  EXPECT_NO_THROW((void)inbox.open(0, StreamKey{kMaxMsgKinds - 1, 0, 0}));
}

}  // namespace
}  // namespace nc
