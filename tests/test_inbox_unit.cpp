#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "runtime/inbox.hpp"

// Direct unit tests of the flat kind-bucketed inbox: deterministic
// (ni, key) iteration order, kind isolation, find/open semantics and the
// kind-range guard.

namespace nc {
namespace {

using Seen = std::vector<std::tuple<std::size_t, NodeId, std::uint16_t>>;

Seen collect(Inbox& inbox, std::uint16_t kind) {
  Seen seen;
  inbox.for_each(kind, [&](std::size_t ni, const StreamKey& key, InStream&) {
    EXPECT_EQ(key.kind, kind);
    seen.emplace_back(ni, key.tag, key.version);
  });
  return seen;
}

TEST(Inbox, IterationOrderIsSortedRegardlessOfInsertionOrder) {
  Inbox inbox;
  // Scrambled insertion: (ni, tag, version) triples of kind 3.
  const std::vector<std::tuple<std::size_t, NodeId, std::uint16_t>> scrambled{
      {2, 5, 0}, {0, 9, 1}, {2, 1, 2}, {0, 9, 0}, {1, 0, 0}, {2, 1, 1}};
  for (const auto& [ni, tag, version] : scrambled) {
    (void)inbox.open(ni, StreamKey{3, tag, version});
  }
  const Seen want{{0, 9, 0}, {0, 9, 1}, {1, 0, 0},
                  {2, 1, 1}, {2, 1, 2}, {2, 5, 0}};
  EXPECT_EQ(collect(inbox, 3), want);
}

TEST(Inbox, KindsAreIsolated) {
  Inbox inbox;
  (void)inbox.open(0, StreamKey{1, 7, 0});
  (void)inbox.open(1, StreamKey{2, 7, 0});
  (void)inbox.open(2, StreamKey{1, 8, 0});
  EXPECT_EQ(collect(inbox, 1).size(), 2u);
  EXPECT_EQ(collect(inbox, 2).size(), 1u);
  EXPECT_TRUE(collect(inbox, 5).empty());
  EXPECT_EQ(inbox.size(), 3u);
}

TEST(Inbox, OpenIsFindOrCreateAndFindDoesNotCreate) {
  Inbox inbox;
  const StreamKey key{4, 11, 2};
  EXPECT_EQ(inbox.find(3, key), nullptr);
  InStream& s = inbox.open(3, key);
  s.deliver(42, 8);
  InStream* found = inbox.find(3, key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &inbox.open(3, key));  // same stream, not a duplicate
  EXPECT_EQ(found->pop(), 42u);
  // Near-miss keys do not match.
  EXPECT_EQ(inbox.find(3, StreamKey{4, 11, 3}), nullptr);
  EXPECT_EQ(inbox.find(3, StreamKey{4, 12, 2}), nullptr);
  EXPECT_EQ(inbox.find(2, key), nullptr);
  EXPECT_EQ(inbox.size(), 1u);
}

TEST(Inbox, OutOfRangeKindThrows) {
  Inbox inbox;
  EXPECT_THROW((void)inbox.find(0, StreamKey{32, 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)inbox.open(0, StreamKey{40, 0, 0}), std::invalid_argument);
  EXPECT_THROW(inbox.for_each(99, [](std::size_t, const StreamKey&,
                                     InStream&) {}),
               std::invalid_argument);
  // The largest valid kind works.
  EXPECT_NO_THROW((void)inbox.open(0, StreamKey{kMaxMsgKinds - 1, 0, 0}));
}

}  // namespace
}  // namespace nc
