// Shard partitioning and sharded-engine edge cases: partition shape (n < k,
// empty shards, one shard, degree balance), the ShardPool contract (all
// jobs run, exceptions propagate), and network behaviours that cross shard
// boundaries — alarms armed from one shard while traffic flows in another,
// and chatter across a shard cut.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/network.hpp"
#include "runtime/shard.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

constexpr std::uint16_t kPing = 3;

// ---------------------------------------------------------------------------
// plan_shards
// ---------------------------------------------------------------------------

void expect_valid_plan(const ShardPlan& plan, NodeId n, unsigned k) {
  ASSERT_EQ(plan.shards(), k);
  ASSERT_EQ(plan.bounds.size(), static_cast<std::size_t>(k) + 1);
  EXPECT_EQ(plan.bounds.front(), 0u);
  EXPECT_EQ(plan.bounds.back(), n);
  for (unsigned s = 0; s < k; ++s) {
    EXPECT_LE(plan.bounds[s], plan.bounds[s + 1]);  // contiguous, ordered
  }
  ASSERT_EQ(plan.node_shard.size(), n);
  for (NodeId v = 0; v < n; ++v) {
    const unsigned s = plan.node_shard[v];
    ASSERT_LT(s, k);
    EXPECT_GE(v, plan.begin(s));
    EXPECT_LT(v, plan.end(s));
  }
}

TEST(ShardPlan, SingleShardOwnsEverything) {
  const Graph g = testing::cycle_graph(10);
  const ShardPlan plan = plan_shards(g, 1);
  expect_valid_plan(plan, 10, 1);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 10u);
}

TEST(ShardPlan, FewerNodesThanShardsLeavesEmptyShards) {
  const Graph g = testing::path_graph(3);
  const ShardPlan plan = plan_shards(g, 8);
  expect_valid_plan(plan, 3, 8);
  unsigned empty = 0;
  for (unsigned s = 0; s < plan.shards(); ++s) {
    if (plan.begin(s) == plan.end(s)) ++empty;
  }
  EXPECT_GE(empty, 5u);  // at most 3 shards can be non-empty
}

TEST(ShardPlan, BalancesByDegree) {
  // Half the nodes form a clique (high degree), half a path (low degree):
  // an equal-node split would put all the edge weight in one shard; the
  // degree-balanced split must not.
  GraphBuilder b(40);
  std::vector<NodeId> clique;
  for (NodeId v = 0; v < 20; ++v) clique.push_back(v);
  b.add_clique(clique);
  for (NodeId v = 20; v + 1 < 40; ++v) b.add_edge(v, v + 1);
  b.add_edge(19, 20);  // connect the halves
  const Graph g = b.build();

  const ShardPlan plan = plan_shards(g, 2);
  expect_valid_plan(plan, 40, 2);
  std::array<std::uint64_t, 2> weight{};
  for (NodeId v = 0; v < 40; ++v) {
    weight[plan.node_shard[v]] += g.degree(v) + 1;
  }
  const std::uint64_t total = weight[0] + weight[1];
  // Each side within [25%, 75%] of the weight — an equal-node split would
  // be ~90/10.
  EXPECT_GE(weight[0] * 4, total);
  EXPECT_GE(weight[1] * 4, total);
}

TEST(ShardPlan, ClampsShardCount) {
  const Graph g = testing::cycle_graph(8);
  EXPECT_EQ(plan_shards(g, 0).shards(), 1u);
  EXPECT_EQ(plan_shards(g, 100'000).shards(), kMaxShards);
}

TEST(ShardPlan, DeterministicForFixedInputs) {
  Rng rng(3);
  const Graph g = erdos_renyi(64, 0.15, rng);
  const ShardPlan a = plan_shards(g, 4);
  const ShardPlan b = plan_shards(g, 4);
  EXPECT_EQ(a.bounds, b.bounds);
  EXPECT_EQ(a.node_shard, b.node_shard);
}

// ---------------------------------------------------------------------------
// ShardPool
// ---------------------------------------------------------------------------

TEST(ShardPool, RunsEveryJobExactlyOnce) {
  ShardPool pool(4);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<std::atomic<int>> hits(17);
  for (int round = 0; round < 50; ++round) {  // repeated barriers
    pool.run(17, [&](unsigned i) { hits[i].fetch_add(1); });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50);
}

TEST(ShardPool, InlineWhenSingleThreaded) {
  ShardPool pool(1);
  EXPECT_EQ(pool.workers(), 0u);
  int sum = 0;  // safe: no workers, everything inline
  pool.run(5, [&](unsigned i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 10);
}

TEST(ShardPool, PropagatesTheFirstException) {
  ShardPool pool(3);
  EXPECT_THROW(
      pool.run(8,
               [](unsigned i) {
                 if (i % 2 == 1) throw std::runtime_error("job failed");
               }),
      std::runtime_error);
  // The pool survives a throwing run.
  std::atomic<int> ok{0};
  pool.run(8, [&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

// ---------------------------------------------------------------------------
// Sharded network edge cases
// ---------------------------------------------------------------------------

/// Sends one closed ping stream to every neighbour, finishes when it has
/// received (and fully read) a finished ping from each.
class PingAll : public INode {
 public:
  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_all(StreamKey{kPing, api.id(), 0});
    ch.put_bit(true);  // 1 bit: fits any budget, even tiny-n graphs
    ch.close();
  }
  void on_round(NodeApi& api) override {
    std::size_t finished = 0;
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      InStream* in =
          api.find_in(ni, StreamKey{kPing, api.neighbors()[ni], 0});
      if (in == nullptr) continue;
      while (in->available() > 0) checksum += in->pop();
      if (in->finished()) ++finished;
    }
    if (finished == api.degree()) api.set_done();
  }
  std::uint64_t checksum = 0;
};

/// Sleeps to a fixed horizon (re-arming if woken early by traffic).
class SleepTo : public INode {
 public:
  explicit SleepTo(std::uint64_t horizon) : horizon_(horizon) {}
  void on_start(NodeApi& api) override { api.set_alarm(horizon_); }
  void on_round(NodeApi& api) override {
    if (api.round() >= horizon_) {
      api.set_done();
    } else {
      api.set_alarm(horizon_);
    }
  }

 private:
  std::uint64_t horizon_;
};

RunStats run_ping_all(const Graph& g, unsigned threads) {
  NetConfig cfg;
  cfg.threads = threads;
  Network net(g, cfg, [](NodeId) { return std::make_unique<PingAll>(); });
  return net.run();
}

TEST(ShardedNetwork, MoreShardsThanNodes) {
  // n = 3, threads = 8: five shards are empty; the round must still
  // deliver across the two shard cuts and terminate.
  const Graph g = testing::path_graph(3);
  const RunStats serial = run_ping_all(g, 1);
  const RunStats sharded = run_ping_all(g, 8);
  EXPECT_FALSE(sharded.stalled);
  EXPECT_EQ(serial.rounds, sharded.rounds);
  EXPECT_EQ(serial.messages, sharded.messages);
  EXPECT_EQ(serial.bits, sharded.bits);
}

TEST(ShardedNetwork, CrossShardChatterMatchesSerial) {
  // A cycle cut into 4 shards: every shard's boundary nodes exchange
  // traffic with the neighbouring shard in both directions.
  const Graph g = testing::cycle_graph(32);
  const RunStats serial = run_ping_all(g, 1);
  const RunStats sharded = run_ping_all(g, 4);
  EXPECT_FALSE(sharded.stalled);
  EXPECT_EQ(serial.rounds, sharded.rounds);
  EXPECT_EQ(serial.messages, sharded.messages);
  EXPECT_EQ(serial.bits, sharded.bits);
  EXPECT_EQ(serial.bits_by_kind, sharded.bits_by_kind);
  EXPECT_EQ(serial.max_message_bits, sharded.max_message_bits);
}

TEST(ShardedNetwork, AlarmsAcrossShardBoundary) {
  // Nodes 0..15 chatter (shard 0 at k = 2); nodes 16..31 only sleep on
  // alarms at distinct horizons (shard 1). The alarm machinery is
  // shard-local, so the sleepers' wake-ups must fire at their exact rounds
  // while the other shard is busy, and the network must not stall or
  // fast-forward past a live alarm.
  GraphBuilder b(32);
  for (NodeId v = 0; v + 1 < 16; ++v) b.add_edge(v, v + 1);
  for (NodeId v = 16; v + 1 < 32; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();

  for (const unsigned threads : {1u, 2u, 5u}) {
    NetConfig cfg;
    cfg.threads = threads;
    Network net(g, cfg, [](NodeId v) -> std::unique_ptr<INode> {
      if (v < 16) return std::make_unique<PingAll>();
      return std::make_unique<SleepTo>(200 + (v - 16) * 10);
    });
    const RunStats stats = net.run();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_FALSE(stats.stalled);
    EXPECT_FALSE(stats.hit_round_limit);
    // The run ends exactly at the last sleeper's horizon.
    EXPECT_EQ(stats.rounds, 200u + 15u * 10u);
  }
}

TEST(ShardedNetwork, ShardCountIsReported) {
  const Graph g = testing::cycle_graph(12);
  NetConfig cfg;
  cfg.threads = 3;
  Network net(g, cfg, [](NodeId) { return std::make_unique<PingAll>(); });
  EXPECT_EQ(net.shard_count(), 3u);
}

}  // namespace
}  // namespace nc
