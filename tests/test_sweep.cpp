// Coverage for the declarative sweep runner: grid expansion and ordering,
// seed schedules, equivalence with hand-wired trial batches (the guarantee
// the ported E-benches rely on), validation errors, and a golden-file test
// for the JSON-lines schema.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "expt/sweep.hpp"

namespace nc {
namespace {

/// A tiny, fully deterministic sweep (the barbell gadget ignores its seed
/// and both algorithms are deterministic given one) used by the ordering
/// and golden-schema tests.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.title = "golden";
  spec.scenario_family = "barbell";
  spec.algorithms = {{"peeling", AlgoParams().with("eps", 0.2)},
                     {"shingles", {}}};
  spec.axes = {{SweepAxis::Target::kScenario, "n", {24, 32}}};
  spec.trials = 2;
  spec.seed_base = 5;
  spec.success.kind = SuccessSpec::Kind::kSizeDensity;
  spec.success.min_size = 4;
  spec.success.max_eps = 0.25;
  return spec;
}

TEST(Sweep, AlgorithmMajorGridOrdering) {
  const auto rows = run_sweep(tiny_spec());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].algorithm, "peeling");
  EXPECT_EQ(rows[1].algorithm, "peeling");
  EXPECT_EQ(rows[2].algorithm, "shingles");
  EXPECT_EQ(rows[3].algorithm, "shingles");
  EXPECT_EQ(rows[0].scenario_params.get_int("n"), 24);
  EXPECT_EQ(rows[1].scenario_params.get_int("n"), 32);
  EXPECT_EQ(rows[0].model, CostModel::kCentral);
  EXPECT_EQ(rows[2].model, CostModel::kCongest);
  for (const auto& row : rows) EXPECT_EQ(row.stats.trials, 2u);
  // Deterministic algorithms on the deterministic gadget: zero variance.
  EXPECT_DOUBLE_EQ(rows[0].stats.out_size.stddev(), 0.0);
}

TEST(Sweep, BothAxisFeedsScenarioAndAlgorithm) {
  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams().with("n", 40);
  spec.algorithms = {{"shingles", {}}};
  spec.axes = {{SweepAxis::Target::kBoth, "eps", {0.05, 0.3}}};
  spec.trials = 1;
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].scenario_params.get_double("eps"), 0.05);
  EXPECT_DOUBLE_EQ(rows[0].algo_params.get_double("eps"), 0.05);
  EXPECT_DOUBLE_EQ(rows[1].scenario_params.get_double("eps"), 0.3);
  EXPECT_DOUBLE_EQ(rows[1].algo_params.get_double("eps"), 0.3);
}

TEST(Sweep, MatchesHandWiredTrialBatch) {
  // The guarantee the ported E-benches rely on: a one-point sweep aggregates
  // exactly like the historical TrialSpec plumbing with the same seeds.
  const AlgoParams algo_params = AlgoParams()
                                     .with("eps", 0.2)
                                     .with("pn", 5.0)
                                     .with("max_rounds", 2'000'000);
  TrialSpec hand;
  hand.make_instance = scenario_maker(
      "theorem", ScenarioParams().with("n", 60).with("delta", 0.5));
  hand.run = algorithm_runner("dist_near_clique", algo_params);
  hand.success = [](const Instance& inst, const AlgoResult& res) {
    return theorem57_success(inst, res, 0.2, 0.5);
  };
  const TrialStats direct = run_trials(hand, 3, 0x5eed);

  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams().with("n", 60).with("delta", 0.5);
  spec.algorithms = {{"dist_near_clique", algo_params}};
  spec.trials = 3;
  spec.seed_base = 0x5eed;
  spec.success.kind = SuccessSpec::Kind::kTheorem57;
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 1u);
  const TrialStats& via_sweep = rows[0].stats;

  EXPECT_EQ(direct.trials, via_sweep.trials);
  EXPECT_EQ(direct.successes, via_sweep.successes);
  EXPECT_DOUBLE_EQ(direct.rounds.mean(), via_sweep.rounds.mean());
  EXPECT_DOUBLE_EQ(direct.bits.mean(), via_sweep.bits.mean());
  EXPECT_DOUBLE_EQ(direct.out_size.mean(), via_sweep.out_size.mean());
  EXPECT_DOUBLE_EQ(direct.out_density.mean(), via_sweep.out_density.mean());
  EXPECT_DOUBLE_EQ(direct.recall.mean(), via_sweep.recall.mean());
  EXPECT_DOUBLE_EQ(direct.local_ops.mean(), via_sweep.local_ops.mean());
}

TEST(TrialRunner, SeedSchedules) {
  std::vector<std::uint64_t> seeds;
  TrialSpec t;
  t.make_instance = [&seeds](std::uint64_t seed) {
    seeds.push_back(seed);
    return make_scenario("barbell", ScenarioParams().with("n", 16), seed);
  };
  t.run = algorithm_runner("peeling", {});
  (void)run_trials(t, 3, 100, SeedSchedule::kSequential);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100, 101, 102}));
  seeds.clear();
  (void)run_trials(t, 2, 100);  // default: the historical salted schedule
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{100 + 7919, 100 + 15838}));
}

TEST(TrialRunner, ThreadsKnobForwardsOnlyToDeclaringAlgorithms) {
  // algorithm_runner's threads argument shards delivery for algorithms
  // that declare the knob — bit-identical results, so the two runners
  // must agree exactly — and is silently ignored for centralized
  // baselines (so one batch can mix both kinds).
  Rng rng(19);
  const auto inst = planted_partition(48, 3, 0.85, 0.05, rng);
  const AlgoParams params =
      AlgoParams().with("eps", 0.2).with("max_rounds", 2'000'000);
  const auto serial = algorithm_runner("dist_near_clique", params);
  const auto sharded = algorithm_runner("dist_near_clique", params, 4);
  const AlgoResult a = serial(inst.graph, 23);
  const AlgoResult b = sharded(inst.graph, 23);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
  EXPECT_EQ(a.local_ops, b.local_ops);

  const auto central = algorithm_runner("peeling", {}, 4);  // no knob: ok
  EXPECT_FALSE(central(inst.graph, 23).labels.empty());
}

TEST(Sweep, ValidatesBeforeRunning) {
  SweepSpec spec = tiny_spec();
  spec.scenario_family = "no_such_family";
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.algorithms.clear();
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.algorithms[0].name = "no_such_algorithm";
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);

  spec = tiny_spec();
  spec.axes[0].values.clear();
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);

  // An axis key no target declares fails with the registry's own message.
  spec = tiny_spec();
  spec.axes[0].key = "bogus_knob";
  spec.axes[0].values = {1.0};
  try {
    (void)run_sweep(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus_knob"), std::string::npos)
        << e.what();
  }
}

TEST(Sweep, ExplicitSuccessEpsOverridesDerivedValue) {
  // Deterministic setup (fixed seed): peeling at eps = 0.2 on the planted
  // theorem instance finds a ~0.82-density set. With the predicate eps
  // derived from the algorithm's merged params (0.2), Theorem 5.7's density
  // bound caps at 1 and the trial succeeds; an explicit success eps = 0.05
  // overrides the derived value, demands density >= ~0.85, and the same
  // output fails. Guards that --success-eps is an override, not just a
  // fallback for configurations lacking an "eps" key.
  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams().with("n", 60).with("delta", 0.5);
  spec.algorithms = {{"peeling", AlgoParams().with("eps", 0.2)}};
  spec.trials = 1;
  spec.seed_base = 77;
  spec.success.kind = SuccessSpec::Kind::kTheorem57;

  ASSERT_TRUE(std::isnan(spec.success.eps));  // default: derive
  EXPECT_EQ(run_sweep(spec).at(0).stats.successes, 1u);

  spec.success.eps = 0.05;
  EXPECT_EQ(run_sweep(spec).at(0).stats.successes, 0u);
}

TEST(Sweep, SuccessSpecParsesByName) {
  EXPECT_EQ(parse_success_spec("none").kind, SuccessSpec::Kind::kNone);
  EXPECT_EQ(parse_success_spec("theorem57").kind,
            SuccessSpec::Kind::kTheorem57);
  EXPECT_EQ(parse_success_spec("effective").kind,
            SuccessSpec::Kind::kEffective);
  EXPECT_EQ(parse_success_spec("size_density").kind,
            SuccessSpec::Kind::kSizeDensity);
  for (const auto& spec :
       {parse_success_spec("theorem57"), parse_success_spec("none")}) {
    EXPECT_EQ(parse_success_spec(spec.name()).kind, spec.kind);
  }
  EXPECT_THROW(parse_success_spec("always"), std::invalid_argument);
}

TEST(Sweep, FaultOverridesReachOnlyDeclaringAlgorithms) {
  // SweepSpec.faults forwards key by key to algorithms that declare the
  // fault knobs (dist_near_clique), mirroring the threads rule; the
  // centralized baseline in the same comparison stays clean.
  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams().with("n", 40);
  spec.algorithms = {{"dist_near_clique",
                      AlgoParams().with("max_rounds", 50'000)},
                     {"peeling", {}}};
  spec.trials = 1;
  spec.faults = ParamSet().with("loss", 0.05).with("delay_max", 2);
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].algo_merged.get_double("loss"), 0.05);
  EXPECT_EQ(rows[0].algo_merged.get_int("delay_max"), 2);
  EXPECT_FALSE(rows[1].algo_merged.has("loss"));

  // An explicit per-algorithm override wins over the sweep-level plan.
  spec.algorithms[0].params.with("loss", 0.2);
  EXPECT_DOUBLE_EQ(
      run_sweep(spec).at(0).algo_merged.get_double("loss"), 0.2);

  // Unknown fault keys fail up front with the fault catalogue.
  spec.faults = ParamSet().with("packet_loss", 0.05);
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);
}

TEST(Sweep, FaultKeysWorkAsGridAxes) {
  // A loss axis crosses like any other algorithm parameter: one row per
  // loss value, each run under its own adversity.
  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams().with("n", 40);
  spec.algorithms = {{"dist_near_clique",
                      AlgoParams().with("max_rounds", 20'000)}};
  spec.axes = {{SweepAxis::Target::kAlgorithm, "loss", {0.0, 0.05}}};
  spec.trials = 1;
  const auto rows = run_sweep(spec);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].algo_merged.get_double("loss"), 0.0);
  EXPECT_DOUBLE_EQ(rows[1].algo_merged.get_double("loss"), 0.05);
}

SweepSpec full_spec() {
  SweepSpec spec;
  spec.title = "spec file roundtrip";
  spec.scenario_family = "planted_near_clique";
  spec.scenario_params =
      ScenarioParams().with("n", 120).with("clique_size", 24);
  spec.algorithms = {
      {"dist_near_clique", AlgoParams().with("eps", 0.25).with("pn", 8.0)},
      {"peeling", AlgoParams().with("objective", "densest")}};
  spec.axes = {{SweepAxis::Target::kBoth, "eps", {0.1, 0.2}},
               {SweepAxis::Target::kScenario, "n", {120, 240}}};
  spec.trials = 3;
  spec.seed_base = 42;
  spec.seeds = SeedSchedule::kSequential;
  spec.threads = 2;
  spec.faults = ParamSet().with("loss", 0.02).with("delay_max", 3);
  spec.success.kind = SuccessSpec::Kind::kTheorem57;
  spec.success.eps = 0.15;
  spec.success2.kind = SuccessSpec::Kind::kSizeDensity;
  spec.success2.min_size = 5;
  spec.success2.max_eps = 0.3;
  return spec;
}

TEST(SweepSpecJson, RoundTripsEveryField) {
  const SweepSpec spec = full_spec();
  const SweepSpec back = sweep_spec_from_json(sweep_spec_json(spec));

  EXPECT_EQ(back.title, spec.title);
  EXPECT_EQ(back.scenario_family, spec.scenario_family);
  EXPECT_EQ(back.scenario_params.values(), spec.scenario_params.values());
  ASSERT_EQ(back.algorithms.size(), spec.algorithms.size());
  for (std::size_t i = 0; i < spec.algorithms.size(); ++i) {
    EXPECT_EQ(back.algorithms[i].name, spec.algorithms[i].name);
    EXPECT_EQ(back.algorithms[i].params.values(),
              spec.algorithms[i].params.values());
    EXPECT_EQ(back.algorithms[i].params.strings(),
              spec.algorithms[i].params.strings());
  }
  ASSERT_EQ(back.axes.size(), spec.axes.size());
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    EXPECT_EQ(back.axes[i].target, spec.axes[i].target);
    EXPECT_EQ(back.axes[i].key, spec.axes[i].key);
    EXPECT_EQ(back.axes[i].values, spec.axes[i].values);
  }
  EXPECT_EQ(back.trials, spec.trials);
  EXPECT_EQ(back.seed_base, spec.seed_base);
  EXPECT_EQ(back.seeds, spec.seeds);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.faults.values(), spec.faults.values());
  EXPECT_EQ(back.success.kind, spec.success.kind);
  EXPECT_DOUBLE_EQ(back.success.eps, spec.success.eps);
  EXPECT_TRUE(std::isnan(back.success.delta));  // kFromParams survives
  EXPECT_EQ(back.success2.kind, spec.success2.kind);
  EXPECT_DOUBLE_EQ(back.success2.min_size, spec.success2.min_size);
  EXPECT_DOUBLE_EQ(back.success2.max_eps, spec.success2.max_eps);

  // And a re-serialization is textually identical (canonical key order).
  EXPECT_EQ(sweep_spec_json(back), sweep_spec_json(spec));
}

TEST(SweepSpecJson, ParsedSpecRunsIdenticallyToTheStructOne) {
  SweepSpec spec;
  spec.scenario_family = "barbell";
  spec.algorithms = {{"peeling", AlgoParams().with("eps", 0.2)}};
  spec.axes = {{SweepAxis::Target::kScenario, "n", {24, 32}}};
  spec.trials = 2;
  spec.seed_base = 5;
  spec.success.kind = SuccessSpec::Kind::kSizeDensity;
  spec.success.min_size = 4;
  spec.success.max_eps = 0.25;
  const auto direct = run_sweep(spec);
  const auto via_json = run_sweep(sweep_spec_from_json(sweep_spec_json(spec)));
  ASSERT_EQ(direct.size(), via_json.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(sweep_row_json(direct[i]), sweep_row_json(via_json[i]));
  }
}

TEST(SweepSpecJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)sweep_spec_from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW((void)sweep_spec_from_json("[1,2]"), std::invalid_argument);
  // Missing required fields.
  EXPECT_THROW((void)sweep_spec_from_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)sweep_spec_from_json(
                   R"({"scenario":{"family":"barbell"}})"),
               std::invalid_argument);
  // Unknown top-level and nested fields name themselves.
  try {
    (void)sweep_spec_from_json(
        R"({"scenario":{"family":"barbell"},)"
        R"("algorithms":[{"name":"peeling"}],"gridd":[]})");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gridd"), std::string::npos);
  }
  // Bad fault keys are caught at parse time.
  EXPECT_THROW((void)sweep_spec_from_json(
                   R"({"scenario":{"family":"barbell"},)"
                   R"("algorithms":[{"name":"peeling"}],)"
                   R"("faults":{"packet_loss":0.1}})"),
               std::invalid_argument);
  // Count fields must be integral, matching the CLI flags' strictness.
  for (const char* bad :
       {R"("trials": 2.9)", R"("seed_base": 1.5)", R"("threads": 2.5)"}) {
    EXPECT_THROW((void)sweep_spec_from_json(
                     std::string(R"({"scenario":{"family":"barbell"},)") +
                     R"("algorithms":[{"name":"peeling"}],)" + bad + "}"),
                 std::invalid_argument)
        << bad;
  }
}

TEST(SweepJson, GoldenSchema) {
  const auto rows = run_sweep(tiny_spec());
  const std::string actual = sweep_json_lines(rows);

  std::ifstream golden_file(std::string(NC_TEST_DATA_DIR) +
                            "/sweep_schema_golden.jsonl");
  ASSERT_TRUE(golden_file.is_open())
      << "missing tests/data/sweep_schema_golden.jsonl; expected contents:\n"
      << actual;
  std::stringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(golden.str(), actual)
      << "sweep JSON schema changed; if intentional, regenerate "
         "tests/data/sweep_schema_golden.jsonl with the actual output "
         "above/below:\n"
      << actual;
}

}  // namespace
}  // namespace nc
