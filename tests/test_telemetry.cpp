// Telemetry engine coverage (src/runtime/telemetry.{hpp,cpp} and its
// integration into the Network round loop):
//
//  - the observer-effect contract: fixed-seed RunStats, labels and local
//    work are bit-identical with telemetry off, metrics-only, and
//    metrics+trace+probes — at threads 1, 2 and 64, clean and under a
//    lossy fault plan with ARQ armed;
//  - metric-column conservation: windowed columns sum to the run totals at
//    any sampling stride, and the row budget drops samples loudly;
//  - protocol probes: dist_near_clique's dnc.* series exist, carry
//    non-trivial totals, arrive name-sorted, and are thread-invariant;
//  - phase spans: names come from the engine's fixed vocabulary and the
//    trace writer emits a well-formed Chrome trace_event document;
//  - the --metrics JSONL schema, golden-pinned byte for byte
//    (tests/data/metrics_schema_golden.jsonl);
//  - the stall post-mortem: a deadlocked protocol triggers a StallReport
//    that names the armed-alarm / no-delivery state, and clean runs don't.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "graph/generators.hpp"
#include "runtime/faults.hpp"
#include "runtime/reliability.hpp"
#include "runtime/telemetry.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

// Small planted instance: big enough that the protocol stages, delivers,
// wakes and finishes with non-bottom output, small enough for a matrix of
// runs per test.
Instance telemetry_instance() {
  Rng rng(7);
  PlantedNearCliqueParams pp;
  pp.n = 60;
  pp.clique_size = 24;
  pp.eps_missing = 0.0;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  return planted_near_clique(pp, rng);
}

DriverConfig telemetry_config() {
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 3;
  cfg.net.max_rounds = 300'000;
  return cfg;
}

void expect_same_outcome(const NearCliqueResult& a, const NearCliqueResult& b,
                         const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.bits_by_kind, b.stats.bits_by_kind);
  EXPECT_EQ(a.stats.messages_lost, b.stats.messages_lost);
  EXPECT_EQ(a.stats.messages_retransmitted, b.stats.messages_retransmitted);
  EXPECT_EQ(a.stats.stalled, b.stats.stalled);
  EXPECT_EQ(a.stats.hit_round_limit, b.stats.hit_round_limit);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.total_local_ops, b.total_local_ops);
}

TEST(TelemetryPlan, ParsesAndValidates) {
  EXPECT_FALSE(parse_telemetry_plan("").requested());
  const auto p = parse_telemetry_plan(
      "tel_metrics=1,tel_trace=1,tel_probes=1,tel_stride=8,"
      "tel_max_samples=100,tel_max_spans=200");
  EXPECT_TRUE(p.metrics);
  EXPECT_TRUE(p.trace);
  EXPECT_TRUE(p.probes);
  EXPECT_EQ(p.stride, 8u);
  EXPECT_EQ(p.max_samples, 100u);
  EXPECT_EQ(p.max_spans, 200u);
  EXPECT_TRUE(p.requested());
  EXPECT_FALSE(p.any());  // no sink attached yet
  EXPECT_FALSE(parse_telemetry_plan("tel_stride=4").requested());

  EXPECT_THROW((void)parse_telemetry_plan("tel_metrics=1,tel_stride=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_telemetry_plan("tel_metrics=1,tel_max_samples=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_telemetry_plan("tel_trace=1,tel_max_spans=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_telemetry_plan("no_such_knob=1"),
               std::invalid_argument);
}

TEST(TelemetryObserverEffect, RecordingNeverPerturbsTheRun) {
  // The tentpole contract: with the same seed, telemetry off /
  // metrics-only / everything-on produce bit-identical RunStats, labels
  // and local work at every thread count. Telemetry only reads counters
  // the engine maintains anyway, so any divergence here means a recording
  // hook leaked into a simulation decision.
  const auto inst = telemetry_instance();
  for (const unsigned threads : {1u, 2u, 64u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DriverConfig cfg = telemetry_config();
    cfg.net.threads = threads;
    const auto off = run_dist_near_clique(inst.graph, cfg);

    Telemetry metrics_sink;
    cfg.net.telemetry = parse_telemetry_plan("tel_metrics=1");
    cfg.net.telemetry.sink = &metrics_sink;
    const auto metrics_only = run_dist_near_clique(inst.graph, cfg);
    expect_same_outcome(off, metrics_only, "metrics-only vs off");
    EXPECT_GT(metrics_sink.metrics.samples(), 0u);

    Telemetry full_sink;
    cfg.net.telemetry =
        parse_telemetry_plan("tel_metrics=1,tel_trace=1,tel_probes=1");
    cfg.net.telemetry.sink = &full_sink;
    const auto full = run_dist_near_clique(inst.graph, cfg);
    expect_same_outcome(off, full, "metrics+trace+probes vs off");
    EXPECT_FALSE(full_sink.spans.empty());
    EXPECT_FALSE(full_sink.probes.empty());
  }
}

TEST(TelemetryObserverEffect, HoldsUnderLossWithArq) {
  // Same contract with the fault engine dropping messages and the
  // reliability service retransmitting them: the keyed-hash verdicts must
  // not see the telemetry branch.
  const auto inst = telemetry_instance();
  for (const unsigned threads : {1u, 2u, 64u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DriverConfig cfg = telemetry_config();
    cfg.net.threads = threads;
    cfg.net.faults = parse_fault_plan("loss=0.05,fault_seed=9");
    cfg.net.reliability =
        parse_reliability_plan("rel_mode=1,rel_ack_timeout=2,rel_max_retx=6");
    const auto off = run_dist_near_clique(inst.graph, cfg);
    // ARQ recovers every drop here, so losses surface as retransmissions.
    EXPECT_GT(off.stats.messages_retransmitted, 0u);

    Telemetry sink;
    cfg.net.telemetry =
        parse_telemetry_plan("tel_metrics=1,tel_trace=1,tel_probes=1");
    cfg.net.telemetry.sink = &sink;
    const auto on = run_dist_near_clique(inst.graph, cfg);
    expect_same_outcome(off, on, "lossy+ARQ, telemetry on vs off");
  }
}

TEST(TelemetryMetrics, WindowedColumnsSumToRunTotals) {
  // Each sampled row covers the window since the previous sample, so the
  // delivered/lost/retransmitted/bits columns must sum to the final
  // RunStats — at stride 1 and at a stride that doesn't divide the round
  // count (the final partial window still closes at flush).
  const auto inst = telemetry_instance();
  for (const std::uint64_t stride : {1ull, 7ull}) {
    SCOPED_TRACE("stride=" + std::to_string(stride));
    DriverConfig cfg = telemetry_config();
    cfg.net.threads = 2;
    Telemetry sink;
    cfg.net.telemetry =
        parse_telemetry_plan("tel_metrics=1,tel_stride=" +
                             std::to_string(stride));
    cfg.net.telemetry.sink = &sink;
    const auto res = run_dist_near_clique(inst.graph, cfg);

    ASSERT_GT(sink.metrics.samples(), 0u);
    EXPECT_EQ(sink.metrics.stride, stride);
    std::uint64_t delivered = 0, lost = 0, retx = 0, bits = 0, kind_bits = 0;
    for (std::size_t i = 0; i < sink.metrics.samples(); ++i) {
      delivered += sink.metrics.delivered[i];
      lost += sink.metrics.lost[i];
      retx += sink.metrics.retransmitted[i];
      bits += sink.metrics.bits[i];
    }
    for (const auto b : sink.metrics.bits_by_kind) kind_bits += b;
    EXPECT_EQ(delivered, res.stats.messages);
    EXPECT_EQ(lost, res.stats.messages_lost);
    EXPECT_EQ(retx, res.stats.messages_retransmitted);
    EXPECT_EQ(bits, res.stats.bits);
    EXPECT_EQ(kind_bits, res.stats.bits);
    EXPECT_EQ(sink.stats.rounds, res.stats.rounds);  // run echo
    EXPECT_EQ(sink.n, inst.graph.n());
    EXPECT_EQ(sink.threads, 2u);
  }
}

TEST(TelemetryMetrics, RowBudgetDropsSamplesLoudly) {
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  Telemetry sink;
  cfg.net.telemetry = parse_telemetry_plan("tel_metrics=1,tel_max_samples=8");
  cfg.net.telemetry.sink = &sink;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_GT(res.stats.rounds, 8u);  // the budget actually binds
  EXPECT_EQ(sink.metrics.samples(), 8u);
  EXPECT_GT(sink.metrics.samples_dropped, 0u);
}

TEST(TelemetryProbes, ProtocolSeriesAreSortedAndThreadInvariant) {
  const auto inst = telemetry_instance();
  std::vector<std::uint64_t> baseline_totals;
  for (const unsigned threads : {1u, 2u, 64u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DriverConfig cfg = telemetry_config();
    cfg.net.threads = threads;
    Telemetry sink;
    cfg.net.telemetry = parse_telemetry_plan("tel_metrics=1,tel_probes=1");
    cfg.net.telemetry.sink = &sink;
    (void)run_dist_near_clique(inst.graph, cfg);

    ASSERT_FALSE(sink.probes.empty());
    std::vector<std::uint64_t> totals;
    std::set<std::string> names;  // nclint:allow(ordered-map) test-only assertion set
    for (std::size_t i = 0; i < sink.probes.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(sink.probes[i - 1].name, sink.probes[i].name);
      }
      names.insert(sink.probes[i].name);
      totals.push_back(sink.probes[i].total);
      const auto& p = sink.probes[i];
      ASSERT_FALSE(p.value.empty()) << p.name;
      if (p.counter) {
        // Counters are sampled as their cumulative total: non-decreasing,
        // ending at the final total.
        for (std::size_t j = 1; j < p.value.size(); ++j) {
          EXPECT_LE(p.value[j - 1], p.value[j]) << p.name;
        }
        EXPECT_EQ(p.value.back(), p.total) << p.name;
      } else {
        // Gauges are sampled as per-window delta sums, so the samples sum
        // to the total.
        std::uint64_t sum = 0;
        for (const auto v : p.value) sum += v;
        EXPECT_EQ(sum, p.total) << p.name;
      }
    }
    EXPECT_TRUE(names.count("dnc.stream_opens"));
    EXPECT_TRUE(names.count("dnc.candidate_nodes"));
    EXPECT_TRUE(names.count("dnc.pairs_initialized"));
    for (const auto& p : sink.probes) {
      if (p.name == "dnc.stream_opens") {
        EXPECT_GT(p.total, 0u);
      }
    }
    if (baseline_totals.empty()) {
      baseline_totals = totals;
    } else {
      EXPECT_EQ(baseline_totals, totals);  // probe charges shard-invariant
    }
  }
}

TEST(TelemetryProbes, OffCostsNothingAndReturnsSentinel) {
  // With tel_probes off the registration API hands back kNoProbe and
  // probe_add is a no-op; the protocol must tolerate that without a sink.
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  Telemetry sink;
  cfg.net.telemetry = parse_telemetry_plan("tel_metrics=1");  // no probes
  cfg.net.telemetry.sink = &sink;
  (void)run_dist_near_clique(inst.graph, cfg);
  EXPECT_TRUE(sink.probes.empty());
}

TEST(TelemetryTrace, SpansUseTheEngineVocabularyAndSerialize) {
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  cfg.net.threads = 2;
  Telemetry sink;
  cfg.net.telemetry = parse_telemetry_plan("tel_trace=1,tel_probes=1");
  cfg.net.telemetry.sink = &sink;
  (void)run_dist_near_clique(inst.graph, cfg);

  ASSERT_FALSE(sink.spans.empty());
  const std::set<std::string> vocab{"fused", "stage", "deliver", "wake",  // nclint:allow(ordered-map) test-only vocabulary set
                                    "alarm"};
  bool saw_parallel_phase = false;
  for (const auto& s : sink.spans) {
    EXPECT_TRUE(vocab.count(s.name)) << s.name;
    EXPECT_GE(s.dur_us, 0.0);
    if (std::string(s.name) == "stage" || std::string(s.name) == "deliver") {
      saw_parallel_phase = true;
    }
  }
  EXPECT_TRUE(saw_parallel_phase);  // threads=2 runs the two-phase round

  // The writer emits a loadable Chrome trace_event document: one
  // traceEvents array of objects each carrying name/ph/pid.
  const auto doc = parse_json(telemetry_trace_json(sink, "test"));
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const auto& arr = events->as_array("traceEvents");
  ASSERT_GT(arr.size(), sink.spans.size());  // spans + metadata (+ counters)
  for (const auto& e : arr) {
    ASSERT_TRUE(e.is_object());
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
  }
}

TEST(TelemetryTrace, SpanBudgetDropsLoudly) {
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  Telemetry sink;
  cfg.net.telemetry = parse_telemetry_plan("tel_trace=1,tel_max_spans=16");
  cfg.net.telemetry.sink = &sink;
  (void)run_dist_near_clique(inst.graph, cfg);
  EXPECT_EQ(sink.spans.size(), 16u);
  EXPECT_GT(sink.spans_dropped, 0u);
}

TEST(TelemetryMetricsJsonl, RepeatRunsAreByteIdentical) {
  // The metrics file deliberately excludes wall-clock, so two runs of the
  // same configuration render the identical byte stream — the property the
  // golden below pins across code changes.
  const auto inst = telemetry_instance();
  const auto capture = [&] {
    DriverConfig cfg = telemetry_config();
    cfg.net.threads = 2;
    Telemetry sink;
    cfg.net.telemetry = parse_telemetry_plan(
        "tel_metrics=1,tel_probes=1,tel_stride=4");
    cfg.net.telemetry.sink = &sink;
    (void)run_dist_near_clique(inst.graph, cfg);
    return telemetry_metrics_jsonl(sink, "golden");
  };
  EXPECT_EQ(capture(), capture());
}

TEST(TelemetryMetricsJsonl, GoldenSchema) {
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  cfg.net.threads = 2;
  Telemetry sink;
  cfg.net.telemetry =
      parse_telemetry_plan("tel_metrics=1,tel_probes=1,tel_stride=4");
  cfg.net.telemetry.sink = &sink;
  (void)run_dist_near_clique(inst.graph, cfg);
  const std::string actual = telemetry_metrics_jsonl(sink, "golden");

  std::ifstream golden_file(std::string(NC_TEST_DATA_DIR) +
                            "/metrics_schema_golden.jsonl");
  ASSERT_TRUE(golden_file.is_open())
      << "missing tests/data/metrics_schema_golden.jsonl; expected "
         "contents:\n"
      << actual;
  std::stringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(golden.str(), actual)
      << "metrics JSONL schema changed; if intentional, regenerate "
         "tests/data/metrics_schema_golden.jsonl with the actual output "
         "above/below:\n"
      << actual;
}

TEST(StallDiagnostics, DeadlockedProtocolProducesAPostMortem) {
  const Graph g = testing::path_graph(3);
  class WaitsForever : public INode {
   public:
    void on_start(NodeApi&) override {}
    void on_round(NodeApi&) override {}  // never sends, never done
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<WaitsForever>(); });
  const auto stats = net.run();
  ASSERT_TRUE(stats.stalled);

  // A stall by definition means nothing is scheduled ahead: no armed
  // alarms, no in-flight traffic, and nobody done.
  const StallReport report = net.stall_report();
  EXPECT_TRUE(report.triggered());
  EXPECT_TRUE(report.stalled);
  EXPECT_FALSE(report.hit_round_limit);
  EXPECT_EQ(report.nodes_total, 3u);
  EXPECT_EQ(report.nodes_done, 0u);
  EXPECT_EQ(report.armed_alarms, 0u);
  EXPECT_EQ(report.next_alarm_round, StallReport::kNone);
  EXPECT_EQ(report.active_links, 0u);

  const std::string text = report.summary();
  EXPECT_NE(text.find("stall"), std::string::npos);

  // to_json renders one well-formed object carrying the headline fields.
  JsonWriter w;
  report.to_json(w);
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("stalled"), nullptr);
  EXPECT_NE(doc.find("nodes_done"), nullptr);
  EXPECT_NE(doc.find("armed_alarms"), nullptr);
}

TEST(StallDiagnostics, CleanRunsDontTrigger) {
  const auto inst = telemetry_instance();
  const auto res =
      run_dist_near_clique(inst.graph, telemetry_config());
  EXPECT_FALSE(res.aborted());
  EXPECT_FALSE(res.stall.triggered());
  EXPECT_TRUE(res.stall.summary().empty());
}

TEST(StallDiagnostics, RoundLimitReportsThroughTheDriver) {
  // The driver captures the post-mortem while the network still holds its
  // final state, so an aborted NearCliqueResult is self-diagnosing.
  const auto inst = telemetry_instance();
  DriverConfig cfg = telemetry_config();
  cfg.net.max_rounds = 5;  // far below the protocol's schedule
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_TRUE(res.aborted());
  EXPECT_TRUE(res.stall.triggered());
  EXPECT_TRUE(res.stall.hit_round_limit);
  // The limit feeds the protocol's schedule, so the exact abort round is
  // schedule-shaped; the report must agree with the run's own accounting.
  EXPECT_EQ(res.stall.rounds, res.stats.rounds);
  EXPECT_FALSE(res.stall.summary().empty());
}

}  // namespace
}  // namespace nc
