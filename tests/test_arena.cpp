#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

// Unit tests of the per-shard bump allocator and the arena-backed flat
// vector that the staging lanes are built on (src/runtime/msgblock.hpp).

namespace nc {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Disjoint: writing one span must not clobber another.
  std::memset(a, 0xaa, 3);
  std::memset(b, 0xbb, 8);
  std::memset(c, 0xcc, 1);
  EXPECT_EQ(static_cast<unsigned char*>(a)[0], 0xaa);
  EXPECT_EQ(static_cast<unsigned char*>(b)[7], 0xbb);
  EXPECT_EQ(static_cast<unsigned char*>(c)[0], 0xcc);
}

TEST(Arena, DefaultAlignmentIsMaxAlign) {
  Arena arena;
  for (int i = 0; i < 5; ++i) {
    void* p = arena.allocate(1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
  }
}

TEST(Arena, ResetReusesMemoryWithoutFreeing) {
  Arena arena;
  void* first = arena.allocate(256, 8);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // A single-block arena hands back the same storage after reset.
  void* again = arena.allocate(256, 8);
  EXPECT_EQ(first, again);
  EXPECT_GE(arena.capacity(), 256u);
}

TEST(Arena, GrowthAcrossBlocksThenCoalescesOnReset) {
  Arena arena;
  // Force several block growths.
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) ptrs.push_back(arena.allocate(1024, 8));
  const std::size_t used = arena.bytes_used();
  EXPECT_GE(used, 64u * 1024u);
  EXPECT_GE(arena.high_water_bytes(), used);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // After the coalescing reset everything fits in one block: the same total
  // re-allocated again must not raise the high-water mark.
  const std::size_t hw = arena.high_water_bytes();
  for (int i = 0; i < 64; ++i) arena.allocate(1024, 8);
  EXPECT_EQ(arena.high_water_bytes(), hw);
}

TEST(Arena, LargeOneShotAllocation) {
  Arena arena;
  constexpr std::size_t kBig = 8u << 20;  // 8 MiB, far past kMinBlockBytes
  auto* p = static_cast<unsigned char*>(arena.allocate(kBig, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[kBig - 1] = 2;  // the whole span must be addressable
  EXPECT_GE(arena.capacity(), kBig);
}

TEST(Arena, HighWaterTracksPeakNotCurrent) {
  Arena arena;
  arena.allocate(4096, 8);
  arena.allocate(4096, 8);
  const std::size_t peak = arena.high_water_bytes();
  EXPECT_GE(peak, 8192u);
  arena.reset();
  arena.allocate(16, 8);
  EXPECT_GE(arena.high_water_bytes(), peak);  // monotone
  EXPECT_LT(arena.bytes_used(), peak);
}

TEST(Arena, AllocateArrayIsTyped) {
  Arena arena;
  std::uint64_t* xs = arena.allocate_array<std::uint64_t>(100);
  for (int i = 0; i < 100; ++i) xs[i] = static_cast<std::uint64_t>(i) * 7;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(xs[i], static_cast<std::uint64_t>(i) * 7);
  }
}

TEST(ArenaVec, HeapModeGrowsAndPreserves) {
  ArenaVec<std::uint32_t> v;  // unbound: heap mode
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_GE(v.capacity_slots(), 1000u);  // clear keeps the span
  v.release();
  EXPECT_EQ(v.capacity_slots(), 0u);
}

TEST(ArenaVec, ArenaModeGrowsAndPreserves) {
  Arena arena;
  ArenaVec<std::uint64_t> v;
  v.bind(&arena);
  for (std::uint64_t i = 0; i < 500; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_EQ(v[i], i * 3);
  // Growth abandoned spans inside the arena; used bytes must cover at least
  // the live span.
  EXPECT_GE(arena.bytes_used(), 500u * sizeof(std::uint64_t));
}

TEST(ArenaVec, AppendReturnsWritableSlots) {
  Arena arena;
  ArenaVec<std::uint16_t> v;
  v.bind(&arena);
  v.push_back(1);
  std::uint16_t* slots = v.append(3);
  slots[0] = 10;
  slots[1] = 20;
  slots[2] = 30;
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[1], 10u);
  EXPECT_EQ(v[3], 30u);
}

TEST(ArenaVec, RoundLifecycleMatchesLaneUsage) {
  // The lane pattern: bind once, then per round release + reserve(previous
  // size) against a freshly reset arena.
  Arena arena;
  ArenaVec<std::uint32_t> v;
  v.bind(&arena);
  for (int round = 0; round < 10; ++round) {
    arena.reset();
    v.release();
    v.reserve(64);
    for (std::uint32_t i = 0; i < 64; ++i) v.push_back(i + round);
    ASSERT_EQ(v.size(), 64u);
    EXPECT_EQ(v[63], 63u + static_cast<std::uint32_t>(round));
  }
  // Steady state: one block, no growth past the first round's high water.
  const std::size_t hw = arena.high_water_bytes();
  arena.reset();
  v.release();
  v.reserve(64);
  for (std::uint32_t i = 0; i < 64; ++i) v.push_back(i);
  EXPECT_EQ(arena.high_water_bytes(), hw);
}

}  // namespace
}  // namespace nc
