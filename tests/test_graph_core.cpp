#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

TEST(Graph, EmptyGraph) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AdjacencyIsSortedAndSymmetric) {
  GraphBuilder b(5);
  b.add_edge(3, 1);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(1, 4));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, HasEdgeRejectsSelfAndOutOfRange) {
  const Graph g = testing::two_triangles();
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 17));
  EXPECT_FALSE(g.has_edge(17, 0));
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate reversed
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  EXPECT_EQ(b.raw_edge_count(), 3u);
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphBuilder, CliqueAndBicliqueAndPath) {
  GraphBuilder b(9);
  b.add_clique({0, 1, 2, 3});          // 6 edges
  b.add_biclique({4, 5}, {6, 7});      // 4 edges
  b.add_path({8, 7, 6});               // 2 edges
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 12u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(4, 7));
  EXPECT_FALSE(g.has_edge(4, 5));
  EXPECT_TRUE(g.has_edge(6, 7));
  EXPECT_TRUE(g.has_edge(8, 7));
}

TEST(Graph, EdgeListIsCanonical) {
  const Graph g = testing::two_triangles();
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), g.m());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, NeighborMaskMatchesAdjacency) {
  const Graph g = testing::clique_with_pendant();
  const auto mask = g.neighbor_mask(4);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(mask.test(v), g.has_edge(4, v)) << "v=" << v;
  }
  EXPECT_EQ(mask.count(), g.degree(4));
}

TEST(Graph, FromCsrAdoptsAdjacency) {
  // Triangle 0-1-2 plus isolated node 3, handed over as raw CSR arrays.
  std::vector<std::size_t> offsets{0, 2, 4, 6, 6};
  std::vector<NodeId> adj{1, 2, 0, 2, 0, 1};
  const Graph g = Graph::from_csr(4, std::move(offsets), std::move(adj));
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, FromCsrRejectsMalformedInput) {
  // Offsets not covering adj.
  EXPECT_THROW(Graph::from_csr(2, {0, 1, 1}, {1, 0}), std::invalid_argument);
  // Wrong offsets length.
  EXPECT_THROW(Graph::from_csr(3, {0, 2, 2}, {1, 0}), std::invalid_argument);
  // Self-loop.
  EXPECT_THROW(Graph::from_csr(2, {0, 1, 2}, {0, 0}), std::invalid_argument);
  // Neighbor out of range.
  EXPECT_THROW(Graph::from_csr(2, {0, 1, 2}, {5, 0}), std::invalid_argument);
  // Unsorted row (also catches in-row duplicates).
  EXPECT_THROW(Graph::from_csr(3, {0, 2, 3, 5}, {2, 1, 2, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(Graph::from_csr(3, {0, 2, 3, 5}, {1, 1, 2, 0, 1}),
               std::invalid_argument);
}

TEST(GraphBuilder, MoveBuildMatchesCopyBuildAndConsumesEdges) {
  Rng rng(41);
  GraphBuilder b(64);
  b.reserve(600);
  for (int i = 0; i < 600; ++i) {
    b.add_edge(static_cast<NodeId>(rng.next_below(64)),
               static_cast<NodeId>(rng.next_below(64)));
  }
  const Graph copy_built = b.build();  // lvalue: builder stays intact
  EXPECT_GT(b.raw_edge_count(), 0u);
  const Graph move_built = std::move(b).build();
  EXPECT_EQ(b.raw_edge_count(), 0u);  // rvalue build consumed the buffer
  EXPECT_EQ(copy_built.edge_list(), move_built.edge_list());
}

TEST(GraphBuilder, CountingSortBuildMatchesEdgeListConstructor) {
  // The counting-sort CSR path must agree with the documented Graph
  // constructor semantics on a messy input (duplicates both ways, loops).
  Rng rng(43);
  GraphBuilder b(40);
  std::vector<std::pair<NodeId, NodeId>> clean;
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(40));
    const auto v = static_cast<NodeId>(rng.next_below(40));
    b.add_edge(u, v);
    if (u != v) clean.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(clean.begin(), clean.end());
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());
  const Graph via_builder = std::move(b).build();
  const Graph via_ctor(40, clean);
  EXPECT_EQ(via_builder.edge_list(), via_ctor.edge_list());
  EXPECT_EQ(via_builder.edge_list(), clean);
}

TEST(Graph, DegreeSumsToTwiceEdges) {
  const Graph g = testing::complete_graph(7);
  std::size_t sum = 0;
  for (NodeId v = 0; v < g.n(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2 * g.m());
  EXPECT_EQ(g.m(), 21u);
}

}  // namespace
}  // namespace nc
