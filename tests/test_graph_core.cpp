#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

TEST(Graph, EmptyGraph) {
  GraphBuilder b(5);
  const Graph g = b.build();
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AdjacencyIsSortedAndSymmetric) {
  GraphBuilder b(5);
  b.add_edge(3, 1);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(1, 4));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(Graph, HasEdgeRejectsSelfAndOutOfRange) {
  const Graph g = testing::two_triangles();
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 17));
  EXPECT_FALSE(g.has_edge(17, 0));
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate reversed
  b.add_edge(0, 1);  // duplicate
  b.add_edge(2, 2);  // self loop
  EXPECT_EQ(b.raw_edge_count(), 3u);
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphBuilder, CliqueAndBicliqueAndPath) {
  GraphBuilder b(9);
  b.add_clique({0, 1, 2, 3});          // 6 edges
  b.add_biclique({4, 5}, {6, 7});      // 4 edges
  b.add_path({8, 7, 6});               // 2 edges
  const Graph g = b.build();
  EXPECT_EQ(g.m(), 12u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(4, 7));
  EXPECT_FALSE(g.has_edge(4, 5));
  EXPECT_TRUE(g.has_edge(6, 7));
  EXPECT_TRUE(g.has_edge(8, 7));
}

TEST(Graph, EdgeListIsCanonical) {
  const Graph g = testing::two_triangles();
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), g.m());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Graph, NeighborMaskMatchesAdjacency) {
  const Graph g = testing::clique_with_pendant();
  const auto mask = g.neighbor_mask(4);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(mask.test(v), g.has_edge(4, v)) << "v=" << v;
  }
  EXPECT_EQ(mask.count(), g.degree(4));
}

TEST(Graph, DegreeSumsToTwiceEdges) {
  const Graph g = testing::complete_graph(7);
  std::size_t sum = 0;
  for (NodeId v = 0; v < g.n(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2 * g.m());
  EXPECT_EQ(g.m(), 21u);
}

}  // namespace
}  // namespace nc
