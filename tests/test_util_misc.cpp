#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nc {
namespace {

// --------------------------------------------------------------- Stats ----

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, MeanVarianceMatchClosedForm) {
  RunningStat s;
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Quantile, NearestRank) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(WilsonInterval, BracketsPointEstimate) {
  const auto iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
}

TEST(WilsonInterval, EdgeCases) {
  const auto zero = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = wilson_interval(50, 50);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(WilsonInterval, ShrinksWithSamples) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(LeastSquares, RecoversSlope) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 1.0);
  }
  EXPECT_NEAR(least_squares_slope(x, y), 3.0, 1e-9);
}

TEST(LeastSquares, DegenerateInputs) {
  EXPECT_EQ(least_squares_slope({}, {}), 0.0);
  EXPECT_EQ(least_squares_slope({1.0}, {2.0}), 0.0);
  EXPECT_EQ(least_squares_slope({2.0, 2.0}, {1.0, 5.0}), 0.0);  // vertical
}

// --------------------------------------------------------------- Table ----

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
}

TEST(Table, StreamsViaOperator) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.str());
}

// ----------------------------------------------------------------- CLI ----

TEST(Args, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "positional",
                        "--eps=0.25"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 0.25);
  EXPECT_FALSE(args.has("positional"));
}

TEST(Args, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("missing", "d"), "d");
  EXPECT_EQ(args.get_int("missing", -3), -3);
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(Args, BooleanFalseSpellings) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=true"};
  Args args(4, argv);
  EXPECT_FALSE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b"));
  EXPECT_TRUE(args.get_bool("c"));
}

// ------------------------------------------------------------- Logging ----

TEST(Logging, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Macro below must not evaluate its stream expression when filtered.
  int evals = 0;
  auto count = [&]() {
    ++evals;
    return "x";
  };
  NC_DEBUG << count();
  EXPECT_EQ(evals, 0);
  set_log_level(before);
}

}  // namespace
}  // namespace nc
