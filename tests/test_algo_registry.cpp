// Coverage for the AlgorithmRegistry: every registered algorithm runs
// deterministically behind the unified AlgoResult interface, adapters
// reproduce the hand-built driver configurations bit-for-bit, and unknown
// names / parameters fail with self-explaining errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "algo/registry.hpp"
#include "core/boosting.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"

namespace nc {
namespace {

Instance small_instance() {
  return make_scenario("theorem",
                       ScenarioParams().with("n", 60).with("delta", 0.5),
                       /*seed=*/7);
}

TEST(AlgorithmRegistry, CataloguesTheSixBuiltins) {
  const auto names = AlgorithmRegistry::global().names();
  ASSERT_GE(names.size(), 6u);
  for (const auto* expected :
       {"dist_near_clique", "shingles", "neighbors2", "peeling", "grasp",
        "ggr_find"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  const auto text = describe_algorithms(AlgorithmRegistry::global());
  for (const auto& name : names) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // The catalogue states each algorithm's cost model.
  EXPECT_NE(text.find("[CONGEST]"), std::string::npos);
  EXPECT_NE(text.find("[LOCAL]"), std::string::npos);
  EXPECT_NE(text.find("[central]"), std::string::npos);
}

TEST(AlgorithmRegistry, EveryAlgorithmIsDeterministicInSeed) {
  const auto inst = small_instance();
  for (const auto& name : AlgorithmRegistry::global().names()) {
    // Keep the protocol quick on the tiny instance.
    AlgoParams params;
    if (name == "dist_near_clique") params.with("max_rounds", 2'000'000);
    const AlgoResult a = run_algorithm(inst.graph, name, params, 5);
    const AlgoResult b = run_algorithm(inst.graph, name, params, 5);
    EXPECT_EQ(a.labels, b.labels) << name;
    EXPECT_EQ(a.stats.rounds, b.stats.rounds) << name;
    EXPECT_EQ(a.stats.bits, b.stats.bits) << name;
    EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits) << name;
    EXPECT_EQ(a.local_ops, b.local_ops) << name;
    EXPECT_EQ(a.aborted, b.aborted) << name;
    EXPECT_EQ(a.model, AlgorithmRegistry::global().algorithm(name).model)
        << name;
  }
}

TEST(AlgorithmRegistry, DistAdapterMatchesHandBuiltDriverConfig) {
  const auto inst = small_instance();
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 9.0 / static_cast<double>(inst.graph.n());
  cfg.net.seed = 11;
  cfg.net.max_rounds = 32'000'000;
  const auto direct = run_dist_near_clique(inst.graph, cfg);
  const auto via_registry = run_algorithm(
      inst.graph, "dist_near_clique",
      AlgoParams().with("eps", 0.2).with("pn", 9.0), /*seed=*/11);
  EXPECT_EQ(direct.labels, via_registry.labels);
  EXPECT_EQ(direct.stats.rounds, via_registry.stats.rounds);
  EXPECT_EQ(direct.stats.bits, via_registry.stats.bits);
  EXPECT_EQ(direct.total_local_ops, via_registry.local_ops);
}

TEST(AlgorithmRegistry, BoostingIsTheVersionsParameter) {
  const auto inst = small_instance();
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 6.0 / static_cast<double>(inst.graph.n());
  cfg.net.seed = 3;
  cfg.net.max_rounds = 8'000'000;
  const auto direct = run_boosted(inst.graph, cfg, 3, 400'000);
  const auto via_registry = run_algorithm(inst.graph, "dist_near_clique",
                                          AlgoParams()
                                              .with("eps", 0.2)
                                              .with("pn", 6.0)
                                              .with("versions", 3)
                                              .with("window", 400'000)
                                              .with("max_rounds", 8'000'000),
                                          /*seed=*/3);
  EXPECT_EQ(direct.labels, via_registry.labels);
  EXPECT_EQ(direct.stats.rounds, via_registry.stats.rounds);
}

TEST(AlgorithmRegistry, CentralBaselinesReportTheirCostSubset) {
  const auto inst = small_instance();
  for (const auto* name : {"peeling", "grasp", "ggr_find"}) {
    const auto res = run_algorithm(inst.graph, name, {}, 1);
    EXPECT_EQ(res.model, CostModel::kCentral) << name;
    EXPECT_EQ(res.stats.rounds, 0u) << name;
    EXPECT_EQ(res.stats.bits, 0u) << name;
    EXPECT_EQ(res.stats.max_message_bits, 0u) << name;
    EXPECT_GT(res.local_ops, 0u) << name;
    EXPECT_EQ(res.headline_cost(), res.local_ops) << name;
  }
  const auto dist = run_algorithm(inst.graph, "dist_near_clique",
                                  AlgoParams().with("max_rounds", 2'000'000),
                                  1);
  EXPECT_EQ(dist.model, CostModel::kCongest);
  EXPECT_EQ(dist.headline_cost(), dist.stats.rounds);
}

TEST(AlgorithmRegistry, CentralLabelsGroupTheFoundSet) {
  const auto inst = small_instance();
  const auto res = run_algorithm(inst.graph, "peeling", {}, 1);
  const auto clusters = res.clusters();
  ASSERT_EQ(clusters.size(), 1u);
  const auto& [label, members] = *clusters.begin();
  EXPECT_EQ(label, members.front());  // smallest member id labels the set
  EXPECT_EQ(members, res.largest_cluster());
}

TEST(AlgorithmRegistry, UnknownAlgorithmFailsWithCatalogue) {
  const auto inst = small_instance();
  try {
    (void)run_algorithm(inst.graph, "no_such_algorithm", {}, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown algorithm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dist_near_clique"), std::string::npos)
        << "message should list the known algorithms: " << msg;
  }
}

TEST(AlgorithmRegistry, UnknownParameterFailsNamingTheKey) {
  const auto inst = small_instance();
  try {
    (void)run_algorithm(inst.graph, "shingles",
                        AlgoParams().with("sample_size", 4), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sample_size"), std::string::npos) << msg;
    EXPECT_NE(msg.find("has no parameter"), std::string::npos) << msg;
  }
}

TEST(AlgorithmRegistry, ParameterTypeMismatchesAreRejected) {
  const auto inst = small_instance();
  // Numeric value for a declared string parameter.
  EXPECT_THROW((void)run_algorithm(inst.graph, "peeling",
                                   AlgoParams().with("objective", 5), 1),
               std::invalid_argument);
  // String value for a declared numeric parameter.
  EXPECT_THROW((void)run_algorithm(inst.graph, "peeling",
                                   AlgoParams().with("eps", "dense"), 1),
               std::invalid_argument);
  // Out-of-range versions must be rejected, not truncated.
  EXPECT_THROW((void)run_algorithm(inst.graph, "dist_near_clique",
                                   AlgoParams().with("versions", 0), 1),
               std::invalid_argument);
  // Unknown peeling objective names the legal values.
  try {
    (void)run_algorithm(inst.graph, "peeling",
                        AlgoParams().with("objective", "biggest"), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("near_clique"), std::string::npos)
        << e.what();
  }
}

TEST(AlgorithmRegistry, PeelingObjectivesDiffer) {
  const auto inst = small_instance();
  const auto near = run_algorithm(inst.graph, "peeling",
                                  AlgoParams().with("objective", "near_clique"),
                                  1);
  const auto densest = run_algorithm(
      inst.graph, "peeling", AlgoParams().with("objective", "densest"), 1);
  EXPECT_FALSE(near.largest_cluster().empty());
  EXPECT_FALSE(densest.largest_cluster().empty());
}

TEST(AlgorithmRegistry, MidRunThrowSurfacesAsAnOrdinaryException) {
  // versions >= 16 passes the adapter's [1, 1023] range check but exceeds
  // the wire format's 4-bit version field, so the protocol throws from
  // open_stream *mid-run* (version 16's window start), not during
  // validation. The regression `nearclique run` relies on: the throw must
  // surface as a std::invalid_argument from AlgorithmRegistry::run — at
  // any thread count — which the CLI maps to a nonzero exit status,
  // instead of aborting the process.
  const auto inst = small_instance();
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_THROW((void)run_algorithm(inst.graph, "dist_near_clique",
                                     AlgoParams()
                                         .with("versions", 16)
                                         .with("window", 40)
                                         .with("threads", threads),
                                     3),
                 std::invalid_argument);
  }
  // The registry stays usable after the failure.
  EXPECT_NO_THROW((void)run_algorithm(
      inst.graph, "dist_near_clique",
      AlgoParams().with("max_rounds", 100'000), 3));
}

TEST(AlgorithmRegistry, FaultParamsReachTheNetwork) {
  // The dist_near_clique adapter builds a FaultPlan from the declared
  // fault keys: a lossy run must report lost traffic in its RunStats and
  // stay a pure function of (graph, params, seed).
  const auto inst = small_instance();
  const AlgoParams params = AlgoParams()
                                .with("loss", 0.05)
                                .with("delay_max", 1)
                                .with("max_rounds", 50'000);
  const auto a = run_algorithm(inst.graph, "dist_near_clique", params, 7);
  const auto b = run_algorithm(inst.graph, "dist_near_clique", params, 7);
  EXPECT_GT(a.stats.messages_lost, 0u);
  EXPECT_GT(a.stats.messages_delayed, 0u);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.messages_lost, b.stats.messages_lost);
  EXPECT_EQ(a.labels, b.labels);
  // Out-of-range fault params are rejected by the plan validator.
  EXPECT_THROW((void)run_algorithm(inst.graph, "dist_near_clique",
                                   AlgoParams().with("loss", 1.5), 1),
               std::invalid_argument);
}

TEST(AlgorithmRegistry, ParseAlgoSpecRoundTrip) {
  const auto spec = parse_algo_spec("dist_near_clique", "eps=0.15,pn=6", 9);
  EXPECT_EQ(spec.name, "dist_near_clique");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.params.get_double("eps"), 0.15);
  EXPECT_DOUBLE_EQ(spec.params.get_double("pn"), 6.0);

  // Declared string parameters parse verbatim.
  const auto peel = parse_algo_spec("peeling", "objective=densest", 1);
  EXPECT_EQ(peel.params.get_string("objective"), "densest");

  EXPECT_THROW(parse_algo_spec("shingles", "eps", 1), std::invalid_argument);
  EXPECT_THROW(parse_algo_spec("shingles", "eps=abc", 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nc
