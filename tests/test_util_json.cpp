#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"

namespace nc {
namespace {

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.begin_object()
      .key("a")
      .value(std::uint64_t{1})
      .key("b")
      .begin_array()
      .value(0.5)
      .value(true)
      .null()
      .end_array()
      .key("s")
      .value("quote \" backslash \\ newline \n")
      .key("nested")
      .begin_object()
      .key("x")
      .value(-2.0)
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[0.5,true,null],"
            "\"s\":\"quote \\\" backslash \\\\ newline \\n\","
            "\"nested\":{\"x\":-2}}");
}

TEST(JsonWriter, EmptyContainersAndSignedIntegers) {
  JsonWriter w;
  w.begin_object()
      .key("empty_obj")
      .begin_object()
      .end_object()
      .key("empty_arr")
      .begin_array()
      .end_array()
      .key("neg")
      .value(std::int64_t{-42})
      .end_object();
  EXPECT_EQ(w.str(), "{\"empty_obj\":{},\"empty_arr\":[],\"neg\":-42}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .value(1.25)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,1.25]");
}

TEST(JsonWriter, NumberFormattingIsCompact) {
  EXPECT_EQ(JsonWriter::number(150.0), "150");
  EXPECT_EQ(JsonWriter::number(0.375), "0.375");
  EXPECT_EQ(JsonWriter::number(-0.0078125), "-0.0078125");
}

TEST(JsonWriter, ControlCharactersAreEscaped) {
  EXPECT_EQ(JsonWriter::escape(std::string("a\x01" "b\tc")),
            "a\\u0001b\\tc");
}

TEST(JsonParser, ParsesTheFullGrammar) {
  const JsonValue v = parse_json(
      R"(  {"n": 150, "neg": -2.5e-1, "flag": true, "off": false,
            "nothing": null, "name": "a\"b\\c\n\u0041",
            "arr": [1, [2, 3], {"x": 4}], "obj": {"k": "v"}}  )");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("n")->as_number("n"), 150.0);
  EXPECT_DOUBLE_EQ(v.find("neg")->as_number("neg"), -0.25);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_FALSE(v.find("off")->boolean);
  EXPECT_EQ(v.find("nothing")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("name")->as_string("name"), "a\"b\\c\nA");
  const auto& arr = v.find("arr")->as_array("arr");
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[0].as_number("a0"), 1.0);
  EXPECT_EQ(arr[1].as_array("a1").size(), 2u);
  EXPECT_DOUBLE_EQ(arr[2].find("x")->as_number("x"), 4.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .key("a")
      .begin_array()
      .value(0.5)
      .value(true)
      .null()
      .end_array()
      .key("s")
      .value("quote \" backslash \\ tab \t")
      .end_object();
  const JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.find("s")->as_string("s"), "quote \" backslash \\ tab \t");
  EXPECT_DOUBLE_EQ(v.find("a")->as_array("a")[0].as_number("a0"), 0.5);
}

TEST(JsonParser, DecodesSurrogatePairsAsOneCodePoint) {
  // RFC 8259 escapes non-BMP characters as a surrogate pair; the parser
  // must combine them into one 4-byte UTF-8 sequence (U+1F600 here), not
  // two encoded surrogates. Lone surrogates are malformed.
  const JsonValue v = parse_json("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string("s"), "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)parse_json("\"\\ud83d\""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"\\ud83dxx\""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"\\ud83d\\u0041\""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"\\ude00\""), std::invalid_argument);
}

TEST(JsonParser, RejectsMalformedInputWithPosition) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "{\"a\":}", "tru", "1.2.3",
        "\"unterminated", "{\"a\":1} trailing", "\"bad\\q\"",
        "\"\\u12g4\""}) {
    EXPECT_THROW((void)parse_json(bad), std::invalid_argument) << bad;
  }
  try {
    (void)parse_json("{\"a\": oops}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

}  // namespace
}  // namespace nc
