#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"

namespace nc {
namespace {

TEST(JsonWriter, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.begin_object()
      .key("a")
      .value(std::uint64_t{1})
      .key("b")
      .begin_array()
      .value(0.5)
      .value(true)
      .null()
      .end_array()
      .key("s")
      .value("quote \" backslash \\ newline \n")
      .key("nested")
      .begin_object()
      .key("x")
      .value(-2.0)
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[0.5,true,null],"
            "\"s\":\"quote \\\" backslash \\\\ newline \\n\","
            "\"nested\":{\"x\":-2}}");
}

TEST(JsonWriter, EmptyContainersAndSignedIntegers) {
  JsonWriter w;
  w.begin_object()
      .key("empty_obj")
      .begin_object()
      .end_object()
      .key("empty_arr")
      .begin_array()
      .end_array()
      .key("neg")
      .value(std::int64_t{-42})
      .end_object();
  EXPECT_EQ(w.str(), "{\"empty_obj\":{},\"empty_arr\":[],\"neg\":-42}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::nan(""))
      .value(std::numeric_limits<double>::infinity())
      .value(1.25)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,1.25]");
}

TEST(JsonWriter, NumberFormattingIsCompact) {
  EXPECT_EQ(JsonWriter::number(150.0), "150");
  EXPECT_EQ(JsonWriter::number(0.375), "0.375");
  EXPECT_EQ(JsonWriter::number(-0.0078125), "-0.0078125");
}

TEST(JsonWriter, ControlCharactersAreEscaped) {
  EXPECT_EQ(JsonWriter::escape(std::string("a\x01" "b\tc")),
            "a\\u0001b\\tc");
}

}  // namespace
}  // namespace nc
