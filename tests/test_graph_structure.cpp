#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cliques.hpp"
#include "graph/components.hpp"
#include "util/rng.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

// ---------------------------------------------------------- Components ----

TEST(Components, WholeGraphSingleComponent) {
  const Graph g = testing::complete_graph(5);
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  const auto comps = induced_components(g, all);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0], all);
}

TEST(Components, InducedSubsetSplits) {
  const Graph g = testing::path_graph(6);  // 0-1-2-3-4-5
  const auto comps = induced_components(g, {0, 1, 3, 4, 5});
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{3, 4, 5}));
}

TEST(Components, SingletonsAndEmpty) {
  const Graph g = testing::path_graph(5);
  const auto comps = induced_components(g, {0, 2, 4});
  ASSERT_EQ(comps.size(), 3u);
  for (const auto& c : comps) EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(induced_components(g, {}).empty());
}

TEST(Components, OrderedByMinimumElement) {
  const Graph g = testing::two_triangles();
  const auto comps = induced_components(g, {5, 4, 3, 2, 1, 0});
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].front(), 0u);
  EXPECT_EQ(comps[1].front(), 3u);
}

TEST(Components, BfsDistances) {
  const Graph g = testing::path_graph(5);
  std::vector<NodeId> all{0, 1, 2, 3, 4};
  const auto dist = induced_bfs_distances(g, all, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
  // Restricting members cuts paths.
  const auto dist2 = induced_bfs_distances(g, {0, 1, 3, 4}, 0);
  EXPECT_EQ(dist2[1], 1u);
  EXPECT_EQ(dist2[3], kUnreachable);
  // Source outside members.
  const auto dist3 = induced_bfs_distances(g, {1, 2}, 0);
  EXPECT_EQ(dist3[1], kUnreachable);
}

TEST(Components, Diameter) {
  EXPECT_EQ(graph_diameter(testing::path_graph(7)), 6u);
  EXPECT_EQ(graph_diameter(testing::complete_graph(5)), 1u);
  EXPECT_EQ(graph_diameter(testing::cycle_graph(8)), 4u);
  EXPECT_EQ(graph_diameter(testing::two_triangles()), kUnreachable);
}

// -------------------------------------------------------------- Cliques ---

TEST(Cliques, FindsMaxCliqueInSmallGraphs) {
  EXPECT_EQ(max_clique(testing::complete_graph(6)).size(), 6u);
  EXPECT_EQ(max_clique(testing::path_graph(6)).size(), 2u);
  EXPECT_EQ(max_clique(testing::two_triangles()).size(), 3u);
  EXPECT_EQ(max_clique(testing::clique_with_pendant()),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Cliques, EmptyAndTrivialGraphs) {
  GraphBuilder b(3);
  const Graph g = b.build();
  EXPECT_LE(max_clique(g).size(), 1u);  // isolated vertex counts as clique
  GraphBuilder b0(0);
  EXPECT_TRUE(max_clique(b0.build()).empty());
}

TEST(Cliques, PlantedCliqueInNoise) {
  Rng rng(5);
  GraphBuilder b(40);
  b.add_clique({3, 8, 13, 21, 30, 34, 39});
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      if (rng.next_bernoulli(0.15)) b.add_edge(u, v);
    }
  }
  const auto clique = max_clique(b.build());
  EXPECT_GE(clique.size(), 7u);
}

TEST(Cliques, MaxCliqueContainingRespectsAnchor) {
  const Graph g = testing::clique_with_pendant();
  const auto with5 = max_clique_containing(g, 5, {0, 1, 2, 3, 4, 5}, 100000);
  EXPECT_EQ(with5, (std::vector<NodeId>{4, 5}));
  const auto with0 = max_clique_containing(g, 0, {0, 1, 2, 3, 4, 5}, 100000);
  EXPECT_EQ(with0, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Cliques, MaxCliqueContainingRespectsAllowedSet) {
  const Graph g = testing::complete_graph(6);
  const auto restricted = max_clique_containing(g, 0, {0, 1, 2}, 100000);
  EXPECT_EQ(restricted, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Cliques, BudgetExhaustionReportsAndReturnsSomething) {
  Rng rng(9);
  GraphBuilder b(60);
  for (NodeId u = 0; u < 60; ++u) {
    for (NodeId v = u + 1; v < 60; ++v) {
      if (rng.next_bernoulli(0.5)) b.add_edge(u, v);
    }
  }
  bool exhausted = false;
  const auto clique = max_clique(b.build(), 10, &exhausted);
  EXPECT_TRUE(exhausted);
  EXPECT_GE(clique.size(), 0u);  // best-effort result
  EXPECT_GT(last_clique_search_expansions(), 0u);
}

}  // namespace
}  // namespace nc
