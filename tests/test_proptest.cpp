#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "proptest/adjacency_oracle.hpp"
#include "proptest/rho_clique_tester.hpp"
#include "proptest/tolerant_tester.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

TEST(AdjacencyOracle, CountsQueries) {
  const Graph g = testing::complete_graph(5);
  AdjacencyOracle oracle(g);
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_TRUE(oracle.query(0, 1));
  EXPECT_FALSE(oracle.query(0, 0));
  EXPECT_EQ(oracle.queries(), 2u);
  oracle.reset_queries();
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_EQ(oracle.n(), 5u);
}

TEST(RhoCliqueTester, AcceptsGraphWithLargeClique) {
  Rng gen(1);
  PlantedNearCliqueParams pp;
  pp.n = 400;
  pp.clique_size = 240;  // rho = 0.6
  pp.background_p = 0.05;
  pp.halo_p = 0.1;
  const auto inst = planted_near_clique(pp, gen);
  AdjacencyOracle oracle(inst.graph);
  RhoCliqueTesterParams params;
  params.rho = 0.5;
  params.eps = 0.2;
  int accepts = 0;
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    Rng rng(seed);
    if (rho_clique_test(oracle, params, rng).accept) ++accepts;
  }
  EXPECT_GE(accepts, 4);  // constant success probability
}

TEST(RhoCliqueTester, RejectsSparseRandomGraph) {
  Rng gen(2);
  const Graph g = erdos_renyi(400, 0.2, gen);
  AdjacencyOracle oracle(g);
  RhoCliqueTesterParams params;
  params.rho = 0.5;
  params.eps = 0.2;
  int accepts = 0;
  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    Rng rng(seed);
    if (rho_clique_test(oracle, params, rng).accept) ++accepts;
  }
  EXPECT_LE(accepts, 3);
}

TEST(RhoCliqueTester, QueryComplexityIndependentOfN) {
  RhoCliqueTesterParams params;
  params.rho = 0.5;
  params.eps = 0.25;
  std::uint64_t q_small = 0, q_large = 0;
  {
    Rng gen(3), rng(9);
    const Graph g = erdos_renyi(200, 0.3, gen);
    AdjacencyOracle oracle(g);
    q_small = rho_clique_test(oracle, params, rng).queries;
  }
  {
    Rng gen(3), rng(9);
    const Graph g = erdos_renyi(800, 0.3, gen);
    AdjacencyOracle oracle(g);
    q_large = rho_clique_test(oracle, params, rng).queries;
  }
  EXPECT_EQ(q_small, q_large);  // same samples, same probes — no n term
  EXPECT_GT(q_small, 0u);
}

TEST(RhoCliqueTester, MoreQueriesForSmallerEps) {
  Rng gen(4);
  const Graph g = erdos_renyi(300, 0.3, gen);
  AdjacencyOracle oracle(g);
  Rng r1(1), r2(1);
  RhoCliqueTesterParams coarse;
  coarse.eps = 0.3;
  RhoCliqueTesterParams fine;
  fine.eps = 0.1;
  const auto qc = rho_clique_test(oracle, coarse, r1).queries;
  const auto qf = rho_clique_test(oracle, fine, r2).queries;
  EXPECT_GT(qf, qc);
}

TEST(RhoCliqueTester, EmptyGraphRejects) {
  GraphBuilder b(0);
  const Graph g = b.build();
  AdjacencyOracle oracle(g);
  Rng rng(1);
  const auto res = rho_clique_test(oracle, RhoCliqueTesterParams{}, rng);
  EXPECT_FALSE(res.accept);
}

TEST(TolerantTester, SeparatesPromiseCases) {
  // YES case: eps^3-near clique of half the graph.
  Rng gen(5);
  PlantedNearCliqueParams pp;
  pp.n = 400;
  pp.clique_size = 240;
  pp.eps_missing = 0.2 * 0.2 * 0.2;
  pp.background_p = 0.05;
  pp.halo_p = 0.1;
  const auto yes_inst = planted_near_clique(pp, gen);
  // NO case: G(n, 0.3) — whp no 200-node set is 0.2-near clique (would need
  // density 0.8 where the expected density is 0.3).
  const Graph no_graph = erdos_renyi(400, 0.3, gen);

  TolerantTesterParams params;
  params.rho = 0.5;
  params.eps = 0.2;
  params.repetitions = 7;

  AdjacencyOracle yes_oracle(yes_inst.graph);
  Rng r1(7);
  const auto yes = tolerant_near_clique_test(yes_oracle, params, r1);
  EXPECT_TRUE(yes.contains_near_clique);

  AdjacencyOracle no_oracle(no_graph);
  Rng r2(7);
  const auto no = tolerant_near_clique_test(no_oracle, params, r2);
  EXPECT_FALSE(no.contains_near_clique);
  EXPECT_GT(no.queries, 0u);
}

}  // namespace
}  // namespace nc
