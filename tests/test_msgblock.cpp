#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/link.hpp"
#include "runtime/message.hpp"
#include "runtime/msgblock.hpp"
#include "runtime/reliability.hpp"
#include "runtime/stream.hpp"
#include "util/arena.hpp"

// Round-trip tests of the SoA staging lanes: a message scheduled as a
// zero-copy MsgView, pushed into a MsgBlock (inline or spilled encoding),
// decoded with record() and replayed into an InStream must reproduce the
// exact symbol sequence, EOS flag and wire accounting of the direct path.

namespace nc {
namespace {

constexpr unsigned kHeader = 16;

// One producer symbol sequence scheduled through a real Link into a view.
struct Scheduled {
  Link link;
  MsgView view;
  bool ok = false;
};

void schedule(Scheduled& s, const StreamKey& key,
              const std::vector<std::pair<std::uint64_t, unsigned>>& symbols,
              bool close, std::size_t budget_bits) {
  OutChannel ch;
  s.link.add_stream(key, ch.state());
  for (const auto& [v, w] : symbols) ch.put(v, w);
  if (close) ch.close();
  s.ok = s.link.schedule_view(budget_bits, kHeader, s.view);
}

// Replays a decoded record into an InStream exactly as Network::deliver_record
// does, then pops everything back.
std::vector<std::pair<std::uint64_t, unsigned>> replay(const MsgBlock::Rec& r) {
  InStream in;
  if (r.spilled) {
    in.deliver_packed(r.pay_words, r.pay_word_count, 0, r.pay_bits,
                      r.pay_widths, r.symbol_count);
  } else {
    if (r.symbol_count >= 1) in.deliver(r.v0, r.w0);
    if (r.symbol_count == 2) in.deliver(r.v1, r.w1);
  }
  if (r.eos) in.deliver_eos();
  std::vector<std::pair<std::uint64_t, unsigned>> out;
  // Widths are recoverable from the record for verification purposes.
  for (std::uint32_t i = 0; i < r.symbol_count; ++i) {
    unsigned w;
    if (r.spilled) {
      w = r.pay_widths[i];
    } else {
      w = i == 0 ? r.w0 : r.w1;
    }
    out.emplace_back(in.pop(), w);
  }
  EXPECT_EQ(in.available(), 0u);
  EXPECT_EQ(in.closed(), r.eos);
  return out;
}

TEST(MsgBlock, InlineSingleSymbolRoundTripsEveryKindAndVersion) {
  MsgBlock block;  // heap mode
  std::vector<StreamKey> keys;
  for (std::uint16_t kind = 0; kind < kMaxMsgKinds; ++kind) {
    for (std::uint16_t version = 0; version < kMaxStreamVersions;
         version += 5) {
      keys.push_back(StreamKey{kind, NodeId{kind * 100u + version}, version});
    }
  }
  std::vector<Scheduled> scheduled(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    schedule(scheduled[i], keys[i], {{i * 7 + 1, 20}}, /*close=*/true,
             kHeader + 64);
    ASSERT_TRUE(scheduled[i].ok);
    block.push(scheduled[i].view, NodeId(i), static_cast<std::uint32_t>(i),
               0);
  }
  ASSERT_EQ(block.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const MsgBlock::Rec r = block.record(i, kHeader);
    EXPECT_EQ(r.to, NodeId(i));
    EXPECT_EQ(r.back_index, i);
    EXPECT_EQ(r.key.kind, keys[i].kind);
    EXPECT_EQ(r.key.tag, keys[i].tag);
    EXPECT_EQ(r.key.version, keys[i].version);
    EXPECT_TRUE(r.eos);  // budget held the whole stream, EOS piggybacked
    EXPECT_FALSE(r.spilled);
    EXPECT_EQ(r.symbol_count, 1u);
    EXPECT_EQ(r.wire_bits, kHeader + 20u);
    const auto symbols = replay(r);
    ASSERT_EQ(symbols.size(), 1u);
    EXPECT_EQ(symbols[0].first, i * 7 + 1);
    EXPECT_EQ(symbols[0].second, 20u);
  }
}

TEST(MsgBlock, InlineTwoSymbolsIncludingMaxWidth) {
  MsgBlock block;
  Scheduled s;
  const std::uint64_t big = ~std::uint64_t{0};
  schedule(s, StreamKey{3, 42, 1}, {{big, 64}, {0x1234, 16}}, /*close=*/false,
           kHeader + 64 + 16);
  ASSERT_TRUE(s.ok);
  block.push(s.view, 9, 2, 0);
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_FALSE(r.spilled);
  EXPECT_FALSE(r.eos);  // stream not closed
  ASSERT_EQ(r.symbol_count, 2u);
  EXPECT_EQ(r.wire_bits, kHeader + 80u);
  const auto symbols = replay(r);
  EXPECT_EQ(symbols[0], (std::pair<std::uint64_t, unsigned>{big, 64u}));
  EXPECT_EQ(symbols[1], (std::pair<std::uint64_t, unsigned>{0x1234u, 16u}));
}

TEST(MsgBlock, SpilledManySymbolsRoundTrip) {
  MsgBlock block;
  Scheduled s;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  std::size_t payload_bits = 0;
  for (unsigned i = 0; i < 50; ++i) {
    const unsigned w = 3 + (i * 7) % 62;  // mixed widths, crosses words
    symbols.emplace_back((std::uint64_t{i} * 0x9e3779b97f4a7c15u) >> (64 - w),
                         w);
    payload_bits += w;
  }
  schedule(s, StreamKey{7, 1000, 3}, symbols, /*close=*/true,
           kHeader + payload_bits);
  ASSERT_TRUE(s.ok);
  block.push(s.view, 5, 0, 0);
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_TRUE(r.spilled);
  EXPECT_TRUE(r.eos);
  ASSERT_EQ(r.symbol_count, 50u);
  EXPECT_EQ(r.pay_bits, payload_bits);
  const auto got = replay(r);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(got[i], symbols[i]) << "symbol " << i;
  }
}

TEST(MsgBlock, SpilledMaxWidthSymbolsRoundTrip) {
  // All-64-bit payload: the widest legal symbols, word boundaries everywhere.
  MsgBlock block;
  Scheduled s;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  for (unsigned i = 0; i < 8; ++i) {
    symbols.emplace_back(0x0102030405060708u * (i + 1), 64);
  }
  schedule(s, StreamKey{1, 2, 0}, symbols, /*close=*/true, kHeader + 8 * 64);
  ASSERT_TRUE(s.ok);
  block.push(s.view, 1, 0, 0);
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_TRUE(r.spilled);
  ASSERT_EQ(r.symbol_count, 8u);
  const auto got = replay(r);
  for (std::size_t i = 0; i < symbols.size(); ++i) EXPECT_EQ(got[i], symbols[i]);
}

TEST(MsgBlock, PureEosMessageCarriesNoPayload) {
  MsgBlock block;
  Scheduled s;
  schedule(s, StreamKey{2, 8, 0}, {}, /*close=*/true, kHeader);
  ASSERT_TRUE(s.ok);  // empty-but-closed stream schedules a pure-EOS message
  block.push(s.view, 3, 1, 0);
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_TRUE(r.eos);
  EXPECT_FALSE(r.spilled);
  EXPECT_EQ(r.symbol_count, 0u);
  EXPECT_EQ(r.wire_bits, kHeader);
  InStream in;
  if (r.eos) in.deliver_eos();
  EXPECT_TRUE(in.finished());
}

TEST(MsgBlock, LocalDrainViewsStageUnbounded) {
  // LOCAL mode drains whole streams through drain_views; a long stream must
  // spill and round-trip through the lane in one message.
  Link link;
  OutChannel ch;
  link.add_stream(StreamKey{4, 77, 0}, ch.state());
  std::vector<std::uint64_t> sent;
  for (std::uint64_t i = 0; i < 200; ++i) {
    ch.put(i * 13 + 5, 32);
    sent.push_back(i * 13 + 5);
  }
  ch.close();
  MsgBlock block;
  const std::size_t produced =
      link.drain_views(kHeader, [&](const MsgView& v) {
        block.push(v, 0, 0, 0);
      });
  ASSERT_EQ(produced, 1u);
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_TRUE(r.spilled);
  ASSERT_EQ(r.symbol_count, 200u);
  const auto got = replay(r);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].first, sent[i]);
    EXPECT_EQ(got[i].second, 32u);
  }
}

TEST(MsgBlock, AppendFromCopiesInlineAndSpilledRows) {
  // The delayed-bucket hand-off: rows staged in an arena-backed lane are
  // copied into a heap-backed bucket that outlives the round.
  Arena arena;
  MsgBlock lane;
  lane.bind(&arena);
  lane.begin_round();

  Scheduled small;
  schedule(small, StreamKey{6, 11, 2}, {{0xabcd, 16}}, /*close=*/false,
           kHeader + 16);
  ASSERT_TRUE(small.ok);
  lane.push(small.view, 10, 4, 7);

  Scheduled big;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  for (unsigned i = 0; i < 20; ++i) symbols.emplace_back(i + 1, 17);
  schedule(big, StreamKey{8, 12, 0}, symbols, /*close=*/true,
           kHeader + 20 * 17);
  ASSERT_TRUE(big.ok);
  lane.push(big.view, 11, 5, 9);

  MsgBlock bucket;  // heap mode
  bucket.append_from(lane, 0, kHeader);
  bucket.append_from(lane, 1, kHeader);

  // Simulate the next round: the arena rewinds and the lane re-carves. The
  // bucket's copies must be unaffected.
  arena.reset();
  lane.begin_round();

  const MsgBlock::Rec r0 = bucket.record(0, kHeader);
  EXPECT_EQ(r0.to, 10u);
  EXPECT_EQ(r0.back_index, 4u);
  EXPECT_EQ(r0.deliver_round, 7u);
  EXPECT_FALSE(r0.spilled);
  const auto got0 = replay(r0);
  ASSERT_EQ(got0.size(), 1u);
  EXPECT_EQ(got0[0], (std::pair<std::uint64_t, unsigned>{0xabcdu, 16u}));

  const MsgBlock::Rec r1 = bucket.record(1, kHeader);
  EXPECT_EQ(r1.to, 11u);
  EXPECT_EQ(r1.deliver_round, 9u);
  EXPECT_TRUE(r1.spilled);
  EXPECT_TRUE(r1.eos);
  const auto got1 = replay(r1);
  ASSERT_EQ(got1.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(got1[i], symbols[i]) << "symbol " << i;
  }
}

TEST(MsgBlock, ArenaLaneSteadyStateReusesMemory) {
  Arena arena;
  MsgBlock lane;
  lane.bind(&arena);
  for (int round = 0; round < 8; ++round) {
    arena.reset();
    lane.begin_round();
    for (int m = 0; m < 32; ++m) {
      Scheduled s;
      schedule(s, StreamKey{1, NodeId(m), 0},
               {{static_cast<std::uint64_t>(m * round), 24}}, true,
               kHeader + 24);
      ASSERT_TRUE(s.ok);
      lane.push(s.view, NodeId(m), 0, 0);
    }
    ASSERT_EQ(lane.size(), 32u);
  }
  // After the first two rounds (growth then coalesce) the arena should stop
  // growing: identical per-round footprint.
  const std::size_t hw = arena.high_water_bytes();
  arena.reset();
  lane.begin_round();
  for (int m = 0; m < 32; ++m) {
    Scheduled s;
    schedule(s, StreamKey{1, NodeId(m), 0}, {{7, 24}}, true, kHeader + 24);
    lane.push(s.view, NodeId(m), 0, 0);
  }
  EXPECT_EQ(arena.high_water_bytes(), hw);
}

TEST(MsgBlock, BroadcastUpgradeKeepsFirstReceiverAndSharesPayload) {
  // A row starts unicast; the first add_receiver upgrades it in place and
  // the original (to, back, round) must come back as receiver 0, in order.
  MsgBlock block;
  Scheduled s;
  schedule(s, StreamKey{3, 21, 1}, {{0xbeef, 16}, {0x7, 3}}, /*close=*/true,
           kHeader + 19);
  ASSERT_TRUE(s.ok);
  block.push(s.view, 40, 4, 0);
  block.add_receiver(41, 5, 0);
  block.add_receiver(47, 9, 0);

  ASSERT_EQ(block.size(), 1u);            // one row...
  EXPECT_EQ(block.message_count(), 3u);   // ...three physical messages
  const MsgBlock::Rec r = block.record(0, kHeader);
  EXPECT_TRUE(r.bcast);
  EXPECT_FALSE(r.spilled);
  EXPECT_TRUE(r.eos);
  ASSERT_EQ(r.rcv_count, 3u);
  const MsgBlock::Receiver want[] = {{40, 4, 0}, {41, 5, 0}, {47, 9, 0}};
  for (std::uint32_t j = 0; j < r.rcv_count; ++j) {
    const MsgBlock::Receiver rcv = block.receiver(r.rcv_begin + j);
    EXPECT_EQ(rcv.to, want[j].to);
    EXPECT_EQ(rcv.back_index, want[j].back_index);
    EXPECT_EQ(rcv.deliver_round, want[j].deliver_round);
  }
  // The shared payload decodes once and serves every copy.
  const auto symbols = replay(r);
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], (std::pair<std::uint64_t, unsigned>{0xbeefu, 16u}));
  EXPECT_EQ(symbols[1], (std::pair<std::uint64_t, unsigned>{0x7u, 3u}));
}

TEST(MsgBlock, BroadcastSpilledMaxWidthFansOutToEveryDegree) {
  // Spilled all-64-bit payload (the widest legal symbols) fanned out to
  // 1..deg receivers: one receiver must stay a plain unicast row; larger
  // fans share the single spilled payload and keep per-copy rounds.
  for (std::uint32_t deg = 1; deg <= 5; ++deg) {
    MsgBlock block;
    Scheduled s;
    std::vector<std::pair<std::uint64_t, unsigned>> symbols;
    for (unsigned i = 0; i < 6; ++i) {
      symbols.emplace_back(0x1111111111111111u * (i + 1), 64);
    }
    schedule(s, StreamKey{7, 900, 2}, symbols, /*close=*/true,
             kHeader + 6 * 64);
    ASSERT_TRUE(s.ok);
    block.push(s.view, 100, 0, 0);
    for (std::uint32_t j = 1; j < deg; ++j) {
      block.add_receiver(100 + j, j, /*deliver_round=*/j);  // per-copy delay
    }
    ASSERT_EQ(block.size(), 1u) << "deg " << deg;
    EXPECT_EQ(block.message_count(), deg);
    const MsgBlock::Rec r = block.record(0, kHeader);
    EXPECT_TRUE(r.spilled);
    if (deg == 1) {
      EXPECT_FALSE(r.bcast);  // single receiver costs exactly a unicast
      EXPECT_EQ(r.to, 100u);
    } else {
      EXPECT_TRUE(r.bcast);
      ASSERT_EQ(r.rcv_count, deg);
      for (std::uint32_t j = 0; j < deg; ++j) {
        const MsgBlock::Receiver rcv = block.receiver(r.rcv_begin + j);
        EXPECT_EQ(rcv.to, 100u + j);
        EXPECT_EQ(rcv.deliver_round, j);
      }
    }
    const auto got = replay(r);
    ASSERT_EQ(got.size(), symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      EXPECT_EQ(got[i], symbols[i]) << "deg " << deg << " symbol " << i;
    }
  }
}

TEST(MsgBlock, BroadcastReceiversSplitAcrossDstShardLanes) {
  // The stage phase groups per (src, dst-shard) lane: a broadcast whose
  // receivers live on two destination shards stages one row per lane, each
  // fanning only its own shard's receivers. Two lanes, same scheduled view.
  Arena arena0, arena1;
  MsgBlock lane0, lane1;
  lane0.bind(&arena0);
  lane1.bind(&arena1);
  lane0.begin_round();
  lane1.begin_round();

  Scheduled s;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  for (unsigned i = 0; i < 12; ++i) symbols.emplace_back(i * 3 + 1, 33);
  schedule(s, StreamKey{5, 77, 0}, symbols, /*close=*/false,
           kHeader + 12 * 33);
  ASSERT_TRUE(s.ok);

  // Shard 0 gets receivers {2, 4, 6}; shard 1 gets only {9001}.
  lane0.push(s.view, 2, 0, 0);
  lane0.add_receiver(4, 1, 0);
  lane0.add_receiver(6, 2, 0);
  lane1.push(s.view, 9001, 3, 0);

  const MsgBlock::Rec r0 = lane0.record(0, kHeader);
  const MsgBlock::Rec r1 = lane1.record(0, kHeader);
  EXPECT_TRUE(r0.bcast);
  ASSERT_EQ(r0.rcv_count, 3u);
  EXPECT_EQ(lane0.receiver(r0.rcv_begin + 2).to, 6u);
  EXPECT_FALSE(r1.bcast);  // lone receiver on its shard: plain unicast row
  EXPECT_EQ(r1.to, 9001u);
  // Both lanes decode the identical payload and identical wire charge.
  EXPECT_EQ(r0.wire_bits, r1.wire_bits);
  const auto got0 = replay(r0);
  const auto got1 = replay(r1);
  EXPECT_EQ(got0, got1);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(got0[i], symbols[i]) << "symbol " << i;
  }
}

TEST(MsgBlock, AppendReceiverFromMaterializesDelayedUnicastCopy) {
  // A delayed broadcast copy leaves the shared row: append_receiver_from
  // parks it in a heap bucket as an independent unicast message carrying
  // its own deliver round, surviving the lane's arena reset.
  Arena arena;
  MsgBlock lane;
  lane.bind(&arena);
  lane.begin_round();

  Scheduled s;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  for (unsigned i = 0; i < 9; ++i) symbols.emplace_back(0xa0 + i, 12);
  schedule(s, StreamKey{6, 13, 1}, symbols, /*close=*/true, kHeader + 9 * 12);
  ASSERT_TRUE(s.ok);
  lane.push(s.view, 50, 0, 0);
  lane.add_receiver(51, 1, /*deliver_round=*/17);  // this copy is delayed

  const MsgBlock::Rec staged = lane.record(0, kHeader);
  ASSERT_TRUE(staged.bcast);
  const MsgBlock::Receiver delayed = lane.receiver(staged.rcv_begin + 1);
  MsgBlock bucket;  // heap mode, outlives the round
  bucket.append_receiver_from(lane, 0, delayed, kHeader);

  arena.reset();
  lane.begin_round();

  const MsgBlock::Rec r = bucket.record(0, kHeader);
  EXPECT_FALSE(r.bcast);  // materialized as a plain unicast row
  EXPECT_EQ(r.to, 51u);
  EXPECT_EQ(r.back_index, 1u);
  EXPECT_EQ(r.deliver_round, 17u);
  EXPECT_TRUE(r.eos);
  const auto got = replay(r);
  ASSERT_EQ(got.size(), symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(got[i], symbols[i]) << "symbol " << i;
  }
}

TEST(MsgBlock, ReliabilityKindsRoundTripInlineIncludingMaxWidth) {
  // The reliability service's wire kinds (kRelAck = 30, kRelRepair = 31)
  // live at the top of the 5-bit kind field: a regression that narrows the
  // packed kind bits truncates exactly these. Lock the round trip for an
  // inline max-width row under each kind.
  static_assert(kRelAck == 30 && kRelRepair == 31);
  static_assert(kRelRepair < kMaxMsgKinds);
  MsgBlock block;
  const std::uint64_t big = ~std::uint64_t{0};
  std::vector<Scheduled> scheduled(2);
  const std::uint16_t kinds[2] = {kRelAck, kRelRepair};
  for (std::size_t i = 0; i < 2; ++i) {
    schedule(scheduled[i], StreamKey{kinds[i], NodeId(40 + i), 2},
             {{big, 64}, {0x5a5au, 16}}, /*close=*/true, kHeader + 64 + 16);
    ASSERT_TRUE(scheduled[i].ok);
    block.push(scheduled[i].view, NodeId(i), static_cast<std::uint32_t>(i),
               0);
  }
  for (std::size_t i = 0; i < 2; ++i) {
    const MsgBlock::Rec r = block.record(i, kHeader);
    EXPECT_EQ(r.key.kind, kinds[i]);  // survives the 5-bit meta packing
    EXPECT_EQ(r.key.tag, NodeId(40 + i));
    EXPECT_EQ(r.key.version, 2u);
    EXPECT_TRUE(r.eos);
    EXPECT_FALSE(r.spilled);
    EXPECT_EQ(r.wire_bits, kHeader + 80u);
    const auto got = replay(r);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<std::uint64_t, unsigned>{big, 64u}));
    EXPECT_EQ(got[1], (std::pair<std::uint64_t, unsigned>{0x5a5au, 16u}));
  }
}

TEST(MsgBlock, ReliabilityKindsRoundTripSpilled) {
  // Same kinds through the spilled encoding (meta's kSpillBit set alongside
  // the top kind bits), plus the FEC-release hand-off: append_from with an
  // explicit deliver round must rewrite the round column and nothing else.
  MsgBlock block;
  std::vector<std::pair<std::uint64_t, unsigned>> symbols;
  std::size_t payload_bits = 0;
  for (unsigned i = 0; i < 24; ++i) {
    const unsigned w = 64 - (i % 3);  // max and near-max widths
    symbols.emplace_back(
        (std::uint64_t{i + 1} * 0x9e3779b97f4a7c15u) >> (64 - w), w);
    payload_bits += w;
  }
  for (const std::uint16_t kind : {kRelAck, kRelRepair}) {
    Scheduled s;
    schedule(s, StreamKey{kind, 9000, 0}, symbols, /*close=*/true,
             kHeader + payload_bits);
    ASSERT_TRUE(s.ok);
    block.push(s.view, 7, 3, 0);
  }
  MsgBlock released;  // heap mode, the rel_parked -> lane release path
  released.append_from(block, 0, kHeader, /*deliver_round=*/123);
  released.append_from(block, 1, kHeader, /*deliver_round=*/456);
  const std::uint64_t rounds[2] = {123, 456};
  const std::uint16_t kinds[2] = {kRelAck, kRelRepair};
  for (std::size_t i = 0; i < 2; ++i) {
    const MsgBlock::Rec r = released.record(i, kHeader);
    EXPECT_EQ(r.key.kind, kinds[i]);
    EXPECT_EQ(r.deliver_round, rounds[i]);
    EXPECT_EQ(r.to, 7u);
    EXPECT_EQ(r.back_index, 3u);
    EXPECT_TRUE(r.spilled);
    EXPECT_TRUE(r.eos);
    ASSERT_EQ(r.symbol_count, symbols.size());
    const auto got = replay(r);
    for (std::size_t j = 0; j < symbols.size(); ++j) {
      EXPECT_EQ(got[j], symbols[j]) << "kind " << kinds[i] << " symbol " << j;
    }
  }
}

TEST(ReadPackedBits, GuardsTailWordAndMasks) {
  const std::uint64_t words[2] = {0xfedcba9876543210u, 0x0f0f0f0f0f0f0f0fu};
  // Straddling read across the word boundary.
  EXPECT_EQ(read_packed_bits(words, 2, 60, 8), ((words[1] & 0xfu) << 4) |
                                                   (words[0] >> 60));
  // Read ending exactly at the end of the array must not touch words[2].
  EXPECT_EQ(read_packed_bits(words, 2, 64, 64), words[1]);
  // Partial tail read with off != 0 near the end.
  EXPECT_EQ(read_packed_bits(words, 2, 120, 8), words[1] >> 56);
}

}  // namespace
}  // namespace nc
