#include <gtest/gtest.h>

#include <memory>

#include "core/boosting.hpp"
#include "core/driver.hpp"
#include "core/oracle.hpp"
#include "core/protocol.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "runtime/network.hpp"
#include "test_helpers.hpp"
#include "util/bitio.hpp"

// Robustness and extension coverage beyond the happy path:
// fault injection (a silent node), bandwidth sweeps, special topologies,
// the near-clique (eps^3 > 0) premise, the min_report_size filter, and
// boosted differential sweeps.

namespace nc {
namespace {

Instance planted(NodeId n, NodeId d, double eps3, std::uint64_t seed) {
  Rng rng(seed);
  PlantedNearCliqueParams pp;
  pp.n = n;
  pp.clique_size = d;
  pp.eps_missing = eps3;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  return planted_near_clique(pp, rng);
}

// --------------------------------------------------- fault injection ------

/// A crashed-from-the-start processor: never sends, never finishes.
class SilentNode : public INode {
 public:
  void on_start(NodeApi&) override {}
  void on_round(NodeApi&) override {}
};

TEST(FaultInjection, SilentNodeStallsOnlyItsNeighborhood) {
  // The paper assumes no crashes; this test documents the failure mode the
  // implementation provides anyway: with one dead node, every OTHER node
  // still terminates by the decision deadline (the dead node's neighbours
  // simply never see its kSampled bit and stay unfinalized until the
  // deadline force-resolves them). Once they are all done the only
  // remaining node is the dead one, so the liveness guard reports a stall
  // instead of burning rounds to the hard limit.
  const auto inst = planted(60, 24, 0.0, 3);
  const NodeId dead = 7;
  ProtocolParams proto;
  proto.eps = 0.2;
  proto.p = 0.08;
  NetConfig net_cfg;
  net_cfg.seed = 3;
  net_cfg.max_rounds = 300'000;
  const Schedule schedule =
      make_schedule(proto, inst.graph.n(), net_cfg.max_rounds);
  Network net(inst.graph, net_cfg, [&](NodeId v) -> std::unique_ptr<INode> {
    if (v == dead) return std::make_unique<SilentNode>();
    return std::make_unique<DistNearCliqueNode>(proto, schedule);
  });
  const auto stats = net.run();
  EXPECT_TRUE(stats.stalled);  // only the dead node remains unfinished
  EXPECT_FALSE(stats.hit_round_limit);
  std::size_t finished = 0;
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    if (v == dead) continue;
    if (static_cast<DistNearCliqueNode&>(net.node(v)).finished()) ++finished;
  }
  EXPECT_EQ(finished, inst.graph.n() - 1u);
}

// ----------------------------------------------------- bandwidth sweep ----

class BandwidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BandwidthSweep, ProtocolWorksAtAnyConstantFactor) {
  const unsigned factor = GetParam();
  const auto inst = planted(80, 32, 0.0, 11);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 11;
  cfg.net.bandwidth_factor = factor;
  cfg.net.max_rounds = 16'000'000;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(res.aborted());
  EXPECT_LE(res.stats.max_message_bits,
            static_cast<std::uint64_t>(factor) * id_width(inst.graph.n()));
  // Output is identical regardless of bandwidth (only latency changes).
  const auto orc = run_oracle(inst.graph, cfg.proto, cfg.net.seed);
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    EXPECT_EQ(res.labels[v], orc.labels[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, BandwidthSweep,
                         ::testing::Values(6u, 8u, 12u, 20u));

TEST(Bandwidth, NarrowerLinksTakeMoreRounds) {
  // Make the exploration payload large enough that per-edge bandwidth is
  // the bottleneck (a sample of ~12 gives thousands of subset coordinates).
  const auto inst = planted(100, 50, 0.0, 11);
  auto run_with = [&](unsigned factor) {
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.12;
    cfg.net.seed = 11;
    cfg.net.bandwidth_factor = factor;
    cfg.net.max_rounds = 64'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    EXPECT_FALSE(res.aborted());
    return res.stats.rounds;
  };
  EXPECT_GT(run_with(6), run_with(32));
}

// ----------------------------------------------- special topologies -------

TEST(Topologies, ProtocolTerminatesOnDegenerateGraphs) {
  for (const auto& g :
       {testing::path_graph(30), testing::cycle_graph(30),
        testing::star_graph(29), testing::complete_graph(16)}) {
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.2;
    cfg.net.seed = 5;
    cfg.net.max_rounds = 8'000'000;
    const auto res = run_dist_near_clique(g, cfg);
    EXPECT_FALSE(res.stats.stalled);
    EXPECT_FALSE(res.stats.hit_round_limit);
    // Whatever is output satisfies Lemma 5.3's bound.
    for (const auto& [label, members] : res.clusters()) {
      (void)label;
      const double bound = static_cast<double>(g.n()) * 0.2 /
                           static_cast<double>(members.size());
      EXPECT_TRUE(is_near_clique(g, members, bound));
    }
  }
}

// --------------------------------- near-clique premise differentials ------

struct NearCase {
  double eps3_fraction;  // of eps^3
  std::uint64_t seed;
};

class NearCliquePremise
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(NearCliquePremise, DifferentialWithMissingEdges) {
  const double eps = 0.25;
  const double eps3 = std::get<0>(GetParam()) * eps * eps * eps;
  const auto seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
  const auto inst = planted(90, 40, eps3, seed * 97);
  DriverConfig cfg;
  cfg.proto.eps = eps;
  cfg.proto.p = 0.07;
  cfg.net.seed = seed;
  cfg.net.max_rounds = 8'000'000;
  const auto dist = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(dist.aborted());
  const auto orc = run_oracle(inst.graph, cfg.proto, cfg.net.seed);
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    ASSERT_EQ(dist.labels[v], orc.labels[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NearCliquePremise,
    ::testing::Combine(::testing::Values(0.5, 1.0),
                       ::testing::Values(1, 2, 3, 4)));

// -------------------------------------------------- min_report filter -----

TEST(MinReportFilter, SmallCandidatesAreDisqualified) {
  // Two far-apart cliques of different sizes; with min_report_size above the
  // small one, only the big one can ever be labelled.
  GraphBuilder b(40);
  b.add_clique({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  b.add_clique({20, 21, 22, 23});
  const Graph g = b.build();
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.5;
  cfg.proto.min_report_size = 6;
  cfg.net.seed = 13;
  cfg.net.max_rounds = 8'000'000;
  const auto res = run_dist_near_clique(g, cfg);
  ASSERT_FALSE(res.aborted());
  for (const auto& [label, members] : res.clusters()) {
    (void)label;
    EXPECT_GE(members.size(), 6u);
    for (const NodeId v : members) EXPECT_LE(v, 9u);  // only the big clique
  }
}

// -------------------------------------------------- boosted sweeps --------

class BoostedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BoostedDifferential, MatchesOracleAcrossLambdas) {
  const auto lambda = static_cast<std::uint16_t>(GetParam());
  const auto inst = planted(70, 28, 0.0, 1000 + lambda);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.06;
  cfg.net.seed = 21;
  cfg.net.max_rounds = 40'000'000;
  const auto dist = run_boosted(inst.graph, cfg, lambda, 400'000);
  ASSERT_FALSE(dist.aborted());
  auto proto = cfg.proto;
  proto.versions = lambda;
  const auto orc = run_oracle(inst.graph, proto, cfg.net.seed);
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    ASSERT_EQ(dist.labels[v], orc.labels[v]) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, BoostedDifferential,
                         ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------- version window freeze -----

TEST(Freeze, TinyWindowYieldsBottomButCleanTermination) {
  const auto inst = planted(60, 24, 0.0, 9);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.1;
  cfg.proto.version_budget = 4;  // far too small to even elect roots
  cfg.net.seed = 9;
  cfg.net.max_rounds = 100'000;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  EXPECT_FALSE(res.stats.stalled);
  EXPECT_FALSE(res.stats.hit_round_limit);
  for (const auto label : res.labels) EXPECT_EQ(label, kBottom);
}

TEST(Freeze, WindowLargerThanNeededChangesNothing) {
  const auto inst = planted(60, 24, 0.0, 10);
  auto run_with = [&](std::uint64_t budget) {
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.08;
    cfg.proto.version_budget = budget;
    cfg.net.seed = 10;
    cfg.net.max_rounds = 60'000'000;
    return run_dist_near_clique(inst.graph, cfg);
  };
  const auto a = run_with(2'000'000);
  const auto b = run_with(20'000'000);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace nc
