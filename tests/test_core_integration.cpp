#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/boosting.hpp"
#include "core/driver.hpp"
#include "core/oracle.hpp"
#include "core/subsets.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/bitio.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

DriverConfig base_config(double eps, double p, std::uint64_t seed) {
  DriverConfig cfg;
  cfg.proto.eps = eps;
  cfg.proto.p = p;
  cfg.net.seed = seed;
  cfg.net.max_rounds = 4'000'000;
  return cfg;
}

Instance planted(NodeId n, NodeId d, double eps3, std::uint64_t seed) {
  Rng rng(seed);
  PlantedNearCliqueParams pp;
  pp.n = n;
  pp.clique_size = d;
  pp.eps_missing = eps3;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  return planted_near_clique(pp, rng);
}

// ------------------------------------------------ differential testing ----

struct DiffCase {
  NodeId n;
  NodeId d;
  double eps;
  double p;
  std::uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, DistributedMatchesOracleExactly) {
  const auto c = GetParam();
  const auto inst = planted(c.n, c.d, 0.0, c.seed * 31);
  const auto cfg = base_config(c.eps, c.p, c.seed);
  const auto dist = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(dist.aborted()) << dist.stats.summary();
  const auto orc = run_oracle(inst.graph, cfg.proto, cfg.net.seed);
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    ASSERT_EQ(dist.labels[v], orc.labels[v]) << "node " << v;
  }
  // Candidate diagnostics agree too (roots report the same X*, |T|).
  ASSERT_EQ(dist.candidates.size(), orc.candidates.size());
  auto sorted_cands = [](std::vector<RootCandidate> cs) {
    std::sort(cs.begin(), cs.end(), [](const auto& a, const auto& b) {
      return std::tie(a.version, a.root) < std::tie(b.version, b.root);
    });
    return cs;
  };
  const auto dc = sorted_cands(dist.candidates);
  const auto oc = sorted_cands(orc.candidates);
  for (std::size_t i = 0; i < dc.size(); ++i) {
    EXPECT_EQ(dc[i].root, oc[i].root);
    EXPECT_EQ(dc[i].component_size, oc[i].component_size);
    EXPECT_EQ(dc[i].live, oc[i].live);
    if (dc[i].live) {
      EXPECT_EQ(dc[i].x_star, oc[i].x_star);
      EXPECT_EQ(dc[i].t_size, oc[i].t_size);
      EXPECT_EQ(dc[i].survived, oc[i].survived);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DifferentialTest,
    ::testing::Values(DiffCase{40, 16, 0.25, 0.10, 1},
                      DiffCase{60, 24, 0.20, 0.08, 2},
                      DiffCase{60, 30, 0.30, 0.12, 3},
                      DiffCase{80, 32, 0.20, 0.06, 4},
                      DiffCase{100, 40, 0.15, 0.05, 5},
                      DiffCase{100, 50, 0.25, 0.08, 6},
                      DiffCase{120, 48, 0.20, 0.05, 7},
                      DiffCase{150, 60, 0.20, 0.04, 8}));

TEST(Differential, BoostedVersionsMatchOracle) {
  const auto inst = planted(80, 32, 0.0, 99);
  auto cfg = base_config(0.2, 0.05, 17);
  cfg.net.max_rounds = 20'000'000;
  const auto dist = run_boosted(inst.graph, cfg, 3, 500'000);
  ASSERT_FALSE(dist.aborted());
  auto proto = cfg.proto;
  proto.versions = 3;
  const auto orc = run_oracle(inst.graph, proto, cfg.net.seed);
  for (NodeId v = 0; v < inst.graph.n(); ++v) {
    ASSERT_EQ(dist.labels[v], orc.labels[v]) << "node " << v;
  }
}

// ------------------------------------------------------- output checks ----

TEST(Integration, FindsPlantedCliqueWithGoodSample) {
  // With a generous p, at least one trial in a small batch must recover
  // almost all of the planted clique (constant success probability).
  int found = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = planted(100, 50, 0.0, seed);
    const auto cfg = base_config(0.2, 0.07, seed);
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    const auto best = res.largest_cluster();
    if (best.size() >= 40 && set_density(inst.graph, best) >= 0.95) ++found;
  }
  EXPECT_GE(found, 2);
}

TEST(Integration, OutputClustersAreDisjointAndConsistent) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const auto inst = planted(120, 40, 0.01, seed);
    const auto cfg = base_config(0.2, 0.06, seed);
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    std::set<NodeId> seen;
    for (const auto& [label, members] : res.clusters()) {
      (void)label;
      for (const NodeId v : members) {
        EXPECT_TRUE(seen.insert(v).second) << "node in two clusters";
      }
    }
  }
}

TEST(Integration, Lemma53EveryOutputClusterIsNearClique) {
  // Lemma 5.3: every T_eps(X) of size t is an (n*eps/t)-near clique; the
  // output clusters are such sets, so they satisfy the bound.
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const auto inst = planted(90, 36, 0.01, seed);
    const double eps = 0.2;
    const auto cfg = base_config(eps, 0.07, seed);
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    for (const auto& [label, members] : res.clusters()) {
      (void)label;
      const double t = static_cast<double>(members.size());
      const double bound = static_cast<double>(inst.graph.n()) * eps / t;
      EXPECT_TRUE(is_near_clique(inst.graph, members, bound))
          << "cluster size " << members.size() << " density "
          << set_density(inst.graph, members);
    }
  }
}

TEST(Integration, TinyAutoBudgetFreezesGracefullyToAllBottom) {
  // With a tiny round limit the auto schedule collapses the version window;
  // the run freezes immediately, terminates cleanly and outputs all-bottom
  // (the wrapper's "give up deterministically" behaviour).
  const auto inst = planted(100, 40, 0.0, 5);
  auto cfg = base_config(0.2, 0.3, 5);
  cfg.net.max_rounds = 60;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  for (const auto label : res.labels) EXPECT_EQ(label, kBottom);
  EXPECT_TRUE(res.candidates.empty() || !res.aborted() || res.aborted());
}

TEST(Integration, TimeBoundWrapperAbortsToAllBottom) {
  // Force a long exploration window that cannot fit in max_rounds: the
  // network hits the hard limit and the driver reports an aborted all-bottom
  // run, exactly like the paper's whole-run abort.
  const auto inst = planted(100, 40, 0.0, 5);
  auto cfg = base_config(0.2, 0.3, 5);  // huge sample -> exponential work
  cfg.proto.version_budget = 1'000'000;
  // Any execution with a non-empty sample needs more than 10 rounds just for
  // the election and gather waves, so the network must hit the hard limit.
  cfg.net.max_rounds = 10;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  EXPECT_TRUE(res.aborted());
  for (const auto label : res.labels) EXPECT_EQ(label, kBottom);
}

TEST(Integration, OversizedComponentsAbstain) {
  const auto inst = planted(60, 30, 0.0, 6);
  auto cfg = base_config(0.2, 0.5, 6);  // sample half the graph
  cfg.proto.max_subsets = 255;          // cap at 2^8 - 1
  cfg.net.max_rounds = 500'000;
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(res.aborted());
  for (const auto& rc : res.candidates) {
    if (rc.component_size > 8) {
      EXPECT_FALSE(rc.live);
      EXPECT_FALSE(rc.survived);
    }
  }
}

TEST(Integration, EstimateMode4fStillFindsClique) {
  int found = 0;
  for (std::uint64_t seed = 41; seed <= 46; ++seed) {
    const auto inst = planted(100, 50, 0.0, seed);
    auto cfg = base_config(0.2, 0.06, seed);
    cfg.proto.sample_4f = 24;  // Section 5.3 estimate mode
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    const auto best = res.largest_cluster();
    if (best.size() >= 35 && set_density(inst.graph, best) >= 0.9) ++found;
  }
  EXPECT_GE(found, 1);
}

TEST(Integration, EstimateModeUsesFewerLocalOps) {
  const auto inst = planted(120, 60, 0.0, 7);
  auto exact_cfg = base_config(0.2, 0.06, 7);
  auto est_cfg = exact_cfg;
  est_cfg.proto.sample_4f = 8;
  const auto exact = run_dist_near_clique(inst.graph, exact_cfg);
  const auto est = run_dist_near_clique(inst.graph, est_cfg);
  ASSERT_FALSE(exact.aborted());
  ASSERT_FALSE(est.aborted());
  EXPECT_LT(est.total_local_ops, exact.total_local_ops);
}

TEST(Integration, DeterministicAcrossRuns) {
  const auto inst = planted(80, 30, 0.01, 3);
  const auto cfg = base_config(0.2, 0.06, 12);
  const auto a = run_dist_near_clique(inst.graph, cfg);
  const auto b = run_dist_near_clique(inst.graph, cfg);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
}

TEST(Integration, CongestMessageSizeIsLogarithmic) {
  // Max message bits must stay within B = factor * ceil(log2(n+1)) for all n
  // and must be *independent of eps and p* (Theorem 2.1's remark).
  for (const NodeId n : {50u, 100u, 200u}) {
    const auto inst = planted(n, n / 2, 0.0, n);
    const auto cfg = base_config(0.25, 6.0 / n, n);
    const auto res = run_dist_near_clique(inst.graph, cfg);
    ASSERT_FALSE(res.aborted());
    EXPECT_LE(res.stats.max_message_bits,
              8u * id_width(n));
  }
}

TEST(Integration, EmptySampleYieldsAllBottomAndTerminates) {
  const auto inst = planted(50, 20, 0.0, 8);
  auto cfg = base_config(0.2, 0.0, 8);  // nobody samples
  const auto res = run_dist_near_clique(inst.graph, cfg);
  ASSERT_FALSE(res.aborted());
  for (const auto label : res.labels) EXPECT_EQ(label, kBottom);
  EXPECT_TRUE(res.candidates.empty());
}

TEST(Integration, FullSampleTinyGraphStillWorks) {
  const Graph g = testing::complete_graph(6);
  DriverConfig cfg = base_config(0.2, 1.0, 9);
  cfg.net.max_rounds = 200'000;
  const auto res = run_dist_near_clique(g, cfg);
  ASSERT_FALSE(res.aborted());
  const auto best = res.largest_cluster();
  EXPECT_GE(best.size(), 4u);
  EXPECT_TRUE(is_clique(g, best));
}

TEST(Integration, DisconnectedGraphProducesPerComponentCandidates) {
  GraphBuilder b(20);
  b.add_clique({0, 1, 2, 3, 4, 5, 6, 7});
  b.add_clique({10, 11, 12, 13, 14, 15, 16, 17});
  const Graph g = b.build();
  DriverConfig cfg = base_config(0.2, 0.5, 10);
  cfg.net.max_rounds = 2'000'000;
  const auto res = run_dist_near_clique(g, cfg);
  ASSERT_FALSE(res.aborted());
  // Both cliques can survive: their participant sets are disjoint, so each
  // survives its own vote ("more than one near-clique in the output").
  const auto clusters = res.clusters();
  EXPECT_GE(clusters.size(), 1u);
  for (const auto& [label, members] : clusters) {
    (void)label;
    EXPECT_TRUE(is_near_clique(g, members, 0.35));
  }
}

TEST(Integration, IsolatedNodesTerminate) {
  GraphBuilder b(5);
  b.add_edge(0, 1);  // nodes 2,3,4 isolated
  const Graph g = b.build();
  DriverConfig cfg = base_config(0.2, 0.5, 11);
  const auto res = run_dist_near_clique(g, cfg);
  ASSERT_FALSE(res.aborted());
  EXPECT_FALSE(res.stats.stalled);
}

// Oracle self-checks -------------------------------------------------------

TEST(Oracle, SampleIsDeterministicAndBernoulli) {
  const Graph g = testing::complete_graph(200);
  const auto s1 = oracle_sample(g, 0.3, 42, 1);
  const auto s2 = oracle_sample(g, 0.3, 42, 1);
  EXPECT_EQ(s1, s2);
  const auto s3 = oracle_sample(g, 0.3, 42, 2);
  EXPECT_NE(s1, s3);  // different version, different coins
  EXPECT_NEAR(static_cast<double>(s1.size()), 60.0, 25.0);
  const auto empty = oracle_sample(g, 0.0, 42, 1);
  EXPECT_TRUE(empty.empty());
}

TEST(Oracle, TSetHelperMatchesMetrics) {
  const auto inst = planted(60, 30, 0.0, 12);
  const std::vector<NodeId> members{2, 9, 17, 33};
  const auto a = oracle_t_set(inst.graph, 0.2, members, 0b1011);
  const auto x = subset_members(members, 0b1011);
  const auto b = t_eps(inst.graph, x, 0.2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nc
