// Cross-checks for the O(n + m) streaming samplers against the exact
// reference implementations, plus large-n smoke coverage of the bulk paths
// that kStreamingCutoffN normally hides from the small-instance suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/alias.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

// ---------------------------------------------------------------- ER ------

struct BatchStats {
  double mean_edges = 0;
  double var_edges = 0;
  std::vector<double> mean_degree;  ///< per node, over the batch
};

template <typename Sampler>
BatchStats run_batch(NodeId n, double p, std::size_t batches,
                     std::uint64_t seed_base, Sampler sample) {
  BatchStats out;
  out.mean_degree.assign(n, 0.0);
  std::vector<double> counts;
  counts.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i) {
    Rng rng(seed_base + i);
    const Graph g = sample(n, p, rng);
    counts.push_back(static_cast<double>(g.m()));
    for (NodeId v = 0; v < n; ++v) {
      out.mean_degree[v] += static_cast<double>(g.degree(v));
    }
  }
  for (auto& d : out.mean_degree) d /= static_cast<double>(batches);
  for (const double c : counts) out.mean_edges += c;
  out.mean_edges /= static_cast<double>(batches);
  for (const double c : counts) {
    out.var_edges += (c - out.mean_edges) * (c - out.mean_edges);
  }
  out.var_edges /= static_cast<double>(batches - 1);
  return out;
}

TEST(StreamingCrossCheck, ErdosRenyiEdgeCountMeanAndVariance) {
  // Both samplers target Binomial(n(n-1)/2, p) edge counts. Over a fixed-seed
  // batch the empirical mean and variance of both must sit near the
  // theoretical values (and hence near each other).
  const NodeId n = 64;
  const double p = 0.15;
  const std::size_t batches = 300;
  const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
  const double want_mean = pairs * p;
  const double want_var = pairs * p * (1 - p);

  const auto ref = run_batch(n, p, batches, 0x5eed0000, erdos_renyi_reference);
  const auto str = run_batch(n, p, batches, 0x5eed8000, erdos_renyi_streaming);

  EXPECT_NEAR(ref.mean_edges, want_mean, 0.05 * want_mean);
  EXPECT_NEAR(str.mean_edges, want_mean, 0.05 * want_mean);
  EXPECT_NEAR(str.mean_edges, ref.mean_edges, 0.05 * want_mean);
  EXPECT_NEAR(ref.var_edges, want_var, 0.35 * want_var);
  EXPECT_NEAR(str.var_edges, want_var, 0.35 * want_var);
}

TEST(StreamingCrossCheck, ErdosRenyiPerNodeDegreeMeans) {
  const NodeId n = 64;
  const double p = 0.15;
  const std::size_t batches = 300;
  const double want = static_cast<double>(n - 1) * p;

  const auto ref = run_batch(n, p, batches, 0x00dd0000, erdos_renyi_reference);
  const auto str = run_batch(n, p, batches, 0x00dd8000, erdos_renyi_streaming);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(ref.mean_degree[v], want, 0.8) << "reference node " << v;
    EXPECT_NEAR(str.mean_degree[v], want, 0.8) << "streaming node " << v;
  }
}

TEST(StreamingCrossCheck, ErdosRenyiStreamingExtremes) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi_streaming(30, 0.0, rng).m(), 0u);
  EXPECT_EQ(erdos_renyi_streaming(30, 1.0, rng).m(), 30u * 29u / 2);
}

TEST(StreamingCrossCheck, DispatchUsesStreamingAboveCutoff) {
  // Above the cutoff the public entry point must take the streaming path:
  // identical draws to erdos_renyi_streaming, and a sane sparse edge count.
  const NodeId n = kStreamingCutoffN + 1000;
  const double p = 4.0 / static_cast<double>(n - 1);
  Rng r1(11), r2(11);
  const Graph via_public = erdos_renyi(n, p, r1);
  const Graph via_streaming = erdos_renyi_streaming(n, p, r2);
  EXPECT_EQ(via_public.edge_list(), via_streaming.edge_list());
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(via_public.m()), expected, 0.15 * expected);
}

// --------------------------------------------------------------- RGG ------

TEST(StreamingCrossCheck, RandomGeometricGridMatchesBruteForce) {
  // The grid scan must produce the *identical* edge set to the quadratic
  // all-pairs scan: the points fully determine the graph, and both read the
  // same 2n uniforms.
  const NodeId n = 400;
  const double radius = 0.08;
  Rng rng(99);
  const Graph grid = random_geometric(n, radius, rng);

  Rng replay(99);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = replay.next_double();
    y = replay.next_double();
  }
  std::vector<std::pair<NodeId, NodeId>> brute;
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pts[u].first - pts[v].first;
      const double dy = pts[u].second - pts[v].second;
      if (dx * dx + dy * dy <= r2) brute.emplace_back(u, v);
    }
  }
  EXPECT_EQ(grid.edge_list(), brute);
  EXPECT_GT(grid.m(), 0u);
}

// ------------------------------------------------- bulk planted paths -----

TEST(StreamingBulk, PlantedNearCliqueDensityExactAboveCutoff) {
  PlantedNearCliqueParams pp;
  pp.n = kStreamingCutoffN + 2000;
  pp.clique_size = 500;
  pp.eps_missing = 0.1;
  pp.background_p = 4.0 / static_cast<double>(pp.n);
  pp.halo_p = 10.0 / static_cast<double>(pp.n);
  Rng rng(7);
  const auto inst = planted_near_clique(pp, rng);
  ASSERT_EQ(inst.planted.size(), 500u);
  // The knockout removes exactly floor(eps * d(d-1))/2 undirected pairs, so
  // the planted density is exact, same as the reference path guarantees.
  EXPECT_TRUE(is_near_clique(inst.graph, inst.planted, pp.eps_missing));
  const double density = set_density(inst.graph, inst.planted);
  EXPECT_GE(density, 1.0 - pp.eps_missing - 1e-9);
  EXPECT_LT(density, 1.0);  // eps > 0: strictly below a clique
}

TEST(StreamingBulk, PlantedPartitionEdgeCountsAboveCutoff) {
  const NodeId n = kStreamingCutoffN + 1000;
  const unsigned k = 10;
  const double p_in = 0.01;
  const double p_out = 0.0005;
  Rng rng(13);
  const auto inst = planted_partition(n, k, p_in, p_out, rng);
  EXPECT_EQ(inst.planted.size(), static_cast<std::size_t>(n / k));
  const double gs = static_cast<double>(n / k);
  const double in_pairs = k * gs * (gs - 1) / 2.0;
  const double all_pairs = static_cast<double>(n) * (n - 1) / 2.0;
  const double expected = in_pairs * p_in + (all_pairs - in_pairs) * p_out;
  EXPECT_NEAR(static_cast<double>(inst.graph.m()), expected, 0.10 * expected);
}

TEST(StreamingBulk, PowerLawWebDegreeAndCommunityAboveCutoff) {
  const NodeId n = kStreamingCutoffN + 1000;
  const double avg_deg = 6.0;
  Rng rng(17);
  const auto inst = power_law_web(n, 2.5, avg_deg, 50, 0.0, rng);
  ASSERT_EQ(inst.planted.size(), 50u);
  EXPECT_TRUE(is_clique(inst.graph, inst.planted));
  // Alias-table expected-degree sampling loses a little mass to loops and
  // duplicate draws; the average degree must still land near the target.
  const double avg =
      2.0 * static_cast<double>(inst.graph.m()) / static_cast<double>(n);
  EXPECT_NEAR(avg, avg_deg, 0.15 * avg_deg);
  // Power-law-ish: max degree well above average.
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    max_deg = std::max(max_deg, inst.graph.degree(v));
  }
  EXPECT_GT(static_cast<double>(max_deg), 3.0 * avg);
}

// -------------------------------------------------------- alias table -----

TEST(AliasTable, SamplesProportionallyToWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const AliasTable table(w);
  Rng rng(23);
  std::vector<std::size_t> hits(w.size(), 0);
  const std::size_t draws = 200'000;
  for (std::size_t i = 0; i < draws; ++i) ++hits[table.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double want = w[i] / 10.0 * static_cast<double>(draws);
    EXPECT_NEAR(static_cast<double>(hits[i]), want, 0.05 * want) << i;
  }
}

TEST(AliasTable, RejectsDegenerateWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace nc
