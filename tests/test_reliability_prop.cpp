// Reliability service coverage (src/runtime/reliability.{hpp,cpp} and its
// integration at the stage/deliver boundary):
//  - plan parsing/validation through the shared param-bag machinery, the
//    CONGEST-only contract, and the closed-form ARQ failure statistics;
//  - the property-based conformance suite: ~50 seeded random fault plans
//    (iid and Gilbert–Elliott loss x delay jitter x churn) on a small
//    planted instance. For every plan, the protected run is bit-identical
//    at threads in {1, 2, 4, 64} (stats, counters, labels); for non-churn
//    plans the service must additionally erase the adversity completely —
//    zero permanent losses and the clean run's labels bit-for-bit;
//  - adversarial fault placement via FaultPlan::loss_hook: concentrated
//    loss on the highest-degree nodes and on the planted-clique boundary
//    kills the bare protocol but not the protected one.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "graph/generators.hpp"
#include "runtime/faults.hpp"
#include "runtime/network.hpp"
#include "runtime/reliability.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

// ---------------------------------------------------------------------------
// ReliabilityPlan parsing and validation
// ---------------------------------------------------------------------------

TEST(ReliabilityPlan, ParsesCsvAndValidates) {
  const ReliabilityPlan arq =
      parse_reliability_plan("rel_mode=1,rel_ack_timeout=3,rel_max_retx=5");
  EXPECT_EQ(arq.mode, ReliabilityPlan::Mode::kAck);
  EXPECT_EQ(arq.ack_timeout, 3u);
  EXPECT_EQ(arq.max_retx, 5u);
  EXPECT_TRUE(arq.any());

  const ReliabilityPlan fec =
      parse_reliability_plan("rel_mode=2,rel_fec_window=8,rel_fec_repair=3");
  EXPECT_EQ(fec.mode, ReliabilityPlan::Mode::kFec);
  EXPECT_EQ(fec.fec_window, 8u);
  EXPECT_EQ(fec.fec_repair, 3u);

  EXPECT_FALSE(ReliabilityPlan{}.any());
  EXPECT_FALSE(parse_reliability_plan("rel_mode=0").any());
  EXPECT_THROW((void)parse_reliability_plan("rel_mode=3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_reliability_plan("rel_mode=1,rel_ack_timeout=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_reliability_plan("rel_mode=1,rel_max_retx=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_reliability_plan("rel_mode=2,rel_fec_window=0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_reliability_plan("no_such_knob=1"),
               std::invalid_argument);
}

TEST(ReliabilityPlan, DefaultsDeclareEveryKey) {
  const auto& defaults = reliability_param_defaults();
  for (const char* key : {"rel_mode", "rel_ack_timeout", "rel_max_retx",
                          "rel_fec_window", "rel_fec_repair", "rel_seed"}) {
    EXPECT_TRUE(defaults.has_number(key)) << key;
  }
  // The all-defaults plan is the unprotected network.
  EXPECT_FALSE(reliability_plan_from_params(defaults).any());
}

TEST(ReliabilityPlan, SummaryNamesActiveMode) {
  EXPECT_EQ(ReliabilityPlan{}.summary(), "none");
  EXPECT_NE(parse_reliability_plan("rel_mode=1").summary().find("ack"),
            std::string::npos);
  EXPECT_NE(parse_reliability_plan("rel_mode=2").summary().find("fec"),
            std::string::npos);
}

TEST(ReliabilityPlan, LocalModeRejectsReliability) {
  // The service's control traffic is accounted against the CONGEST
  // bandwidth budget; LOCAL mode defines none, so arming it there is a
  // configuration error, not a silent no-op.
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.mode = NetConfig::Mode::kLocal;
  cfg.reliability.mode = ReliabilityPlan::Mode::kAck;
  EXPECT_THROW(Network(g, cfg,
                       [](NodeId) -> std::unique_ptr<INode> {
                         return nullptr;
                       }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed-form ARQ statistics (engine level, fixed seeds)
// ---------------------------------------------------------------------------

TEST(ReliabilityStats, ArqPermanentLossRateIsLossToTheRetxPower) {
  // A message whose first copy was lost is recovered unless all max_retx
  // resends are lost too: P(permanent) = p^max_retx for iid loss p. With
  // p = 0.5 and max_retx = 4 that is 1/16.
  FaultPlan faults;
  faults.loss = 0.5;
  ReliabilityPlan plan;
  plan.mode = ReliabilityPlan::Mode::kAck;
  plan.ack_timeout = 1;
  plan.max_retx = 4;
  ReliabilityEngine engine(plan, faults, nullptr, /*directed_edges=*/2,
                           /*header_bits=*/16, /*bandwidth_bits=*/64,
                           /*net_seed=*/5);
  RunStats t;
  std::size_t permanent = 0;
  const std::size_t trials = 100'000;
  for (std::size_t r = 1; r <= trials; ++r) {
    const std::uint64_t due = engine.arq_recover(/*edge=*/0, /*src=*/0,
                                                 /*dst=*/1, /*round=*/r * 10,
                                                 /*kind=*/1,
                                                 /*wire_bits=*/80, t);
    if (due == ReliabilityEngine::kNever) {
      ++permanent;
    } else {
      EXPECT_GT(due, r * 10);  // recovery lands on the attempt schedule
      EXPECT_LE(due, r * 10 + plan.max_retx * plan.ack_timeout);
    }
  }
  const double rate = static_cast<double>(permanent) / trials;
  EXPECT_NEAR(rate, 1.0 / 16.0, 0.005);
  EXPECT_GT(t.messages_retransmitted, 0u);
  EXPECT_GT(t.acks_sent, 0u);
}

TEST(ReliabilityStats, ArqDeliveredPathChargesAcksOnly) {
  // With a perfectly clean channel the delivered-message bookkeeping is
  // exactly one ACK per message and never a retransmission.
  ReliabilityPlan plan;
  plan.mode = ReliabilityPlan::Mode::kAck;
  ReliabilityEngine engine(plan, FaultPlan{}, nullptr, 2, 16, 64, 5);
  RunStats t;
  for (std::uint64_t r = 1; r <= 1000; ++r) {
    engine.arq_account_delivered(0, 0, 1, r, 1, 80, t);
  }
  EXPECT_EQ(t.acks_sent, 1000u);
  EXPECT_EQ(t.messages_retransmitted, 0u);
  EXPECT_EQ(t.bits, 1000u * 16u);  // one header-sized ACK per message
  EXPECT_EQ(t.bits_by_kind[kRelAck], 1000u * 16u);
}

// ---------------------------------------------------------------------------
// Property-based conformance: ~50 seeded random fault plans. The instance
// and the clean reference run are built once and shared.
// ---------------------------------------------------------------------------

struct PropCase {
  FaultPlan faults;
  ReliabilityPlan rel;
  bool churn = false;
  std::string desc;
};

/// Derives plan #i from a seeded generator: loss model (iid or
/// Gilbert–Elliott), delay jitter, occasional churn, and alternating
/// ARQ/FEC protection with generous budgets (the conformance property is
/// *complete* erasure of the adversity, so the budgets are sized for it).
PropCase make_case(std::size_t i) {
  Rng rng(0x4e11ab1e0000ULL + i);
  PropCase c;
  c.desc = "plan " + std::to_string(i);
  if (rng.next_bernoulli(0.5)) {
    c.faults.loss = 0.005 + 0.045 * rng.next_double();
    c.desc += " iid";
  } else {
    c.faults.ge_p = 0.02 + 0.06 * rng.next_double();
    c.faults.ge_r = 0.3 + 0.3 * rng.next_double();
    c.faults.ge_loss_bad = 1.0;
    c.faults.ge_loss_good = 0.0;
    c.desc += " ge";
  }
  const auto delay = rng.next_below(3);
  if (delay > 0) {
    c.faults.delay_max = delay;
    c.desc += " delay" + std::to_string(delay);
  }
  if (i % 5 == 4) {
    // Churn plans: crashes change protocol behaviour regardless of the
    // transport, so these only assert thread bit-identity below.
    c.churn = true;
    c.faults.crash_frac = 0.05;
    c.faults.crash_round = 10 + rng.next_below(20);
    c.faults.recover_after = 20;
    c.desc += " churn";
  }
  c.faults.fault_seed = 1000 + i;
  if (i % 2 == 0) {
    c.rel.mode = ReliabilityPlan::Mode::kAck;
    c.rel.ack_timeout = 1;
    c.rel.max_retx = 12 + rng.next_below(6);
    c.desc += " arq";
  } else {
    c.rel.mode = ReliabilityPlan::Mode::kFec;
    c.rel.fec_window = 2 + rng.next_below(3);
    c.rel.fec_repair = 8 + rng.next_below(4);
    c.desc += " fec";
  }
  if (i % 3 == 0) c.rel.rel_seed = 77 + i;
  return c;
}

const Graph& prop_graph() {
  static const Graph g = [] {
    Rng rng(7);
    PlantedNearCliqueParams pp;
    pp.n = 60;
    pp.clique_size = 24;
    pp.background_p = 0.08;
    pp.halo_p = 0.25;
    return planted_near_clique(pp, rng).graph;
  }();
  return g;
}

DriverConfig prop_config() {
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 3;
  cfg.net.max_rounds = 50'000;
  return cfg;
}

const NearCliqueResult& clean_reference() {
  static const NearCliqueResult res =
      run_dist_near_clique(prop_graph(), prop_config());
  return res;
}

void run_case_range(std::size_t lo, std::size_t hi) {
  const Graph& g = prop_graph();
  const NearCliqueResult& clean = clean_reference();
  for (std::size_t i = lo; i < hi; ++i) {
    const PropCase c = make_case(i);
    SCOPED_TRACE(c.desc);
    DriverConfig cfg = prop_config();
    cfg.net.faults = c.faults;
    cfg.net.reliability = c.rel;
    cfg.net.threads = 1;
    const NearCliqueResult ref = run_dist_near_clique(g, cfg);
    for (const unsigned threads : {2u, 4u, 64u}) {
      cfg.net.threads = threads;
      const NearCliqueResult sharded = run_dist_near_clique(g, cfg);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(ref.stats.rounds, sharded.stats.rounds);
      EXPECT_EQ(ref.stats.messages, sharded.stats.messages);
      EXPECT_EQ(ref.stats.bits, sharded.stats.bits);
      EXPECT_EQ(ref.stats.max_message_bits, sharded.stats.max_message_bits);
      EXPECT_EQ(ref.stats.bits_by_kind, sharded.stats.bits_by_kind);
      EXPECT_EQ(ref.stats.messages_lost, sharded.stats.messages_lost);
      EXPECT_EQ(ref.stats.messages_delayed, sharded.stats.messages_delayed);
      EXPECT_EQ(ref.stats.messages_retransmitted,
                sharded.stats.messages_retransmitted);
      EXPECT_EQ(ref.stats.acks_sent, sharded.stats.acks_sent);
      EXPECT_EQ(ref.stats.fec_repairs, sharded.stats.fec_repairs);
      EXPECT_EQ(ref.labels, sharded.labels);
      EXPECT_EQ(ref.total_local_ops, sharded.total_local_ops);
    }
    if (!c.churn) {
      // The conformance property: the service erases the adversity. Zero
      // permanent losses, and the protocol cannot tell the lossy protected
      // execution from the clean one — same labels, bit for bit.
      EXPECT_EQ(ref.stats.messages_lost, 0u);
      EXPECT_EQ(ref.labels, clean.labels);
    }
    if (c.rel.mode == ReliabilityPlan::Mode::kAck) {
      EXPECT_GT(ref.stats.acks_sent, 0u);
      EXPECT_EQ(ref.stats.fec_repairs, 0u);
    } else {
      EXPECT_EQ(ref.stats.acks_sent, 0u);
    }
  }
}

// Fifty plans, split so ctest parallelism spreads them across cores.
TEST(ReliabilityProp, SeededPlans00To09) { run_case_range(0, 10); }
TEST(ReliabilityProp, SeededPlans10To19) { run_case_range(10, 20); }
TEST(ReliabilityProp, SeededPlans20To29) { run_case_range(20, 30); }
TEST(ReliabilityProp, SeededPlans30To39) { run_case_range(30, 40); }
TEST(ReliabilityProp, SeededPlans40To49) { run_case_range(40, 50); }

// ---------------------------------------------------------------------------
// Adversarial fault placement: targeted loss via FaultPlan::loss_hook.
// ---------------------------------------------------------------------------

/// Planted instance shared by the adversarial tests (needs the planted set,
/// unlike the conformance suite above).
const Instance& adversarial_instance() {
  static const Instance inst = [] {
    Rng rng(7);
    PlantedNearCliqueParams pp;
    pp.n = 60;
    pp.clique_size = 24;
    pp.background_p = 0.08;
    pp.halo_p = 0.25;
    return planted_near_clique(pp, rng);
  }();
  return inst;
}

TEST(ReliabilityAdversarial, ArqRecoversTargetedLossOnHighestDegreeNodes) {
  // Concentrate loss where it hurts most: every message touching one of
  // the five highest-degree nodes is lost with probability 0.6, in both
  // directions. The bare protocol cannot complete the affected streams —
  // permanent erasures change what is recovered — while ARQ retries
  // through the hot spot and reproduces the clean labels exactly.
  const Instance& inst = adversarial_instance();
  const Graph& g = inst.graph;
  std::vector<NodeId> by_degree(g.n());
  for (NodeId v = 0; v < g.n(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  std::vector<NodeId> hubs(by_degree.begin(), by_degree.begin() + 5);
  std::sort(hubs.begin(), hubs.end());
  const auto hook = [hubs](NodeId src, NodeId dst) {
    const bool hot = std::binary_search(hubs.begin(), hubs.end(), src) ||
                     std::binary_search(hubs.begin(), hubs.end(), dst);
    return hot ? 0.6 : 0.0;
  };

  DriverConfig cfg = prop_config();
  cfg.net.faults.loss_hook = hook;
  cfg.net.faults.fault_seed = 99;
  const NearCliqueResult bare = run_dist_near_clique(inst.graph, cfg);
  EXPECT_GT(bare.stats.messages_lost, 0u);
  EXPECT_NE(bare.labels, clean_reference().labels);

  cfg.net.reliability.mode = ReliabilityPlan::Mode::kAck;
  cfg.net.reliability.ack_timeout = 1;
  cfg.net.reliability.max_retx = 24;  // 0.6^24 ~ 5e-6 permanent-loss rate
  const NearCliqueResult protected_run = run_dist_near_clique(inst.graph, cfg);
  EXPECT_EQ(protected_run.stats.messages_lost, 0u);
  EXPECT_GT(protected_run.stats.messages_retransmitted, 0u);
  EXPECT_EQ(protected_run.labels, clean_reference().labels);
}

TEST(ReliabilityAdversarial, FecRecoversTargetedLossOnPlantedBoundary) {
  // Loss concentrated on the planted-clique boundary (edges with exactly
  // one endpoint inside the planted set) attacks the halo traffic that
  // separates the near-clique from the background. FEC with a deep repair
  // budget reconstructs every blocked window and reproduces the clean run.
  const Instance& inst = adversarial_instance();
  const std::vector<NodeId> planted = inst.planted;  // sorted by contract
  const auto hook = [planted](NodeId src, NodeId dst) {
    const bool in_src = std::binary_search(planted.begin(), planted.end(), src);
    const bool in_dst = std::binary_search(planted.begin(), planted.end(), dst);
    return in_src != in_dst ? 0.5 : 0.0;
  };

  DriverConfig cfg = prop_config();
  cfg.net.faults.loss_hook = hook;
  cfg.net.faults.fault_seed = 101;
  const NearCliqueResult bare = run_dist_near_clique(inst.graph, cfg);
  EXPECT_GT(bare.stats.messages_lost, 0u);
  EXPECT_NE(bare.labels, clean_reference().labels);

  cfg.net.reliability.mode = ReliabilityPlan::Mode::kFec;
  cfg.net.reliability.fec_window = 2;
  cfg.net.reliability.fec_repair = 16;
  const NearCliqueResult protected_run = run_dist_near_clique(inst.graph, cfg);
  EXPECT_EQ(protected_run.stats.messages_lost, 0u);
  EXPECT_GT(protected_run.stats.fec_repairs, 0u);
  EXPECT_EQ(protected_run.labels, clean_reference().labels);
}

TEST(ReliabilityAdversarial, HookRunsAreBitIdenticalAcrossThreads) {
  // The hook path must keep the determinism contract of every other fault
  // decision: a pure function of (src, dst) keyed through the same hash.
  const Instance& inst = adversarial_instance();
  DriverConfig cfg = prop_config();
  cfg.net.faults.loss_hook = [](NodeId src, NodeId dst) {
    return (src + dst) % 3 == 0 ? 0.4 : 0.0;
  };
  cfg.net.reliability.mode = ReliabilityPlan::Mode::kAck;
  cfg.net.reliability.ack_timeout = 1;
  cfg.net.reliability.max_retx = 16;
  cfg.net.threads = 1;
  const NearCliqueResult ref = run_dist_near_clique(inst.graph, cfg);
  for (const unsigned threads : {2u, 64u}) {
    cfg.net.threads = threads;
    const NearCliqueResult sharded = run_dist_near_clique(inst.graph, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(ref.stats.bits, sharded.stats.bits);
    EXPECT_EQ(ref.stats.messages_retransmitted,
              sharded.stats.messages_retransmitted);
    EXPECT_EQ(ref.labels, sharded.labels);
  }
}

}  // namespace
}  // namespace nc
