#include <gtest/gtest.h>

#include <cmath>

#include "core/boosting.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/subsets.hpp"

namespace nc {
namespace {

// -------------------------------------------------------------- Subsets ---

TEST(Subsets, SubsetCount) {
  EXPECT_EQ(subset_count(0), 0u);
  EXPECT_EQ(subset_count(1), 1u);
  EXPECT_EQ(subset_count(3), 7u);
  EXPECT_EQ(subset_count(10), 1023u);
  EXPECT_EQ(subset_count(63), (1ULL << 63) - 1);
}

TEST(Subsets, MemberPosition) {
  const std::vector<NodeId> members{3, 7, 10, 42};
  EXPECT_EQ(member_position(members, 3), 0u);
  EXPECT_EQ(member_position(members, 42), 3u);
  EXPECT_EQ(member_position(members, 5), SIZE_MAX);
  EXPECT_EQ(member_position({}, 5), SIZE_MAX);
}

TEST(Subsets, AdjacencyMask) {
  const std::vector<NodeId> members{3, 7, 10, 42};
  EXPECT_EQ(adjacency_mask(members, {7, 42}), 0b1010ULL);
  EXPECT_EQ(adjacency_mask(members, {1, 2, 3, 4}), 0b0001ULL);
  EXPECT_EQ(adjacency_mask(members, {}), 0ULL);
  EXPECT_EQ(adjacency_mask(members, {3, 7, 10, 42}), 0b1111ULL);
  EXPECT_EQ(adjacency_mask({}, {1, 2}), 0ULL);
}

TEST(Subsets, SubsetMembers) {
  const std::vector<NodeId> members{3, 7, 10};
  EXPECT_EQ(subset_members(members, 0b101), (std::vector<NodeId>{3, 10}));
  EXPECT_EQ(subset_members(members, 0), std::vector<NodeId>{});
  EXPECT_EQ(subset_members(members, 0b111), members);
}

// --------------------------------------------------------------- Labels ---

TEST(Labels, EncodeDecodeRoundTrip) {
  for (const NodeId root : {0u, 1u, 12345u, 4000000u}) {
    for (const std::uint16_t w : {std::uint16_t{1}, std::uint16_t{16},
                                  std::uint16_t{1023}}) {
      const Label lab = make_label(root, w);
      EXPECT_EQ(label_root(lab), root);
      EXPECT_EQ(label_version(lab), w);
      EXPECT_NE(lab, kBottom);
    }
  }
}

TEST(Labels, DistinctVersionsDistinctLabels) {
  EXPECT_NE(make_label(5, 1), make_label(5, 2));
  EXPECT_NE(make_label(5, 1), make_label(6, 1));
}

// --------------------------------------------------------------- Params ---

TEST(Params, RecommendedPScalesInverselyWithN) {
  // Use n large enough that the clamp at 1.0 is inactive (the constants in
  // the theorem make p*n a large constant).
  const double p1 = recommended_p(0.2, 0.5, 10'000'000);
  const double p2 = recommended_p(0.2, 0.5, 20'000'000);
  EXPECT_NEAR(p1 / p2, 2.0, 1e-9);
  EXPECT_GT(p1, 0.0);
  EXPECT_LE(p1, 1.0);
}

TEST(Params, RecommendedPGrowsAsEpsShrinks) {
  const NodeId n = 100'000'000;
  EXPECT_GT(recommended_p(0.1, 0.5, n), recommended_p(0.2, 0.5, n));
  EXPECT_GT(recommended_p(0.2, 0.25, n), recommended_p(0.2, 0.5, n));
}

TEST(Params, InnerEps) {
  ProtocolParams p;
  p.eps = 0.3;
  EXPECT_DOUBLE_EQ(p.inner_eps(), 0.18);
}

TEST(Schedule, WindowArithmetic) {
  ProtocolParams proto;
  proto.versions = 3;
  proto.version_budget = 100;
  proto.decision_budget = 50;
  const Schedule s = make_schedule(proto, 10, 1'000'000);
  EXPECT_EQ(s.version_start(1), 1u);
  EXPECT_EQ(s.version_end(1), 101u);
  EXPECT_EQ(s.version_start(2), 101u);
  EXPECT_EQ(s.version_end(3), 301u);
  EXPECT_EQ(s.decision_deadline(), 351u);
}

TEST(Schedule, AutoBudgetsArePositiveAndFit) {
  ProtocolParams proto;
  proto.versions = 4;
  const Schedule s = make_schedule(proto, 100, 100'000);
  EXPECT_GT(s.version_budget, 0u);
  EXPECT_EQ(s.decision_budget, 4u * 100 + 256);
  EXPECT_LE(s.decision_deadline(), 100'000u);
}

TEST(Schedule, TinyRoundLimitStillValid) {
  ProtocolParams proto;
  const Schedule s = make_schedule(proto, 10, 8);
  EXPECT_GE(s.version_budget, 1u);
}

// ------------------------------------------------------------- Boosting ---

TEST(Boosting, LambdaFormula) {
  // (1-r)^lambda <= q.
  for (const double r : {0.3, 0.5, 0.9}) {
    for (const double q : {0.1, 0.01, 0.001}) {
      const auto lambda = boosting_versions(q, r);
      EXPECT_LE(std::pow(1.0 - r, lambda), q + 1e-12);
      if (lambda > 1) {
        EXPECT_GT(std::pow(1.0 - r, lambda - 1), q - 1e-12);
      }
    }
  }
}

TEST(Boosting, LambdaClamped) {
  EXPECT_EQ(boosting_versions(1.0, 0.5), 1u);
  EXPECT_LE(boosting_versions(1e-300, 1e-9), 1023u);
  EXPECT_GE(boosting_versions(0.5, 0.999), 1u);
}

}  // namespace
}  // namespace nc
