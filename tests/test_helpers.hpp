#pragma once

#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc::testing {

/// K5 with one extra pendant vertex (6 nodes) — the standard small fixture.
inline Graph clique_with_pendant() {
  GraphBuilder b(6);
  b.add_clique({0, 1, 2, 3, 4});
  b.add_edge(4, 5);
  return b.build();
}

/// Two disjoint triangles (6 nodes).
inline Graph two_triangles() {
  GraphBuilder b(6);
  b.add_clique({0, 1, 2});
  b.add_clique({3, 4, 5});
  return b.build();
}

/// Path of `n` nodes.
inline Graph path_graph(NodeId n) {
  GraphBuilder b(n);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < n; ++v) nodes.push_back(v);
  b.add_path(nodes);
  return b.build();
}

/// Cycle of `n` nodes.
inline Graph cycle_graph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

/// Complete graph K_n.
inline Graph complete_graph(NodeId n) {
  GraphBuilder b(n);
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < n; ++v) nodes.push_back(v);
  b.add_clique(nodes);
  return b.build();
}

/// Star with `leaves` leaves (center = 0).
inline Graph star_graph(NodeId leaves) {
  GraphBuilder b(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

}  // namespace nc::testing
