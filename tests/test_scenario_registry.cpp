// Coverage for the ScenarioRegistry: every registered family round-trips
// (name + params + seed -> instance) deterministically, overrides are
// honored, and unknown names / parameters fail with self-explaining errors.

#include <gtest/gtest.h>

#include <stdexcept>

#include "expt/scenario.hpp"
#include "expt/workloads.hpp"

namespace nc {
namespace {

/// Families backed by external files need a path parameter, so the generic
/// default-parameter loops skip them (tests/test_edge_list.cpp covers them
/// with real temp files).
bool is_file_backed(const std::string& name) {
  return name == "edge_list_file";
}

TEST(ScenarioRegistry, EveryFamilyRoundTripsDeterministically) {
  const auto& registry = ScenarioRegistry::global();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 10u);
  for (const auto& name : names) {
    if (is_file_backed(name)) continue;
    const ScenarioSpec spec{name, {}, /*seed=*/5};
    const Instance a = registry.make(spec);
    const Instance b = registry.make(spec);
    EXPECT_EQ(a.graph.n(), b.graph.n()) << name;
    EXPECT_EQ(a.graph.edge_list(), b.graph.edge_list()) << name;
    EXPECT_EQ(a.planted, b.planted) << name;
    EXPECT_GT(a.graph.n(), 0u) << name;
  }
}

TEST(ScenarioRegistry, SeedChangesRandomFamilies) {
  for (const auto* name : {"erdos_renyi", "planted_near_clique", "web"}) {
    const Instance a = make_scenario(name, {}, 1);
    const Instance b = make_scenario(name, {}, 2);
    EXPECT_NE(a.graph.edge_list(), b.graph.edge_list()) << name;
  }
}

TEST(ScenarioRegistry, OverridesAreHonoredForEveryFamily) {
  // n = 150 is legal for every registered family's other defaults.
  const auto& registry = ScenarioRegistry::global();
  for (const auto& name : registry.names()) {
    if (is_file_backed(name)) continue;  // no 'n': the file sets the size
    const Instance inst =
        registry.make({name, ScenarioParams().with("n", 150), 3});
    EXPECT_EQ(inst.graph.n(), 150u) << name;
  }
}

TEST(ScenarioRegistry, UnknownFamilyFailsWithCatalogue) {
  try {
    (void)make_scenario("no_such_family", {}, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown scenario family"), std::string::npos) << msg;
    EXPECT_NE(msg.find("erdos_renyi"), std::string::npos)
        << "message should list the known families: " << msg;
  }
}

TEST(ScenarioRegistry, UnknownParameterFailsNamingTheKey) {
  try {
    (void)make_scenario("erdos_renyi",
                        ScenarioParams().with("clique_size", 10), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("clique_size"), std::string::npos) << msg;
    EXPECT_NE(msg.find("has no parameter"), std::string::npos) << msg;
  }
}

TEST(ScenarioRegistry, MakersValidateParameterRanges) {
  // clique_size > n must be rejected, not asserted or silently clamped.
  EXPECT_THROW((void)make_scenario("planted_near_clique",
                                   ScenarioParams().with("n", 50).with(
                                       "clique_size", 80),
                                   1),
               std::invalid_argument);
  EXPECT_THROW((void)make_scenario("erdos_renyi",
                                   ScenarioParams().with("n", 0), 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_scenario("planted_partition",
                                   ScenarioParams().with("k", 0), 1),
               std::invalid_argument);
  // Negative sizes must not wrap through the NodeId cast.
  EXPECT_THROW((void)make_scenario("planted_near_clique",
                                   ScenarioParams().with("clique_size", -1),
                                   1),
               std::invalid_argument);
  // delta outside [0, 1] would make the derived clique larger than n.
  EXPECT_THROW((void)make_scenario("theorem",
                                   ScenarioParams().with("delta", 1.5), 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_scenario("counterexample",
                                   ScenarioParams().with("delta", -0.5), 1),
               std::invalid_argument);
}

TEST(ScenarioRegistry, ParseSpecRoundTrip) {
  const auto spec =
      parse_scenario_spec("erdos_renyi", "n=500,p=0.25", /*seed=*/9);
  EXPECT_EQ(spec.family, "erdos_renyi");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.params.get_int("n"), 500);
  EXPECT_DOUBLE_EQ(spec.params.get_double("p"), 0.25);
  const Instance inst = ScenarioRegistry::global().make(spec);
  EXPECT_EQ(inst.graph.n(), 500u);

  const auto flags = parse_scenario_spec("barbell", "delete_a_edges=true", 1);
  EXPECT_TRUE(flags.params.get_bool("delete_a_edges"));
}

TEST(ScenarioRegistry, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW(parse_scenario_spec("erdos_renyi", "n", 1),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("erdos_renyi", "=5", 1),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("erdos_renyi", "p=abc", 1),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("erdos_renyi", "p=0.5x", 1),
               std::invalid_argument);
}

TEST(ScenarioRegistry, WorkloadFacadeMatchesRegistry) {
  // The typed make_* helpers are facades over the registry: same family,
  // same params, same seed => identical instance.
  const Instance via_facade = make_theorem_instance(100, 0.5, 0.2, 0.1, 0.2, 3);
  const Instance via_registry = make_scenario("theorem",
                                              ScenarioParams()
                                                  .with("n", 100)
                                                  .with("delta", 0.5)
                                                  .with("eps", 0.2)
                                                  .with("background_p", 0.1)
                                                  .with("halo_p", 0.2),
                                              3);
  EXPECT_EQ(via_facade.graph.edge_list(), via_registry.graph.edge_list());
  EXPECT_EQ(via_facade.planted, via_registry.planted);
}

TEST(ScenarioRegistry, DescribeFamiliesMentionsEveryName) {
  const auto text = describe_families(ScenarioRegistry::global());
  for (const auto& name : ScenarioRegistry::global().names()) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace nc
