// Coverage for the edge_list_file pipeline: real graphs enter through the
// same streaming CSR build and scenario registry as the generated families,
// and malformed input fails with errors that name the file and line.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "expt/scenario.hpp"
#include "graph/edge_list.hpp"

namespace nc {
namespace {

std::string write_temp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(EdgeList, LoadsWhitespaceSeparatedPairs) {
  const auto path = write_temp("el_plain.txt",
                               "# a comment\n"
                               "0 1\n"
                               "1 2\n"
                               "\n"
                               "% another comment\n"
                               "2 3\n"
                               "3 0\n");
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 4u);
  std::remove(path.c_str());
}

TEST(EdgeList, AcceptsCsvTabsWeightsDuplicatesAndSelfLoops) {
  const auto path = write_temp("el_mixed.csv",
                               "// exported with weights\n"
                               "0,1,0.5\n"
                               "1;2;7\n"
                               "2\t3\t1\n"
                               "1 0 9\n"   // duplicate (reversed)
                               "2 2\n");   // self-loop
  const Graph g = load_edge_list(path);
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);  // dedup + self-loop drop via GraphBuilder
  std::remove(path.c_str());
}

TEST(EdgeList, OneIndexedShiftsDown) {
  const auto path = write_temp("el_one.txt", "1 2\n2 3\n");
  const Graph g = load_edge_list(path, /*one_indexed=*/true);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));

  const auto bad = write_temp("el_one_bad.txt", "0 1\n");
  try {
    (void)load_edge_list(bad, /*one_indexed=*/true);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("one-indexed"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(EdgeList, MalformedInputNamesFileAndLine) {
  const auto path = write_temp("el_bad.txt",
                               "0 1\n"
                               "2 x\n");
  try {
    (void)load_edge_list(path);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find(":2:"), std::string::npos)
        << "message should name line 2: " << msg;
  }
  std::remove(path.c_str());
}

TEST(EdgeList, MissingSecondIdEmptyFilesAndMissingFilesFail) {
  const auto lonely = write_temp("el_lonely.txt", "4\n");
  EXPECT_THROW((void)load_edge_list(lonely), std::invalid_argument);
  std::remove(lonely.c_str());

  const auto empty = write_temp("el_empty.txt", "# nothing\n");
  try {
    (void)load_edge_list(empty);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no edges"), std::string::npos)
        << e.what();
  }
  std::remove(empty.c_str());

  EXPECT_THROW((void)load_edge_list("/no/such/file.txt"),
               std::invalid_argument);
}

TEST(EdgeList, HugeIdsAreRejected) {
  const auto path = write_temp("el_huge.txt", "0 999999999999\n");
  EXPECT_THROW((void)load_edge_list(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(EdgeListScenario, ResolvesThroughTheRegistry) {
  const auto path = write_temp("el_scenario.txt", "0 1\n1 2\n2 0\n3 4\n");
  const Instance inst = make_scenario(
      "edge_list_file", ScenarioParams().with("path", path), /*seed=*/1);
  EXPECT_EQ(inst.graph.n(), 5u);
  EXPECT_EQ(inst.graph.m(), 4u);
  EXPECT_TRUE(inst.planted.empty());

  // The same file through the CLI-style spec parser: path stays a string.
  const auto spec = parse_scenario_spec("edge_list_file",
                                        "path=" + path + ",one_indexed=false",
                                        /*seed=*/2);
  EXPECT_EQ(spec.params.get_string("path"), path);
  const Instance via_spec = ScenarioRegistry::global().make(spec);
  EXPECT_EQ(via_spec.graph.n(), inst.graph.n());
  std::remove(path.c_str());
}

TEST(EdgeListScenario, MissingPathExplainsItself) {
  try {
    (void)make_scenario("edge_list_file", {}, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("path="), std::string::npos) << msg;
  }
  // A numeric value for the declared-string 'path' is a type error.
  EXPECT_THROW((void)make_scenario("edge_list_file",
                                   ScenarioParams().with("path", 3), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nc
