// Golden-ok fixture: every construct here would violate a rule, but each
// carries a valid allow annotation. nclint must report nothing and exit 0.
// nclint:allow-file(wall-clock): fixture exercises the file-scope escape hatch
#include <chrono>
#include <map>
#include <unordered_map>

std::map<int, int> registry;  // nclint:allow(ordered-map) bounded config table, cold path

int drain(const std::unordered_map<int, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) {  // nclint:allow(unordered-iter) result is order-insensitive sum
    total += v;
  }
  return total;
}

double profile_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChurnStats { unsigned long crash_events = 0; } stats_;

void churn_event() {
  stats_.crash_events += 1;  // nclint:allow(stats-batch) serial once-per-event path
}
