// Golden-ok fixture: ordinary protocol-style code with nothing to flag.
#include <cstdint>
#include <vector>

enum MsgKind : std::uint16_t {
  kProbe = 1,
  kReply = 2,
};

struct NodeApi;
void set_alarm(NodeApi& api, std::uint64_t round);

struct QuietNode {
  std::vector<std::uint32_t> peers;
  void on_start(NodeApi& api) { set_alarm(api, 1); }
  void on_round(NodeApi& api) override { set_alarm(api, 2); }
};
