// Golden-bad fixture: an allow annotation naming a rule that does not
// exist — a typo like this must fail loudly, not silently disable nothing.
#include <map>

// nclint:allow-file(orderd-map): typo in the rule name
int f() { return 0; }
