// Golden-bad fixture: wall-clock / unseeded randomness in src/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned unseeded_entropy() {
  std::random_device rd;            // wall-clock
  return rd();
}

int libc_rand() { return rand(); }  // wall-clock

long clock_seed() {
  return time(nullptr);             // wall-clock
}

double now_seconds() {
  auto t = std::chrono::steady_clock::now();  // wall-clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
