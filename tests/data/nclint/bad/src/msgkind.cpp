// Golden-bad fixture: MsgKind registrations past the 5-bit header budget.
#include <cstdint>

enum MsgKind : std::uint16_t {
  kFine = 1,
  kAlsoFine = 31,
  kOverflow = 32,   // msgkind-budget: does not fit 5 bits
  kWayOver = 40,    // msgkind-budget
};
