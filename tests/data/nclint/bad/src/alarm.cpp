// Golden-bad fixture: an on_round override that never arms an alarm. The
// event-driven runtime only wakes a node on delivery or alarm — this
// protocol stalls the moment traffic stops.
struct NodeApi;

struct PollingNode {
  void on_start(NodeApi& api) { (void)api; }
  void on_round(NodeApi& api) override {  // alarm-contract
    (void)api;
  }
};
