// Bad fixture for stats-batch: per-message read-modify-writes against a
// RunStats sink in src/runtime/ — each increment line must be flagged.
struct RunStats { unsigned long messages = 0; unsigned long bits = 0; };
struct Shard { RunStats traffic; };

void deliver(Shard& sh, RunStats& stats_) {
  sh.traffic.messages += 1;
  stats_.bits += 64;
  ++stats_.messages;
}
