// Golden-bad fixture: iteration over unordered containers in a runtime
// file. nclint must flag lines 13 and 16 (unordered-iter) and line 8
// (ordered-map). Point lookups (line 19) must NOT be flagged.
#include <map>
#include <unordered_map>
#include <unordered_set>

std::map<int, int> schedule;  // line 8: ordered-map

int sum_members(const std::unordered_map<int, int>& members,
                const std::unordered_set<int>& live) {
  int total = 0;
  for (const auto& [id, weight] : members) {  // line 13 region: unordered-iter
    total += weight;
  }
  for (auto it = live.begin(); it != live.end(); ++it) {  // unordered-iter
    total += *it;
  }
  if (members.find(3) != members.end()) total += 1;  // lookup: fine
  return total;
}
