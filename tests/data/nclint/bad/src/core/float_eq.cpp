// Golden-bad fixture: floating-point equality in a core theorem predicate.
bool dense_enough(double density, double target) {
  if (density == 0.5) return false;   // float-exact
  if (target != 1.0) return true;     // float-exact
  double eps = density - target;
  return eps == 0.25;                 // float-exact
}

bool integer_compare_is_fine(int a, int b) { return a == b; }
