#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

TEST(Dot, PlainExportContainsAllNodesAndEdges) {
  const Graph g = testing::two_triangles();
  const std::string dot = to_dot(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos);
  }
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n3 -- n4"), std::string::npos);
  EXPECT_EQ(dot.find("n0 -- n3"), std::string::npos);  // no cross edge
  EXPECT_NE(dot.find("graph graph {"), std::string::npos);
}

TEST(Dot, ClustersAreColoredAndInternalEdgesBold) {
  const Graph g = testing::two_triangles();
  std::map<Label, std::vector<NodeId>> clusters;
  clusters[make_label(0, 1)] = {0, 1, 2};
  const std::string dot = to_dot(g, clusters, "result");
  // Cluster members carry a palette colour; outsiders are grey.
  EXPECT_NE(dot.find("#e41a1c"), std::string::npos);
  EXPECT_NE(dot.find("#dddddd"), std::string::npos);
  // Internal edges are bold.
  EXPECT_NE(dot.find("penwidth=1.6"), std::string::npos);
  EXPECT_NE(dot.find("graph result {"), std::string::npos);
}

TEST(Dot, ManyClustersCyclePalette) {
  const Graph g = testing::complete_graph(18);
  std::map<Label, std::vector<NodeId>> clusters;
  for (NodeId i = 0; i < 9; ++i) {
    clusters[make_label(i, 1)] = {static_cast<NodeId>(2 * i),
                                  static_cast<NodeId>(2 * i + 1)};
  }
  const std::string dot = to_dot(g, clusters);
  EXPECT_FALSE(dot.empty());  // palette wrap must not crash or skip nodes
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos);
  }
}

TEST(Dot, EmptyGraph) {
  GraphBuilder b(0);
  const std::string dot = to_dot(b.build());
  EXPECT_NE(dot.find("graph graph {"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace nc
