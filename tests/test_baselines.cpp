#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ggr_find.hpp"
#include "baselines/grasp.hpp"
#include "baselines/neighbors2.hpp"
#include "baselines/peeling.hpp"
#include "baselines/shingles.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "test_helpers.hpp"
#include "util/bitio.hpp"

namespace nc {
namespace {

// ------------------------------------------------------------- Shingles ---

TEST(Shingles, FindsPureCliqueGraph) {
  const Graph g = testing::complete_graph(20);
  ShinglesParams params;
  params.eps = 0.1;
  params.min_size = 10;
  const auto res = run_shingles(g, params, 7);
  const auto best = res.largest_cluster();
  EXPECT_EQ(best.size(), 20u);  // everyone shares the global min ID's label
  EXPECT_LE(res.stats.rounds, 8u);  // constant rounds
}

TEST(Shingles, ConstantRoundsAndSmallMessages) {
  Rng rng(3);
  const Graph g = erdos_renyi(150, 0.1, rng);
  const auto res = run_shingles(g, ShinglesParams{}, 11);
  EXPECT_LE(res.stats.rounds, 8u);
  EXPECT_LE(res.stats.max_message_bits, 12u * id_width(150));
}

TEST(Shingles, FailsOnCounterexampleFamily) {
  // Claim 1: on G_n with delta = 0.5, the shingles algorithm cannot output
  // an eps-near clique of size >= (1-eps) * delta * n for eps < min{1/3,1/9}.
  const double delta = 0.5;
  const double eps = 0.1;
  int ok_trials = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const auto inst = shingles_counterexample(200, delta, rng);
    ShinglesParams params;
    params.eps = eps;
    params.min_size = 2;
    const auto res = run_shingles(inst.graph, params, seed * 13);
    // Every surviving candidate set must be small or sparse; in particular
    // none reaches (1 - eps) * delta * n = 90 nodes at density >= 1 - eps.
    for (const auto& [label, members] : res.clusters()) {
      (void)label;
      const bool big = members.size() >= (1 - eps) * delta * 200;
      const bool dense = is_near_clique(inst.graph, members, eps);
      EXPECT_FALSE(big && dense)
          << "shingles found size " << members.size() << " density "
          << set_density(inst.graph, members);
    }
    ++ok_trials;
  }
  EXPECT_EQ(ok_trials, 10);
}

TEST(Shingles, SurvivorsMeetThresholds) {
  Rng rng(9);
  PlantedNearCliqueParams pp;
  pp.n = 100;
  pp.clique_size = 30;
  pp.background_p = 0.05;
  pp.halo_p = 0.1;
  const auto inst = planted_near_clique(pp, rng);
  ShinglesParams params;
  params.eps = 0.3;
  params.min_size = 5;
  const auto res = run_shingles(inst.graph, params, 21);
  for (const auto& [label, members] : res.clusters()) {
    (void)label;
    EXPECT_GE(members.size(), params.min_size);
    EXPECT_TRUE(is_near_clique(inst.graph, members, params.eps));
  }
}

TEST(Shingles, IsolatedNodesDoNotCrash) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  const auto res = run_shingles(b.build(), ShinglesParams{}, 4);
  EXPECT_FALSE(res.stats.stalled);
}

// ----------------------------------------------------------- Neighbors2 ---

TEST(Neighbors2, FindsExactCliqueAndIsConsistent) {
  const auto g = testing::clique_with_pendant();
  const auto res = run_neighbors2(g, Neighbors2Params{}, 5);
  const auto best = res.largest_cluster();
  EXPECT_EQ(best, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_LE(res.stats.rounds, 4u);
}

TEST(Neighbors2, MessageSizeGrowsWithDegree) {
  // The LOCAL-model message carries whole adjacency lists: max message bits
  // must scale with Delta * log n, far beyond the CONGEST budget.
  Rng rng(5);
  const Graph dense = erdos_renyi(80, 0.5, rng);
  const auto res = run_neighbors2(dense, Neighbors2Params{}, 6);
  EXPECT_GT(res.stats.max_message_bits, 8u * id_width(80));
  EXPECT_GT(res.total_expansions, 0u);
}

TEST(Neighbors2, PlantedCliqueRecovered) {
  Rng rng(8);
  PlantedNearCliqueParams pp;
  pp.n = 60;
  pp.clique_size = 20;
  pp.background_p = 0.05;
  pp.halo_p = 0.1;
  const auto inst = planted_near_clique(pp, rng);
  const auto res = run_neighbors2(inst.graph, Neighbors2Params{}, 7);
  const auto best = res.largest_cluster();
  EXPECT_GE(best.size(), 18u);
  EXPECT_TRUE(is_clique(inst.graph, best));
}

// -------------------------------------------------------------- Peeling ---

TEST(Peeling, StepsCoverWholeGraph) {
  const Graph g = testing::complete_graph(6);
  const auto peel = greedy_peel(g);
  ASSERT_EQ(peel.steps.size(), 6u);
  EXPECT_EQ(peel.steps.back().size_after, 0u);
  EXPECT_EQ(peel.steps.back().ordered_pairs_after, 0u);
  // After removing one node from K6, 5*4 ordered pairs remain.
  EXPECT_EQ(peel.steps.front().ordered_pairs_after, 20u);
  EXPECT_DOUBLE_EQ(peel.density_at(5), 1.0);
}

TEST(Peeling, RecoversPlantedNearClique) {
  Rng rng(6);
  PlantedNearCliqueParams pp;
  pp.n = 150;
  pp.clique_size = 50;
  pp.eps_missing = 0.02;
  pp.background_p = 0.05;
  pp.halo_p = 0.15;
  const auto inst = planted_near_clique(pp, rng);
  const auto found = largest_near_clique_by_peeling(inst.graph, 0.05);
  EXPECT_GE(found.size(), 45u);
  EXPECT_TRUE(is_near_clique(inst.graph, found, 0.05));
}

TEST(Peeling, DensestSubgraphNonEmpty) {
  const Graph g = testing::clique_with_pendant();
  const auto densest = densest_subgraph_by_peeling(g);
  EXPECT_EQ(densest, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Peeling, EmptyGraphHandled) {
  GraphBuilder b(4);
  const Graph g = b.build();
  EXPECT_TRUE(largest_near_clique_by_peeling(g, 0.1).empty());
}

// ---------------------------------------------------------------- GRASP ---

TEST(Grasp, FindsQuasiCliqueMeetingGamma) {
  Rng rng(4);
  PlantedNearCliqueParams pp;
  pp.n = 100;
  pp.clique_size = 30;
  pp.eps_missing = 0.05;
  pp.background_p = 0.08;
  pp.halo_p = 0.2;
  const auto inst = planted_near_clique(pp, rng);
  GraspParams params;
  params.gamma = 0.9;
  params.iterations = 24;
  Rng search_rng(11);
  const auto found = grasp_quasi_clique(inst.graph, params, search_rng);
  EXPECT_GE(found.size(), 15u);
  EXPECT_GE(set_density(inst.graph, found), params.gamma - 1e-9);
}

TEST(Grasp, EmptyAndTinyGraphs) {
  GraphBuilder b(0);
  Rng rng(1);
  EXPECT_TRUE(grasp_quasi_clique(b.build(), GraspParams{}, rng).empty());
  const auto single = grasp_quasi_clique(testing::complete_graph(1),
                                         GraspParams{}, rng);
  EXPECT_LE(single.size(), 1u);
}

TEST(Grasp, RespectsGammaOnSparseGraph) {
  const Graph g = testing::path_graph(20);
  GraspParams params;
  params.gamma = 0.99;
  Rng rng(2);
  const auto found = grasp_quasi_clique(g, params, rng);
  // Only edges (2-sets) qualify at this density.
  EXPECT_LE(found.size(), 2u);
}

// ------------------------------------------------------------- GGR find ---

TEST(GgrFind, RecoversPlantedClique) {
  Rng rng(3);
  PlantedNearCliqueParams pp;
  pp.n = 120;
  pp.clique_size = 60;
  pp.background_p = 0.08;
  pp.halo_p = 0.2;
  const auto inst = planted_near_clique(pp, rng);
  Rng search(5);
  const auto res = ggr_approximate_find(inst.graph, 0.2, 8, search);
  EXPECT_GE(res.found.size(), 50u);
  EXPECT_GE(set_density(inst.graph, res.found), 0.9);
  EXPECT_GT(res.pair_queries, 0u);
}

TEST(GgrFind, QueryCountScalesLinearlyInN) {
  Rng rng(4);
  const Graph small = erdos_renyi(100, 0.1, rng);
  const Graph large = erdos_renyi(300, 0.1, rng);
  Rng s1(1), s2(1);
  const auto a = ggr_approximate_find(small, 0.2, 6, s1);
  const auto b = ggr_approximate_find(large, 0.2, 6, s2);
  // The classification pass is n * m probes; the T pass adds data-dependent
  // work, so just check super-constant growth and a sane lower bound.
  EXPECT_GE(a.pair_queries, 100u * 6u);
  EXPECT_GE(b.pair_queries, 300u * 6u);
  EXPECT_GT(b.pair_queries, a.pair_queries);
}

TEST(GgrFind, EmptyGraphAndZeroSample) {
  GraphBuilder b(0);
  Rng rng(1);
  const auto res = ggr_approximate_find(b.build(), 0.2, 5, rng);
  EXPECT_TRUE(res.found.empty());
}

}  // namespace
}  // namespace nc
