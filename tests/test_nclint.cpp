// nclint, the determinism/contract linter (tools/nclint/), exercised over
// the golden fixture tree in tests/data/nclint:
//  - every rule fires on its bad/ fixture, at the exact file:line, with the
//    `path:line: [rule-id]` diagnostic shape scripts and CI grep for;
//  - valid line- and file-scope allow annotations silence rules (ok/ tree
//    is clean, exit 0), while a typo'd rule name is itself a violation;
//  - exit-code contract: 0 clean, 1 violations, 2 usage/IO errors.
// The linter is a separate process; these tests shell out to the binary
// CMake builds (NC_NCLINT_BIN) and parse its stdout.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#ifdef NC_NCLINT_BIN

namespace {

struct LintRun {
  int exit_code = -1;
  std::string out;  // stdout + stderr, interleaved
  std::vector<std::string> lines;
};

// Runs `nclint <args>` and captures output. gtest runs on POSIX here, so
// popen + WEXITSTATUS is enough; 2>&1 folds the usage/error channel in.
LintRun run_nclint(const std::string& args) {
  LintRun r;
  std::string cmd = std::string(NC_NCLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.out += buf;
  int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  std::string cur;
  for (char c : r.out) {
    if (c == '\n') {
      r.lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) r.lines.push_back(cur);
  return r;
}

std::string fixture_root(const char* which) {
  return std::string(NC_TEST_DATA_DIR) + "/nclint/" + which;
}

// Diagnostics for one rule id, as "path:line" prefixes relative to --root.
std::vector<std::string> sites_of(const LintRun& r, const std::string& rule) {
  std::vector<std::string> sites;
  const std::string tag = "[" + rule + "]";
  for (const std::string& line : r.lines) {
    if (line.find(tag) == std::string::npos) continue;
    const auto colon2 = line.find(": [");
    EXPECT_NE(colon2, std::string::npos) << "malformed diagnostic: " << line;
    sites.push_back(line.substr(0, colon2));
  }
  return sites;
}

TEST(NclintFixtures, BadTreeFlagsEveryRuleAtExactSites) {
  const std::string root = fixture_root("bad");
  LintRun r = run_nclint("--root " + root + " " + root);
  ASSERT_EQ(r.exit_code, 1) << r.out;

  using V = std::vector<std::string>;
  EXPECT_EQ(sites_of(r, "unordered-iter"),
            (V{"src/runtime/unordered_iter.cpp:13",
               "src/runtime/unordered_iter.cpp:16"}));
  EXPECT_EQ(sites_of(r, "ordered-map"),
            (V{"src/runtime/unordered_iter.cpp:8"}));
  EXPECT_EQ(sites_of(r, "float-exact"),
            (V{"src/core/float_eq.cpp:3", "src/core/float_eq.cpp:4",
               "src/core/float_eq.cpp:6"}));
  EXPECT_EQ(sites_of(r, "msgkind-budget"),
            (V{"src/msgkind.cpp:7", "src/msgkind.cpp:8"}));
  EXPECT_EQ(sites_of(r, "alarm-contract"), (V{"src/alarm.cpp:8"}));
  EXPECT_EQ(sites_of(r, "bad-annotation"), (V{"src/bad_annotation.cpp:5"}));
  EXPECT_EQ(sites_of(r, "stats-batch"),
            (V{"src/runtime/stats_batch.cpp:7", "src/runtime/stats_batch.cpp:8",
               "src/runtime/stats_batch.cpp:9"}));
  EXPECT_EQ(sites_of(r, "wall-clock"),
            (V{"src/wall_clock.cpp:2", "src/wall_clock.cpp:8",
               "src/wall_clock.cpp:12", "src/wall_clock.cpp:15",
               "src/wall_clock.cpp:19", "src/wall_clock.cpp:20"}));

  // Summary trailer states the totals the CI log shows at a glance.
  ASSERT_FALSE(r.lines.empty());
  EXPECT_EQ(r.lines.back(), "nclint: 19 violations in 7 files");
}

TEST(NclintFixtures, DiagnosticShapeIsGreppable) {
  const std::string root = fixture_root("bad");
  LintRun r = run_nclint("--root " + root + " " + root);
  ASSERT_EQ(r.exit_code, 1);
  ASSERT_GE(r.lines.size(), 2u);
  // Every line but the summary: `relative/path:line: [rule-id] message`.
  for (std::size_t i = 0; i + 1 < r.lines.size(); ++i) {
    const std::string& line = r.lines[i];
    const auto c1 = line.find(':');
    ASSERT_NE(c1, std::string::npos) << line;
    EXPECT_EQ(line.rfind("src/", 0), 0u)
        << "path must be --root-relative: " << line;
    const auto c2 = line.find(':', c1 + 1);
    ASSERT_NE(c2, std::string::npos) << line;
    const std::string lineno = line.substr(c1 + 1, c2 - c1 - 1);
    EXPECT_FALSE(lineno.empty()) << line;
    for (char c : lineno) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_EQ(line.substr(c2, 3), ": [") << line;
    EXPECT_NE(line.find("] ", c2), std::string::npos) << line;
  }
}

TEST(NclintFixtures, AllowAnnotationsSilenceCleanTree) {
  const std::string root = fixture_root("ok");
  LintRun r = run_nclint("--root " + root + " " + root);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_TRUE(r.out.empty()) << "clean run must be silent:\n" << r.out;
}

TEST(NclintFixtures, SingleFileScopingStillApplies) {
  // Path scoping keys off the --root-relative path, so handing the linter
  // one file inside bad/ must flag the hot-path rules for that file only.
  const std::string root = fixture_root("bad");
  LintRun r =
      run_nclint("--root " + root + " " + root + "/src/core/float_eq.cpp");
  ASSERT_EQ(r.exit_code, 1) << r.out;
  EXPECT_EQ(sites_of(r, "float-exact").size(), 3u);
  EXPECT_EQ(sites_of(r, "wall-clock").size(), 0u);
  EXPECT_EQ(r.lines.back(), "nclint: 3 violations in 1 files");
}

TEST(NclintFixtures, UsageAndMissingPathsExitTwo) {
  EXPECT_EQ(run_nclint("").exit_code, 2);
  LintRun missing = run_nclint("--root " + fixture_root("ok") + " " +
                               fixture_root("ok") + "/src/nosuchfile.cpp");
  EXPECT_EQ(missing.exit_code, 2);
  EXPECT_NE(missing.out.find("no such path"), std::string::npos);
}

TEST(NclintFixtures, ListRulesCoversCatalogue) {
  LintRun r = run_nclint("--list-rules");
  ASSERT_EQ(r.exit_code, 0) << r.out;
  for (const char* rule :
       {"unordered-iter", "ordered-map", "wall-clock", "msgkind-budget",
        "alarm-contract", "float-exact", "stats-batch", "bad-annotation"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << "missing rule " << rule;
  }
}

}  // namespace

#else  // !NC_NCLINT_BIN

TEST(NclintFixtures, DISABLED_RequiresToolsBuild) {
  GTEST_SKIP() << "built with NC_BUILD_TOOLS=OFF; nclint binary unavailable";
}

#endif
