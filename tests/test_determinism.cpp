#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/driver.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

// Determinism regression suite: the full protocol on three fixed-seed
// graphs must reproduce the exact RunStats and output labels recorded from
// the pre-event-driven simulator (the per-round full-scan implementation
// this repository started from). Any change to the runtime that alters
// delivery order, wake-up order, alarm semantics or accounting shows up
// here as a hard failure, which is the repository's guarantee that perf
// work on the simulator core never changes simulated executions.
//
// Since the sharded delivery engine, every golden configuration is also
// executed at net.threads = 4: the two-phase parallel round must reproduce
// the same pre-refactor numbers bit-for-bit, and a direct k = 1 vs k = 4
// comparison locks full RunStats/label equality across thread counts.

namespace nc {
namespace {

struct Expected {
  std::uint64_t rounds;
  std::uint64_t messages;
  std::uint64_t bits;
  std::uint64_t max_message_bits;
  std::uint64_t label_hash;  ///< FNV-1a over the label vector, in node order
  std::size_t nonbottom;     ///< nodes with a non-bottom label
  std::uint64_t local_ops;   ///< summed local computation
};

std::uint64_t label_hash(const std::vector<Label>& labels) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Label l : labels) {
    h ^= l;
    h *= 1099511628211ULL;
  }
  return h;
}

void expect_exact_at(const Graph& g, DriverConfig cfg, const Expected& want,
                     unsigned threads) {
  cfg.net.threads = threads;
  const auto res = run_dist_near_clique(g, cfg);
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_FALSE(res.stats.stalled);
  EXPECT_FALSE(res.stats.hit_round_limit);
  EXPECT_EQ(res.stats.rounds, want.rounds);
  EXPECT_EQ(res.stats.messages, want.messages);
  EXPECT_EQ(res.stats.bits, want.bits);
  EXPECT_EQ(res.stats.max_message_bits, want.max_message_bits);
  std::uint64_t kind_bits = 0;
  for (const auto b : res.stats.bits_by_kind) kind_bits += b;
  EXPECT_EQ(kind_bits, want.bits);  // per-kind attribution is exhaustive
  EXPECT_EQ(label_hash(res.labels), want.label_hash);
  std::size_t nonbottom = 0;
  for (const Label l : res.labels) nonbottom += (l != kBottom);
  EXPECT_EQ(nonbottom, want.nonbottom);
  EXPECT_EQ(res.total_local_ops, want.local_ops);
}

void expect_exact(const Graph& g, const DriverConfig& cfg,
                  const Expected& want) {
  // The serial engine must reproduce the pre-event-driven goldens, and the
  // sharded engine at 4 threads must reproduce the serial engine — same
  // numbers, any thread count.
  expect_exact_at(g, cfg, want, 1);
  expect_exact_at(g, cfg, want, 4);
}

TEST(DeterminismRegression, PlantedClique60) {
  Rng rng(7);
  PlantedNearCliqueParams pp;
  pp.n = 60;
  pp.clique_size = 24;
  pp.eps_missing = 0.0;
  pp.background_p = 0.08;
  pp.halo_p = 0.25;
  const auto inst = planted_near_clique(pp, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.08;
  cfg.net.seed = 3;
  cfg.net.max_rounds = 300'000;
  expect_exact(inst.graph, cfg,
               Expected{68, 7045, 246118, 48, 9160231386051612719ULL, 22,
                        64751});
}

TEST(DeterminismRegression, PlantedPartition48TwoVersions) {
  Rng rng(11);
  const auto inst = planted_partition(48, 3, 0.85, 0.05, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.25;
  cfg.proto.p = 0.15;
  cfg.proto.versions = 2;  // exercises version windows + fast-forward
  cfg.net.seed = 17;
  cfg.net.max_rounds = 300'000;
  expect_exact(inst.graph, cfg,
               Expected{149818, 5577, 135883, 47, 6247598316484435304ULL, 11,
                        13443});
}

TEST(DeterminismRegression, ErdosRenyi40MinReportSize) {
  Rng rng(5);
  const Graph g = erdos_renyi(40, 0.18, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.2;
  cfg.proto.min_report_size = 2;
  cfg.net.seed = 23;
  cfg.net.max_rounds = 300'000;
  expect_exact(g, cfg,
               Expected{66, 1996, 65272, 47, 2160690531911529915ULL, 0, 8411});
}

TEST(DeterminismRegression, ThreadCountsAreBitIdentical) {
  // Direct k = 1 vs k = 4 (and an n < k shard count) comparison of the
  // complete observable outcome: RunStats, per-kind bits and labels. This
  // is the sharded engine's contract — thread count is a pure performance
  // knob, never a semantic one.
  Rng rng(13);
  const auto inst = planted_partition(56, 4, 0.8, 0.06, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.12;
  cfg.proto.versions = 2;  // exercises version windows + fast-forward
  cfg.net.seed = 41;
  cfg.net.max_rounds = 300'000;

  cfg.net.threads = 1;
  const auto serial = run_dist_near_clique(inst.graph, cfg);
  for (const unsigned threads : {2u, 4u, 64u}) {  // 64 > n: empty shards
    cfg.net.threads = threads;
    const auto sharded = run_dist_near_clique(inst.graph, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(serial.stats.rounds, sharded.stats.rounds);
    EXPECT_EQ(serial.stats.messages, sharded.stats.messages);
    EXPECT_EQ(serial.stats.bits, sharded.stats.bits);
    EXPECT_EQ(serial.stats.max_message_bits, sharded.stats.max_message_bits);
    EXPECT_EQ(serial.stats.bits_by_kind, sharded.stats.bits_by_kind);
    EXPECT_EQ(serial.stats.stalled, sharded.stats.stalled);
    EXPECT_EQ(serial.stats.hit_round_limit, sharded.stats.hit_round_limit);
    EXPECT_EQ(serial.labels, sharded.labels);
    EXPECT_EQ(serial.total_local_ops, sharded.total_local_ops);
  }
}

TEST(DeterminismRegression, BroadcastDedupMatchesPerEdgeBitIdentically) {
  // The stage-side broadcast payload dedup is a pure representation change:
  // forcing every copy down the per-edge path (broadcast_dedup = false)
  // must reproduce the dedup engine's RunStats, per-kind bits and labels
  // bit for bit — at every thread count, clean and under a fault plan that
  // drops, delays and crashes (per-copy verdicts must stay per-edge).
  Rng rng(19);
  const auto inst = planted_partition(56, 4, 0.8, 0.06, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.12;
  cfg.proto.versions = 2;
  cfg.net.seed = 47;
  cfg.net.max_rounds = 300'000;

  for (const bool faulty : {false, true}) {
    if (faulty) {
      cfg.net.faults.loss = 0.03;
      cfg.net.faults.delay_min = 0;
      cfg.net.faults.delay_max = 2;
      cfg.net.faults.crash_frac = 0.05;
      cfg.net.faults.crash_round = 40;
      cfg.net.faults.recover_after = 30;
    }
    SCOPED_TRACE(faulty ? "loss+delay+churn" : "clean");
    cfg.net.broadcast_dedup = true;
    cfg.net.threads = 1;
    const auto golden = run_dist_near_clique(inst.graph, cfg);
    for (const unsigned threads : {1u, 2u, 4u, 64u}) {
      for (const bool dedup : {true, false}) {
        if (threads == 1 && dedup) continue;  // that run is the golden
        cfg.net.broadcast_dedup = dedup;
        cfg.net.threads = threads;
        const auto got = run_dist_near_clique(inst.graph, cfg);
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     (dedup ? " dedup" : " per-edge"));
        EXPECT_EQ(golden.stats.rounds, got.stats.rounds);
        EXPECT_EQ(golden.stats.messages, got.stats.messages);
        EXPECT_EQ(golden.stats.bits, got.stats.bits);
        EXPECT_EQ(golden.stats.max_message_bits, got.stats.max_message_bits);
        EXPECT_EQ(golden.stats.bits_by_kind, got.stats.bits_by_kind);
        EXPECT_EQ(golden.stats.stalled, got.stats.stalled);
        EXPECT_EQ(golden.stats.hit_round_limit, got.stats.hit_round_limit);
        EXPECT_EQ(golden.labels, got.labels);
        EXPECT_EQ(golden.total_local_ops, got.total_local_ops);
      }
    }
    cfg.net.faults = FaultPlan{};
  }
}

TEST(DeterminismRegression, RepeatRunsAreIdentical) {
  Rng rng(7);
  PlantedNearCliqueParams pp;
  pp.n = 40;
  pp.clique_size = 16;
  pp.background_p = 0.1;
  pp.halo_p = 0.2;
  const auto inst = planted_near_clique(pp, rng);
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.1;
  cfg.net.seed = 99;
  const auto a = run_dist_near_clique(inst.graph, cfg);
  const auto b = run_dist_near_clique(inst.graph, cfg);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
  EXPECT_EQ(a.stats.bits_by_kind, b.stats.bits_by_kind);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace nc
