#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "test_helpers.hpp"

namespace nc {
namespace {

TEST(Metrics, OrderedPairsCountsBothDirections) {
  const Graph g = testing::two_triangles();
  EXPECT_EQ(ordered_internal_pairs(g, {0, 1, 2}), 6u);   // 3 edges * 2
  EXPECT_EQ(ordered_internal_pairs(g, {0, 1}), 2u);
  EXPECT_EQ(ordered_internal_pairs(g, {0, 3}), 0u);      // across triangles
  EXPECT_EQ(ordered_internal_pairs(g, {0}), 0u);
}

TEST(Metrics, DensityDefinitionOne) {
  const Graph g = testing::two_triangles();
  EXPECT_DOUBLE_EQ(set_density(g, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(set_density(g, {0, 1, 3}), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(set_density(g, {0}), 1.0);   // convention
  EXPECT_DOUBLE_EQ(set_density(g, {}), 1.0);    // convention
}

TEST(Metrics, NearCliquePredicateBoundaries) {
  // 4 nodes, 5 of 6 edges: density = 10/12, i.e. exactly 1/6-near clique.
  GraphBuilder b(4);
  b.add_clique({0, 1, 2, 3});
  const Graph full = b.build();
  GraphBuilder b2(4);
  b2.add_edge(0, 1);
  b2.add_edge(0, 2);
  b2.add_edge(0, 3);
  b2.add_edge(1, 2);
  b2.add_edge(1, 3);
  const Graph missing_one = b2.build();
  const std::vector<NodeId> all{0, 1, 2, 3};
  EXPECT_TRUE(is_near_clique(full, all, 0.0));
  EXPECT_TRUE(is_clique(full, all));
  EXPECT_FALSE(is_clique(missing_one, all));
  EXPECT_TRUE(is_near_clique(missing_one, all, 1.0 / 6.0));  // boundary
  EXPECT_TRUE(is_near_clique(missing_one, all, 0.2));
  EXPECT_FALSE(is_near_clique(missing_one, all, 0.16));
}

TEST(Metrics, NeighborsInSetMergeCount) {
  const Graph g = testing::clique_with_pendant();
  EXPECT_EQ(neighbors_in_set(g, 4, {0, 1, 2, 3, 5}), 5u);
  EXPECT_EQ(neighbors_in_set(g, 5, {0, 1, 2, 3}), 0u);
  EXPECT_EQ(neighbors_in_set(g, 5, {4}), 1u);
  EXPECT_EQ(neighbors_in_set(g, 0, {}), 0u);
}

TEST(Metrics, KThresholdExactIntegerSemantics) {
  // need = |X| - floor(eps |X|): allow at most floor(eps|X|) non-neighbours.
  EXPECT_EQ(k_threshold(10, 0.0), 10u);
  EXPECT_EQ(k_threshold(10, 0.1), 9u);
  EXPECT_EQ(k_threshold(10, 0.19), 9u);
  EXPECT_EQ(k_threshold(10, 0.2), 8u);
  EXPECT_EQ(k_threshold(10, 1.0), 0u);
  EXPECT_EQ(k_threshold(0, 0.5), 0u);
  EXPECT_EQ(k_threshold(1, 0.5), 1u);   // floor(0.5) = 0 allowed misses
  EXPECT_EQ(k_threshold(2, 0.5), 1u);
  // Float-boundary robustness: eps*|X| that is "almost" an integer.
  EXPECT_EQ(k_threshold(3, 0.1 + 0.2), 3u - 0u);  // 0.3*3 = 0.8999.. -> 0
}

TEST(Metrics, KEpsOnCliqueWithPendant) {
  const Graph g = testing::clique_with_pendant();
  // X = clique {0..4}: with eps=0 every member must see all of X except
  // itself — impossible under Eq. (1)'s no-self-exclusion, so K_0(X) = {}.
  EXPECT_TRUE(k_eps(g, {0, 1, 2, 3, 4}, 0.0).empty());
  // eps = 0.2 allows one miss: every clique member qualifies (4 of 5 >= 4).
  const auto k = k_eps(g, {0, 1, 2, 3, 4}, 0.2);
  EXPECT_EQ(k, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  // The pendant 5 sees only node 4: 1 of 5 < 4.
  // Singleton X = {4}: neighbours of 4 qualify, 4 itself does not.
  const auto k_single = k_eps(g, {4}, 0.0);
  EXPECT_EQ(k_single, (std::vector<NodeId>{0, 1, 2, 3, 5}));
}

TEST(Metrics, TEpsOnSmallCliqueIsEmptiedBySelfExclusion) {
  // K5 + pendant, X = {0,1}, eps = 0.2: K_{0.08}(X) = common neighbours
  // {2,3,4}; K_{0.2}({2,3,4}) needs 3 of 3 neighbours, which no member of
  // {2,3,4} can satisfy (no self-adjacency), so T = {} — this is exactly the
  // small-set slack the paper's -eps^{-2} size term absorbs.
  const Graph g = testing::clique_with_pendant();
  EXPECT_TRUE(t_eps(g, {0, 1}, 0.2).empty());
}

TEST(Metrics, TEpsRecoversCliqueFromSubsetSample) {
  // K9 + pendant: X = {0,1}, eps = 0.2. K_{0.08}(X) = common neighbours
  // {2..8} (7 nodes); K_{0.2} of that needs ceil((1-0.2)*7) = 6 in-set
  // neighbours, satisfied by 0..8 but not the pendant. T = {2..8}.
  GraphBuilder b(10);
  b.add_clique({0, 1, 2, 3, 4, 5, 6, 7, 8});
  b.add_edge(8, 9);
  const Graph g = b.build();
  const auto t = t_eps(g, {0, 1}, 0.2);
  EXPECT_EQ(t, (std::vector<NodeId>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(Metrics, TEpsEmptyWhenGraphSparse) {
  const Graph g = testing::path_graph(10);
  const auto t = t_eps(g, {0, 5, 9}, 0.1);
  // No node is adjacent to >= (1 - 0.02)*3 -> 3 of the scattered X.
  EXPECT_TRUE(t.empty());
}

// Property sweep: for every eps in a grid, K_eps is monotone in eps
// (larger eps only adds members) and T_eps(X) is always inside K_{2eps^2}(X).
class MetricsPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(MetricsPropertyTest, KMonotoneAndTContained) {
  const double eps = GetParam();
  Rng rng(1234);
  GraphBuilder b(40);
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      if (rng.next_bernoulli(0.3)) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  const std::vector<NodeId> x{1, 5, 9, 20, 33};
  const auto k_small = k_eps(g, x, eps);
  const auto k_big = k_eps(g, x, std::min(1.0, eps + 0.2));
  for (const NodeId v : k_small) {
    EXPECT_TRUE(std::binary_search(k_big.begin(), k_big.end(), v));
  }
  const auto inner = k_eps(g, x, 2 * eps * eps);
  for (const NodeId v : t_eps(g, x, eps)) {
    EXPECT_TRUE(std::binary_search(inner.begin(), inner.end(), v));
  }
}

INSTANTIATE_TEST_SUITE_P(EpsGrid, MetricsPropertyTest,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                                           0.4, 0.5));

}  // namespace
}  // namespace nc
