#include <gtest/gtest.h>

#include <memory>

#include "runtime/network.hpp"
#include "test_helpers.hpp"
#include "util/bitio.hpp"

namespace nc {
namespace {

constexpr std::uint16_t kData = 1;
constexpr std::uint16_t kOther = 2;

/// Node that sends a fixed payload to every neighbour in round 1 and records
/// what it receives, with the round number of each arrival.
class EchoNode : public INode {
 public:
  explicit EchoNode(std::size_t payload_symbols, unsigned width = 8)
      : payload_(payload_symbols), width_(width) {}

  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_all(StreamKey{kData, api.id(), 0});
    for (std::size_t i = 0; i < payload_; ++i) {
      ch.put(i % (1ULL << width_), width_);
    }
    ch.close();
  }

  void on_round(NodeApi& api) override {
    bool all_done = true;
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      const NodeId from = api.neighbors()[ni];
      InStream* in = api.find_in(ni, StreamKey{kData, from, 0});
      if (in == nullptr) {
        all_done = false;
        continue;
      }
      while (in->available() > 0) {
        received_.emplace_back(api.round(), in->pop());
      }
      if (!in->finished()) all_done = false;
    }
    if (all_done) api.set_done();
  }

  std::vector<std::pair<std::uint64_t, std::uint64_t>> received_;

 private:
  std::size_t payload_;
  unsigned width_;
};

TEST(Runtime, OneRoundLatency) {
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.bandwidth_factor = 16;  // n=2: header is 12 bits; leave room for data
  Network net(g, cfg, [](NodeId) { return std::make_unique<EchoNode>(1); });
  const auto stats = net.run();
  EXPECT_FALSE(stats.stalled);
  auto& n0 = static_cast<EchoNode&>(net.node(0));
  ASSERT_EQ(n0.received_.size(), 1u);
  EXPECT_EQ(n0.received_[0].first, 1u);  // sent in on_start -> round 1
}

TEST(Runtime, LongStreamIsChunkedAcrossRounds) {
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.bandwidth_factor = 16;  // B = 32 bits; header 12 -> two symbols/round
  Network net(g, cfg,
              [](NodeId) { return std::make_unique<EchoNode>(100, 8); });
  const auto stats = net.run();
  auto& n0 = static_cast<EchoNode&>(net.node(0));
  ASSERT_EQ(n0.received_.size(), 100u);
  EXPECT_GE(stats.rounds, 50u);  // 100 symbols at two per round
  // FIFO order preserved.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(n0.received_[i].second, i % 256);
  }
  // Arrival rounds are non-decreasing.
  for (std::size_t i = 1; i < 100; ++i) {
    EXPECT_GE(n0.received_[i].first, n0.received_[i - 1].first);
  }
}

TEST(Runtime, CongestEnforcesMaxMessageBits) {
  const Graph g = testing::complete_graph(8);
  NetConfig cfg;
  cfg.bandwidth_factor = 8;
  Network net(g, cfg,
              [](NodeId) { return std::make_unique<EchoNode>(64, 3); });
  const auto stats = net.run();
  EXPECT_LE(stats.max_message_bits, 8u * id_width(8));
  EXPECT_GT(stats.messages, 0u);
  EXPECT_GT(stats.bits, 0u);
}

TEST(Runtime, OversizedSymbolThrows) {
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.bandwidth_factor = 4;  // B = 8 bits; header alone exceeds it
  class BigSymbolNode : public INode {
   public:
    void on_start(NodeApi& api) override {
      auto ch = api.open_stream_all(StreamKey{kData, 0, 0});
      ch.put(0xffffffffffULL, 40);  // 40-bit symbol can never fit
      ch.close();
    }
    void on_round(NodeApi& api) override { api.set_done(); }
  };
  Network net(g, cfg, [](NodeId) { return std::make_unique<BigSymbolNode>(); });
  EXPECT_THROW(net.run(), std::runtime_error);
}

TEST(Runtime, LocalModeDrainsEverythingInOneRound) {
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.mode = NetConfig::Mode::kLocal;
  Network net(g, cfg,
              [](NodeId) { return std::make_unique<EchoNode>(5000, 16); });
  const auto stats = net.run();
  EXPECT_LE(stats.rounds, 2u);
  auto& n0 = static_cast<EchoNode&>(net.node(0));
  EXPECT_EQ(n0.received_.size(), 5000u);
  EXPECT_GT(stats.max_message_bits, 5000u);  // one giant message
}

TEST(Runtime, RoundRobinSharesEdgeBetweenStreams) {
  // One sender, two streams on the same edge: both must finish in roughly
  // interleaved fashion rather than one starving the other.
  const Graph g = testing::path_graph(2);
  class TwoStreamSender : public INode {
   public:
    void on_start(NodeApi& api) override {
      if (api.id() != 0) {
        return;
      }
      // Pure sender: never receives anything, so it must arm an alarm to be
      // woken once (the event-driven simulator does not poll quiet nodes).
      api.set_alarm(1);
      auto a = api.open_stream_all(StreamKey{kData, 1, 0});
      auto b = api.open_stream_all(StreamKey{kOther, 2, 0});
      for (int i = 0; i < 50; ++i) {
        a.put(1, 8);
        b.put(2, 8);
      }
      a.close();
      b.close();
    }
    void on_round(NodeApi& api) override {
      if (api.id() == 0) {
        api.set_done();
        return;
      }
      InStream* a = api.find_in(0, StreamKey{kData, 1, 0});
      InStream* b = api.find_in(0, StreamKey{kOther, 2, 0});
      if (a != nullptr) {
        while (a->available() > 0) {
          a->pop();
          if (!first_done_round_a_) first_a_ = api.round();
        }
        if (a->finished()) done_a_ = api.round();
      }
      if (b != nullptr) {
        while (b->available() > 0) b->pop();
        if (b->finished()) done_b_ = api.round();
      }
      if (a != nullptr && b != nullptr && a->finished() && b->finished()) {
        api.set_done();
      }
    }
    std::uint64_t first_a_ = 0, done_a_ = 0, done_b_ = 0;
    bool first_done_round_a_ = false;
  };
  NetConfig cfg;
  cfg.bandwidth_factor = 10;
  Network net(g, cfg,
              [](NodeId) { return std::make_unique<TwoStreamSender>(); });
  net.run();
  auto& n1 = static_cast<TwoStreamSender&>(net.node(1));
  EXPECT_GT(n1.done_a_, 0u);
  EXPECT_GT(n1.done_b_, 0u);
  // Fair sharing: completion rounds within 2 rounds of each other.
  const auto diff = n1.done_a_ > n1.done_b_ ? n1.done_a_ - n1.done_b_
                                            : n1.done_b_ - n1.done_a_;
  EXPECT_LE(diff, 2u);
}

TEST(Runtime, StallDetectionFiresOnDeadlockedProtocol) {
  const Graph g = testing::path_graph(2);
  class WaitsForever : public INode {
   public:
    void on_start(NodeApi&) override {}
    void on_round(NodeApi&) override {}  // never sends, never done
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<WaitsForever>(); });
  const auto stats = net.run();
  EXPECT_TRUE(stats.stalled);
}

TEST(Runtime, AlarmWakesAndFastForwardCountsRounds) {
  const Graph g = testing::path_graph(2);
  class Sleeper : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(5000); }
    void on_round(NodeApi& api) override {
      if (api.round() >= 5000) {
        woke_at_ = api.round();
        api.set_done();
      } else {
        api.set_alarm(5000);
      }
    }
    std::uint64_t woke_at_ = 0;
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<Sleeper>(); });
  const auto stats = net.run();
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.rounds, 5000u);
  EXPECT_EQ(static_cast<Sleeper&>(net.node(0)).woke_at_, 5000u);
}

TEST(Runtime, MaxRoundsAborts) {
  const Graph g = testing::path_graph(2);
  class Chatter : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(1); }
    void on_round(NodeApi& api) override {
      auto ch = api.open_stream_all(
          StreamKey{kData, static_cast<NodeId>(api.round() % 1000), 0});
      ch.put_bit(true);
      ch.close();
    }
  };
  NetConfig cfg;
  cfg.max_rounds = 50;
  Network net(g, cfg, [](NodeId) { return std::make_unique<Chatter>(); });
  const auto stats = net.run();
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_LE(stats.rounds, 50u);
}

TEST(Runtime, RunRoundsIsExactWithoutFastForward) {
  const Graph g = testing::path_graph(2);
  class Sleeper : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(100); }
    void on_round(NodeApi& api) override {
      if (api.round() >= 100) {
        api.set_done();
      } else {
        api.set_alarm(100);
      }
    }
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<Sleeper>(); });
  EXPECT_FALSE(net.run_rounds(10));
  EXPECT_EQ(net.stats().rounds, 10u);
  EXPECT_FALSE(net.all_done());
  EXPECT_TRUE(net.run_rounds(95));
  EXPECT_TRUE(net.all_done());
}

TEST(Runtime, StatsAreDeterministicGivenSeed) {
  const Graph g = testing::complete_graph(6);
  auto run_once = [&]() {
    NetConfig cfg;
    cfg.seed = 99;
    Network net(g, cfg, [](NodeId) { return std::make_unique<EchoNode>(20); });
    return net.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
}

TEST(Runtime, BitsByKindAttribution) {
  const Graph g = testing::path_graph(2);
  NetConfig cfg;
  cfg.bandwidth_factor = 16;
  Network net(g, cfg, [](NodeId) { return std::make_unique<EchoNode>(4); });
  const auto stats = net.run();
  EXPECT_GT(stats.bits_by_kind[kData], 0u);
  EXPECT_EQ(stats.bits_by_kind[kData], stats.bits);
  for (std::uint16_t k = 0; k < kMaxMsgKinds; ++k) {
    if (k != kData) {
      EXPECT_EQ(stats.bits_by_kind[k], 0u) << "kind " << k;
    }
  }
}

TEST(Runtime, NodeApiNeighborIndex) {
  const Graph g = testing::star_graph(3);  // center 0, leaves 1,2,3
  class Checker : public INode {
   public:
    void on_start(NodeApi& api) override {
      if (api.id() == 0) {
        EXPECT_EQ(api.degree(), 3u);
        EXPECT_EQ(api.neighbor_index(2), 1u);
        EXPECT_EQ(api.neighbor_index(0), SIZE_MAX);  // not own neighbour
      } else {
        EXPECT_EQ(api.neighbor_index(0), 0u);
      }
    }
    void on_round(NodeApi& api) override { api.set_done(); }
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<Checker>(); });
  net.run();
}

TEST(Runtime, AlarmOverwriteUsesLatestValueAndSkipsStaleBuckets) {
  // set_alarm overwrites: the queue's earlier bucket entry must go stale and
  // never fire. Node 0 arms 500 then immediately re-arms 100; it must wake
  // at exactly 100 and 300, never at 500. Node 1 keeps the network alive
  // past 500 so a spurious wake would be observable.
  const Graph g = testing::path_graph(2);
  class Rearm : public INode {
   public:
    void on_start(NodeApi& api) override {
      api.set_alarm(500);
      api.set_alarm(100);  // latest call wins
    }
    void on_round(NodeApi& api) override {
      wakes_.push_back(api.round());
      if (api.round() == 100) {
        api.set_alarm(300);
      } else {
        api.set_done();
      }
    }
    std::vector<std::uint64_t> wakes_;
  };
  class LongSleeper : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(600); }
    void on_round(NodeApi& api) override { api.set_done(); }
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId v) -> std::unique_ptr<INode> {
    if (v == 0) return std::make_unique<Rearm>();
    return std::make_unique<LongSleeper>();
  });
  const auto stats = net.run();
  EXPECT_FALSE(stats.stalled);
  EXPECT_EQ(stats.rounds, 600u);
  const auto& wakes = static_cast<Rearm&>(net.node(0)).wakes_;
  EXPECT_EQ(wakes, (std::vector<std::uint64_t>{100, 300}));
}

TEST(Runtime, QuietNodesAreNeverPolled) {
  // Event-driven contract: a node with no deliveries and no alarm costs
  // nothing — on_round is not invoked for it while others traffic.
  const Graph g = testing::path_graph(3);
  class CountingNode : public INode {
   public:
    explicit CountingNode(bool talk) : talk_(talk) {}
    void on_start(NodeApi& api) override {
      if (!talk_ || api.id() != 0) return;
      auto ch = api.open_stream_one(StreamKey{kData, 0, 0}, 0);
      for (int i = 0; i < 30; ++i) ch.put(i % 256, 8);
      ch.close();
      api.set_alarm(40);  // pure sender: wakes once, then finishes
    }
    void on_round(NodeApi& api) override {
      ++calls_;
      if (api.id() == 0) {
        api.set_done();
        return;
      }
      InStream* in = api.find_in(0, StreamKey{kData, 0, 0});
      if (in != nullptr) {
        while (in->available() > 0) in->pop();
        if (in->finished()) api.set_done();
      }
    }
    std::uint64_t calls_ = 0;
    bool talk_;
  };
  NetConfig cfg;
  cfg.bandwidth_factor = 16;  // a few symbols per round: several busy rounds
  Network net(g, cfg, [](NodeId v) {
    return std::make_unique<CountingNode>(v == 0);
  });
  const auto stats = net.run();
  // Node 2 neither received anything nor set an alarm: never woken, so the
  // network ends in a (deliberate) stall with node 2 unfinished.
  EXPECT_TRUE(stats.stalled);
  EXPECT_EQ(static_cast<CountingNode&>(net.node(2)).calls_, 0u);
  EXPECT_GT(static_cast<CountingNode&>(net.node(1)).calls_, 1u);
  EXPECT_EQ(static_cast<CountingNode&>(net.node(0)).calls_, 1u);
}

TEST(Runtime, ActiveLinkSetDrainsToZero) {
  const Graph g = testing::complete_graph(4);
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<EchoNode>(8); });
  EXPECT_GT(net.active_link_count(), 0u);  // on_start queued broadcasts
  net.run();
  EXPECT_EQ(net.active_link_count(), 0u);  // everything delivered
}

TEST(Runtime, OutOfRangeKindIsRejected) {
  const Graph g = testing::path_graph(2);
  class BadKind : public INode {
   public:
    void on_start(NodeApi& api) override {
      EXPECT_THROW((void)api.open_stream_all(StreamKey{32, 0, 0}),
                   std::invalid_argument);
      EXPECT_THROW((void)api.open_stream_all(StreamKey{1, 0, 16}),
                   std::invalid_argument);  // version beyond the 4-bit field
      EXPECT_THROW((void)api.rx_count(32), std::out_of_range);
      // In-range kinds are unaffected.
      EXPECT_EQ(api.rx_count(31), 0u);
      auto ch = api.open_stream_all(StreamKey{31, 0, 0});
      ch.put_bit(true);
      ch.close();
    }
    void on_round(NodeApi& api) override {
      if (api.rx_count(31) > 0) api.set_done();
    }
  };
  NetConfig cfg;
  Network net(g, cfg, [](NodeId) { return std::make_unique<BadKind>(); });
  const auto stats = net.run();
  EXPECT_FALSE(stats.stalled);
}

TEST(Runtime, MidRunExceptionPropagatesCleanlyAtEveryThreadCount) {
  // Regression for `nearclique run` exiting nonzero instead of aborting:
  // a protocol callback that throws mid-run (here at round 3) must surface
  // as an ordinary exception from Network::run() — including when the
  // callback runs on a pool worker — leave the Network destructible, and
  // leave the process healthy enough to build and run a fresh network.
  struct Boom {};  // deliberately NOT std::exception: the worst case
  class ThrowingNode : public INode {
   public:
    void on_start(NodeApi& api) override { api.set_alarm(1); }
    void on_round(NodeApi& api) override {
      if (api.round() >= 3) throw Boom{};
      api.set_alarm(api.round() + 1);
    }
  };
  const Graph g = testing::complete_graph(8);
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    NetConfig cfg;
    cfg.threads = threads;
    {
      Network net(g, cfg,
                  [](NodeId) { return std::make_unique<ThrowingNode>(); });
      EXPECT_THROW(net.run(), Boom);
    }  // destruction after the throw must not hang or crash the pool
    // The runtime is reusable after the failure.
    Network ok(g, cfg, [](NodeId) { return std::make_unique<EchoNode>(4); });
    const auto stats = ok.run();
    EXPECT_FALSE(stats.stalled);
    EXPECT_GT(stats.messages, 0u);
  }
}

TEST(Runtime, OnStartRunsOnceForEveryNodeUnderSharding) {
  // on_start is dispatched shard-parallel since the fault-engine PR; every
  // node must still get exactly one call, and fixed-seed results must not
  // depend on the shard count (locked broadly by test_determinism; this is
  // the direct contract check).
  const Graph g = testing::complete_graph(32);
  for (const unsigned threads : {1u, 4u, 64u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    NetConfig cfg;
    cfg.threads = threads;
    cfg.bandwidth_factor = 16;
    std::vector<int> starts(g.n(), 0);
    class CountingStart : public EchoNode {
     public:
      CountingStart(int* slot) : EchoNode(2), slot_(slot) {}
      void on_start(NodeApi& api) override {
        ++*slot_;  // slot is this node's own entry: no cross-node sharing
        EchoNode::on_start(api);
      }
     private:
      int* slot_;
    };
    Network net(g, cfg, [&starts](NodeId v) {
      return std::make_unique<CountingStart>(&starts[v]);
    });
    const auto stats = net.run();
    EXPECT_FALSE(stats.stalled);
    for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(starts[v], 1) << v;
  }
}

TEST(Runtime, RunStatsAbsorbMerges) {
  RunStats a, b;
  a.rounds = 10;
  a.bits = 100;
  a.max_message_bits = 40;
  a.bits_by_kind[1] = 100;
  b.rounds = 5;
  b.bits = 50;
  b.max_message_bits = 60;
  b.hit_round_limit = true;
  b.bits_by_kind[1] = 30;
  b.bits_by_kind[2] = 20;
  a.absorb(b);
  EXPECT_EQ(a.rounds, 15u);
  EXPECT_EQ(a.bits, 150u);
  EXPECT_EQ(a.max_message_bits, 60u);
  EXPECT_TRUE(a.hit_round_limit);
  EXPECT_EQ(a.bits_by_kind[1], 130u);
  EXPECT_EQ(a.bits_by_kind[2], 20u);
  EXPECT_NE(a.summary().find("rounds=15"), std::string::npos);
}

}  // namespace
}  // namespace nc
