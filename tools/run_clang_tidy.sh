#!/usr/bin/env bash
# clang-tidy driver for the near-clique engine.
#
#   tools/run_clang_tidy.sh [build-dir] [file ...]
#
# With no files, lints every .cpp under src/ and cli/ (headers are pulled in
# through HeaderFilterRegex in .clang-tidy). The build dir (default: build/)
# must contain compile_commands.json — the default CMake preset exports it.
#
# Per-file suppression: list repo-relative paths in
# tools/clang-tidy-suppressions.txt (one per line, '#' comments). Each entry
# must carry a trailing comment naming why — the file is the audit trail.
#
# Exit codes: 0 clean, 1 findings, 2 environment/usage problems. When
# clang-tidy is not installed the script reports and exits 0 under
# NC_TIDY_OPTIONAL=1 (local convenience), 2 otherwise (CI must fail loudly
# rather than silently skip the gate).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift 2>/dev/null || true

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  if [ "${NC_TIDY_OPTIONAL:-0}" = "1" ]; then
    echo "run_clang_tidy: $tidy_bin not found; skipping (NC_TIDY_OPTIONAL=1)" >&2
    exit 0
  fi
  echo "run_clang_tidy: $tidy_bin not found — install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json in $build_dir" >&2
  echo "  configure first: cmake --preset default   (exports it)" >&2
  exit 2
fi

suppress_file="$repo_root/tools/clang-tidy-suppressions.txt"
is_suppressed() {
  local rel="$1"
  [ -f "$suppress_file" ] || return 1
  grep -E -q "^${rel}([[:space:]]|\$)" \
    <(sed -e 's/#.*//' "$suppress_file") 2>/dev/null
}

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  while IFS= read -r f; do files+=("$f"); done \
    < <(find "$repo_root/src" "$repo_root/cli" -name '*.cpp' | sort)
fi

status=0
checked=0
skipped=0
for f in "${files[@]}"; do
  rel="${f#"$repo_root"/}"
  if is_suppressed "$rel"; then
    echo "run_clang_tidy: suppressed $rel (tools/clang-tidy-suppressions.txt)"
    skipped=$((skipped + 1))
    continue
  fi
  checked=$((checked + 1))
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done

echo "run_clang_tidy: $checked files checked, $skipped suppressed"
exit "$status"
