// nclint — the repo-specific determinism & contract linter.
//
// Generic tools cannot know this codebase's contracts; nclint enforces the
// ones every PR must keep (see docs/static-analysis.md for the catalogue
// with rationale):
//
//   unordered-iter   no iteration over std::unordered_map/std::unordered_set
//                    in src/runtime/ + src/core/ — hash iteration order is
//                    implementation-defined, and the simulator's bit-for-bit
//                    fixed-seed guarantee dies the moment protocol or engine
//                    behaviour depends on it. Point lookups are fine.
//   ordered-map      no new std::map in src/runtime/ + src/core/ hot paths —
//                    the engine's data structures are flat/SoA by design
//                    (PR 1/6/7); a red-black tree in a per-message or
//                    per-round path is a regression. Deliberate cold-path
//                    uses carry an allow annotation naming their excuse.
//   wall-clock       no std::random_device, rand()/srand(), time()-seeding
//                    or std::chrono anywhere in src/ — every random decision
//                    must derive from the run's seed and every schedule from
//                    the round counter, or fixed-seed runs stop reproducing.
//                    The opt-in profile timers are file-allowlisted.
//   msgkind-budget   MsgKind enumerators must stay inside [0, 32) — the wire
//                    header carries the kind in 5 bits and every per-kind
//                    table (rx counters, bits_by_kind, inbox slots) is sized
//                    by kMaxMsgKinds. A 32nd kind silently aliases.
//   alarm-contract   a file overriding INode::on_round must reference the
//                    alarm API (set_alarm/arm_alarm) — the runtime is
//                    event-driven and only wakes a node on delivery or
//                    alarm; a protocol that polls without arming simply
//                    stalls (src/runtime/README.md).
//   float-exact      no floating-point == / != in src/core/ — the Theorem
//                    5.7 predicates are exact integer arithmetic by
//                    contract (PR 3); a float equality in a theorem
//                    predicate is either dead or wrong.
//   stats-batch      no direct `stats_.x += / ++` or `.traffic.x += / ++`
//                    in src/runtime/ — per-message charges go through
//                    TrafficBatch (accounting.hpp) or the telemetry window
//                    accumulators and flush once per phase; a stray
//                    read-modify-write per message is the regression PR 7
//                    removed. Deliberate once-per-event cold-path charges
//                    carry an allow annotation naming their excuse.
//   bad-annotation   an nclint allow annotation naming an unknown rule —
//                    a typo here would silently disable nothing.
//
// Suppressions:
//   // nclint:allow(rule[,rule...]) [reason]        — this line only
//   // nclint:allow-file(rule[,rule...]): reason    — whole file
//
// Usage: nclint [--root <dir>] [--list-rules] <file-or-dir>...
// Paths given as directories are walked recursively for *.hpp/*.cpp.
// Rule scoping matches on the path relative to --root (or the path as
// given). Exit 0 = clean, 1 = violations (printed as file:line: [rule]
// message), 2 = usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceLine {
  std::string code;     ///< comments and string/char literals stripped
  std::string comment;  ///< comment text on this line (for annotations)
};

constexpr const char* kRuleNames[] = {
    "unordered-iter", "ordered-map",    "wall-clock", "msgkind-budget",
    "alarm-contract", "float-exact",    "stats-batch", "bad-annotation",
};

bool known_rule(std::string_view name) {
  for (const char* r : kRuleNames) {
    if (name == r) return true;
  }
  return false;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Splits each physical line into code and comment parts, blanking string
/// and character literals in the code part (their contents must never trip
/// a rule). Tracks /* */ across lines. Raw strings are handled as plain
/// strings — good enough for this codebase, which has none in src/.
std::vector<SourceLine> preprocess(const std::string& text) {
  std::vector<SourceLine> lines;
  SourceLine cur;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur = SourceLine{};
      in_string = in_char = false;  // unterminated literals end at EOL
      continue;
    }
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      } else {
        cur.comment.push_back(c);
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') {
      cur.comment.append(text, i + 2, text.find('\n', i) - i - 2);
      i = text.find('\n', i);
      if (i == std::string::npos) break;
      lines.push_back(std::move(cur));
      cur = SourceLine{};
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      cur.code.push_back('"');  // keep delimiters so tokens stay separated
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000'000) are not character literals.
      if (i > 0 && ident_char(text[i - 1]) &&
          std::isdigit(static_cast<unsigned char>(text[i - 1])) != 0) {
        cur.code.push_back(c);
        continue;
      }
      in_char = true;
      cur.code.push_back('\'');
      continue;
    }
    cur.code.push_back(c);
  }
  if (!cur.code.empty() || !cur.comment.empty()) lines.push_back(cur);
  return lines;
}

/// Parses `nclint:allow(...)` / `nclint:allow-file(...)` out of a comment.
/// Returns the rule names listed; `file_wide` reports which form it was.
std::vector<std::string> parse_annotation(const std::string& comment,
                                          bool* file_wide) {
  std::vector<std::string> rules;
  *file_wide = false;
  std::size_t pos = comment.find("nclint:allow");
  if (pos == std::string::npos) return rules;
  pos += std::string_view("nclint:allow").size();
  if (comment.compare(pos, 5, "-file") == 0) {
    *file_wide = true;
    pos += 5;
  }
  if (pos >= comment.size() || comment[pos] != '(') return rules;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return rules;
  std::string list = comment.substr(pos + 1, close - pos - 1);
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](char c) { return std::isspace(
                                  static_cast<unsigned char>(c)) != 0; }),
               item.end());
    if (!item.empty()) rules.push_back(item);
  }
  return rules;
}

/// True if `code` contains `token` as a whole identifier (not a substring
/// of a longer identifier). `allow_qualified` keeps matches preceded by ':'
/// or '.' or '>' (member/namespace access); pass false to reject those.
bool has_token(const std::string& code, std::string_view token,
               bool allow_qualified = true) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    if (left_ok && right_ok) {
      if (allow_qualified) return true;
      const char prev = pos == 0 ? '\0' : code[pos - 1];
      if (prev != ':' && prev != '.' && prev != '>') return true;
    }
    pos += token.size();
  }
  return false;
}

/// Collects names of variables/members declared with a type whose spelling
/// contains `type_marker` (e.g. "unordered_map<"). Handles nested template
/// arguments by matching angle brackets, then takes the identifier that
/// follows. Misses exotic declarations (typedefs, auto factories) — fine
/// for a tripwire linter backed by review.
std::vector<std::string> declared_names(const std::vector<SourceLine>& lines,
                                        std::string_view type_marker) {
  std::vector<std::string> names;
  for (const auto& line : lines) {
    const std::string& code = line.code;
    std::size_t pos = 0;
    while ((pos = code.find(type_marker, pos)) != std::string::npos) {
      std::size_t i = pos + type_marker.size() - 1;  // at the '<'
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      pos = i;
      if (i >= code.size()) break;  // declaration continues on a later line
      ++i;
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
              code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < code.size() && ident_char(code[i])) name.push_back(code[i++]);
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

struct FileReport {
  std::vector<Diagnostic> diags;
};

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  void lint_file(const fs::path& path, std::vector<Diagnostic>& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "nclint: cannot read " << path.string() << "\n";
      io_error_ = true;
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const std::vector<SourceLine> lines = preprocess(text);

    const std::string rel = relative_path(path);
    const bool in_src = rel.find("src/") != std::string::npos;
    const bool hot_scope = rel.find("src/runtime/") != std::string::npos ||
                           rel.find("src/core/") != std::string::npos;
    const bool core_scope = rel.find("src/core/") != std::string::npos;
    const bool runtime_scope = rel.find("src/runtime/") != std::string::npos;

    // Pass 1: collect file-wide allows and per-line allows; flag typos.
    std::vector<std::string> file_allows;
    std::vector<std::vector<std::string>> line_allows(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].comment.find("nclint:allow") == std::string::npos) continue;
      bool file_wide = false;
      auto rules = parse_annotation(lines[i].comment, &file_wide);
      for (const auto& r : rules) {
        if (!known_rule(r)) {
          out.push_back({rel, i + 1, "bad-annotation",
                         "allow annotation names unknown rule '" + r + "'"});
        }
      }
      if (file_wide) {
        file_allows.insert(file_allows.end(), rules.begin(), rules.end());
      } else {
        line_allows[i] = std::move(rules);
      }
    }

    auto allowed = [&](std::size_t idx, const char* rule) {
      const auto& la = line_allows[idx];
      if (std::find(la.begin(), la.end(), rule) != la.end()) return true;
      return std::find(file_allows.begin(), file_allows.end(), rule) !=
             file_allows.end();
    };
    auto flag = [&](std::size_t idx, const char* rule, std::string msg) {
      if (!allowed(idx, rule)) out.push_back({rel, idx + 1, rule, std::move(msg)});
    };

    // Names of unordered containers declared in this file (for the
    // iteration rule).
    std::vector<std::string> unordered_names;
    if (hot_scope) {
      for (const char* marker : {"unordered_map<", "unordered_set<"}) {
        auto found = declared_names(lines, marker);
        unordered_names.insert(unordered_names.end(), found.begin(),
                               found.end());
      }
    }

    bool has_on_round_override = false;
    std::size_t on_round_line = 0;
    bool references_alarm = false;

    // MsgKind enum tracking across lines.
    bool in_msgkind_enum = false;
    long long next_implicit = 0;

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& code = lines[i].code;
      if (code.empty()) continue;

      // --- unordered-iter -------------------------------------------------
      if (hot_scope) {
        // Direct range-for over an unordered container expression.
        const std::size_t forpos = code.find("for ");
        const std::size_t colon = code.find(" : ");
        if (forpos != std::string::npos && colon != std::string::npos &&
            colon > forpos) {
          const std::string range = code.substr(colon + 3);
          if (range.find("unordered_") != std::string::npos) {
            flag(i, "unordered-iter",
                 "range-for over an unordered container — hash iteration "
                 "order is not deterministic");
          } else {
            for (const auto& name : unordered_names) {
              const std::size_t p = range.find(name);
              if (p != std::string::npos &&
                  (p == 0 || !ident_char(range[p - 1])) &&
                  (p + name.size() >= range.size() ||
                   !ident_char(range[p + name.size()]))) {
                flag(i, "unordered-iter",
                     "range-for over unordered container '" + name +
                         "' — hash iteration order is not deterministic");
                break;
              }
            }
          }
        }
        // Iterator walks: name.begin() / name.cbegin() on a tracked name.
        for (const auto& name : unordered_names) {
          for (const char* meth : {".begin(", ".cbegin(", ".rbegin("}) {
            const std::string pat = name + meth;
            if (code.find(pat) != std::string::npos) {
              flag(i, "unordered-iter",
                   "iterator walk over unordered container '" + name +
                       "' — hash iteration order is not deterministic");
            }
          }
        }
      }

      // --- ordered-map ----------------------------------------------------
      if (hot_scope && (code.find("std::map<") != std::string::npos ||
                        code.find("std::multimap<") != std::string::npos)) {
        flag(i, "ordered-map",
             "std::map in an engine hot path — use a flat/SoA structure, or "
             "annotate a deliberate cold-path use");
      }

      // --- wall-clock -----------------------------------------------------
      if (in_src) {
        if (code.find("std::random_device") != std::string::npos ||
            code.find("random_device") != std::string::npos) {
          flag(i, "wall-clock",
               "std::random_device breaks seeded reproducibility — derive "
               "randomness from the run seed (util/rng.hpp)");
        }
        if (has_token(code, "rand", false) &&
            code.find("rand(") != std::string::npos) {
          flag(i, "wall-clock",
               "rand() is unseeded global state — use the node's seeded Rng");
        }
        if (has_token(code, "srand", false)) {
          flag(i, "wall-clock", "srand() — seeding must come from NetConfig");
        }
        if (has_token(code, "time", false) &&
            code.find("time(") != std::string::npos) {
          flag(i, "wall-clock",
               "time() — wall-clock values must never reach a simulation "
               "decision or a seed");
        }
        if (code.find("std::chrono") != std::string::npos ||
            has_token(code, "chrono")) {
          flag(i, "wall-clock",
               "std::chrono in src/ — wall-clock reads are allowed only in "
               "annotated profile-timer files");
        }
      }

      // --- msgkind-budget -------------------------------------------------
      if (in_src) {
        const std::size_t ep = code.find("enum ");
        if (ep != std::string::npos &&
            code.find("MsgKind", ep) != std::string::npos) {
          in_msgkind_enum = true;
          next_implicit = 0;
        }
        if (in_msgkind_enum) {
          lint_msgkind_line(code, i, flag, &next_implicit);
          if (code.find("};") != std::string::npos) in_msgkind_enum = false;
        }
      }

      // --- alarm-contract (collection) ------------------------------------
      if (in_src) {
        // A pure declaration (`void on_round(...) override;` with the body
        // in another file) does not bind this file to the contract — only
        // an override with a body here does.
        if (code.find("on_round") != std::string::npos &&
            code.find("override") != std::string::npos &&
            code.find(';') == std::string::npos) {
          has_on_round_override = true;
          on_round_line = i;
        }
        if (has_token(code, "set_alarm") || has_token(code, "arm_alarm")) {
          references_alarm = true;
        }
      }

      // --- float-exact ----------------------------------------------------
      if (core_scope) {
        lint_float_compare(code, i, flag);
      }

      // --- stats-batch ----------------------------------------------------
      // Textual tripwire: a line that both names a RunStats sink (`stats_.`
      // members or a shard's `.traffic.` partial) and increments in place.
      // TrafficBatch itself is out of reach (it spells its parameter
      // `stats.` and its own members bare), so the batched idiom never
      // trips.
      if (runtime_scope &&
          (code.find("stats_.") != std::string::npos ||
           code.find("traffic.") != std::string::npos) &&
          (code.find("+=") != std::string::npos ||
           code.find("++") != std::string::npos)) {
        flag(i, "stats-batch",
             "direct RunStats counter increment in src/runtime/ — charge "
             "through TrafficBatch / a per-round accumulator and flush once "
             "per phase, or annotate a deliberate cold-path one-off");
      }
    }

    if (has_on_round_override && !references_alarm &&
        !allowed(on_round_line, "alarm-contract")) {
      bool file_allowed =
          std::find(file_allows.begin(), file_allows.end(),
                    std::string("alarm-contract")) != file_allows.end();
      if (!file_allowed) {
        out.push_back(
            {rel, on_round_line + 1, "alarm-contract",
             "on_round override without any set_alarm/arm_alarm reference — "
             "the event-driven runtime never polls; an unarmed protocol "
             "stalls (src/runtime/README.md)"});
      }
    }
  }

  [[nodiscard]] bool io_error() const noexcept { return io_error_; }

 private:
  template <typename FlagFn>
  void lint_msgkind_line(const std::string& code, std::size_t idx,
                         FlagFn& flag, long long* next_implicit) {
    // Enumerators: `name = value,` or `name,`. One per line in practice;
    // scan all comma-separated entries on the line to be safe.
    std::size_t pos = 0;
    while (pos < code.size()) {
      while (pos < code.size() && !ident_char(code[pos])) ++pos;
      std::size_t start = pos;
      while (pos < code.size() && ident_char(code[pos])) ++pos;
      if (start == pos) break;
      const std::string name = code.substr(start, pos - start);
      if (name == "enum" || name == "class" || name == "struct" ||
          name == "MsgKind" || name == "std" || name == "uint16_t" ||
          name == "uint8_t" || name == "int") {
        continue;
      }
      while (pos < code.size() &&
             std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
        ++pos;
      }
      long long value = *next_implicit;
      if (pos < code.size() && code[pos] == '=') {
        ++pos;
        while (pos < code.size() &&
               std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
          ++pos;
        }
        std::size_t vstart = pos;
        while (pos < code.size() &&
               (ident_char(code[pos]) || code[pos] == 'x' ||
                code[pos] == 'X')) {
          ++pos;
        }
        try {
          value = std::stoll(code.substr(vstart, pos - vstart), nullptr, 0);
        } catch (...) {
          continue;  // non-literal initializer; out of scope for a linter
        }
      }
      *next_implicit = value + 1;
      if (value >= 32 || value < 0) {
        flag(idx, "msgkind-budget",
             "MsgKind enumerator '" + name + "' = " + std::to_string(value) +
                 " does not fit the 5-bit wire header (kMaxMsgKinds = 32)");
      }
      // Skip to after the next comma (or stop at end/brace).
      while (pos < code.size() && code[pos] != ',' && code[pos] != '}') ++pos;
      if (pos < code.size() && code[pos] == '}') break;
    }
  }

  template <typename FlagFn>
  void lint_float_compare(const std::string& code, std::size_t idx,
                          FlagFn& flag) {
    for (std::size_t pos = 0; pos + 1 < code.size(); ++pos) {
      const char c = code[pos];
      if ((c != '=' && c != '!') || code[pos + 1] != '=') continue;
      if (pos + 2 < code.size() && code[pos + 2] == '=') {
        ++pos;  // === never happens in C++, but don't double count
        continue;
      }
      // Not a comparison: <=, >=, +=, -=, *=, /=, |=, &=, ^=, or the
      // second '=' of a '=='.
      if (c == '=' && pos > 0) {
        const char prev = code[pos - 1];
        if (prev == '<' || prev == '>' || prev == '+' || prev == '-' ||
            prev == '*' || prev == '/' || prev == '|' || prev == '&' ||
            prev == '^' || prev == '=' || prev == '!') {
          continue;
        }
      }
      if (c == '=' && code[pos + 1] == '=' && pos + 2 < code.size() &&
          code[pos + 2] == '=') {
        continue;
      }
      // Operator declarations are not comparisons.
      if (code.find("operator") != std::string::npos) return;
      // Either operand a floating literal? Look left and right for a token
      // shaped like 1.0 / .5 / 1e-6 / 0x1p-53.
      const std::string left = code.substr(0, pos);
      const std::string right = code.substr(pos + 2);
      if (is_float_literal_adjacent(left, /*from_end=*/true) ||
          is_float_literal_adjacent(right, /*from_end=*/false)) {
        flag(idx, "float-exact",
             "floating-point == / != in src/core/ — theorem predicates are "
             "exact integer arithmetic by contract; compare scaled integers "
             "or use an explicit tolerance helper");
        return;
      }
    }
  }

  static bool is_float_literal_adjacent(const std::string& s, bool from_end) {
    std::string tok;
    if (from_end) {
      std::size_t e = s.size();
      while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
      }
      std::size_t b = e;
      while (b > 0 && (ident_char(s[b - 1]) || s[b - 1] == '.' ||
                       ((s[b - 1] == '-' || s[b - 1] == '+') && b > 1 &&
                        (s[b - 2] == 'e' || s[b - 2] == 'E')))) {
        --b;
      }
      tok = s.substr(b, e - b);
    } else {
      std::size_t b = 0;
      while (b < s.size() &&
             std::isspace(static_cast<unsigned char>(s[b])) != 0) {
        ++b;
      }
      std::size_t e = b;
      while (e < s.size() && (ident_char(s[e]) || s[e] == '.' ||
                              ((s[e] == '-' || s[e] == '+') && e > b &&
                               (s[e - 1] == 'e' || s[e - 1] == 'E')))) {
        ++e;
      }
      tok = s.substr(b, e - b);
    }
    if (tok.empty() ||
        std::isdigit(static_cast<unsigned char>(tok[0])) == 0) {
      return false;
    }
    // Digits with a '.' or an exponent → floating literal.
    const bool has_dot = tok.find('.') != std::string::npos;
    const bool has_exp = tok.find('e') != std::string::npos ||
                         tok.find('E') != std::string::npos ||
                         tok.find('p') != std::string::npos;
    const bool hex = tok.size() > 1 && (tok[1] == 'x' || tok[1] == 'X');
    return has_dot || (has_exp && !hex) || (hex && tok.find('p') != std::string::npos);
  }

  std::string relative_path(const fs::path& path) const {
    std::error_code ec;
    if (!root_.empty()) {
      const fs::path rel = fs::relative(path, root_, ec);
      if (!ec && !rel.empty() && rel.native()[0] != '.') {
        return rel.generic_string();
      }
    }
    return path.generic_string();
  }

  std::string root_;
  bool io_error_ = false;
};

void collect_files(const fs::path& p, std::vector<fs::path>& out) {
  if (fs::is_directory(p)) {
    std::vector<fs::path> found;
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
        found.push_back(entry.path());
      }
    }
    std::sort(found.begin(), found.end());
    out.insert(out.end(), found.begin(), found.end());
  } else {
    out.push_back(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const char* r : kRuleNames) std::cout << r << "\n";
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "nclint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = std::string(arg.substr(7));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "nclint: unknown flag " << arg << "\n";
      return 2;
    } else {
      if (!fs::exists(arg)) {
        std::cerr << "nclint: no such path " << arg << "\n";
        return 2;
      }
      collect_files(fs::path(arg), inputs);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: nclint [--root <dir>] [--list-rules] "
                 "<file-or-dir>...\n";
    return 2;
  }

  Linter linter(root);
  std::vector<Diagnostic> diags;
  for (const auto& f : inputs) linter.lint_file(f, diags);
  if (linter.io_error()) return 2;

  std::sort(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const auto& d : diags) {
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  }
  if (!diags.empty()) {
    std::cout << "nclint: " << diags.size() << " violation"
              << (diags.size() == 1 ? "" : "s") << " in " << inputs.size()
              << " files\n";
    return 1;
  }
  return 0;
}
