// Bursty evolution of blogspace — the paper's temporal motivation [14]:
// significant events in an evolving link graph appear as *dense subgraphs*
// emerging over time. This example simulates a sequence of graph snapshots
// in which a community of blogs gradually links up ("an event building"),
// runs DistNearClique on every snapshot with boosting (lambda = 3), and
// shows the discovered near-clique growing as the event crystallizes.
//
//   ./blog_burst [--n=250] [--event=45] [--steps=6] [--seed=5]

#include <algorithm>
#include <cstdio>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const nc::Args args(argc, argv);
  const auto n = static_cast<nc::NodeId>(args.get_int("n", 250));
  const auto event = static_cast<nc::NodeId>(args.get_int("event", 45));
  const auto steps = static_cast<unsigned>(args.get_int("steps", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  std::printf("blogspace: n=%u, event community of %u blogs, %u snapshots\n",
              n, event, steps);
  std::printf("%-6s %-14s %-12s %-10s %-8s\n", "t", "event_density",
              "found_size", "density", "overlap");

  // Snapshot t: background blog links (persistent across time — same seed)
  // plus the first t/steps fraction of the event community's internal links,
  // via the registered "blog_snapshot" scenario family.
  for (unsigned t = 0; t <= steps; ++t) {
    const auto inst = nc::make_scenario("blog_snapshot",
                                        nc::ScenarioParams()
                                            .with("n", n)
                                            .with("event", event)
                                            .with("step", t)
                                            .with("steps", steps),
                                        seed);
    const auto& g = inst.graph;
    const auto& community = inst.planted;
    const double event_density = nc::set_density(g, community);

    // Boosting is an algorithm parameter (versions/window) behind the same
    // registry entry the plain runs use.
    const auto result = nc::run_algorithm(g, "dist_near_clique",
                                          nc::AlgoParams()
                                              .with("eps", 0.2)
                                              .with("pn", 9.0)
                                              .with("versions", 3)
                                              .with("window", 4'000'000)
                                              .with("max_rounds", 64'000'000),
                                          seed + t);

    const auto found = result.largest_cluster();
    std::size_t overlap = 0;
    for (const auto v : found) {
      if (std::binary_search(community.begin(), community.end(), v)) {
        ++overlap;
      }
    }
    std::printf("%-6u %-14.3f %-12zu %-10.3f %zu/%u\n", t, event_density,
                found.size(), found.empty() ? 0.0 : nc::set_density(g, found),
                overlap, event);
  }
  std::printf(
      "\nThe discovered near-clique emerges as the event's density crosses "
      "the detection threshold — the temporal signature of [14].\n");
  return 0;
}
