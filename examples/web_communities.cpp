// Web-community discovery — the paper's search-engine motivation.
//
// PageRank-style link analysis is "heavily influenced by tightly knit
// communities" [15]; identifying them means finding large near-cliques in a
// power-law web graph. This example builds a Chung-Lu web graph with a
// hidden near-clique community planted among the *low-degree* tail (so
// degree heuristics cannot see it), runs DistNearClique, and compares what
// it recovers against centralized peeling — which, drawn to globally dense
// regions, often reports the high-degree core instead.
//
//   ./web_communities [--n=400] [--community=50] [--eps=0.2] [--seed=3]

#include <algorithm>
#include <cstdio>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"

namespace {

std::size_t overlap_with(const std::vector<nc::NodeId>& sorted_planted,
                         const std::vector<nc::NodeId>& found) {
  std::size_t overlap = 0;
  for (const auto v : found) {
    if (std::binary_search(sorted_planted.begin(), sorted_planted.end(), v)) {
      ++overlap;
    }
  }
  return overlap;
}

}  // namespace

int main(int argc, char** argv) {
  const nc::Args args(argc, argv);
  const auto n = static_cast<nc::NodeId>(args.get_int("n", 400));
  const auto community = static_cast<nc::NodeId>(args.get_int("community", 50));
  const double eps = args.get_double("eps", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  const auto inst = nc::make_scenario("power_law_web",
                                      nc::ScenarioParams()
                                          .with("n", n)
                                          .with("gamma", 2.5)
                                          .with("avg_deg", 8.0)
                                          .with("community", community)
                                          .with("eps_missing", eps * eps * eps),
                                      seed);
  std::printf("web graph: n=%u, m=%zu, hidden community of %zu pages "
              "(density %.3f)\n",
              inst.graph.n(), inst.graph.m(), inst.planted.size(),
              nc::set_density(inst.graph, inst.planted));

  // Distributed discovery: every page is a processor, links are edges.
  // Both algorithms below resolve through the same AlgorithmRegistry the
  // benches and the nearclique CLI use.
  const auto result = nc::run_algorithm(
      inst.graph, "dist_near_clique",
      nc::AlgoParams().with("eps", eps).with("pn", 10.0), seed);
  const auto found = result.largest_cluster();
  std::printf("\nDistNearClique (%llu rounds, max %llu-bit messages):\n",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(result.stats.max_message_bits));
  std::printf("  community found: %zu nodes, density %.3f, overlap %zu/%zu\n",
              found.size(),
              found.empty() ? 0.0 : nc::set_density(inst.graph, found),
              overlap_with(inst.planted, found), inst.planted.size());

  // Centralized comparison: greedy peeling needs the whole graph in one
  // place and O(m) sequential work.
  const auto peeled =
      nc::run_algorithm(inst.graph, "peeling",
                        nc::AlgoParams().with("eps", eps), seed)
          .largest_cluster();
  std::printf("\ncentralized peeling:\n");
  std::printf("  largest %.2f-near clique: %zu nodes, overlap %zu/%zu\n", eps,
              peeled.size(), overlap_with(inst.planted, peeled),
              inst.planted.size());
  return 0;
}
