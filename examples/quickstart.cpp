// Quickstart: build any registered scenario, run Algorithm DistNearClique on
// the simulated CONGEST network, and print what it found.
//
//   ./quickstart [--scenario=planted_near_clique] [--params=k1=v1,k2=v2]
//                [--seed=1] [--eps=0.2] [--pn=9]
//                [--dot=out.dot]   (Graphviz export of the result)
//   ./quickstart --list            (catalogue of scenario families)
//
// Every instance family in the ScenarioRegistry can be run without
// recompiling, e.g.:
//
//   ./quickstart --scenario=web --params=n=400,community=60 --seed=7
//   ./quickstart --scenario=erdos_renyi --params=n=500,p=0.15

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "graph/dot.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const nc::Args args(argc, argv);
  if (args.has("list")) {
    std::printf("registered scenario families:\n%s",
                nc::describe_families(nc::ScenarioRegistry::global()).c_str());
    return 0;
  }
  // The pre-registry flags were --n/--clique/--pn; reject the removed ones
  // loudly instead of silently running the default instance.
  for (const auto* legacy : {"n", "clique"}) {
    if (args.has(legacy)) {
      std::fprintf(stderr,
                   "error: --%s was replaced by --params=%s=...; see --list\n",
                   legacy, std::string(legacy) == "clique" ? "clique_size"
                                                           : legacy);
      return 2;
    }
  }
  const auto scenario = args.get("scenario", "planted_near_clique");
  const auto params = args.get("params", "");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double eps = args.get_double("eps", 0.2);
  const double pn = args.get_double("pn", 9.0);

  // 1. Resolve the instance through the scenario registry: family name +
  //    typed parameter overrides + seed. --list shows what is available.
  const nc::Instance instance = [&]() -> nc::Instance {
    try {
      return nc::ScenarioRegistry::global().make(
          nc::parse_scenario_spec(scenario, params, seed));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n(run with --list for the catalogue)\n",
                   e.what());
      std::exit(2);
    }
  }();
  const auto n = instance.graph.n();
  std::printf("scenario %s (seed %llu): n=%u, m=%zu, planted=%zu",
              scenario.c_str(), static_cast<unsigned long long>(seed), n,
              instance.graph.m(), instance.planted.size());
  if (!instance.planted.empty()) {
    std::printf(", density(planted)=%.4f",
                nc::set_density(instance.graph, instance.planted));
  }
  std::printf("\n");

  // 2. Resolve the algorithm through the algorithm registry (the symmetric
  //    half of step 1) and run it. Every node runs the same protocol; the
  //    simulator enforces O(log n)-bit messages per edge per round and
  //    reports the traffic. `nearclique run` exposes the same pair of
  //    lookups with every registered algorithm.
  const auto result = nc::run_algorithm(
      instance.graph, "dist_near_clique",
      nc::AlgoParams().with("eps", eps).with("pn", pn), seed);

  std::printf("execution: %s\n", result.stats.summary().c_str());

  // 3. Inspect the output labels.
  const auto clusters = result.clusters();
  std::printf("near-cliques found: %zu\n", clusters.size());
  for (const auto& [label, members] : clusters) {
    std::size_t overlap = 0;
    for (const auto v : members) {
      if (std::binary_search(instance.planted.begin(), instance.planted.end(),
                             v)) {
        ++overlap;
      }
    }
    std::printf(
        "  label (root=%u, version=%u): %zu nodes, density %.4f, "
        "%zu/%zu of planted\n",
        nc::label_root(label), nc::label_version(label), members.size(),
        nc::set_density(instance.graph, members), overlap,
        instance.planted.size());
  }
  if (args.has("dot")) {
    const auto path = args.get("dot");
    std::ofstream out(path);
    out << nc::to_dot(instance.graph, clusters);
    std::printf("wrote %s (render with: dot -Tsvg %s)\n", path.c_str(),
                path.c_str());
  }
  if (clusters.empty()) {
    std::printf(
        "  none — the algorithm succeeds with constant probability; try "
        "another --seed or a larger --pn\n");
  }
  return 0;
}
