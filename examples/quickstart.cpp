// Quickstart: plant a near-clique, run Algorithm DistNearClique on the
// simulated CONGEST network, and print what it found.
//
//   ./quickstart [--n=200] [--clique=80] [--eps=0.2] [--pn=9] [--seed=1]
//                [--dot=out.dot]   (Graphviz export of the result)

#include <cstdio>
#include <fstream>

#include "core/driver.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const nc::Args args(argc, argv);
  const auto n = static_cast<nc::NodeId>(args.get_int("n", 200));
  const auto clique = static_cast<nc::NodeId>(args.get_int("clique", 80));
  const double eps = args.get_double("eps", 0.2);
  const double pn = args.get_double("pn", 9.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. Build an instance: a near-clique D (missing an eps^3 fraction of its
  //    pairs) planted in Erdos-Renyi background noise, IDs shuffled.
  nc::Rng rng(seed);
  nc::PlantedNearCliqueParams params;
  params.n = n;
  params.clique_size = clique;
  params.eps_missing = eps * eps * eps;
  params.background_p = 0.08;
  params.halo_p = 0.25;
  const auto instance = nc::planted_near_clique(params, rng);
  std::printf("instance: n=%u, m=%zu, planted |D|=%zu, density(D)=%.4f\n",
              instance.graph.n(), instance.graph.m(), instance.planted.size(),
              nc::set_density(instance.graph, instance.planted));

  // 2. Configure and run the distributed algorithm. Every node runs the same
  //    protocol; the simulator enforces O(log n)-bit messages per edge per
  //    round and reports the traffic.
  nc::DriverConfig config;
  config.proto.eps = eps;
  config.proto.p = pn / static_cast<double>(n);
  config.net.seed = seed;
  config.net.max_rounds = 32'000'000;
  const auto result = nc::run_dist_near_clique(instance.graph, config);

  std::printf("execution: %s\n", result.stats.summary().c_str());

  // 3. Inspect the output labels.
  const auto clusters = result.clusters();
  std::printf("near-cliques found: %zu\n", clusters.size());
  for (const auto& [label, members] : clusters) {
    std::size_t overlap = 0;
    for (const auto v : members) {
      if (std::binary_search(instance.planted.begin(), instance.planted.end(),
                             v)) {
        ++overlap;
      }
    }
    std::printf(
        "  label (root=%u, version=%u): %zu nodes, density %.4f, "
        "%zu/%zu of planted D\n",
        nc::label_root(label), nc::label_version(label), members.size(),
        nc::set_density(instance.graph, members), overlap,
        instance.planted.size());
  }
  if (args.has("dot")) {
    const auto path = args.get("dot");
    std::ofstream out(path);
    out << nc::to_dot(instance.graph, clusters);
    std::printf("wrote %s (render with: dot -Tsvg %s)\n", path.c_str(),
                path.c_str());
  }
  if (clusters.empty()) {
    std::printf(
        "  none — the algorithm succeeds with constant probability; try "
        "another --seed or a larger --pn\n");
  }
  return 0;
}
