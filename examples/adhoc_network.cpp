// Ad-hoc radio network clustering — the paper's low-level networking
// motivation ([4], [12]): dense subgraphs of the communication graph mark
// radio conflict zones and natural clusters for backbone formation.
//
// This example drops nodes uniformly in the unit square (unit-disk
// connectivity), adds one congested hot-spot (a dense cluster of devices in
// a small area), and uses DistNearClique to detect it in O(1) rounds with
// CONGEST messages — exactly the regime where collecting the topology at a
// sink would be prohibitive.
//
//   ./adhoc_network [--n=300] [--radius=0.12] [--hotspot=40] [--seed=7]

#include <cstdio>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const nc::Args args(argc, argv);
  const auto n = static_cast<nc::NodeId>(args.get_int("n", 300));
  const double radius = args.get_double("radius", 0.12);
  const auto hotspot = static_cast<nc::NodeId>(args.get_int("hotspot", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // Geometric background + a hot-spot: the last `hotspot` nodes also form a
  // clique (devices packed within mutual radio range). The composite is a
  // registered scenario family, so benches and the quickstart CLI can run
  // the same workload.
  const auto inst = nc::make_scenario("adhoc_hotspot",
                                      nc::ScenarioParams()
                                          .with("n", n)
                                          .with("radius", radius)
                                          .with("hotspot", hotspot),
                                      seed);

  std::printf("ad-hoc network: n=%u, m=%zu, hot-spot of %zu devices\n",
              inst.graph.n(), inst.graph.m(), inst.planted.size());
  double avg_deg = 0;
  for (nc::NodeId v = 0; v < inst.graph.n(); ++v) {
    avg_deg += static_cast<double>(inst.graph.degree(v));
  }
  std::printf("average degree: %.1f\n", avg_deg / inst.graph.n());

  // Same registry resolution as `nearclique run --algo=dist_near_clique`.
  const auto result = nc::run_algorithm(
      inst.graph, "dist_near_clique",
      nc::AlgoParams().with("eps", 0.15).with("pn", 9.0), seed);

  std::printf("\nDistNearClique: %s\n", result.stats.summary().c_str());
  for (const auto& [label, members] : result.clusters()) {
    std::size_t hits = 0;
    for (const auto v : members) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++hits;
      }
    }
    std::printf(
        "  cluster root=%u: %zu devices, density %.3f (%zu in hot-spot)\n",
        nc::label_root(label), members.size(),
        nc::set_density(inst.graph, members), hits);
  }
  if (result.clusters().empty()) {
    std::printf("  no cluster this run (constant success probability; "
                "retry with another --seed)\n");
  }
  return 0;
}
