// E1 — Theorem 2.1 / 5.7 (the paper's main result).
//
// Premise: G contains an eps^3-near clique D with |D| >= delta * n.
// Prediction: with probability Omega(1), DistNearClique outputs a
// (1/(1-13/2 eps)) * eps/delta-near clique of size >= (1-13/2 eps)|D| -
// eps^{-2}, within O(2^{2pn}) rounds and O(log n)-bit messages.
//
// This bench sweeps (eps, delta) through the declarative sweep runner
// (scenario registry x algorithm registry; see src/expt/README.md): each
// case is a one-point SweepSpec whose "eps" axis feeds both the planted
// instance and the algorithm, with the named theorem57 / effective success
// predicates. The paper claims Omega(1) success — the shape to verify is a
// success rate bounded away from 0 across the grid, output size tracking
// (1-O(eps))|D| and density above the bound.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "expt/report.hpp"
#include "expt/sweep.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E1: Theorem 5.7 — planted eps^3-near clique, n=200",
      [] {
        std::vector<std::string> h{"eps", "delta", "pred_min_size",
                                   "pred_max_eps", "effective"};
        for (const auto& c : stats_headers()) h.push_back(c);
        return h;
      }()};
  return s;
}

void BM_Theorem57(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  const double delta = static_cast<double>(state.range(1)) / 100.0;
  const NodeId n = 200;

  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams()
                             .with("n", n)
                             .with("background_p", 0.08)
                             .with("halo_p", 0.25);
  spec.algorithms = {{"dist_near_clique",
                      AlgoParams()
                          .with("pn", 10.0)  // pn = 10 (constant)
                          .with("max_rounds", 4'000'000)}};
  spec.axes = {{SweepAxis::Target::kBoth, "eps", {eps}},
               {SweepAxis::Target::kScenario, "delta", {delta}}};
  spec.trials = 10;
  spec.seed_base = 0xe1;
  spec.success.kind = SuccessSpec::Kind::kTheorem57;
  // Secondary, non-vacuous predicate for the table: "effective discovery" =
  // at least 2/3 of D recovered at density >= 1 - 2 eps (the theorem's
  // constants are asymptotic; at n=200 the -eps^{-2} size term swallows the
  // size bound, so we report both).
  spec.success2.kind = SuccessSpec::Kind::kEffective;

  TrialStats stats;
  for (auto _ : state) {
    stats = run_sweep(spec).at(0).stats;
  }
  state.counters["success_rate"] = stats.success_rate();
  state.counters["out_density"] = stats.out_density.mean();
  state.counters["size_ratio"] = stats.size_ratio.mean();
  state.counters["rounds"] = stats.rounds.mean();

  const auto bounds = theorem57_bounds(
      eps, delta, static_cast<std::size_t>(delta * n + 0.5));
  std::vector<std::string> row{Table::num(eps, 2), Table::num(delta, 2),
                               Table::num(bounds.min_size, 1),
                               Table::num(bounds.max_eps_out, 3),
                               Table::num(stats.success2_rate(), 2)};
  append_stats_cells(row, stats);
  sink().add_row(std::move(row));
}

BENCHMARK(BM_Theorem57)
    ->ArgsProduct({{10, 15, 20, 25}, {30, 50}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
