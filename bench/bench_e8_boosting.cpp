// E8 — Section 4.1, boosting wrapper.
//
// Prediction: running lambda independent sampling+exploration versions with
// a single decision stage drives the failure probability from (1-r) to
// (1-r)^lambda (i.e. to any target q with lambda = log_{1-r} q), at a cost
// of a factor-lambda in running time. Shape to verify: success rate rises
// with lambda toward 1 tracking 1-(1-r)^lambda, and the measured rounds
// scale roughly linearly in lambda (sequential windows).
//
// Boosting is just the "versions" parameter of the registered
// dist_near_clique algorithm, so each case is a one-point SweepSpec with a
// versions axis.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "expt/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace nc;

double g_single_rate = 0.0;  // measured r for lambda = 1

bench::TableSink& sink() {
  static bench::TableSink s{
      "E8: boosting — success vs lambda at marginal p (n=150, pn=6)",
      {"lambda", "predicted_1-(1-r)^l", "measured_success", "95% CI",
       "mean_rounds", "rounds_ratio_vs_l1"}};
  return s;
}

double g_lambda1_rounds = 0.0;

void BM_Boosting(benchmark::State& state) {
  const auto lambda = static_cast<std::uint16_t>(state.range(0));
  const NodeId n = 150;
  const double eps = 0.2;
  const double delta = 0.4;

  SweepSpec spec;
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams()
                             .with("n", n)
                             .with("delta", delta)
                             .with("eps", eps)
                             .with("background_p", 0.08)
                             .with("halo_p", 0.25);
  spec.algorithms = {{"dist_near_clique",
                      AlgoParams()
                          .with("eps", eps)
                          .with("pn", 6.0)  // marginal: fails often
                          .with("window", 400'000)
                          .with("max_rounds", 16'000'000)}};
  spec.axes = {{SweepAxis::Target::kAlgorithm, "versions",
                {static_cast<double>(lambda)}}};
  spec.trials = 12;
  spec.seed_base = 0xe8;
  spec.success.kind = SuccessSpec::Kind::kTheorem57;

  TrialStats stats;
  for (auto _ : state) {
    stats = run_sweep(spec).at(0).stats;
  }
  if (lambda == 1) {
    g_single_rate = stats.success_rate();
    g_lambda1_rounds = stats.rounds.mean();
  }
  const double predicted =
      1.0 - std::pow(1.0 - g_single_rate, static_cast<double>(lambda));
  state.counters["success_rate"] = stats.success_rate();
  state.counters["predicted"] = predicted;

  const auto ci = stats.success_interval();
  sink().add_row(
      {Table::num(static_cast<std::uint64_t>(lambda)),
       Table::num(predicted, 2), Table::num(stats.success_rate(), 2),
       "[" + Table::num(ci.lo, 2) + "," + Table::num(ci.hi, 2) + "]",
       Table::num(stats.rounds.mean(), 0),
       Table::num(g_lambda1_rounds > 0
                      ? stats.rounds.mean() / g_lambda1_rounds
                      : 0.0,
                  2)});
}

// Lambda must run in increasing order so the lambda=1 baseline is measured
// first; google-benchmark preserves registration order.
BENCHMARK(BM_Boosting)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
