// E9 — CONGEST compliance: messages of O(log n) bits, independent of eps, p.
//
// Theorem 2.1 stresses "the message length is a function of n and is
// independent of eps, delta". Shape to verify: the measured maximum message
// size (i) stays within B = 8 * ceil(log2(n+1)) bits, (ii) grows only
// logarithmically in n, and (iii) is identical across eps and p settings on
// the same n.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "util/bitio.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E9: message size — max bits per message vs n (B = 8*ceil(log2(n+1)))",
      {"n", "eps", "pn", "B_bits", "max_msg_bits", "within_B",
       "total_Mbits"}};
  return s;
}

void BM_MessageBits(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  const double pn = static_cast<double>(state.range(2));

  RunningStat max_bits, total_bits;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = make_scenario("theorem",
                                    ScenarioParams()
                                        .with("n", n)
                                        .with("delta", 0.5)
                                        .with("eps", eps)
                                        .with("background_p", 0.08)
                                        .with("halo_p", 0.25),
                                    seed);
    DriverConfig cfg;
    cfg.proto.eps = eps;
    cfg.proto.p = pn / static_cast<double>(n);
    cfg.net.seed = seed;
    cfg.net.max_rounds = 16'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    if (res.aborted()) continue;
    max_bits.add(static_cast<double>(res.stats.max_message_bits));
    total_bits.add(static_cast<double>(res.stats.bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_bits);
  }
  const double budget = 8.0 * id_width(n);
  state.counters["max_msg_bits"] = max_bits.max();
  state.counters["budget_bits"] = budget;

  sink().add_row({Table::num(static_cast<std::uint64_t>(n)),
                  Table::num(eps, 2), Table::num(pn, 0),
                  Table::num(budget, 0), Table::num(max_bits.max(), 0),
                  max_bits.max() <= budget ? "yes" : "NO",
                  Table::num(total_bits.mean() / 1e6, 2)});
}

BENCHMARK(BM_MessageBits)
    ->Args({64, 20, 8})
    ->Args({128, 20, 8})
    ->Args({256, 20, 8})
    ->Args({512, 20, 8})
    ->Args({1024, 20, 8})
    // eps/p independence on fixed n:
    ->Args({256, 10, 8})
    ->Args({256, 30, 8})
    ->Args({256, 20, 5})
    ->Args({256, 20, 11})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
