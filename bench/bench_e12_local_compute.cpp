// E12 — Section 5.3 remark: local computation and the Step 4f estimate.
//
// Except for Step 4f, each node does poly(|S|) local work per round; in
// Step 4f nodes inspect all their neighbours, which the paper proposes to
// reduce by sampling neighbours and *estimating* T-membership. Prediction:
// the sampled variant cuts local inspection work roughly by the sampling
// ratio while only mildly degrading output quality. Shape to verify: local
// ops fall monotonically with the sample cap; recall degrades gracefully.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E12: Step 4f estimate mode — local work vs quality "
      "(n=200, planted 80-clique, means over 8 seeds)",
      {"4f_sample", "local_ops(M)", "ops_vs_exact", "size", "density",
       "recall"}};
  return s;
}

double g_exact_ops = 0.0;

void BM_LocalCompute(benchmark::State& state) {
  const auto sample = static_cast<std::uint32_t>(state.range(0));
  const NodeId n = 200;
  const double eps = 0.2;

  RunningStat ops, size, density, recall;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = make_scenario("theorem",
                                    ScenarioParams()
                                        .with("n", n)
                                        .with("delta", 0.4)
                                        .with("eps", eps)
                                        .with("background_p", 0.08)
                                        .with("halo_p", 0.25),
                                    seed);
    DriverConfig cfg;
    cfg.proto.eps = eps;
    cfg.proto.p = 9.0 / static_cast<double>(n);
    cfg.proto.sample_4f = sample;
    cfg.net.seed = seed;
    cfg.net.max_rounds = 16'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    if (res.aborted()) continue;
    ops.add(static_cast<double>(res.total_local_ops));
    const auto best = res.largest_cluster();
    size.add(static_cast<double>(best.size()));
    density.add(best.empty() ? 0.0 : set_density(inst.graph, best));
    std::size_t overlap = 0;
    for (const NodeId v : best) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++overlap;
      }
    }
    recall.add(static_cast<double>(overlap) /
               static_cast<double>(inst.planted.size()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops);
  }
  if (sample == 0) g_exact_ops = ops.mean();
  state.counters["local_ops"] = ops.mean();
  state.counters["recall"] = recall.mean();

  sink().add_row(
      {sample == 0 ? "exact" : Table::num(static_cast<std::uint64_t>(sample)),
       Table::num(ops.mean() / 1e6, 2),
       Table::num(g_exact_ops > 0 ? ops.mean() / g_exact_ops : 1.0, 2),
       Table::num(size.mean(), 1), Table::num(density.mean(), 3),
       Table::num(recall.mean(), 2)});
}

// Register exact mode (0) first so the ratio column has its baseline.
BENCHMARK(BM_LocalCompute)
    ->Arg(0)
    ->Arg(64)
    ->Arg(32)
    ->Arg(16)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
