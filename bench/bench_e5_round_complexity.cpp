// E5 — Lemma 5.1: round complexity O(2^|S|).
//
// Prediction: the execution takes O(2^|S|) communication rounds, dominated
// by the subset-indexed convergecasts of the exploration stage. Shape to
// verify: log2(rounds) grows linearly in |S| with slope about 1 (each extra
// sampled node doubles the subset space), and the per-kind traffic breakdown
// attributes the bulk of the bits to the exploration-stage streams
// (kKBitvec/kKSum/kKCount), matching the appendix proof's accounting.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/oracle.hpp"
#include "core/protocol.hpp"
#include "expt/report.hpp"
#include "expt/scenario.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E5: Lemma 5.1 — rounds vs |S| (n=120, planted clique of 60; "
      "prediction: log2(rounds) linear in |S|, slope ~1)",
      {"target_pn", "mean_|S|", "mean_rounds", "log2_rounds",
       "explore_bits_share", "runs"}};
  return s;
}

std::vector<double> g_s_sizes;
std::vector<double> g_log_rounds;

void BM_RoundsVsSampleSize(benchmark::State& state) {
  const double pn = static_cast<double>(state.range(0));
  const NodeId n = 120;
  const std::size_t trials = 8;

  RunningStat s_size, rounds, log_rounds, explore_share;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t seed = 100 + t;
    const auto inst = make_scenario("theorem",
                                    ScenarioParams()
                                        .with("n", n)
                                        .with("delta", 0.5)
                                        .with("eps", 0.0)
                                        .with("background_p", 0.08)
                                        .with("halo_p", 0.25),
                                    seed);
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = pn / static_cast<double>(n);
    cfg.net.seed = seed;
    cfg.net.max_rounds = 64'000'000;
    const auto sample = oracle_sample(inst.graph, cfg.proto.p, seed, 1);
    const auto res = run_dist_near_clique(inst.graph, cfg);
    if (res.aborted()) continue;
    s_size.add(static_cast<double>(sample.size()));
    rounds.add(static_cast<double>(res.stats.rounds));
    log_rounds.add(std::log2(static_cast<double>(res.stats.rounds) + 1));
    const std::uint64_t explore_bits =
        bits_for_kinds(res.stats, {kKBitvec, kKSum, kKCount, kTSum});
    explore_share.add(static_cast<double>(explore_bits) /
                      static_cast<double>(res.stats.bits));
    g_s_sizes.push_back(static_cast<double>(sample.size()));
    g_log_rounds.push_back(std::log2(static_cast<double>(res.stats.rounds)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["mean_rounds"] = rounds.mean();
  state.counters["mean_S"] = s_size.mean();

  sink().add_row({Table::num(pn, 0), Table::num(s_size.mean(), 1),
                  Table::num(rounds.mean(), 0),
                  Table::num(log_rounds.mean(), 2),
                  Table::num(explore_share.mean(), 2),
                  Table::num(static_cast<std::uint64_t>(s_size.count()))});
}

BENCHMARK(BM_RoundsVsSampleSize)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Arg(14)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

bench::TableSink& fit_sink() {
  static bench::TableSink s{
      "E5 fit: least-squares slope of log2(rounds) against |S| "
      "(Lemma 5.1 predicts ~1.0)",
      {"slope", "points"}};
  return s;
}

void BM_SlopeFit(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_s_sizes);
  }
  const double slope = least_squares_slope(g_s_sizes, g_log_rounds);
  state.counters["slope"] = slope;
  fit_sink().add_row(
      {Table::num(slope, 3),
       Table::num(static_cast<std::uint64_t>(g_s_sizes.size()))});
}

BENCHMARK(BM_SlopeFit)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink(), &fit_sink()});
}
