// Fault-sweep benchmark: protocol quality and rounds-to-completion under
// injected adversity (src/runtime/faults.hpp) on large planted instances,
// written to BENCH_faults.json.
//
// Three curves per instance size, all on the streaming planted_near_clique
// family through the registry pair (the same end-to-end path as
// `nearclique sweep`):
//
//  - loss_curve: recovered density / planted recall vs iid loss rate, on a
//    log-spaced grid. The bare protocol has no transport-layer
//    retransmission — a lost message is an erasure in a logical stream —
//    so candidates die all-or-nothing and the curve measures how fast
//    recovery probability collapses, while the Section 4.1 deadline turns
//    missing traffic into bounded rounds-to-completion instead of a hang.
//    Each loss point also runs with the reliability service armed
//    (src/runtime/reliability.hpp): rel_mode=1 (per-stream ARQ) on the
//    full grid and rel_mode=2 (windowed FEC) on a subset. The reliable
//    rows quantify where the cliff moves and what the protection costs
//    (bits, messages_retransmitted, acks_sent, fec_repairs columns).
//  - delay_curve: jittered per-link delay only. Delays stretch
//    rounds-to-completion but must not change *what* is recovered (FIFO
//    per link is preserved by the engine), making this a correctness
//    trajectory as much as a performance one.
//  - churn_curve: a fraction of nodes crashes mid-protocol (with and
//    without recovery), silencing their links.
//
// Usage: bench_fault_sweep [--json PATH] [--full] [--threads N]
//   --json PATH  write the artifact to PATH (default BENCH_faults.json)
//   --full       add the 1M-node instance (slow: several protocol runs)
//   --threads N  delivery sharding (results are bit-identical at any N)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/json.hpp"

namespace nc {
namespace {

using Clock = std::chrono::steady_clock;

struct SizeConfig {
  NodeId n;
  NodeId clique_size;
  double edge_p;       ///< background and halo density (~avg degree 10)
  double pn;           ///< sampling rate scaled so E[|S ∩ clique|] ≈ 4.5
  double max_rounds;   ///< caps the Section 4.1 deadline (and lossy runs)
  std::size_t trials;
};

struct FaultConfig {
  const char* curve;
  double loss = 0;
  std::uint64_t delay_min = 0, delay_max = 0;
  double crash_frac = 0;
  std::uint64_t crash_round = 1, recover_after = 0;
  std::uint64_t rel_mode = 0;  ///< 0 off, 1 ARQ, 2 FEC (engine defaults)
};

struct Row {
  const char* curve;
  FaultConfig fault;
  NodeId n = 0;
  std::size_t m = 0;
  std::size_t trials = 0;
  double rounds_mean = 0;
  std::uint64_t messages = 0, bits = 0, lost = 0, delayed = 0,
                dropped_crash = 0, crashes = 0, recoveries = 0, retx = 0,
                acks = 0, fec_repairs = 0;
  double recovered_size = 0;     ///< mean |largest output cluster|
  double recovered_density = 0;  ///< mean density (0 when nothing found)
  double recall = 0;             ///< mean |output ∩ planted| / |planted|
  double success_rate = 0;       ///< fraction of trials recalling >= 2/3
  double run_seconds = 0;        ///< total wall clock across trials
};

Row run_config(const SizeConfig& size, const FaultConfig& fault,
               unsigned threads) {
  Row row;
  row.curve = fault.curve;
  row.fault = fault;
  row.trials = size.trials;

  AlgoParams params = AlgoParams()
                          .with("eps", 0.2)
                          .with("pn", size.pn)
                          .with("max_rounds", size.max_rounds)
                          .with("threads", threads)
                          .with("loss", fault.loss)
                          .with("delay_min", fault.delay_min)
                          .with("delay_max", fault.delay_max)
                          .with("crash_frac", fault.crash_frac)
                          .with("crash_round", fault.crash_round)
                          .with("recover_after", fault.recover_after)
                          .with("rel_mode", fault.rel_mode);

  for (std::size_t t = 0; t < size.trials; ++t) {
    const std::uint64_t seed = 3 + 7919 * t;
    const Instance inst = make_scenario(
        "planted_near_clique",
        ScenarioParams()
            .with("n", size.n)
            .with("clique_size", size.clique_size)
            .with("background_p", size.edge_p)
            .with("halo_p", size.edge_p),
        seed);
    row.n = inst.graph.n();
    row.m = inst.graph.m();

    const auto t0 = Clock::now();
    const AlgoResult res =
        run_algorithm(inst.graph, "dist_near_clique", params, seed);
    row.run_seconds += std::chrono::duration<double>(Clock::now() - t0).count();

    row.rounds_mean += static_cast<double>(res.stats.rounds) / size.trials;
    row.messages += res.stats.messages;
    row.bits += res.stats.bits;
    row.lost += res.stats.messages_lost;
    row.delayed += res.stats.messages_delayed;
    row.dropped_crash += res.stats.messages_dropped_crash;
    row.crashes += res.stats.crash_events;
    row.recoveries += res.stats.recover_events;
    row.retx += res.stats.messages_retransmitted;
    row.acks += res.stats.acks_sent;
    row.fec_repairs += res.stats.fec_repairs;

    const auto best = res.largest_cluster();
    std::size_t overlap = 0;
    for (const NodeId v : best) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++overlap;
      }
    }
    const double recall =
        inst.planted.empty()
            ? 0.0
            : static_cast<double>(overlap) / inst.planted.size();
    row.recovered_size += static_cast<double>(best.size()) / size.trials;
    row.recovered_density +=
        (best.empty() ? 0.0 : set_density(inst.graph, best)) / size.trials;
    row.recall += recall / size.trials;
    row.success_rate += (3 * overlap >= 2 * inst.planted.size() ? 1.0 : 0.0) /
                        size.trials;
  }
  return row;
}

void append_row_json(JsonWriter& w, const Row& row) {
  w.begin_object()
      .key("curve")
      .value(row.curve)
      .key("n")
      .value(static_cast<std::uint64_t>(row.n))
      .key("m")
      .value(static_cast<std::uint64_t>(row.m))
      .key("loss")
      .value(row.fault.loss)
      .key("delay_min")
      .value(row.fault.delay_min)
      .key("delay_max")
      .value(row.fault.delay_max)
      .key("crash_frac")
      .value(row.fault.crash_frac)
      .key("crash_round")
      .value(row.fault.crash_round)
      .key("recover_after")
      .value(row.fault.recover_after)
      .key("rel_mode")
      .value(row.fault.rel_mode)
      .key("trials")
      .value(static_cast<std::uint64_t>(row.trials))
      .key("rounds_mean")
      .value(row.rounds_mean)
      .key("messages")
      .value(row.messages)
      .key("bits")
      .value(row.bits)
      .key("messages_lost")
      .value(row.lost)
      .key("messages_delayed")
      .value(row.delayed)
      .key("messages_dropped_crash")
      .value(row.dropped_crash)
      .key("crash_events")
      .value(row.crashes)
      .key("recover_events")
      .value(row.recoveries)
      .key("messages_retransmitted")
      .value(row.retx)
      .key("acks_sent")
      .value(row.acks)
      .key("fec_repairs")
      .value(row.fec_repairs)
      .key("recovered_size")
      .value(row.recovered_size)
      .key("recovered_density")
      .value(row.recovered_density)
      .key("recall")
      .value(row.recall)
      .key("success_rate")
      .value(row.success_rate)
      .key("run_seconds")
      .value(row.run_seconds)
      .end_object();
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_faults.json";
  bool full = false;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_fault_sweep [--json PATH] [--full] "
                   "[--threads N]\nunknown argument: "
                << argv[i] << "\n";
      return 2;
    }
  }

  // 100k: avg degree ~10 background, 300-node planted clique, pn scaled so
  // the sampled set hits the clique ~4-5 times (the 1M demo's regime; the
  // paper's linear-size-clique assumption is out of reach at these n — see
  // docs/benchmarks.md). max_rounds caps the Section 4.1 deadline, which
  // lossy runs ride to by design.
  std::vector<nc::SizeConfig> sizes = {
      {100'000, 300, 1e-4, 1'500, 1'000'000, 3}};
  if (full) sizes.push_back({1'000'000, 1'000, 1e-5, 5'000, 8'000'000, 1});

  const std::vector<nc::FaultConfig> configs = {
      {"loss_curve", 0.0},
      {"loss_curve", 1e-6},
      {"loss_curve", 1e-5},
      {"loss_curve", 1e-4},
      {"loss_curve", 1e-3},
      {"loss_curve", 1e-2},
      // Same grid with per-stream ARQ armed (rel_mode=1, engine defaults):
      // where the bare curve collapses, the reliable one should hold, at a
      // bits/retx/acks overhead the columns quantify. The loss=0 row is the
      // pure overhead baseline (ACK bits, zero retransmissions).
      {"loss_curve", 0.0, 0, 0, 0.0, 1, 0, 1},
      {"loss_curve", 1e-6, 0, 0, 0.0, 1, 0, 1},
      {"loss_curve", 1e-5, 0, 0, 0.0, 1, 0, 1},
      {"loss_curve", 1e-4, 0, 0, 0.0, 1, 0, 1},
      {"loss_curve", 1e-3, 0, 0, 0.0, 1, 0, 1},
      {"loss_curve", 1e-2, 0, 0, 0.0, 1, 0, 1},
      // Windowed FEC (rel_mode=2) on a subset: overhead baseline plus the
      // two ends of the interesting loss range.
      {"loss_curve", 0.0, 0, 0, 0.0, 1, 0, 2},
      {"loss_curve", 1e-4, 0, 0, 0.0, 1, 0, 2},
      {"loss_curve", 1e-2, 0, 0, 0.0, 1, 0, 2},
      {"delay_curve", 0.0, 0, 2},
      {"delay_curve", 0.0, 1, 8},
      // Crash at round 25: mid-protocol at both instance sizes (the clean
      // runs finish in ~50-70 rounds), so churn actually interrupts the
      // gather/explore stages instead of landing after the decision.
      {"churn_curve", 0.0, 0, 0, 0.001, 25, 500},
      {"churn_curve", 0.0, 0, 0, 0.01, 25, 0},
  };

  std::vector<nc::Row> rows;
  for (const auto& size : sizes) {
    for (const auto& cfg : configs) {
      nc::Row row = nc::run_config(size, cfg, threads);
      std::cout << row.curve << " n=" << row.n << " loss=" << cfg.loss
                << " delay=[" << cfg.delay_min << "," << cfg.delay_max
                << "] crash=" << cfg.crash_frac << " rel=" << cfg.rel_mode
                << " -> size=" << row.recovered_size
                << " density=" << row.recovered_density
                << " recall=" << row.recall << " rounds=" << row.rounds_mean
                << " lost=" << row.lost << " retx=" << row.retx
                << " run=" << row.run_seconds << "s\n";
      rows.push_back(row);
    }
  }

  nc::JsonWriter w;
  w.begin_object()
      .key("bench")
      .value("fault_sweep")
      .key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .key("threads")
      .value(static_cast<std::uint64_t>(threads))
      .key("workload")
      .value("planted_near_clique")
      .key("algorithm")
      .value("dist_near_clique")
      .key("results")
      .begin_array();
  for (const auto& row : rows) nc::append_row_json(w, row);
  w.end_array().end_object();

  std::ofstream os(json_path);
  os << w.str() << "\n";
  if (!os.good()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
