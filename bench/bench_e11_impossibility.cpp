// E11 — Section 6: impossibility of outputting only the global maximum.
//
// The gadget: clique A (n/2), path P (n/4), clique B (n/4). Deleting A's
// edges flips which side hosts the largest near-clique, but no node of B
// can learn that in fewer than |P| rounds. Prediction: for any horizon
// r < |P|, B-side outputs are *identical* in the two scenarios (we measure
// the number of differing B-side labels: must be 0), so any algorithm that
// decided B's output by then is wrong in one scenario. After completion the
// algorithm legitimately outputs B as one member of its disjoint collection.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "core/driver.hpp"
#include "core/protocol.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "runtime/network.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E11: Section 6 impossibility — B-side output divergence between "
      "scenarios (n=96, |P|=24) after r rounds",
      {"rounds_r", "r_vs_|P|", "B_labels_differing", "as_predicted"}};
  return s;
}

std::vector<Label> labels_after(const Graph& g, std::uint64_t rounds,
                                std::uint64_t seed) {
  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.12;
  cfg.net.seed = seed;
  cfg.net.max_rounds = 32'000'000;
  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  Network net(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  net.run_rounds(rounds);
  std::vector<Label> out(g.n(), kBottom);
  for (NodeId v = 0; v < g.n(); ++v) {
    out[v] = static_cast<DistNearCliqueNode&>(net.node(v)).label();
  }
  return out;
}

void BM_Indistinguishability(benchmark::State& state) {
  const NodeId n = 96;
  const auto lay = barbell_layout(n);
  const auto with_a = make_scenario(
      "barbell", ScenarioParams().with("n", n).with("delete_a_edges", 0), 0);
  const auto without_a = make_scenario(
      "barbell", ScenarioParams().with("n", n).with("delete_a_edges", 1), 0);
  const auto r = static_cast<std::uint64_t>(state.range(0));

  std::size_t differing = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto la = labels_after(with_a.graph, r, seed);
    const auto lb = labels_after(without_a.graph, r, seed);
    for (NodeId v = lay.b_first; v < n; ++v) {
      if (la[v] != lb[v]) ++differing;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(differing);
  }
  state.counters["differing"] = static_cast<double>(differing);

  const bool below_path = r < lay.path_len;
  const bool ok = !below_path || differing == 0;
  sink().add_row({Table::num(r),
                  below_path ? "< |P| (must match)" : ">= |P| (may differ)",
                  Table::num(static_cast<std::uint64_t>(differing)),
                  ok ? "yes" : "NO"});
}

BENCHMARK(BM_Indistinguishability)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(23)
    ->Arg(64)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

bench::TableSink& full_sink() {
  static bench::TableSink s{
      "E11b: full run on the barbell — the disjoint-collection resolution",
      {"scenario", "clusters", "largest", "largest_density",
       "contains_B_side"}};
  return s;
}

void BM_FullRunResolution(benchmark::State& state) {
  const NodeId n = 96;
  const auto lay = barbell_layout(n);
  for (const bool delete_a : {false, true}) {
    const auto inst = make_scenario(
        "barbell",
        ScenarioParams().with("n", n).with("delete_a_edges", delete_a), 0);
    DriverConfig cfg;
    cfg.proto.eps = 0.2;
    cfg.proto.p = 0.12;
    cfg.net.seed = 7;
    cfg.net.max_rounds = 32'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    const auto clusters = res.clusters();
    const auto best = res.largest_cluster();
    bool has_b = false;
    for (const NodeId v : best) has_b |= v >= lay.b_first;
    full_sink().add_row(
        {delete_a ? "A edges deleted" : "A intact",
         Table::num(static_cast<std::uint64_t>(clusters.size())),
         Table::num(static_cast<std::uint64_t>(best.size())),
         Table::num(best.empty() ? 0.0 : set_density(inst.graph, best), 3),
         has_b ? "yes" : "no"});
  }
  for (auto _ : state) {
  }
}

BENCHMARK(BM_FullRunResolution)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink(), &full_sink()});
}
