// E6 — Lemma 5.2: Pr[|S| <= 2pn] >= 1 - e^{-pn/3}.
//
// The sampling stage draws |S| ~ Binomial(n, p). The lemma's Chernoff bound
// predicts the failure probability Pr[|S| > 2pn] decays at least like
// e^{-pn/3}. Shape to verify: the empirical failure rate is below the bound
// for every pn, and decays (roughly geometrically) as pn grows.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/oracle.hpp"
#include "graph/builder.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E6: Lemma 5.2 — sample-size concentration (n=4000, 4000 trials/row)",
      {"pn", "bound_e^{-pn/3}", "empirical_P[|S|>2pn]", "bound_holds",
       "mean_|S|"}};
  return s;
}

void BM_SampleConcentration(benchmark::State& state) {
  const double pn = static_cast<double>(state.range(0));
  const NodeId n = 4000;
  const std::size_t trials = 4000;
  const double p = pn / static_cast<double>(n);

  GraphBuilder builder(n);
  const Graph g = builder.build();  // topology is irrelevant to sampling

  std::size_t violations = 0;
  double total_size = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto s = oracle_sample(g, p, 0xe6000 + t, 1);
    total_size += static_cast<double>(s.size());
    if (static_cast<double>(s.size()) > 2.0 * pn) ++violations;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(violations);
  }
  const double empirical = static_cast<double>(violations) / trials;
  const double bound = std::exp(-pn / 3.0);
  state.counters["empirical"] = empirical;
  state.counters["bound"] = bound;

  sink().add_row({Table::num(pn, 0), Table::num(bound, 4),
                  Table::num(empirical, 4),
                  empirical <= bound ? "yes" : "NO",
                  Table::num(total_size / trials, 1)});
}

BENCHMARK(BM_SampleConcentration)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(9)
    ->Arg(12)
    ->Arg(18)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
