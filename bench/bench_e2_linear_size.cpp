// E2 — Corollary 2.2: linear-size near-cliques in O(1) rounds.
//
// Premise: eps constant, D an eps^3-near clique with |D| = Theta(n)
// (delta = 1/2 here). Prediction: an O(eps)-near clique of size
// (1-O(eps))|D| is found with constant probability in O(1) rounds with
// O(log n)-bit messages. The shape to verify: as n grows with p*n held
// constant, the round count stays flat (constant), success probability
// stays bounded away from zero, and max message size grows only like log n.
//
// Each case is a one-point SweepSpec resolved through the scenario and
// algorithm registries (the "linear" family has no delta parameter, so the
// theorem57 predicate takes delta from the success spec).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "expt/report.hpp"
#include "expt/sweep.hpp"
#include "util/bitio.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E2: Corollary 2.2 — rounds stay O(1) as n grows (pn fixed = 9)",
      [] {
        std::vector<std::string> h{"n", "idw_bits"};
        for (const auto& c : stats_headers()) h.push_back(c);
        return h;
      }()};
  return s;
}

void BM_LinearSize(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const double eps = 0.2;

  SweepSpec spec;
  spec.scenario_family = "linear";
  spec.scenario_params = ScenarioParams().with("n", n).with("eps", eps);
  spec.algorithms = {{"dist_near_clique", AlgoParams()
                                              .with("eps", eps)
                                              .with("pn", 9.0)  // pn fixed
                                              .with("max_rounds", 4'000'000)}};
  spec.trials = 6;
  spec.seed_base = 0xe2;
  spec.success.kind = SuccessSpec::Kind::kTheorem57;
  spec.success.delta = 0.5;  // the family plants delta = 1/2

  TrialStats stats;
  for (auto _ : state) {
    stats = run_sweep(spec).at(0).stats;
  }
  state.counters["rounds"] = stats.rounds.mean();
  state.counters["success_rate"] = stats.success_rate();
  state.counters["max_msg_bits"] = stats.max_msg_bits.max();

  std::vector<std::string> row{Table::num(static_cast<std::uint64_t>(n)),
                               Table::num(static_cast<std::uint64_t>(
                                   id_width(n)))};
  append_stats_cells(row, stats);
  sink().add_row(std::move(row));
}

BENCHMARK(BM_LinearSize)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Arg(600)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
