// E7 — Lemma 5.3: every candidate T_eps(X) is an (n eps / t)-near clique.
//
// The lemma is unconditional: for any X and t = |T_eps(X)|, the set T_eps(X)
// misses at most an (n eps / t) fraction of its ordered pairs. We enumerate
// *every* candidate the exploration stage would produce (via the centralized
// oracle, which exposes all components' winners) across random and planted
// graphs and measure the worst margin. Shape to verify: zero violations,
// and the margin (bound - actual missing fraction) stays non-negative.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/oracle.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E7: Lemma 5.3 — all candidates T_eps(X) are (n*eps/t)-near cliques",
      {"family", "eps", "candidates", "violations", "min_margin",
       "mean_|T|"}};
  return s;
}

void run_family(const std::string& name, double eps,
                const std::function<Instance(std::uint64_t)>& make,
                benchmark::State& state) {
  std::size_t candidates = 0, violations = 0;
  double min_margin = 1.0;
  RunningStat t_sizes;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = make(seed);
    ProtocolParams proto;
    proto.eps = eps;
    proto.p = 8.0 / static_cast<double>(inst.graph.n());
    const auto orc = run_oracle(inst.graph, proto, seed);
    for (std::size_t i = 0; i < orc.candidates.size(); ++i) {
      const auto& rc = orc.candidates[i];
      if (!rc.live || orc.t_sets[i].size() < 2) continue;
      ++candidates;
      const auto& t_set = orc.t_sets[i];
      t_sizes.add(static_cast<double>(t_set.size()));
      const double t = static_cast<double>(t_set.size());
      const double bound =
          static_cast<double>(inst.graph.n()) * eps / t;
      const double missing = 1.0 - set_density(inst.graph, t_set);
      if (missing > bound + 1e-9) ++violations;
      min_margin = std::min(min_margin, bound - missing);
    }
  }
  state.counters["violations"] = static_cast<double>(violations);
  sink().add_row({name, Table::num(eps, 2),
                  Table::num(static_cast<std::uint64_t>(candidates)),
                  Table::num(static_cast<std::uint64_t>(violations)),
                  Table::num(min_margin, 4), Table::num(t_sizes.mean(), 1)});
}

void BM_PlantedFamily(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
  }
  run_family("planted", eps,
             [](std::uint64_t seed) {
               return make_scenario("theorem",
                                    ScenarioParams()
                                        .with("n", 150)
                                        .with("delta", 0.4)
                                        .with("eps", 0.2)
                                        .with("background_p", 0.1)
                                        .with("halo_p", 0.25),
                                    seed);
             },
             state);
}
BENCHMARK(BM_PlantedFamily)->Arg(10)->Arg(20)->Arg(30)->Iterations(1);

void BM_ErdosRenyiFamily(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
  }
  run_family("G(150,0.3)", eps,
             [](std::uint64_t seed) {
               return make_scenario(
                   "erdos_renyi",
                   ScenarioParams().with("n", 150).with("p", 0.3), seed);
             },
             state);
}
BENCHMARK(BM_ErdosRenyiFamily)->Arg(10)->Arg(20)->Iterations(1);

void BM_WebFamily(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
  }
  run_family("power-law web", eps,
             [](std::uint64_t seed) {
               return make_scenario("web",
                                    ScenarioParams()
                                        .with("n", 200)
                                        .with("community", 40)
                                        .with("eps", 0.2),
                                    seed);
             },
             state);
}
BENCHMARK(BM_WebFamily)->Arg(20)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
