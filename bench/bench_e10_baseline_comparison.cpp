// E10 — positioning against baselines (Section 1 related work, Section 3).
//
// One table: on planted near-clique instances, compare DistNearClique with
// (a) the Section 3 shingles algorithm (CONGEST, O(1) rounds),
// (b) the Section 3 neighbours-of-neighbours algorithm (LOCAL, exact but
//     unbounded messages and NP-hard local work),
// (c) centralized greedy peeling (densest-subgraph style),
// (d) the Abello et al. GRASP quasi-clique heuristic,
// (e) the GGR centralized approximate find (the construction the paper
//     distributes).
// Shape to verify: DistNearClique's quality approaches the centralized
// methods while keeping CONGEST-size messages; neighbours² wins on quality
// but loses by orders of magnitude on message size and local work; shingles
// loses on quality (it dilutes the clique with I1, as Claim 1 predicts).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "baselines/ggr_find.hpp"
#include "baselines/grasp.hpp"
#include "baselines/neighbors2.hpp"
#include "baselines/peeling.hpp"
#include "baselines/shingles.hpp"
#include "bench_common.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E10: baseline comparison — planted 0.008-near clique of 60 in n=150 "
      "(means over 8 seeds; cost = rounds for distributed, ops/queries for "
      "centralized)",
      {"algorithm", "model", "size", "density", "recall", "max_msg_bits",
       "cost"}};
  return s;
}

struct Row {
  RunningStat size, density, recall, max_bits, cost;
};

void add_measurement(Row& row, const Instance& inst,
                     const std::vector<NodeId>& found, double max_bits,
                     double cost) {
  row.size.add(static_cast<double>(found.size()));
  row.density.add(found.empty() ? 0.0 : set_density(inst.graph, found));
  std::size_t overlap = 0;
  for (const NodeId v : found) {
    if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
      ++overlap;
    }
  }
  row.recall.add(static_cast<double>(overlap) /
                 static_cast<double>(inst.planted.size()));
  row.max_bits.add(max_bits);
  row.cost.add(cost);
}

void emit(const std::string& name, const std::string& model, const Row& row) {
  sink().add_row({name, model, Table::num(row.size.mean(), 1),
                  Table::num(row.density.mean(), 3),
                  Table::num(row.recall.mean(), 2),
                  Table::num(row.max_bits.max(), 0),
                  Table::num(row.cost.mean(), 0)});
}

void BM_Comparison(benchmark::State& state) {
  const NodeId n = 150;
  const double eps = 0.2;
  Row dist, shingles, nn, peel, grasp, ggr;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = make_scenario("theorem",
                                    ScenarioParams()
                                        .with("n", n)
                                        .with("delta", 0.4)
                                        .with("eps", eps)
                                        .with("background_p", 0.08)
                                        .with("halo_p", 0.2),
                                    seed);

    {
      DriverConfig cfg;
      cfg.proto.eps = eps;
      cfg.proto.p = 9.0 / static_cast<double>(n);
      cfg.net.seed = seed;
      cfg.net.max_rounds = 16'000'000;
      const auto res = run_dist_near_clique(inst.graph, cfg);
      add_measurement(dist, inst, res.largest_cluster(),
                      static_cast<double>(res.stats.max_message_bits),
                      static_cast<double>(res.stats.rounds));
    }
    {
      ShinglesParams sp;
      sp.eps = eps;
      sp.min_size = 4;
      const auto res = run_shingles(inst.graph, sp, seed);
      add_measurement(shingles, inst, res.largest_cluster(),
                      static_cast<double>(res.stats.max_message_bits),
                      static_cast<double>(res.stats.rounds));
    }
    {
      const auto res = run_neighbors2(inst.graph, Neighbors2Params{}, seed);
      add_measurement(nn, inst, res.largest_cluster(),
                      static_cast<double>(res.stats.max_message_bits),
                      static_cast<double>(res.total_expansions));
    }
    {
      const auto found = largest_near_clique_by_peeling(inst.graph, eps);
      add_measurement(peel, inst, found, 0.0,
                      static_cast<double>(inst.graph.m()));
    }
    {
      GraspParams gp;
      gp.gamma = 1.0 - eps;
      gp.iterations = 24;
      Rng rng(seed);
      const auto found = grasp_quasi_clique(inst.graph, gp, rng);
      add_measurement(grasp, inst, found, 0.0,
                      24.0 * static_cast<double>(inst.graph.m()));
    }
    {
      Rng rng(seed);
      const auto res = ggr_approximate_find(inst.graph, eps, 9, rng);
      add_measurement(ggr, inst, res.found, 0.0,
                      static_cast<double>(res.pair_queries));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist);
  }
  state.counters["dist_recall"] = dist.recall.mean();
  state.counters["shingles_recall"] = shingles.recall.mean();

  emit("DistNearClique", "CONGEST", dist);
  emit("shingles (Sec 3)", "CONGEST", shingles);
  emit("neighbours^2 (Sec 3)", "LOCAL", nn);
  emit("greedy peeling", "central", peel);
  emit("GRASP quasi-clique [1]", "central", grasp);
  emit("GGR approximate find [10]", "central", ggr);
}

BENCHMARK(BM_Comparison)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
