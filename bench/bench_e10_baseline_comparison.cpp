// E10 — positioning against baselines (Section 1 related work, Section 3).
//
// One declarative sweep: on planted near-clique instances, compare every
// algorithm in the AlgorithmRegistry —
// (a) DistNearClique (CONGEST),
// (b) the Section 3 shingles algorithm (CONGEST, O(1) rounds),
// (c) the Section 3 neighbours-of-neighbours algorithm (LOCAL, exact but
//     unbounded messages and NP-hard local work),
// (d) centralized greedy peeling (densest-subgraph style),
// (e) the Abello et al. GRASP quasi-clique heuristic,
// (f) the GGR centralized approximate find (the construction the paper
//     distributes).
// All six resolve through the registry pair with shared sequential seeds,
// so per-trial instances are identical across algorithms. Shape to verify:
// DistNearClique's quality approaches the centralized methods while keeping
// CONGEST-size messages; neighbours² wins on quality but loses by orders of
// magnitude on message size and local work; shingles loses on quality (it
// dilutes the clique with I1, as Claim 1 predicts).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "expt/sweep.hpp"
#include "util/table.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E10: baseline comparison — planted 0.008-near clique of 60 in n=150 "
      "(means over 8 seeds; cost = rounds for distributed, ops/queries for "
      "centralized)",
      {"algorithm", "model", "size", "density", "recall", "max_msg_bits",
       "cost"}};
  return s;
}

void BM_Comparison(benchmark::State& state) {
  const NodeId n = 150;
  const double eps = 0.2;

  SweepSpec spec;
  spec.title = "E10 baseline comparison";
  spec.scenario_family = "theorem";
  spec.scenario_params = ScenarioParams()
                             .with("n", n)
                             .with("delta", 0.4)
                             .with("eps", eps)
                             .with("background_p", 0.08)
                             .with("halo_p", 0.2);
  spec.algorithms = {
      {"dist_near_clique", AlgoParams()
                               .with("eps", eps)
                               .with("pn", 9.0)
                               .with("max_rounds", 16'000'000)},
      {"shingles", AlgoParams().with("eps", eps).with("min_size", 4)},
      {"neighbors2", {}},
      {"peeling", AlgoParams().with("eps", eps)},
      {"grasp", AlgoParams().with("gamma", 1.0 - eps).with("iterations", 24)},
      {"ggr_find", AlgoParams().with("eps", eps).with("sample_size", 9)},
  };
  // Sequential seeds 1..8: every algorithm sees the same eight instances.
  spec.trials = 8;
  spec.seed_base = 1;
  spec.seeds = SeedSchedule::kSequential;

  std::vector<SweepRow> rows;
  for (auto _ : state) {
    rows = run_sweep(spec);
  }

  const std::map<std::string, std::string> display{
      {"dist_near_clique", "DistNearClique"},
      {"shingles", "shingles (Sec 3)"},
      {"neighbors2", "neighbours^2 (Sec 3)"},
      {"peeling", "greedy peeling"},
      {"grasp", "GRASP quasi-clique [1]"},
      {"ggr_find", "GGR approximate find [10]"},
  };
  for (const auto& row : rows) {
    if (row.algorithm == "dist_near_clique") {
      state.counters["dist_recall"] = row.stats.recall.mean();
    }
    if (row.algorithm == "shingles") {
      state.counters["shingles_recall"] = row.stats.recall.mean();
    }
    sink().add_row({display.at(row.algorithm), cost_model_name(row.model),
                    Table::num(row.stats.out_size.mean(), 1),
                    Table::num(row.stats.out_density.mean(), 3),
                    Table::num(row.stats.recall.mean(), 2),
                    Table::num(row.stats.max_msg_bits.max(), 0),
                    Table::num(row.headline_cost_mean(), 0)});
  }
}

BENCHMARK(BM_Comparison)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
