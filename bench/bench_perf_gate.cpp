// CI perf-regression gate: three pinned runtime workloads with committed
// rounds/sec floors. The gate FAILS (exit 1) if the best of three runs of
// any workload drops below its floor — catching order-of-magnitude hot
// path regressions (an accidental O(n) scan, a lost fast path) while being
// deliberately insensitive to machine speed:
//
//  - Floors carry large slack (>= 2x below the numbers a 2026 single-core
//    CI container measures, far more than the ~30% round-to-round noise we
//    see on shared runners), so an honest build on modest hardware passes.
//  - Best-of-three measures the machine's capability, not its worst
//    scheduling hiccup.
//
// Escape hatches when a runner is still slower than the slack allows (or
// a deliberate engine change moves the floors):
//  - --floor-scale=0.5         scale every floor at invocation time;
//  - NEARCLIQUE_PERF_GATE_FLOOR_SCALE=0.5 (environment) the same, for CI
//    configuration without editing the workflow command;
//  - -DNEARCLIQUE_PERF_GATE_FLOOR_SCALE=0.5 at compile time bakes a scale
//    into the binary (a vendor shipping to known-slow hardware).
// Precedence: flag > environment > compile definition.
//
// The pinned workloads mirror BENCH_runtime.json rows (bench_runtime_scale)
// so a floor failure can be cross-read against the committed artifact:
//  - sparse_idle n=10k: event-driven idle scheduling — per-round cost must
//    track the handful of busy links, not n or m.
//  - planted_protocol n=10k: DistNearClique end-to-end — the mixed
//    stage/deliver/wake + protocol load (avg degree ~4).
//  - broadcast_fanout n=4k: DistNearClique on an avg-degree ~50 graph —
//    the broadcast payload-dedup path; a lost dedup fast path shows up
//    here long before it moves the low-degree rows.
//
// A fourth check gates correctness, not throughput: the telemetry engine's
// observer-effect contract (recording on vs off must leave the fixed-seed
// RunStats bit-identical; src/runtime/telemetry.hpp). The floors double as
// the disabled-path cost gate — every floor workload runs with telemetry
// off, so a null-check that stopped being free would drop them.
//
// Usage: bench_perf_gate [--floor-scale=X] [--json PATH]

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/params.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "runtime/network.hpp"
#include "runtime/telemetry.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

#ifndef NEARCLIQUE_PERF_GATE_FLOOR_SCALE
#define NEARCLIQUE_PERF_GATE_FLOOR_SCALE 1.0
#endif

namespace nc {
namespace {

using Clock = std::chrono::steady_clock;

// Committed floors, in rounds/sec. Set from a fresh run on the 1-core
// container that regenerated BENCH_runtime.json for this change, then
// divided by >= 2x to absorb runner-to-runner spread; see the artifact for
// the measured numbers these derive from.
constexpr double kSparseIdleFloor = 70'000.0;      // measured ~156k r/s
constexpr double kPlantedProtoFloor = 180.0;       // measured ~410 r/s
constexpr double kBroadcastFanoutFloor = 140.0;    // measured ~314 r/s

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Graph ring_with_chords(NodeId n, unsigned chords_per_node, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph planted_clique_sparse(NodeId n, NodeId clique, unsigned chords_per_node,
                            unsigned halo_per_member, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  std::vector<NodeId> members;
  for (NodeId v = 0; v < clique; ++v) members.push_back(v);
  b.add_clique(members);
  for (const NodeId m : members) {
    for (unsigned h = 0; h < halo_per_member; ++h) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != m) b.add_edge(m, u);
    }
  }
  return b.build();
}

constexpr std::uint16_t kChatKind = 1;

class ChatterNode : public INode {
 public:
  ChatterNode(std::size_t partner_ni, std::size_t symbols)
      : partner_ni_(partner_ni), symbols_(symbols) {}

  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_one(StreamKey{kChatKind, 0, 0}, partner_ni_);
    for (std::size_t i = 0; i < symbols_; ++i) ch.put(i & 0xffu, 8);
    ch.close();
  }

  void on_round(NodeApi& api) override {
    InStream* in = api.find_in(partner_ni_, StreamKey{kChatKind, 0, 0});
    if (in == nullptr) return;
    while (in->available() > 0) checksum_ += in->pop();
    if (in->finished()) api.set_done();
  }

  std::uint64_t checksum_ = 0;

 private:
  std::size_t partner_ni_;
  std::size_t symbols_;
};

class SleeperNode : public INode {
 public:
  explicit SleeperNode(std::uint64_t horizon) : horizon_(horizon) {}
  void on_start(NodeApi& api) override { api.set_alarm(horizon_); }
  void on_round(NodeApi& api) override {
    if (api.round() >= horizon_) {
      api.set_done();
    } else {
      api.set_alarm(horizon_);
    }
  }

 private:
  std::uint64_t horizon_;
};

/// One timed run of the sparse_idle workload (bench_runtime_scale's
/// n=10k row); returns rounds/sec.
double run_sparse_idle() {
  const NodeId n = 10'000;
  const std::uint64_t target_rounds = 1'000;
  const unsigned pairs = 16;
  const Graph g = ring_with_chords(n, 3, /*seed=*/42);

  const unsigned idb = id_width(n);
  const std::size_t budget = 8u * idb;
  const std::size_t header = stream_header_bits(idb);
  const std::size_t per_round = (budget - header) / 8;
  const std::size_t symbols = per_round * target_rounds;
  const std::uint64_t horizon = target_rounds + 8;

  std::vector<NodeId> lo(n, kNoNode);
  for (unsigned i = 0; i < pairs; ++i) {
    const NodeId a = static_cast<NodeId>((static_cast<std::uint64_t>(i) + 1) *
                                         n / (pairs + 1));
    const NodeId b = (a + 1) % n;
    lo[a] = b;
    lo[b] = a;
  }

  NetConfig cfg;
  cfg.seed = 7;
  cfg.max_rounds = horizon + 16;
  Network net(g, cfg, [&](NodeId v) -> std::unique_ptr<INode> {
    if (lo[v] != kNoNode) {
      const auto nb = g.neighbors(v);
      std::size_t ni = 0;
      while (nb[ni] != lo[v]) ++ni;
      return std::make_unique<ChatterNode>(ni, symbols);
    }
    return std::make_unique<SleeperNode>(horizon);
  });

  const auto t0 = Clock::now();
  const RunStats stats = net.run();
  const double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(stats.rounds) / secs : 0;
}

/// One timed DistNearClique run on a planted_clique_sparse graph; returns
/// rounds/sec. chords_per_node=2 is the classic sparse planted_protocol
/// load; chords_per_node=24 (avg degree ~50) is the broadcast_fanout load
/// that exercises the stage-side payload dedup.
double run_protocol(NodeId n, unsigned chords_per_node) {
  const Graph g = planted_clique_sparse(n, 32, chords_per_node, 3, /*seed=*/11);

  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.05;
  cfg.proto.versions = 1;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 400'000;

  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  const auto t0 = Clock::now();
  Network net(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  const RunStats stats = net.run();
  const double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(stats.rounds) / secs : 0;
}

double run_planted_protocol() { return run_protocol(10'000, 2); }

double run_broadcast_fanout() { return run_protocol(4'000, 24); }

/// Telemetry gate: runs the protocol workload with telemetry off and with
/// every facet on (metrics + trace + probes into a live sink) and checks
/// the observer-effect contract at bench scale — bit-identical RunStats.
/// The recording cost is printed informationally; the disabled path's cost
/// is what the committed floors above gate (every floor workload runs with
/// the default all-off plan, so a hot-path telemetry branch that stopped
/// being free would drop those numbers).
bool run_telemetry_observer_gate() {
  const NodeId n = 4'000;
  const Graph g = planted_clique_sparse(n, 32, 2, 3, /*seed=*/11);

  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.05;
  cfg.proto.versions = 1;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 400'000;
  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);

  const auto run = [&](Telemetry* sink, double* secs) {
    NetConfig net_cfg = cfg.net;
    if (sink != nullptr) {
      net_cfg.telemetry =
          parse_telemetry_plan("tel_metrics=1,tel_trace=1,tel_probes=1");
      net_cfg.telemetry.sink = sink;
    }
    Network net(g, net_cfg, [&](NodeId) {
      return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
    });
    const auto t0 = Clock::now();
    const RunStats stats = net.run();
    *secs = seconds_since(t0);
    return stats;
  };

  double off_secs = 0, on_secs = 0;
  const RunStats off = run(nullptr, &off_secs);
  Telemetry sink;
  const RunStats on = run(&sink, &on_secs);

  const bool identical =
      off.rounds == on.rounds && off.messages == on.messages &&
      off.bits == on.bits && off.max_message_bits == on.max_message_bits &&
      off.bits_by_kind == on.bits_by_kind && off.stalled == on.stalled &&
      off.hit_round_limit == on.hit_round_limit;
  const bool captured =
      sink.metrics.samples() > 0 && !sink.spans.empty() &&
      !sink.probes.empty();
  const bool pass = identical && captured;
  std::cout << (pass ? "PASS " : "FAIL ")
            << "telemetry_observer_4k: RunStats "
            << (identical ? "bit-identical" : "DIVERGED")
            << " with recording on; capture "
            << (captured ? "non-empty" : "EMPTY") << "; recording cost "
            << (off_secs > 0 ? (on_secs / off_secs - 1.0) * 100.0 : 0.0)
            << "% wall-clock\n";
  return pass;
}

struct GateResult {
  std::string name;
  double best_rounds_per_sec = 0;
  double floor = 0;
  bool pass = false;
};

template <typename Fn>
GateResult gate(const std::string& name, double floor, double scale, Fn&& fn) {
  GateResult r;
  r.name = name;
  r.floor = floor * scale;
  for (int i = 0; i < 3; ++i) {
    r.best_rounds_per_sec = std::max(r.best_rounds_per_sec, fn());
  }
  r.pass = r.best_rounds_per_sec >= r.floor;
  std::cout << (r.pass ? "PASS " : "FAIL ") << name
            << ": best-of-3 rounds/sec = " << r.best_rounds_per_sec
            << " (floor " << r.floor << ")\n";
  return r;
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  double scale = NEARCLIQUE_PERF_GATE_FLOOR_SCALE;
  if (const char* env = std::getenv("NEARCLIQUE_PERF_GATE_FLOOR_SCALE")) {
    scale = std::atof(env);
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--floor-scale=", 14) == 0) {
      scale = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_perf_gate [--floor-scale=X] [--json PATH]\n"
                << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  if (scale <= 0) {
    std::cerr << "error: floor scale must be > 0, got " << scale << "\n";
    return 2;
  }
  std::cout << "perf gate: floor scale " << scale << "\n";

  std::vector<nc::GateResult> results;
  results.push_back(nc::gate("sparse_idle_10k", nc::kSparseIdleFloor, scale,
                             nc::run_sparse_idle));
  results.push_back(nc::gate("planted_protocol_10k", nc::kPlantedProtoFloor,
                             scale, nc::run_planted_protocol));
  results.push_back(nc::gate("broadcast_fanout_4k", nc::kBroadcastFanoutFloor,
                             scale, nc::run_broadcast_fanout));

  // Correctness gate rather than a throughput floor: telemetry recording
  // must not perturb the simulated execution.
  if (!nc::run_telemetry_observer_gate()) {
    std::cerr << "perf gate FAILED: telemetry recording changed the "
                 "fixed-seed RunStats (observer-effect contract)\n";
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream os(json_path);
    os << "{\n  \"bench\": \"perf_gate\",\n  \"floor_scale\": " << scale
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      os << "    {\"name\": \"" << r.name
         << "\", \"best_rounds_per_sec\": " << r.best_rounds_per_sec
         << ", \"floor\": " << r.floor << ", \"pass\": "
         << (r.pass ? "true" : "false") << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
  }

  for (const auto& r : results) {
    if (!r.pass) {
      std::cerr << "perf gate FAILED: " << r.name << " at "
                << r.best_rounds_per_sec << " rounds/sec is below the floor "
                << r.floor
                << ".\nIf this machine is genuinely slower than the slack "
                   "allows, rerun with --floor-scale=<x<1> or set "
                   "NEARCLIQUE_PERF_GATE_FLOOR_SCALE.\n";
      return 1;
    }
  }
  std::cout << "perf gate passed\n";
  return 0;
}
