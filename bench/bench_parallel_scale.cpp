// Sharded-engine scaling benchmark: rounds/sec and deliveries/sec at 1, 2,
// 4 and 8 delivery threads on 100k–1M-node workloads, written to
// BENCH_parallel.json. Two workloads bracket the engine:
//
//  - ring_chatter: every node streams to its ring successor, so every link
//    carries traffic every round — the maximally parallel delivery load
//    (pure stage/deliver/wake pipeline, no protocol logic).
//  - planted_protocol: the full DistNearClique protocol on a sparse
//    planted-clique graph — realistic mixed load (bursty traffic, alarms,
//    fast-forwarded idle stretches).
//
// Every configuration is also run as a determinism cross-check: the
// RunStats of each thread count must equal the 1-thread run bit-for-bit
// (the sharded engine's contract), and the bench aborts loudly if not.
//
// The JSON artifact records std::thread::hardware_concurrency() alongside
// the results: thread counts above it time-slice one core and measure
// synchronization overhead, not speedup. See docs/benchmarks.md.
//
// Usage: bench_parallel_scale [--json PATH] [--full]
//   --json PATH  write the JSON artifact to PATH (default BENCH_parallel.json)
//   --full       include the 1M-node configurations (slower)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/driver.hpp"
#include "core/params.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "runtime/network.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Ring + `chords_per_node` random chords: connected, sparse, O(m) to build.
Graph ring_with_chords(NodeId n, unsigned chords_per_node, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  return b.build();
}

/// Ring + chords background with a planted clique and a random halo.
Graph planted_clique_sparse(NodeId n, NodeId clique, unsigned chords_per_node,
                            unsigned halo_per_member, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  std::vector<NodeId> members;
  for (NodeId v = 0; v < clique; ++v) members.push_back(v);
  b.add_clique(members);
  for (const NodeId m : members) {
    for (unsigned h = 0; h < halo_per_member; ++h) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != m) b.add_edge(m, u);
    }
  }
  return b.build();
}

constexpr std::uint16_t kChatKind = 1;

/// Streams `symbols` 8-bit symbols to the ring successor and reads the ring
/// predecessor's stream; done when the inbound stream finishes.
class RingChatter : public INode {
 public:
  RingChatter(std::size_t succ_ni, std::size_t pred_ni, std::size_t symbols)
      : succ_ni_(succ_ni), pred_ni_(pred_ni), symbols_(symbols) {}

  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_one(StreamKey{kChatKind, api.id(), 0}, succ_ni_);
    for (std::size_t i = 0; i < symbols_; ++i) ch.put(i & 0xffu, 8);
    ch.close();
  }

  void on_round(NodeApi& api) override {
    const NodeId pred = api.neighbors()[pred_ni_];
    InStream* in = api.find_in(pred_ni_, StreamKey{kChatKind, pred, 0});
    if (in == nullptr) return;
    while (in->available() > 0) checksum_ += in->pop();
    if (in->finished()) api.set_done();
  }

  std::uint64_t checksum_ = 0;

 private:
  std::size_t succ_ni_;
  std::size_t pred_ni_;
  std::size_t symbols_;
};

struct Row {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  unsigned threads = 1;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  double run_seconds = 0;
  double speedup_vs_1t = 1.0;
  NetProfile profile;  // per-phase seconds + arena/lane high-water marks

  [[nodiscard]] double rounds_per_sec() const {
    return run_seconds > 0 ? static_cast<double>(rounds) / run_seconds : 0;
  }
  [[nodiscard]] double deliveries_per_sec() const {
    return run_seconds > 0 ? static_cast<double>(messages) / run_seconds : 0;
  }
};

void check_identical(const Row& base, const Row& row) {
  if (row.rounds != base.rounds || row.messages != base.messages ||
      row.bits != base.bits) {
    std::cerr << "DETERMINISM VIOLATION: " << row.name << " n=" << row.n
              << " threads=" << row.threads
              << " diverged from the 1-thread run\n";
    std::exit(1);
  }
}

/// ring_chatter: every node streams ~target_rounds rounds of traffic to its
/// ring successor; all 2m links in the ring direction are busy every round.
Row bench_ring_chatter(const Graph& g, NodeId n, unsigned threads,
                       std::uint64_t target_rounds) {
  Row row;
  row.name = "ring_chatter";
  row.threads = threads;

  const unsigned idb = id_width(n);
  const std::size_t budget = 8u * idb;
  const std::size_t header = stream_header_bits(idb);
  const std::size_t per_round = (budget - header) / 8;
  const std::size_t symbols = per_round * target_rounds;

  NetConfig cfg;
  cfg.seed = 7;
  cfg.max_rounds = target_rounds + 64;
  cfg.threads = threads;
  cfg.profile = &row.profile;
  Network net(g, cfg, [&](NodeId v) -> std::unique_ptr<INode> {
    const auto nb = g.neighbors(v);
    const NodeId succ = (v + 1) % n;
    const NodeId pred = (v + n - 1) % n;
    std::size_t succ_ni = 0, pred_ni = 0;
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] == succ) succ_ni = i;
      if (nb[i] == pred) pred_ni = i;
    }
    return std::make_unique<RingChatter>(succ_ni, pred_ni, symbols);
  });

  const auto t0 = Clock::now();
  const RunStats stats = net.run();
  row.run_seconds = seconds_since(t0);
  row.n = n;
  row.m = g.m();
  row.rounds = stats.rounds;
  row.messages = stats.messages;
  row.bits = stats.bits;
  return row;
}

/// planted_protocol: DistNearClique end-to-end.
Row bench_planted_protocol(const Graph& g, NodeId n, unsigned threads) {
  Row row;
  row.name = "planted_protocol";
  row.threads = threads;

  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.05;
  cfg.proto.versions = 1;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 400'000;
  cfg.net.threads = threads;
  cfg.net.profile = &row.profile;

  const auto t0 = Clock::now();
  const auto res = run_dist_near_clique(g, cfg);
  row.run_seconds = seconds_since(t0);
  row.n = n;
  row.m = g.m();
  row.rounds = res.stats.rounds;
  row.messages = res.stats.messages;
  row.bits = res.stats.bits;
  return row;
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"parallel_scale\",\n";
  os << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "  \"thread_counts\": [1, 2, 4, 8],\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"threads\": " << r.threads
       << ", \"rounds\": " << r.rounds << ", \"messages\": " << r.messages
       << ", \"bits\": " << r.bits << ", \"run_seconds\": " << r.run_seconds
       << ", \"rounds_per_sec\": " << r.rounds_per_sec()
       << ", \"deliveries_per_sec\": " << r.deliveries_per_sec()
       << ", \"speedup_vs_1t\": " << r.speedup_vs_1t
       // Per-phase engine profile (docs/benchmarks.md): the serial fused
       // path books its combined stage+deliver pass under fused_seconds,
       // so 1-thread rows honestly show stage/deliver = 0 and fused > 0.
       << ", \"stage_seconds\": " << r.profile.stage_seconds
       << ", \"deliver_seconds\": " << r.profile.deliver_seconds
       << ", \"fused_seconds\": " << r.profile.fused_seconds
       << ", \"wake_seconds\": " << r.profile.wake_seconds
       << ", \"arena_bytes_total\": " << r.profile.arena_bytes_total
       << ", \"arena_bytes_peak_shard\": " << r.profile.arena_bytes_peak_shard
       << ", \"lane_msgs_peak\": " << r.profile.lane_msgs_peak
       << ", \"broadcast_payload_bytes_saved\": "
       << r.profile.broadcast_payload_bytes_saved << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_parallel.json";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_parallel_scale [--json PATH] [--full]\n"
                << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  const unsigned kThreadCounts[] = {1, 2, 4, 8};
  std::vector<nc::Row> rows;

  struct ChatterCfg {
    nc::NodeId n;
    std::uint64_t rounds;
  };
  std::vector<ChatterCfg> chatter = {{100'000, 120}, {500'000, 40}};
  if (full) chatter.push_back({1'000'000, 24});
  for (const auto& cc : chatter) {
    const nc::Graph g = nc::ring_with_chords(cc.n, 3, /*seed=*/42);
    std::size_t base_at = rows.size();
    for (const unsigned t : kThreadCounts) {
      nc::Row row = nc::bench_ring_chatter(g, cc.n, t, cc.rounds);
      nc::check_identical(rows.size() == base_at ? row : rows[base_at], row);
      row.speedup_vs_1t = rows.size() == base_at
                              ? 1.0
                              : rows[base_at].run_seconds / row.run_seconds;
      std::cout << row.name << " n=" << row.n << " threads=" << row.threads
                << " rounds=" << row.rounds << " messages=" << row.messages
                << " run=" << row.run_seconds
                << "s rounds/sec=" << row.rounds_per_sec()
                << " speedup=" << row.speedup_vs_1t << "\n";
      rows.push_back(std::move(row));
    }
  }

  std::vector<nc::NodeId> proto_sizes = {100'000};
  if (full) proto_sizes.push_back(1'000'000);
  for (const nc::NodeId n : proto_sizes) {
    const nc::Graph g =
        nc::planted_clique_sparse(n, 32, 2, 3, /*seed=*/11);
    std::size_t base_at = rows.size();
    for (const unsigned t : kThreadCounts) {
      nc::Row row = nc::bench_planted_protocol(g, n, t);
      nc::check_identical(rows.size() == base_at ? row : rows[base_at], row);
      row.speedup_vs_1t = rows.size() == base_at
                              ? 1.0
                              : rows[base_at].run_seconds / row.run_seconds;
      std::cout << row.name << " n=" << row.n << " threads=" << row.threads
                << " rounds=" << row.rounds << " messages=" << row.messages
                << " run=" << row.run_seconds
                << "s rounds/sec=" << row.rounds_per_sec()
                << " speedup=" << row.speedup_vs_1t << "\n";
      rows.push_back(std::move(row));
    }
  }

  if (!nc::write_json(json_path, rows)) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
