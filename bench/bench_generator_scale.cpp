// Instance-pipeline throughput benchmark: wall-clock seconds and edges/sec
// to *generate and CSR-build* large sparse instances. Companion to
// bench_runtime_scale (which tracks the simulator hot path): after PR 2 the
// generators are O(n + m) streaming samplers feeding a move-based
// counting-sort CSR build, so a 1M-node, ~avg-degree-10 instance of every
// randomized family must come out in seconds, not hours — this bench is the
// artifact that pins that.
//
// Workloads (all ~avg-degree-10 at n = 1M by default):
//  - erdos_renyi:        geometric skip-sampling G(n, p)
//  - power_law_web:      alias-table expected-degree (Chung-Lu) sampling
//                        with a planted community, plus the O(n + m) CSR
//                        permutation
//  - planted_near_clique: knocked-out clique + skip-sampled background/halo
//  - planted_partition:  per-row in/out-group skip-sampling
//  - random_geometric:   uniform-grid bucketing (3x3-cell probes)
//  - er_reference_20k:   the exact O(n^2) sampler at n = 20k, kept as the
//                        before/after comparison point
//
// Usage: bench_generator_scale [--json PATH] [--full]
//   --json PATH  write the JSON artifact (default BENCH_generators.json)
//   --full       additionally run 4M-node erdos_renyi and power_law_web

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  double seconds = 0;

  [[nodiscard]] double edges_per_sec() const {
    return seconds > 0 ? static_cast<double>(m) / seconds : 0;
  }
};

Row time_generation(const std::string& name, NodeId n,
                    const std::function<Graph(Rng&)>& make) {
  Row row;
  row.name = name;
  row.n = n;
  Rng rng(0xbe9c);
  const auto t0 = Clock::now();
  const Graph g = make(rng);
  row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  row.m = g.m();
  return row;
}

std::vector<Row> run_all(bool full) {
  std::vector<Row> rows;
  const auto add = [&rows](const std::string& name, NodeId n,
                           const std::function<Graph(Rng&)>& make) {
    rows.push_back(time_generation(name, n, make));
    const Row& r = rows.back();
    std::cout << r.name << " n=" << r.n << " m=" << r.m << " seconds="
              << r.seconds << " edges/sec=" << r.edges_per_sec() << "\n";
  };

  const auto er = [](NodeId n) {
    return [n](Rng& rng) {
      return erdos_renyi(n, 10.0 / static_cast<double>(n - 1), rng);
    };
  };
  const auto plw = [](NodeId n) {
    return [n](Rng& rng) {
      return power_law_web(n, 2.5, 10.0, /*community=*/1000,
                           /*eps_missing=*/0.1, rng)
          .graph;
    };
  };

  add("erdos_renyi", 1'000'000, er(1'000'000));
  add("power_law_web", 1'000'000, plw(1'000'000));
  add("planted_near_clique", 1'000'000, [](Rng& rng) {
    PlantedNearCliqueParams pp;
    pp.n = 1'000'000;
    pp.clique_size = 2000;
    pp.eps_missing = 0.05;
    pp.background_p = 8.0 / static_cast<double>(pp.n);
    pp.halo_p = 20.0 / static_cast<double>(pp.n);
    return planted_near_clique(pp, rng).graph;
  });
  add("planted_partition", 1'000'000, [](Rng& rng) {
    // 100 groups of 10k: in-degree ~16, out-degree ~2.
    return planted_partition(1'000'000, 100, 16.0 / 10'000.0,
                             2.0 / 990'000.0, rng)
        .graph;
  });
  add("random_geometric", 1'000'000, [](Rng& rng) {
    // pi * r^2 * n ~ 10 => r ~ 0.00178.
    return random_geometric(1'000'000, 0.00178, rng);
  });
  // Before/after comparison point: the exact O(n^2) reference sampler at a
  // size it can still stomach (2e8 pair draws).
  add("er_reference_20k", 20'000, [](Rng& rng) {
    return erdos_renyi_reference(20'000, 10.0 / 19'999.0, rng);
  });
  add("er_streaming_20k", 20'000, [](Rng& rng) {
    return erdos_renyi_streaming(20'000, 10.0 / 19'999.0, rng);
  });

  if (full) {
    add("erdos_renyi", 4'000'000, er(4'000'000));
    add("power_law_web", 4'000'000, plw(4'000'000));
  }
  return rows;
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"generator_scale\",\n";
  os << "  \"note\": \"seconds = generate + CSR-build, wall clock; "
        "er_reference_20k is the exact O(n^2) sampler kept for "
        "comparison\",\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"seconds\": " << r.seconds
       << ", \"edges_per_sec\": " << r.edges_per_sec() << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_generators.json";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_generator_scale [--json PATH] [--full]\n"
                << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }
  const auto rows = nc::run_all(full);
  if (!nc::write_json(json_path, rows)) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
