#pragma once

// Shared glue for the experiment benchmarks (E1..E12). Each bench binary is
// a google-benchmark executable whose cases run seeded trial batches, export
// the headline measurement as benchmark counters, and append one row per
// configuration to a process-global table that main() prints — the table is
// the artifact EXPERIMENTS.md records against the paper's prediction.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace nc::bench {

/// Accumulates the experiment's result table across benchmark cases.
class TableSink {
 public:
  TableSink(std::string title, std::vector<std::string> headers)
      : title_(std::move(title)), table_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    table_.add_row(std::move(cells));
  }

  void print() const {
    std::cout << "\n=== " << title_ << " ===\n" << table_.str() << std::flush;
  }

 private:
  std::string title_;
  Table table_;
};

/// Runs the registered benchmarks, then prints every sink.
inline int run_main(int argc, char** argv,
                    const std::vector<const TableSink*>& sinks) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const auto* sink : sinks) sink->print();
  return 0;
}

}  // namespace nc::bench
