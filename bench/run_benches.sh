#!/usr/bin/env bash
# Builds the Release preset, runs the benchmark binaries and collects the
# BENCH_*.json artifacts into the repository root.
#
# Usage: bench/run_benches.sh [--full] [--experiments]
#   --full         run bench_runtime_scale with the 500k-node configuration
#                  and bench_generator_scale with the 4M-node configuration
#   --experiments  also run the (slow) E1..E12 google-benchmark experiments
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR=build-release

FULL_FLAG=""
RUN_EXPERIMENTS=0
for arg in "$@"; do
  case "$arg" in
    --full) FULL_FLAG="--full" ;;
    --experiments) RUN_EXPERIMENTS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake --preset release -DNC_BUILD_TESTS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

"$BUILD_DIR/bench_runtime_scale" $FULL_FLAG --json "$REPO_ROOT/BENCH_runtime.json"
"$BUILD_DIR/bench_generator_scale" $FULL_FLAG --json "$REPO_ROOT/BENCH_generators.json"

# Small fixed-seed comparative sweep through the registry pair (scenario x
# algorithm, see src/expt/README.md) so future PRs can track the
# DistNearClique-vs-baselines trajectory. Per-algorithm brackets hold
# eps = 0.2 fixed for every algorithm that declares it (neighbors2 and
# grasp parameterize differently; theorem57 falls back to its own
# eps = 0.2 for them), so the rows are comparable; the JSON records each
# row's fully merged parameters. JSON lines in BENCH_sweep.json.
"$BUILD_DIR/nearclique" sweep --scenario=theorem --params=n=150 \
    --algos='dist_near_clique[eps=0.2,pn=9,max_rounds=16000000],shingles[eps=0.2,min_size=4],neighbors2,peeling[eps=0.2],grasp[gamma=0.8,iterations=24],ggr_find[eps=0.2]' \
    --trials=8 --seed=1 --seq-seeds \
    --success=theorem57 --json="$REPO_ROOT/BENCH_sweep.json"

if [[ "$RUN_EXPERIMENTS" -eq 1 ]]; then
  for bin in "$BUILD_DIR"/bench_e*; do
    [[ -x "$bin" ]] || continue
    name=$(basename "$bin")
    echo "=== $name ==="
    "$bin" "--benchmark_out=$REPO_ROOT/BENCH_${name#bench_}.json" \
           --benchmark_out_format=json
  done
fi

echo "artifacts:"
ls -1 "$REPO_ROOT"/BENCH_*.json
