#!/usr/bin/env bash
# Builds the Release preset, runs the benchmark binaries and collects the
# BENCH_*.json artifacts into the repository root.
#
# Usage: bench/run_benches.sh [--full] [--force] [--experiments]
#   --full         run bench_runtime_scale with the 500k-node configuration,
#                  bench_generator_scale with the 4M-node configuration,
#                  bench_parallel_scale with the 1M-node configurations, and
#                  the 1M-node end-to-end protocol sweep (slow)
#   --force        allow overwriting the committed BENCH_*.json artifacts
#                  with a quick (non --full) run
#   --experiments  also run the (slow) E1..E12 google-benchmark experiments
#
# The committed BENCH_*.json artifacts are full-configuration runs; a quick
# run writes rows for fewer configurations and would silently shrink the
# artifacts. The script therefore refuses to overwrite committed artifacts
# unless --full (regenerating the real thing) or --force (you know what
# you're doing) is given.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
BUILD_DIR=build-release

FULL_FLAG=""
FORCE=0
RUN_EXPERIMENTS=0
for arg in "$@"; do
  case "$arg" in
    --full) FULL_FLAG="--full" ;;
    --force) FORCE=1 ;;
    --experiments) RUN_EXPERIMENTS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if [[ -z "$FULL_FLAG" && "$FORCE" -ne 1 ]]; then
  committed=$(cd "$REPO_ROOT" && git ls-files 'BENCH_*.json' 2>/dev/null || true)
  for f in $committed; do
    if [[ -e "$REPO_ROOT/$f" ]]; then
      echo "error: a quick run would overwrite the committed artifact $f." >&2
      echo "Rerun with --full to regenerate the full artifacts, or --force" >&2
      echo "to overwrite them with a quick run anyway." >&2
      exit 2
    fi
  done
fi

cmake --preset release -DNC_BUILD_TESTS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

"$BUILD_DIR/bench_runtime_scale" $FULL_FLAG --json "$REPO_ROOT/BENCH_runtime.json"
"$BUILD_DIR/bench_generator_scale" $FULL_FLAG --json "$REPO_ROOT/BENCH_generators.json"
# Sharded-engine scaling at 1/2/4/8 threads; also re-verifies that every
# thread count reproduces the 1-thread RunStats bit-for-bit. Interpret
# speedups against the recorded hardware_concurrency (docs/benchmarks.md).
"$BUILD_DIR/bench_parallel_scale" $FULL_FLAG --json "$REPO_ROOT/BENCH_parallel.json"

# Fault-sweep curves: protocol quality + rounds-to-completion under
# message loss, link delay and node churn on 100k (and, with --full, 1M)
# planted instances. The loss curve runs three ways — bare (rel_mode=0),
# ARQ-protected (rel_mode=1) and FEC-protected (rel_mode=2, subset) —
# and each JSON row records its rel_mode plus the retransmission / ACK /
# repair-chunk counters, so the artifact carries the reliability
# provenance of every number. Fault and reliability decisions are keyed
# hashes, so the curves are bit-identical at any thread count
# (docs/benchmarks.md).
"$BUILD_DIR/bench_fault_sweep" $FULL_FLAG --json "$REPO_ROOT/BENCH_faults.json"

# Small fixed-seed comparative sweep through the registry pair (scenario x
# algorithm, see src/expt/README.md) so future PRs can track the
# DistNearClique-vs-baselines trajectory. Per-algorithm brackets hold
# eps = 0.2 fixed for every algorithm that declares it (neighbors2 and
# grasp parameterize differently; theorem57 falls back to its own
# eps = 0.2 for them), so the rows are comparable; the JSON records each
# row's fully merged parameters. JSON lines in BENCH_sweep.json.
"$BUILD_DIR/nearclique" sweep --scenario=theorem --params=n=150 \
    --algos='dist_near_clique[eps=0.2,pn=9,max_rounds=16000000],shingles[eps=0.2,min_size=4],neighbors2,peeling[eps=0.2],grasp[gamma=0.8,iterations=24],ggr_find[eps=0.2]' \
    --trials=8 --seed=1 --seq-seeds \
    --success=theorem57 --json="$REPO_ROOT/BENCH_sweep.json"

if [[ -n "$FULL_FLAG" ]]; then
  # The 1M-node end-to-end story (see README.md): a streaming-family
  # instance through the full DistNearClique protocol via the sweep runner
  # and the sharded delivery engine. pn=5000 keeps the sampled set large
  # enough to hit the 1000-node planted clique at n=1M (the paper's
  # guarantee assumes a *linear-size* clique; at million-node scale a dense
  # linear-size set would need ~n^2/8 edges, so the demo plants a small
  # dense set and raises the sampling rate instead). Not a committed
  # artifact — a completion check with a visible table.
  "$BUILD_DIR/nearclique" sweep --scenario=planted_near_clique \
      --params=n=1000000,clique_size=1000,background_p=0.00001,halo_p=0.00001 \
      --algos='dist_near_clique[eps=0.2,pn=5000]' \
      --trials=1 --seed=3 --threads=8 --success=effective \
      --title="1M-node end-to-end protocol sweep"
fi

if [[ "$RUN_EXPERIMENTS" -eq 1 ]]; then
  for bin in "$BUILD_DIR"/bench_e*; do
    [[ -x "$bin" ]] || continue
    name=$(basename "$bin")
    echo "=== $name ==="
    "$bin" "--benchmark_out=$REPO_ROOT/BENCH_${name#bench_}.json" \
           --benchmark_out_format=json
  done
fi

echo "artifacts:"
ls -1 "$REPO_ROOT"/BENCH_*.json
