// E4 — Claim 1 + Figure 1: the shingles counterexample family {G_n}.
//
// Prediction (Claim 1): on G_n (cliques C1, C2 of size delta*n/2,
// independent sets I1, I2, bicliques (I1,C1), (C1,C2), (C2,I2)) the shingles
// algorithm cannot output an eps-near clique with >= (1-eps) delta n nodes
// for eps < min{(1-delta)/(1+delta), 1/9}:
//   case 1 (minimum ID in C1 ∪ C2): the candidate set has density exactly
//     2 delta/(1+delta) < 1 - eps;
//   case 2 (minimum ID in I1 ∪ I2): candidates are either too small
//     (<= delta n/2 + 1 or < 3 delta n/4) or have density < 8/9.
// DistNearClique, by contrast, succeeds with constant probability on the
// same graphs. Shape to verify: shingles success rate == 0 across n, while
// DistNearClique success rate is bounded away from 0, and the measured
// case-1 candidate density tracks 2 delta/(1+delta).

#include <benchmark/benchmark.h>

#include "baselines/shingles.hpp"
#include "bench_common.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "graph/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E4: Claim 1 / Figure 1 — shingles vs DistNearClique on G_n "
      "(delta=0.5, eps=0.1, target size >= (1-eps)*delta*n)",
      {"n", "predicted_case1_density", "shingles_best_density",
       "shingles_best_size", "shingles_success", "distnc_success",
       "distnc_mean_size", "distnc_mean_density"}};
  return s;
}

void BM_Counterexample(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const double delta = 0.5;
  const double eps = 0.1;
  const std::size_t trials = 10;
  const double target_size = (1.0 - eps) * delta * static_cast<double>(n);

  std::size_t shingles_success = 0;
  std::size_t distnc_success = 0;
  RunningStat sh_density, sh_size, nc_size, nc_density;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t seed = 1000 + t;
    const auto inst = make_scenario(
        "counterexample",
        ScenarioParams().with("n", n).with("delta", delta), seed);

    ShinglesParams sp;
    sp.eps = eps;
    sp.min_size = 2;
    const auto sh = run_shingles(inst.graph, sp, seed);
    // The best candidate by size among survivors; Claim 1 says none is both
    // big and dense.
    const auto sh_best = sh.largest_cluster();
    sh_size.add(static_cast<double>(sh_best.size()));
    sh_density.add(sh_best.empty() ? 0.0 : set_density(inst.graph, sh_best));
    if (static_cast<double>(sh_best.size()) >= target_size &&
        is_near_clique(inst.graph, sh_best, eps)) {
      ++shingles_success;
    }

    DriverConfig cfg;
    cfg.proto.eps = eps;
    cfg.proto.p = 10.0 / static_cast<double>(n);
    cfg.net.seed = seed;
    cfg.net.max_rounds = 8'000'000;
    const auto res = run_dist_near_clique(inst.graph, cfg);
    const auto best = res.largest_cluster();
    nc_size.add(static_cast<double>(best.size()));
    nc_density.add(best.empty() ? 0.0 : set_density(inst.graph, best));
    // DistNearClique's guarantee on this instance (D = C, eps_out per
    // Theorem 5.7 with eps' chosen s.t. eps'^3 = 0 <= any): require a large
    // high-density output.
    if (static_cast<double>(best.size()) >= 0.6 * delta * n &&
        set_density(inst.graph, best) >= 0.85) {
      ++distnc_success;
    }
    benchmark::DoNotOptimize(res);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(shingles_success);
  }
  state.counters["shingles_success"] =
      static_cast<double>(shingles_success) / trials;
  state.counters["distnc_success"] =
      static_cast<double>(distnc_success) / trials;

  sink().add_row({Table::num(static_cast<std::uint64_t>(n)),
                  Table::num(2 * delta / (1 + delta), 3),
                  Table::num(sh_density.max(), 3),
                  Table::num(sh_size.max(), 0),
                  Table::num(static_cast<double>(shingles_success) / trials, 2),
                  Table::num(static_cast<double>(distnc_success) / trials, 2),
                  Table::num(nc_size.mean(), 1),
                  Table::num(nc_density.mean(), 3)});
}

BENCHMARK(BM_Counterexample)
    ->Arg(80)
    ->Arg(160)
    ->Arg(240)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
