// Simulator-core throughput benchmark: rounds/sec and deliveries/sec on
// large sparse and planted-clique graphs. Unlike the E1..E12 experiment
// benches (which measure protocol *quality* against the paper's predictions)
// this one tracks the *runtime* hot path across PRs, so the perf trajectory
// of the event-driven core is visible in BENCH_runtime.json.
//
// Workloads:
//  - sparse_idle: ring+chord graph where a handful of node pairs stream
//    bits at each other while every other node sleeps on a far alarm. Low
//    traffic density: per-round work should be proportional to the handful,
//    not to n or m.
//  - planted_protocol: the full DistNearClique protocol on a sparse
//    background graph with a planted clique; end-to-end deliveries/sec.
//  - broadcast_fanout: the same protocol on a dense background (avg degree
//    ~50). The protocol is broadcast-shaped — nearly every kind is an
//    open_stream_all — so staged bytes grow with degree unless the engine
//    dedups broadcast payloads; this row is the degree-scaling witness for
//    the broadcast-aware fan-out path (broadcast_payload_bytes_saved).
//
// Usage: bench_runtime_scale [--json PATH] [--full]
//   --json PATH  write the JSON artifact to PATH (default BENCH_runtime.json)
//   --full       include the 500k-node configuration (slower)

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/params.hpp"
#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "runtime/network.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace nc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Ring + `chords_per_node` random chords: connected, sparse, O(m) to build.
Graph ring_with_chords(NodeId n, unsigned chords_per_node, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  return b.build();
}

/// Ring + chords background with a planted clique (IDs 0..size-1) and a halo
/// of random clique-to-outside edges.
Graph planted_clique_sparse(NodeId n, NodeId clique, unsigned chords_per_node,
                            unsigned halo_per_member, std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned c = 0; c < chords_per_node; ++c) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(v, u);
    }
  }
  std::vector<NodeId> members;
  for (NodeId v = 0; v < clique; ++v) members.push_back(v);
  b.add_clique(members);
  for (const NodeId m : members) {
    for (unsigned h = 0; h < halo_per_member; ++h) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      if (u != m) b.add_edge(m, u);
    }
  }
  return b.build();
}

constexpr std::uint16_t kChatKind = 1;

/// Streams `symbols` 8-bit symbols to one designated neighbour, reads the
/// partner's stream back, and finishes when it is fully delivered. Wakes on
/// deliveries only.
class ChatterNode : public INode {
 public:
  explicit ChatterNode(std::size_t partner_ni, std::size_t symbols)
      : partner_ni_(partner_ni), symbols_(symbols) {}

  void on_start(NodeApi& api) override {
    auto ch = api.open_stream_one(StreamKey{kChatKind, 0, 0}, partner_ni_);
    for (std::size_t i = 0; i < symbols_; ++i) ch.put(i & 0xffu, 8);
    ch.close();
  }

  void on_round(NodeApi& api) override {
    InStream* in = api.find_in(partner_ni_, StreamKey{kChatKind, 0, 0});
    if (in == nullptr) return;
    while (in->available() > 0) checksum_ += in->pop();
    if (in->finished()) api.set_done();
  }

  std::uint64_t checksum_ = 0;

 private:
  std::size_t partner_ni_;
  std::size_t symbols_;
};

/// Sleeps on one far alarm, then finishes.
class SleeperNode : public INode {
 public:
  explicit SleeperNode(std::uint64_t horizon) : horizon_(horizon) {}
  void on_start(NodeApi& api) override { api.set_alarm(horizon_); }
  void on_round(NodeApi& api) override {
    if (api.round() >= horizon_) {
      api.set_done();
    } else {
      api.set_alarm(horizon_);
    }
  }

 private:
  std::uint64_t horizon_;
};

struct Row {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  double build_seconds = 0;
  double run_seconds = 0;
  NetProfile profile;  // per-phase seconds + arena/lane high-water marks

  [[nodiscard]] double rounds_per_sec() const {
    return run_seconds > 0 ? static_cast<double>(rounds) / run_seconds : 0;
  }
  [[nodiscard]] double deliveries_per_sec() const {
    return run_seconds > 0 ? static_cast<double>(messages) / run_seconds : 0;
  }
};

/// sparse_idle: `pairs` adjacent node pairs chatter for ~`target_rounds`
/// rounds while everyone else sleeps until the chatter is over.
Row bench_sparse_idle(NodeId n, std::uint64_t target_rounds, unsigned pairs) {
  Row row;
  row.name = "sparse_idle";
  const Graph g = ring_with_chords(n, 3, /*seed=*/42);

  // One message per round carries floor((B - header) / 8) 8-bit symbols.
  const unsigned idb = id_width(n);
  const std::size_t budget = 8u * idb;
  const std::size_t header = stream_header_bits(idb);
  const std::size_t per_round = (budget - header) / 8;
  const std::size_t symbols = per_round * target_rounds;
  const std::uint64_t horizon = target_rounds + 8;

  // Chatter pairs are ring neighbours (v, v+1), spread across the ID space
  // so the pre-refactor early-exit scans cannot get lucky.
  std::vector<NodeId> lo(n, kNoNode);  // partner's neighbour slot, by node
  std::vector<std::size_t> partner_ni(n, SIZE_MAX);
  for (unsigned i = 0; i < pairs; ++i) {
    const NodeId a = static_cast<NodeId>((static_cast<std::uint64_t>(i) + 1) *
                                         n / (pairs + 1));
    const NodeId b = (a + 1) % n;
    lo[a] = b;
    lo[b] = a;
  }

  const auto t0 = Clock::now();
  NetConfig cfg;
  cfg.seed = 7;
  cfg.max_rounds = horizon + 16;
  cfg.profile = &row.profile;
  Network net(g, cfg, [&](NodeId v) -> std::unique_ptr<INode> {
    if (lo[v] != kNoNode) {
      // Find the partner's index among v's sorted neighbours.
      const auto nb = g.neighbors(v);
      std::size_t ni = 0;
      while (nb[ni] != lo[v]) ++ni;
      return std::make_unique<ChatterNode>(ni, symbols);
    }
    return std::make_unique<SleeperNode>(horizon);
  });
  row.build_seconds = seconds_since(t0);

  const auto t1 = Clock::now();
  const RunStats stats = net.run();
  row.run_seconds = seconds_since(t1);
  row.n = n;
  row.m = g.m();
  row.rounds = stats.rounds;
  row.messages = stats.messages;
  row.bits = stats.bits;
  return row;
}

/// planted_protocol / broadcast_fanout: DistNearClique end-to-end on a
/// planted-clique graph; `chords_per_node` sets the background density
/// (2 chords ≈ avg degree 7 — the sparse row; 24 chords ≈ avg degree 50 —
/// the broadcast fan-out row).
Row bench_protocol(const std::string& name, NodeId n, NodeId clique,
                   unsigned chords_per_node) {
  Row row;
  row.name = name;
  const Graph g = planted_clique_sparse(n, clique, chords_per_node,
                                        /*halo_per_member=*/3, /*seed=*/11);

  DriverConfig cfg;
  cfg.proto.eps = 0.2;
  cfg.proto.p = 0.05;
  cfg.proto.versions = 1;
  cfg.net.seed = 5;
  cfg.net.max_rounds = 400'000;
  cfg.net.profile = &row.profile;

  const auto t0 = Clock::now();
  const Schedule schedule = make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  Network net(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  row.build_seconds = seconds_since(t0);

  const auto t1 = Clock::now();
  const RunStats stats = net.run();
  row.run_seconds = seconds_since(t1);
  row.n = n;
  row.m = g.m();
  row.rounds = stats.rounds;
  row.messages = stats.messages;
  row.bits = stats.bits;
  return row;
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"runtime_scale\",\n";
  // Historical reference: the pre-event-driven simulator (per-round full
  // scans over every node and link), measured on the same workloads at the
  // commit that introduced this bench. Kept in the artifact so every
  // regeneration carries the comparison point.
  os << "  \"baseline_full_scan\": [\n"
        "    {\"name\": \"sparse_idle\", \"n\": 10000, "
        "\"rounds_per_sec\": 1539.2, \"deliveries_per_sec\": 48863.1},\n"
        "    {\"name\": \"sparse_idle\", \"n\": 100000, "
        "\"rounds_per_sec\": 148.5, \"deliveries_per_sec\": 4714.8},\n"
        "    {\"name\": \"planted_protocol\", \"n\": 10000, "
        "\"rounds_per_sec\": 293.8, \"deliveries_per_sec\": 907509}\n"
        "  ],\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"name\": \"" << r.name << "\", \"n\": " << r.n
       << ", \"m\": " << r.m << ", \"rounds\": " << r.rounds
       << ", \"messages\": " << r.messages << ", \"bits\": " << r.bits
       << ", \"build_seconds\": " << r.build_seconds
       << ", \"run_seconds\": " << r.run_seconds
       << ", \"rounds_per_sec\": " << r.rounds_per_sec()
       << ", \"deliveries_per_sec\": " << r.deliveries_per_sec()
       // Per-phase engine profile (docs/benchmarks.md): the serial fused
       // path books its combined stage+deliver pass under fused_seconds
       // (stage_seconds/deliver_seconds are the staged engine's phases and
       // stay 0 on the 1-thread clean path by construction).
       << ", \"stage_seconds\": " << r.profile.stage_seconds
       << ", \"deliver_seconds\": " << r.profile.deliver_seconds
       << ", \"fused_seconds\": " << r.profile.fused_seconds
       << ", \"wake_seconds\": " << r.profile.wake_seconds
       << ", \"arena_bytes_total\": " << r.profile.arena_bytes_total
       << ", \"arena_bytes_peak_shard\": " << r.profile.arena_bytes_peak_shard
       << ", \"lane_msgs_peak\": " << r.profile.lane_msgs_peak
       << ", \"broadcast_payload_bytes_saved\": "
       << r.profile.broadcast_payload_bytes_saved << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.good();
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_runtime.json";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_runtime_scale [--json PATH] [--full]\n"
                << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  std::vector<nc::Row> rows;
  rows.push_back(nc::bench_sparse_idle(10'000, 1'000, 16));
  rows.push_back(nc::bench_sparse_idle(100'000, 1'000, 16));
  if (full) rows.push_back(nc::bench_sparse_idle(500'000, 1'000, 16));
  rows.push_back(nc::bench_protocol("planted_protocol", 10'000, 32, 2));
  if (full) rows.push_back(nc::bench_protocol("planted_protocol", 50'000, 32, 2));
  rows.push_back(nc::bench_protocol("broadcast_fanout", 10'000, 32, 24));

  for (const auto& r : rows) {
    std::cout << r.name << " n=" << r.n << " m=" << r.m
              << " rounds=" << r.rounds << " messages=" << r.messages
              << " build=" << r.build_seconds << "s run=" << r.run_seconds
              << "s rounds/sec=" << r.rounds_per_sec()
              << " deliveries/sec=" << r.deliveries_per_sec()
              << " [fused=" << r.profile.fused_seconds
              << "s wake=" << r.profile.wake_seconds
              << "s arena=" << r.profile.arena_bytes_total << "B]\n";
  }
  if (!nc::write_json(json_path, rows)) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
