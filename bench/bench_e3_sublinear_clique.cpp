// E3 — Corollary 2.3: strict cliques of slightly sublinear size.
//
// Premise: a clique D with |D| >= n / (log log n)^alpha. Prediction: an
// o(1)-near clique of size (1-o(1))|D| is found with probability 1-o(1) in
// a polylogarithmic number of rounds (the sampling probability grows only
// polylogarithmically, so 2^{2pn} is quasi-polylog). Shape to verify: high
// success rate and a round count that grows far slower than any polynomial
// in n — we report rounds / polylog(n) staying bounded.

#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/registry.hpp"
#include "bench_common.hpp"
#include "expt/report.hpp"
#include "expt/trial.hpp"

namespace {

using namespace nc;

bench::TableSink& sink() {
  static bench::TableSink s{
      "E3: Corollary 2.3 — clique of size n/(loglog n)^0.5, boosted lambda=2",
      [] {
        std::vector<std::string> h{"n", "|D|", "rounds/log2(n)^2"};
        for (const auto& c : stats_headers()) h.push_back(c);
        return h;
      }()};
  return s;
}

void BM_Sublinear(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  const double alpha = 0.5;
  const double eps = 0.2;
  const std::size_t trials = 4;

  TrialSpec spec;
  spec.make_instance = scenario_maker(
      "sublinear", ScenarioParams().with("n", n).with("alpha", alpha));
  // delta = 1/(loglog n)^alpha shrinks, so pn grows ~(loglog n)^alpha;
  // boosting (versions=2) is an algorithm parameter of the registry entry.
  const double loglog =
      std::log2(std::max(4.0, std::log2(static_cast<double>(n))));
  spec.run = algorithm_runner("dist_near_clique",
                              AlgoParams()
                                  .with("eps", eps)
                                  .with("pn", 8.0 * std::pow(loglog, alpha))
                                  .with("versions", 2)
                                  .with("window", 1'000'000)
                                  .with("max_rounds", 8'000'000));
  spec.success = [=](const Instance& inst, const AlgoResult& res) {
    // (1-o(1))|D| nodes at o(1) distance from clique: use 0.8 / 0.9 as the
    // finite-n stand-ins for the asymptotic statement.
    const auto best = res.largest_cluster();
    return static_cast<double>(best.size()) >=
               0.8 * static_cast<double>(inst.planted.size()) &&
           cluster_density(inst.graph, best) >= 0.9;
  };

  TrialStats stats;
  for (auto _ : state) {
    stats = run_trials(spec, trials, 0xe3);
  }
  const double polylog =
      std::pow(std::log2(static_cast<double>(n)), 2.0);
  state.counters["success_rate"] = stats.success_rate();
  state.counters["rounds_per_polylog"] = stats.rounds.mean() / polylog;

  const auto d =
      make_scenario("sublinear",
                    ScenarioParams().with("n", n).with("alpha", alpha), 1)
          .planted.size();
  std::vector<std::string> row{
      Table::num(static_cast<std::uint64_t>(n)),
      Table::num(static_cast<std::uint64_t>(d)),
      Table::num(stats.rounds.mean() / polylog, 1)};
  append_stats_cells(row, stats);
  sink().add_row(std::move(row));
}

BENCHMARK(BM_Sublinear)
    ->Arg(120)
    ->Arg(240)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return nc::bench::run_main(argc, argv, {&sink()});
}
