// nearclique — the single command-line front end of the repository: any
// registered scenario family x any registered algorithm, no recompiling.
//
//   nearclique list-scenarios               scenario catalogue + defaults
//   nearclique list-algorithms              algorithm catalogue + defaults
//   nearclique run   --scenario=F [--params=k=v,..] --algo=A
//                    [--algo-params=k=v,..] [--seed=N] [--threads=N]
//                    [--faults=loss=0.05,delay_max=3,..]
//                    [--reliability=rel_mode=1,rel_max_retx=8,..]
//                    [--telemetry=tel_stride=8,..]
//                    [--metrics=FILE|-] [--trace=FILE]
//                    [--repeat=N] [--time] [--profile]
//                    [--json[=FILE]] [--dot=out.dot]
//   nearclique sweep --scenario=F [--params=..] [--algos=A,B[k=v,..],..]
//                    [--algo-params=..] [--grid=scenario.n=100:200,both.eps=0.1:0.2]
//                    [--trials=N] [--seed=N] [--seq-seeds] [--threads=N]
//                    [--faults=loss=0.05,..] [--reliability=rel_mode=1,..]
//                    [--telemetry=..] [--metrics=FILE] [--trace=FILE]
//                    [--success=none|theorem57|effective|size_density]
//                    [--success2=...] [--success-eps=..] [--success-delta=..]
//                    [--success-min-size=..] [--success-max-eps=..]
//                    [--json=FILE|-] [--title=..]
//   nearclique sweep --spec=FILE.json [--json=FILE|-] [--title=..]
//                    [--metrics=FILE] [--trace=FILE]
//
// --faults injects adversity (src/runtime/faults.hpp) into every listed
// algorithm that declares the fault keys: iid loss (loss=), bursty
// Gilbert–Elliott loss (ge_p=,ge_r=,ge_loss_good=,ge_loss_bad=), integer
// link delay (delay_min=,delay_max=), and node churn
// (crash_frac=,crash_round=,recover_after=). Decisions are keyed hashes of
// (fault seed, round, src, dst), so faulty fixed-seed runs stay
// bit-identical at every --threads value. Individual fault keys also work
// as ordinary --algo-params entries and --grid axes (e.g.
// --grid=algo.loss=0:0.05:0.1 sweeps the loss rate).
//
// --reliability arms the stage/deliver reliability service
// (src/runtime/reliability.hpp) against that adversity, with the same
// distribution rule: rel_mode=1 is per-stream ACK + retransmission
// (rel_ack_timeout=, rel_max_retx=), rel_mode=2 is k-of-n erasure coding
// over round windows (rel_fec_window=, rel_fec_repair=). Reliability
// decisions are keyed hashes too, so protected runs stay bit-identical at
// every --threads value; rel_* keys also work as --algo-params entries and
// --grid axes.
//
// --metrics=FILE / --trace=FILE capture runtime telemetry
// (src/runtime/telemetry.hpp, docs/observability.md): --metrics writes
// per-round metric rows as JSON lines, --trace writes phase spans as a
// Chrome trace_event document (load in Perfetto / chrome://tracing; --trace
// also arms the protocol probe counters so they appear as counter tracks).
// --telemetry=tel_stride=8,tel_max_spans=10000 tunes sampling stride and
// memory bounds; tel_* keys also work as --algo-params entries. Telemetry
// is observation only — fixed-seed labels and RunStats are bit-identical
// with it on or off, at every --threads value. On a sweep the capture
// files concatenate every telemetry-enabled trial (metrics rows carry an
// "algorithm#row/trial seed=S" label; trace events get one pid per trial).
//
// --spec=FILE runs a sweep from a JSON spec document (the serialized
// SweepSpec — see src/expt/README.md), round-tripping every field
// including the faults and telemetry plans; --title, --json, --metrics and
// --trace still apply on top, and every other sweep flag is rejected (it
// would be silently dead).
//
// Per-algorithm bracket parameters — `shingles[eps=0.2,min_size=4]` — are
// the canonical way to parameterize a sweep's algorithms: each algorithm
// gets exactly the keys it declares. The shared --algo-params form applies
// every key to EVERY listed algorithm, which fails validation as soon as
// one algorithm doesn't declare it; with more than one algorithm the CLI
// warns that the mix is ambiguous and recommends brackets.
//
// --threads=N shards delivery and wake dispatch over N threads for the
// network-backed algorithms that declare the knob (dist_near_clique).
// Purely a performance knob: fixed-seed results are bit-identical at every
// thread count, so sweeps stay reproducible.
//
// Examples (see src/expt/README.md for the architecture):
//
//   nearclique run --scenario=planted_near_clique --algo=dist_near_clique
//                  --algo-params=eps=0.2,pn=9 --seed=7
//   nearclique sweep --scenario=theorem --algos=dist_near_clique,peeling
//                    --grid=both.eps=0.1:0.2 --trials=4 --success=theorem57
//                    --json=-
//
// `sweep --json=-` emits one JSON object per line on stdout (the table goes
// to stderr), so results pipe straight into jq / pandas.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "expt/sweep.hpp"
#include "graph/dot.hpp"
#include "graph/metrics.hpp"
#include "runtime/faults.hpp"
#include "runtime/reliability.hpp"
#include "runtime/telemetry.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace nc;

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: nearclique <command> [--flags]\n"
      "  list-scenarios            registered scenario families\n"
      "  list-algorithms           registered algorithms\n"
      "  run    --scenario=F --algo=A [--params=..] [--algo-params=..]\n"
      "         [--seed=N] [--threads=N] [--faults=loss=0.05,..]\n"
      "         [--reliability=rel_mode=1,..] [--telemetry=tel_stride=8,..]\n"
      "         [--metrics=FILE|-] [--trace=FILE]\n"
      "         [--repeat=N] [--time] [--profile] [--json[=FILE]]\n"
      "         [--dot=out.dot]\n"
      "  sweep  --scenario=F [--algos=A,B[k=v,..]] [--params=..]\n"
      "         [--grid=scenario.k=v1:v2,algo.k=..,both.k=..] [--trials=N]\n"
      "         [--seed=N] [--seq-seeds] [--threads=N] [--faults=..]\n"
      "         [--reliability=..] [--telemetry=..]\n"
      "         [--metrics=FILE] [--trace=FILE]\n"
      "         [--success=PRED] [--success2=PRED] [--json=FILE|-]\n"
      "  sweep  --spec=FILE.json [--json=FILE|-] [--title=..]\n"
      "         [--metrics=FILE] [--trace=FILE]\n"
      "per-algorithm params belong in brackets: --algos='a[eps=0.2],b'\n"
      "(the canonical form; a shared --algo-params list applies every key\n"
      "to every algorithm and is ambiguous with more than one).\n"
      "--threads=N shards delivery across N threads for algorithms that\n"
      "declare the knob; fixed-seed results are identical at any N.\n"
      "--faults=loss=0.05,delay_max=3,crash_frac=0.01 injects message\n"
      "loss / link delay / node churn into declaring algorithms; fault\n"
      "keys also work as --algo-params entries and --grid axes.\n"
      "--reliability=rel_mode=1 arms ACK/retransmission (rel_mode=2: FEC)\n"
      "against that loss for declaring algorithms; same key rules.\n"
      "--metrics=FILE writes per-round metrics as JSON lines; --trace=FILE\n"
      "writes a Chrome trace_event document (open in Perfetto) and arms the\n"
      "protocol probes. --telemetry=tel_stride=8,.. tunes sampling/bounds.\n"
      "Telemetry never changes results (docs/observability.md).\n"
      "--spec=FILE.json replays a serialized sweep spec (every field,\n"
      "faults included; see src/expt/README.md for the schema).\n"
      "run --repeat=N --time re-runs the fixed-seed execution N times and\n"
      "reports min/median/mean wall-clock (scenario build excluded).\n"
      "run --profile adds engine per-phase seconds (stage/deliver/fused/\n"
      "wake) and broadcast dedup savings to the text and JSON output.\n");
  return to == stdout ? 0 : 2;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parses "--grid=scenario.n=100:200,both.eps=0.1:0.2" into sweep axes.
std::vector<SweepAxis> parse_grid(const std::string& grid) {
  std::vector<SweepAxis> axes;
  for (const auto& item : split(grid, ',')) {
    const auto eq = item.find('=');
    const auto dot = item.find('.');
    if (eq == std::string::npos || dot == std::string::npos || dot > eq) {
      throw std::invalid_argument(
          "malformed grid axis '" + item +
          "' (expected scenario.key=v1:v2, algo.key=.. or both.key=..)");
    }
    SweepAxis axis;
    const std::string target = item.substr(0, dot);
    if (target == "scenario") {
      axis.target = SweepAxis::Target::kScenario;
    } else if (target == "algo" || target == "algorithm") {
      axis.target = SweepAxis::Target::kAlgorithm;
    } else if (target == "both") {
      axis.target = SweepAxis::Target::kBoth;
    } else {
      throw std::invalid_argument("unknown grid target '" + target +
                                  "' in '" + item +
                                  "'; use scenario., algo. or both.");
    }
    axis.key = item.substr(dot + 1, eq - dot - 1);
    for (const auto& v : split(item.substr(eq + 1), ':')) {
      axis.values.push_back(parse_number(v, "grid value"));
    }
    if (axis.key.empty() || axis.values.empty()) {
      throw std::invalid_argument("grid axis '" + item +
                                  "' needs a key and at least one value");
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

/// Splits an --algos list on the commas outside [...] brackets.
std::vector<std::string> split_algos(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '[') ++depth;
    if (c == ']') --depth;
    if (c == ',' && depth == 0) {
      if (!current.empty()) out.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

/// Parses one --algos entry, "name" or "name[k=v,...]"; bracketed
/// parameters override the shared --algo-params for this algorithm.
AlgoSpec parse_algo_item(const std::string& item,
                         const std::string& shared_params) {
  const auto bracket = item.find('[');
  if (bracket == std::string::npos) {
    return parse_algo_spec(item, shared_params, /*seed=*/1);
  }
  if (item.back() != ']') {
    throw std::invalid_argument("malformed --algos entry '" + item +
                                "' (expected name[k=v,...])");
  }
  const std::string name = item.substr(0, bracket);
  AlgoSpec spec = parse_algo_spec(name, shared_params, /*seed=*/1);
  const AlgoSpec own = parse_algo_spec(
      name, item.substr(bracket + 1, item.size() - bracket - 2), /*seed=*/1);
  for (const auto& [key, value] : own.params.values()) {
    spec.params.with(key, value);
  }
  for (const auto& [key, value] : own.params.strings()) {
    spec.params.with(key, value);
  }
  return spec;
}

SuccessSpec success_from_args(const Args& args, const std::string& flag) {
  SuccessSpec spec = parse_success_spec(args.get(flag, "none"));
  spec.eps = args.get_double("success-eps", spec.eps);
  spec.delta = args.get_double("success-delta", spec.delta);
  spec.min_size = args.get_double("success-min-size", spec.min_size);
  spec.max_eps = args.get_double("success-max-eps", spec.max_eps);
  return spec;
}

/// Parses and validates --threads (delivery sharding; >= 1).
long long threads_from_args(const Args& args) {
  const auto threads = args.get_int("threads", 1);
  if (threads < 1) {
    throw std::invalid_argument("--threads must be >= 1, got " +
                                std::to_string(threads));
  }
  return threads;
}

/// The shared run/sweep diagnostic for --threads on an algorithm without
/// the knob (centralized baselines have nothing to shard).
void warn_threads_ignored(const std::string& algorithm) {
  std::fprintf(stderr,
               "note: algorithm '%s' does not declare a 'threads' "
               "parameter; --threads ignored for it\n",
               algorithm.c_str());
}

/// Applies --threads to an algorithm's parameters: set when the algorithm
/// declares the knob (an explicit --algo-params value wins), warn-and-skip
/// when it doesn't.
void apply_threads(AlgoSpec& spec, long long threads) {
  if (threads == 1 || spec.params.has("threads")) return;
  if (algorithm_declares(spec.name, "threads")) {
    spec.params.with("threads", threads);
  } else {
    warn_threads_ignored(spec.name);
  }
}

/// Parses --faults into a validated override bag (empty when the flag is
/// absent). Unknown keys and out-of-range values fail here, with the fault
/// catalogue, before anything runs.
ParamSet faults_from_args(const Args& args) {
  const std::string csv = args.get("faults", "");
  if (csv.empty()) return {};
  (void)parse_fault_plan(csv);  // full validation incl. ranges
  return parse_params_csv(csv, &fault_param_defaults());
}

/// The shared run/sweep diagnostic for --faults on an algorithm without
/// fault knobs (centralized baselines execute no network to disturb).
void warn_faults_ignored(const std::string& algorithm) {
  std::fprintf(stderr,
               "note: algorithm '%s' does not declare fault parameters; "
               "--faults ignored for it\n",
               algorithm.c_str());
}

/// Applies --faults key by key to an algorithm's parameters (explicit
/// --algo-params values win), warn-and-skip for non-declaring algorithms.
void apply_faults(AlgoSpec& spec, const ParamSet& faults) {
  if (faults.values().empty()) return;
  if (!algorithm_declares(spec.name, "loss")) {
    warn_faults_ignored(spec.name);
    return;
  }
  for (const auto& [key, value] : faults.values()) {
    if (!spec.params.has(key)) spec.params.with(key, value);
  }
}

/// Parses --reliability into a validated override bag (empty when absent),
/// the exact --faults pattern for the rel_* key set.
ParamSet reliability_from_args(const Args& args) {
  const std::string csv = args.get("reliability", "");
  if (csv.empty()) return {};
  (void)parse_reliability_plan(csv);  // full validation incl. ranges
  return parse_params_csv(csv, &reliability_param_defaults());
}

/// The shared run/sweep diagnostic for --reliability (or explicit rel_*
/// params) on an algorithm without the reliability knobs.
void warn_reliability_ignored(const std::string& algorithm) {
  std::fprintf(stderr,
               "note: algorithm '%s' does not declare reliability "
               "parameters; --reliability ignored for it\n",
               algorithm.c_str());
}

/// Applies --reliability key by key (explicit --algo-params values win),
/// warn-and-skip for non-declaring algorithms.
void apply_reliability(AlgoSpec& spec, const ParamSet& reliability) {
  if (reliability.values().empty()) return;
  if (!algorithm_declares(spec.name, "rel_mode")) {
    warn_reliability_ignored(spec.name);
    return;
  }
  for (const auto& [key, value] : reliability.values()) {
    if (!spec.params.has(key)) spec.params.with(key, value);
  }
}

/// Parses --telemetry into a validated override bag (empty when absent),
/// the --faults pattern for the tel_* key set.
ParamSet telemetry_from_args(const Args& args) {
  const std::string csv = args.get("telemetry", "");
  if (csv.empty()) return {};
  (void)parse_telemetry_plan(csv);  // full validation incl. ranges
  return parse_params_csv(csv, &telemetry_param_defaults());
}

/// Reads a capture-file flag (--metrics / --trace): empty string when the
/// flag is absent, throws on a bare flag with no target.
std::string capture_path(const Args& args, const char* flag) {
  if (!args.has(flag)) return {};
  const std::string path = args.get(flag);
  if (path.empty() || path == "1") {
    throw std::invalid_argument(std::string("--") + flag +
                                " needs a target (--" + std::string(flag) +
                                "=FILE, or - for stdout)");
  }
  return path;
}

/// Arms the tel_* facets implied by the capture flags on top of an explicit
/// --telemetry / spec bag: --metrics needs metric rows, --trace needs phase
/// spans and (for the counter tracks) the protocol probes. Explicit keys
/// win, so --telemetry=tel_probes=0 --trace=t.json still disables probes.
void arm_capture_facets(ParamSet& telemetry, bool metrics, bool trace) {
  if (metrics && !telemetry.has("tel_metrics")) {
    telemetry.with("tel_metrics", 1);
  }
  if (trace) {
    if (!telemetry.has("tel_trace")) telemetry.with("tel_trace", 1);
    if (!telemetry.has("tel_probes")) telemetry.with("tel_probes", 1);
  }
}

/// The shared run/sweep diagnostic for telemetry flags on an algorithm
/// without the tel_* knobs (centralized baselines run no engine to watch).
void warn_telemetry_ignored(const std::string& algorithm) {
  std::fprintf(stderr,
               "note: algorithm '%s' does not declare telemetry "
               "parameters; --telemetry/--metrics/--trace ignored for it\n",
               algorithm.c_str());
}

/// Applies the telemetry bag key by key (explicit --algo-params values
/// win), warn-and-skip for non-declaring algorithms.
void apply_telemetry(AlgoSpec& spec, const ParamSet& telemetry) {
  if (telemetry.values().empty()) return;
  if (!algorithm_declares(spec.name, "tel_metrics")) {
    warn_telemetry_ignored(spec.name);
    return;
  }
  for (const auto& [key, value] : telemetry.values()) {
    if (!spec.params.has(key)) spec.params.with(key, value);
  }
}

/// Writes a telemetry capture to `path` ("-" = stdout); false after an
/// error message when the file cannot be opened. The "wrote" notice goes to
/// stderr so --json=- output stays clean JSON.
bool write_capture(const std::string& path, const std::string& text,
                   const char* what) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
  return true;
}

/// "algorithm#row/trial seed=S" — stamps a sweep capture entry so the rows
/// of a concatenated metrics file (and the process names of a combined
/// trace) stay attributable to their trial.
std::string capture_label(const TelemetryCapture::Entry& e) {
  return e.algorithm + "#" + std::to_string(e.row) + "/" +
         std::to_string(e.trial) + " seed=" + std::to_string(e.seed);
}

int cmd_run(const Args& args) {
  const auto scenario = args.get("scenario", "planted_near_clique");
  const auto algo = args.get("algo", "dist_near_clique");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const ScenarioSpec sspec =
      parse_scenario_spec(scenario, args.get("params", ""), seed);
  AlgoSpec aspec = parse_algo_spec(algo, args.get("algo-params", ""), seed);
  apply_threads(aspec, threads_from_args(args));
  apply_faults(aspec, faults_from_args(args));
  apply_reliability(aspec, reliability_from_args(args));

  // Telemetry: --metrics/--trace pick capture targets and arm the matching
  // tel_* facets; --telemetry tunes stride/bounds (and wins on conflicts).
  const std::string metrics_path = capture_path(args, "metrics");
  const std::string trace_path = capture_path(args, "trace");
  ParamSet telemetry = telemetry_from_args(args);
  arm_capture_facets(telemetry, !metrics_path.empty(), !trace_path.empty());
  apply_telemetry(aspec, telemetry);

  // --profile: opt-in engine per-phase profiling (same declare-or-warn
  // convention as --threads; an explicit --algo-params=profile=.. wins).
  const bool profiled = args.get_bool("profile");
  if (profiled && !aspec.params.has("profile")) {
    if (algorithm_declares(algo, "profile")) {
      aspec.params.with("profile", 1);
    } else {
      std::fprintf(stderr,
                   "note: algorithm '%s' does not declare a 'profile' "
                   "parameter; --profile ignored for it\n",
                   algo.c_str());
    }
  }

  // --repeat=N re-runs the (fixed-seed, hence identical) execution N times
  // and --time reports min/median/mean wall-clock over the repeats — the
  // scenario build is excluded, so the numbers isolate the engine+protocol.
  // min is the honest headline on a noisy machine; median shows the spread.
  const auto repeat = args.get_int("repeat", 1);
  if (repeat < 1) {
    throw std::invalid_argument("--repeat must be >= 1, got " +
                                std::to_string(repeat));
  }
  const bool timed = args.get_bool("time");

  const Instance inst = ScenarioRegistry::global().make(sspec);
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(repeat));
  std::optional<AlgoResult> last;
  for (long long i = 0; i < repeat; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    last = AlgorithmRegistry::global().run(inst.graph, aspec);
    seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  const AlgoResult& result = *last;
  const auto clusters = result.clusters();

  // Stall post-mortem: an aborted run (stall guard / round limit) exits
  // nonzero with the engine's diagnosis on stderr, so scripts can tell
  // "protocol found nothing" (exit 0, empty clusters) from "the run never
  // finished". Capture files are still written below — a trace of a
  // stalled run is exactly what you want to look at.
  const int exit_code = result.aborted ? 3 : 0;
  if (result.aborted) {
    std::fprintf(stderr, "%s", result.stall.summary().c_str());
  }

  // Telemetry capture outputs. A missing sink despite a capture flag means
  // the request never reached a network run (apply_telemetry warned).
  if (!metrics_path.empty() || !trace_path.empty()) {
    if (result.telemetry == nullptr) {
      std::fprintf(stderr,
                   "note: no telemetry captured (algorithm '%s' ran "
                   "without tel_* parameters)\n",
                   algo.c_str());
    } else {
      if (!metrics_path.empty() &&
          !write_capture(metrics_path,
                         telemetry_metrics_jsonl(*result.telemetry),
                         "metrics")) {
        return 2;
      }
      if (!trace_path.empty() &&
          !write_capture(trace_path,
                         telemetry_trace_json(*result.telemetry) + "\n",
                         "trace")) {
        return 2;
      }
    }
  }

  std::vector<double> sorted = seconds;
  std::sort(sorted.begin(), sorted.end());
  const double t_min = sorted.front();
  const double t_median = sorted[sorted.size() / 2];
  double t_mean = 0;
  for (const double s : seconds) t_mean += s;
  t_mean /= static_cast<double>(seconds.size());

  const auto overlap_of = [&](const std::vector<NodeId>& members) {
    std::size_t overlap = 0;
    for (const NodeId v : members) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++overlap;
      }
    }
    return overlap;
  };

  if (args.has("json")) {
    // Bare --json (Args stores "1") and --json=- print to stdout; any other
    // value is a file path, matching sweep's --json=FILE.
    const std::string target = args.get("json");
    JsonWriter w;
    w.begin_object();
    w.key("scenario").begin_object().key("family").value(scenario);
    w.key("seed").value(seed);
    w.key("n").value(static_cast<std::uint64_t>(inst.graph.n()));
    w.key("m").value(static_cast<std::uint64_t>(inst.graph.m()));
    w.key("planted").value(static_cast<std::uint64_t>(inst.planted.size()));
    w.end_object();
    w.key("algorithm")
        .begin_object()
        .key("name")
        .value(algo)
        .key("model")
        .value(cost_model_name(result.model))
        .end_object();
    w.key("rounds").value(result.stats.rounds);
    w.key("bits").value(result.stats.bits);
    w.key("max_msg_bits").value(result.stats.max_message_bits);
    w.key("local_ops").value(result.local_ops);
    w.key("aborted").value(result.aborted);
    // Full engine counters as one object (the legacy top-level keys above
    // stay for existing consumers; "stats" is the complete record).
    w.key("stats");
    result.stats.to_json(w);
    if (result.aborted) {
      w.key("stall");
      result.stall.to_json(w);
    }
    if (profiled) {
      const NetProfile& pr = result.profile;
      w.key("profile")
          .begin_object()
          .key("stage_seconds")
          .value(pr.stage_seconds)
          .key("deliver_seconds")
          .value(pr.deliver_seconds)
          .key("fused_seconds")
          .value(pr.fused_seconds)
          .key("wake_seconds")
          .value(pr.wake_seconds)
          .key("arena_bytes_total")
          .value(pr.arena_bytes_total)
          .key("arena_bytes_peak_shard")
          .value(pr.arena_bytes_peak_shard)
          .key("lane_msgs_peak")
          .value(pr.lane_msgs_peak)
          .key("delayed_msgs_peak")
          .value(pr.delayed_msgs_peak)
          .key("broadcast_payload_bytes_saved")
          .value(pr.broadcast_payload_bytes_saved)
          .end_object();
    }
    if (timed) {
      w.key("timing")
          .begin_object()
          .key("repeats")
          .value(static_cast<std::uint64_t>(seconds.size()))
          .key("min_seconds")
          .value(t_min)
          .key("median_seconds")
          .value(t_median)
          .key("mean_seconds")
          .value(t_mean)
          .end_object();
    }
    w.key("clusters").begin_array();
    for (const auto& [label, members] : clusters) {
      w.begin_object()
          .key("label")
          .value(static_cast<std::uint64_t>(label))
          .key("size")
          .value(static_cast<std::uint64_t>(members.size()))
          .key("density")
          .value(set_density(inst.graph, members))
          .key("planted_overlap")
          .value(static_cast<std::uint64_t>(overlap_of(members)))
          .end_object();
    }
    w.end_array();
    w.end_object();
    if (target.empty() || target == "1" || target == "-") {
      std::printf("%s\n", w.str().c_str());
    } else {
      std::ofstream out(target);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", target.c_str());
        return 2;
      }
      out << w.str() << "\n";
      std::printf("wrote %s\n", target.c_str());
    }
    return exit_code;
  }

  std::printf("scenario %s (seed %llu): n=%u, m=%zu, planted=%zu",
              scenario.c_str(), static_cast<unsigned long long>(seed),
              inst.graph.n(), inst.graph.m(), inst.planted.size());
  if (!inst.planted.empty()) {
    std::printf(", density(planted)=%.4f",
                set_density(inst.graph, inst.planted));
  }
  std::printf("\nalgorithm %s [%s]: %s\n", algo.c_str(),
              cost_model_name(result.model), result.cost_summary().c_str());
  if (timed) {
    std::printf("wall-clock over %zu run%s: min %.3fs, median %.3fs, "
                "mean %.3fs\n",
                seconds.size(), seconds.size() == 1 ? "" : "s", t_min,
                t_median, t_mean);
  }
  if (profiled) {
    // Per-phase engine seconds of the last run. fused covers the 1-thread
    // clean-run stage+deliver pass (stage/deliver stay 0 there); bytes
    // saved counts lane payload copies avoided by broadcast dedup.
    const NetProfile& pr = result.profile;
    std::printf(
        "per-phase: stage %.3fs, deliver %.3fs, fused %.3fs, wake %.3fs; "
        "broadcast payload bytes saved: %llu\n",
        pr.stage_seconds, pr.deliver_seconds, pr.fused_seconds,
        pr.wake_seconds,
        static_cast<unsigned long long>(pr.broadcast_payload_bytes_saved));
  }
  std::printf("near-cliques found: %zu\n", clusters.size());
  for (const auto& [label, members] : clusters) {
    std::printf("  label %llu: %zu nodes, density %.4f, %zu/%zu of planted\n",
                static_cast<unsigned long long>(label), members.size(),
                set_density(inst.graph, members), overlap_of(members),
                inst.planted.size());
  }
  if (clusters.empty()) {
    std::printf(
        "  none — randomized algorithms succeed with constant probability; "
        "try another --seed\n");
  }
  if (args.has("dot")) {
    const auto path = args.get("dot");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 2;
    }
    out << to_dot(inst.graph, clusters);
    std::printf("wrote %s (render with: dot -Tsvg %s)\n", path.c_str(),
                path.c_str());
  }
  return exit_code;
}

int cmd_sweep(const Args& args) {
  SweepSpec spec;
  if (args.has("spec")) {
    // Spec-file mode: the JSON document is the whole configuration;
    // --title and the --json output target still apply on top. Any other
    // experiment-defining flag would be silently dead, so reject it.
    for (const char* flag :
         {"scenario", "params", "algos", "algo", "algo-params", "grid",
          "trials", "seed", "seq-seeds", "threads", "faults", "reliability",
          "telemetry", "success", "success2", "success-eps",
          "success-delta", "success-min-size", "success-max-eps"}) {
      if (args.has(flag)) {
        throw std::invalid_argument(
            std::string("--") + flag +
            " cannot be combined with --spec; put it in the spec document "
            "(only --title, --json, --metrics and --trace apply on top)");
      }
    }
    const std::string path = args.get("spec");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read spec file %s\n", path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    spec = sweep_spec_from_json(buf.str());
    if (args.has("title")) spec.title = args.get("title");
    if (spec.title.empty()) spec.title = "nearclique sweep";
  } else {
    if (!args.has("scenario")) {
      std::fprintf(stderr,
                   "error: sweep requires --scenario=FAMILY or --spec=FILE "
                   "(see nearclique list-scenarios)\n");
      return 2;
    }
    spec.title = args.get("title", "nearclique sweep");
    spec.scenario_family = args.get("scenario");
    const ScenarioSpec base = parse_scenario_spec(
        spec.scenario_family, args.get("params", ""), /*seed=*/1);
    spec.scenario_params = base.params;
    for (const auto& item : split_algos(
             args.get("algos", args.get("algo", "dist_near_clique")))) {
      spec.algorithms.push_back(
          parse_algo_item(item, args.get("algo-params", "")));
    }
    // Bracket params are the canonical per-algorithm form; a shared
    // --algo-params list silently applies every key to every algorithm,
    // which is ambiguous (and usually a validation error) in a comparison.
    if (!args.get("algo-params", "").empty() && spec.algorithms.size() > 1) {
      std::fprintf(stderr,
                   "warning: --algo-params applies every key to all %zu "
                   "listed algorithms; prefer per-algorithm brackets, e.g. "
                   "--algos='dist_near_clique[eps=0.2],peeling[eps=0.2]'\n",
                   spec.algorithms.size());
    }
    spec.axes = parse_grid(args.get("grid", ""));
    spec.threads = static_cast<std::size_t>(threads_from_args(args));
    spec.faults = faults_from_args(args);
    spec.reliability = reliability_from_args(args);
    spec.telemetry = telemetry_from_args(args);
    const auto trials = args.get_int("trials", 5);
    const auto seed = args.get_int("seed", 1);
    if (trials < 1) {
      throw std::invalid_argument("--trials must be >= 1, got " +
                                  std::to_string(trials));
    }
    if (seed < 0) {
      throw std::invalid_argument("--seed must be >= 0, got " +
                                  std::to_string(seed));
    }
    spec.trials = static_cast<std::size_t>(trials);
    spec.seed_base = static_cast<std::uint64_t>(seed);
    spec.seeds = args.get_bool("seq-seeds") ? SeedSchedule::kSequential
                                            : SeedSchedule::kSalted;
    spec.success = success_from_args(args, "success");
    spec.success2 = success_from_args(args, "success2");
  }
  // Capture targets apply on top of both entry paths (like --json): the
  // implied tel_* facets land in spec.telemetry, where the sweep runner
  // distributes them to declaring algorithms.
  const std::string metrics_path = capture_path(args, "metrics");
  const std::string trace_path = capture_path(args, "trace");
  arm_capture_facets(spec.telemetry, !metrics_path.empty(),
                     !trace_path.empty());

  // Shared diagnostics for both entry paths: sharding and faults only
  // reach algorithms that declare the knobs; say so instead of silently
  // running the rest clean/serial.
  for (const auto& algo : spec.algorithms) {
    if (spec.threads > 1 && !algorithm_declares(algo.name, "threads")) {
      warn_threads_ignored(algo.name);
    }
    if (!spec.faults.values().empty() &&
        !algorithm_declares(algo.name, "loss")) {
      warn_faults_ignored(algo.name);
    }
    if (!spec.reliability.values().empty() &&
        !algorithm_declares(algo.name, "rel_mode")) {
      warn_reliability_ignored(algo.name);
    }
    if (!spec.telemetry.values().empty() &&
        !algorithm_declares(algo.name, "tel_metrics")) {
      warn_telemetry_ignored(algo.name);
    }
  }

  TelemetryCapture capture;
  const bool capturing = !metrics_path.empty() || !trace_path.empty();
  const auto rows = run_sweep(spec, capturing ? &capture : nullptr);

  if (capturing) {
    if (capture.entries.empty()) {
      std::fprintf(stderr,
                   "note: no telemetry captured (no listed algorithm ran "
                   "with tel_* parameters)\n");
    } else {
      if (!metrics_path.empty()) {
        // One concatenated JSONL stream; every trial's meta line carries
        // its "algorithm#row/trial seed=S" label.
        std::string text;
        for (const auto& e : capture.entries) {
          text += telemetry_metrics_jsonl(*e.telemetry, capture_label(e));
        }
        if (!write_capture(metrics_path, text, "metrics")) return 2;
      }
      if (!trace_path.empty()) {
        // One combined trace document: each trial is its own pid, so
        // Perfetto shows the trials as separate named process groups.
        JsonWriter w;
        w.begin_object().key("traceEvents").begin_array();
        std::uint64_t pid = 1;
        for (const auto& e : capture.entries) {
          telemetry_trace_events(w, *e.telemetry, pid++, capture_label(e));
        }
        w.end_array().end_object();
        if (!write_capture(trace_path, w.str() + "\n", "trace")) return 2;
      }
    }
  }

  const std::string json_target = args.get("json", "");
  const bool json_to_stdout = json_target == "-";
  if (json_to_stdout) {
    std::cout << sweep_json_lines(rows) << std::flush;
    std::cerr << "\n=== " << spec.title << " ===\n"
              << sweep_table(rows).str() << std::flush;
    return 0;
  }
  if (!json_target.empty()) {
    std::ofstream out(json_target);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_target.c_str());
      return 2;
    }
    out << sweep_json_lines(rows);
    std::printf("wrote %zu JSON rows to %s\n", rows.size(),
                json_target.c_str());
  }
  std::cout << "\n=== " << spec.title << " ===\n"
            << sweep_table(rows).str() << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (command == "list-scenarios") {
      std::printf("registered scenario families:\n%s",
                  describe_families(ScenarioRegistry::global()).c_str());
      return 0;
    }
    if (command == "list-algorithms") {
      std::printf("registered algorithms:\n%s",
                  describe_algorithms(AlgorithmRegistry::global()).c_str());
      return 0;
    }
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "help" || command == "--help") return usage(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (...) {
    // A non-std exception thrown mid-run (user protocol code can throw
    // anything) must still exit with a clean error status, not ripple out
    // of main into std::terminate/abort.
    std::fprintf(stderr, "error: algorithm threw a non-standard exception\n");
    return 2;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n\n", command.c_str());
  return usage(stderr);
}
