#pragma once

#include <cstdint>

#include "proptest/adjacency_oracle.hpp"
#include "util/rng.hpp"

namespace nc {

/// Sample-based rho-clique property tester in the dense-graph model, in the
/// style of Goldreich, Goldwasser & Ron [10] (the construction our paper's
/// Section 4 distributes). The tester:
///
///   1. samples a set U of m1 nodes and probes all of its internal pairs;
///   2. for every subset X of U, classifies a second sample Y of m2 nodes
///      against X (membership in K_{2eps^2}(X), m1 probes per node);
///   3. estimates |K| from Y, then estimates T membership on Y by probing
///      Y x Y pairs among estimated K members;
///   4. accepts iff some X yields an estimated |T_eps(X)| >= (rho - eps) n.
///
/// Query complexity is O(m1^2 + 2^m1 * m2^2) — a function of rho and eps
/// only, independent of n (experiment-verified in tests). Constants follow
/// the Theta(log(1/eps)/eps^2)-sample heuristic of [10] rather than the
/// exact constants of their proof.
struct RhoCliqueTesterParams {
  double rho = 0.5;   ///< clique size fraction under test
  double eps = 0.1;   ///< distance parameter
  std::uint32_t m1 = 0;  ///< 0 = auto from eps
  std::uint32_t m2 = 0;  ///< 0 = auto from eps
};

struct RhoCliqueTesterResult {
  bool accept = false;
  double best_t_fraction = 0.0;  ///< max over X of estimated |T|/n
  std::uint64_t queries = 0;
};

/// Runs the tester once (constant success probability, as in [10]).
RhoCliqueTesterResult rho_clique_test(AdjacencyOracle& oracle,
                                      const RhoCliqueTesterParams& params,
                                      Rng& rng);

}  // namespace nc
