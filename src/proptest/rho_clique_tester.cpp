#include "proptest/rho_clique_tester.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "graph/metrics.hpp"
#include "util/bitvec.hpp"

namespace nc {

namespace {
std::uint32_t auto_m1(double eps) {
  // Theta(log(1/eps) / eps) sample, capped so 2^m1 stays enumerable.
  const double m = std::ceil(std::log2(1.0 / eps) / eps * 0.5);
  return static_cast<std::uint32_t>(std::clamp(m, 4.0, 14.0));
}
std::uint32_t auto_m2(double eps) {
  const double m = std::ceil(std::log2(1.0 / eps) / (eps * eps) * 0.5);
  return static_cast<std::uint32_t>(std::clamp(m, 16.0, 400.0));
}
}  // namespace

RhoCliqueTesterResult rho_clique_test(AdjacencyOracle& oracle,
                                      const RhoCliqueTesterParams& params,
                                      Rng& rng) {
  RhoCliqueTesterResult out;
  const NodeId n = oracle.n();
  if (n == 0) return out;
  const std::uint32_t m1 = params.m1 != 0 ? params.m1 : auto_m1(params.eps);
  const std::uint32_t m2 = params.m2 != 0 ? params.m2 : auto_m2(params.eps);
  const auto start_queries = oracle.queries();

  // Sample U and Y (with replacement for Y, as the analysis allows).
  const auto u_idx = rng.sample_without_replacement(n, std::min(m1, n));
  std::vector<NodeId> u_set(u_idx.begin(), u_idx.end());
  const auto s = static_cast<std::uint32_t>(u_set.size());
  std::vector<NodeId> y_set(m2);
  for (auto& y : y_set) y = static_cast<NodeId>(rng.next_below(n));

  // Classify Y against U once: adjacency masks (m1 probes per y).
  std::vector<std::uint64_t> y_mask(y_set.size());
  for (std::size_t i = 0; i < y_set.size(); ++i) {
    std::uint64_t mask = 0;
    for (std::uint32_t j = 0; j < s; ++j) {
      if (y_set[i] != u_set[j] && oracle.query(y_set[i], u_set[j])) {
        mask |= 1ULL << j;
      }
    }
    y_mask[i] = mask;
  }
  // Pairwise adjacency within Y (m2^2 / 2 probes), reused for every X.
  std::vector<BitVec> y_adj(y_set.size());
  for (auto& b : y_adj) b.assign_zero(y_set.size());
  for (std::size_t i = 0; i < y_set.size(); ++i) {
    for (std::size_t j = i + 1; j < y_set.size(); ++j) {
      if (y_set[i] != y_set[j] && oracle.query(y_set[i], y_set[j])) {
        y_adj[i].set(j);
        y_adj[j].set(i);
      }
    }
  }

  const double inner = 2.0 * params.eps * params.eps;
  std::vector<std::size_t> need_inner(s + 1);
  for (std::uint32_t c = 0; c <= s; ++c) {
    need_inner[c] = k_threshold(c, inner);
  }

  const std::uint64_t total = s >= 1 ? (1ULL << s) - 1 : 0;
  double best_fraction = 0.0;
  BitVec k_hat(y_set.size());
  for (std::uint64_t x = 1; x <= total; ++x) {
    const auto size_x = static_cast<std::uint32_t>(std::popcount(x));
    // \hat{K}: Y-members estimated to lie in K_{2eps^2}(X).
    k_hat.assign_zero(y_set.size());
    std::size_t k_count = 0;
    for (std::size_t i = 0; i < y_set.size(); ++i) {
      if (static_cast<std::size_t>(std::popcount(x & y_mask[i])) >=
          need_inner[size_x]) {
        k_hat.set(i);
        ++k_count;
      }
    }
    // \hat{T}: estimated K members adjacent to a (1-eps) fraction of \hat{K}.
    const std::size_t need_outer = k_threshold(k_count, params.eps);
    std::size_t t_count = 0;
    for (std::size_t i = 0; i < y_set.size(); ++i) {
      if (!k_hat.test(i)) continue;
      if (y_adj[i].count_and(k_hat) >= need_outer) ++t_count;
    }
    const double fraction =
        static_cast<double>(t_count) / static_cast<double>(y_set.size());
    best_fraction = std::max(best_fraction, fraction);
  }

  out.best_t_fraction = best_fraction;
  out.accept = best_fraction >= params.rho - params.eps;
  out.queries = oracle.queries() - start_queries;
  return out;
}

}  // namespace nc
