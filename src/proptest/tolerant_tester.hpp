#pragma once

#include "proptest/rho_clique_tester.hpp"

namespace nc {

/// The tolerant near-clique tester the paper's construction yields
/// (Section 1: "our construction is (eps^3, eps)-tolerant"): decide whether
/// the graph contains an eps^3-near clique of size rho*n (answer YES with
/// constant probability) or whether no rho*n-node set is an eps-near clique
/// (answer NO with constant probability). Implemented by majority-voting
/// `repetitions` independent runs of the sample-based tester, which is the
/// standard amplification and mirrors the paper's boosting wrapper.
struct TolerantTesterParams {
  double rho = 0.5;
  double eps = 0.2;          ///< the *outer* epsilon; inner promise is eps^3
  unsigned repetitions = 5;  ///< majority vote
  std::uint32_t m1 = 0;      ///< 0 = auto
  std::uint32_t m2 = 0;      ///< 0 = auto
};

struct TolerantTesterResult {
  bool contains_near_clique = false;  ///< the tester's verdict
  unsigned accepting_runs = 0;
  std::uint64_t queries = 0;  ///< total across repetitions
};

/// Runs the tolerant tester.
TolerantTesterResult tolerant_near_clique_test(
    AdjacencyOracle& oracle, const TolerantTesterParams& params, Rng& rng);

}  // namespace nc
