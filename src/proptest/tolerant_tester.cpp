#include "proptest/tolerant_tester.hpp"

namespace nc {

TolerantTesterResult tolerant_near_clique_test(
    AdjacencyOracle& oracle, const TolerantTesterParams& params, Rng& rng) {
  TolerantTesterResult out;
  const auto start = oracle.queries();
  RhoCliqueTesterParams single;
  single.rho = params.rho;
  single.eps = params.eps;
  single.m1 = params.m1;
  single.m2 = params.m2;
  for (unsigned i = 0; i < params.repetitions; ++i) {
    Rng run_rng = rng.derive(i + 1);
    const auto res = rho_clique_test(oracle, single, run_rng);
    if (res.accept) ++out.accepting_runs;
  }
  out.contains_near_clique = 2 * out.accepting_runs > params.repetitions;
  out.queries = oracle.queries() - start;
  return out;
}

}  // namespace nc
