#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Query-counting adjacency oracle: the access model of dense-graph property
/// testing (Goldreich-Goldwasser-Ron [10]). Testers may only probe "is
/// {u, v} an edge?"; the oracle counts probes so experiments can verify that
/// query complexity is poly(1/eps) and independent of n.
class AdjacencyOracle {
 public:
  explicit AdjacencyOracle(const Graph& g) : graph_(&g) {}

  /// Probes the pair {u, v}.
  [[nodiscard]] bool query(NodeId u, NodeId v) {
    ++queries_;
    return graph_->has_edge(u, v);
  }

  /// Number of vertices (known to the tester).
  [[nodiscard]] NodeId n() const noexcept { return graph_->n(); }

  /// Probes spent so far.
  [[nodiscard]] std::uint64_t queries() const noexcept { return queries_; }

  /// Resets the counter.
  void reset_queries() noexcept { queries_ = 0; }

 private:
  const Graph* graph_;
  std::uint64_t queries_ = 0;
};

}  // namespace nc
