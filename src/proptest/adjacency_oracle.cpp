#include "proptest/adjacency_oracle.hpp"

// Header-only; this file anchors the translation unit.
