#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/accounting.hpp"
#include "runtime/telemetry.hpp"
#include "util/ids.hpp"

namespace nc {

/// Computation model an algorithm is accounted under. The registry stamps
/// every result with its model so comparisons (experiment E10, the sweep
/// runner) can report model-appropriate costs side by side.
enum class CostModel {
  kCongest,  ///< distributed, O(log n)-bit messages: rounds/bits meaningful
  kLocal,    ///< distributed, unbounded messages: local work dominates
  kCentral,  ///< centralized: local_ops only, rounds/bits are zero
};

/// Display name used in tables and JSON ("CONGEST", "LOCAL", "central").
const char* cost_model_name(CostModel model);

/// Common outcome of any registered algorithm (distributed protocol or
/// centralized baseline): a per-node labelling plus unified cost accounting.
/// Centralized baselines report their model-appropriate subset — stats is
/// all zeros and local_ops carries the work measure.
struct AlgoResult {
  CostModel model = CostModel::kCongest;

  /// Per-node output labels; kBottom = not in any reported near-clique.
  /// Centralized baselines label their found set with its smallest member.
  std::vector<Label> labels;

  /// Rounds / messages / wire bits (distributed models; zeros for central).
  RunStats stats;

  /// Summed local computation: protocol local ops, Bron-Kerbosch
  /// expansions (neighbors2), adjacency probes (ggr_find), or edge-work
  /// proxies for the centralized heuristics.
  std::uint64_t local_ops = 0;

  /// True when the run was cut short (round limit, stall, or an exhausted
  /// local-work budget).
  bool aborted = false;

  /// Engine per-phase profile (network-backed algorithms run with the
  /// 'profile' parameter set; all-zero otherwise — profiling costs the hot
  /// path clock reads, so it stays opt-in).
  NetProfile profile;

  /// Telemetry capture (network-backed algorithms run with tel_* params
  /// set; nullptr otherwise). Shared so sweep capture rows can hold the
  /// same object the adapter filled without copying sample columns.
  std::shared_ptr<Telemetry> telemetry;

  /// Termination post-mortem of an aborted network run (stall / round
  /// limit); !triggered() for clean runs and non-network baselines.
  StallReport stall;

  /// Groups nodes by non-bottom label.
  [[nodiscard]] std::map<Label, std::vector<NodeId>> clusters() const;

  /// The largest output cluster (empty when everything is bottom).
  [[nodiscard]] std::vector<NodeId> largest_cluster() const;

  /// The model's headline cost: rounds under CONGEST, local_ops under
  /// LOCAL and central (the E10 comparison convention).
  [[nodiscard]] std::uint64_t headline_cost() const;

  /// One-line, model-appropriate cost summary for CLI output.
  [[nodiscard]] std::string cost_summary() const;
};

}  // namespace nc
