#include "algo/result.hpp"

#include <sstream>

namespace nc {

const char* cost_model_name(CostModel model) {
  switch (model) {
    case CostModel::kCongest:
      return "CONGEST";
    case CostModel::kLocal:
      return "LOCAL";
    case CostModel::kCentral:
      return "central";
  }
  return "?";
}

std::map<Label, std::vector<NodeId>> AlgoResult::clusters() const {
  std::map<Label, std::vector<NodeId>> out;
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] != kBottom) out[labels[v]].push_back(v);
  }
  return out;
}

std::vector<NodeId> AlgoResult::largest_cluster() const {
  std::vector<NodeId> best;
  for (const auto& [label, members] : clusters()) {
    (void)label;
    if (members.size() > best.size()) best = members;
  }
  return best;
}

std::uint64_t AlgoResult::headline_cost() const {
  return model == CostModel::kCongest ? stats.rounds : local_ops;
}

std::string AlgoResult::cost_summary() const {
  std::ostringstream os;
  switch (model) {
    case CostModel::kCongest:
      os << stats.summary() << ", local_ops=" << local_ops;
      break;
    case CostModel::kLocal:
      os << "rounds=" << stats.rounds
         << ", max_message_bits=" << stats.max_message_bits
         << ", local_ops=" << local_ops;
      break;
    case CostModel::kCentral:
      os << "local_ops=" << local_ops << " (centralized; no message costs)";
      break;
  }
  if (aborted) os << " [aborted]";
  return os.str();
}

}  // namespace nc
