#include "algo/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "baselines/ggr_find.hpp"
#include "baselines/grasp.hpp"
#include "baselines/neighbors2.hpp"
#include "baselines/peeling.hpp"
#include "baselines/shingles.hpp"
#include "core/boosting.hpp"
#include "runtime/faults.hpp"
#include "runtime/reliability.hpp"
#include "runtime/shard.hpp"
#include "runtime/telemetry.hpp"
#include "util/rng.hpp"

namespace nc {

namespace {

/// Per-node labels for a centralized baseline's found set: every member
/// carries the set's smallest node id as its label (found is sorted).
std::vector<Label> labels_for_set(NodeId n, const std::vector<NodeId>& found) {
  std::vector<Label> labels(n, kBottom);
  if (found.empty()) return labels;
  const Label label = found.front();
  for (const NodeId v : found) labels[v] = label;
  return labels;
}

AlgorithmRegistry build_global_registry() {
  AlgorithmRegistry r;

  // The adapters reproduce the exact configurations the benches and
  // examples historically built by hand (p = pn / n, seed into the network
  // RNG, run_boosted for the versions wrapper), so pre-registry fixed-seed
  // results are preserved bit-for-bit.
  // The network-backed protocol also declares the complete fault-plan key
  // set (loss, ge_*, delay_*, crash_*, fault_seed — src/runtime/faults.hpp)
  // and the reliability-service keys (rel_mode, rel_ack_timeout, rel_max_retx,
  // rel_fec_window, rel_fec_repair, rel_seed — src/runtime/reliability.hpp),
  // so adversity and its countermeasures ride the ordinary param-bag /
  // sweep-axis machinery: `--algo-params=loss=0.05,rel_mode=1` and
  // `--grid=algo.loss=0:0.05:0.1` just work.
  AlgoParams dnc_defaults = AlgoParams()
                                .with("eps", 0.2)
                                .with("pn", 9.0)
                                .with("versions", 1)
                                .with("window", 0)
                                .with("max_rounds", 32'000'000)
                                .with("threads", 1)
                                .with("profile", 0);
  for (const auto& [key, value] : fault_param_defaults().values()) {
    dnc_defaults.with(key, value);
  }
  for (const auto& [key, value] : reliability_param_defaults().values()) {
    dnc_defaults.with(key, value);
  }
  // Telemetry keys (tel_metrics, tel_trace, tel_probes, tel_stride,
  // tel_max_samples, tel_max_spans — src/runtime/telemetry.hpp) ride the
  // same param-bag machinery; the adapter owns the capture sink and the
  // result carries it out as AlgoResult::telemetry.
  for (const auto& [key, value] : telemetry_param_defaults().values()) {
    dnc_defaults.with(key, value);
  }
  r.add({"dist_near_clique",
         "Algorithm DistNearClique (Section 4) with the Section 4.1 "
         "time-bound and boosting wrappers (versions > 1); fault-plan "
         "params inject message loss / delay / churn, rel_* params enable "
         "the ACK/FEC reliability service, tel_* params capture run "
         "telemetry (per-round metrics, phase traces, protocol probes)",
         CostModel::kCongest, std::move(dnc_defaults),
         [](const Graph& g, const AlgoParams& p, std::uint64_t seed) {
           DriverConfig cfg;
           cfg.proto.eps = p.get_double("eps");
           cfg.proto.p = p.get_double("pn") / static_cast<double>(g.n());
           cfg.net.seed = seed;
           cfg.net.max_rounds =
               static_cast<std::uint64_t>(p.get_double("max_rounds"));
           cfg.net.faults = fault_plan_from_params(p);
           cfg.net.reliability = reliability_plan_from_params(p);
           // Delivery sharding: a pure performance knob — fixed-seed runs
           // are bit-identical at every thread count.
           const auto threads = p.get_int("threads");
           if (threads < 1 || threads > static_cast<std::int64_t>(kMaxShards)) {
             throw std::invalid_argument(
                 "algorithm parameter 'threads' must be in [1, " +
                 std::to_string(kMaxShards) + "]");
           }
           cfg.net.threads = static_cast<unsigned>(threads);
           const auto lambda = p.get_int("versions");
           if (lambda < 1 || lambda > 1023) {
             throw std::invalid_argument(
                 "algorithm parameter 'versions' must be in [1, 1023]");
           }
           // Opt-in engine profiling ('profile=1', or `run --profile`):
           // the network fills the local sink during the run and the
           // result carries it out, so per-phase seconds reach the CLI
           // without anyone writing a bench.
           NetProfile prof;
           if (p.get_int("profile") != 0) cfg.net.profile = &prof;
           // Opt-in telemetry: the sink outlives the network (shared_ptr
           // on the result), so callers read samples after the run ends.
           TelemetryPlan tplan = telemetry_plan_from_params(p);
           std::shared_ptr<Telemetry> tsink;
           if (tplan.requested()) {
             tsink = std::make_shared<Telemetry>();
             tplan.sink = tsink.get();
             cfg.net.telemetry = tplan;
           }
           AlgoResult out = to_algo_result(run_boosted(
               g, cfg, static_cast<std::uint16_t>(lambda),
               static_cast<std::uint64_t>(p.get_double("window"))));
           out.profile = prof;
           out.telemetry = std::move(tsink);
           return out;
         }});

  r.add({"shingles",
         "Section 3 shingles algorithm (CONGEST, O(1) rounds; Claim 1 "
         "counterexample applies)",
         CostModel::kCongest,
         AlgoParams().with("eps", 0.1).with("min_size", 2),
         [](const Graph& g, const AlgoParams& p, std::uint64_t seed) {
           ShinglesParams sp;
           sp.eps = p.get_double("eps");
           sp.min_size = static_cast<std::uint32_t>(p.get_int("min_size"));
           auto res = run_shingles(g, sp, seed);
           AlgoResult out;
           out.labels = std::move(res.labels);
           out.stats = res.stats;
           return out;
         }});

  r.add({"neighbors2",
         "Section 3 neighbours'-neighbours algorithm (LOCAL: Delta*log n "
         "bit messages, NP-hard local clique search)",
         CostModel::kLocal,
         AlgoParams().with("clique_budget", 2'000'000),
         [](const Graph& g, const AlgoParams& p, std::uint64_t seed) {
           Neighbors2Params np;
           np.clique_budget =
               static_cast<std::size_t>(p.get_double("clique_budget"));
           auto res = run_neighbors2(g, np, seed);
           AlgoResult out;
           out.labels = std::move(res.labels);
           out.stats = res.stats;
           out.local_ops = res.total_expansions;
           out.aborted = res.any_budget_exhausted;
           return out;
         }});

  r.add({"peeling",
         "centralized greedy min-degree peeling (objective=near_clique "
         "keeps the largest eps-near-clique suffix; objective=densest "
         "keeps the max-average-degree suffix)",
         CostModel::kCentral,
         AlgoParams().with("eps", 0.2).with("objective", "near_clique"),
         [](const Graph& g, const AlgoParams& p, std::uint64_t /*seed*/) {
           const std::string& objective = p.get_string("objective");
           std::vector<NodeId> found;
           if (objective == "near_clique") {
             found = largest_near_clique_by_peeling(g, p.get_double("eps"));
           } else if (objective == "densest") {
             found = densest_subgraph_by_peeling(g);
           } else {
             throw std::invalid_argument(
                 "algorithm 'peeling' parameter 'objective' must be "
                 "'near_clique' or 'densest', got '" +
                 objective + "'");
           }
           AlgoResult out;
           out.labels = labels_for_set(g.n(), found);
           out.local_ops = g.m();  // one peel = O(m) edge work
           return out;
         }});

  r.add({"grasp",
         "GRASP quasi-clique heuristic of Abello et al. [1] (centralized "
         "multistart greedy + local search)",
         CostModel::kCentral,
         AlgoParams()
             .with("gamma", 0.9)
             .with("iterations", 16)
             .with("rcl_alpha", 0.3)
             .with("local_search_passes", 4),
         [](const Graph& g, const AlgoParams& p, std::uint64_t seed) {
           GraspParams gp;
           gp.gamma = p.get_double("gamma");
           gp.iterations = static_cast<unsigned>(p.get_int("iterations"));
           gp.rcl_alpha = p.get_double("rcl_alpha");
           gp.local_search_passes =
               static_cast<unsigned>(p.get_int("local_search_passes"));
           Rng rng(seed);
           const auto found = grasp_quasi_clique(g, gp, rng);
           AlgoResult out;
           out.labels = labels_for_set(g.n(), found);
           out.local_ops =
               static_cast<std::uint64_t>(gp.iterations) * g.m();
           return out;
         }});

  r.add({"ggr_find",
         "Goldreich-Goldwasser-Ron approximate find [10] (the centralized "
         "construction DistNearClique distributes)",
         CostModel::kCentral,
         AlgoParams().with("eps", 0.2).with("sample_size", 9),
         [](const Graph& g, const AlgoParams& p, std::uint64_t seed) {
           Rng rng(seed);
           const auto res = ggr_approximate_find(
               g, p.get_double("eps"),
               static_cast<std::uint32_t>(p.get_int("sample_size")), rng);
           AlgoResult out;
           out.labels = labels_for_set(g.n(), res.found);
           out.local_ops = res.pair_queries;
           return out;
         }});

  return r;
}

}  // namespace

void AlgorithmRegistry::add(Algorithm algorithm) {
  const auto name = algorithm.name;
  if (!algorithms_.emplace(name, std::move(algorithm)).second) {
    throw std::invalid_argument("algorithm '" + name + "' registered twice");
  }
}

const AlgorithmRegistry::Algorithm& AlgorithmRegistry::algorithm(
    const std::string& name) const {
  const auto it = algorithms_.find(name);
  if (it == algorithms_.end()) {
    throw std::invalid_argument("unknown algorithm '" + name +
                                "'; known algorithms: " +
                                join_comma(names()));
  }
  return it->second;
}

AlgoResult AlgorithmRegistry::run(const Graph& g, const AlgoSpec& spec) const {
  const Algorithm& algo = algorithm(spec.name);
  const AlgoParams merged = merge_params(algo.defaults, spec.params,
                                         "algorithm '" + spec.name + "'");
  AlgoResult result = algo.run(g, merged, spec.seed);
  result.model = algo.model;
  return result;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const auto& [name, algo] : algorithms_) out.push_back(name);
  return out;
}

const AlgorithmRegistry& AlgorithmRegistry::global() {
  static const AlgorithmRegistry registry = build_global_registry();
  return registry;
}

AlgoResult run_algorithm(const Graph& g, const std::string& name,
                         const AlgoParams& params, std::uint64_t seed) {
  return AlgorithmRegistry::global().run(g, {name, params, seed});
}

bool algorithm_declares(const std::string& name, const std::string& key) {
  try {
    return AlgorithmRegistry::global().algorithm(name).defaults.has_number(
        key);
  } catch (const std::invalid_argument&) {
    return false;  // unknown algorithm: callers report the catalogue later
  }
}

AlgoSpec parse_algo_spec(const std::string& name,
                         const std::string& params_csv, std::uint64_t seed) {
  AlgoSpec spec;
  spec.name = name;
  spec.seed = seed;
  const ParamSet* declared = nullptr;
  try {
    declared = &AlgorithmRegistry::global().algorithm(name).defaults;
  } catch (const std::invalid_argument&) {
    // Unknown algorithm: parse numerically; run() reports the catalogue.
  }
  spec.params = parse_params_csv(params_csv, declared);
  return spec;
}

std::string describe_algorithms(const AlgorithmRegistry& registry) {
  std::ostringstream os;
  for (const auto& name : registry.names()) {
    const auto& algo = registry.algorithm(name);
    os << "  " << name << " [" << cost_model_name(algo.model) << "] — "
       << algo.description << "\n    defaults:"
       << describe_params(algo.defaults) << "\n";
  }
  return os.str();
}

AlgoResult to_algo_result(const NearCliqueResult& result) {
  AlgoResult out;
  out.model = CostModel::kCongest;
  out.labels = result.labels;
  out.stats = result.stats;
  out.local_ops = result.total_local_ops;
  out.aborted = result.aborted();
  out.stall = result.stall;
  return out;
}

}  // namespace nc
