#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algo/result.hpp"
#include "core/driver.hpp"
#include "graph/graph.hpp"
#include "util/paramset.hpp"

namespace nc {

/// Algorithm parameters use the shared registry param bag, exactly like
/// scenario parameters.
using AlgoParams = ParamSet;

/// A fully specified algorithm invocation: registered name, parameter
/// overrides on the algorithm's defaults, and the seed every random draw
/// derives from. Value-semantics and printable, mirroring ScenarioSpec, so
/// a (scenario, algorithm) pair fully describes an experiment trial.
struct AlgoSpec {
  std::string name;
  AlgoParams params;  ///< overrides; unset keys take the algorithm defaults
  std::uint64_t seed = 1;
};

/// Registry mapping algorithm names to adapters producing the common
/// AlgoResult. The symmetric half of the ScenarioRegistry: every comparison
/// entry point (E10, the sweep runner, the nearclique CLI, the examples)
/// resolves algorithms through this table, so adding an algorithm (or
/// baseline) is one registration instead of one more copy of config
/// plumbing.
///
/// Determinism contract: run() is a pure function of (graph, name, merged
/// params, seed) — repeated calls return identical AlgoResults.
class AlgorithmRegistry {
 public:
  using Runner = std::function<AlgoResult(
      const Graph& g, const AlgoParams& params, std::uint64_t seed)>;

  struct Algorithm {
    std::string name;
    std::string description;
    CostModel model;
    /// Declares the complete legal parameter set with its default values;
    /// a spec referencing any other key is rejected.
    AlgoParams defaults;
    Runner run;
  };

  /// Registers an algorithm. Throws std::invalid_argument on duplicates.
  void add(Algorithm algorithm);

  /// Looks up an algorithm. Throws std::invalid_argument (listing the known
  /// names) when absent.
  [[nodiscard]] const Algorithm& algorithm(const std::string& name) const;

  /// Runs a spec on `g`: validates the name and every override key, merges
  /// overrides onto the defaults, invokes the adapter and stamps the
  /// result's cost model. Throws std::invalid_argument with a
  /// self-explaining message on unknown names or parameters.
  [[nodiscard]] AlgoResult run(const Graph& g, const AlgoSpec& spec) const;

  /// Registered algorithm names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry with every built-in algorithm registered:
  /// dist_near_clique, shingles, neighbors2, peeling, grasp, ggr_find.
  static const AlgorithmRegistry& global();

 private:
  std::map<std::string, Algorithm> algorithms_;
};

/// Convenience: resolve through the global registry.
AlgoResult run_algorithm(const Graph& g, const std::string& name,
                         const AlgoParams& params, std::uint64_t seed);

/// True when the globally registered `name` declares a numeric parameter
/// `key` in its defaults; false for non-declaring or unknown algorithms.
/// The single rule behind every --threads forwarding decision (CLI, sweep
/// runner, trial runner), so "which algorithms take a threads knob" cannot
/// drift between entry points.
bool algorithm_declares(const std::string& name, const std::string& key);

/// Parses a "key=value,key=value" parameter list into a spec for `name`
/// (string-typed parameters of the algorithm parse verbatim). Throws
/// std::invalid_argument on malformed input.
AlgoSpec parse_algo_spec(const std::string& name,
                         const std::string& params_csv, std::uint64_t seed);

/// Human-readable catalogue of the registered algorithms with model and
/// defaults (what `nearclique list-algorithms` prints).
std::string describe_algorithms(const AlgorithmRegistry& registry);

/// Wraps a protocol outcome in the common result type (used by adapters and
/// by benches with bespoke drivers).
AlgoResult to_algo_result(const NearCliqueResult& result);

}  // namespace nc
