#include "graph/edge_list.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/builder.hpp"

namespace nc {

namespace {

[[noreturn]] void fail_at(const std::string& path, std::size_t line,
                          const std::string& why) {
  throw std::invalid_argument("edge list " + path + ":" +
                              std::to_string(line) + ": " + why);
}

bool is_comment(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  if (i == line.size()) return true;  // blank
  if (line[i] == '#' || line[i] == '%') return true;
  return line.compare(i, 2, "//") == 0;
}

/// Parses the leading unsigned integer of `text` starting at `pos` (after
/// skipping separators). Returns false when the line is exhausted.
bool next_id(const std::string& text, std::size_t& pos, std::uint64_t& out,
             bool& malformed) {
  while (pos < text.size() &&
         (std::isspace(static_cast<unsigned char>(text[pos])) ||
          text[pos] == ',' || text[pos] == ';')) {
    ++pos;
  }
  if (pos >= text.size()) return false;
  const std::size_t start = pos;
  std::uint64_t value = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
    if (value > kMaxEdgeListId) {
      malformed = true;
      return false;
    }
    ++pos;
  }
  if (pos == start) {  // no digits where an id was expected
    malformed = true;
    return false;
  }
  // The id must end at a separator (so "12x" is rejected, "12,34" is fine).
  if (pos < text.size() && !std::isspace(static_cast<unsigned char>(text[pos])) &&
      text[pos] != ',' && text[pos] != ';') {
    malformed = true;
    return false;
  }
  out = value;
  return true;
}

}  // namespace

Graph load_edge_list(const std::string& path, bool one_indexed) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("edge list " + path + ": cannot open file");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::uint64_t max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_comment(line)) continue;
    std::size_t pos = 0;
    bool malformed = false;
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!next_id(line, pos, u, malformed) ||
        !next_id(line, pos, v, malformed)) {
      fail_at(path, lineno,
              malformed ? "expected a numeric node id in '" + line + "'"
                        : "expected two node ids, got '" + line + "'");
    }
    if (one_indexed) {
      if (u == 0 || v == 0) {
        fail_at(path, lineno, "node id 0 in a one-indexed edge list");
      }
      --u;
      --v;
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (edges.empty()) {
    throw std::invalid_argument("edge list " + path + ": contains no edges");
  }
  GraphBuilder b(static_cast<NodeId>(max_id + 1));
  b.reserve(edges.size());
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

}  // namespace nc
