#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitvec.hpp"

namespace nc {

std::size_t ordered_internal_pairs(const Graph& g,
                                   const std::vector<NodeId>& d) {
  BitVec in_d(g.n());
  for (const NodeId v : d) in_d.set(v);
  std::size_t ordered = 0;
  for (const NodeId v : d) {
    for (const NodeId u : g.neighbors(v)) {
      if (in_d.test(u)) ++ordered;  // counts (v,u); (u,v) counted at u
    }
  }
  return ordered;
}

double set_density(const Graph& g, const std::vector<NodeId>& d) {
  if (d.size() <= 1) return 1.0;
  const auto pairs = static_cast<double>(d.size()) *
                     static_cast<double>(d.size() - 1);
  return static_cast<double>(ordered_internal_pairs(g, d)) / pairs;
}

bool is_near_clique(const Graph& g, const std::vector<NodeId>& d, double eps) {
  if (d.size() <= 1) return true;
  const std::size_t total = d.size() * (d.size() - 1);
  const std::size_t have = ordered_internal_pairs(g, d);
  // have >= (1-eps)*total, computed as have + eps*total >= total with a
  // half-ulp guard: use long double and compare missing pairs instead.
  const auto missing = static_cast<long double>(total - have);
  return missing <= static_cast<long double>(eps) *
                        static_cast<long double>(total) + 1e-9L;
}

bool is_clique(const Graph& g, const std::vector<NodeId>& d) {
  return ordered_internal_pairs(g, d) == d.size() * (d.size() - 1);
}

std::size_t neighbors_in_set(const Graph& g, NodeId v,
                             const std::vector<NodeId>& sorted_x) {
  const auto nb = g.neighbors(v);
  // Merge-count of two sorted ranges.
  std::size_t i = 0, j = 0, c = 0;
  while (i < nb.size() && j < sorted_x.size()) {
    if (nb[i] < sorted_x[j]) {
      ++i;
    } else if (nb[i] > sorted_x[j]) {
      ++j;
    } else {
      ++c;
      ++i;
      ++j;
    }
  }
  return c;
}

std::size_t k_threshold(std::size_t x_size, double eps) noexcept {
  // Smallest integer c with c >= (1-eps)*x_size. Computed via floor of
  // eps*x_size: c = x_size - floor(eps*x_size + tiny) is the exact
  // integer form of the paper's inequality |Gamma(v) ∩ X| >= (1-eps)|X|
  // (allowing at most floor(eps|X|) non-neighbors).
  const long double allowed =
      std::floor(static_cast<long double>(eps) *
                     static_cast<long double>(x_size) +
                 1e-9L);
  const auto allowed_sz = static_cast<std::size_t>(allowed);
  return x_size > allowed_sz ? x_size - allowed_sz : 0;
}

std::vector<NodeId> k_eps(const Graph& g, const std::vector<NodeId>& x,
                          double eps) {
  std::vector<NodeId> sorted_x = x;
  std::sort(sorted_x.begin(), sorted_x.end());
  const std::size_t need = k_threshold(sorted_x.size(), eps);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (neighbors_in_set(g, v, sorted_x) >= need) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> t_eps(const Graph& g, const std::vector<NodeId>& x,
                          double eps) {
  const auto k_inner = k_eps(g, x, 2.0 * eps * eps);
  const auto k_outer = k_eps(g, k_inner, eps);
  // Intersect (both sorted ascending by construction).
  std::vector<NodeId> out;
  std::set_intersection(k_outer.begin(), k_outer.end(), k_inner.begin(),
                        k_inner.end(), std::back_inserter(out));
  return out;
}

}  // namespace nc
