#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Graphviz (DOT) export of a graph with discovered near-cliques
/// highlighted — a release convenience for inspecting outputs visually
/// (`dot -Tsvg out.dot`). Each labelled cluster gets a colour; unlabelled
/// nodes stay grey. Edges inside a cluster are drawn bold.
///
/// `clusters` maps an output label to its (sorted) member set, exactly the
/// shape NearCliqueResult::clusters() returns.
std::string to_dot(const Graph& g,
                   const std::map<Label, std::vector<NodeId>>& clusters,
                   const std::string& graph_name = "near_cliques");

/// Plain export without highlighting.
std::string to_dot(const Graph& g, const std::string& graph_name = "graph");

}  // namespace nc
