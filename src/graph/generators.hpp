#pragma once

#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nc {

/// A generated instance: the graph plus the planted "interesting" node set
/// (empty when the family has none). `planted` is sorted ascending.
struct Instance {
  Graph graph;
  std::vector<NodeId> planted;
};

/// Instance-size cutoff at which the randomized families switch from the
/// exact reference pair loops to the O(n + m) streaming samplers. At or
/// below the cutoff the output for a given Rng is bit-identical to the
/// original O(n^2) implementations (the determinism regression suite pins
/// fixed-seed instances in this regime); above it the same distribution is
/// sampled with a different draw sequence, in time and memory proportional
/// to the output.
inline constexpr NodeId kStreamingCutoffN = 4096;

/// Erdos-Renyi G(n, p): every pair independently an edge. Dispatches to
/// `erdos_renyi_reference` for n <= kStreamingCutoffN and to
/// `erdos_renyi_streaming` beyond.
Graph erdos_renyi(NodeId n, double p_edge, Rng& rng);

/// The original exact sampler: one Bernoulli draw per pair, Theta(n^2) time.
/// Kept as the distributional ground truth for cross-checking the streaming
/// sampler (see tests/test_generator_streaming.cpp).
Graph erdos_renyi_reference(NodeId n, double p_edge, Rng& rng);

/// Geometric skip-sampling G(n, p): per row, jumps straight between
/// successive sampled neighbors, so the work is O(n + m) instead of one draw
/// per pair. Same distribution as the reference sampler, different draws.
Graph erdos_renyi_streaming(NodeId n, double p_edge, Rng& rng);

/// Adds each pair {u, v} with lo <= u < v < hi independently with
/// probability p. Exact pair loop when hi - lo <= kStreamingCutoffN,
/// geometric skip-sampling beyond — the shared Bernoulli-block primitive the
/// streaming families (and registry workloads) are built from.
void add_bernoulli_block(GraphBuilder& b, NodeId lo, NodeId hi, double p,
                         Rng& rng);

/// Parameters for the planted near-clique family used by most experiments.
///
/// A set D of `clique_size` nodes is planted so that D is *exactly* an
/// eps_missing-near clique: starting from a clique on D, exactly
/// floor(eps_missing * |D|(|D|-1)) ordered pairs (i.e. half that many
/// undirected edges) are removed, spread uniformly at random. The rest of
/// the graph is ER background with edge probability `background_p`, and
/// each D-to-outside pair is an edge with probability `halo_p` (a "halo"
/// that makes discovery non-trivial: with halo_p = 0 the component structure
/// gives D away). Node IDs are randomly permuted so ID-based tie-breaking
/// cannot favour the planted set.
struct PlantedNearCliqueParams {
  NodeId n = 200;
  NodeId clique_size = 100;
  double eps_missing = 0.0;   ///< fraction of ordered pairs missing inside D
  double background_p = 0.1;  ///< ER probability outside D
  double halo_p = 0.3;        ///< D-to-outside edge probability
  bool permute_ids = true;
};

/// Generates a planted near-clique instance; `planted` holds D. Streaming
/// (O(n + m + |D|^2)) above kStreamingCutoffN.
Instance planted_near_clique(const PlantedNearCliqueParams& params, Rng& rng);

/// The Claim 1 / Figure 1 counterexample family {G_n} for the shingles
/// algorithm: cliques C1, C2 of size delta*n/2 each, independent sets I1, I2
/// of size (1-delta)*n/2 each, complete bipartite connections
/// (I1,C1), (C1,C2), (C2,I2). The planted set is the clique C = C1 ∪ C2 of
/// size delta*n. Sizes are rounded so the four blocks partition n nodes.
/// `permute` randomizes IDs (Claim 1 holds for any IDs; the shingles
/// algorithm draws random IDs anyway).
Instance shingles_counterexample(NodeId n, double delta, Rng& rng,
                                 bool permute = true);

/// The Section 6 impossibility gadget: clique A (size n/2), path P
/// (length n/4) and clique B (size n/4), connected A - P - B in a line.
/// If `delete_a_edges` is set, A's internal edges are removed (the paper's
/// second scenario, where B becomes the largest near-clique). `planted`
/// holds B's nodes. IDs are deterministic: A first, then P, then B, so that
/// the two scenarios differ only in A's internal edges (as the
/// indistinguishability argument requires).
Instance barbell_gadget(NodeId n, bool delete_a_edges);

/// Node count of the B-side clique and the first node of B for a barbell of
/// size n (exposed so experiment E11 can compare per-node outputs).
struct BarbellLayout {
  NodeId a_size;
  NodeId path_len;
  NodeId b_size;
  NodeId b_first;
};
BarbellLayout barbell_layout(NodeId n);

/// Corollary 2.3 family: a strict clique of size about n / (log2 log2 n)^alpha
/// planted in sparse ER background.
Instance sublinear_clique(NodeId n, double alpha, double background_p,
                          Rng& rng);

/// Random geometric graph on the unit square: nodes connect iff within
/// `radius`. Models the radio ad-hoc networks of the paper's motivation [12].
/// Uniform-grid bucketing (cell width >= radius, 3x3-neighborhood probes)
/// makes this O(n + output) expected at every n; the edge set is identical
/// to the brute-force all-pairs scan for the same Rng, since the points
/// alone determine the graph.
Graph random_geometric(NodeId n, double radius, Rng& rng);

/// Planted-partition ("community") graph: k equal groups, within-group edge
/// probability p_in, across-group p_out. `planted` holds group 0. Models the
/// "tightly knit communities" of the web-analysis motivation [15].
/// Streaming above kStreamingCutoffN.
Instance planted_partition(NodeId n, unsigned k, double p_in, double p_out,
                           Rng& rng);

/// Chung-Lu style power-law graph with expected degree sequence
/// w_i ∝ (i+1)^(-1/(gamma-1)) scaled to average degree `avg_deg`, with an
/// optional planted near-clique community of size `community`. Models web
/// graphs (PageRank / SALSA motivation). Above kStreamingCutoffN the
/// background is sampled by drawing ~avg_deg*n/2 endpoint pairs from a
/// Walker/Vose alias table over the expected degrees (O(n + m), duplicates
/// deduplicated at CSR build) instead of the exact per-pair loop.
Instance power_law_web(NodeId n, double gamma, double avg_deg,
                       NodeId community, double eps_missing, Rng& rng);

/// Applies a uniformly random relabelling to a graph and a tracked set.
/// O(n + m): permutes the CSR arrays directly (Graph::from_csr), no edge
/// list or builder round-trip.
Instance permute_instance(const Graph& g, const std::vector<NodeId>& tracked,
                          Rng& rng);

}  // namespace nc
