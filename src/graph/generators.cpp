#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/builder.hpp"

namespace nc {

namespace {

/// Adds each pair from `pairs` as an edge with probability p.
void add_bernoulli_pairs(GraphBuilder& b, NodeId lo_a, NodeId hi_a, NodeId lo_b,
                         NodeId hi_b, double p, Rng& rng) {
  for (NodeId u = lo_a; u < hi_a; ++u) {
    const NodeId start = (lo_b > u + 1) ? lo_b : u + 1;
    for (NodeId v = start; v < hi_b; ++v) {
      if (rng.next_bernoulli(p)) b.add_edge(u, v);
    }
  }
}

std::vector<NodeId> iota_range(NodeId lo, NodeId hi) {
  std::vector<NodeId> v;
  v.reserve(hi - lo);
  for (NodeId i = lo; i < hi; ++i) v.push_back(i);
  return v;
}

}  // namespace

Graph erdos_renyi(NodeId n, double p_edge, Rng& rng) {
  GraphBuilder b(n);
  add_bernoulli_pairs(b, 0, n, 0, n, p_edge, rng);
  return b.build();
}

Instance permute_instance(const Graph& g, const std::vector<NodeId>& tracked,
                          Rng& rng) {
  std::vector<NodeId> perm(g.n());
  for (NodeId v = 0; v < g.n(); ++v) perm[v] = v;
  rng.shuffle(perm);
  GraphBuilder b(g.n());
  for (const auto& [u, v] : g.edge_list()) b.add_edge(perm[u], perm[v]);
  std::vector<NodeId> mapped;
  mapped.reserve(tracked.size());
  for (const NodeId v : tracked) mapped.push_back(perm[v]);
  std::sort(mapped.begin(), mapped.end());
  return {b.build(), std::move(mapped)};
}

Instance planted_near_clique(const PlantedNearCliqueParams& params, Rng& rng) {
  assert(params.clique_size <= params.n);
  const NodeId d = params.clique_size;
  GraphBuilder b(params.n);

  // Enumerate all undirected pairs inside D = [0, d) and knock out exactly
  // floor(eps_missing * d * (d-1)) / 2 of them (ordered-pair accounting per
  // Definition 1: each removed undirected pair removes two ordered pairs).
  std::vector<std::pair<NodeId, NodeId>> d_pairs;
  d_pairs.reserve(static_cast<std::size_t>(d) * (d - 1) / 2);
  for (NodeId u = 0; u < d; ++u) {
    for (NodeId v = u + 1; v < d; ++v) d_pairs.emplace_back(u, v);
  }
  const auto ordered_total = static_cast<std::size_t>(d) * (d - 1);
  const auto ordered_missing = static_cast<std::size_t>(
      std::floor(params.eps_missing * static_cast<double>(ordered_total)));
  const std::size_t pairs_to_remove = ordered_missing / 2;
  rng.shuffle(d_pairs);
  for (std::size_t i = pairs_to_remove; i < d_pairs.size(); ++i) {
    b.add_edge(d_pairs[i].first, d_pairs[i].second);
  }

  // Background among non-D nodes, halo between D and the rest.
  add_bernoulli_pairs(b, d, params.n, d, params.n, params.background_p, rng);
  add_bernoulli_pairs(b, 0, d, d, params.n, params.halo_p, rng);

  const Graph g = b.build();
  const auto planted = iota_range(0, d);
  if (!params.permute_ids) return {g, planted};
  return permute_instance(g, planted, rng);
}

Instance shingles_counterexample(NodeId n, double delta, Rng& rng,
                                 bool permute) {
  // Block sizes: |C1| = |C2| = delta*n/2, |I1| = |I2| = (1-delta)*n/2.
  // Rounding: make C1, C2 equal, then split the remainder across I1, I2.
  const auto c_half = static_cast<NodeId>(
      std::llround(delta * static_cast<double>(n) / 2.0));
  const NodeId c_total = 2 * c_half;
  assert(c_total <= n);
  const NodeId i_total = n - c_total;
  const NodeId i1 = i_total / 2;

  // Layout: [C1 | C2 | I1 | I2].
  const NodeId c1_lo = 0, c1_hi = c_half;
  const NodeId c2_lo = c_half, c2_hi = c_total;
  const NodeId i1_lo = c_total, i1_hi = c_total + i1;
  const NodeId i2_lo = i1_hi, i2_hi = n;

  GraphBuilder b(n);
  b.add_clique(iota_range(c1_lo, c1_hi));
  b.add_clique(iota_range(c2_lo, c2_hi));
  b.add_biclique(iota_range(i1_lo, i1_hi), iota_range(c1_lo, c1_hi));
  b.add_biclique(iota_range(c1_lo, c1_hi), iota_range(c2_lo, c2_hi));
  b.add_biclique(iota_range(c2_lo, c2_hi), iota_range(i2_lo, i2_hi));

  const Graph g = b.build();
  const auto planted = iota_range(0, c_total);  // C = C1 ∪ C2
  if (!permute) return {g, planted};
  return permute_instance(g, planted, rng);
}

BarbellLayout barbell_layout(NodeId n) {
  const NodeId a = n / 2;
  const NodeId b = n / 4;
  const NodeId p = n - a - b;
  return {a, p, b, static_cast<NodeId>(a + p)};
}

Instance barbell_gadget(NodeId n, bool delete_a_edges) {
  const auto lay = barbell_layout(n);
  GraphBuilder b(n);
  if (!delete_a_edges) b.add_clique(iota_range(0, lay.a_size));
  // Path from A through P to B. Node a_size-1 is A's port; b_first is B's.
  std::vector<NodeId> path;
  path.push_back(lay.a_size - 1);
  for (NodeId i = 0; i < lay.path_len; ++i) path.push_back(lay.a_size + i);
  path.push_back(lay.b_first);
  b.add_path(path);
  b.add_clique(iota_range(lay.b_first, n));
  return {b.build(), iota_range(lay.b_first, n)};
}

Instance sublinear_clique(NodeId n, double alpha, double background_p,
                          Rng& rng) {
  const double loglog = std::log2(std::max(4.0, std::log2(std::max(4.0, static_cast<double>(n)))));
  auto size = static_cast<NodeId>(
      std::floor(static_cast<double>(n) / std::pow(loglog, alpha)));
  size = std::max<NodeId>(2, std::min(size, n));
  PlantedNearCliqueParams params;
  params.n = n;
  params.clique_size = size;
  params.eps_missing = 0.0;  // strict clique, as Corollary 2.3 requires
  params.background_p = background_p;
  params.halo_p = background_p;
  return planted_near_clique(params, rng);
}

Graph random_geometric(NodeId n, double radius, Rng& rng) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.next_double();
    y = rng.next_double();
  }
  const double r2 = radius * radius;
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pts[u].first - pts[v].first;
      const double dy = pts[u].second - pts[v].second;
      if (dx * dx + dy * dy <= r2) b.add_edge(u, v);
    }
  }
  return b.build();
}

Instance planted_partition(NodeId n, unsigned k, double p_in, double p_out,
                           Rng& rng) {
  assert(k >= 1);
  GraphBuilder b(n);
  const NodeId group_size = n / k;
  auto group_of = [&](NodeId v) { return std::min(v / group_size, k - 1); };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = group_of(u) == group_of(v) ? p_in : p_out;
      if (rng.next_bernoulli(p)) b.add_edge(u, v);
    }
  }
  const Graph g = b.build();
  return permute_instance(g, iota_range(0, group_size), rng);
}

Instance power_law_web(NodeId n, double gamma, double avg_deg,
                       NodeId community, double eps_missing, Rng& rng) {
  assert(community <= n);
  // Chung-Lu: P[edge uv] = min(1, w_u * w_v / W).
  std::vector<double> w(n);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -1.0 / (gamma - 1.0));
    total += w[i];
  }
  const double scale = avg_deg * static_cast<double>(n) / total;
  for (auto& x : w) x *= scale;
  const double big_w = avg_deg * static_cast<double>(n);

  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = std::min(1.0, w[u] * w[v] / big_w);
      if (rng.next_bernoulli(p)) b.add_edge(u, v);
    }
  }
  // Overlay a dense community on the last `community` nodes (low-degree tail,
  // so the community is invisible to degree-based heuristics).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = n - community; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
  }
  const auto ordered_total =
      static_cast<std::size_t>(community) * (community - 1);
  const auto remove = static_cast<std::size_t>(std::floor(
                          eps_missing * static_cast<double>(ordered_total))) /
                      2;
  rng.shuffle(pairs);
  for (std::size_t i = remove; i < pairs.size(); ++i) {
    b.add_edge(pairs[i].first, pairs[i].second);
  }
  const Graph g = b.build();
  return permute_instance(g, iota_range(n - community, n), rng);
}

}  // namespace nc
