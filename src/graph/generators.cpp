#include "graph/generators.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/alias.hpp"

namespace nc {

namespace {

/// Adds each pair from `pairs` as an edge with probability p — the exact
/// reference path: one Bernoulli draw per pair, preserved bit-for-bit for
/// small instances (the determinism suite pins graphs produced this way).
void add_bernoulli_pairs(GraphBuilder& b, NodeId lo_a, NodeId hi_a, NodeId lo_b,
                         NodeId hi_b, double p, Rng& rng) {
  for (NodeId u = lo_a; u < hi_a; ++u) {
    const NodeId start = (lo_b > u + 1) ? lo_b : u + 1;
    for (NodeId v = start; v < hi_b; ++v) {
      if (rng.next_bernoulli(p)) b.add_edge(u, v);
    }
  }
}

/// Number of failures before the next success of a Bernoulli(p) sequence
/// (geometric inversion). Requires 0 < p < 1.
std::uint64_t geometric_skip(double p, Rng& rng) {
  const double u = rng.next_double();
  const double skip = std::floor(std::log1p(-u) / std::log1p(-p));
  // Clamp before the float->int cast; 1e18 already overshoots any node range.
  return skip >= 1e18 ? static_cast<std::uint64_t>(1e18)
                      : static_cast<std::uint64_t>(skip);
}

/// Streams the row {u} x [lo, hi): each pair (u, v) is an edge with
/// probability p, sampled with geometric skips (O(1 + edges emitted)).
void stream_row(GraphBuilder& b, NodeId u, NodeId lo, NodeId hi, double p,
                Rng& rng) {
  if (lo >= hi || p <= 0.0) return;
  if (p >= 1.0) {
    for (NodeId v = lo; v < hi; ++v) b.add_edge(u, v);
    return;
  }
  std::uint64_t v = static_cast<std::uint64_t>(lo) + geometric_skip(p, rng);
  while (v < hi) {
    b.add_edge(u, static_cast<NodeId>(v));
    v += 1 + geometric_skip(p, rng);
  }
}

/// Streams the rectangle [lo_a, hi_a) x [lo_b, hi_b), disjoint ranges.
void stream_rectangle(GraphBuilder& b, NodeId lo_a, NodeId hi_a, NodeId lo_b,
                      NodeId hi_b, double p, Rng& rng) {
  for (NodeId u = lo_a; u < hi_a; ++u) stream_row(b, u, lo_b, hi_b, p, rng);
}

/// Streams the upper triangle of [lo, hi): pairs u < v, each with
/// probability p.
void stream_triangle(GraphBuilder& b, NodeId lo, NodeId hi, double p,
                     Rng& rng) {
  if (hi - lo < 2) return;
  for (NodeId u = lo; u + 1 < hi; ++u) stream_row(b, u, u + 1, hi, p, rng);
}

/// Samples `k` distinct values from [0, bound) uniformly (Floyd's
/// algorithm, O(k) expected). Requires k <= bound.
std::unordered_set<std::uint64_t> sample_distinct_u64(std::uint64_t bound,
                                                      std::uint64_t k,
                                                      Rng& rng) {
  assert(k <= bound);
  std::unordered_set<std::uint64_t> picked;
  picked.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = bound - k; j < bound; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    if (!picked.insert(t).second) picked.insert(j);
  }
  return picked;
}

/// Number of undirected pairs to knock out of a d-clique so that exactly
/// floor(eps * d(d-1)) ordered pairs are missing (Definition 1 accounting).
std::uint64_t knockout_count(NodeId d, double eps) {
  const auto ordered_total =
      static_cast<std::uint64_t>(d) * (d > 0 ? d - 1 : 0);
  const auto ordered_missing = static_cast<std::uint64_t>(
      std::floor(eps * static_cast<double>(ordered_total)));
  return std::min(ordered_missing / 2, ordered_total / 2);
}

/// Adds the clique on [lo, lo + d) minus a uniformly random set of `remove`
/// pairs. O(d^2) — proportional to the edges emitted.
void add_knocked_out_clique(GraphBuilder& b, NodeId lo, NodeId d,
                            std::uint64_t remove, Rng& rng) {
  const auto total_pairs = static_cast<std::uint64_t>(d) * (d - 1) / 2;
  const auto removed =
      remove > 0 ? sample_distinct_u64(total_pairs, remove, rng)
                 : std::unordered_set<std::uint64_t>{};
  std::uint64_t k = 0;
  for (NodeId u = 0; u < d; ++u) {
    for (NodeId v = u + 1; v < d; ++v, ++k) {
      if (remove == 0 || !removed.contains(k)) {
        b.add_edge(lo + u, lo + v);
      }
    }
  }
}

std::vector<NodeId> iota_range(NodeId lo, NodeId hi) {
  std::vector<NodeId> v;
  v.reserve(hi - lo);
  for (NodeId i = lo; i < hi; ++i) v.push_back(i);
  return v;
}

/// Expected G(n, p)-block edge count, for builder reservations. Capped so a
/// degenerate dense request can never turn the capacity hint into an
/// allocation bomb.
std::size_t expected_edges(double pairs, double p) {
  const double e = pairs * std::min(1.0, std::max(0.0, p));
  return static_cast<std::size_t>(std::min(e, 268435456.0)) + 16;
}

}  // namespace

void add_bernoulli_block(GraphBuilder& b, NodeId lo, NodeId hi, double p,
                         Rng& rng) {
  if (hi - lo <= kStreamingCutoffN) {
    add_bernoulli_pairs(b, lo, hi, lo, hi, p, rng);
  } else {
    stream_triangle(b, lo, hi, p, rng);
  }
}

Graph erdos_renyi_reference(NodeId n, double p_edge, Rng& rng) {
  GraphBuilder b(n);
  add_bernoulli_pairs(b, 0, n, 0, n, p_edge, rng);
  return std::move(b).build();
}

Graph erdos_renyi_streaming(NodeId n, double p_edge, Rng& rng) {
  GraphBuilder b(n);
  b.reserve(expected_edges(0.5 * static_cast<double>(n) *
                               (static_cast<double>(n) - 1.0),
                           p_edge));
  stream_triangle(b, 0, n, p_edge, rng);
  return std::move(b).build();
}

Graph erdos_renyi(NodeId n, double p_edge, Rng& rng) {
  return n <= kStreamingCutoffN ? erdos_renyi_reference(n, p_edge, rng)
                                : erdos_renyi_streaming(n, p_edge, rng);
}

Instance permute_instance(const Graph& g, const std::vector<NodeId>& tracked,
                          Rng& rng) {
  const NodeId n = g.n();
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  rng.shuffle(perm);

  // Permute the CSR arrays directly: place old row v at new row perm[v] with
  // every neighbor relabelled, then restore per-row sort order.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets[perm[v] + 1] = g.degree(v);
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<NodeId> adj(offsets.back());
  for (NodeId v = 0; v < n; ++v) {
    std::size_t cursor = offsets[perm[v]];
    for (const NodeId u : g.neighbors(v)) adj[cursor++] = perm[u];
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  std::vector<NodeId> mapped;
  mapped.reserve(tracked.size());
  for (const NodeId v : tracked) mapped.push_back(perm[v]);
  std::sort(mapped.begin(), mapped.end());
  return {Graph::from_csr(n, std::move(offsets), std::move(adj)),
          std::move(mapped)};
}

Instance planted_near_clique(const PlantedNearCliqueParams& params, Rng& rng) {
  assert(params.clique_size <= params.n);
  const NodeId d = params.clique_size;
  const NodeId n = params.n;
  GraphBuilder b(n);

  if (n <= kStreamingCutoffN) {
    // Exact reference path (bit-for-bit the original implementation).
    // Enumerate all undirected pairs inside D = [0, d) and knock out exactly
    // floor(eps_missing * d * (d-1)) / 2 of them (ordered-pair accounting per
    // Definition 1: each removed undirected pair removes two ordered pairs).
    std::vector<std::pair<NodeId, NodeId>> d_pairs;
    d_pairs.reserve(static_cast<std::size_t>(d) * (d - 1) / 2);
    for (NodeId u = 0; u < d; ++u) {
      for (NodeId v = u + 1; v < d; ++v) d_pairs.emplace_back(u, v);
    }
    const auto ordered_total = static_cast<std::size_t>(d) * (d - 1);
    const auto ordered_missing = static_cast<std::size_t>(
        std::floor(params.eps_missing * static_cast<double>(ordered_total)));
    const std::size_t pairs_to_remove = ordered_missing / 2;
    rng.shuffle(d_pairs);
    for (std::size_t i = pairs_to_remove; i < d_pairs.size(); ++i) {
      b.add_edge(d_pairs[i].first, d_pairs[i].second);
    }
    // Background among non-D nodes, halo between D and the rest.
    add_bernoulli_pairs(b, d, n, d, n, params.background_p, rng);
    add_bernoulli_pairs(b, 0, d, d, n, params.halo_p, rng);
  } else {
    // Streaming path: knock out a sampled pair set instead of shuffling the
    // full pair enumeration, and skip-sample background and halo.
    const double rest = static_cast<double>(n - d);
    b.reserve(static_cast<std::size_t>(d) * (d - 1) / 2 +
              expected_edges(0.5 * rest * (rest - 1.0), params.background_p) +
              expected_edges(static_cast<double>(d) * rest, params.halo_p));
    add_knocked_out_clique(b, 0, d, knockout_count(d, params.eps_missing),
                           rng);
    stream_triangle(b, d, n, params.background_p, rng);
    stream_rectangle(b, 0, d, d, n, params.halo_p, rng);
  }

  const Graph g = std::move(b).build();
  auto planted = iota_range(0, d);
  if (!params.permute_ids) return {g, std::move(planted)};
  return permute_instance(g, planted, rng);
}

Instance shingles_counterexample(NodeId n, double delta, Rng& rng,
                                 bool permute) {
  // Block sizes: |C1| = |C2| = delta*n/2, |I1| = |I2| = (1-delta)*n/2.
  // Rounding: make C1, C2 equal, then split the remainder across I1, I2.
  const auto c_half = static_cast<NodeId>(
      std::llround(delta * static_cast<double>(n) / 2.0));
  const NodeId c_total = 2 * c_half;
  assert(c_total <= n);
  const NodeId i_total = n - c_total;
  const NodeId i1 = i_total / 2;

  // Layout: [C1 | C2 | I1 | I2].
  const NodeId c1_lo = 0, c1_hi = c_half;
  const NodeId c2_lo = c_half, c2_hi = c_total;
  const NodeId i1_lo = c_total, i1_hi = c_total + i1;
  const NodeId i2_lo = i1_hi, i2_hi = n;

  GraphBuilder b(n);
  b.add_clique(iota_range(c1_lo, c1_hi));
  b.add_clique(iota_range(c2_lo, c2_hi));
  b.add_biclique(iota_range(i1_lo, i1_hi), iota_range(c1_lo, c1_hi));
  b.add_biclique(iota_range(c1_lo, c1_hi), iota_range(c2_lo, c2_hi));
  b.add_biclique(iota_range(c2_lo, c2_hi), iota_range(i2_lo, i2_hi));

  const Graph g = std::move(b).build();
  const auto planted = iota_range(0, c_total);  // C = C1 ∪ C2
  if (!permute) return {g, planted};
  return permute_instance(g, planted, rng);
}

BarbellLayout barbell_layout(NodeId n) {
  const NodeId a = n / 2;
  const NodeId b = n / 4;
  const NodeId p = n - a - b;
  return {a, p, b, static_cast<NodeId>(a + p)};
}

Instance barbell_gadget(NodeId n, bool delete_a_edges) {
  const auto lay = barbell_layout(n);
  GraphBuilder b(n);
  if (!delete_a_edges) b.add_clique(iota_range(0, lay.a_size));
  // Path from A through P to B. Node a_size-1 is A's port; b_first is B's.
  std::vector<NodeId> path;
  path.push_back(lay.a_size - 1);
  for (NodeId i = 0; i < lay.path_len; ++i) path.push_back(lay.a_size + i);
  path.push_back(lay.b_first);
  b.add_path(path);
  b.add_clique(iota_range(lay.b_first, n));
  return {std::move(b).build(), iota_range(lay.b_first, n)};
}

Instance sublinear_clique(NodeId n, double alpha, double background_p,
                          Rng& rng) {
  const double loglog = std::log2(std::max(4.0, std::log2(std::max(4.0, static_cast<double>(n)))));
  auto size = static_cast<NodeId>(
      std::floor(static_cast<double>(n) / std::pow(loglog, alpha)));
  size = std::max<NodeId>(2, std::min(size, n));
  PlantedNearCliqueParams params;
  params.n = n;
  params.clique_size = size;
  params.eps_missing = 0.0;  // strict clique, as Corollary 2.3 requires
  params.background_p = background_p;
  params.halo_p = background_p;
  return planted_near_clique(params, rng);
}

Graph random_geometric(NodeId n, double radius, Rng& rng) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& [x, y] : pts) {
    x = rng.next_double();
    y = rng.next_double();
  }
  GraphBuilder b(n);
  if (n == 0 || radius <= 0.0) return std::move(b).build();

  // Uniform grid with cell width >= radius: any edge lies within a 3x3 cell
  // neighborhood, so the scan is O(n + output) expected for uniform points.
  // The edge set equals the all-pairs scan's exactly — the points alone
  // determine the graph.
  std::size_t dim =
      radius >= 1.0 ? 1 : static_cast<std::size_t>(1.0 / radius);
  const auto cap =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(n))) + 1;
  dim = std::max<std::size_t>(1, std::min(dim, cap));
  const std::size_t cells = dim * dim;
  const auto cell_coord = [&](double x) {
    return std::min(dim - 1,
                    static_cast<std::size_t>(x * static_cast<double>(dim)));
  };

  // Counting-sort the points into cells.
  std::vector<std::size_t> off(cells + 1, 0);
  for (const auto& [x, y] : pts) ++off[cell_coord(y) * dim + cell_coord(x) + 1];
  for (std::size_t i = 1; i <= cells; ++i) off[i] += off[i - 1];
  std::vector<NodeId> order(n);
  {
    std::vector<std::size_t> cursor(off.begin(), off.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      order[cursor[cell_coord(pts[v].second) * dim + cell_coord(pts[v].first)]++] = v;
    }
  }

  const double r2 = radius * radius;
  const auto test_pair = [&](NodeId a, NodeId c) {
    const double dx = pts[a].first - pts[c].first;
    const double dy = pts[a].second - pts[c].second;
    if (dx * dx + dy * dy <= r2) b.add_edge(a, c);
  };
  // Forward half of the 8-neighborhood: each unordered cell pair visited once.
  constexpr std::array<std::pair<int, int>, 4> kForward{
      {{1, 0}, {-1, 1}, {0, 1}, {1, 1}}};
  for (std::size_t cy = 0; cy < dim; ++cy) {
    for (std::size_t cx = 0; cx < dim; ++cx) {
      const std::size_t c = cy * dim + cx;
      for (std::size_t i = off[c]; i < off[c + 1]; ++i) {
        for (std::size_t j = i + 1; j < off[c + 1]; ++j) {
          test_pair(order[i], order[j]);
        }
      }
      for (const auto& [dx, dy] : kForward) {
        const auto nx = static_cast<std::ptrdiff_t>(cx) + dx;
        const auto ny = static_cast<std::ptrdiff_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(dim) ||
            ny >= static_cast<std::ptrdiff_t>(dim)) {
          continue;
        }
        const auto c2 = static_cast<std::size_t>(ny) * dim +
                        static_cast<std::size_t>(nx);
        for (std::size_t i = off[c]; i < off[c + 1]; ++i) {
          for (std::size_t j = off[c2]; j < off[c2 + 1]; ++j) {
            test_pair(order[i], order[j]);
          }
        }
      }
    }
  }
  return std::move(b).build();
}

Instance planted_partition(NodeId n, unsigned k, double p_in, double p_out,
                           Rng& rng) {
  assert(k >= 1);
  GraphBuilder b(n);
  const NodeId group_size = n / k;
  assert(group_size >= 1);
  auto group_of = [&](NodeId v) { return std::min(v / group_size, k - 1); };

  if (n <= kStreamingCutoffN) {
    // Exact reference path (bit-for-bit the original implementation).
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        const double p = group_of(u) == group_of(v) ? p_in : p_out;
        if (rng.next_bernoulli(p)) b.add_edge(u, v);
      }
    }
  } else {
    // Streaming path: each row splits into an in-group and an out-group
    // segment (groups are contiguous before permutation), each skip-sampled.
    const double nn = static_cast<double>(n);
    b.reserve(expected_edges(0.5 * nn * static_cast<double>(group_size), p_in) +
              expected_edges(0.5 * nn * nn, p_out));
    for (NodeId u = 0; u < n; ++u) {
      const unsigned g = group_of(u);
      const NodeId group_end =
          g + 1 < k ? (g + 1) * group_size : n;
      stream_row(b, u, u + 1, group_end, p_in, rng);
      stream_row(b, u, group_end, n, p_out, rng);
    }
  }
  const Graph g = std::move(b).build();
  return permute_instance(g, iota_range(0, group_size), rng);
}

Instance power_law_web(NodeId n, double gamma, double avg_deg,
                       NodeId community, double eps_missing, Rng& rng) {
  assert(community <= n);
  // Chung-Lu: P[edge uv] = min(1, w_u * w_v / W).
  std::vector<double> w(n);
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -1.0 / (gamma - 1.0));
    total += w[i];
  }
  const double scale = avg_deg * static_cast<double>(n) / total;
  for (auto& x : w) x *= scale;
  const double big_w = avg_deg * static_cast<double>(n);

  GraphBuilder b(n);
  if (n <= kStreamingCutoffN) {
    // Exact reference path (bit-for-bit the original implementation).
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        const double p = std::min(1.0, w[u] * w[v] / big_w);
        if (rng.next_bernoulli(p)) b.add_edge(u, v);
      }
    }
    // Overlay a dense community on the last `community` nodes (low-degree
    // tail, so the community is invisible to degree-based heuristics).
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (NodeId u = n - community; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
    }
    const auto ordered_total =
        static_cast<std::size_t>(community) * (community - 1);
    const auto remove =
        static_cast<std::size_t>(std::floor(
            eps_missing * static_cast<double>(ordered_total))) /
        2;
    rng.shuffle(pairs);
    for (std::size_t i = remove; i < pairs.size(); ++i) {
      b.add_edge(pairs[i].first, pairs[i].second);
    }
  } else {
    // Streaming path: expected-degree (Chung-Lu) sampling via an alias
    // table. ~W/2 endpoint pairs are drawn proportionally to the weights;
    // a pair (u, v) then appears with probability ≈ w_u w_v / W (duplicates
    // collapse at CSR build), which matches the per-pair model whenever
    // w_u w_v << W — the sparse regime this path exists for.
    const auto draws = static_cast<std::uint64_t>(std::llround(big_w / 2.0));
    b.reserve(static_cast<std::size_t>(draws) +
              static_cast<std::size_t>(community) * community / 2);
    const AliasTable endpoints(w);
    for (std::uint64_t t = 0; t < draws; ++t) {
      const auto u = static_cast<NodeId>(endpoints.sample(rng));
      const auto v = static_cast<NodeId>(endpoints.sample(rng));
      if (u != v) b.add_edge(u, v);
    }
    add_knocked_out_clique(b, n - community, community,
                           knockout_count(community, eps_missing), rng);
  }
  const Graph g = std::move(b).build();
  return permute_instance(g, iota_range(n - community, n), rng);
}

}  // namespace nc
