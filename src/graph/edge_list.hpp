#pragma once

#include <string>

#include "graph/graph.hpp"

namespace nc {

/// Loads an undirected graph from a textual edge list, one edge per line.
///
/// Accepted syntax per line: two node ids separated by whitespace, commas or
/// semicolons ("0 5", "0,5", "0;5", tabs included); anything after the
/// second id (edge weights, timestamps) is ignored. Blank lines and lines
/// starting with '#', '%' or "//" are comments. With `one_indexed` the file
/// counts nodes from 1 (the SNAP/Matrix-Market convention) and ids are
/// shifted down.
///
/// The node count is max id + 1; self-loops are dropped and duplicate edges
/// are deduplicated by the counting-sort CSR build (GraphBuilder), so real
/// exports can be fed in unsanitized. Throws std::invalid_argument with the
/// offending "<path>:<line>" on malformed input, unreadable files, empty
/// files and ids above kMaxEdgeListId.
Graph load_edge_list(const std::string& path, bool one_indexed = false);

/// Guard against typos producing multi-gigabyte allocations: the largest
/// node id load_edge_list accepts.
inline constexpr std::uint64_t kMaxEdgeListId = 100'000'000;

}  // namespace nc
