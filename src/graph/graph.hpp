#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/ids.hpp"

namespace nc {

/// Immutable simple undirected graph in compressed-sparse-row form.
///
/// This is the communication graph of the CONGEST model (Section 2 of the
/// paper): nodes are processors, edges are links. Adjacency lists are sorted
/// by neighbor ID, which gives O(log deg) adjacency tests and deterministic
/// iteration order (the simulator depends on the latter for reproducibility).
class Graph {
 public:
  /// Builds a graph from an already-deduplicated, loop-free edge list.
  /// Most callers should use GraphBuilder instead.
  Graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Adopts an already-built CSR representation without copying — the
  /// escape hatch for bulk generators that produce adjacency directly
  /// (O(n + m), single pass of validation, no edge list materialized).
  ///
  /// Requirements (checked, throws std::invalid_argument):
  ///   - offsets.size() == n + 1, offsets[0] == 0, offsets non-decreasing,
  ///     offsets[n] == adj.size();
  ///   - every row offsets[v]..offsets[v+1] is strictly increasing (sorted,
  ///     no duplicates), in [0, n) and free of self-loops.
  /// Symmetry (u in adj[v] <=> v in adj[u]) is the caller's responsibility
  /// and is verified in debug builds only.
  static Graph from_csr(NodeId n, std::vector<std::size_t> offsets,
                        std::vector<NodeId> adj);

  /// Number of nodes.
  [[nodiscard]] NodeId n() const noexcept { return n_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t m() const noexcept { return adj_.size() / 2; }

  /// Sorted neighbors of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offset_[v], offset_[v + 1] - offset_[v]};
  }

  /// Degree of `v`.
  [[nodiscard]] std::size_t degree(NodeId v) const noexcept {
    return offset_[v + 1] - offset_[v];
  }

  /// True if {u, v} is an edge (binary search; u == v returns false).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Neighborhood of `v` as an n-bit indicator. O(deg) to build; callers that
  /// probe many pairs against the same vertex should cache this.
  [[nodiscard]] BitVec neighbor_mask(NodeId v) const;

  /// All edges as (u, v) pairs with u < v, sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edge_list() const;

 private:
  Graph() = default;  // for from_csr

  NodeId n_ = 0;
  std::vector<std::size_t> offset_;
  std::vector<NodeId> adj_;
};

}  // namespace nc
