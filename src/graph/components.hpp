#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Connected components of the subgraph of `g` induced by `members`.
///
/// This mirrors G[S] in the paper's exploration stage: only edges with both
/// endpoints in `members` are used. Each component is returned as a sorted
/// vector of node IDs; components are ordered by their minimum element (the
/// paper roots each component's spanning tree at its minimum-ID node).
std::vector<std::vector<NodeId>> induced_components(
    const Graph& g, const std::vector<NodeId>& members);

/// BFS distances in the subgraph induced by `members`, from `source`.
/// Nodes outside `members` (and unreachable members) get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> induced_bfs_distances(
    const Graph& g, const std::vector<NodeId>& members, NodeId source);

/// Diameter (in hops) of the *whole* graph, or kUnreachable if disconnected.
/// Used by the Section 6 impossibility experiment to size the path P.
std::uint32_t graph_diameter(const Graph& g);

}  // namespace nc
