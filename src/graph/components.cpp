#include "graph/components.hpp"

#include <algorithm>
#include <deque>

#include "util/bitvec.hpp"

namespace nc {

std::vector<std::vector<NodeId>> induced_components(
    const Graph& g, const std::vector<NodeId>& members) {
  BitVec in_set(g.n());
  for (const NodeId v : members) in_set.set(v);
  BitVec seen(g.n());
  std::vector<std::vector<NodeId>> comps;

  std::vector<NodeId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  for (const NodeId start : sorted) {
    if (seen.test(start)) continue;
    std::vector<NodeId> comp;
    std::deque<NodeId> queue{start};
    seen.set(start);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      comp.push_back(v);
      for (const NodeId u : g.neighbors(v)) {
        if (in_set.test(u) && !seen.test(u)) {
          seen.set(u);
          queue.push_back(u);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    comps.push_back(std::move(comp));
  }
  return comps;
}

std::vector<std::uint32_t> induced_bfs_distances(
    const Graph& g, const std::vector<NodeId>& members, NodeId source) {
  BitVec in_set(g.n());
  for (const NodeId v : members) in_set.set(v);
  std::vector<std::uint32_t> dist(g.n(), kUnreachable);
  if (!in_set.test(source)) return dist;
  std::deque<NodeId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId u : g.neighbors(v)) {
      if (in_set.test(u) && dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::uint32_t graph_diameter(const Graph& g) {
  std::vector<NodeId> all(g.n());
  for (NodeId v = 0; v < g.n(); ++v) all[v] = v;
  std::uint32_t diam = 0;
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto dist = induced_bfs_distances(g, all, s);
    for (NodeId v = 0; v < g.n(); ++v) {
      if (dist[v] == kUnreachable) return kUnreachable;
      diam = std::max(diam, dist[v]);
    }
  }
  return diam;
}

}  // namespace nc
