#include "graph/cliques.hpp"

#include <algorithm>

#include "util/bitvec.hpp"

namespace nc {

namespace {

std::size_t g_expansions = 0;

/// Recursive Bron-Kerbosch with pivot selection (Tomita-style): expands
/// R with candidates P \ Gamma(pivot), maintaining best as the incumbent.
class CliqueSearch {
 public:
  CliqueSearch(const Graph& g, std::size_t budget)
      : g_(g), budget_(budget) {
    masks_.reserve(g.n());
    for (NodeId v = 0; v < g.n(); ++v) masks_.push_back(g.neighbor_mask(v));
  }

  void run(BitVec p, BitVec x, std::vector<NodeId>& r) {
    if (budget_ == 0) {
      exhausted_ = true;
      return;
    }
    --budget_;
    ++g_expansions;
    if (p.none() && x.none()) {
      if (r.size() > best_.size()) best_ = r;
      return;
    }
    if (r.size() + p.count() <= best_.size()) return;  // bound

    // Pivot: vertex of P ∪ X with most neighbors in P.
    NodeId pivot = kNoNode;
    std::size_t best_cover = 0;
    for (const NodeId u : p.to_indices()) {
      const std::size_t c = p.count_and(masks_[u]);
      if (pivot == kNoNode || c > best_cover) {
        pivot = u;
        best_cover = c;
      }
    }
    for (const NodeId u : x.to_indices()) {
      const std::size_t c = p.count_and(masks_[u]);
      if (pivot == kNoNode || c > best_cover) {
        pivot = u;
        best_cover = c;
      }
    }

    BitVec ext = p;
    if (pivot != kNoNode) ext.subtract(masks_[pivot]);
    for (const NodeId v : ext.to_indices()) {
      BitVec p2 = p;
      p2 &= masks_[v];
      BitVec x2 = x;
      x2 &= masks_[v];
      r.push_back(v);
      run(std::move(p2), std::move(x2), r);
      r.pop_back();
      p.set(v, false);
      x.set(v, true);
      if (exhausted_) return;
    }
  }

  std::vector<NodeId> best_;
  bool exhausted_ = false;

 private:
  const Graph& g_;
  std::size_t budget_;
  std::vector<BitVec> masks_;
};

}  // namespace

std::vector<NodeId> max_clique(const Graph& g, std::size_t budget,
                               bool* budget_exhausted) {
  g_expansions = 0;
  CliqueSearch search(g, budget);
  BitVec p(g.n());
  for (NodeId v = 0; v < g.n(); ++v) p.set(v);
  std::vector<NodeId> r;
  search.run(std::move(p), BitVec(g.n()), r);
  if (budget_exhausted != nullptr) *budget_exhausted = search.exhausted_;
  std::sort(search.best_.begin(), search.best_.end());
  return search.best_;
}

std::vector<NodeId> max_clique_containing(const Graph& g, NodeId v,
                                          const std::vector<NodeId>& allowed,
                                          std::size_t budget,
                                          bool* budget_exhausted) {
  g_expansions = 0;
  CliqueSearch search(g, budget);
  // Start from R = {v}; P = allowed ∩ Gamma(v).
  BitVec allowed_mask(g.n());
  for (const NodeId u : allowed) allowed_mask.set(u);
  BitVec p = g.neighbor_mask(v);
  p &= allowed_mask;
  std::vector<NodeId> r{v};
  search.best_ = r;  // v alone is always a clique
  search.run(std::move(p), BitVec(g.n()), r);
  if (budget_exhausted != nullptr) *budget_exhausted = search.exhausted_;
  std::sort(search.best_.begin(), search.best_.end());
  return search.best_;
}

std::size_t last_clique_search_expansions() noexcept { return g_expansions; }

}  // namespace nc
