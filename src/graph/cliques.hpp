#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Exact maximum clique via Bron-Kerbosch with pivoting over a degeneracy
/// ordering. Exponential worst case; intended for ground truth on the small
/// and structured instances used in tests and quality benchmarks, and as the
/// local solver of the neighbours-of-neighbours baseline (whose prohibitive
/// local compute cost is precisely what Section 3 of the paper points out).
///
/// `budget` bounds the number of recursive expansions; when exhausted the
/// best clique found so far is returned and `*budget_exhausted` (if non-null)
/// is set. The result is sorted ascending.
std::vector<NodeId> max_clique(const Graph& g,
                               std::size_t budget = 10'000'000,
                               bool* budget_exhausted = nullptr);

/// Maximum clique of the subgraph induced by `allowed` that contains `v`.
/// Used by each node of the neighbours-of-neighbours baseline on its
/// distance-2 ball. Returns a sorted clique including v; `budget` as above.
std::vector<NodeId> max_clique_containing(const Graph& g, NodeId v,
                                          const std::vector<NodeId>& allowed,
                                          std::size_t budget,
                                          bool* budget_exhausted = nullptr);

/// Number of Bron-Kerbosch expansions used by the last max_clique* call on
/// this thread. Exposed so experiment E12 can report local computation cost.
std::size_t last_clique_search_expansions() noexcept;

}  // namespace nc
