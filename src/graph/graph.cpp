#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace nc {

Graph::Graph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges)
    : n_(n), offset_(static_cast<std::size_t>(n) + 1, 0) {
  for (const auto& [u, v] : edges) {
    assert(u < n && v < n && u != v);
    ++offset_[u + 1];
    ++offset_[v + 1];
  }
  for (std::size_t i = 1; i < offset_.size(); ++i) offset_[i] += offset_[i - 1];
  adj_.resize(offset_.back());
  std::vector<std::size_t> cursor(offset_.begin(), offset_.end() - 1);
  for (const auto& [u, v] : edges) {
    adj_[cursor[u]++] = v;
    adj_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n_; ++v) {
    std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(offset_[v]),
              adj_.begin() + static_cast<std::ptrdiff_t>(offset_[v + 1]));
  }
}

Graph Graph::from_csr(NodeId n, std::vector<std::size_t> offsets,
                      std::vector<NodeId> adj) {
  if (offsets.size() != static_cast<std::size_t>(n) + 1 || offsets[0] != 0 ||
      offsets.back() != adj.size()) {
    throw std::invalid_argument("Graph::from_csr: malformed offset array");
  }
  for (NodeId v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      throw std::invalid_argument("Graph::from_csr: offsets must not decrease");
    }
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const NodeId u = adj[i];
      if (u >= n || u == v) {
        throw std::invalid_argument(
            "Graph::from_csr: neighbor out of range or self-loop at node " +
            std::to_string(v));
      }
      if (i > offsets[v] && adj[i - 1] >= u) {
        throw std::invalid_argument(
            "Graph::from_csr: row not strictly sorted at node " +
            std::to_string(v));
      }
    }
  }
  Graph g;
  g.n_ = n;
  g.offset_ = std::move(offsets);
  g.adj_ = std::move(adj);
#ifndef NDEBUG
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbors(v)) assert(g.has_edge(u, v));
  }
#endif
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u == v || u >= n_ || v >= n_) return false;
  // Probe the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

BitVec Graph::neighbor_mask(NodeId v) const {
  BitVec mask(n_);
  for (const NodeId u : neighbors(v)) mask.set(u);
  return mask;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(m());
  for (NodeId v = 0; v < n_; ++v) {
    for (const NodeId u : neighbors(v)) {
      if (v < u) out.emplace_back(v, u);
    }
  }
  return out;
}

}  // namespace nc
