#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Number of *ordered* pairs (u, v) in D x D, u != v, with {u,v} in E.
/// This is the counting convention of Definition 1 in the paper (each
/// undirected edge inside D counts twice).
std::size_t ordered_internal_pairs(const Graph& g,
                                   const std::vector<NodeId>& d);

/// Density of a node set per Definition 1: ordered internal pairs divided by
/// |D|(|D|-1). Sets of size <= 1 have density 1 by convention (a clique).
double set_density(const Graph& g, const std::vector<NodeId>& d);

/// True iff D is an eps-near clique: ordered pairs >= (1-eps)|D|(|D|-1).
/// Evaluated exactly with integer arithmetic to avoid rounding artifacts.
bool is_near_clique(const Graph& g, const std::vector<NodeId>& d, double eps);

/// True iff D is a clique (0-near clique).
bool is_clique(const Graph& g, const std::vector<NodeId>& d);

/// |Gamma(v) ∩ X| where X is given as a sorted vector.
std::size_t neighbors_in_set(const Graph& g, NodeId v,
                             const std::vector<NodeId>& sorted_x);

/// K_eps(X) per Eq. (1): all v in V with |Gamma(v) ∩ X| >= (1-eps)|X|.
/// The comparison is done in exact integer form: deg_X(v) * 1 >= ceil of
/// (1-eps)|X| computed as (|X| - floor(eps * |X|)) would be inexact, so we
/// compare deg_X(v) >= (1-eps)*|X| with long doubles and a tie-safe epsilon;
/// tests pin the boundary cases.
std::vector<NodeId> k_eps(const Graph& g, const std::vector<NodeId>& x,
                          double eps);

/// T_eps(X) per Eq. (2): K_eps(K_{2eps^2}(X)) ∩ K_{2eps^2}(X).
std::vector<NodeId> t_eps(const Graph& g, const std::vector<NodeId>& x,
                          double eps);

/// The exact integer threshold used for "|Gamma(v) ∩ X| >= (1-eps)|X|":
/// the smallest integer c such that c >= (1-eps)*|x_size|. Exposed so the
/// distributed protocol and the oracle use bit-identical arithmetic.
std::size_t k_threshold(std::size_t x_size, double eps) noexcept;

}  // namespace nc
