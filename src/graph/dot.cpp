#include "graph/dot.hpp"

#include <algorithm>
#include <sstream>

namespace nc {

namespace {
constexpr const char* kPalette[] = {
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3",
    "#ff7f00", "#a65628", "#f781bf", "#17becf",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
}  // namespace

std::string to_dot(const Graph& g,
                   const std::map<Label, std::vector<NodeId>>& clusters,
                   const std::string& graph_name) {
  std::vector<std::size_t> color_of(g.n(), kPaletteSize);  // sentinel: none
  std::size_t next_color = 0;
  for (const auto& [label, members] : clusters) {
    (void)label;
    const std::size_t c = next_color % kPaletteSize;
    ++next_color;
    for (const NodeId v : members) color_of[v] = c;
  }

  std::ostringstream os;
  os << "graph " << graph_name << " {\n"
     << "  layout=neato; overlap=false; splines=true;\n"
     << "  node [shape=circle, style=filled, fontsize=9];\n";
  for (NodeId v = 0; v < g.n(); ++v) {
    os << "  n" << v << " [";
    if (color_of[v] < kPaletteSize) {
      os << "fillcolor=\"" << kPalette[color_of[v]] << "\", fontcolor=white";
    } else {
      os << "fillcolor=\"#dddddd\"";
    }
    os << ", label=\"" << v << "\"];\n";
  }
  for (const auto& [u, v] : g.edge_list()) {
    const bool internal = color_of[u] < kPaletteSize &&
                          color_of[u] == color_of[v];
    os << "  n" << u << " -- n" << v;
    if (internal) {
      os << " [color=\"" << kPalette[color_of[u]] << "\", penwidth=1.6]";
    } else {
      os << " [color=\"#bbbbbb\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Graph& g, const std::string& graph_name) {
  return to_dot(g, {}, graph_name);
}

}  // namespace nc
