#include "graph/builder.hpp"

#include <algorithm>
#include <cassert>

namespace nc {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  assert(u < n_ && v < n_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_clique(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      add_edge(nodes[i], nodes[j]);
    }
  }
}

void GraphBuilder::add_biclique(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  for (const NodeId u : a) {
    for (const NodeId v : b) add_edge(u, v);
  }
}

void GraphBuilder::add_path(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    add_edge(nodes[i - 1], nodes[i]);
  }
}

Graph GraphBuilder::build() const {
  auto edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph(n_, edges);
}

}  // namespace nc
