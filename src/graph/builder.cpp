#include "graph/builder.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nc {

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  assert(u < n_ && v < n_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_clique(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      add_edge(nodes[i], nodes[j]);
    }
  }
}

void GraphBuilder::add_biclique(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  for (const NodeId u : a) {
    for (const NodeId v : b) add_edge(u, v);
  }
}

void GraphBuilder::add_path(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    add_edge(nodes[i - 1], nodes[i]);
  }
}

Graph GraphBuilder::build() const& {
  auto edges = edges_;
  return build_csr(n_, std::move(edges));
}

Graph GraphBuilder::build() && { return build_csr(n_, std::move(edges_)); }

Graph GraphBuilder::build_csr(NodeId n,
                              std::vector<std::pair<NodeId, NodeId>>&& edges) {
  // Counting sort by endpoint: degree histogram, prefix sum, scatter both
  // directions, then sort + dedup each row in place. The raw edge buffer is
  // released as soon as the scatter is done.
  std::vector<std::size_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    assert(u < n && v < n && u != v);
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> adj(offsets.back());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const auto& [u, v] : edges) {
      adj[cursor[u]++] = v;
      adj[cursor[v]++] = u;
    }
    std::vector<std::pair<NodeId, NodeId>>().swap(edges);
  }

  // Per-row sort + dedup, compacting rows leftward. The write cursor never
  // passes the read cursor, so compaction is safe in place.
  std::size_t write = 0;
  std::size_t row_start = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t row_end = offsets[v + 1];
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(row_start),
              adj.begin() + static_cast<std::ptrdiff_t>(row_end));
    const std::size_t out_start = write;
    for (std::size_t i = row_start; i < row_end; ++i) {
      if (write == out_start || adj[write - 1] != adj[i]) adj[write++] = adj[i];
    }
    row_start = row_end;
    offsets[v + 1] = write;
  }
  adj.resize(write);
  adj.shrink_to_fit();
  return Graph::from_csr(n, std::move(offsets), std::move(adj));
}

}  // namespace nc
