#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Mutable accumulator of edges that produces an immutable Graph.
///
/// Self-loops are dropped and duplicate edges (in either orientation) are
/// deduplicated at build time, so generators can add edges freely.
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `n` nodes.
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Adds the undirected edge {u, v}. Self-loops are ignored.
  /// Precondition: u < n and v < n.
  void add_edge(NodeId u, NodeId v);

  /// Adds every edge among the given nodes (makes them a clique).
  void add_clique(const std::vector<NodeId>& nodes);

  /// Adds the complete bipartite graph between two node sets.
  void add_biclique(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

  /// Adds the path v0 - v1 - ... - vk.
  void add_path(const std::vector<NodeId>& nodes);

  /// Number of nodes.
  [[nodiscard]] NodeId n() const noexcept { return n_; }

  /// Number of edges added so far (before deduplication).
  [[nodiscard]] std::size_t raw_edge_count() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable Graph (dedup + CSR construction).
  [[nodiscard]] Graph build() const;

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace nc
