#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Mutable accumulator of edges that produces an immutable Graph.
///
/// Self-loops are dropped and duplicate edges (in either orientation) are
/// deduplicated at build time, so generators can add edges freely.
///
/// The build is a counting sort by endpoint straight into the CSR arrays
/// (one pass to count, one to scatter, per-row sort + in-place dedup):
/// O(n + m + sum_v deg_v log deg_v) time and a single adjacency allocation,
/// never an O(m log m) global sort. Bulk producers should `reserve()` and
/// finish with `std::move(builder).build()`, which consumes the edge buffer
/// instead of copying it.
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `n` nodes.
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Pre-allocates capacity for `edges` add_edge calls (bulk paths should
  /// pass their expected edge count so growth never reallocates).
  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Adds the undirected edge {u, v}. Self-loops are ignored.
  /// Precondition: u < n and v < n.
  void add_edge(NodeId u, NodeId v);

  /// Adds every edge among the given nodes (makes them a clique).
  void add_clique(const std::vector<NodeId>& nodes);

  /// Adds the complete bipartite graph between two node sets.
  void add_biclique(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

  /// Adds the path v0 - v1 - ... - vk.
  void add_path(const std::vector<NodeId>& nodes);

  /// Number of nodes.
  [[nodiscard]] NodeId n() const noexcept { return n_; }

  /// Number of edges added so far (before deduplication).
  [[nodiscard]] std::size_t raw_edge_count() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable Graph. The lvalue overload copies the edge
  /// buffer (the builder stays usable); the rvalue overload moves out of it —
  /// the bulk path generators should use via `std::move(b).build()`.
  [[nodiscard]] Graph build() const&;
  [[nodiscard]] Graph build() &&;

 private:
  static Graph build_csr(NodeId n, std::vector<std::pair<NodeId, NodeId>>&& edges);

  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace nc
