#include <algorithm>
#include <bit>
#include <cassert>

#include "core/protocol.hpp"
#include "core/subsets.hpp"
#include "graph/metrics.hpp"

// Exploration stage, Step 4: every participant of a component S_i (member or
// fringe) enumerates all non-empty subsets X of S_i, decides membership in
// K_{2eps^2}(X) locally (4a), ships its membership bit-vector to every
// neighbour (4b), contributes to a coordinate-pipelined sum-convergecast so
// the root learns |K_{2eps^2}(X)| for every X (4c), receives the counts back
// (4d), accumulates neighbours' bit-vectors (4e) and finally decides
// membership in T_eps(X) (4f). The decision-stage T-count convergecast and
// the (X*, |T|) report reuse the same machinery.

namespace nc {

void DistNearCliqueNode::maybe_init_pair(NodeApi& api, VersionState& vs,
                                         PairState& ps) {
  if (ps.explore_started || !ps.live) return;
  if (ps.is_member && !(vs.comp_known && vs.children_known && vs.fringe_known))
    return;
  ps.explore_started = true;
  api.probe_add(probe_pairs_, 1);

  const auto total = subset_count(ps.s);
  // 4a: adjacency mask and K_{2eps^2} membership for every subset.
  std::vector<NodeId> my_nbrs(api.neighbors().begin(), api.neighbors().end());
  ps.a_mask = adjacency_mask(ps.members, my_nbrs);
  ps.k_bits.assign_zero(total);
  const double inner = params_.inner_eps();
  // Cache thresholds by |X| (s+1 values) to keep 4a at one popcount + one
  // compare per subset.
  std::vector<std::size_t> need(ps.s + 1);
  for (std::uint32_t c = 0; c <= ps.s; ++c) need[c] = k_threshold(c, inner);
  for (std::uint64_t x = 1; x <= total; ++x) {
    const auto inter =
        static_cast<std::size_t>(std::popcount(x & ps.a_mask));
    const auto size_x = static_cast<std::uint32_t>(std::popcount(x));
    if (inter >= need[size_x]) ps.k_bits.set(x - 1);
    ++local_ops_;
  }

  // 4b: membership bit-vector to every neighbour (shared payload).
  ps.kbitvec_opened = true;
  ps.kbitvec_out = open_counted_all(api, key(kKBitvec, ps.root, ps.version));
  for (std::uint64_t x = 1; x <= total; ++x) {
    ps.kbitvec_out.put_bit(ps.k_bits.test(x - 1));
  }
  ps.kbitvec_out.close();

  ps.counts.assign(total, 0);
  ps.nbr_k_accum.assign(total, 0);
  if (!ps.is_member || ps.parent_ni != SIZE_MAX) {
    ps.ksum_opened = true;
    ps.ksum_out =
        open_counted_one(api, key(kKSum, ps.root, ps.version), ps.parent_ni);
  }
}

void DistNearCliqueNode::run_explore(NodeApi& api, VersionState& vs,
                                     PairState& ps) {
  if (!ps.live) return;
  maybe_init_pair(api, vs, ps);
  if (!ps.explore_started) return;

  const auto total = subset_count(ps.s);
  const bool is_root = ps.is_member && ps.parent_ni == SIZE_MAX;

  // --- 4c: coordinate-pipelined sum-convergecast of K counts. ---
  // Children are child_nis (tree + fringe children of members; none for
  // fringe participants). A coordinate moves up as soon as every child has
  // delivered it.
  {
    auto child_in = [&](std::size_t ni) {
      return api.find_in(ni, key(kKSum, ps.root, ps.version));
    };
    bool progressed = true;
    while (progressed && ps.ksum_next < total) {
      progressed = false;
      std::uint64_t sum = ps.k_bits.test(ps.ksum_next) ? 1 : 0;
      bool all_have = true;
      for (const std::size_t ni : ps.child_nis) {
        InStream* in = child_in(ni);
        if (in == nullptr || in->available() == 0) {
          all_have = false;
          break;
        }
      }
      if (all_have) {
        for (const std::size_t ni : ps.child_nis) {
          sum += child_in(ni)->pop();
          ++local_ops_;
        }
        if (is_root) {
          ps.counts[ps.ksum_next] = static_cast<std::uint32_t>(sum);
          ++ps.counts_filled;
        } else {
          ps.ksum_out.put(sum, idw());
        }
        ++ps.ksum_next;
        progressed = true;
      }
    }
    if (ps.ksum_next == total && ps.ksum_opened && !ps.ksum_out.closed()) {
      ps.ksum_out.close();
    }
  }

  // --- 4d: root broadcasts counts; members relay down; all store them. ---
  if (is_root) {
    if (ps.counts_filled == total && !ps.kcount_opened) {
      ps.kcount_opened = true;
      if (!ps.child_nis.empty()) {
        ps.kcount_out =
            open_counted(api, key(kKCount, ps.root, ps.version), ps.child_nis);
        for (const auto c : ps.counts) ps.kcount_out.put(c, idw());
        ps.kcount_out.close();
      }
    }
  } else if (ps.counts_filled < total) {
    InStream* in = api.find_in(ps.parent_ni, key(kKCount, ps.root, ps.version));
    if (in != nullptr) {
      if (!ps.kcount_opened && ps.is_member && !ps.child_nis.empty()) {
        ps.kcount_opened = true;
        ps.kcount_out =
            open_counted(api, key(kKCount, ps.root, ps.version), ps.child_nis);
      }
      while (in->available() > 0 && ps.counts_filled < total) {
        const auto c = static_cast<std::uint32_t>(in->pop());
        ps.counts[ps.counts_filled++] = c;
        if (ps.kcount_opened) ps.kcount_out.put(c, idw());
      }
      if (ps.counts_filled == total && ps.kcount_opened &&
          !ps.kcount_out.closed()) {
        ps.kcount_out.close();
      }
    }
  }

  // --- 4e/4f: accumulate neighbours' K bit-vectors. ---
  if (!ps.participant_nbrs_known && vs.participation_known) {
    ps.participant_nbrs_known = true;
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      const auto& roots = vs.nbr_participation[ni];
      if (std::find(roots.begin(), roots.end(), ps.root) != roots.end()) {
        ps.participant_nbrs.push_back(ni);
      }
    }
    ps.pn_consumed.assign(ps.participant_nbrs.size(), 0);
    if (params_.sample_4f > 0 &&
        ps.participant_nbrs.size() > params_.sample_4f) {
      // Section 5.3 estimate mode: inspect only a random sample of the
      // participating neighbours and scale the counts.
      Rng pick = api.rng().derive(0x4f00u + ps.version).derive(ps.root);
      auto idx = pick.sample_without_replacement(
          static_cast<std::uint32_t>(ps.participant_nbrs.size()),
          params_.sample_4f);
      std::vector<std::size_t> chosen;
      chosen.reserve(idx.size());
      for (const auto i : idx) chosen.push_back(ps.participant_nbrs[i]);
      ps.sampled_4f = std::move(chosen);
    }
  }
  if (ps.participant_nbrs_known && !ps.t_done) {
    const std::vector<std::size_t>& consumers =
        ps.sampled_4f ? *ps.sampled_4f : ps.participant_nbrs;
    bool all_finished = true;
    for (std::size_t i = 0; i < ps.participant_nbrs.size(); ++i) {
      const std::size_t ni = ps.participant_nbrs[i];
      const bool counted =
          !ps.sampled_4f || std::find(consumers.begin(), consumers.end(),
                                      ni) != consumers.end();
      InStream* in = api.find_in(ni, key(kKBitvec, ps.root, ps.version));
      if (in == nullptr) {
        all_finished = false;
        continue;
      }
      while (in->available() > 0 && ps.pn_consumed[i] < total) {
        const auto bit = in->pop();
        if (counted) {
          // Only neighbours we actually inspect count as local computation
          // (Section 5.3's estimate mode saves exactly this inspection).
          if (bit != 0) ++ps.nbr_k_accum[ps.pn_consumed[i]];
          ++local_ops_;
        }
        ++ps.pn_consumed[i];
      }
      if (ps.pn_consumed[i] < total) all_finished = false;
    }
    // --- 4f: decide T membership once counts and accumulators are exact. ---
    if (all_finished && ps.counts_filled == total) {
      ps.t_bits.assign_zero(total);
      const double scale =
          ps.sampled_4f && !consumers.empty()
              ? static_cast<double>(ps.participant_nbrs.size()) /
                    static_cast<double>(consumers.size())
              : 1.0;
      for (std::uint64_t x = 1; x <= total; ++x) {
        if (!ps.k_bits.test(x - 1)) continue;
        const auto have = static_cast<std::size_t>(
            static_cast<double>(ps.nbr_k_accum[x - 1]) * scale + 0.5);
        if (have >= k_threshold(ps.counts[x - 1], params_.eps)) {
          ps.t_bits.set(x - 1);
        }
        ++local_ops_;
      }
      ps.t_done = true;
      if (!ps.is_member || ps.parent_ni != SIZE_MAX) {
        ps.tsum_opened = true;
        ps.tsum_out =
            open_counted_one(api, key(kTSum, ps.root, ps.version), ps.parent_ni);
      } else {
        ps.tcounts.assign(total, 0);
      }
    }
  }

  // --- Decision Step 1: T-count convergecast (same pipelining as 4c). ---
  if (ps.t_done && !ps.report_done) {
    auto child_in = [&](std::size_t ni) {
      return api.find_in(ni, key(kTSum, ps.root, ps.version));
    };
    bool progressed = true;
    while (progressed && ps.tsum_next < total) {
      progressed = false;
      std::uint64_t sum = ps.t_bits.test(ps.tsum_next) ? 1 : 0;
      bool all_have = true;
      for (const std::size_t ni : ps.child_nis) {
        InStream* in = child_in(ni);
        if (in == nullptr || in->available() == 0) {
          all_have = false;
          break;
        }
      }
      if (all_have) {
        for (const std::size_t ni : ps.child_nis) sum += child_in(ni)->pop();
        if (is_root) {
          ps.tcounts[ps.tsum_next] = static_cast<std::uint32_t>(sum);
        } else {
          ps.tsum_out.put(sum, idw());
        }
        ++ps.tsum_next;
        progressed = true;
      }
    }
    if (ps.tsum_next == total) {
      if (ps.tsum_opened && !ps.tsum_out.closed()) ps.tsum_out.close();
      if (is_root) {
        // Decision Step 1 conclusion: X(S_i) maximizes |T_eps(X)|; ties go
        // to the smallest subset index (deterministic).
        std::uint64_t best_x = 1;
        std::uint32_t best_t = ps.tcounts[0];
        for (std::uint64_t x = 2; x <= total; ++x) {
          if (ps.tcounts[x - 1] > best_t) {
            best_t = ps.tcounts[x - 1];
            best_x = x;
          }
        }
        ps.x_star = best_x;
        ps.t_size = best_t;
        ps.report_done = true;
        for (auto& rc : root_candidates_) {
          if (rc.root == ps.root && rc.version == ps.version) {
            rc.x_star = best_x;
            rc.t_size = best_t;
          }
        }
        // Decision Step 2: broadcast (X*, |T|) to the whole component and
        // its fringe.
        if (!ps.child_nis.empty()) {
          ps.report_out =
              open_counted(api, key(kReport, ps.root, ps.version), ps.child_nis);
          for (std::uint32_t b = 0; b < ps.s; ++b) {
            ps.report_out.put_bit((ps.x_star >> b) & 1ULL);
          }
          ps.report_out.put(ps.t_size, idw());
          ps.report_out.close();
        }
      }
    }
  }

  // --- Decision Step 2, non-root side: receive and relay the report. ---
  if (!is_root && ps.t_done && !ps.report_done) {
    InStream* in = api.find_in(ps.parent_ni, key(kReport, ps.root, ps.version));
    if (in != nullptr) {
      const bool need_relay = ps.is_member && !ps.child_nis.empty();
      if (need_relay && ps.report_relay_next == 0 && in->available() > 0 &&
          !ps.report_out.closed()) {
        ps.report_out =
            open_counted(api, key(kReport, ps.root, ps.version), ps.child_nis);
      }
      while (in->available() > 0 && ps.report_relay_next < ps.s + 1u) {
        const auto v = in->pop();
        if (ps.report_relay_next < ps.s) {
          if (v != 0) ps.x_star |= 1ULL << ps.report_relay_next;
          if (need_relay) ps.report_out.put_bit(v != 0);
        } else {
          ps.t_size = static_cast<std::uint32_t>(v);
          if (need_relay) ps.report_out.put(v, idw());
        }
        ++ps.report_relay_next;
      }
      if (ps.report_relay_next == ps.s + 1u) {
        if (need_relay) ps.report_out.close();
        ps.report_done = true;
      }
    }
  }
}

}  // namespace nc
