#include <cassert>

#include "core/protocol.hpp"

// Exploration stage, Step 1: build a rooted spanning tree for each connected
// component of G[S], rooted at the minimum-ID member.
//
// Implementation: every S-member starts a BFS flood carrying (candidate
// root, distance); nodes adopt the lexicographically best (smallest root,
// then smallest distance) offer, so the minimum-ID root's flood — which
// propagates unimpeded at one hop per round — induces exact BFS distances
// and parents. Termination is detected per candidate with Dijkstra-Scholten
// deficit counting: every flood message is acknowledged, acks carry a flag
// "somewhere in your flood's range a smaller root is known", and deferred
// acks release only when a node's own forwards are all acknowledged. A
// candidate whose deficit reaches zero with no flag raised is the unique
// minimum-ID root of its component and locally knows its BFS tree is
// complete (see DESIGN.md for the correctness argument).

namespace nc {

void DistNearCliqueNode::run_election(NodeApi& api, VersionState& vs) {
  if (!vs.in_s) return;

  // Kick off our own candidacy.
  if (!vs.flood_sent) {
    vs.flood_sent = true;
    for (const std::size_t ni : vs.s_nbr) {
      auto ch = open_counted_one(api, key(kFlood, api.id(), vs.w), ni);
      ch.put(0, idw());  // our distance from ourselves
      ch.close();
    }
    vs.own_deficit = static_cast<std::uint32_t>(vs.s_nbr.size());
    if (vs.own_deficit == 0 && !vs.election_done) {
      vs.election_done = true;
      become_root(api, vs);  // singleton component
    }
  }

  // Incoming floods.
  if (fresh(api, vs, kFlood))
  api.for_each_in(kFlood, [&](std::size_t ni, const StreamKey& k,
                              InStream& in) {
    if (k.version != vs.w) return;
    while (in.available() > 0) {
      const auto dist = static_cast<std::uint32_t>(in.pop());
      handle_flood(api, vs, ni, k.tag, dist);
    }
  });

  // Incoming acks.
  if (fresh(api, vs, kFloodAck))
  api.for_each_in(kFloodAck, [&](std::size_t ni, const StreamKey& k,
                                 InStream& in) {
    (void)ni;
    if (k.version != vs.w) return;
    while (in.available() > 0) {
      const bool flag = in.pop() != 0;
      const NodeId cand = k.tag;
      if (cand == api.id()) {
        assert(vs.own_deficit > 0);
        --vs.own_deficit;
        vs.own_flag = vs.own_flag || flag;
        if (vs.own_deficit == 0 && !vs.election_done) {
          vs.election_done = true;
          if (!vs.own_flag) become_root(api, vs);
          // Otherwise we lost; we continue as an ordinary member.
        }
      } else {
        auto it = vs.floods.find(cand);
        assert(it != vs.floods.end());
        FloodState& fs = it->second;
        assert(fs.deficit > 0);
        --fs.deficit;
        fs.flag = fs.flag || flag;
        if (fs.deficit == 0 && !fs.acked) {
          fs.acked = true;
          send_ack(api, vs, fs.ds_parent_ni, cand,
                   fs.flag || vs.best_root < cand);
        }
      }
    }
  });
}

void DistNearCliqueNode::handle_flood(NodeApi& api, VersionState& vs,
                                      std::size_t ni, NodeId cand,
                                      std::uint32_t dist) {
  if (cand == api.id()) {
    // Our own flood looped back through a cycle.
    send_ack(api, vs, ni, cand, vs.best_root < cand);
    return;
  }
  if (cand < vs.best_root) {
    // Adopt and forward: this engages us in cand's diffusing computation.
    vs.best_root = cand;
    vs.best_dist = dist + 1;
    vs.best_parent_ni = ni;
    FloodState fs;
    fs.ds_parent_ni = ni;
    fs.deficit = 0;
    for (const std::size_t other : vs.s_nbr) {
      if (other == ni) continue;
      auto ch = open_counted_one(api, key(kFlood, cand, vs.w), other);
      ch.put(dist + 1, idw());
      ch.close();
      ++fs.deficit;
    }
    if (fs.deficit == 0) {
      fs.acked = true;
      vs.floods.emplace(cand, fs);
      send_ack(api, vs, ni, cand, vs.best_root < cand);
    } else {
      vs.floods.emplace(cand, fs);
    }
  } else {
    // Not adopted (or a duplicate of an already-adopted flood): acknowledge
    // immediately, reporting whether we know a smaller root.
    send_ack(api, vs, ni, cand, vs.best_root < cand);
  }
}

void DistNearCliqueNode::send_ack(NodeApi& api, VersionState& vs,
                                  std::size_t ni, NodeId cand, bool flag) {
  auto ch = open_counted_one(api, key(kFloodAck, cand, vs.w), ni);
  ch.put_bit(flag);
  ch.close();
}

void DistNearCliqueNode::become_root(NodeApi& api, VersionState& vs) {
  vs.i_am_root = true;
  vs.best_root = api.id();
  vs.best_dist = 0;
  vs.best_parent_ni = SIZE_MAX;
  vs.tree_final_seen = true;
  // Announce tree completion over the S-edges; members forward the wave.
  for (const std::size_t ni : vs.s_nbr) {
    auto ch = open_counted_one(api, key(kTreeFinal, api.id(), vs.w), ni);
    ch.close();
  }
  // The root participates in the ParentOf exchange like everyone else
  // (its own bits are all zero).
  for (const std::size_t ni : vs.s_nbr) {
    auto ch = open_counted_one(api, key(kParentOf, api.id(), vs.w), ni);
    ch.put_bit(false);
    ch.close();
  }
  vs.parentof_sent_ = true;
  if (vs.s_nbr.empty()) {
    vs.children_known = true;
    vs.comp = {api.id()};
    vs.comp_known = true;
  }
}

}  // namespace nc
