#include "core/boosting.hpp"

#include <algorithm>
#include <cmath>

namespace nc {

std::uint16_t boosting_versions(double q, double r) {
  q = std::clamp(q, 1e-12, 1.0);
  r = std::clamp(r, 1e-9, 1.0 - 1e-9);
  const double lambda = std::ceil(std::log(q) / std::log(1.0 - r));
  return static_cast<std::uint16_t>(std::clamp(lambda, 1.0, 1023.0));
}

NearCliqueResult run_boosted(const Graph& g, DriverConfig base,
                             std::uint16_t lambda, std::uint64_t window) {
  base.proto.versions = std::max<std::uint16_t>(1, lambda);
  base.proto.version_budget = window;
  if (window != 0) {
    // Make sure the round limit accommodates all windows plus the decision
    // stage; the time-bound wrapper still caps each version individually.
    const Schedule s = make_schedule(base.proto, g.n(), base.net.max_rounds);
    base.net.max_rounds =
        std::max(base.net.max_rounds, s.decision_deadline() + 16);
  }
  return run_dist_near_clique(g, base);
}

}  // namespace nc
