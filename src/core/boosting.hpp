#pragma once

#include <cstdint>

#include "core/driver.hpp"

namespace nc {

/// Section 4.1, "Boosting the success probability".
///
/// The wrapper does NOT simply rerun the whole algorithm: it runs lambda
/// independent sampling+exploration versions (here in consecutive round
/// windows — one admissible interleaving) and a *single* decision stage that
/// selects the largest candidate across versions. This is implemented inside
/// DistNearCliqueNode (ProtocolParams::versions); this header provides the
/// parameter arithmetic and a convenience driver.

/// lambda = ceil(log q / log(1 - r)): number of versions needed to push the
/// failure probability below `q` when a single version succeeds with
/// probability at least `r`. Clamped to [1, 1023] (the label encoding keeps
/// 10 bits of version index).
std::uint16_t boosting_versions(double q, double r);

/// Runs the boosted algorithm: `base` with versions = lambda and a version
/// window of `window` rounds (0 = auto-split of the round limit).
NearCliqueResult run_boosted(const Graph& g, DriverConfig base,
                             std::uint16_t lambda, std::uint64_t window = 0);

}  // namespace nc
