#include "core/subsets.hpp"

#include <algorithm>
#include <limits>

namespace nc {

std::size_t member_position(const std::vector<NodeId>& sorted_members,
                            NodeId v) {
  const auto it =
      std::lower_bound(sorted_members.begin(), sorted_members.end(), v);
  if (it == sorted_members.end() || *it != v) {
    return std::numeric_limits<std::size_t>::max();
  }
  return static_cast<std::size_t>(it - sorted_members.begin());
}

std::uint64_t adjacency_mask(const std::vector<NodeId>& sorted_members,
                             const std::vector<NodeId>& sorted_neighbors) {
  std::uint64_t mask = 0;
  std::size_t i = 0, j = 0;
  while (i < sorted_members.size() && j < sorted_neighbors.size()) {
    if (sorted_members[i] < sorted_neighbors[j]) {
      ++i;
    } else if (sorted_members[i] > sorted_neighbors[j]) {
      ++j;
    } else {
      mask |= 1ULL << i;
      ++i;
      ++j;
    }
  }
  return mask;
}

std::vector<NodeId> subset_members(const std::vector<NodeId>& sorted_members,
                                   std::uint64_t x) {
  std::vector<NodeId> out;
  for (std::size_t j = 0; j < sorted_members.size(); ++j) {
    if ((x >> j) & 1ULL) out.push_back(sorted_members[j]);
  }
  return out;
}

}  // namespace nc
