#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/params.hpp"
#include "runtime/network.hpp"
#include "util/bitvec.hpp"
#include "util/ids.hpp"

namespace nc {

/// Wire message kinds of Algorithm DistNearClique. Every stream key is
/// (kind, tag, version) where tag is the component root ID (or 0 where no
/// component context exists yet).
enum MsgKind : std::uint16_t {
  kSampled = 1,      ///< round-1 bit per version: "I am in S"
  kFlood = 2,        ///< election flood; tag = candidate root, payload: dist
  kFloodAck = 3,     ///< DS ack; payload: 1 bit "a smaller root is known"
  kTreeFinal = 4,    ///< root's completion flood over S-edges (EOS only)
  kParentOf = 5,     ///< to an S-neighbour: 1 bit "you are my tree parent"
  kGatherIds = 6,    ///< convergecast of member IDs (exploration Step 2 up)
  kCompList = 7,     ///< member list broadcast down the tree (Step 2 down)
  kCompAnnounce = 8, ///< member -> non-S neighbour: member list (Step 3)
  kFringeReg = 9,    ///< non-S node -> member: 1 bit "you are my parent"
  kParticipate = 10, ///< to every neighbour: roots I participate in
  kKBitvec = 11,     ///< to every neighbour: K_{2eps^2} membership bits (4b)
  kKSum = 12,        ///< convergecast of |K_{2eps^2}(X)| partial sums (4c)
  kKCount = 13,      ///< broadcast of |K_{2eps^2}(X)| down tree+fringe (4d)
  kTSum = 14,        ///< convergecast of |T_eps(X)| partial sums (decision 1)
  kReport = 15,      ///< broadcast of (X*, |T_eps(X*)|) (decision 2)
  kVote = 16,        ///< ack(1)/abort(0), aggregated up the tree (decision 3)
  kVerdict = 17,     ///< survive bit broadcast down (decision 4)
};

// Every kind must fit the wire format's 5-bit kind field; the runtime's
// fixed-size per-kind tables (rx counters, bits_by_kind, inbox buckets) are
// sized by kMaxMsgKinds and open_stream rejects anything beyond it.
static_assert(kVerdict < kMaxMsgKinds,
              "MsgKind range exceeds the runtime's per-kind tables");

/// Encodes the output label of a surviving candidate: the paper labels a
/// near-clique by its component's root ID; the boosting wrapper extends the
/// label with the version index so two surviving versions rooted at the same
/// node cannot alias.
[[nodiscard]] constexpr Label make_label(NodeId root,
                                         std::uint16_t version) noexcept {
  return (static_cast<Label>(root) << 10) | version;
}

/// Root ID of a label produced by make_label.
[[nodiscard]] constexpr NodeId label_root(Label label) noexcept {
  return static_cast<NodeId>(label >> 10);
}

/// Version index of a label produced by make_label.
[[nodiscard]] constexpr std::uint16_t label_version(Label label) noexcept {
  return static_cast<std::uint16_t>(label & 0x3ff);
}

/// Per-candidate-root state of the Dijkstra-Scholten election (one entry per
/// flood this node adopted; floods that were not adopted are acked
/// immediately and need no state).
struct FloodState {
  std::size_t ds_parent_ni = 0;  ///< neighbour the deferred ack goes to
  std::uint32_t deficit = 0;     ///< unacked forwards
  bool flag = false;             ///< subtree saw a root smaller than this one
  bool acked = false;            ///< deferred ack already sent
};

/// Diagnostic record a component root keeps about its candidate (exposed to
/// drivers and benches; not used by the protocol itself).
struct RootCandidate {
  NodeId root = kNoNode;
  std::uint16_t version = 0;
  std::uint32_t component_size = 0;  ///< |S_i|
  std::uint64_t x_star = 0;          ///< argmax subset mask
  std::uint32_t t_size = 0;          ///< |T_eps(X*)|
  bool live = false;                 ///< enumerated (2^s-1 <= max_subsets)
  bool survived = false;             ///< won the decision stage
};

/// Participation of this node in one component (root, version): everything
/// the exploration and decision stages track per pair.
struct PairState {
  NodeId root = kNoNode;
  std::uint16_t version = 0;
  bool is_member = false;
  std::vector<NodeId> members;  ///< sorted component member list
  std::uint32_t s = 0;          ///< members.size()
  bool live = true;             ///< subset enumeration within cap

  std::size_t parent_ni = SIZE_MAX;  ///< tree parent / fringe attachment
  std::vector<std::size_t> child_nis;  ///< members: tree + fringe children

  // --- exploration ---
  bool explore_started = false;
  std::uint64_t a_mask = 0;  ///< adjacency over members
  BitVec k_bits;             ///< own K_{2eps^2} membership per subset
  OutChannel kbitvec_out, ksum_out, kcount_out, tsum_out, report_out,
      vote_out, verdict_out;
  bool kbitvec_opened = false, ksum_opened = false, kcount_opened = false,
       tsum_opened = false;
  std::size_t ksum_next = 0;    ///< next coordinate to emit upward
  std::size_t tsum_next = 0;
  std::vector<std::uint32_t> counts;  ///< |K(X)| from the root (4d)
  std::size_t counts_filled = 0;
  std::size_t kcount_relay_next = 0;  ///< members: relay cursor for 4d
  std::vector<std::uint32_t> nbr_k_accum;  ///< 4f: sum of neighbour K bits
  std::vector<std::size_t> pn_consumed;    ///< per participant-neighbour
  std::vector<std::size_t> participant_nbrs;  ///< neighbour indices
  std::optional<std::vector<std::size_t>> sampled_4f;  ///< 5.3 estimate mode
  bool participant_nbrs_known = false;
  bool t_done = false;
  BitVec t_bits;

  // --- root-side decision ---
  std::vector<std::uint32_t> tcounts;  ///< root: |T(X)| per subset
  std::size_t tcount_filled = 0;

  // --- decision ---
  bool report_done = false;
  std::size_t report_relay_next = 0;
  std::uint64_t x_star = 0;
  std::uint32_t t_size = 0;
  bool vote_sent = false;
  bool my_ack = false;
  std::size_t votes_in = 0;   ///< children votes received (members)
  bool all_children_ack = true;
  bool verdict_forwarded = false;
  bool resolved = false;
  bool survived = false;
};

/// Per-version protocol state (Section 4.1 runs `versions` of these in
/// consecutive round windows).
struct VersionState {
  std::uint16_t w = 1;  ///< 1-based version index
  bool started = false;
  bool frozen = false;   ///< window expired; no new exploration progress
  bool finalized = false;  ///< this node's candidate set for w is final

  bool in_s = false;
  std::vector<std::size_t> s_nbr;  ///< sampled neighbour indices
  bool s_known = false;

  // --- election (S-members only) ---
  NodeId best_root = kNoNode;
  std::uint32_t best_dist = 0;
  std::size_t best_parent_ni = SIZE_MAX;
  std::map<NodeId, FloodState> floods;  // nclint:allow(ordered-map) per-node election state, keyed by the few candidate roots a node sees
  std::uint32_t own_deficit = 0;  ///< as flood source
  bool own_flag = false;
  bool flood_sent = false;
  bool election_done = false;  ///< own flood's DS computation terminated
  bool i_am_root = false;

  // --- tree finalization ---
  bool tree_final_seen = false;
  bool tree_final_forwarded = false;
  bool parentof_sent_ = false;
  std::size_t parentof_in = 0;  ///< kParentOf bits received
  std::vector<std::size_t> tree_children;
  bool children_known = false;
  std::vector<std::size_t> fringe_children;

  // --- gather / component list (members) ---
  bool gather_opened = false;
  OutChannel gather_out;
  std::vector<NodeId> gathered;  ///< root: collected IDs
  bool complist_opened = false;
  OutChannel complist_out;
  std::size_t complist_relay_next = 0;
  std::vector<NodeId> comp;
  bool comp_known = false;

  // --- fringe registration (non-members) ---
  bool announces_done = false;
  bool registered = false;

  // --- fringe children collection (members) ---
  std::size_t fringe_in = 0;  ///< kFringeReg bits received
  bool fringe_known = false;

  // --- participation exchange ---
  bool participate_sent = false;
  std::vector<std::vector<NodeId>> nbr_participation;  ///< by neighbour index
  std::size_t participation_in = 0;  ///< closed kParticipate streams
  bool participation_known = false;

  bool announce_opened = false;
  OutChannel announce_out;  ///< shared kCompAnnounce buffer

  /// Last-seen delivery counters per message kind: scan-heavy handlers skip
  /// their inbox walk when nothing of the kind arrived since their last
  /// *successful* scan (guard-blocked handlers leave the counter untouched
  /// so the scan re-fires once unblocked).
  std::array<std::uint64_t, kMaxMsgKinds> seen_rx{};

  std::map<NodeId, PairState> pairs;  ///< by root  // nclint:allow(ordered-map) per-node pair state, bounded by participating roots
};

/// One processor running Algorithm DistNearClique (Section 4) under the
/// Section 4.1 wrappers. See DESIGN.md for the stage-by-stage narrative;
/// stage handlers live in protocol_election.cpp, protocol_gather.cpp,
/// protocol_explore.cpp and protocol_decide.cpp.
class DistNearCliqueNode : public INode {
 public:
  explicit DistNearCliqueNode(const ProtocolParams& params, Schedule schedule);

  void on_start(NodeApi& api) override;
  void on_round(NodeApi& api) override;

  /// Output register: the near-clique label, or kBottom.
  [[nodiscard]] Label label() const noexcept { return label_; }

  /// Root-side diagnostics for every component this node rooted.
  [[nodiscard]] const std::vector<RootCandidate>& root_candidates()
      const noexcept {
    return root_candidates_;
  }

  /// Local computation counter (membership tests + additions performed by
  /// the exploration stage); reported by experiment E12.
  [[nodiscard]] std::uint64_t local_ops() const noexcept { return local_ops_; }

  /// True once the output register is final.
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// The sampling coin this node would flip for version `w` — exposed so
  /// the centralized oracle replays the identical randomness.
  static bool sampling_coin(const Rng& node_rng, std::uint16_t w, double p);

 private:
  friend struct ProtocolTestPeek;

  // stage handlers --------------------------------------------------------
  void start_version(NodeApi& api, VersionState& vs);
  void read_sampled_bits(NodeApi& api, VersionState& vs);
  void run_election(NodeApi& api, VersionState& vs);
  void handle_flood(NodeApi& api, VersionState& vs, std::size_t ni,
                    NodeId cand, std::uint32_t dist);
  void send_ack(NodeApi& api, VersionState& vs, std::size_t ni, NodeId cand,
                bool flag);
  void become_root(NodeApi& api, VersionState& vs);
  void run_tree_final(NodeApi& api, VersionState& vs);
  void run_gather(NodeApi& api, VersionState& vs);
  void run_fringe(NodeApi& api, VersionState& vs);
  void run_participation(NodeApi& api, VersionState& vs);
  void maybe_init_pair(NodeApi& api, VersionState& vs, PairState& ps);
  void run_explore(NodeApi& api, VersionState& vs, PairState& ps);
  void run_decision(NodeApi& api);
  void maybe_vote(NodeApi& api);
  void run_votes_and_verdicts(NodeApi& api);
  void freeze_version(NodeApi& api, VersionState& vs);
  void force_resolve(NodeApi& api);
  void maybe_finish(NodeApi& api);

  // helpers ----------------------------------------------------------------
  [[nodiscard]] StreamKey key(std::uint16_t kind, NodeId tag,
                              std::uint16_t w) const noexcept {
    return StreamKey{kind, tag, w};
  }
  [[nodiscard]] unsigned idw() const noexcept { return idw_; }
  [[nodiscard]] bool version_finalized_for_vote(const VersionState& vs) const;

  /// True iff messages of `kind` arrived since this version's handler last
  /// scanned for them (used to skip inbox scans on quiet rounds; counters
  /// are per version so one version's scan never starves another's).
  static bool fresh(NodeApi& api, VersionState& vs, std::uint16_t kind);

  // telemetry probes (src/runtime/telemetry.hpp) ---------------------------
  // Every stream open goes through one of these wrappers, so the
  // dnc.stream_opens counter is exact. probe_add() returns immediately on
  // kNoProbe (telemetry off), so the wrappers cost one predictable branch.
  OutChannel open_counted(NodeApi& api, const StreamKey& k,
                          std::span<const std::size_t> nis) {
    api.probe_add(probe_opens_, 1);
    return api.open_stream(k, nis);
  }
  OutChannel open_counted_all(NodeApi& api, const StreamKey& k) {
    api.probe_add(probe_opens_, 1);
    return api.open_stream_all(k);
  }
  OutChannel open_counted_one(NodeApi& api, const StreamKey& k,
                              std::size_t ni) {
    api.probe_add(probe_opens_, 1);
    return api.open_stream_one(k, ni);
  }

  ProtocolParams params_;
  Schedule schedule_;
  unsigned idw_ = 0;
  std::vector<VersionState> versions_;
  Label label_ = kBottom;
  bool finished_ = false;
  bool voted_global_ = false;
  std::uint64_t local_ops_ = 0;
  std::vector<RootCandidate> root_candidates_;

  // Probe handles, registered in on_start (kNoProbe when telemetry is off).
  std::uint32_t probe_opens_ = NodeApi::kNoProbe;      ///< streams opened
  std::uint32_t probe_candidates_ = NodeApi::kNoProbe; ///< |S_i| per candidate
  std::uint32_t probe_pairs_ = NodeApi::kNoProbe;      ///< pairs initialized
};

}  // namespace nc
