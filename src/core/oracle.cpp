#include "core/oracle.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <tuple>

#include "core/subsets.hpp"
#include "graph/components.hpp"
#include "graph/metrics.hpp"
#include "util/bitvec.hpp"

namespace nc {

std::vector<NodeId> oracle_sample(const Graph& g, double p,
                                  std::uint64_t seed, std::uint16_t w) {
  const Rng master(seed);
  std::vector<NodeId> s;
  for (NodeId v = 0; v < g.n(); ++v) {
    const Rng node_rng = master.derive(v);
    if (DistNearCliqueNode::sampling_coin(node_rng, w, p)) s.push_back(v);
  }
  return s;
}

namespace {

/// One live component's exploration, replicated centrally.
struct CompCandidate {
  NodeId root;
  std::uint16_t version;
  std::vector<NodeId> members;      // sorted
  std::vector<NodeId> participants; // members ∪ fringe, sorted
  std::uint64_t x_star = 0;
  std::uint32_t t_size = 0;
  std::vector<NodeId> t_set;        // T_eps(X*), sorted
};

/// Enumerates all subsets of `members`, finds X* = argmax |T_eps(X)| with the
/// protocol's tie-break (strictly-greater replacement, ascending X).
void explore_component(const Graph& g, double eps, CompCandidate& cand) {
  const auto s = static_cast<std::uint32_t>(cand.members.size());
  const auto total = subset_count(s);
  const double inner = 2.0 * eps * eps;

  // Adjacency masks of every participant over the member list.
  std::vector<std::uint64_t> masks(cand.participants.size());
  for (std::size_t i = 0; i < cand.participants.size(); ++i) {
    const auto nb = g.neighbors(cand.participants[i]);
    masks[i] = adjacency_mask(cand.members,
                              std::vector<NodeId>(nb.begin(), nb.end()));
  }
  std::vector<std::size_t> need_inner(s + 1);
  for (std::uint32_t c = 0; c <= s; ++c) need_inner[c] = k_threshold(c, inner);

  // Participant adjacency among participants (for |Gamma(u) ∩ K(X)|).
  std::vector<BitVec> part_adj(cand.participants.size());
  {
    std::set<NodeId> pset(cand.participants.begin(), cand.participants.end());
    for (std::size_t i = 0; i < cand.participants.size(); ++i) {
      part_adj[i].assign_zero(cand.participants.size());
      for (const NodeId u : g.neighbors(cand.participants[i])) {
        const auto it = std::lower_bound(cand.participants.begin(),
                                         cand.participants.end(), u);
        if (it != cand.participants.end() && *it == u) {
          part_adj[i].set(
              static_cast<std::size_t>(it - cand.participants.begin()));
        }
      }
    }
  }

  std::uint64_t best_x = 1;
  std::uint32_t best_t = 0;
  std::vector<NodeId> best_set;
  BitVec k_set(cand.participants.size());
  for (std::uint64_t x = 1; x <= total; ++x) {
    const auto size_x = static_cast<std::uint32_t>(std::popcount(x));
    k_set.assign_zero(cand.participants.size());
    std::size_t k_count = 0;
    for (std::size_t i = 0; i < cand.participants.size(); ++i) {
      const auto inter =
          static_cast<std::size_t>(std::popcount(x & masks[i]));
      if (inter >= need_inner[size_x]) {
        k_set.set(i);
        ++k_count;
      }
    }
    const std::size_t need_outer = k_threshold(k_count, eps);
    std::vector<NodeId> t_set;
    for (std::size_t i = 0; i < cand.participants.size(); ++i) {
      if (!k_set.test(i)) continue;
      if (part_adj[i].count_and(k_set) >= need_outer) {
        t_set.push_back(cand.participants[i]);
      }
    }
    if (x == 1 || t_set.size() > best_t) {
      best_t = static_cast<std::uint32_t>(t_set.size());
      best_x = x;
      best_set = std::move(t_set);
    }
  }
  cand.x_star = best_x;
  cand.t_size = best_t;
  cand.t_set = std::move(best_set);
}

}  // namespace

std::vector<NodeId> oracle_t_set(const Graph& g, double eps,
                                 const std::vector<NodeId>& members,
                                 std::uint64_t x_mask) {
  const auto x = subset_members(members, x_mask);
  return t_eps(g, x, eps);
}

OracleResult run_oracle(const Graph& g, const ProtocolParams& proto,
                        std::uint64_t seed) {
  OracleResult out;
  out.labels.assign(g.n(), kBottom);

  std::vector<CompCandidate> cands;
  const std::uint16_t versions = std::max<std::uint16_t>(1, proto.versions);
  for (std::uint16_t w = 1; w <= versions; ++w) {
    const auto sample = oracle_sample(g, proto.p, seed, w);
    for (auto& members : induced_components(g, sample)) {
      CompCandidate cand;
      cand.root = members.front();  // sorted: minimum ID
      cand.version = w;
      const auto s = static_cast<std::uint32_t>(members.size());
      const bool live = s <= 63 && subset_count(s) <= proto.max_subsets;
      RootCandidate rc;
      rc.root = cand.root;
      rc.version = w;
      rc.component_size = s;
      rc.live = live;
      if (!live) {
        out.candidates.push_back(rc);
        out.t_sets.emplace_back();
        continue;
      }
      // Participants: members plus every node adjacent to a member.
      std::set<NodeId> parts(members.begin(), members.end());
      for (const NodeId m : members) {
        for (const NodeId u : g.neighbors(m)) parts.insert(u);
      }
      cand.members = std::move(members);
      cand.participants.assign(parts.begin(), parts.end());
      explore_component(g, proto.eps, cand);
      rc.x_star = cand.x_star;
      rc.t_size = cand.t_size;
      out.candidates.push_back(rc);
      out.t_sets.push_back(cand.t_set);
      cands.push_back(std::move(cand));
    }
  }

  // Decision stage: every participant acknowledges its best candidate
  // (largest |T|, then largest root, then largest version); a candidate
  // survives iff all of its participants acknowledged it.
  std::map<NodeId, std::tuple<std::uint32_t, NodeId, std::uint16_t>> best;  // nclint:allow(ordered-map) centralized oracle, not protocol code
  for (const auto& cand : cands) {
    if (cand.t_size < proto.min_report_size) continue;
    const std::tuple<std::uint32_t, NodeId, std::uint16_t> key{
        cand.t_size, cand.root, cand.version};
    for (const NodeId u : cand.participants) {
      const auto it = best.find(u);
      if (it == best.end() || key > it->second) best[u] = key;
    }
  }
  for (auto& cand : cands) {
    const std::tuple<std::uint32_t, NodeId, std::uint16_t> key{
        cand.t_size, cand.root, cand.version};
    bool survive = cand.t_size >= proto.min_report_size;
    if (survive) {
      for (const NodeId u : cand.participants) {
        if (best.at(u) != key) {
          survive = false;
          break;
        }
      }
    }
    if (survive) {
      for (auto& rc : out.candidates) {
        if (rc.root == cand.root && rc.version == cand.version) {
          rc.survived = true;
        }
      }
      for (const NodeId u : cand.t_set) {
        out.labels[u] = make_label(cand.root, cand.version);
      }
    }
  }
  return out;
}

}  // namespace nc
