#pragma once

#include <cstdint>

#include "runtime/network.hpp"
#include "util/ids.hpp"

namespace nc {

/// Parameters of Algorithm DistNearClique (Section 4) plus the knobs of the
/// two Section 4.1 wrappers (deterministic time bound, boosting).
struct ProtocolParams {
  /// The near-clique parameter epsilon of the algorithm (the paper assumes
  /// eps < 1/3; larger values are meaningless per Theorem 5.7).
  double eps = 0.1;

  /// Sampling probability p: every node enters S i.i.d. with probability p.
  double p = 0.05;

  /// Number of boosting versions (lambda in Section 4.1). Each version is an
  /// independent sampling+exploration pass; a single decision stage selects
  /// among all versions' candidates. 1 = the plain algorithm.
  std::uint16_t versions = 1;

  /// Round budget per version window (the deterministic time bound of
  /// Section 4.1). Versions run in consecutive windows ("any interleaving
  /// order" includes the sequential one); a version whose exploration has
  /// not produced complete reports by its window's end contributes no
  /// candidates. 0 = auto: a single generous window.
  std::uint64_t version_budget = 0;

  /// Extra rounds granted to the decision stage after the last version
  /// window; all nodes force-resolve at the deadline. 0 = auto (4n + 256).
  std::uint64_t decision_budget = 0;

  /// Components with more than this many non-empty subsets (2^|S_i| - 1)
  /// abstain entirely; counted as a failure, consistent with Lemma 5.2's
  /// concentration bound and the time-bound wrapper.
  std::uint32_t max_subsets = 1u << 18;

  /// Candidates with |T_eps(X)| below this are never acknowledged (the
  /// paper's remark that small sets "can be disqualified if a lower bound on
  /// the size of the dense subgraph is known"). 0 disables the filter.
  std::uint32_t min_report_size = 0;

  /// Step 4f estimation (Section 5.3 remark): if non-zero, each node samples
  /// this many neighbours instead of inspecting all of them when computing
  /// |Gamma(u) ∩ K(X)|, reducing local computation to poly(|S|) per round at
  /// the cost of estimated (rather than exact) membership in T_eps(X).
  std::uint32_t sample_4f = 0;

  /// Inner relaxation used by T_eps: K_{2 eps^2}. Kept as a method so the
  /// protocol and the oracle cannot diverge.
  [[nodiscard]] double inner_eps() const noexcept { return 2.0 * eps * eps; }
};

/// Everything a driver needs to execute the protocol on a graph.
struct DriverConfig {
  ProtocolParams proto;
  NetConfig net;
};

/// The sampling probability Theorem 2.1 plugs into Theorem 5.7:
/// p = O(log(1/(eps*delta)) / (eps^4 * delta)) / n, with constant `c`.
/// Clamped to (0, 1].
double recommended_p(double eps, double delta, NodeId n, double c = 1.0);

/// Derived deadline helpers shared by protocol, driver and oracle tests.
struct Schedule {
  std::uint64_t version_budget;    ///< resolved (auto applied)
  std::uint64_t decision_budget;   ///< resolved (auto applied)
  std::uint16_t versions;

  /// First round of version w's window (w is 1-based).
  [[nodiscard]] std::uint64_t version_start(std::uint16_t w) const noexcept {
    return 1 + static_cast<std::uint64_t>(w - 1) * version_budget;
  }
  /// First round *after* version w's window.
  [[nodiscard]] std::uint64_t version_end(std::uint16_t w) const noexcept {
    return 1 + static_cast<std::uint64_t>(w) * version_budget;
  }
  /// Round at which every node force-resolves and terminates.
  [[nodiscard]] std::uint64_t decision_deadline() const noexcept {
    return version_end(versions) + decision_budget;
  }
};

/// Resolves auto budgets against the network size and round limit.
Schedule make_schedule(const ProtocolParams& proto, NodeId n,
                       std::uint64_t max_rounds);

}  // namespace nc
