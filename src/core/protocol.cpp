#include "core/protocol.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitio.hpp"

namespace nc {

DistNearCliqueNode::DistNearCliqueNode(const ProtocolParams& params,
                                       Schedule schedule)
    : params_(params), schedule_(schedule) {
  versions_.resize(schedule_.versions);
  for (std::uint16_t i = 0; i < schedule_.versions; ++i) {
    versions_[i].w = static_cast<std::uint16_t>(i + 1);
  }
}

bool DistNearCliqueNode::fresh(NodeApi& api, VersionState& vs,
                               std::uint16_t kind) {
  const std::uint64_t now = api.rx_count(kind);
  if (now == vs.seen_rx[kind]) return false;
  vs.seen_rx[kind] = now;
  return true;
}

bool DistNearCliqueNode::sampling_coin(const Rng& node_rng, std::uint16_t w,
                                       double p) {
  Rng coin_rng = node_rng.derive(w);
  return coin_rng.next_bernoulli(p);
}

void DistNearCliqueNode::on_start(NodeApi& api) {
  idw_ = id_width(api.n());
  // Telemetry probes: all return kNoProbe (and every probe_add becomes a
  // single early-return branch) unless the run has probes enabled.
  probe_opens_ = api.probe_counter("dnc.stream_opens");
  probe_candidates_ = api.probe_gauge("dnc.candidate_nodes");
  probe_pairs_ = api.probe_counter("dnc.pairs_initialized");
  api.set_alarm(schedule_.version_start(1));
}

void DistNearCliqueNode::on_round(NodeApi& api) {
  if (finished_) return;
  const std::uint64_t r = api.round();

  for (auto& vs : versions_) {
    if (!vs.started && r >= schedule_.version_start(vs.w)) {
      start_version(api, vs);
    }
    if (!vs.started) continue;
    if (!vs.s_known) read_sampled_bits(api, vs);
    if (vs.s_known) {
      if (vs.in_s) {
        run_election(api, vs);
        run_tree_final(api, vs);
        run_gather(api, vs);
      } else {
        run_fringe(api, vs);
      }
      run_participation(api, vs);
      for (auto& [root, ps] : vs.pairs) {
        (void)root;
        if (!vs.frozen) run_explore(api, vs, ps);
      }
    }
    if (!vs.frozen && r >= schedule_.version_end(vs.w)) {
      freeze_version(api, vs);
    }
  }

  run_decision(api);
  if (r >= schedule_.decision_deadline()) force_resolve(api);
  maybe_finish(api);

  if (!finished_) {
    // Re-arm the next deadline so the simulator can fast-forward idle waits
    // and the liveness guard never fires spuriously.
    std::uint64_t next = schedule_.decision_deadline();
    for (const auto& vs : versions_) {
      if (!vs.started) {
        next = std::min(next, schedule_.version_start(vs.w));
      } else if (!vs.frozen) {
        next = std::min(next, schedule_.version_end(vs.w));
      }
    }
    if (next <= r) next = r + 1;  // deadline round itself: resolve next round
    api.set_alarm(next);
  }
}

void DistNearCliqueNode::start_version(NodeApi& api, VersionState& vs) {
  vs.started = true;
  vs.in_s = sampling_coin(api.rng(), vs.w, params_.p);
  vs.nbr_participation.resize(api.degree());
  // Announce the sampling coin to every neighbour (1 bit).
  auto ch = open_counted_all(api, key(kSampled, 0, vs.w));
  ch.put_bit(vs.in_s);
  ch.close();
  if (api.degree() == 0) {
    // Isolated node: it is its own singleton component if sampled; either
    // way there is nothing to discover or relay.
    vs.s_known = true;
    if (vs.in_s) {
      vs.best_root = api.id();
      vs.i_am_root = true;
      vs.election_done = true;
      vs.tree_final_seen = true;
      vs.children_known = true;
      vs.comp = {api.id()};
      vs.comp_known = true;
    }
  }
}

void DistNearCliqueNode::read_sampled_bits(NodeApi& api, VersionState& vs) {
  std::size_t have = 0;
  for (std::size_t ni = 0; ni < api.degree(); ++ni) {
    InStream* in = api.find_in(ni, key(kSampled, 0, vs.w));
    if (in != nullptr && (in->available() > 0 || in->closed())) ++have;
  }
  if (have < api.degree()) return;
  vs.s_nbr.clear();
  for (std::size_t ni = 0; ni < api.degree(); ++ni) {
    InStream* in = api.find_in(ni, key(kSampled, 0, vs.w));
    // Each neighbour sends exactly one bit; consume it once.
    if (in->available() > 0 && in->pop() != 0) vs.s_nbr.push_back(ni);
  }
  vs.s_known = true;
  if (vs.in_s) {
    vs.best_root = api.id();
    vs.best_dist = 0;
  }
}

void DistNearCliqueNode::freeze_version(NodeApi& api, VersionState& vs) {
  (void)api;
  vs.frozen = true;
  vs.finalized = true;
  // Pairs without complete reports contribute no candidates; my_ack is
  // already false for them. Exploration stops (run_explore is gated on
  // !frozen); vote/verdict machinery keeps running for pairs that completed,
  // and everything else resolves at the decision deadline.
}

bool DistNearCliqueNode::version_finalized_for_vote(
    const VersionState& vs) const {
  if (vs.frozen) return true;
  if (!vs.started || !vs.s_known) return false;
  const bool set_final =
      vs.in_s ? vs.comp_known : (vs.s_nbr.empty() || vs.registered);
  if (!set_final) return false;
  for (const auto& [root, ps] : vs.pairs) {
    (void)root;
    if (ps.live && !ps.report_done) return false;
  }
  return true;
}

void DistNearCliqueNode::force_resolve(NodeApi& api) {
  (void)api;
  for (auto& vs : versions_) {
    vs.finalized = true;
    for (auto& [root, ps] : vs.pairs) {
      (void)root;
      if (!ps.resolved) {
        ps.resolved = true;
        ps.survived = false;
      }
    }
  }
  voted_global_ = true;
}

void DistNearCliqueNode::maybe_finish(NodeApi& api) {
  if (finished_) return;
  for (const auto& vs : versions_) {
    if (!vs.started || !vs.finalized) return;
    for (const auto& [root, ps] : vs.pairs) {
      (void)root;
      if (!ps.resolved) return;
    }
    if (vs.in_s && !vs.frozen) {
      // Members must also finish their relay duties so children do not hang
      // waiting for component lists that would never arrive.
      if (!vs.comp_known) return;
      if (!vs.i_am_root && vs.gather_opened && !vs.gather_out.closed()) return;
      if (vs.complist_opened && !vs.complist_out.closed()) return;
    }
  }
  if (!voted_global_) return;
  finished_ = true;
  api.set_done();
}

}  // namespace nc
