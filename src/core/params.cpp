#include "core/params.hpp"

#include <algorithm>
#include <cmath>

namespace nc {

double recommended_p(double eps, double delta, NodeId n, double c) {
  const double inv = 1.0 / std::max(1e-9, eps * delta);
  const double numer = c * std::log(std::max(2.0, inv));
  const double denom = std::max(1e-12, eps * eps * eps * eps * delta);
  const double p = (numer / denom) / static_cast<double>(n);
  return std::clamp(p, 1e-9, 1.0);
}

Schedule make_schedule(const ProtocolParams& proto, NodeId n,
                       std::uint64_t max_rounds) {
  Schedule s;
  s.versions = std::max<std::uint16_t>(1, proto.versions);
  s.decision_budget = proto.decision_budget != 0
                          ? proto.decision_budget
                          : 4ULL * n + 256;
  if (proto.version_budget != 0) {
    s.version_budget = proto.version_budget;
  } else {
    // Auto: split whatever the round limit allows evenly across versions,
    // keeping the decision budget and a small safety margin.
    const std::uint64_t margin = 16;
    const std::uint64_t usable =
        max_rounds > s.decision_budget + margin
            ? max_rounds - s.decision_budget - margin
            : 1;
    s.version_budget = std::max<std::uint64_t>(1, usable / s.versions);
  }
  return s;
}

}  // namespace nc
