#pragma once

#include <map>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "runtime/accounting.hpp"

namespace nc {

/// Outcome of one distributed execution of Algorithm DistNearClique.
struct NearCliqueResult {
  std::vector<Label> labels;               ///< per node; kBottom = no clique
  RunStats stats;                          ///< rounds / messages / bits
  std::vector<RootCandidate> candidates;   ///< all component candidates
  std::uint64_t total_local_ops = 0;       ///< summed local computation

  /// Groups nodes by non-bottom label.
  [[nodiscard]] std::map<Label, std::vector<NodeId>> clusters() const;

  /// The largest output near-clique (empty when everything is bottom).
  [[nodiscard]] std::vector<NodeId> largest_cluster() const;

  /// True when the run was cut short (time-bound wrapper or liveness guard).
  [[nodiscard]] bool aborted() const {
    return stats.hit_round_limit || stats.stalled;
  }
};

/// Runs Algorithm DistNearClique on `g` under `cfg` and collects outputs.
NearCliqueResult run_dist_near_clique(const Graph& g, const DriverConfig& cfg);

/// Convenience: evaluates an output cluster against the paper's guarantees.
/// Returns the Definition-1 density of the set (1.0 for |set| <= 1).
double cluster_density(const Graph& g, const std::vector<NodeId>& cluster);

/// Success predicate used by the experiment harness for Theorem 5.7:
/// the largest output cluster has at least `min_size` nodes and density at
/// least `min_density`.
bool theorem_success(const Graph& g, const NearCliqueResult& result,
                     std::size_t min_size, double min_density);

}  // namespace nc
