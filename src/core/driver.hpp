#pragma once

#include <map>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "runtime/accounting.hpp"

namespace nc {

/// Outcome of one distributed execution of Algorithm DistNearClique.
struct NearCliqueResult {
  std::vector<Label> labels;               ///< per node; kBottom = no clique
  RunStats stats;                          ///< rounds / messages / bits
  std::vector<RootCandidate> candidates;   ///< all component candidates
  std::uint64_t total_local_ops = 0;       ///< summed local computation

  /// Termination post-mortem, filled only when the run aborted (stall or
  /// round limit) — see Network::stall_report(); !triggered() otherwise.
  StallReport stall;

  /// Groups nodes by non-bottom label.
  [[nodiscard]] std::map<Label, std::vector<NodeId>> clusters() const;  // nclint:allow(ordered-map) post-run result assembly, runs once per execution

  /// The largest output near-clique (empty when everything is bottom).
  [[nodiscard]] std::vector<NodeId> largest_cluster() const;

  /// True when the run was cut short (time-bound wrapper or liveness guard).
  [[nodiscard]] bool aborted() const {
    return stats.hit_round_limit || stats.stalled;
  }
};

/// Runs Algorithm DistNearClique on `g` under `cfg` and collects outputs.
NearCliqueResult run_dist_near_clique(const Graph& g, const DriverConfig& cfg);

/// Convenience: evaluates an output cluster against the paper's guarantees.
/// Returns the Definition-1 density of the set (1.0 for |set| <= 1).
double cluster_density(const Graph& g, const std::vector<NodeId>& cluster);

/// The single success predicate behind every Theorem 5.7 check (driver
/// checks, theorem57_success in expt/trial, the sweep runner's named
/// predicates): `cluster` has at least `min_size` nodes and is a
/// max_eps-near clique per Definition 1, evaluated with the exact integer
/// arithmetic of is_near_clique so boundary cases never depend on floating
/// rounding.
bool theorem_success(const Graph& g, const std::vector<NodeId>& cluster,
                     double min_size, double max_eps);

}  // namespace nc
