#include <algorithm>
#include <cassert>

#include "core/protocol.hpp"
#include "core/subsets.hpp"

// Exploration stage, Steps 2-3: the root gathers all member IDs over the
// tree and broadcasts the component list back down (Step 2); members then
// announce the list to their non-sampled neighbours, which pick one parent
// per adjacent component and register (Step 3). Every node also announces
// which components it participates in, so Step 4f consumers know exactly
// which neighbours will send K-membership vectors.

namespace nc {

namespace {
/// Creates this node's PairState for component `root` (called once the
/// member list is final). `cap` is ProtocolParams::max_subsets.
PairState make_pair(NodeId root, std::uint16_t w, bool is_member,
                    std::vector<NodeId> members, std::size_t parent_ni,
                    std::uint32_t cap) {
  PairState ps;
  ps.root = root;
  ps.version = w;
  ps.is_member = is_member;
  ps.members = std::move(members);
  ps.s = static_cast<std::uint32_t>(ps.members.size());
  ps.live = ps.s <= 63 && subset_count(ps.s) <= cap;
  ps.parent_ni = parent_ni;
  if (!ps.live) {
    // Abstaining component: no exploration, no candidate, nothing to vote
    // about. Everyone adjacent to it knows |S_i| and reaches the same
    // conclusion, so the pair resolves immediately and consistently.
    ps.resolved = true;
  }
  return ps;
}
}  // namespace

void DistNearCliqueNode::run_tree_final(NodeApi& api, VersionState& vs) {
  if (!vs.in_s) return;
  // Detect the root's completion wave. Note this may arrive while our own
  // (losing) candidacy's diffusing computation is still draining — the wave
  // only certifies that the minimum root's flood has quiesced, which fixes
  // everyone's best_root/parent.
  if (!vs.i_am_root && !vs.tree_final_seen && fresh(api, vs, kTreeFinal)) {
    api.for_each_in(kTreeFinal, [&](std::size_t ni, const StreamKey& k,
                                    InStream& in) {
      if (k.version != vs.w || !in.closed() || vs.tree_final_seen) return;
      vs.tree_final_seen = true;
      assert(k.tag == vs.best_root);
      // Forward the wave over the remaining S-edges.
      for (const std::size_t other : vs.s_nbr) {
        if (other == ni) continue;
        auto ch = open_counted_one(api, key(kTreeFinal, k.tag, vs.w), other);
        ch.close();
      }
      vs.tree_final_forwarded = true;
    });
  }
  if (vs.tree_final_seen && !vs.parentof_sent_) {
    vs.parentof_sent_ = true;
    for (const std::size_t ni : vs.s_nbr) {
      auto ch = open_counted_one(api, key(kParentOf, vs.best_root, vs.w), ni);
      ch.put_bit(ni == vs.best_parent_ni);
      ch.close();
    }
  }
  if (!vs.parentof_sent_ || vs.children_known) return;

  // Collect ParentOf bits from every S-neighbour.
  if (fresh(api, vs, kParentOf))
  api.for_each_in(kParentOf, [&](std::size_t ni, const StreamKey& k,
                                 InStream& in) {
    if (k.version != vs.w) return;
    while (in.available() > 0) {
      ++vs.parentof_in;
      if (in.pop() != 0) vs.tree_children.push_back(ni);
    }
  });
  if (vs.parentof_in == vs.s_nbr.size()) {
    std::sort(vs.tree_children.begin(), vs.tree_children.end());
    vs.children_known = true;
  }
}

void DistNearCliqueNode::run_gather(NodeApi& api, VersionState& vs) {
  if (!vs.in_s || !vs.children_known) return;
  const NodeId root = vs.best_root;

  // --- Step 2 up: member IDs to the root (pipelined relay). ---
  if (!vs.i_am_root) {
    if (!vs.gather_opened) {
      vs.gather_opened = true;
      vs.gather_out = open_counted_one(api, key(kGatherIds, root, vs.w),
                                          vs.best_parent_ni);
      vs.gather_out.put(api.id(), idw());
    }
    if (!vs.gather_out.closed()) {
      bool all_finished = true;
      for (const std::size_t ni : vs.tree_children) {
        InStream* in = api.find_in(ni, key(kGatherIds, root, vs.w));
        if (in == nullptr) {
          all_finished = false;
          continue;
        }
        while (in->available() > 0) vs.gather_out.put(in->pop(), idw());
        if (!in->finished()) all_finished = false;
      }
      if (all_finished) vs.gather_out.close();
    }
  } else if (!vs.comp_known) {
    bool all_finished = true;
    for (const std::size_t ni : vs.tree_children) {
      InStream* in = api.find_in(ni, key(kGatherIds, root, vs.w));
      if (in == nullptr) {
        all_finished = false;
        continue;
      }
      while (in->available() > 0) {
        vs.gathered.push_back(static_cast<NodeId>(in->pop()));
      }
      if (!in->finished()) all_finished = false;
    }
    if (all_finished) {
      vs.comp = vs.gathered;
      vs.comp.push_back(api.id());
      std::sort(vs.comp.begin(), vs.comp.end());
      vs.comp_known = true;
      // --- Step 2 down: broadcast the sorted list over the tree. ---
      if (!vs.tree_children.empty()) {
        vs.complist_opened = true;
        vs.complist_out =
            open_counted(api, key(kCompList, root, vs.w), vs.tree_children);
        for (const NodeId v : vs.comp) vs.complist_out.put(v, idw());
        vs.complist_out.close();
      }
    }
  }

  // --- Step 2 down, member side: receive + relay the component list. ---
  if (!vs.i_am_root && !vs.comp_known && vs.gather_opened) {
    InStream* in = api.find_in(vs.best_parent_ni, key(kCompList, root, vs.w));
    if (in != nullptr) {
      if (!vs.complist_opened && !vs.tree_children.empty()) {
        vs.complist_opened = true;
        vs.complist_out =
            open_counted(api, key(kCompList, root, vs.w), vs.tree_children);
      }
      while (in->available() > 0) {
        const auto id = static_cast<NodeId>(in->pop());
        vs.comp.push_back(id);
        if (vs.complist_opened) vs.complist_out.put(id, idw());
      }
      if (in->finished()) {
        if (vs.complist_opened) vs.complist_out.close();
        vs.comp_known = true;
      }
    }
  }

  // --- Step 3: announce the component to non-sampled neighbours and create
  // our own PairState. ---
  if (vs.comp_known && !vs.announce_opened) {
    vs.announce_opened = true;
    std::vector<std::size_t> fringe_nbrs;
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      if (!std::binary_search(vs.s_nbr.begin(), vs.s_nbr.end(), ni)) {
        fringe_nbrs.push_back(ni);
      }
    }
    if (!fringe_nbrs.empty()) {
      vs.announce_out =
          open_counted(api, key(kCompAnnounce, root, vs.w), fringe_nbrs);
      for (const NodeId v : vs.comp) vs.announce_out.put(v, idw());
      vs.announce_out.close();
    }
    vs.pairs.emplace(root,
                     make_pair(root, vs.w, /*is_member=*/true, vs.comp,
                               vs.i_am_root ? SIZE_MAX : vs.best_parent_ni,
                               params_.max_subsets));
    if (vs.i_am_root) {
      RootCandidate rc;
      rc.root = root;
      rc.version = vs.w;
      rc.component_size = static_cast<std::uint32_t>(vs.comp.size());
      rc.live = vs.pairs.at(root).live;
      root_candidates_.push_back(rc);
      api.probe_add(probe_candidates_, rc.component_size);
    }
  }

  // --- Fringe registration bits from non-sampled neighbours. ---
  if (vs.comp_known && !vs.fringe_known) {
    if (fresh(api, vs, kFringeReg)) {
      api.for_each_in(kFringeReg, [&](std::size_t ni, const StreamKey& k,
                                      InStream& in) {
        if (k.version != vs.w || k.tag != root) return;
        while (in.available() > 0) {
          ++vs.fringe_in;
          if (in.pop() != 0) vs.fringe_children.push_back(ni);
        }
      });
    }
    const std::size_t fringe_count = api.degree() - vs.s_nbr.size();
    if (vs.fringe_in == fringe_count) {
      vs.fringe_known = true;
      auto& ps = vs.pairs.at(root);
      ps.child_nis = vs.tree_children;
      ps.child_nis.insert(ps.child_nis.end(), vs.fringe_children.begin(),
                          vs.fringe_children.end());
      std::sort(ps.child_nis.begin(), ps.child_nis.end());
    }
  }
}

void DistNearCliqueNode::run_fringe(NodeApi& api, VersionState& vs) {
  if (vs.in_s || vs.registered || vs.s_nbr.empty()) return;
  if (!fresh(api, vs, kCompAnnounce)) return;

  // Wait for a finished kCompAnnounce stream from every sampled neighbour.
  std::size_t finished = 0;
  for (const std::size_t ni : vs.s_nbr) {
    bool found = false;
    api.for_each_in(kCompAnnounce, [&](std::size_t from, const StreamKey& k,
                                       InStream& in) {
      if (k.version == vs.w && from == ni && in.closed()) found = true;
    });
    if (found) ++finished;
  }
  if (finished < vs.s_nbr.size()) return;

  // Group sampled neighbours by component root and read the member lists.
  struct Adjacent {
    std::vector<NodeId> members;
    std::vector<std::size_t> member_nbrs;
  };
  std::map<NodeId, Adjacent> comps;  // nclint:allow(ordered-map) per-callback scratch over the handful of announced components
  api.for_each_in(kCompAnnounce, [&](std::size_t from, const StreamKey& k,
                                     InStream& in) {
    if (k.version != vs.w) return;
    auto& adj = comps[k.tag];
    adj.member_nbrs.push_back(from);
    if (adj.members.empty()) {
      while (in.available() > 0) {
        adj.members.push_back(static_cast<NodeId>(in.pop()));
      }
    } else {
      while (in.available() > 0) in.pop();  // duplicate copy; discard
    }
  });

  for (auto& [root, adj] : comps) {
    std::sort(adj.member_nbrs.begin(), adj.member_nbrs.end());
    const std::size_t parent_ni = adj.member_nbrs.front();
    for (const std::size_t ni : adj.member_nbrs) {
      auto ch = open_counted_one(api, key(kFringeReg, root, vs.w), ni);
      ch.put_bit(ni == parent_ni);
      ch.close();
    }
    vs.pairs.emplace(root, make_pair(root, vs.w, /*is_member=*/false,
                                     std::move(adj.members), parent_ni,
                                     params_.max_subsets));
  }
  vs.registered = true;
}

void DistNearCliqueNode::run_participation(NodeApi& api, VersionState& vs) {
  // Send our participation list exactly once, as soon as it is final.
  if (!vs.participate_sent) {
    bool ready = false;
    std::vector<NodeId> roots;
    if (vs.in_s) {
      if (vs.tree_final_seen) {
        roots.push_back(vs.best_root);
        ready = true;
      }
    } else if (vs.s_nbr.empty()) {
      ready = vs.s_known;
    } else if (vs.registered) {
      for (const auto& [root, ps] : vs.pairs) {
        (void)ps;
        roots.push_back(root);
      }
      ready = true;
    }
    if (ready && api.degree() > 0) {
      auto ch = open_counted_all(api, key(kParticipate, 0, vs.w));
      for (const NodeId r : roots) ch.put(r, idw());
      ch.close();
      vs.participate_sent = true;
    } else if (ready) {
      vs.participate_sent = true;
    }
  }

  // Collect neighbours' participation lists. Rescanning is pointless on
  // rounds where no kParticipate traffic arrived: nothing new is available
  // and closures are deliveries too, so the outcome cannot change (the
  // degree-0 case must still run once — its empty scan is what flips
  // participation_known).
  if (!vs.participation_known &&
      (api.degree() == 0 || fresh(api, vs, kParticipate))) {
    std::size_t closed = 0;
    for (std::size_t ni = 0; ni < api.degree(); ++ni) {
      InStream* in = api.find_in(ni, key(kParticipate, 0, vs.w));
      if (in == nullptr) continue;
      while (in->available() > 0) {
        vs.nbr_participation[ni].push_back(static_cast<NodeId>(in->pop()));
      }
      if (in->closed()) ++closed;
    }
    if (closed == api.degree()) {
      vs.participation_in = closed;
      vs.participation_known = true;
    }
  }
}

}  // namespace nc
