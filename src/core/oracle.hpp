#pragma once

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"

namespace nc {

/// Centralized re-implementation of Algorithm DistNearClique used as a
/// differential-testing reference: it replays the exact per-node sampling
/// coins of the distributed run (same seed derivation), computes the same
/// components, K/T sets with bit-identical integer thresholds, the same
/// argmax/tie-breaking, the same voting, and must therefore produce the
/// same labels whenever the distributed execution completes without hitting
/// a version window or the decision deadline (generous budgets; see
/// DESIGN.md). It is also the reference for Lemma 5.3 / 5.6 measurements,
/// since it can expose every candidate T_eps(X), not just the winner.
struct OracleResult {
  std::vector<Label> labels;                ///< per node, kBottom if none
  std::vector<RootCandidate> candidates;    ///< every live component
  std::vector<std::vector<NodeId>> t_sets;  ///< T_eps(X*) per candidate
};

/// The sample S a node with the given network seed draws for version `w`
/// (replicates Network's per-node RNG derivation and the protocol's coin).
std::vector<NodeId> oracle_sample(const Graph& g, double p,
                                  std::uint64_t seed, std::uint16_t w);

/// Runs the centralized reference on `g` with the protocol parameters and
/// the network seed (versions handled exactly like the boosting wrapper).
OracleResult run_oracle(const Graph& g, const ProtocolParams& proto,
                        std::uint64_t seed);

/// Exposes T_eps(X) for an explicit sample component and subset, computed
/// with the protocol's integer thresholds (tests pin Lemma 5.3 with this).
std::vector<NodeId> oracle_t_set(const Graph& g, double eps,
                                 const std::vector<NodeId>& members,
                                 std::uint64_t x_mask);

}  // namespace nc
