#include "core/driver.hpp"

#include <algorithm>
#include <memory>

#include "graph/metrics.hpp"

namespace nc {

std::map<Label, std::vector<NodeId>> NearCliqueResult::clusters() const {  // nclint:allow(ordered-map) post-run result assembly, runs once per execution
  std::map<Label, std::vector<NodeId>> out;  // nclint:allow(ordered-map) post-run result assembly, runs once per execution
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] != kBottom) out[labels[v]].push_back(v);
  }
  return out;
}

std::vector<NodeId> NearCliqueResult::largest_cluster() const {
  std::vector<NodeId> best;
  for (const auto& [label, members] : clusters()) {
    (void)label;
    if (members.size() > best.size()) best = members;
  }
  return best;
}

NearCliqueResult run_dist_near_clique(const Graph& g,
                                      const DriverConfig& cfg) {
  const Schedule schedule =
      make_schedule(cfg.proto, g.n(), cfg.net.max_rounds);
  Network net(g, cfg.net, [&](NodeId) {
    return std::make_unique<DistNearCliqueNode>(cfg.proto, schedule);
  });
  NearCliqueResult result;
  result.stats = net.run();
  result.labels.assign(g.n(), kBottom);
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& node = static_cast<DistNearCliqueNode&>(net.node(v));
    result.labels[v] = node.label();
    result.total_local_ops += node.local_ops();
    for (const auto& rc : node.root_candidates()) {
      result.candidates.push_back(rc);
    }
  }
  if (result.aborted()) {
    // Deterministic time bound exceeded: the paper's wrapper aborts the
    // whole run, so the output registers are all bottom. Capture the
    // post-mortem while the network still holds its final state.
    std::fill(result.labels.begin(), result.labels.end(), kBottom);
    result.stall = net.stall_report();
  }
  return result;
}

double cluster_density(const Graph& g, const std::vector<NodeId>& cluster) {
  return set_density(g, cluster);
}

bool theorem_success(const Graph& g, const std::vector<NodeId>& cluster,
                     double min_size, double max_eps) {
  if (static_cast<double>(cluster.size()) < min_size) return false;
  return is_near_clique(g, cluster, max_eps);
}

}  // namespace nc
