#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace nc {

/// Subset-enumeration helpers for the exploration stage.
///
/// A component S_i with s = |S_i| members (sorted ascending) indexes its
/// non-empty subsets X by the bitmasks 1 .. 2^s - 1 over positions in the
/// sorted member list; "coordinate" j of every exploration vector refers to
/// the subset with mask j+1. The paper enumerates all subsets including the
/// empty one, but K(∅) = V cannot be counted by a convergecast over
/// Gamma(S_i) and the analysis only needs the non-empty X* = S(1) ∩ C, so ∅
/// is skipped (see DESIGN.md).

/// Number of non-empty subsets of an s-element set: 2^s - 1.
/// Precondition: s <= 63.
[[nodiscard]] constexpr std::uint64_t subset_count(std::uint32_t s) noexcept {
  return (1ULL << s) - 1;
}

/// Position of node `v` in the sorted member list, or SIZE_MAX.
std::size_t member_position(const std::vector<NodeId>& sorted_members,
                            NodeId v);

/// Bitmask over the sorted member list marking which members are adjacent
/// to a node whose sorted neighbour list is given. Both inputs ascending.
/// Precondition: members.size() <= 63.
std::uint64_t adjacency_mask(const std::vector<NodeId>& sorted_members,
                             const std::vector<NodeId>& sorted_neighbors);

/// The members selected by subset mask `x` (bit j = sorted_members[j]).
std::vector<NodeId> subset_members(const std::vector<NodeId>& sorted_members,
                                   std::uint64_t x);

}  // namespace nc
