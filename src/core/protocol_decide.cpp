#include <cassert>
#include <tuple>

#include "core/protocol.hpp"

// Decision stage, Steps 3-4: once every version's candidate set is final,
// each participant acknowledges exactly the candidate reporting the largest
// |T_eps(X(S_i))| (ties: largest root ID, then largest version) and aborts
// all others. Votes are AND-aggregated up each component's tree (members
// wait for all tree and fringe children); the root declares the verdict and
// broadcasts it down; nodes in T_eps(X(S_i)) of a surviving candidate output
// its label, everyone else outputs bottom.
//
// Liveness note (see DESIGN.md): a candidate is reported only if its whole
// exploration completed, which implies every participant has complete
// structures and will eventually vote; unreported pairs can therefore only
// stall and are force-resolved at the decision deadline.

namespace nc {

void DistNearCliqueNode::run_decision(NodeApi& api) {
  maybe_vote(api);
  run_votes_and_verdicts(api);
}

void DistNearCliqueNode::maybe_vote(NodeApi& api) {
  (void)api;
  if (voted_global_) return;
  for (auto& vs : versions_) {
    if (!vs.started) return;  // a future version window has not opened yet
    if (!version_finalized_for_vote(vs)) return;
    vs.finalized = true;
  }
  // Candidate set is final across all versions; pick the winner.
  bool have_winner = false;
  std::tuple<std::uint32_t, NodeId, std::uint16_t> best{0, 0, 0};
  for (const auto& vs : versions_) {
    for (const auto& [root, ps] : vs.pairs) {
      if (!ps.live || !ps.report_done) continue;
      if (ps.t_size < params_.min_report_size) continue;
      const std::tuple<std::uint32_t, NodeId, std::uint16_t> cand{
          ps.t_size, root, vs.w};
      if (!have_winner || cand > best) {
        best = cand;
        have_winner = true;
      }
    }
  }
  for (auto& vs : versions_) {
    for (auto& [root, ps] : vs.pairs) {
      ps.my_ack = have_winner && ps.live && ps.report_done &&
                  root == std::get<1>(best) && vs.w == std::get<2>(best);
    }
  }
  voted_global_ = true;
}

void DistNearCliqueNode::run_votes_and_verdicts(NodeApi& api) {
  for (auto& vs : versions_) {
    for (auto& [root, ps] : vs.pairs) {
      (void)root;
      if (ps.resolved) continue;
      const bool is_root = ps.is_member && ps.parent_ni == SIZE_MAX;

      // Collect children votes (members only; fringe have no children).
      if (ps.is_member) {
        for (const std::size_t ni : ps.child_nis) {
          InStream* in = api.find_in(ni, key(kVote, ps.root, ps.version));
          if (in == nullptr) continue;
          while (in->available() > 0) {
            ++ps.votes_in;
            if (in->pop() == 0) ps.all_children_ack = false;
          }
        }
      }

      // Emit our (aggregated) vote / the verdict.
      if (voted_global_ && !ps.vote_sent) {
        if (!ps.is_member) {
          ps.vote_sent = true;
          auto ch = open_counted_one(api, key(kVote, ps.root, ps.version),
                                        ps.parent_ni);
          ch.put_bit(ps.my_ack);
          ch.close();
        } else if (vs.children_known && vs.fringe_known &&
                   ps.votes_in == ps.child_nis.size()) {
          ps.vote_sent = true;
          const bool agg = ps.my_ack && ps.all_children_ack;
          if (is_root) {
            ps.survived = agg;
            ps.resolved = true;
            for (auto& rc : root_candidates_) {
              if (rc.root == ps.root && rc.version == ps.version) {
                rc.survived = agg;
              }
            }
            if (!ps.child_nis.empty()) {
              ps.verdict_out = open_counted(api, 
                  key(kVerdict, ps.root, ps.version), ps.child_nis);
              ps.verdict_out.put_bit(agg);
              ps.verdict_out.close();
            }
            if (agg && ps.t_done && ps.t_bits.test(ps.x_star - 1)) {
              label_ = make_label(ps.root, ps.version);
            }
          } else {
            auto ch = open_counted_one(api, key(kVote, ps.root, ps.version),
                                          ps.parent_ni);
            ch.put_bit(agg);
            ch.close();
          }
        }
      }

      // Receive + relay the verdict.
      if (!is_root && !ps.resolved) {
        InStream* in =
            api.find_in(ps.parent_ni, key(kVerdict, ps.root, ps.version));
        if (in != nullptr && in->available() > 0) {
          const bool survive = in->pop() != 0;
          ps.survived = survive;
          ps.resolved = true;
          if (ps.is_member && !ps.child_nis.empty()) {
            ps.verdict_out = open_counted(api, key(kVerdict, ps.root, ps.version),
                                             ps.child_nis);
            ps.verdict_out.put_bit(survive);
            ps.verdict_out.close();
          }
          if (survive && ps.t_done && ps.x_star >= 1 &&
              ps.t_bits.test(ps.x_star - 1)) {
            label_ = make_label(ps.root, ps.version);
          }
        }
      }
    }
  }
}

}  // namespace nc
