#include "baselines/peeling.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/bitvec.hpp"

namespace nc {

double PeelResult::density_at(std::uint32_t k) const {
  if (k <= 1) return 1.0;
  for (const auto& st : steps) {
    if (st.size_after == k) {
      const auto denom =
          static_cast<double>(k) * static_cast<double>(k - 1);
      return static_cast<double>(st.ordered_pairs_after) / denom;
    }
  }
  return 0.0;
}

namespace {

struct Peeler {
  explicit Peeler(const Graph& g)
      : graph(g), alive(g.n()), deg(g.n()), order() {
    for (NodeId v = 0; v < g.n(); ++v) {
      alive.set(v);
      deg[v] = g.degree(v);
      queue.insert({deg[v], v});
      pairs += g.degree(v);
    }
  }

  /// Removes the minimum-degree vertex; returns it.
  NodeId pop_min() {
    const auto it = queue.begin();
    const NodeId v = it->second;
    queue.erase(it);
    alive.set(v, false);
    for (const NodeId u : graph.neighbors(v)) {
      if (!alive.test(u)) continue;
      queue.erase({deg[u], u});
      --deg[u];
      queue.insert({deg[u], u});
      pairs -= 2;  // ordered pairs (v,u) and (u,v) vanish
    }
    return v;
  }

  const Graph& graph;
  BitVec alive;
  std::vector<std::size_t> deg;
  std::set<std::pair<std::size_t, NodeId>> queue;
  std::uint64_t pairs = 0;  ///< ordered internal pairs among alive vertices
  std::vector<NodeId> order;
};

}  // namespace

PeelResult greedy_peel(const Graph& g) {
  PeelResult out;
  out.steps.reserve(g.n());
  Peeler peeler(g);
  for (NodeId i = 0; i < g.n(); ++i) {
    const NodeId v = peeler.pop_min();
    out.steps.push_back(PeelStep{v, static_cast<std::uint32_t>(g.n() - i - 1),
                                 peeler.pairs});
  }
  return out;
}

namespace {
/// Reconstructs the suffix that remains after the first `g.n() - k` removals.
std::vector<NodeId> suffix_of(const Graph& g, const PeelResult& peel,
                              std::uint32_t k) {
  std::vector<NodeId> removed_first;
  BitVec removed(g.n());
  for (std::size_t i = 0; i + k < g.n(); ++i) {
    removed.set(peel.steps[i].removed);
  }
  std::vector<NodeId> out;
  out.reserve(k);
  for (NodeId v = 0; v < g.n(); ++v) {
    if (!removed.test(v)) out.push_back(v);
  }
  return out;
}
}  // namespace

std::vector<NodeId> largest_near_clique_by_peeling(const Graph& g,
                                                   double eps) {
  const PeelResult peel = greedy_peel(g);
  for (const auto& st : peel.steps) {
    const std::uint32_t k = st.size_after;
    if (k <= 1) break;
    const auto total =
        static_cast<long double>(k) * static_cast<long double>(k - 1);
    const auto have = static_cast<long double>(st.ordered_pairs_after);
    if (total - have <= static_cast<long double>(eps) * total + 1e-9L) {
      return suffix_of(g, peel, k);
    }
  }
  return {};
}

std::vector<NodeId> densest_subgraph_by_peeling(const Graph& g) {
  const PeelResult peel = greedy_peel(g);
  std::uint32_t best_k = 0;
  double best_avg = -1.0;
  for (const auto& st : peel.steps) {
    if (st.size_after == 0) continue;
    const double avg = static_cast<double>(st.ordered_pairs_after) /
                       (2.0 * static_cast<double>(st.size_after));
    if (avg > best_avg) {
      best_avg = avg;
      best_k = st.size_after;
    }
  }
  if (best_k == 0) return {};
  return suffix_of(g, peel, best_k);
}

}  // namespace nc
