#include "baselines/shingles.hpp"

#include <algorithm>
#include <memory>

#include "runtime/network.hpp"
#include "util/bitio.hpp"

namespace nc {

namespace {

enum ShMsg : std::uint16_t {
  kShRandomId = 1,  ///< (rho, id)
  kShLabel = 2,     ///< (rho, id) of my label
  kShDegree = 3,    ///< in-set degree report to the leader
  kShVerdict = 4,   ///< survive bit from the leader
};

struct ShingleId {
  std::uint64_t rho = ~0ULL;
  NodeId node = kNoNode;
  auto operator<=>(const ShingleId&) const = default;
};

class ShinglesNode : public INode {
 public:
  explicit ShinglesNode(const ShinglesParams& params) : params_(params) {}

  void on_start(NodeApi& api) override {
    idw_ = id_width(api.n());
    rho_width_ = std::min(60u, 3 * idw_);  // poly(n) ID space
    mine_.rho = api.rng().next_below(1ULL << rho_width_);
    mine_.node = api.id();
    auto ch = api.open_stream_all(StreamKey{kShRandomId, 0, 0});
    ch.put(mine_.rho, rho_width_);
    ch.put(mine_.node, idw_);
    ch.close();
    api.set_alarm(1);
  }

  void on_round(NodeApi& api) override {
    switch (api.round()) {
      case 1: {  // pick the smallest ID in the closed neighbourhood
        label_ = mine_;
        leader_ni_ = SIZE_MAX;  // self
        for (std::size_t ni = 0; ni < api.degree(); ++ni) {
          InStream* in = api.find_in(ni, StreamKey{kShRandomId, 0, 0});
          const std::uint64_t rho = in->pop();
          const auto node = static_cast<NodeId>(in->pop());
          nbr_ids_.push_back(ShingleId{rho, node});
          if (nbr_ids_.back() < label_) {
            label_ = nbr_ids_.back();
            leader_ni_ = ni;
          }
        }
        auto ch = api.open_stream_all(StreamKey{kShLabel, 0, 0});
        ch.put(label_.rho, rho_width_);
        ch.put(label_.node, idw_);
        ch.close();
        api.set_alarm(2);
        break;
      }
      case 2: {  // in-set degree; report to the leader
        // Note the dual role: a node is the *leader* of the candidate set
        // labelled by its own random ID whenever any neighbour adopted it —
        // even if the node itself adopted a different (smaller) label. The
        // namesake of a label is always adjacent to every set member, so
        // this works in one hop.
        for (std::size_t ni = 0; ni < api.degree(); ++ni) {
          InStream* in = api.find_in(ni, StreamKey{kShLabel, 0, 0});
          const std::uint64_t rho = in->pop();
          const auto node = static_cast<NodeId>(in->pop());
          const ShingleId lab{rho, node};
          if (lab == label_) {
            ++in_set_degree_;
            same_label_nbrs_.push_back(ni);
          }
          if (lab == mine_) member_nbrs_.push_back(ni);
        }
        if (label_ != mine_ && leader_ni_ != SIZE_MAX) {
          auto ch = api.open_stream_one(StreamKey{kShDegree, 0, 0},
                                        leader_ni_);
          ch.put(in_set_degree_, idw_);
          ch.close();
        }
        api.set_alarm(3);
        break;
      }
      case 3: {  // leader role: compute density, decide, broadcast verdict
        const bool self_member = label_ == mine_;
        if (self_member || !member_nbrs_.empty()) {
          std::uint64_t pairs = self_member ? in_set_degree_ : 0;
          for (const std::size_t ni : member_nbrs_) {
            InStream* in = api.find_in(ni, StreamKey{kShDegree, 0, 0});
            pairs += in->pop();
          }
          const std::uint64_t k = member_nbrs_.size() + (self_member ? 1 : 0);
          const auto full = k >= 2 ? static_cast<long double>(k) *
                                         static_cast<long double>(k - 1)
                                   : 0.0L;
          const bool dense =
              full - static_cast<long double>(pairs) <=
              static_cast<long double>(params_.eps) * full + 1e-9L;
          survive_ = k >= params_.min_size && dense;
          if (!member_nbrs_.empty()) {
            std::vector<std::size_t> targets = member_nbrs_;
            auto ch = api.open_stream(StreamKey{kShVerdict, 0, 0}, targets);
            ch.put_bit(survive_);
            ch.close();
          }
          if (self_member) {
            out_ = survive_ ? static_cast<Label>(mine_.node) : kBottom;
          }
        }
        if (label_ == mine_) {
          api.set_done();  // own verdict decided locally
        } else {
          api.set_alarm(4);  // await our set's verdict as a member
        }
        break;
      }
      default: {  // members: collect the verdict from the namesake
        if (leader_ni_ != SIZE_MAX) {
          InStream* in = api.find_in(leader_ni_, StreamKey{kShVerdict, 0, 0});
          if (in != nullptr && in->available() > 0) {
            out_ = in->pop() != 0 ? static_cast<Label>(label_.node) : kBottom;
            api.set_done();
            return;
          }
        } else {
          api.set_done();
          return;
        }
        api.set_alarm(api.round() + 1);
        break;
      }
    }
  }

  [[nodiscard]] Label output() const noexcept { return out_; }

 private:
  ShinglesParams params_;
  unsigned idw_ = 0;
  unsigned rho_width_ = 0;
  ShingleId mine_;
  ShingleId label_;
  std::size_t leader_ni_ = SIZE_MAX;
  std::vector<ShingleId> nbr_ids_;
  std::vector<std::size_t> same_label_nbrs_;
  std::vector<std::size_t> member_nbrs_;  ///< leader: members adjacent to me
  std::uint64_t in_set_degree_ = 0;
  bool survive_ = false;
  Label out_ = kBottom;
};

}  // namespace

std::map<Label, std::vector<NodeId>> ShinglesResult::clusters() const {
  std::map<Label, std::vector<NodeId>> out;
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] != kBottom) out[labels[v]].push_back(v);
  }
  return out;
}

std::vector<NodeId> ShinglesResult::largest_cluster() const {
  std::vector<NodeId> best;
  for (const auto& [label, members] : clusters()) {
    (void)label;
    if (members.size() > best.size()) best = members;
  }
  return best;
}

ShinglesResult run_shingles(const Graph& g, const ShinglesParams& params,
                            std::uint64_t seed) {
  NetConfig net;
  net.seed = seed;
  net.max_rounds = 64;  // the algorithm needs five
  // (rho, id) must fit one message for the fixed round structure:
  // header + 4*idw bits <= B. Still O(log n) per message.
  net.bandwidth_factor = 12;
  Network network(g, net, [&](NodeId) {
    return std::make_unique<ShinglesNode>(params);
  });
  ShinglesResult result;
  result.stats = network.run();
  result.labels.assign(g.n(), kBottom);
  for (NodeId v = 0; v < g.n(); ++v) {
    result.labels[v] =
        static_cast<ShinglesNode&>(network.node(v)).output();
  }
  return result;
}

}  // namespace nc
