#pragma once

#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/accounting.hpp"
#include "util/ids.hpp"

namespace nc {

/// The "neighbours' neighbours" algorithm of Section 3: each node tells its
/// neighbours about all its neighbours, learns the topology to distance 2,
/// locally solves maximum clique on its closed neighbourhood, and announces
/// its chosen clique; a node keeps its clique only if every member chose the
/// same one (the smallest-ID tie-break the paper sketches).
///
/// The paper rules this algorithm out for two reasons this implementation
/// makes measurable (experiment E10/E12): it needs LOCAL-model messages of
/// up to Delta * log n bits, and each node solves an NP-hard problem on its
/// neighbourhood (we count Bron-Kerbosch expansions; `clique_budget` caps
/// them so adversarial neighbourhoods terminate, at the cost of optimality).
struct Neighbors2Params {
  std::size_t clique_budget = 2'000'000;  ///< BK expansions per node
};

struct Neighbors2Result {
  std::vector<Label> labels;  ///< min member ID of the kept clique
  RunStats stats;             ///< note max_message_bits ~ Delta log n
  std::uint64_t total_expansions = 0;  ///< summed local clique-search work
  bool any_budget_exhausted = false;

  [[nodiscard]] std::map<Label, std::vector<NodeId>> clusters() const;
  [[nodiscard]] std::vector<NodeId> largest_cluster() const;
};

/// Runs the algorithm in the LOCAL model (unbounded messages).
Neighbors2Result run_neighbors2(const Graph& g, const Neighbors2Params& params,
                                std::uint64_t seed);

}  // namespace nc
