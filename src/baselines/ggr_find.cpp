#include "baselines/ggr_find.hpp"

#include <algorithm>
#include <bit>

#include "core/subsets.hpp"
#include "graph/metrics.hpp"
#include "util/bitvec.hpp"

namespace nc {

GgrFindResult ggr_approximate_find(const Graph& g, double eps,
                                   std::uint32_t sample_size, Rng& rng) {
  GgrFindResult out;
  if (g.n() == 0) return out;
  sample_size = std::min<std::uint32_t>(sample_size, 20);  // 2^20 subsets cap
  const auto idx = rng.sample_without_replacement(g.n(), sample_size);
  out.sample.assign(idx.begin(), idx.end());
  std::sort(out.sample.begin(), out.sample.end());
  const auto s = static_cast<std::uint32_t>(out.sample.size());
  if (s == 0) return out;
  const auto total = subset_count(s);
  const double inner = 2.0 * eps * eps;

  // Adjacency of every node against the sample (s probes per node).
  std::vector<std::uint64_t> masks(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    std::uint64_t m = 0;
    for (std::uint32_t j = 0; j < s; ++j) {
      ++out.pair_queries;
      if (g.has_edge(v, out.sample[j])) m |= 1ULL << j;
    }
    masks[v] = m;
  }
  std::vector<std::size_t> need_inner(s + 1);
  for (std::uint32_t c = 0; c <= s; ++c) need_inner[c] = k_threshold(c, inner);

  std::vector<NodeId> best;
  std::uint64_t best_x = 0;
  for (std::uint64_t x = 1; x <= total; ++x) {
    const auto size_x = static_cast<std::uint32_t>(std::popcount(x));
    // K_{2eps^2}(X).
    std::vector<NodeId> k_set;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (static_cast<std::size_t>(std::popcount(x & masks[v])) >=
          need_inner[size_x]) {
        k_set.push_back(v);
      }
    }
    if (k_set.size() <= best.size()) continue;  // |T| <= |K|: prune
    // T_eps(X) = K_eps(K) ∩ K. Probing |Gamma(v) ∩ K| costs |K| queries per
    // candidate; we use the graph's adjacency directly but charge queries.
    BitVec k_mask(g.n());
    for (const NodeId v : k_set) k_mask.set(v);
    const std::size_t need_outer = k_threshold(k_set.size(), eps);
    std::vector<NodeId> t_set;
    for (const NodeId v : k_set) {
      std::size_t have = 0;
      for (const NodeId u : g.neighbors(v)) {
        if (k_mask.test(u)) ++have;
      }
      out.pair_queries += k_set.size();
      if (have >= need_outer) t_set.push_back(v);
    }
    if (t_set.size() > best.size()) {
      best = std::move(t_set);
      best_x = x;
    }
  }
  out.found = std::move(best);
  out.x_star = best_x;
  return out;
}

}  // namespace nc
