#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"

namespace nc {

/// Centralized greedy min-degree peeling (the classical densest-subgraph
/// 2-approximation of Charikar, adapted to the near-clique objective of
/// Definition 1). The paper cites the DkS approximation line of work
/// [7, 8] as the centralized state of the art; peeling is the standard
/// practical representative and serves as the quality baseline in
/// experiment E10.
///
/// The peel removes a minimum-degree vertex at a time; every suffix of the
/// removal order is a candidate subgraph whose Definition-1 density is
/// computed incrementally in O(m + n log n) total.
struct PeelStep {
  NodeId removed;            ///< vertex removed at this step
  std::uint32_t size_after;  ///< vertices remaining after removal
  std::uint64_t ordered_pairs_after;  ///< directed internal pairs remaining
};

struct PeelResult {
  std::vector<PeelStep> steps;

  /// Density (Definition 1) of the suffix with `size_after == k`, or 0.
  [[nodiscard]] double density_at(std::uint32_t k) const;
};

/// Runs the full peel.
PeelResult greedy_peel(const Graph& g);

/// The largest suffix of the peel that is an eps-near clique (Definition 1).
/// Returns the empty vector when even the 2-node suffixes fail.
std::vector<NodeId> largest_near_clique_by_peeling(const Graph& g, double eps);

/// The suffix maximizing average degree (the classical densest-subgraph
/// output), for reference in E10.
std::vector<NodeId> densest_subgraph_by_peeling(const Graph& g);

}  // namespace nc
