#pragma once

#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/accounting.hpp"
#include "util/ids.hpp"

namespace nc {

/// The "shingles algorithm" of Section 3, implemented faithfully as a
/// CONGEST protocol so Claim 1 (and Figure 1's counterexample family) can be
/// reproduced as experiment E4:
///
///   1. every node draws a random ID from a space large enough that
///      collisions are negligible and sends it to its neighbours;
///   2. each node labels itself with the smallest random ID it knows
///      (closed neighbourhood); all nodes with the same label form a
///      candidate set, whose namesake is its leader;
///   3. members report their in-set degree to the leader, which computes the
///      candidate's size and Definition-1 density;
///   4. sets that meet the size and density thresholds survive; the leader
///      broadcasts the verdict.
///
/// Candidate sets partition the labelled nodes, so the paper's tie-break
/// between overlapping sets never triggers here.
struct ShinglesParams {
  double eps = 0.1;             ///< survive iff density >= 1 - eps
  std::uint32_t min_size = 2;   ///< survive iff size >= min_size
};

struct ShinglesResult {
  std::vector<Label> labels;  ///< leader node ID, or kBottom
  RunStats stats;

  /// Surviving candidate sets grouped by label.
  [[nodiscard]] std::map<Label, std::vector<NodeId>> clusters() const;

  /// The largest surviving candidate set.
  [[nodiscard]] std::vector<NodeId> largest_cluster() const;
};

/// Runs the shingles algorithm on `g` (CONGEST, constant rounds).
ShinglesResult run_shingles(const Graph& g, const ShinglesParams& params,
                            std::uint64_t seed);

}  // namespace nc
