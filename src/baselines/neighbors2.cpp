#include "baselines/neighbors2.hpp"

#include <algorithm>
#include <memory>

#include "graph/builder.hpp"
#include "graph/cliques.hpp"
#include "runtime/network.hpp"
#include "util/bitio.hpp"

namespace nc {

namespace {

enum NnMsg : std::uint16_t {
  kNnAdjacency = 1,  ///< my full neighbour list
  kNnClique = 2,     ///< the clique I chose (ID list)
};

class Neighbors2Node : public INode {
 public:
  explicit Neighbors2Node(const Neighbors2Params& params) : params_(params) {}

  void on_start(NodeApi& api) override {
    idw_ = id_width(api.n());
    auto ch = api.open_stream_all(StreamKey{kNnAdjacency, 0, 0});
    for (const NodeId u : api.neighbors()) ch.put(u, idw_);
    ch.close();
    api.set_alarm(1);
  }

  void on_round(NodeApi& api) override {
    switch (api.round()) {
      case 1: {
        // Assemble the closed neighbourhood's induced subgraph from the
        // received lists (edges between two of our neighbours appear in
        // both endpoints' lists; we use local indices).
        std::vector<NodeId> ball(api.neighbors().begin(),
                                 api.neighbors().end());
        ball.push_back(api.id());
        std::sort(ball.begin(), ball.end());
        auto local_of = [&](NodeId v) {
          const auto it = std::lower_bound(ball.begin(), ball.end(), v);
          return it != ball.end() && *it == v
                     ? static_cast<NodeId>(it - ball.begin())
                     : kNoNode;
        };
        GraphBuilder builder(static_cast<NodeId>(ball.size()));
        const NodeId self_local = local_of(api.id());
        for (std::size_t ni = 0; ni < api.degree(); ++ni) {
          const NodeId u_local = local_of(api.neighbors()[ni]);
          builder.add_edge(self_local, u_local);
          InStream* in = api.find_in(ni, StreamKey{kNnAdjacency, 0, 0});
          while (in->available() > 0) {
            const auto x = static_cast<NodeId>(in->pop());
            const NodeId x_local = local_of(x);
            if (x_local != kNoNode && x_local != u_local) {
              builder.add_edge(u_local, x_local);
            }
          }
        }
        const Graph local = builder.build();
        std::vector<NodeId> allowed(local.n());
        for (NodeId v = 0; v < local.n(); ++v) allowed[v] = v;
        bool exhausted = false;
        auto clique_local = max_clique_containing(
            local, self_local, allowed, params_.clique_budget, &exhausted);
        expansions_ = last_clique_search_expansions();
        budget_exhausted_ = exhausted;
        clique_.clear();
        for (const NodeId v : clique_local) clique_.push_back(ball[v]);
        std::sort(clique_.begin(), clique_.end());
        auto ch = api.open_stream_all(StreamKey{kNnClique, 0, 0});
        for (const NodeId v : clique_) ch.put(v, idw_);
        ch.close();
        api.set_alarm(2);
        break;
      }
      case 2: {
        // Keep our clique only if every other member chose exactly it.
        bool consistent = true;
        for (std::size_t ni = 0; ni < api.degree(); ++ni) {
          const NodeId u = api.neighbors()[ni];
          if (!std::binary_search(clique_.begin(), clique_.end(), u)) continue;
          InStream* in = api.find_in(ni, StreamKey{kNnClique, 0, 0});
          std::vector<NodeId> theirs;
          while (in->available() > 0) {
            theirs.push_back(static_cast<NodeId>(in->pop()));
          }
          if (theirs != clique_) consistent = false;
        }
        if (consistent && clique_.size() >= 2) {
          out_ = static_cast<Label>(clique_.front());
        }
        api.set_done();
        break;
      }
      default:
        api.set_done();
        break;
    }
  }

  [[nodiscard]] Label output() const noexcept { return out_; }
  [[nodiscard]] std::uint64_t expansions() const noexcept {
    return expansions_;
  }
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return budget_exhausted_;
  }

 private:
  Neighbors2Params params_;
  unsigned idw_ = 0;
  std::vector<NodeId> clique_;
  std::uint64_t expansions_ = 0;
  bool budget_exhausted_ = false;
  Label out_ = kBottom;
};

}  // namespace

std::map<Label, std::vector<NodeId>> Neighbors2Result::clusters() const {
  std::map<Label, std::vector<NodeId>> out;
  for (NodeId v = 0; v < labels.size(); ++v) {
    if (labels[v] != kBottom) out[labels[v]].push_back(v);
  }
  return out;
}

std::vector<NodeId> Neighbors2Result::largest_cluster() const {
  std::vector<NodeId> best;
  for (const auto& [label, members] : clusters()) {
    (void)label;
    if (members.size() > best.size()) best = members;
  }
  return best;
}

Neighbors2Result run_neighbors2(const Graph& g, const Neighbors2Params& params,
                                std::uint64_t seed) {
  NetConfig net;
  net.seed = seed;
  net.mode = NetConfig::Mode::kLocal;  // unbounded messages, per Section 3
  net.max_rounds = 16;
  Network network(g, net, [&](NodeId) {
    return std::make_unique<Neighbors2Node>(params);
  });
  Neighbors2Result result;
  result.stats = network.run();
  result.labels.assign(g.n(), kBottom);
  for (NodeId v = 0; v < g.n(); ++v) {
    auto& node = static_cast<Neighbors2Node&>(network.node(v));
    result.labels[v] = node.output();
    result.total_expansions += node.expansions();
    result.any_budget_exhausted |= node.budget_exhausted();
  }
  return result;
}

}  // namespace nc
