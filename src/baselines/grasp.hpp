#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nc {

/// GRASP heuristic for massive quasi-clique detection, after Abello,
/// Resende & Sudarsky [1] (cited in the paper's related work as the
/// centralized near-clique heuristic). Greedy randomized construction with a
/// restricted candidate list, followed by a local add/swap improvement
/// phase, repeated for a number of multistart iterations; returns the
/// largest set whose Definition-1 density stays at least `gamma`.
struct GraspParams {
  double gamma = 0.9;        ///< density threshold (1 - eps)
  unsigned iterations = 16;  ///< multistart count
  double rcl_alpha = 0.3;    ///< greediness: 0 = pure greedy, 1 = random
  unsigned local_search_passes = 4;
};

/// Runs GRASP; returns the best gamma-quasi-clique found (sorted).
std::vector<NodeId> grasp_quasi_clique(const Graph& g,
                                       const GraspParams& params, Rng& rng);

}  // namespace nc
