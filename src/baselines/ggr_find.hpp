#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nc {

/// The "approximate find" of Goldreich, Goldwasser & Ron [10], Section 1 of
/// the paper: given that a rho-clique (or near-clique) exists, a centralized
/// algorithm that samples a uniform set U, enumerates its subsets X, builds
/// T(X) = K_eps(K_{2eps^2}(X)) ∩ K_{2eps^2}(X) for each, and outputs the
/// largest — in O(n) time (every node is classified against the sample).
/// This is exactly the centralized skeleton DistNearClique distributes; it
/// serves as the quality/work baseline of experiment E10 and as the bridge
/// to the property-testing module.
struct GgrFindResult {
  std::vector<NodeId> found;       ///< largest T_eps(X), sorted
  std::uint64_t x_star = 0;        ///< winning subset mask
  std::vector<NodeId> sample;      ///< the sample U
  std::uint64_t pair_queries = 0;  ///< adjacency probes spent
};

/// Runs the find with a sample of `sample_size` nodes.
GgrFindResult ggr_approximate_find(const Graph& g, double eps,
                                   std::uint32_t sample_size, Rng& rng);

}  // namespace nc
