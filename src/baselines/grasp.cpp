#include "baselines/grasp.hpp"

#include <algorithm>

#include "util/bitvec.hpp"

namespace nc {

namespace {

/// Incremental quasi-clique state: tracks internal ordered pairs and the
/// number of neighbours each outside vertex has inside the set.
struct Working {
  explicit Working(const Graph& g)
      : graph(g), inside(g.n()), inside_deg(g.n(), 0) {}

  void add(NodeId v) {
    inside.set(v);
    members.push_back(v);
    pairs += 2ULL * inside_deg[v];
    for (const NodeId u : graph.neighbors(v)) ++inside_deg[u];
  }

  void remove(NodeId v) {
    inside.set(v, false);
    members.erase(std::find(members.begin(), members.end(), v));
    for (const NodeId u : graph.neighbors(v)) --inside_deg[u];
    pairs -= 2ULL * inside_deg[v];
  }

  [[nodiscard]] double density_with(NodeId v) const {
    const auto k = members.size() + 1;
    if (k <= 1) return 1.0;
    const auto p = pairs + 2ULL * inside_deg[v];
    return static_cast<double>(p) /
           (static_cast<double>(k) * static_cast<double>(k - 1));
  }

  [[nodiscard]] double density() const {
    const auto k = members.size();
    if (k <= 1) return 1.0;
    return static_cast<double>(pairs) /
           (static_cast<double>(k) * static_cast<double>(k - 1));
  }

  const Graph& graph;
  BitVec inside;
  std::vector<std::size_t> inside_deg;  ///< neighbours inside, for all nodes
  std::vector<NodeId> members;
  std::uint64_t pairs = 0;  ///< ordered internal pairs
};

}  // namespace

std::vector<NodeId> grasp_quasi_clique(const Graph& g,
                                       const GraspParams& params, Rng& rng) {
  std::vector<NodeId> best;
  for (unsigned iter = 0; iter < params.iterations; ++iter) {
    Working work(g);
    // Seed: random vertex biased toward high degree (sample two, keep max).
    if (g.n() == 0) break;
    NodeId seed = static_cast<NodeId>(rng.next_below(g.n()));
    const NodeId alt = static_cast<NodeId>(rng.next_below(g.n()));
    if (g.degree(alt) > g.degree(seed)) seed = alt;
    work.add(seed);

    // Greedy randomized construction.
    for (;;) {
      // Candidates: outside vertices keeping density >= gamma, ranked by
      // inside-degree. Restricted candidate list per GRASP.
      std::vector<std::pair<std::size_t, NodeId>> cands;
      for (const NodeId m : work.members) {
        for (const NodeId u : g.neighbors(m)) {
          if (work.inside.test(u)) continue;
          if (work.density_with(u) + 1e-12 >= params.gamma) {
            cands.emplace_back(work.inside_deg[u], u);
          }
        }
      }
      if (cands.empty()) break;
      std::sort(cands.begin(), cands.end(),
                [](const auto& a, const auto& b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
                });
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      const auto limit = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(cands.size()) * params.rcl_alpha));
      const auto pick = rng.next_below(limit);
      work.add(cands[pick].second);
    }

    // Local search: try swapping a weakly-connected member for an outside
    // vertex that restores room to grow, then re-run construction greedily.
    for (unsigned pass = 0; pass < params.local_search_passes; ++pass) {
      if (work.members.size() < 3) break;
      NodeId weakest = work.members.front();
      std::size_t weakest_deg = g.n();
      for (const NodeId m : work.members) {
        if (work.inside_deg[m] < weakest_deg) {
          weakest_deg = work.inside_deg[m];
          weakest = m;
        }
      }
      const auto before = work.members.size();
      work.remove(weakest);
      // Greedy refill (pure greedy this time).
      for (;;) {
        NodeId best_u = kNoNode;
        std::size_t best_deg = 0;
        for (const NodeId m : work.members) {
          for (const NodeId u : g.neighbors(m)) {
            if (work.inside.test(u) || u == weakest) continue;
            if (work.density_with(u) + 1e-12 >= params.gamma &&
                (best_u == kNoNode || work.inside_deg[u] > best_deg)) {
              best_u = u;
              best_deg = work.inside_deg[u];
            }
          }
        }
        if (best_u == kNoNode) break;
        work.add(best_u);
      }
      if (work.members.size() <= before) {
        // No improvement; put the weakest member back if it still fits.
        if (work.density_with(weakest) + 1e-12 >= params.gamma) {
          work.add(weakest);
        }
        break;
      }
    }

    if (work.density() + 1e-12 >= params.gamma &&
        work.members.size() > best.size()) {
      best = work.members;
    }
  }
  std::sort(best.begin(), best.end());
  return best;
}

}  // namespace nc
