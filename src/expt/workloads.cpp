#include "expt/workloads.hpp"

#include <sstream>

namespace nc {

Instance make_theorem_instance(NodeId n, double delta, double eps,
                               double background_p, double halo_p,
                               std::uint64_t seed) {
  Rng rng(seed ^ 0x7e0001ULL);
  PlantedNearCliqueParams params;
  params.n = n;
  params.clique_size =
      static_cast<NodeId>(delta * static_cast<double>(n) + 0.5);
  params.eps_missing = eps * eps * eps;
  params.background_p = background_p;
  params.halo_p = halo_p;
  return planted_near_clique(params, rng);
}

Instance make_linear_instance(NodeId n, double eps, std::uint64_t seed) {
  return make_theorem_instance(n, 0.5, eps, 0.1, 0.3, seed);
}

Instance make_sublinear_instance(NodeId n, double alpha, std::uint64_t seed) {
  Rng rng(seed ^ 0x7e0003ULL);
  return sublinear_clique(n, alpha, 0.05, rng);
}

Instance make_counterexample_instance(NodeId n, double delta,
                                      std::uint64_t seed) {
  Rng rng(seed ^ 0x7e0004ULL);
  return shingles_counterexample(n, delta, rng);
}

Instance make_barbell_instance(NodeId n, bool delete_a_edges) {
  return barbell_gadget(n, delete_a_edges);
}

Instance make_web_instance(NodeId n, NodeId community, double eps,
                           std::uint64_t seed) {
  Rng rng(seed ^ 0x7e0005ULL);
  return power_law_web(n, 2.5, 8.0, community, eps * eps * eps, rng);
}

std::string describe_instance(const std::string& family, NodeId n,
                              double param) {
  std::ostringstream os;
  os << family << "(n=" << n << ", param=" << param << ")";
  return os.str();
}

}  // namespace nc
