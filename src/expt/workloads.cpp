#include "expt/workloads.hpp"

#include <sstream>

#include "expt/scenario.hpp"

namespace nc {

// Each typed helper is a one-line resolution through the ScenarioRegistry;
// the registry entries carry the seed salts these functions historically
// used, so fixed-seed instances are reproduced exactly.

Instance make_theorem_instance(NodeId n, double delta, double eps,
                               double background_p, double halo_p,
                               std::uint64_t seed) {
  return make_scenario("theorem",
                       ScenarioParams()
                           .with("n", n)
                           .with("delta", delta)
                           .with("eps", eps)
                           .with("background_p", background_p)
                           .with("halo_p", halo_p),
                       seed);
}

Instance make_linear_instance(NodeId n, double eps, std::uint64_t seed) {
  return make_scenario("linear",
                       ScenarioParams().with("n", n).with("eps", eps), seed);
}

Instance make_sublinear_instance(NodeId n, double alpha, std::uint64_t seed) {
  return make_scenario("sublinear",
                       ScenarioParams().with("n", n).with("alpha", alpha),
                       seed);
}

Instance make_counterexample_instance(NodeId n, double delta,
                                      std::uint64_t seed) {
  return make_scenario("counterexample",
                       ScenarioParams().with("n", n).with("delta", delta),
                       seed);
}

Instance make_barbell_instance(NodeId n, bool delete_a_edges) {
  return make_scenario(
      "barbell",
      ScenarioParams().with("n", n).with("delete_a_edges", delete_a_edges),
      /*seed=*/0);
}

Instance make_web_instance(NodeId n, NodeId community, double eps,
                           std::uint64_t seed) {
  return make_scenario(
      "web",
      ScenarioParams().with("n", n).with("community", community).with("eps",
                                                                      eps),
      seed);
}

std::string describe_instance(const std::string& family, NodeId n,
                              double param) {
  std::ostringstream os;
  os << family << "(n=" << n << ", param=" << param << ")";
  return os.str();
}

}  // namespace nc
