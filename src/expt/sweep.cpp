#include "expt/sweep.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "graph/metrics.hpp"
#include "runtime/faults.hpp"
#include "runtime/reliability.hpp"
#include "runtime/telemetry.hpp"
#include "util/json.hpp"

namespace nc {

namespace {

/// Explicitly set predicate parameters win; kFromParams (NaN) derives from
/// the run's own merged configuration with a final literal fallback.
double resolve(double explicit_value, const ParamSet& merged,
               const char* key, double fallback) {
  if (!std::isnan(explicit_value)) return explicit_value;
  return merged.get_double_or(key, fallback);
}

/// Resolves the per-trial success predicate for one grid point. `merged_*`
/// are the fully merged (defaults + overrides) parameter sets, so shared
/// keys like "eps"/"delta" read the same values the run will use.
std::function<bool(const Instance&, const AlgoResult&)> make_predicate(
    const SuccessSpec& spec, const ParamSet& merged_scenario,
    const ParamSet& merged_algo) {
  switch (spec.kind) {
    case SuccessSpec::Kind::kNone:
      return nullptr;
    case SuccessSpec::Kind::kTheorem57: {
      const double eps = resolve(spec.eps, merged_algo, "eps", 0.2);
      const double delta =
          resolve(spec.delta, merged_scenario, "delta", 0.4);
      return [eps, delta](const Instance& inst, const AlgoResult& res) {
        return theorem57_success(inst, res, eps, delta);
      };
    }
    case SuccessSpec::Kind::kEffective: {
      const double eps = resolve(spec.eps, merged_algo, "eps", 0.2);
      return [eps](const Instance& inst, const AlgoResult& res) {
        const auto best = res.largest_cluster();
        return 3 * best.size() >= 2 * inst.planted.size() &&
               cluster_density(inst.graph, best) >= 1.0 - 2.0 * eps;
      };
    }
    case SuccessSpec::Kind::kSizeDensity: {
      const double min_size = spec.min_size;
      const double max_eps = spec.max_eps;
      return [min_size, max_eps](const Instance& inst, const AlgoResult& res) {
        return theorem_success(inst.graph, res.largest_cluster(), min_size,
                               max_eps);
      };
    }
  }
  return nullptr;
}

void apply_axis(const SweepAxis& axis, double value, ParamSet& scenario,
                ParamSet& algo) {
  if (axis.target != SweepAxis::Target::kAlgorithm) {
    scenario.with(axis.key, value);
  }
  if (axis.target != SweepAxis::Target::kScenario) {
    algo.with(axis.key, value);
  }
}

void write_running_stat(JsonWriter& w, const char* name,
                        const RunningStat& s) {
  w.key(name)
      .begin_object()
      .key("mean")
      .value(s.mean())
      .key("min")
      .value(s.min())
      .key("max")
      .value(s.max())
      .key("stddev")
      .value(s.stddev())
      .key("count")
      .value(static_cast<std::uint64_t>(s.count()))
      .end_object();
}

void write_params(JsonWriter& w, const char* name, const ParamSet& params) {
  w.key(name).begin_object();
  for (const auto& [key, value] : params.values()) w.key(key).value(value);
  for (const auto& [key, value] : params.strings()) w.key(key).value(value);
  w.end_object();
}

const char* schedule_name(SeedSchedule s) {
  return s == SeedSchedule::kSalted ? "salted" : "sequential";
}

const char* target_name(SweepAxis::Target t) {
  switch (t) {
    case SweepAxis::Target::kScenario:
      return "scenario";
    case SweepAxis::Target::kAlgorithm:
      return "algo";
    case SweepAxis::Target::kBoth:
      return "both";
  }
  return "?";
}

SweepAxis::Target parse_target(const std::string& text) {
  if (text == "scenario") return SweepAxis::Target::kScenario;
  if (text == "algo" || text == "algorithm") {
    return SweepAxis::Target::kAlgorithm;
  }
  if (text == "both") return SweepAxis::Target::kBoth;
  throw std::invalid_argument("unknown axis target '" + text +
                              "'; use scenario, algo or both");
}

/// Spec-file param objects: numbers stay numbers, strings stay strings,
/// booleans become 1/0 (the ParamSet convention).
ParamSet param_set_from_json(const JsonValue& v, const std::string& what) {
  if (!v.is_object()) {
    throw std::invalid_argument(what + " must be a JSON object");
  }
  ParamSet out;
  for (const auto& [key, value] : v.object) {
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        out.with(key, value.number);
        break;
      case JsonValue::Kind::kString:
        out.with(key, value.string);
        break;
      case JsonValue::Kind::kBool:
        out.with(key, value.boolean ? 1.0 : 0.0);
        break;
      default:
        throw std::invalid_argument(what + "." + key +
                                    " must be a number, string or boolean");
    }
  }
  return out;
}

void write_success_spec(JsonWriter& w, const char* name,
                        const SuccessSpec& spec) {
  w.key(name).begin_object().key("kind").value(spec.name());
  // kFromParams (NaN) means "derive per grid point"; the document encodes
  // it by omission so round-tripping preserves the sentinel exactly.
  if (!std::isnan(spec.eps)) w.key("eps").value(spec.eps);
  if (!std::isnan(spec.delta)) w.key("delta").value(spec.delta);
  w.key("min_size").value(spec.min_size);
  w.key("max_eps").value(spec.max_eps);
  w.end_object();
}

SuccessSpec success_spec_from_json(const JsonValue& v,
                                   const std::string& what) {
  if (!v.is_object()) {
    throw std::invalid_argument(what + " must be a JSON object");
  }
  SuccessSpec spec;
  for (const auto& [key, value] : v.object) {
    if (key == "kind") {
      spec.kind = parse_success_spec(value.as_string(what + ".kind")).kind;
    } else if (key == "eps") {
      spec.eps = value.as_number(what + ".eps");
    } else if (key == "delta") {
      spec.delta = value.as_number(what + ".delta");
    } else if (key == "min_size") {
      spec.min_size = value.as_number(what + ".min_size");
    } else if (key == "max_eps") {
      spec.max_eps = value.as_number(what + ".max_eps");
    } else {
      throw std::invalid_argument(
          what + " has no field '" + key +
          "'; fields: kind, eps, delta, min_size, max_eps");
    }
  }
  return spec;
}

}  // namespace

std::string SuccessSpec::name() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kTheorem57:
      return "theorem57";
    case Kind::kEffective:
      return "effective";
    case Kind::kSizeDensity:
      return "size_density";
  }
  return "?";
}

SuccessSpec parse_success_spec(const std::string& text) {
  SuccessSpec spec;
  if (text == "none" || text.empty()) {
    spec.kind = SuccessSpec::Kind::kNone;
  } else if (text == "theorem57") {
    spec.kind = SuccessSpec::Kind::kTheorem57;
  } else if (text == "effective") {
    spec.kind = SuccessSpec::Kind::kEffective;
  } else if (text == "size_density") {
    spec.kind = SuccessSpec::Kind::kSizeDensity;
  } else {
    throw std::invalid_argument(
        "unknown success predicate '" + text +
        "'; options: none, theorem57, effective, size_density");
  }
  return spec;
}

double SweepRow::headline_cost_mean() const {
  return model == CostModel::kCongest ? stats.rounds.mean()
                                      : stats.local_ops.mean();
}

std::vector<SweepRow> run_sweep(const SweepSpec& spec,
                                TelemetryCapture* capture) {
  const auto& scenarios = ScenarioRegistry::global();
  const auto& algorithms = AlgorithmRegistry::global();

  const auto& family = scenarios.family(spec.scenario_family);
  if (spec.algorithms.empty()) {
    throw std::invalid_argument("sweep spec lists no algorithms");
  }
  if (!spec.faults.keys().empty()) {
    // Unknown fault keys would otherwise be silently skipped by the
    // declare-gated forwarding below; validate the bag as a plan up front.
    (void)fault_plan_from_params(
        merge_params(fault_param_defaults(), spec.faults, "fault plan"));
  }
  if (!spec.reliability.keys().empty()) {
    (void)reliability_plan_from_params(merge_params(
        reliability_param_defaults(), spec.reliability, "reliability plan"));
  }
  if (!spec.telemetry.keys().empty()) {
    (void)telemetry_plan_from_params(merge_params(
        telemetry_param_defaults(), spec.telemetry, "telemetry plan"));
  }
  for (const auto& axis : spec.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis '" + axis.key +
                                  "' has no values");
    }
  }

  // Phase 1 — expand the grid (first axis outermost). A grid point fixes
  // the scenario overrides and the axis contribution to algorithm params;
  // it is shared by every algorithm.
  struct GridPoint {
    ParamSet scenario_overrides;
    ParamSet algo_axis_overrides;
  };
  std::vector<GridPoint> points;
  std::vector<std::size_t> index(spec.axes.size(), 0);
  while (true) {
    GridPoint point{spec.scenario_params, {}};
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
      apply_axis(spec.axes[i], spec.axes[i].values[index[i]],
                 point.scenario_overrides, point.algo_axis_overrides);
    }
    points.push_back(std::move(point));
    // Odometer increment, last axis fastest; i reaches 0 when every axis
    // wrapped (or there are no axes — a single grid point).
    std::size_t i = spec.axes.size();
    while (i > 0 && ++index[i - 1] == spec.axes[i - 1].values.size()) {
      index[i - 1] = 0;
      --i;
    }
    if (i == 0) break;
  }

  // Phase 2 — build and validate every (algorithm, grid point) row up
  // front, so a typo fails before any trial runs. Rows are algorithm-major.
  struct Cell {
    std::size_t row;  ///< index into rows
    const AlgorithmRegistry::Algorithm* entry;
    std::function<bool(const Instance&, const AlgoResult&)> success;
    std::function<bool(const Instance&, const AlgoResult&)> success2;
  };
  std::vector<SweepRow> rows;
  rows.reserve(spec.algorithms.size() * points.size());
  // cells[p] lists the per-algorithm work at grid point p.
  std::vector<std::vector<Cell>> cells(points.size());
  for (const auto& algo : spec.algorithms) {
    const auto& entry = algorithms.algorithm(algo.name);
    for (std::size_t p = 0; p < points.size(); ++p) {
      SweepRow row;
      row.scenario_family = spec.scenario_family;
      row.scenario_params = points[p].scenario_overrides;
      row.algorithm = algo.name;
      row.model = entry.model;
      row.algo_params = algo.params;
      for (const auto& [key, value] :
           points[p].algo_axis_overrides.values()) {
        row.algo_params.with(key, value);
      }
      // The sweep-level threads knob reaches every algorithm that declares
      // the parameter (the shared algorithm_declares rule); explicit
      // per-algorithm overrides win.
      if (spec.threads > 1 && !row.algo_params.has("threads") &&
          algorithm_declares(algo.name, "threads")) {
        row.algo_params.with("threads", spec.threads);
      }
      // The sweep-level fault plan reaches declaring algorithms the same
      // way, key by key; explicit per-algorithm and axis values win.
      for (const auto& [key, value] : spec.faults.values()) {
        if (!row.algo_params.has(key) && algorithm_declares(algo.name, key)) {
          row.algo_params.with(key, value);
        }
      }
      // And the sweep-level reliability plan, with the same precedence.
      for (const auto& [key, value] : spec.reliability.values()) {
        if (!row.algo_params.has(key) && algorithm_declares(algo.name, key)) {
          row.algo_params.with(key, value);
        }
      }
      // And the sweep-level telemetry knobs, with the same precedence.
      for (const auto& [key, value] : spec.telemetry.values()) {
        if (!row.algo_params.has(key) && algorithm_declares(algo.name, key)) {
          row.algo_params.with(key, value);
        }
      }
      row.scenario_merged =
          merge_params(family.defaults, row.scenario_params,
                       "scenario family '" + spec.scenario_family + "'");
      row.algo_merged = merge_params(entry.defaults, row.algo_params,
                                     "algorithm '" + algo.name + "'");
      row.trials = spec.trials;
      row.seed_base = spec.seed_base;
      row.seeds = spec.seeds;
      Cell cell;
      cell.row = rows.size();
      cell.entry = &entry;
      cell.success =
          make_predicate(spec.success, row.scenario_merged, row.algo_merged);
      cell.success2 =
          make_predicate(spec.success2, row.scenario_merged, row.algo_merged);
      cells[p].push_back(std::move(cell));
      rows.push_back(std::move(row));
    }
  }

  // Phase 3 — execute grid-point-major: each instance is generated once
  // per (grid point, seed) and shared by every algorithm. Per row the
  // trials still arrive in seed order, so aggregation is identical to a
  // hand-wired run_trials batch.
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t t = 0; t < spec.trials; ++t) {
      const std::uint64_t seed = spec.seeds == SeedSchedule::kSalted
                                     ? spec.seed_base + 7919 * (t + 1)
                                     : spec.seed_base + t;
      const Instance inst = scenarios.make(
          {spec.scenario_family, points[p].scenario_overrides, seed});
      for (const Cell& cell : cells[p]) {
        SweepRow& row = rows[cell.row];
        // Phase 2 already merged and validated row.algo_merged; invoke the
        // adapter directly instead of re-merging through run() per trial.
        AlgoResult result =
            cell.entry->run(inst.graph, row.algo_merged, seed);
        result.model = cell.entry->model;
        accumulate_trial(row.stats, inst, result,
                         cell.success && cell.success(inst, result),
                         cell.success2 && cell.success2(inst, result));
        if (capture != nullptr && result.telemetry != nullptr) {
          capture->entries.push_back({row.algorithm, cell.row, t, seed,
                                      std::move(result.telemetry)});
        }
      }
    }
  }
  return rows;
}

std::string sweep_row_json(const SweepRow& row) {
  JsonWriter w;
  w.begin_object();
  w.key("scenario").begin_object().key("family").value(row.scenario_family);
  write_params(w, "params", row.scenario_merged);
  w.end_object();
  w.key("algorithm")
      .begin_object()
      .key("name")
      .value(row.algorithm)
      .key("model")
      .value(cost_model_name(row.model));
  write_params(w, "params", row.algo_merged);
  w.end_object();
  w.key("seed_base").value(row.seed_base);
  w.key("seed_schedule").value(schedule_name(row.seeds));
  w.key("trials").value(static_cast<std::uint64_t>(row.stats.trials));
  w.key("successes").value(static_cast<std::uint64_t>(row.stats.successes));
  w.key("success_rate").value(row.stats.success_rate());
  const auto ci = row.stats.success_interval();
  w.key("success_ci")
      .begin_array()
      .value(ci.lo)
      .value(ci.hi)
      .end_array();
  w.key("successes2").value(static_cast<std::uint64_t>(row.stats.successes2));
  write_running_stat(w, "rounds", row.stats.rounds);
  write_running_stat(w, "bits", row.stats.bits);
  write_running_stat(w, "max_msg_bits", row.stats.max_msg_bits);
  write_running_stat(w, "out_size", row.stats.out_size);
  write_running_stat(w, "out_density", row.stats.out_density);
  write_running_stat(w, "size_ratio", row.stats.size_ratio);
  write_running_stat(w, "recall", row.stats.recall);
  write_running_stat(w, "local_ops", row.stats.local_ops);
  w.key("cost").value(row.headline_cost_mean());
  w.end_object();
  return w.str();
}

std::string sweep_json_lines(const std::vector<SweepRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += sweep_row_json(row);
    out += '\n';
  }
  return out;
}

std::string sweep_spec_json(const SweepSpec& spec) {
  JsonWriter w;
  w.begin_object();
  w.key("title").value(spec.title);
  w.key("scenario").begin_object().key("family").value(spec.scenario_family);
  write_params(w, "params", spec.scenario_params);
  w.end_object();
  w.key("algorithms").begin_array();
  for (const auto& algo : spec.algorithms) {
    w.begin_object().key("name").value(algo.name);
    write_params(w, "params", algo.params);
    w.end_object();
  }
  w.end_array();
  w.key("axes").begin_array();
  for (const auto& axis : spec.axes) {
    w.begin_object()
        .key("target")
        .value(target_name(axis.target))
        .key("key")
        .value(axis.key)
        .key("values")
        .begin_array();
    for (const double v : axis.values) w.value(v);
    w.end_array().end_object();
  }
  w.end_array();
  w.key("trials").value(static_cast<std::uint64_t>(spec.trials));
  w.key("seed_base").value(spec.seed_base);
  w.key("seeds").value(schedule_name(spec.seeds));
  w.key("threads").value(static_cast<std::uint64_t>(spec.threads));
  write_params(w, "faults", spec.faults);
  write_params(w, "reliability", spec.reliability);
  write_params(w, "telemetry", spec.telemetry);
  write_success_spec(w, "success", spec.success);
  write_success_spec(w, "success2", spec.success2);
  w.end_object();
  return w.str();
}

SweepSpec sweep_spec_from_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("sweep spec must be a JSON object");
  }
  SweepSpec spec;
  bool have_scenario = false;
  bool have_algorithms = false;
  for (const auto& [key, value] : doc.object) {
    if (key == "title") {
      spec.title = value.as_string("title");
    } else if (key == "scenario") {
      if (!value.is_object()) {
        throw std::invalid_argument("scenario must be a JSON object");
      }
      for (const auto& [skey, svalue] : value.object) {
        if (skey == "family") {
          spec.scenario_family = svalue.as_string("scenario.family");
        } else if (skey == "params") {
          spec.scenario_params =
              param_set_from_json(svalue, "scenario.params");
        } else {
          throw std::invalid_argument("scenario has no field '" + skey +
                                      "'; fields: family, params");
        }
      }
      have_scenario = !spec.scenario_family.empty();
    } else if (key == "algorithms") {
      for (const auto& item : value.as_array("algorithms")) {
        if (!item.is_object()) {
          throw std::invalid_argument(
              "algorithms entries must be JSON objects");
        }
        AlgoSpec algo;
        for (const auto& [akey, avalue] : item.object) {
          if (akey == "name") {
            algo.name = avalue.as_string("algorithm.name");
          } else if (akey == "params") {
            algo.params = param_set_from_json(avalue, "algorithm.params");
          } else {
            throw std::invalid_argument("algorithm entry has no field '" +
                                        akey + "'; fields: name, params");
          }
        }
        if (algo.name.empty()) {
          throw std::invalid_argument("algorithm entry needs a name");
        }
        spec.algorithms.push_back(std::move(algo));
      }
      have_algorithms = !spec.algorithms.empty();
    } else if (key == "axes") {
      for (const auto& item : value.as_array("axes")) {
        if (!item.is_object()) {
          throw std::invalid_argument("axes entries must be JSON objects");
        }
        SweepAxis axis;
        for (const auto& [akey, avalue] : item.object) {
          if (akey == "target") {
            axis.target = parse_target(avalue.as_string("axis.target"));
          } else if (akey == "key") {
            axis.key = avalue.as_string("axis.key");
          } else if (akey == "values") {
            for (const auto& v : avalue.as_array("axis.values")) {
              axis.values.push_back(v.as_number("axis value"));
            }
          } else {
            throw std::invalid_argument("axis entry has no field '" + akey +
                                        "'; fields: target, key, values");
          }
        }
        if (axis.key.empty() || axis.values.empty()) {
          throw std::invalid_argument(
              "each axis needs a key and at least one value");
        }
        spec.axes.push_back(std::move(axis));
      }
    } else if (key == "trials") {
      const double t = value.as_number("trials");
      if (t < 1 || t != std::floor(t)) {
        throw std::invalid_argument("trials must be an integer >= 1");
      }
      spec.trials = static_cast<std::size_t>(t);
    } else if (key == "seed_base") {
      const double s = value.as_number("seed_base");
      if (s < 0 || s != std::floor(s)) {
        throw std::invalid_argument("seed_base must be an integer >= 0");
      }
      spec.seed_base = static_cast<std::uint64_t>(s);
    } else if (key == "seeds") {
      const std::string& name = value.as_string("seeds");
      if (name == "salted") {
        spec.seeds = SeedSchedule::kSalted;
      } else if (name == "sequential") {
        spec.seeds = SeedSchedule::kSequential;
      } else {
        throw std::invalid_argument("seeds must be 'salted' or 'sequential'");
      }
    } else if (key == "threads") {
      const double t = value.as_number("threads");
      if (t < 1 || t != std::floor(t)) {
        throw std::invalid_argument("threads must be an integer >= 1");
      }
      spec.threads = static_cast<std::size_t>(t);
    } else if (key == "faults") {
      spec.faults = param_set_from_json(value, "faults");
      // Fail on unknown keys / bad ranges now, with the fault catalogue,
      // instead of at run time.
      (void)fault_plan_from_params(
          merge_params(fault_param_defaults(), spec.faults, "fault plan"));
    } else if (key == "reliability") {
      spec.reliability = param_set_from_json(value, "reliability");
      (void)reliability_plan_from_params(merge_params(
          reliability_param_defaults(), spec.reliability, "reliability plan"));
    } else if (key == "telemetry") {
      spec.telemetry = param_set_from_json(value, "telemetry");
      (void)telemetry_plan_from_params(merge_params(
          telemetry_param_defaults(), spec.telemetry, "telemetry plan"));
    } else if (key == "success") {
      spec.success = success_spec_from_json(value, "success");
    } else if (key == "success2") {
      spec.success2 = success_spec_from_json(value, "success2");
    } else {
      throw std::invalid_argument(
          "sweep spec has no field '" + key +
          "'; fields: title, scenario, algorithms, axes, trials, seed_base, "
          "seeds, threads, faults, reliability, telemetry, success, "
          "success2");
    }
  }
  if (!have_scenario) {
    throw std::invalid_argument("sweep spec needs scenario.family");
  }
  if (!have_algorithms) {
    throw std::invalid_argument(
        "sweep spec needs at least one algorithms entry");
  }
  return spec;
}

Table sweep_table(const std::vector<SweepRow>& rows) {
  Table t({"scenario", "algorithm", "model", "overrides", "success", "size",
           "density", "recall", "max_msg_bits", "cost"});
  for (const auto& row : rows) {
    std::string overrides = describe_params(row.scenario_params);
    const std::string algo_overrides = describe_params(row.algo_params);
    if (!algo_overrides.empty()) overrides += " |" + algo_overrides;
    if (overrides.empty()) overrides = " (defaults)";
    t.add_row({row.scenario_family, row.algorithm,
               cost_model_name(row.model), overrides.substr(1),
               Table::num(row.stats.success_rate(), 2),
               Table::num(row.stats.out_size.mean(), 1),
               Table::num(row.stats.out_density.mean(), 3),
               Table::num(row.stats.recall.mean(), 2),
               Table::num(row.stats.max_msg_bits.max(), 0),
               Table::num(row.headline_cost_mean(), 0)});
  }
  return t;
}

}  // namespace nc
