#include "expt/sweep.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "graph/metrics.hpp"
#include "util/json.hpp"

namespace nc {

namespace {

/// Explicitly set predicate parameters win; kFromParams (NaN) derives from
/// the run's own merged configuration with a final literal fallback.
double resolve(double explicit_value, const ParamSet& merged,
               const char* key, double fallback) {
  if (!std::isnan(explicit_value)) return explicit_value;
  return merged.get_double_or(key, fallback);
}

/// Resolves the per-trial success predicate for one grid point. `merged_*`
/// are the fully merged (defaults + overrides) parameter sets, so shared
/// keys like "eps"/"delta" read the same values the run will use.
std::function<bool(const Instance&, const AlgoResult&)> make_predicate(
    const SuccessSpec& spec, const ParamSet& merged_scenario,
    const ParamSet& merged_algo) {
  switch (spec.kind) {
    case SuccessSpec::Kind::kNone:
      return nullptr;
    case SuccessSpec::Kind::kTheorem57: {
      const double eps = resolve(spec.eps, merged_algo, "eps", 0.2);
      const double delta =
          resolve(spec.delta, merged_scenario, "delta", 0.4);
      return [eps, delta](const Instance& inst, const AlgoResult& res) {
        return theorem57_success(inst, res, eps, delta);
      };
    }
    case SuccessSpec::Kind::kEffective: {
      const double eps = resolve(spec.eps, merged_algo, "eps", 0.2);
      return [eps](const Instance& inst, const AlgoResult& res) {
        const auto best = res.largest_cluster();
        return 3 * best.size() >= 2 * inst.planted.size() &&
               cluster_density(inst.graph, best) >= 1.0 - 2.0 * eps;
      };
    }
    case SuccessSpec::Kind::kSizeDensity: {
      const double min_size = spec.min_size;
      const double max_eps = spec.max_eps;
      return [min_size, max_eps](const Instance& inst, const AlgoResult& res) {
        return theorem_success(inst.graph, res.largest_cluster(), min_size,
                               max_eps);
      };
    }
  }
  return nullptr;
}

void apply_axis(const SweepAxis& axis, double value, ParamSet& scenario,
                ParamSet& algo) {
  if (axis.target != SweepAxis::Target::kAlgorithm) {
    scenario.with(axis.key, value);
  }
  if (axis.target != SweepAxis::Target::kScenario) {
    algo.with(axis.key, value);
  }
}

void write_running_stat(JsonWriter& w, const char* name,
                        const RunningStat& s) {
  w.key(name)
      .begin_object()
      .key("mean")
      .value(s.mean())
      .key("min")
      .value(s.min())
      .key("max")
      .value(s.max())
      .key("stddev")
      .value(s.stddev())
      .key("count")
      .value(static_cast<std::uint64_t>(s.count()))
      .end_object();
}

void write_params(JsonWriter& w, const char* name, const ParamSet& params) {
  w.key(name).begin_object();
  for (const auto& [key, value] : params.values()) w.key(key).value(value);
  for (const auto& [key, value] : params.strings()) w.key(key).value(value);
  w.end_object();
}

const char* schedule_name(SeedSchedule s) {
  return s == SeedSchedule::kSalted ? "salted" : "sequential";
}

}  // namespace

std::string SuccessSpec::name() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kTheorem57:
      return "theorem57";
    case Kind::kEffective:
      return "effective";
    case Kind::kSizeDensity:
      return "size_density";
  }
  return "?";
}

SuccessSpec parse_success_spec(const std::string& text) {
  SuccessSpec spec;
  if (text == "none" || text.empty()) {
    spec.kind = SuccessSpec::Kind::kNone;
  } else if (text == "theorem57") {
    spec.kind = SuccessSpec::Kind::kTheorem57;
  } else if (text == "effective") {
    spec.kind = SuccessSpec::Kind::kEffective;
  } else if (text == "size_density") {
    spec.kind = SuccessSpec::Kind::kSizeDensity;
  } else {
    throw std::invalid_argument(
        "unknown success predicate '" + text +
        "'; options: none, theorem57, effective, size_density");
  }
  return spec;
}

double SweepRow::headline_cost_mean() const {
  return model == CostModel::kCongest ? stats.rounds.mean()
                                      : stats.local_ops.mean();
}

std::vector<SweepRow> run_sweep(const SweepSpec& spec) {
  const auto& scenarios = ScenarioRegistry::global();
  const auto& algorithms = AlgorithmRegistry::global();

  const auto& family = scenarios.family(spec.scenario_family);
  if (spec.algorithms.empty()) {
    throw std::invalid_argument("sweep spec lists no algorithms");
  }
  for (const auto& axis : spec.axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis '" + axis.key +
                                  "' has no values");
    }
  }

  // Phase 1 — expand the grid (first axis outermost). A grid point fixes
  // the scenario overrides and the axis contribution to algorithm params;
  // it is shared by every algorithm.
  struct GridPoint {
    ParamSet scenario_overrides;
    ParamSet algo_axis_overrides;
  };
  std::vector<GridPoint> points;
  std::vector<std::size_t> index(spec.axes.size(), 0);
  while (true) {
    GridPoint point{spec.scenario_params, {}};
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
      apply_axis(spec.axes[i], spec.axes[i].values[index[i]],
                 point.scenario_overrides, point.algo_axis_overrides);
    }
    points.push_back(std::move(point));
    // Odometer increment, last axis fastest; i reaches 0 when every axis
    // wrapped (or there are no axes — a single grid point).
    std::size_t i = spec.axes.size();
    while (i > 0 && ++index[i - 1] == spec.axes[i - 1].values.size()) {
      index[i - 1] = 0;
      --i;
    }
    if (i == 0) break;
  }

  // Phase 2 — build and validate every (algorithm, grid point) row up
  // front, so a typo fails before any trial runs. Rows are algorithm-major.
  struct Cell {
    std::size_t row;  ///< index into rows
    const AlgorithmRegistry::Algorithm* entry;
    std::function<bool(const Instance&, const AlgoResult&)> success;
    std::function<bool(const Instance&, const AlgoResult&)> success2;
  };
  std::vector<SweepRow> rows;
  rows.reserve(spec.algorithms.size() * points.size());
  // cells[p] lists the per-algorithm work at grid point p.
  std::vector<std::vector<Cell>> cells(points.size());
  for (const auto& algo : spec.algorithms) {
    const auto& entry = algorithms.algorithm(algo.name);
    for (std::size_t p = 0; p < points.size(); ++p) {
      SweepRow row;
      row.scenario_family = spec.scenario_family;
      row.scenario_params = points[p].scenario_overrides;
      row.algorithm = algo.name;
      row.model = entry.model;
      row.algo_params = algo.params;
      for (const auto& [key, value] :
           points[p].algo_axis_overrides.values()) {
        row.algo_params.with(key, value);
      }
      // The sweep-level threads knob reaches every algorithm that declares
      // the parameter (the shared algorithm_declares rule); explicit
      // per-algorithm overrides win.
      if (spec.threads > 1 && !row.algo_params.has("threads") &&
          algorithm_declares(algo.name, "threads")) {
        row.algo_params.with("threads", spec.threads);
      }
      row.scenario_merged =
          merge_params(family.defaults, row.scenario_params,
                       "scenario family '" + spec.scenario_family + "'");
      row.algo_merged = merge_params(entry.defaults, row.algo_params,
                                     "algorithm '" + algo.name + "'");
      row.trials = spec.trials;
      row.seed_base = spec.seed_base;
      row.seeds = spec.seeds;
      Cell cell;
      cell.row = rows.size();
      cell.entry = &entry;
      cell.success =
          make_predicate(spec.success, row.scenario_merged, row.algo_merged);
      cell.success2 =
          make_predicate(spec.success2, row.scenario_merged, row.algo_merged);
      cells[p].push_back(std::move(cell));
      rows.push_back(std::move(row));
    }
  }

  // Phase 3 — execute grid-point-major: each instance is generated once
  // per (grid point, seed) and shared by every algorithm. Per row the
  // trials still arrive in seed order, so aggregation is identical to a
  // hand-wired run_trials batch.
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t t = 0; t < spec.trials; ++t) {
      const std::uint64_t seed = spec.seeds == SeedSchedule::kSalted
                                     ? spec.seed_base + 7919 * (t + 1)
                                     : spec.seed_base + t;
      const Instance inst = scenarios.make(
          {spec.scenario_family, points[p].scenario_overrides, seed});
      for (const Cell& cell : cells[p]) {
        SweepRow& row = rows[cell.row];
        // Phase 2 already merged and validated row.algo_merged; invoke the
        // adapter directly instead of re-merging through run() per trial.
        AlgoResult result =
            cell.entry->run(inst.graph, row.algo_merged, seed);
        result.model = cell.entry->model;
        accumulate_trial(row.stats, inst, result,
                         cell.success && cell.success(inst, result),
                         cell.success2 && cell.success2(inst, result));
      }
    }
  }
  return rows;
}

std::string sweep_row_json(const SweepRow& row) {
  JsonWriter w;
  w.begin_object();
  w.key("scenario").begin_object().key("family").value(row.scenario_family);
  write_params(w, "params", row.scenario_merged);
  w.end_object();
  w.key("algorithm")
      .begin_object()
      .key("name")
      .value(row.algorithm)
      .key("model")
      .value(cost_model_name(row.model));
  write_params(w, "params", row.algo_merged);
  w.end_object();
  w.key("seed_base").value(row.seed_base);
  w.key("seed_schedule").value(schedule_name(row.seeds));
  w.key("trials").value(static_cast<std::uint64_t>(row.stats.trials));
  w.key("successes").value(static_cast<std::uint64_t>(row.stats.successes));
  w.key("success_rate").value(row.stats.success_rate());
  const auto ci = row.stats.success_interval();
  w.key("success_ci")
      .begin_array()
      .value(ci.lo)
      .value(ci.hi)
      .end_array();
  w.key("successes2").value(static_cast<std::uint64_t>(row.stats.successes2));
  write_running_stat(w, "rounds", row.stats.rounds);
  write_running_stat(w, "bits", row.stats.bits);
  write_running_stat(w, "max_msg_bits", row.stats.max_msg_bits);
  write_running_stat(w, "out_size", row.stats.out_size);
  write_running_stat(w, "out_density", row.stats.out_density);
  write_running_stat(w, "size_ratio", row.stats.size_ratio);
  write_running_stat(w, "recall", row.stats.recall);
  write_running_stat(w, "local_ops", row.stats.local_ops);
  w.key("cost").value(row.headline_cost_mean());
  w.end_object();
  return w.str();
}

std::string sweep_json_lines(const std::vector<SweepRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += sweep_row_json(row);
    out += '\n';
  }
  return out;
}

Table sweep_table(const std::vector<SweepRow>& rows) {
  Table t({"scenario", "algorithm", "model", "overrides", "success", "size",
           "density", "recall", "max_msg_bits", "cost"});
  for (const auto& row : rows) {
    std::string overrides = describe_params(row.scenario_params);
    const std::string algo_overrides = describe_params(row.algo_params);
    if (!algo_overrides.empty()) overrides += " |" + algo_overrides;
    if (overrides.empty()) overrides = " (defaults)";
    t.add_row({row.scenario_family, row.algorithm,
               cost_model_name(row.model), overrides.substr(1),
               Table::num(row.stats.success_rate(), 2),
               Table::num(row.stats.out_size.mean(), 1),
               Table::num(row.stats.out_density.mean(), 3),
               Table::num(row.stats.recall.mean(), 2),
               Table::num(row.stats.max_msg_bits.max(), 0),
               Table::num(row.headline_cost_mean(), 0)});
  }
  return t;
}

}  // namespace nc
