#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace nc {

/// Aggregated measurements over repeated randomized trials of one
/// experimental configuration (one table row). Success is defined by the
/// experiment (each bench documents its predicate against the paper's
/// statement being reproduced).
struct TrialStats {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t successes2 = 0;  ///< optional secondary predicate

  [[nodiscard]] double success2_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes2) /
                             static_cast<double>(trials);
  }
  RunningStat rounds;
  RunningStat bits;
  RunningStat max_msg_bits;
  RunningStat out_size;        ///< largest output cluster size
  RunningStat out_density;     ///< its Definition-1 density
  RunningStat size_ratio;      ///< |output| / |planted|
  RunningStat recall;          ///< |output ∩ planted| / |planted|
  RunningStat local_ops;

  [[nodiscard]] double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] Interval success_interval() const {
    return wilson_interval(successes, trials);
  }
};

/// Per-trial hooks: generate the instance, run the algorithm, judge success.
struct TrialSpec {
  std::function<Instance(std::uint64_t seed)> make_instance;
  std::function<NearCliqueResult(const Graph& g, std::uint64_t seed)> run;
  /// Judge: given graph, planted set and result, is this trial a success?
  std::function<bool(const Instance&, const NearCliqueResult&)> success;
  /// Optional second judge (e.g. a non-vacuous finite-n predicate reported
  /// next to the literal theorem predicate).
  std::function<bool(const Instance&, const NearCliqueResult&)> success2;
};

/// Runs `trials` seeded executions and aggregates.
TrialStats run_trials(const TrialSpec& spec, std::size_t trials,
                      std::uint64_t seed_base);

/// Builds a TrialSpec::make_instance hook that resolves `family` through the
/// global ScenarioRegistry with the given parameter overrides; the per-trial
/// seed from run_trials becomes the scenario seed. This is how the E1..E12
/// benches plug instance families into trial batches — one registry lookup,
/// no per-bench generator plumbing.
std::function<Instance(std::uint64_t)> scenario_maker(std::string family,
                                                      ScenarioParams params);

/// Standard Theorem 5.7 success predicate: the largest output cluster is a
/// bound_eps-near clique of size at least (1 - 13/2 eps)|D| - eps^{-2}.
bool theorem57_success(const Instance& inst, const NearCliqueResult& result,
                       double eps, double delta);

/// Theorem 5.7 bounds, exposed for table printing.
struct Theorem57Bounds {
  double min_size;     ///< (1 - 13/2 eps)|D| - eps^{-2}, floored at 2
  double max_eps_out;  ///< (1/(1 - 13/2 eps)) * eps/delta
};
Theorem57Bounds theorem57_bounds(double eps, double delta,
                                 std::size_t planted_size);

}  // namespace nc
