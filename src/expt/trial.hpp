#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "algo/result.hpp"
#include "core/driver.hpp"
#include "expt/scenario.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

namespace nc {

/// Aggregated measurements over repeated randomized trials of one
/// experimental configuration (one table row / one sweep JSON line).
/// Success is defined by the experiment (each bench documents its predicate
/// against the paper's statement being reproduced).
struct TrialStats {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t successes2 = 0;  ///< optional secondary predicate

  [[nodiscard]] double success2_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes2) /
                             static_cast<double>(trials);
  }
  RunningStat rounds;
  RunningStat bits;
  RunningStat max_msg_bits;
  RunningStat out_size;        ///< largest output cluster size
  RunningStat out_density;     ///< its Definition-1 density
  RunningStat size_ratio;      ///< |output| / |planted|
  RunningStat recall;          ///< |output ∩ planted| / |planted|
  RunningStat local_ops;

  [[nodiscard]] double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
  [[nodiscard]] Interval success_interval() const {
    return wilson_interval(successes, trials);
  }
};

/// Per-trial hooks: generate the instance, run the algorithm, judge success.
/// `run` speaks the unified AlgoResult, so one TrialSpec covers the
/// distributed protocol and every registered baseline alike (registry-backed
/// hooks come from scenario_maker / the sweep runner in expt/sweep.hpp).
struct TrialSpec {
  std::function<Instance(std::uint64_t seed)> make_instance;
  std::function<AlgoResult(const Graph& g, std::uint64_t seed)> run;
  /// Judge: given instance, result — is this trial a success?
  std::function<bool(const Instance&, const AlgoResult&)> success;
  /// Optional second judge (e.g. a non-vacuous finite-n predicate reported
  /// next to the literal theorem predicate).
  std::function<bool(const Instance&, const AlgoResult&)> success2;
};

/// How per-trial seeds derive from the batch's base seed.
enum class SeedSchedule {
  kSalted,      ///< seed_base + 7919 * (t + 1) — the historical E-bench salt
  kSequential,  ///< seed_base + t — comparison batches (E10) sharing seeds
};

/// Runs `trials` seeded executions and aggregates.
TrialStats run_trials(const TrialSpec& spec, std::size_t trials,
                      std::uint64_t seed_base,
                      SeedSchedule schedule = SeedSchedule::kSalted);

/// Folds one trial's outcome into the aggregate. Shared by run_trials and
/// the sweep runner (which shares instances across algorithms), so both
/// aggregate bit-identically.
void accumulate_trial(TrialStats& stats, const Instance& inst,
                      const AlgoResult& result, bool success, bool success2);

/// Builds a TrialSpec::make_instance hook that resolves `family` through the
/// global ScenarioRegistry with the given parameter overrides; the per-trial
/// seed from run_trials becomes the scenario seed.
std::function<Instance(std::uint64_t)> scenario_maker(std::string family,
                                                      ScenarioParams params);

/// Builds a TrialSpec::run hook that resolves `algorithm` through the global
/// AlgorithmRegistry with the given parameter overrides; the per-trial seed
/// becomes the algorithm seed. The registry counterpart of scenario_maker.
/// `threads` > 1 requests delivery sharding and is forwarded as the
/// "threads" parameter when the algorithm declares one (an explicit value
/// in `params` wins); it is ignored — not an error — for algorithms that
/// don't, so one trial batch can mix network-backed and centralized
/// algorithms.
std::function<AlgoResult(const Graph&, std::uint64_t)> algorithm_runner(
    std::string algorithm, ParamSet params, unsigned threads = 1);

/// Standard Theorem 5.7 success predicate: the largest output cluster is a
/// bound_eps-near clique of size at least (1 - 13/2 eps)|D| - eps^{-2}.
/// Evaluates via the single theorem_success predicate in core/driver.hpp.
bool theorem57_success(const Instance& inst, const AlgoResult& result,
                       double eps, double delta);

/// Theorem 5.7 bounds, exposed for table printing.
struct Theorem57Bounds {
  double min_size;     ///< (1 - 13/2 eps)|D| - eps^{-2}, floored at 2
  double max_eps_out;  ///< (1/(1 - 13/2 eps)) * eps/delta
};
Theorem57Bounds theorem57_bounds(double eps, double delta,
                                 std::size_t planted_size);

}  // namespace nc
