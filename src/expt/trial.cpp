#include "expt/trial.hpp"

#include <algorithm>

#include "algo/registry.hpp"
#include "graph/metrics.hpp"

namespace nc {

TrialStats run_trials(const TrialSpec& spec, std::size_t trials,
                      std::uint64_t seed_base, SeedSchedule schedule) {
  TrialStats stats;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::uint64_t seed = schedule == SeedSchedule::kSalted
                                   ? seed_base + 7919 * (t + 1)
                                   : seed_base + t;
    const Instance inst = spec.make_instance(seed);
    const AlgoResult result = spec.run(inst.graph, seed);
    accumulate_trial(stats, inst, result,
                     spec.success && spec.success(inst, result),
                     spec.success2 && spec.success2(inst, result));
  }
  return stats;
}

void accumulate_trial(TrialStats& stats, const Instance& inst,
                      const AlgoResult& result, bool success, bool success2) {
  ++stats.trials;
  if (success) ++stats.successes;
  if (success2) ++stats.successes2;
  stats.rounds.add(static_cast<double>(result.stats.rounds));
  stats.bits.add(static_cast<double>(result.stats.bits));
  stats.max_msg_bits.add(static_cast<double>(result.stats.max_message_bits));
  stats.local_ops.add(static_cast<double>(result.local_ops));
  const auto best = result.largest_cluster();
  stats.out_size.add(static_cast<double>(best.size()));
  stats.out_density.add(best.empty() ? 0.0 : set_density(inst.graph, best));
  if (!inst.planted.empty()) {
    stats.size_ratio.add(static_cast<double>(best.size()) /
                         static_cast<double>(inst.planted.size()));
    std::size_t overlap = 0;
    for (const NodeId v : best) {
      if (std::binary_search(inst.planted.begin(), inst.planted.end(), v)) {
        ++overlap;
      }
    }
    stats.recall.add(static_cast<double>(overlap) /
                     static_cast<double>(inst.planted.size()));
  }
}

std::function<Instance(std::uint64_t)> scenario_maker(std::string family,
                                                      ScenarioParams params) {
  return [family = std::move(family),
          params = std::move(params)](std::uint64_t seed) {
    return make_scenario(family, params, seed);
  };
}

std::function<AlgoResult(const Graph&, std::uint64_t)> algorithm_runner(
    std::string algorithm, ParamSet params, unsigned threads) {
  if (threads > 1 && !params.has("threads") &&
      algorithm_declares(algorithm, "threads")) {
    params.with("threads", threads);
  }
  return [algorithm = std::move(algorithm),
          params = std::move(params)](const Graph& g, std::uint64_t seed) {
    return run_algorithm(g, algorithm, params, seed);
  };
}

Theorem57Bounds theorem57_bounds(double eps, double delta,
                                 std::size_t planted_size) {
  Theorem57Bounds b;
  const double shrink = 1.0 - 6.5 * eps;
  b.min_size = std::max(
      2.0, shrink * static_cast<double>(planted_size) - 1.0 / (eps * eps));
  // For eps >= 2/13 the theorem's density factor exceeds 1 and the bound is
  // vacuous (any set qualifies); cap at 1 so callers and tables stay sane.
  // The footnote of Theorem 5.7 notes the clean 2*eps/delta form only holds
  // for eps < 1/13.
  b.max_eps_out =
      std::min(1.0, (1.0 / std::max(1e-9, shrink)) * (eps / delta));
  return b;
}

bool theorem57_success(const Instance& inst, const AlgoResult& result,
                       double eps, double delta) {
  const auto bounds = theorem57_bounds(eps, delta, inst.planted.size());
  return theorem_success(inst.graph, result.largest_cluster(),
                         bounds.min_size, bounds.max_eps_out);
}

}  // namespace nc
