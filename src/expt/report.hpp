#pragma once

#include <initializer_list>
#include <string>

#include "expt/trial.hpp"
#include "util/table.hpp"

namespace nc {

/// Appends the standard measurement columns of a TrialStats row to a table
/// row (success rate with Wilson interval, output size/density, rounds,
/// traffic). Keeps every bench binary's table consistent for EXPERIMENTS.md.
void append_stats_cells(std::vector<std::string>& row,
                        const TrialStats& stats);

/// The standard column headers matching append_stats_cells.
std::vector<std::string> stats_headers();

/// Prints a titled table to stdout with a blank line around it.
void print_table(const std::string& title, const Table& table);

/// Sum of RunStats::bits_by_kind over the listed kinds (out-of-range kinds
/// contribute zero). Shared by the stage-breakdown experiments.
[[nodiscard]] std::uint64_t bits_for_kinds(
    const RunStats& stats, std::initializer_list<std::uint16_t> kinds);

}  // namespace nc
