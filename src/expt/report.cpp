#include "expt/report.hpp"

#include <iostream>
#include <sstream>

namespace nc {

std::vector<std::string> stats_headers() {
  return {"success", "95% CI",  "out_size", "density",
          "recall",  "rounds",  "max_msg_b"};
}

void append_stats_cells(std::vector<std::string>& row,
                        const TrialStats& stats) {
  const auto ci = stats.success_interval();
  std::ostringstream ci_s;
  ci_s << "[" << Table::num(ci.lo, 2) << "," << Table::num(ci.hi, 2) << "]";
  row.push_back(Table::num(stats.success_rate(), 2));
  row.push_back(ci_s.str());
  row.push_back(Table::num(stats.out_size.mean(), 1));
  row.push_back(Table::num(stats.out_density.mean(), 3));
  row.push_back(Table::num(stats.recall.mean(), 2));
  row.push_back(Table::num(stats.rounds.mean(), 0));
  row.push_back(Table::num(stats.max_msg_bits.max(), 0));
}

void print_table(const std::string& title, const Table& table) {
  std::cout << "\n=== " << title << " ===\n" << table << "\n";
}

std::uint64_t bits_for_kinds(const RunStats& stats,
                             std::initializer_list<std::uint16_t> kinds) {
  std::uint64_t total = 0;
  for (const std::uint16_t k : kinds) {
    if (k < stats.bits_by_kind.size()) total += stats.bits_by_kind[k];
  }
  return total;
}

}  // namespace nc
