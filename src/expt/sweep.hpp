#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.hpp"
#include "expt/scenario.hpp"
#include "expt/trial.hpp"
#include "util/table.hpp"

namespace nc {

/// One swept parameter: a key taking each listed value in turn, applied to
/// the scenario params, the algorithm params, or both (e.g. "eps", which the
/// theorem family and DistNearClique share).
struct SweepAxis {
  enum class Target { kScenario, kAlgorithm, kBoth };
  Target target = Target::kScenario;
  std::string key;
  std::vector<double> values;
};

/// Declarative, serializable success predicate evaluated per trial, so a
/// sweep spec fully describes an experiment without callback plumbing.
struct SuccessSpec {
  enum class Kind {
    kNone,         ///< no success column (comparison sweeps like E10)
    kTheorem57,    ///< the paper's Theorem 5.7 predicate at (eps, delta)
    kEffective,    ///< >= 2/3 of the planted set at density >= 1 - 2 eps
                   ///< (the finite-n companion predicate of bench E1)
    kSizeDensity,  ///< literal bound: size >= min_size, max_eps-near clique
  };
  Kind kind = Kind::kNone;

  /// Sentinel meaning "derive from the run's own parameters".
  static constexpr double kFromParams =
      std::numeric_limits<double>::quiet_NaN();

  /// theorem57/effective eps and theorem57 delta. Left at kFromParams they
  /// are read per grid point from the merged algorithm params ("eps") and
  /// merged scenario params ("delta"), falling back to 0.2 / 0.4 when the
  /// configuration declares neither; set explicitly they override both
  /// (the CLI's --success-eps / --success-delta).
  double eps = kFromParams;
  double delta = kFromParams;

  double min_size = 2;    ///< size_density bound
  double max_eps = 0.1;   ///< size_density bound

  [[nodiscard]] std::string name() const;
};

/// Parses a predicate name ("none", "theorem57", "effective",
/// "size_density"); throws std::invalid_argument listing the options.
SuccessSpec parse_success_spec(const std::string& text);

/// A declarative experiment: scenario family x algorithms x parameter grid
/// x trials x seeds -> one TrialStats row per (algorithm, grid point).
/// Everything resolves through the two global registries, so a spec is a
/// complete, replayable description of a comparison (the E-bench tables,
/// `nearclique sweep`, BENCH_sweep.json are all this struct).
struct SweepSpec {
  std::string title;

  std::string scenario_family;
  ScenarioParams scenario_params;  ///< base overrides on the family defaults

  /// Algorithms to compare; each spec's params are base overrides on that
  /// algorithm's defaults (AlgoSpec::seed is ignored — seeds come from the
  /// schedule below).
  std::vector<AlgoSpec> algorithms;

  std::vector<SweepAxis> axes;  ///< cross product, first axis outermost

  std::size_t trials = 5;
  std::uint64_t seed_base = 1;
  SeedSchedule seeds = SeedSchedule::kSalted;

  /// Delivery sharding for network-backed algorithms: applied as the
  /// "threads" parameter to every listed algorithm that declares one
  /// (explicit per-algorithm overrides win). Purely a performance knob —
  /// the sharded engine is bit-identical at every thread count — so it
  /// lives here beside trials/seeds rather than in the parameter grid.
  std::size_t threads = 1;

  /// Fault-plan overrides (src/runtime/faults.hpp keys: loss, ge_*,
  /// delay_*, crash_*, fault_seed) applied to every listed algorithm that
  /// declares the key, exactly like `threads` — explicit per-algorithm
  /// overrides and axis values win. One `--faults=loss=0.05,delay_max=3`
  /// therefore subjects every network-backed algorithm in a comparison to
  /// the same adversity while centralized baselines are unaffected.
  ParamSet faults;

  /// Reliability-service overrides (src/runtime/reliability.hpp keys:
  /// rel_mode, rel_ack_timeout, rel_max_retx, rel_fec_window,
  /// rel_fec_repair, rel_seed), distributed exactly like `faults`: applied
  /// to every listed algorithm that declares the key, with explicit
  /// per-algorithm overrides and axis values winning. One
  /// `--reliability=rel_mode=1` arms ARQ on every network-backed algorithm
  /// in a lossy comparison.
  ParamSet reliability;

  /// Telemetry overrides (src/runtime/telemetry.hpp keys: tel_metrics,
  /// tel_trace, tel_probes, tel_stride, tel_max_samples, tel_max_spans),
  /// distributed exactly like `faults`/`reliability`. Telemetry never
  /// perturbs results — fixed-seed labels and RunStats are bit-identical
  /// with it on or off — so it lives beside threads as a pure
  /// observability knob; captures come back via run_sweep's capture sink.
  ParamSet telemetry;

  SuccessSpec success;
  SuccessSpec success2;
};

/// One result row: the resolved configuration plus aggregated trial stats.
struct SweepRow {
  std::string scenario_family;
  ScenarioParams scenario_params;  ///< base + axis overrides (not defaults)
  std::string algorithm;
  CostModel model = CostModel::kCongest;
  AlgoParams algo_params;          ///< base + axis overrides (not defaults)
  /// Fully merged configurations (defaults + overrides) — what actually
  /// ran. The JSON output records these, so a row is self-describing even
  /// when an algorithm took a default the others overrode.
  ScenarioParams scenario_merged;
  AlgoParams algo_merged;
  std::size_t trials = 0;
  std::uint64_t seed_base = 1;
  SeedSchedule seeds = SeedSchedule::kSalted;
  TrialStats stats;

  /// Mean model-appropriate cost: rounds under CONGEST, local_ops under
  /// LOCAL/central (the E10 comparison convention).
  [[nodiscard]] double headline_cost_mean() const;
};

/// Per-trial telemetry captures of a sweep (only trials whose algorithm ran
/// with telemetry enabled contribute an entry). Entries arrive in execution
/// order: grid-point-major, then trial, then the spec's algorithm order.
struct TelemetryCapture {
  struct Entry {
    std::string algorithm;
    std::size_t row = 0;    ///< index into run_sweep's returned rows
    std::size_t trial = 0;  ///< trial ordinal within the row
    std::uint64_t seed = 0;
    std::shared_ptr<Telemetry> telemetry;
  };
  std::vector<Entry> entries;
};

/// Runs the sweep: for every algorithm and every grid point, `trials` seeded
/// executions resolved through the Scenario- and AlgorithmRegistry,
/// aggregated exactly like run_trials (so sweep rows are bit-identical to
/// the historical hand-wired TrialSpec batches). Each grid point's instance
/// is generated once per trial seed and shared by every algorithm (the E10
/// comparison shape pays one generation, not one per algorithm). Rows are
/// ordered algorithm-major, then grid points with the first axis outermost.
/// Every (algorithm, grid point) configuration is validated up front, so
/// unknown families, algorithms or parameters throw std::invalid_argument
/// before any trial runs. When `capture` is non-null, every trial that ran
/// with telemetry enabled appends its capture there.
std::vector<SweepRow> run_sweep(const SweepSpec& spec,
                                TelemetryCapture* capture = nullptr);

/// One machine-readable JSON object (single line, no trailing newline) per
/// row: scenario, algorithm, seed schedule, trial counts and the full
/// measurement distribution summaries.
std::string sweep_row_json(const SweepRow& row);

/// All rows as JSON lines (one object per line, trailing newline).
std::string sweep_json_lines(const std::vector<SweepRow>& rows);

/// Human-readable comparison table of the rows.
Table sweep_table(const std::vector<SweepRow>& rows);

/// Serializes a SweepSpec as a pretty-printed JSON document (every field,
/// including the faults overrides), the inverse of sweep_spec_from_json —
/// round-tripping is exact up to key order.
std::string sweep_spec_json(const SweepSpec& spec);

/// Parses a sweep spec document (the `nearclique sweep --spec=FILE`
/// format):
///
///   {
///     "title": "...",
///     "scenario": {"family": "theorem", "params": {"n": 60}},
///     "algorithms": [{"name": "dist_near_clique",
///                     "params": {"eps": 0.2}}],
///     "axes": [{"target": "both", "key": "eps",
///               "values": [0.1, 0.2]}],
///     "trials": 4, "seed_base": 1, "seeds": "salted",
///     "threads": 2, "faults": {"loss": 0.05, "delay_max": 3},
///     "reliability": {"rel_mode": 1, "rel_max_retx": 8},
///     "success": {"kind": "theorem57"},
///     "success2": {"kind": "none"}
///   }
///
/// Every key is optional except scenario.family and algorithms; omitted
/// keys take the SweepSpec defaults. "faults" and "reliability" keys are
/// validated against the declared fault / reliability parameter sets.
/// Throws std::invalid_argument with a self-explaining message on
/// malformed JSON, unknown keys or bad values.
SweepSpec sweep_spec_from_json(const std::string& text);

}  // namespace nc
