#include "expt/scenario.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"

namespace nc {

namespace {

NodeId node_count(const ScenarioParams& p, const std::string& key = "n") {
  const auto n = p.get_int(key);
  if (n < 1) {
    throw std::invalid_argument("scenario parameter '" + key +
                                "' must be >= 1");
  }
  return static_cast<NodeId>(n);
}

void require_at_most(const ScenarioParams& p, const std::string& key,
                     NodeId n) {
  const auto v = p.get_int(key);
  if (v < 0 || v > static_cast<std::int64_t>(n)) {
    throw std::invalid_argument("scenario parameter '" + key +
                                "' must be in [0, n]");
  }
}

ScenarioRegistry build_global_registry() {
  ScenarioRegistry r;

  // ------------------------------------------------ raw generator families
  // These seed Rng(seed) directly — exactly what the examples historically
  // wrote by hand — so pre-registry fixed-seed outputs are reproduced
  // bit-for-bit. (The E1..E12 workload families further down keep their
  // historical expt/workloads.cpp seed salts for the same reason.)
  r.add({"erdos_renyi", "G(n, p): every pair independently an edge",
         ScenarioParams().with("n", 200).with("p", 0.1),
         [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           return Instance{
               erdos_renyi(node_count(p), p.get_double("p"), rng), {}};
         }});

  r.add({"planted_near_clique",
         "exactly-eps-near clique planted in ER background with a halo",
         ScenarioParams()
             .with("n", 200)
             .with("clique_size", 80)
             .with("eps_missing", 0.008)
             .with("background_p", 0.08)
             .with("halo_p", 0.25)
             .with("permute_ids", 1),
         [](const ScenarioParams& p, std::uint64_t seed) {
           PlantedNearCliqueParams pp;
           pp.n = node_count(p);
           require_at_most(p, "clique_size", pp.n);
           pp.clique_size = static_cast<NodeId>(p.get_int("clique_size"));
           pp.eps_missing = p.get_double("eps_missing");
           pp.background_p = p.get_double("background_p");
           pp.halo_p = p.get_double("halo_p");
           pp.permute_ids = p.get_bool("permute_ids");
           Rng rng(seed);
           return planted_near_clique(pp, rng);
         }});

  r.add({"planted_partition",
         "k contiguous groups, dense within (p_in), sparse across (p_out)",
         ScenarioParams()
             .with("n", 120)
             .with("k", 4)
             .with("p_in", 0.9)
             .with("p_out", 0.05),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           const auto k = p.get_int("k");
           if (k < 1 || k > static_cast<std::int64_t>(n)) {
             throw std::invalid_argument(
                 "scenario parameter 'k' must be in [1, n]");
           }
           Rng rng(seed);
           return planted_partition(n, static_cast<unsigned>(k),
                                    p.get_double("p_in"),
                                    p.get_double("p_out"), rng);
         }});

  r.add({"power_law_web",
         "Chung-Lu power-law web graph with a planted low-degree community",
         ScenarioParams()
             .with("n", 400)
             .with("gamma", 2.5)
             .with("avg_deg", 8.0)
             .with("community", 50)
             .with("eps_missing", 0.008),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           require_at_most(p, "community", n);
           Rng rng(seed);
           return power_law_web(n, p.get_double("gamma"),
                                p.get_double("avg_deg"),
                                static_cast<NodeId>(p.get_int("community")),
                                p.get_double("eps_missing"), rng);
         }});

  r.add({"random_geometric",
         "points in the unit square, edges within `radius` (ad-hoc radio)",
         ScenarioParams().with("n", 300).with("radius", 0.12),
         [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           return Instance{
               random_geometric(node_count(p), p.get_double("radius"), rng),
               {}};
         }});

  r.add({"shingles_counterexample",
         "Claim 1 family: cliques C1, C2 + independent sets I1, I2",
         ScenarioParams().with("n", 120).with("delta", 0.5).with("permute", 1),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const double delta = p.get_double("delta");
           if (delta < 0.0 || delta > 1.0) {
             throw std::invalid_argument(
                 "scenario parameter 'delta' must be in [0, 1]");
           }
           Rng rng(seed);
           return shingles_counterexample(node_count(p), delta, rng,
                                          p.get_bool("permute"));
         }});

  r.add({"barbell",
         "Section 6 impossibility gadget: clique A - path P - clique B",
         ScenarioParams().with("n", 64).with("delete_a_edges", 0),
         [](const ScenarioParams& p, std::uint64_t /*seed*/) {
           return barbell_gadget(node_count(p), p.get_bool("delete_a_edges"));
         }});

  r.add({"sublinear_clique",
         "Corollary 2.3: strict clique of size n/(log2 log2 n)^alpha",
         ScenarioParams()
             .with("n", 1000)
             .with("alpha", 0.5)
             .with("background_p", 0.05),
         [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed);
           return sublinear_clique(node_count(p), p.get_double("alpha"),
                                   p.get_double("background_p"), rng);
         }});

  // --------------------------------------------- motivation-domain families
  r.add({"adhoc_hotspot",
         "unit-disk radio network with one congested hot-spot clique",
         ScenarioParams().with("n", 300).with("radius", 0.12).with("hotspot",
                                                                   40),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           require_at_most(p, "hotspot", n);
           const auto hotspot = static_cast<NodeId>(p.get_int("hotspot"));
           Rng rng(seed);
           const Graph background =
               random_geometric(n, p.get_double("radius"), rng);
           GraphBuilder b(n);
           b.reserve(background.m() +
                     static_cast<std::size_t>(hotspot) * hotspot / 2);
           for (const auto& [u, v] : background.edge_list()) b.add_edge(u, v);
           std::vector<NodeId> dense;
           for (NodeId v = n - hotspot; v < n; ++v) dense.push_back(v);
           b.add_clique(dense);
           Rng perm_rng(seed ^ 0xad);
           return permute_instance(std::move(b).build(), dense, perm_rng);
         }});

  r.add({"blog_snapshot",
         "evolving blogspace: snapshot `step`/`steps` of an event community "
         "linking up over persistent background links",
         ScenarioParams()
             .with("n", 250)
             .with("event", 45)
             .with("step", 6)
             .with("steps", 6)
             .with("background_p", 0.04),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           require_at_most(p, "event", n);
           const auto event = static_cast<NodeId>(p.get_int("event"));
           const auto step = static_cast<unsigned>(p.get_int("step"));
           const auto steps = static_cast<unsigned>(p.get_int("steps"));
           // Same seed at every step: background links persist across time.
           Rng rng(seed);
           GraphBuilder b(n);
           add_bernoulli_block(b, 0, n, p.get_double("background_p"), rng);
           // Event links appear in a fixed random order as time advances.
           std::vector<std::pair<NodeId, NodeId>> pairs;
           for (NodeId u = n - event; u < n; ++u) {
             for (NodeId v = u + 1; v < n; ++v) pairs.emplace_back(u, v);
           }
           Rng order(seed ^ 0xb106);
           order.shuffle(pairs);
           const std::size_t visible =
               pairs.size() * std::min(step, steps) / std::max(1u, steps);
           for (std::size_t i = 0; i < visible; ++i) {
             b.add_edge(pairs[i].first, pairs[i].second);
           }
           std::vector<NodeId> community;
           for (NodeId v = n - event; v < n; ++v) community.push_back(v);
           return Instance{std::move(b).build(), std::move(community)};
         }});

  // --------------------------------------------------- real-graph loaders
  r.add({"edge_list_file",
         "real graph from a whitespace/CSV edge-list file (params "
         "path=<file>); built through the streaming CSR builder",
         ScenarioParams().with("path", "").with("one_indexed", 0),
         [](const ScenarioParams& p, std::uint64_t /*seed*/) {
           const std::string& path = p.get_string("path");
           if (path.empty()) {
             throw std::invalid_argument(
                 "scenario family 'edge_list_file' requires params "
                 "path=<file> (an edge-list file to load)");
           }
           return Instance{load_edge_list(path, p.get_bool("one_indexed")),
                           {}};
         }});

  // ---------------------------- canonical experiment workloads (E1..E12)
  // Seed salts match the original expt/workloads.cpp constants so existing
  // fixed-seed experiment instances are reproduced exactly.
  r.add({"theorem",
         "Theorem 2.1/5.7 premise: exactly-eps^3-near clique of size delta*n",
         ScenarioParams()
             .with("n", 200)
             .with("delta", 0.4)
             .with("eps", 0.2)
             .with("background_p", 0.08)
             .with("halo_p", 0.25),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           const double eps = p.get_double("eps");
           const double delta = p.get_double("delta");
           if (delta < 0.0 || delta > 1.0) {
             throw std::invalid_argument(
                 "scenario parameter 'delta' must be in [0, 1]");
           }
           Rng rng(seed ^ 0x7e0001ULL);
           PlantedNearCliqueParams pp;
           pp.n = n;
           pp.clique_size = std::min(
               n, static_cast<NodeId>(delta * static_cast<double>(n) + 0.5));
           pp.eps_missing = eps * eps * eps;
           pp.background_p = p.get_double("background_p");
           pp.halo_p = p.get_double("halo_p");
           return planted_near_clique(pp, rng);
         }});

  r.add({"linear", "Corollary 2.2: linear-size near-clique (delta = 1/2)",
         ScenarioParams().with("n", 200).with("eps", 0.2),
         [](const ScenarioParams& p, std::uint64_t seed) {
           // Lazily resolved at call time, when global() is fully built.
           return ScenarioRegistry::global().make(
               {"theorem",
                          ScenarioParams()
                              .with("n", p.get_int("n"))
                              .with("delta", 0.5)
                              .with("eps", p.get_double("eps"))
                              .with("background_p", 0.1)
                              .with("halo_p", 0.3),
                seed});
         }});

  r.add({"sublinear", "Corollary 2.3 workload (background_p = 0.05)",
         ScenarioParams().with("n", 500).with("alpha", 0.5),
         [](const ScenarioParams& p, std::uint64_t seed) {
           Rng rng(seed ^ 0x7e0003ULL);
           return sublinear_clique(node_count(p), p.get_double("alpha"), 0.05,
                                   rng);
         }});

  r.add({"counterexample", "Claim 1 / Figure 1 counterexample G_n",
         ScenarioParams().with("n", 120).with("delta", 0.5),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const double delta = p.get_double("delta");
           if (delta < 0.0 || delta > 1.0) {
             throw std::invalid_argument(
                 "scenario parameter 'delta' must be in [0, 1]");
           }
           Rng rng(seed ^ 0x7e0004ULL);
           return shingles_counterexample(node_count(p), delta, rng);
         }});

  r.add({"web",
         "power-law web background with a hidden near-clique community",
         ScenarioParams().with("n", 250).with("community", 35).with("eps",
                                                                    0.2),
         [](const ScenarioParams& p, std::uint64_t seed) {
           const NodeId n = node_count(p);
           require_at_most(p, "community", n);
           const double eps = p.get_double("eps");
           Rng rng(seed ^ 0x7e0005ULL);
           return power_law_web(n, 2.5, 8.0,
                                static_cast<NodeId>(p.get_int("community")),
                                eps * eps * eps, rng);
         }});

  return r;
}

}  // namespace

void ScenarioRegistry::add(Family family) {
  const auto name = family.name;
  if (!families_.emplace(name, std::move(family)).second) {
    throw std::invalid_argument("scenario family '" + name +
                                "' registered twice");
  }
}

const ScenarioRegistry::Family& ScenarioRegistry::family(
    const std::string& name) const {
  const auto it = families_.find(name);
  if (it == families_.end()) {
    throw std::invalid_argument("unknown scenario family '" + name +
                                "'; known families: " + join_comma(names()));
  }
  return it->second;
}

Instance ScenarioRegistry::make(const ScenarioSpec& spec) const {
  const Family& fam = family(spec.family);
  const ScenarioParams merged = merge_params(
      fam.defaults, spec.params, "scenario family '" + spec.family + "'");
  return fam.make(merged, spec.seed);
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, fam] : families_) out.push_back(name);
  return out;
}

const ScenarioRegistry& ScenarioRegistry::global() {
  static const ScenarioRegistry registry = build_global_registry();
  return registry;
}

Instance make_scenario(const std::string& family, const ScenarioParams& params,
                       std::uint64_t seed) {
  return ScenarioRegistry::global().make({family, params, seed});
}

ScenarioSpec parse_scenario_spec(const std::string& family,
                                 const std::string& params_csv,
                                 std::uint64_t seed) {
  ScenarioSpec spec;
  spec.family = family;
  spec.seed = seed;
  // Keys the family declares as strings (file paths) parse verbatim; an
  // unknown family parses numerically and fails later, in make(), with the
  // catalogue-listing error message.
  const ParamSet* declared = nullptr;
  const auto& registry = ScenarioRegistry::global();
  try {
    declared = &registry.family(family).defaults;
  } catch (const std::invalid_argument&) {
  }
  spec.params = parse_params_csv(params_csv, declared);
  return spec;
}

std::string describe_families(const ScenarioRegistry& registry) {
  std::ostringstream os;
  for (const auto& name : registry.names()) {
    const auto& fam = registry.family(name);
    os << "  " << name << " — " << fam.description << "\n    defaults:"
       << describe_params(fam.defaults) << "\n";
  }
  return os.str();
}

}  // namespace nc
