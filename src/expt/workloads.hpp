#pragma once

#include <cstdint>
#include <string>

#include "graph/generators.hpp"

namespace nc {

/// Canonical instance families for the experiment suite (E1..E12). Each
/// builder is deterministic in `seed` and documents which paper statement it
/// exercises. All sizes/probabilities mirror the quantifiers of the
/// corresponding theorem.
///
/// These are typed facades over the ScenarioRegistry (expt/scenario.hpp):
/// every call resolves through the same registry entry a CLI spec would, so
/// "theorem n=200 delta=0.4" on the command line and
/// make_theorem_instance(200, 0.4, ...) in code are the identical instance.

/// Theorem 2.1 / 5.7 instances: an exactly-eps^3-near clique of size delta*n
/// planted in ER background. `eps` is the *algorithm* epsilon; the planted
/// set misses an eps^3 fraction of ordered pairs, as the theorem premise
/// requires.
Instance make_theorem_instance(NodeId n, double delta, double eps,
                               double background_p, double halo_p,
                               std::uint64_t seed);

/// Corollary 2.2 instances: linear-size near-clique (delta constant).
Instance make_linear_instance(NodeId n, double eps, std::uint64_t seed);

/// Corollary 2.3 instances: strict clique of size n / (log2 log2 n)^alpha.
Instance make_sublinear_instance(NodeId n, double alpha, std::uint64_t seed);

/// Claim 1 / Figure 1 counterexample G_n for a given delta.
Instance make_counterexample_instance(NodeId n, double delta,
                                      std::uint64_t seed);

/// Section 6 impossibility gadget (A - P - B barbell).
Instance make_barbell_instance(NodeId n, bool delete_a_edges);

/// Web-community instance for the motivation experiments: power-law
/// background with a planted near-clique community.
Instance make_web_instance(NodeId n, NodeId community, double eps,
                           std::uint64_t seed);

/// Short human-readable description of an instance family row.
std::string describe_instance(const std::string& family, NodeId n,
                              double param);

}  // namespace nc
