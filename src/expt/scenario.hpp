#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "util/paramset.hpp"

namespace nc {

/// Scenario parameters are the shared registry param bag (util/paramset.hpp),
/// so scenario and algorithm specs parse, merge and validate identically.
using ScenarioParams = ParamSet;

/// A fully specified instance request: family name, parameter overrides on
/// the family defaults, and the seed every random draw derives from. A spec
/// is value-semantics and printable, so experiment configurations can be
/// logged, compared and replayed.
struct ScenarioSpec {
  std::string family;
  ScenarioParams params;  ///< overrides; unset keys take the family defaults
  std::uint64_t seed = 1;
};

/// Registry mapping family names to instance makers. Every experiment entry
/// point (examples, E1..E12 benches, trial runner) resolves instances
/// through this table, so adding a workload is one registration instead of
/// one more copy of generator plumbing.
///
/// Determinism contract: make() is a pure function of (family, merged
/// params, seed) — repeated calls return bit-identical instances.
class ScenarioRegistry {
 public:
  using Maker =
      std::function<Instance(const ScenarioParams&, std::uint64_t seed)>;

  struct Family {
    std::string name;
    std::string description;
    /// Declares the complete legal parameter set with its default values;
    /// a spec referencing any other key is rejected.
    ScenarioParams defaults;
    Maker make;
  };

  /// Registers a family. Throws std::invalid_argument on duplicate names.
  void add(Family family);

  /// Looks up a family. Throws std::invalid_argument (listing the known
  /// names) when absent.
  [[nodiscard]] const Family& family(const std::string& name) const;

  /// Builds the instance for a spec: validates the family and every
  /// override key, merges overrides onto the defaults, and invokes the
  /// maker. Throws std::invalid_argument with a self-explaining message on
  /// unknown family or parameter names.
  [[nodiscard]] Instance make(const ScenarioSpec& spec) const;

  /// Registered family names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry with every built-in family registered.
  static const ScenarioRegistry& global();

 private:
  std::map<std::string, Family> families_;
};

/// Convenience: resolve through the global registry.
Instance make_scenario(const std::string& family, const ScenarioParams& params,
                       std::uint64_t seed);

/// Parses a "key=value,key=value" parameter list (values are numbers, or
/// true/false) into a spec for `family`. Throws std::invalid_argument on
/// malformed input.
ScenarioSpec parse_scenario_spec(const std::string& family,
                                 const std::string& params_csv,
                                 std::uint64_t seed);

/// Human-readable catalogue of the registered families with their defaults
/// (what `quickstart --list` prints).
std::string describe_families(const ScenarioRegistry& registry);

}  // namespace nc
