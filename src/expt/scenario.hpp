#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace nc {

/// Typed parameter bag for scenario specs. Values are stored as doubles
/// (every family parameter in this codebase is a count, probability or
/// fraction); the typed getters round or threshold as appropriate. The
/// fluent `with` avoids narrowing pitfalls of brace initialization:
///
///   ScenarioParams().with("n", 200).with("clique_size", 80)
class ScenarioParams {
 public:
  ScenarioParams() = default;

  template <typename T>
  ScenarioParams&& with(const std::string& key, T value) && {
    values_[key] = static_cast<double>(value);
    return std::move(*this);
  }
  template <typename T>
  ScenarioParams& with(const std::string& key, T value) & {
    values_[key] = static_cast<double>(value);
    return *this;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  /// Getters throw std::invalid_argument when the key is absent.
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, double>& values() const {
    return values_;
  }

 private:
  std::map<std::string, double> values_;
};

/// A fully specified instance request: family name, parameter overrides on
/// the family defaults, and the seed every random draw derives from. A spec
/// is value-semantics and printable, so experiment configurations can be
/// logged, compared and replayed.
struct ScenarioSpec {
  std::string family;
  ScenarioParams params;  ///< overrides; unset keys take the family defaults
  std::uint64_t seed = 1;
};

/// Registry mapping family names to instance makers. Every experiment entry
/// point (examples, E1..E12 benches, trial runner) resolves instances
/// through this table, so adding a workload is one registration instead of
/// one more copy of generator plumbing.
///
/// Determinism contract: make() is a pure function of (family, merged
/// params, seed) — repeated calls return bit-identical instances.
class ScenarioRegistry {
 public:
  using Maker =
      std::function<Instance(const ScenarioParams&, std::uint64_t seed)>;

  struct Family {
    std::string name;
    std::string description;
    /// Declares the complete legal parameter set with its default values;
    /// a spec referencing any other key is rejected.
    ScenarioParams defaults;
    Maker make;
  };

  /// Registers a family. Throws std::invalid_argument on duplicate names.
  void add(Family family);

  /// Looks up a family. Throws std::invalid_argument (listing the known
  /// names) when absent.
  [[nodiscard]] const Family& family(const std::string& name) const;

  /// Builds the instance for a spec: validates the family and every
  /// override key, merges overrides onto the defaults, and invokes the
  /// maker. Throws std::invalid_argument with a self-explaining message on
  /// unknown family or parameter names.
  [[nodiscard]] Instance make(const ScenarioSpec& spec) const;

  /// Registered family names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide registry with every built-in family registered.
  static const ScenarioRegistry& global();

 private:
  std::map<std::string, Family> families_;
};

/// Convenience: resolve through the global registry.
Instance make_scenario(const std::string& family, const ScenarioParams& params,
                       std::uint64_t seed);

/// Parses a "key=value,key=value" parameter list (values are numbers, or
/// true/false) into a spec for `family`. Throws std::invalid_argument on
/// malformed input.
ScenarioSpec parse_scenario_spec(const std::string& family,
                                 const std::string& params_csv,
                                 std::uint64_t seed);

/// Human-readable catalogue of the registered families with their defaults
/// (what `quickstart --list` prints).
std::string describe_families(const ScenarioRegistry& registry);

}  // namespace nc
