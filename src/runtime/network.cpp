#include "runtime/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/bitio.hpp"

namespace nc {

// ---------------------------------------------------------------------------
// NodeApi
// ---------------------------------------------------------------------------

NodeId NodeApi::n() const noexcept { return net_->n_; }

std::uint64_t NodeApi::round() const noexcept { return net_->round_; }

std::span<const NodeId> NodeApi::neighbors() const {
  return net_->graph_->neighbors(id_);
}

std::size_t NodeApi::neighbor_index(NodeId v) const {
  const auto nb = neighbors();
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(it - nb.begin());
}

Rng& NodeApi::rng() { return net_->states_[id_].rng; }

OutChannel NodeApi::open_stream(const StreamKey& key,
                                std::span<const std::size_t> neighbor_indices) {
  if (key.kind >= kMaxMsgKinds) {
    throw std::invalid_argument(
        "open_stream: message kind does not fit the 5-bit header field");
  }
  if (key.version >= kMaxStreamVersions) {
    throw std::invalid_argument(
        "open_stream: stream version does not fit the 4-bit header field");
  }
  OutChannel ch;
  auto& links = net_->states_[id_].out_links;
  for (const std::size_t ni : neighbor_indices) {
    assert(ni < links.size());
    links[ni].add_stream(key, ch.state());
  }
  return ch;
}

OutChannel NodeApi::open_stream_all(const StreamKey& key) {
  // The shared iota table covers [0, max_degree): a full-fanout open is
  // allocation-free.
  return open_stream(
      key, std::span<const std::size_t>(net_->iota_.data(), degree()));
}

OutChannel NodeApi::open_stream_one(const StreamKey& key,
                                    std::size_t neighbor_index) {
  const std::size_t idx[1] = {neighbor_index};
  return open_stream(key, idx);
}

InStream* NodeApi::find_in(std::size_t ni, const StreamKey& key) {
  return net_->states_[id_].inbox.find(ni, key);
}

std::uint64_t NodeApi::rx_count(std::uint16_t kind) const {
  if (kind >= kMaxMsgKinds) {
    throw std::out_of_range("rx_count: message kind out of range");
  }
  return net_->states_[id_].rx_by_kind[kind];
}

void NodeApi::set_alarm(std::uint64_t round) {
  auto& st = net_->states_[id_];
  if (st.done || st.alarm == round) return;
  st.alarm = round;  // latest call wins; stale bucket entries are skipped
  if (round != Network::kNoAlarm) {
    net_->alarm_buckets_[round].push_back(id_);
  }
}

void NodeApi::set_done() {
  auto& st = net_->states_[id_];
  if (!st.done) {
    st.done = true;
    st.alarm = Network::kNoAlarm;
    ++net_->done_count_;
  }
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const Graph& g, const NetConfig& config,
                 const std::function<std::unique_ptr<INode>(NodeId)>& factory)
    : graph_(&g),
      config_(config),
      n_(g.n()),
      id_bits_(id_width(g.n())),
      header_bits_(stream_header_bits(id_bits_)) {
  bandwidth_bits_ = config.mode == NetConfig::Mode::kLocal
                        ? std::numeric_limits<std::size_t>::max()
                        : static_cast<std::size_t>(config.bandwidth_factor) *
                              id_bits_;

  // CSR mirror: offsets, owners and the reverse-edge index table. Iterating
  // sources in ascending ID order means, for a fixed target u, sources
  // arrive in ascending order too — so a per-node cursor yields the position
  // of the source in u's sorted adjacency list in O(m) total, and deliveries
  // never binary-search again.
  edge_base_.resize(static_cast<std::size_t>(n_) + 1, 0);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < n_; ++v) {
    edge_base_[v + 1] = edge_base_[v] + g.degree(v);
    max_degree = std::max(max_degree, g.degree(v));
  }
  const std::size_t directed_edges = edge_base_[n_];
  edge_owner_.resize(directed_edges);
  reverse_index_.resize(directed_edges);
  {
    std::vector<std::size_t> cursor(n_, 0);
    for (NodeId v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const std::size_t e = edge_base_[v] + i;
        edge_owner_[e] = v;
        reverse_index_[e] = cursor[nb[i]]++;
      }
    }
  }
  iota_.resize(max_degree);
  for (std::size_t i = 0; i < max_degree; ++i) iota_[i] = i;
  link_active_.assign(directed_edges, 0);

  const Rng master(config.seed);
  nodes_.reserve(n_);
  states_.reserve(n_);
  for (NodeId v = 0; v < n_; ++v) {
    NodeState st;
    st.rng = master.derive(v);
    st.out_links.resize(g.degree(v));
    states_.push_back(std::move(st));
    nodes_.push_back(factory(v));
  }
  for (NodeId v = 0; v < n_; ++v) {
    NodeApi api(*this, v);
    nodes_[v]->on_start(api);
    refresh_outgoing(v);
  }
}

void Network::wake(NodeId v) {
  auto& st = states_[v];
  if (!st.woken && !st.done) {
    st.woken = true;
    wake_list_.push_back(v);
  }
}

void Network::refresh_outgoing(NodeId v) {
  const std::size_t base = edge_base_[v];
  auto& links = states_[v].out_links;
  for (std::size_t ni = 0; ni < links.size(); ++ni) {
    const std::size_t e = base + ni;
    if (!link_active_[e] && links[ni].has_pending()) {
      link_active_[e] = 1;
      active_links_.push_back(e);
    }
  }
}

std::uint64_t Network::next_alarm_round() {
  while (!alarm_buckets_.empty()) {
    const auto it = alarm_buckets_.begin();
    const std::uint64_t round = it->first;
    auto& entries = it->second;
    std::erase_if(entries, [&](NodeId v) {
      return states_[v].done || states_[v].alarm != round;
    });
    if (!entries.empty()) return round;
    alarm_buckets_.erase(it);
  }
  return kNoAlarm;
}

void Network::collect_due_alarms() {
  while (!alarm_buckets_.empty() && alarm_buckets_.begin()->first <= round_) {
    const auto it = alarm_buckets_.begin();
    const std::uint64_t round = it->first;
    for (const NodeId v : it->second) {
      auto& st = states_[v];
      if (!st.done && st.alarm == round) {
        // One-shot: clear before the callback so a set_alarm inside it
        // re-arms for a future round.
        st.alarm = kNoAlarm;
        wake(v);
      }
    }
    alarm_buckets_.erase(it);
  }
}

void Network::deliver(NodeId to, std::size_t back_index, const Delivery& d) {
  auto& st = states_[to];
  st.rx_by_kind[d.key.kind] += 1;
  InStream& stream = st.inbox.open(back_index, d.key);
  for (const auto& [value, width] : d.symbols) stream.deliver(value, width);
  if (d.eos) stream.deliver_eos();
  wake(to);
  stats_.messages += 1;
  stats_.bits += d.wire_bits;
  stats_.max_message_bits = std::max<std::uint64_t>(stats_.max_message_bits,
                                                    d.wire_bits);
  stats_.bits_by_kind[d.key.kind] += d.wire_bits;
}

void Network::deliver_round() {
  if (active_links_.empty()) return;
  // Ascending (owner, neighbour-index) order: identical delivery order to
  // the historical full scan, which the determinism guarantee locks in.
  std::sort(active_links_.begin(), active_links_.end());
  std::size_t kept = 0;
  for (const std::size_t e : active_links_) {
    const NodeId from = edge_owner_[e];
    const std::size_t ni = e - edge_base_[from];
    Link& link = states_[from].out_links[ni];
    const NodeId to = graph_->neighbors(from)[ni];
    const std::size_t back_index = reverse_index_[e];
    if (config_.mode == NetConfig::Mode::kLocal) {
      scratch_local_.clear();
      link.drain_all_into(header_bits_, scratch_local_);
      for (const auto& d : scratch_local_) deliver(to, back_index, d);
    } else {
      if (link.schedule_into(bandwidth_bits_, header_bits_, scratch_)) {
        deliver(to, back_index, scratch_);
      }
    }
    if (link.has_pending()) {
      active_links_[kept++] = e;
    } else {
      link_active_[e] = 0;
    }
  }
  active_links_.resize(kept);
}

bool Network::step(bool allow_fast_forward) {
  if (all_done()) return false;
  if (active_links_.empty()) {
    const std::uint64_t next = next_alarm_round();
    // Alarms are one-shot: an alarm at or before the current round already
    // had its wake-up, so an idle network with only stale alarms is stuck.
    if (next == kNoAlarm || next <= round_) {
      stats_.stalled = true;
      stats_.rounds = round_;
      return false;
    }
    if (allow_fast_forward && next > round_ + 1) {
      round_ = next - 1;  // skipped rounds are idle but still counted
    }
  }
  if (round_ >= config_.max_rounds) {
    stats_.hit_round_limit = true;
    stats_.rounds = round_;
    return false;
  }
  ++round_;
  deliver_round();
  collect_due_alarms();
  std::sort(wake_list_.begin(), wake_list_.end());
  for (const NodeId v : wake_list_) {
    auto& st = states_[v];
    st.woken = false;
    if (st.done) continue;
    NodeApi api(*this, v);
    nodes_[v]->on_round(api);
    refresh_outgoing(v);
  }
  wake_list_.clear();
  stats_.rounds = round_;
  return !all_done();
}

RunStats Network::run() {
  while (step(/*allow_fast_forward=*/true)) {
  }
  return stats_;
}

bool Network::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (!step(/*allow_fast_forward=*/false)) break;
  }
  return all_done();
}

}  // namespace nc
