#include "runtime/network.hpp"

// nclint:allow-file(wall-clock): opt-in profile/telemetry timers (NetConfig::profile, NetConfig::telemetry) — steady_clock reads only feed NetProfile seconds and trace span timestamps, never a simulation decision.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "util/bitio.hpp"
#include "util/check.hpp"

namespace nc {

// ---------------------------------------------------------------------------
// NodeApi
// ---------------------------------------------------------------------------

NodeId NodeApi::n() const noexcept { return net_->n_; }

std::uint64_t NodeApi::round() const noexcept { return net_->round_; }

std::span<const NodeId> NodeApi::neighbors() const {
  return net_->graph_->neighbors(id_);
}

std::size_t NodeApi::neighbor_index(NodeId v) const {
  const auto nb = neighbors();
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(it - nb.begin());
}

Rng& NodeApi::rng() { return net_->states_[id_].rng; }

OutChannel NodeApi::open_stream(const StreamKey& key,
                                std::span<const std::size_t> neighbor_indices) {
  if (key.kind >= kMaxMsgKinds) {
    throw std::invalid_argument(
        "open_stream: message kind does not fit the 5-bit header field");
  }
  if (key.version >= kMaxStreamVersions) {
    throw std::invalid_argument(
        "open_stream: stream version does not fit the 4-bit header field");
  }
  OutChannel ch;
  auto& links = net_->states_[id_].out_links;
  for (const std::size_t ni : neighbor_indices) {
    assert(ni < links.size());
    links[ni].add_stream(key, ch.state());
  }
  return ch;
}

OutChannel NodeApi::open_stream_all(const StreamKey& key) {
  // The shared iota table covers [0, max_degree): a full-fanout open is
  // allocation-free.
  return open_stream(
      key, std::span<const std::size_t>(net_->iota_.data(), degree()));
}

OutChannel NodeApi::open_stream_one(const StreamKey& key,
                                    std::size_t neighbor_index) {
  const std::size_t idx[1] = {neighbor_index};
  return open_stream(key, idx);
}

InStream* NodeApi::find_in(std::size_t ni, const StreamKey& key) {
  return net_->states_[id_].inbox.find(ni, key);
}

std::uint64_t NodeApi::rx_count(std::uint16_t kind) const {
  if (kind >= kMaxMsgKinds) {
    throw std::out_of_range("rx_count: message kind out of range");
  }
  return net_->states_[id_].rx_by_kind[kind];
}

void NodeApi::set_alarm(std::uint64_t round) {
  auto& st = net_->states_[id_];
  if (st.done || st.alarm == round) return;
  st.alarm = round;  // latest call wins; stale bucket entries are skipped
  if (round != Network::kNoAlarm) {
    // The owning shard's buckets: a node only ever arms itself, so the
    // write stays inside the shard running this callback. Synchronous
    // protocols overwhelmingly arm for the same round their neighbours
    // just armed for, so the shard memoizes the last bucket and the common
    // case skips the map walk entirely.
    auto& sh = net_->shards_[net_->plan_.node_shard[id_]];
    if (sh.alarm_memo_round != round) {
      sh.alarm_memo_bucket = &sh.alarm_buckets[round];
      sh.alarm_memo_round = round;
    }
    sh.alarm_memo_bucket->push_back(id_);
  }
}

void NodeApi::set_done() {
  auto& st = net_->states_[id_];
  if (!st.done) {
    st.done = true;
    st.alarm = Network::kNoAlarm;
    ++net_->shards_[net_->plan_.node_shard[id_]].done_count;
  }
}

std::uint32_t NodeApi::probe_counter(const char* name) {
  if (!net_->telem_) return kNoProbe;
  return net_->telem_->register_probe(name, /*counter=*/true);
}

std::uint32_t NodeApi::probe_gauge(const char* name) {
  if (!net_->telem_) return kNoProbe;
  return net_->telem_->register_probe(name, /*counter=*/false);
}

void NodeApi::probe_add(std::uint32_t probe, std::uint64_t delta) {
  // kNoProbe short-circuits before the engine is touched, so instrumented
  // protocol code costs one compare per call when probes are off.
  if (probe == NodeApi::kNoProbe) return;
  net_->telem_->probe_add(net_->plan_.node_shard[id_], probe, delta);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

namespace {

// Trace-span clock arithmetic (tracing only; the telemetry engine itself
// never reads a clock — it is handed these offsets).
double span_ts_us(std::uint64_t epoch_ns,
                  std::chrono::steady_clock::time_point tp) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      tp.time_since_epoch())
                      .count();
  return (static_cast<double>(ns) - static_cast<double>(epoch_ns)) / 1000.0;
}

double span_dur_us(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

Network::Network(const Graph& g, const NetConfig& config,
                 const std::function<std::unique_ptr<INode>(NodeId)>& factory)
    : graph_(&g),
      config_(config),
      n_(g.n()),
      id_bits_(id_width(g.n())),
      header_bits_(stream_header_bits(id_bits_)) {
  bandwidth_bits_ = config.mode == NetConfig::Mode::kLocal
                        ? std::numeric_limits<std::size_t>::max()
                        : static_cast<std::size_t>(config.bandwidth_factor) *
                              id_bits_;

  // CSR mirror: offsets, owners and the reverse-edge index table. Iterating
  // sources in ascending ID order means, for a fixed target u, sources
  // arrive in ascending order too — so a per-node cursor yields the position
  // of the source in u's sorted adjacency list in O(m) total, and deliveries
  // never binary-search again.
  edge_base_.resize(static_cast<std::size_t>(n_) + 1, 0);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < n_; ++v) {
    edge_base_[v + 1] = edge_base_[v] + g.degree(v);
    max_degree = std::max(max_degree, g.degree(v));
  }
  const std::size_t directed_edges = edge_base_[n_];
  edge_owner_.resize(directed_edges);
  reverse_index_.resize(directed_edges);
  {
    std::vector<std::size_t> cursor(n_, 0);
    for (NodeId v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const std::size_t e = edge_base_[v] + i;
        edge_owner_[e] = v;
        reverse_index_[e] = cursor[nb[i]]++;
      }
    }
  }
  iota_.resize(max_degree);
  for (std::size_t i = 0; i < max_degree; ++i) iota_[i] = i;
  link_active_.assign(directed_edges, 0);

  // Shard partition + pool. The partition is contiguous and balanced by
  // degree; every per-round structure below is shard-owned.
  plan_ = plan_shards(g, std::max(1u, config.threads));
  const unsigned k = plan_.shards();
  shards_.resize(k);
  for (unsigned s = 0; s < k; ++s) {
    shards_[s].begin = plan_.begin(s);
    shards_[s].end = plan_.end(s);
    shards_[s].woken.assign(shards_[s].end - shards_[s].begin, 0);
    shards_[s].lanes.resize(k);
    shards_[s].bcast_open.assign(k, 0);
    // Lane columns carve from the owning shard's per-round arena; the
    // cross-round delayed buckets stay heap-backed (default bind).
    for (auto& lane : shards_[s].lanes) lane.bind(&shards_[s].arena);
  }
  // The whole determinism story rests on this: shards are contiguous ID
  // ranges covering [0, n), so merging lanes in ascending source-shard
  // order reproduces the serial engine's global ascending-edge delivery
  // order bit for bit.
  for (unsigned s = 0; s < k; ++s) {
    nc_invariant(shards_[s].begin == (s == 0 ? 0 : shards_[s - 1].end) &&
                     shards_[s].begin <= shards_[s].end,
                 "shard partition must be contiguous — the lane merge order "
                 "equals the serial delivery order only then");
  }
  nc_invariant(shards_[k - 1].end == n_,
               "shard partition must cover every node");
  if (k > 1) pool_ = std::make_unique<ShardPool>(k);

  // Fault engine + per-shard churn schedule (only for active plans; the
  // fault-free path carries no engine and no buckets).
  if (config.faults.any()) {
    faults_ = std::make_unique<FaultEngine>(config.faults, n_, directed_edges,
                                            config.seed);
    for (NodeId v = 0; v < n_; ++v) {
      Shard& sh = shards_[plan_.node_shard[v]];
      const std::uint64_t cr = faults_->crash_round(v);
      if (cr != FaultEngine::kNever) sh.fault_events[cr].push_back(v);
      const std::uint64_t rr = faults_->recover_round(v);
      if (rr != FaultEngine::kNever) sh.fault_events[rr].push_back(v);
    }
  }

  // Reliability service (only for active plans; like the fault engine, an
  // active service forces the staged round path so the per-message decision
  // point is unique).
  if (config.reliability.any()) {
    if (config.mode == NetConfig::Mode::kLocal) {
      throw std::invalid_argument(
          "NetConfig::reliability requires CONGEST mode — the service's "
          "control traffic (ACK/repair slots) is accounted against the "
          "CONGEST bandwidth budget, which LOCAL mode does not define");
    }
    rel_ = std::make_unique<ReliabilityEngine>(
        config.reliability, config.faults, faults_.get(), directed_edges,
        header_bits_, bandwidth_bits_, config.seed);
  }

  // Telemetry engine (opt-in). Built before on_start so nodes can register
  // probes there. Unlike faults_/rel_ it never changes the pipeline's path
  // choice — the fused fast path stays fused — because recording only
  // *reads* engine state the round loop maintains anyway.
  if (config.telemetry.any()) {
    telem_ = std::make_unique<TelemetryEngine>(config.telemetry, k);
    if (config.telemetry.trace) {
      telem_epoch_ns_ = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      telem_->set_epoch_ns(telem_epoch_ns_);
    }
  }

  const Rng master(config.seed);
  nodes_.reserve(n_);
  states_.reserve(n_);
  for (NodeId v = 0; v < n_; ++v) {
    NodeState st;
    st.rng = master.derive(v);
    st.out_links.resize(g.degree(v));
    states_.push_back(std::move(st));
    nodes_.push_back(factory(v));
  }
  // Factories run serially (user code frequently captures shared state for
  // construction), but on_start runs shard-parallel: each callback touches
  // only its own node's state plus shard-owned structures (active links,
  // alarm buckets, done counts), and no messages are exchanged before round
  // 1, so parallel initialization is unobservable — fixed-seed executions
  // stay bit-identical at every thread count. Within a shard the calls
  // keep ascending ID order.
  for_each_shard([this](unsigned s) {
    for (NodeId v = shards_[s].begin; v < shards_[s].end; ++v) {
      NodeApi api(*this, v);
      nodes_[v]->on_start(api);
      refresh_outgoing(v);
    }
  });
}

void Network::wake(Shard& sh, NodeId v) {
  std::uint8_t& queued = sh.woken[v - sh.begin];
  if (!queued && !states_[v].done) {
    queued = 1;
    sh.wake_list.push_back(v);
  }
}

void Network::refresh_outgoing(NodeId v) {
  const std::size_t base = edge_base_[v];
  auto& links = states_[v].out_links;
  auto& active = shards_[plan_.node_shard[v]].active_links;
  for (std::size_t ni = 0; ni < links.size(); ++ni) {
    const std::size_t e = base + ni;
    if (!link_active_[e] && links[ni].has_pending()) {
      link_active_[e] = 1;
      active.push_back(e);
    }
  }
}

std::uint64_t Network::next_alarm_round() {
  std::uint64_t best = kNoAlarm;
  for (auto& sh : shards_) {
    while (!sh.alarm_buckets.empty()) {
      const auto it = sh.alarm_buckets.begin();
      const std::uint64_t round = it->first;
      auto& entries = it->second;
      std::erase_if(entries, [&](NodeId v) {
        return states_[v].done || states_[v].alarm != round;
      });
      if (!entries.empty()) {
        best = std::min(best, round);
        break;
      }
      if (sh.alarm_memo_round == round) {
        sh.alarm_memo_round = kNoAlarm;
        sh.alarm_memo_bucket = nullptr;
      }
      sh.alarm_buckets.erase(it);
    }
  }
  return best;
}

void Network::collect_due_alarms(Shard& sh) {
  while (!sh.alarm_buckets.empty() &&
         sh.alarm_buckets.begin()->first <= round_) {
    const auto it = sh.alarm_buckets.begin();
    const std::uint64_t round = it->first;
    for (const NodeId v : it->second) {
      auto& st = states_[v];
      if (!st.done && st.alarm == round) {
        // One-shot: clear before the callback so a set_alarm inside it
        // re-arms for a future round.
        st.alarm = kNoAlarm;
        wake(sh, v);
      }
    }
    if (sh.alarm_memo_round == round) {
      sh.alarm_memo_round = kNoAlarm;
      sh.alarm_memo_bucket = nullptr;
    }
    sh.alarm_buckets.erase(it);
  }
}

void Network::apply_fault_events() {
  for (auto& sh : shards_) {
    while (!sh.fault_events.empty() &&
           sh.fault_events.begin()->first <= round_) {
      // A popped bucket holds crash and/or recovery events for this round;
      // which one a node fires is determined by its precomputed schedule.
      for (const NodeId v : sh.fault_events.begin()->second) {
        auto& st = states_[v];
        NodeApi api(*this, v);
        if (faults_->crash_round(v) == round_) {
          stats_.crash_events += 1;  // nclint:allow(stats-batch) serial round loop, one event per churn entry
          if (!st.done) nodes_[v]->on_crash(api);
          st.alarm = kNoAlarm;  // one-shot alarms are lost in the crash
          if (faults_->recover_round(v) == FaultEngine::kNever && !st.done) {
            // Permanent: done-equivalent, so the execution can terminate
            // without it. The node's output registers keep whatever state
            // the crash froze.
            st.done = true;
            ++sh.done_count;
          }
        } else {
          stats_.recover_events += 1;  // nclint:allow(stats-batch) serial round loop, one event per churn entry
          if (!st.done) {
            nodes_[v]->on_recover(api);
            wake(sh, v);  // guarantee an on_round to re-arm alarms
          }
        }
        refresh_outgoing(v);
      }
      sh.fault_events.erase(sh.fault_events.begin());
    }
  }
}

void Network::deliver_view(Shard& dst, TrafficBatch& batch, NodeId to,
                           std::size_t back_index, const MsgView& v) {
  auto& st = states_[to];
  st.rx_by_kind[v.key.kind] += 1;
  InStream& stream = st.inbox.open(back_index, v.key);
  if (v.symbol_count > 0 && v.symbol_count <= 2) {
    // Inline fast path mirroring deliver_record: the dominant CONGEST kinds
    // carry 1–2 symbols, not worth the bulk-blit setup.
    const std::uint8_t* widths = v.buf->widths() + v.first_symbol;
    stream.deliver(v.buf->value_at(v.bit_off, widths[0]), widths[0]);
    if (v.symbol_count == 2) {
      stream.deliver(v.buf->value_at(v.bit_off + widths[0], widths[1]),
                     widths[1]);
    }
  } else if (v.symbol_count > 0) {
    stream.deliver_packed(v.buf->words(), v.buf->word_count(), v.bit_off,
                          v.bit_len, v.buf->widths() + v.first_symbol,
                          v.symbol_count);
  }
  if (v.eos) stream.deliver_eos();
  wake(dst, to);
  batch.charge(v.key.kind, v.wire_bits);
}

void Network::deliver_record(Shard& dst, TrafficBatch& batch,
                             const MsgBlock::Rec& r) {
  nc_invariant(r.to >= dst.begin && r.to < dst.end,
               "staged row routed to a shard that does not own its "
               "destination node");
  auto& st = states_[r.to];
  st.rx_by_kind[r.key.kind] += 1;
  InStream& stream = st.inbox.open(r.back_index, r.key);
  if (r.spilled) {
    stream.deliver_packed(r.pay_words, r.pay_word_count, 0, r.pay_bits,
                          r.pay_widths, r.symbol_count);
  } else {
    // Inline fast path: the dominant CONGEST kinds carry 1–2 words.
    if (r.symbol_count >= 1) stream.deliver(r.v0, r.w0);
    if (r.symbol_count == 2) stream.deliver(r.v1, r.w1);
  }
  if (r.eos) stream.deliver_eos();
  wake(dst, r.to);
  batch.charge(r.key.kind, r.wire_bits);
}

void Network::deliver_copy(Shard& dst, TrafficBatch& batch,
                           const MsgBlock::Rec& r,
                           const MsgBlock::Receiver& rcv) {
  nc_invariant(rcv.to >= dst.begin && rcv.to < dst.end,
               "broadcast receiver routed to a shard that does not own its "
               "destination node");
  auto& st = states_[rcv.to];
  st.rx_by_kind[r.key.kind] += 1;
  InStream& stream = st.inbox.open(rcv.back_index, r.key);
  if (r.spilled) {
    stream.deliver_packed(r.pay_words, r.pay_word_count, 0, r.pay_bits,
                          r.pay_widths, r.symbol_count);
  } else {
    if (r.symbol_count >= 1) stream.deliver(r.v0, r.w0);
    if (r.symbol_count == 2) stream.deliver(r.v1, r.w1);
  }
  if (r.eos) stream.deliver_eos();
  wake(dst, rcv.to);
  batch.charge(r.key.kind, r.wire_bits);
}

Network::LinkVerdict Network::link_verdict(Shard& sh, std::size_t e,
                                           NodeId from, NodeId to,
                                           std::uint64_t count,
                                           std::uint16_t kind,
                                           std::uint64_t wire_bits) {
  LinkVerdict out;
  if (faults_ &&
      (faults_->crashed_at(from, round_) || faults_->crashed_at(to, round_))) {
    // Crash silencing is beneath the reliability service: a crashed
    // endpoint neither retransmits nor collects repair chunks.
    sh.traffic.messages_dropped_crash += count;  // nclint:allow(stats-batch) one charge per link verdict, already batched over the row's receivers
    out.fate = LinkVerdict::Fate::kDrop;
    return out;
  }
  const bool lost = faults_ != nullptr && faults_->lose(e, from, to, round_);
  if (!rel_) {
    // Fault-only path (faults_ is non-null here: the verdict is only
    // consulted when faults_ or rel_ is active).
    if (lost) {
      sh.traffic.messages_lost += count;  // nclint:allow(stats-batch) one charge per link verdict, already batched over the row's receivers
      out.fate = LinkVerdict::Fate::kDrop;
      return out;
    }
    const std::uint64_t delay = faults_->delay_of(e, from, to, round_);
    if (delay > 0) {
      out.deliver_round = round_ + delay;
      sh.traffic.messages_delayed += count;  // nclint:allow(stats-batch) one charge per link verdict
    }
    return out;
  }
  if (rel_->fec()) {
    bool first_park = false;
    if (rel_->fec_on_message(e, from, to, round_, lost, sh.traffic,
                             &first_park)) {
      // The edge has (or this loss opens) an unresolved window: park the
      // message — stream order is only decidable at the window close. The
      // copy's own loss verdict rides along for the resolution.
      out.fate = LinkVerdict::Fate::kPark;
      out.lost = lost;
      out.first_park = first_park;
      return out;
    }
    std::uint64_t due = round_;
    if (faults_) {
      const std::uint64_t delay = faults_->delay_of(e, from, to, round_);
      if (delay > 0) {
        due = round_ + delay;
        sh.traffic.messages_delayed += count;  // nclint:allow(stats-batch) one charge per link verdict
      }
    }
    // The release floor keeps the stream FIFO across window releases: a
    // message staged after a release may never undercut it.
    due = std::max(due, rel_->floor_of(e));
    rel_->raise_floor(e, due);
    if (due > round_) out.deliver_round = due;
    return out;
  }
  // ARQ. The whole exchange resolves in closed form at stage time: the
  // recovery round (if any) is computable now, so the recovered message
  // simply rides the ordinary delayed-delivery machinery — no parking.
  std::uint64_t due = round_;
  if (lost) {
    const std::uint64_t rec =
        rel_->arq_recover(e, from, to, round_, kind, wire_bits, sh.traffic);
    if (rec == ReliabilityEngine::kNever) {
      sh.traffic.messages_lost += count;  // nclint:allow(stats-batch) one charge per link verdict, already batched over the row's receivers
      out.fate = LinkVerdict::Fate::kDrop;
      return out;
    }
    // Recovered copies take the attempt schedule, not the jitter model
    // (the attempt slots dominate); the fault watermark still floors them
    // so they never overtake an earlier jittered delivery.
    due = std::max(rec, faults_->arrival_floor(e));
  } else {
    rel_->arq_account_delivered(e, from, to, round_, kind, wire_bits,
                                sh.traffic);
    if (faults_) {
      const std::uint64_t delay = faults_->delay_of(e, from, to, round_);
      if (delay > 0) {
        due = round_ + delay;
        sh.traffic.messages_delayed += count;  // nclint:allow(stats-batch) one charge per link verdict
      }
    }
  }
  due = std::max(due, rel_->floor_of(e));
  rel_->raise_floor(e, due);
  if (due > round_) out.deliver_round = due;
  return out;
}

void Network::park_row(Shard& sh, std::size_t e, const MsgView& v, NodeId to,
                       std::uint32_t back_index, const LinkVerdict& verdict) {
  if (telem_) sh.telem_fec_parks += 1;
  // Heap-backed (default bind): parked rows outlive the round that staged
  // them, so they must not live in the per-round arena.
  sh.rel_parked.push(v, to, back_index, 0);
  sh.rel_parked_edge.push_back(e);
  sh.rel_parked_lost.push_back(verdict.lost ? 1 : 0);
  if (verdict.first_park) sh.rel_pending_edges.push_back(e);
}

void Network::resolve_fec_windows(Shard& sh) {
  // Split the pending edges into due (window closed before this round) and
  // still-open. Resolution order is ascending edge for cleanliness, but the
  // draws are keyed on (window, edge, chunk), so order cannot matter.
  std::vector<std::size_t> due;
  std::size_t kept_pending = 0;
  for (const std::size_t e : sh.rel_pending_edges) {
    if (rel_->fec_due(e, round_)) {
      due.push_back(e);
    } else {
      sh.rel_pending_edges[kept_pending++] = e;
    }
  }
  if (due.empty()) return;
  sh.rel_pending_edges.resize(kept_pending);
  std::sort(due.begin(), due.end());
  const auto due_index = [&](std::size_t e) -> std::size_t {
    const auto it = std::lower_bound(due.begin(), due.end(), e);
    if (it == due.end() || *it != e) {
      return std::numeric_limits<std::size_t>::max();
    }
    return static_cast<std::size_t>(it - due.begin());
  };
  // Pass 1: per-due-edge loss counts from the parked rows.
  std::vector<std::uint64_t> losses(due.size(), 0);
  for (std::size_t i = 0; i < sh.rel_parked_edge.size(); ++i) {
    if (sh.rel_parked_lost[i] != 0) {
      const std::size_t j = due_index(sh.rel_parked_edge[i]);
      if (j != std::numeric_limits<std::size_t>::max()) losses[j] += 1;
    }
  }
  // Pass 2: resolve each due window — repair survivals, recovery verdict,
  // release round (floored against both FIFO watermarks) — and raise the
  // edge's floor so post-release traffic stays behind the released stream.
  std::vector<std::uint8_t> recovered(due.size(), 0);
  std::vector<std::uint64_t> release(due.size(), 0);
  for (std::size_t j = 0; j < due.size(); ++j) {
    const std::size_t e = due[j];
    const NodeId from = edge_owner_[e];
    const NodeId to = graph_->neighbors(from)[e - edge_base_[from]];
    recovered[j] =
        rel_->fec_resolve(e, from, to, losses[j], sh.traffic) ? 1 : 0;
    std::uint64_t rr = std::max(round_, rel_->floor_of(e));
    if (faults_) rr = std::max(rr, faults_->arrival_floor(e));
    release[j] = rr;
    rel_->raise_floor(e, rr);
  }
  // Pass 3: walk the parked rows in park (= stream) order. Rows of due
  // edges are released into the lanes at the edge's release round — or
  // dropped for good if they were lost and the window did not recover —
  // while rows of still-blocked edges are compacted into a rebuilt hold.
  // Lanes were reset at the top of this stage phase and the link walk has
  // not run yet, so released rows sit ahead of the round's fresh traffic.
  MsgBlock keep;
  std::vector<std::size_t> keep_edge;
  std::vector<std::uint8_t> keep_lost;
  for (std::size_t i = 0; i < sh.rel_parked.size(); ++i) {
    const std::size_t e = sh.rel_parked_edge[i];
    const std::size_t j = due_index(e);
    if (j == std::numeric_limits<std::size_t>::max()) {
      keep.append_from(sh.rel_parked, i, header_bits_);
      keep_edge.push_back(e);
      keep_lost.push_back(sh.rel_parked_lost[i]);
      continue;
    }
    if (sh.rel_parked_lost[i] != 0 && recovered[j] == 0) {
      sh.traffic.messages_lost += 1;  // nclint:allow(stats-batch) FEC resolution is a cold once-per-window path
      continue;
    }
    const MsgBlock::Rec r = sh.rel_parked.record(i, header_bits_);
    sh.lanes[plan_.node_shard[r.to]].append_from(sh.rel_parked, i,
                                                 header_bits_, release[j]);
  }
  sh.rel_parked = std::move(keep);
  sh.rel_parked_edge = std::move(keep_edge);
  sh.rel_parked_lost = std::move(keep_lost);
}

void Network::stage_shard(unsigned s) {
  Shard& sh = shards_[s];
  // Telemetry epilogue, shared by both exits: lane message counts feed the
  // metrics columns (per-shard load balance), the span feeds the trace.
  // Clock reads happen only when tracing is on.
  using clock = std::chrono::steady_clock;
  const bool trace_shard = telem_ && telem_->trace_on() && shards_.size() > 1;
  clock::time_point tt0;
  if (trace_shard) tt0 = clock::now();
  const auto telem_exit = [&]() {
    if (!telem_) return;
    if (telem_->metrics_on()) {
      std::uint64_t staged = 0;
      for (const auto& lane : sh.lanes) staged += lane.message_count();
      sh.telem_staged += staged;
    }
    if (trace_shard) {
      const auto tt1 = clock::now();
      sh.telem_spans.push_back(Telemetry::Span{
          "stage", s + 1, round_, span_ts_us(telem_epoch_ns_, tt0),
          span_dur_us(tt0, tt1)});
    }
  };
  // O(1) rewind of the whole previous round's transient storage, then
  // re-carve the lane columns at last round's sizes.
  sh.arena.reset();
  for (auto& lane : sh.lanes) lane.begin_round();
  // FEC window resolution first: released rows enter the lanes ahead of
  // this round's fresh traffic (they are stream-earlier by construction),
  // and a blocked edge is unblocked before any new message on it could be
  // staged into a later window.
  if (rel_ && rel_->fec() && !sh.rel_pending_edges.empty()) {
    resolve_fec_windows(sh);
  }
  if (sh.active_links.empty()) {
    telem_exit();  // released FEC rows may sit in the lanes even so
    return;
  }
  // Ascending (owner, neighbour-index) order within the shard; shards are
  // contiguous ID ranges, so concatenating the shards' sorted sets in shard
  // order reproduces the historical global-scan delivery order exactly —
  // the invariant the determinism guarantee rests on. Steady-state rounds
  // keep the previous round's already-sorted prefix, so check first.
  if (!std::is_sorted(sh.active_links.begin(), sh.active_links.end())) {
    std::sort(sh.active_links.begin(), sh.active_links.end());
  }
  std::size_t kept = 0;
  MsgView view;
  // Broadcast grouping (CONGEST + dedup only): active links are walked in
  // ascending (owner, neighbour-index) order, so the sibling links of one
  // open_stream_all are consecutive. The first link of a run schedules
  // normally and becomes the group head; every following link of the same
  // owner whose next message is byte-identical to the head view
  // (Link::schedule_matches) skips the packing loop and lands in its lane
  // as a packed receiver entry on the group's open row — payload staged
  // once per (src-shard, dst-shard), not once per edge. Faults still run
  // per edge: a dropped copy simply adds no receiver, a delayed copy
  // carries its own deliver round in the receiver entry.
  const bool dedup = config_.broadcast_dedup &&
                     config_.mode == NetConfig::Mode::kCongest;
  const bool profiling = config_.profile != nullptr;
  const bool adversity = faults_ != nullptr || rel_ != nullptr;
  NodeId group_from = 0;
  bool group_live = false;
  MsgView group_view;
  auto close_group = [&]() {
    if (!group_live) return;
    group_live = false;
    for (const unsigned d : sh.bcast_touched) sh.bcast_open[d] = 0;
    sh.bcast_touched.clear();
  };
  for (const std::size_t e : sh.active_links) {
    const NodeId from = edge_owner_[e];
    const std::size_t ni = e - edge_base_[from];
    Link& link = states_[from].out_links[ni];
    const NodeId to = graph_->neighbors(from)[ni];
    const auto back = static_cast<std::uint32_t>(reverse_index_[e]);
    if (config_.mode == NetConfig::Mode::kLocal) {
      // One channel decision covers the whole drained batch; the count is
      // known up front (one message per pending stream). A dropped batch
      // still advances the streams — the traffic was sent, then lost.
      MsgBlock& lane = sh.lanes[plan_.node_shard[to]];
      const std::size_t count = link.pending_stream_count();
      LinkVerdict verdict;
      if (faults_ && count > 0) {
        // Reliability is CONGEST-only (rel_ is null here by construction),
        // so the verdict degenerates to the fault decision.
        verdict = link_verdict(sh, e, from, to, count, 0, 0);
      }
      const bool drop = verdict.fate != LinkVerdict::Fate::kDeliver;
      const std::size_t produced =
          link.drain_views(header_bits_, [&](const MsgView& v) {
            if (!drop) lane.push(v, to, back, verdict.deliver_round);
          });
      if (produced > 0) link.release_idle();
    } else if (group_live && from == group_from &&
               link.schedule_matches(bandwidth_bits_, header_bits_,
                                     group_view)) {
      LinkVerdict verdict;
      if (adversity) {
        verdict = link_verdict(sh, e, from, to, 1, group_view.key.kind,
                               group_view.wire_bits);
      }
      if (verdict.fate == LinkVerdict::Fate::kDeliver) {
        const unsigned d = plan_.node_shard[to];
        MsgBlock& lane = sh.lanes[d];
        if (sh.bcast_open[d]) {
          lane.add_receiver(to, back, verdict.deliver_round);
          if (profiling) sh.bcast_saved += (group_view.bit_len + 7) / 8;
        } else {
          // First surviving copy headed for this destination shard: the
          // lane needs its own payload copy (lanes never share storage).
          lane.push(group_view, to, back, verdict.deliver_round);
          sh.bcast_open[d] = 1;
          sh.bcast_touched.push_back(d);
        }
      } else if (verdict.fate == LinkVerdict::Fate::kPark) {
        // A parked copy leaves the broadcast group like a dropped one (no
        // receiver entry); it gets its own heap row on the FEC hold.
        park_row(sh, e, group_view, to, back, verdict);
      }
      link.release_idle();
    } else {
      close_group();
      if (link.schedule_view(bandwidth_bits_, header_bits_, view)) {
        LinkVerdict verdict;
        if (adversity) {
          verdict =
              link_verdict(sh, e, from, to, 1, view.key.kind, view.wire_bits);
        }
        const unsigned d = plan_.node_shard[to];
        const bool staged = verdict.fate == LinkVerdict::Fate::kDeliver;
        if (staged) {
          sh.lanes[d].push(view, to, back, verdict.deliver_round);
        } else if (verdict.fate == LinkVerdict::Fate::kPark) {
          park_row(sh, e, view, to, back, verdict);
        }
        if (dedup) {
          group_from = from;
          group_view = view;
          group_live = true;
          if (staged) {
            sh.bcast_open[d] = 1;
            sh.bcast_touched.push_back(d);
          }
        }
        link.release_idle();
      }
    }
    if (link.has_pending()) {
      sh.active_links[kept++] = e;
    } else {
      link_active_[e] = 0;
    }
  }
  close_group();
  sh.active_links.resize(kept);
  if (profiling) {
    std::uint64_t staged = 0;
    for (const auto& lane : sh.lanes) staged += lane.message_count();
    if (staged > sh.staged_peak) sh.staged_peak = staged;
  }
  telem_exit();
}

void Network::deliver_round_serial() {
  Shard& sh = shards_[0];
  if (sh.active_links.empty()) return;
  if (!std::is_sorted(sh.active_links.begin(), sh.active_links.end())) {
    std::sort(sh.active_links.begin(), sh.active_links.end());
  }
  std::size_t kept = 0;
  MsgView view;
  TrafficBatch batch;
  // The fused path can't dedup payload copies (each inbox needs its own
  // symbols), but it reuses the broadcast classifier to skip the per-symbol
  // packing walk for every sibling link after the first: a match means
  // `view` already describes the message, so the link just advances.
  const bool dedup = config_.broadcast_dedup &&
                     config_.mode == NetConfig::Mode::kCongest;
  NodeId group_from = 0;
  bool group_live = false;
  const std::size_t n_active = sh.active_links.size();
  for (std::size_t idx = 0; idx < n_active; ++idx) {
    const std::size_t e = sh.active_links[idx];
    const NodeId from = edge_owner_[e];
    const std::size_t ni = e - edge_base_[from];
    Link& link = states_[from].out_links[ni];
    const NodeId to = graph_->neighbors(from)[ni];
    const std::size_t back = reverse_index_[e];
    if (idx + 2 < n_active) {
      // Each delivery lands on a random destination's ~2 KB NodeState (the
      // counters, the inbox bucket headers) — cold misses that dominate the
      // per-copy cost on high-degree graphs. Peeking two active links ahead
      // overlaps the next destinations' misses with this copy's work (one
      // link ahead is not enough lead time for the dependent-miss chain).
      const std::size_t e2 = sh.active_links[idx + 2];
      const NodeId from2 = edge_owner_[e2];
      const NodeId to2 = graph_->neighbors(from2)[e2 - edge_base_[from2]];
      prefetch_dst(to2);
    }
    if (config_.mode == NetConfig::Mode::kLocal) {
      const std::size_t produced =
          link.drain_views(header_bits_, [&](const MsgView& v) {
            deliver_view(sh, batch, to, back, v);
          });
      if (produced > 0) link.release_idle();
    } else if (group_live && from == group_from &&
               link.schedule_matches(bandwidth_bits_, header_bits_, view)) {
      deliver_view(sh, batch, to, back, view);
      link.release_idle();
    } else {
      group_live = false;
      if (link.schedule_view(bandwidth_bits_, header_bits_, view)) {
        deliver_view(sh, batch, to, back, view);
        if (dedup) {
          group_from = from;
          group_live = true;
        }
        link.release_idle();
      }
    }
    if (link.has_pending()) {
      sh.active_links[kept++] = e;
    } else {
      link_active_[e] = 0;
    }
  }
  sh.active_links.resize(kept);
  batch.flush_into(sh.traffic);
}

void Network::deliver_shard(unsigned d) {
  Shard& dst = shards_[d];
  using clock = std::chrono::steady_clock;
  const bool trace_shard = telem_ && telem_->trace_on() && shards_.size() > 1;
  clock::time_point tt0;
  if (trace_shard) tt0 = clock::now();
  TrafficBatch batch;
  if (faults_ || rel_) {
    // Delayed traffic falls due ahead of this round's on-time traffic, in
    // the order it was queued (by stage round, then canonical merge order
    // within one — a thread-count-invariant sequence). A destination that
    // crashed while the message was in flight silences it on arrival.
    while (!dst.delayed.empty() && dst.delayed.begin()->first <= round_) {
      MsgBlock& bucket = dst.delayed.begin()->second;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const MsgBlock::Rec r = bucket.record(i, header_bits_);
        if (faults_ && faults_->crashed_at(r.to, round_)) {
          dst.traffic.messages_dropped_crash += 1;  // nclint:allow(stats-batch) crash-silencing is rare; batching it would complicate the delayed-bucket walk
        } else {
          deliver_record(dst, batch, r);
        }
      }
      if (config_.profile != nullptr) dst.delayed_msgs -= bucket.size();
      dst.delayed.erase(dst.delayed.begin());
    }
  }
  for (Shard& src : shards_) {
    const MsgBlock& lane = src.lanes[d];
    for (std::size_t i = 0; i < lane.size(); ++i) {
      const MsgBlock::Rec r = lane.record(i, header_bits_);
      if (r.bcast) {
        // Broadcast row: one shared payload, receivers expanded in packed
        // order — which is ascending edge order within the lane, exactly
        // the sequence the per-edge path would have staged, so per-node
        // delivery order and accounting are bit-identical. Each receiver
        // carries its own deliver round (faults decide per copy); a future
        // copy is materialized into the bucket as a plain per-edge row.
        for (std::uint32_t j = 0; j < r.rcv_count; ++j) {
          const MsgBlock::Receiver rcv = lane.receiver(r.rcv_begin + j);
          if (j + 2 < r.rcv_count) {
            prefetch_dst(lane.receiver(r.rcv_begin + j + 2).to);
          }
          if ((faults_ || rel_) && rcv.deliver_round > round_) {
            dst.delayed[rcv.deliver_round].append_receiver_from(
                lane, i, rcv, header_bits_);
            if (config_.profile != nullptr) {
              ++dst.delayed_msgs;
              if (dst.delayed_msgs > dst.delayed_peak) {
                dst.delayed_peak = dst.delayed_msgs;
              }
            }
          } else {
            deliver_copy(dst, batch, r, rcv);
          }
        }
      } else if ((faults_ || rel_) && r.deliver_round > round_) {
        // In flight: copy the staged row (payload and all) into this
        // shard's future bucket — the arena-backed lane is rewound next
        // round, so the bucket owns a heap copy. Touching lane[src][d]
        // from shard d is safe: in the deliver phase a lane is read only
        // by its destination shard (the pool barrier separates it from
        // the stage phase's writes).
        dst.delayed[r.deliver_round].append_from(lane, i, header_bits_);
        if (config_.profile != nullptr) {
          ++dst.delayed_msgs;
          if (dst.delayed_msgs > dst.delayed_peak) {
            dst.delayed_peak = dst.delayed_msgs;
          }
        }
      } else {
        deliver_record(dst, batch, r);
      }
    }
  }
  batch.flush_into(dst.traffic);
  if (trace_shard) {
    const auto tt1 = clock::now();
    dst.telem_spans.push_back(Telemetry::Span{
        "deliver", d + 1, round_, span_ts_us(telem_epoch_ns_, tt0),
        span_dur_us(tt0, tt1)});
  }
}

void Network::wake_shard(unsigned s) {
  Shard& sh = shards_[s];
  using clock = std::chrono::steady_clock;
  const bool trace_shard = telem_ && telem_->trace_on() && shards_.size() > 1;
  clock::time_point tt0;
  if (trace_shard) tt0 = clock::now();
  collect_due_alarms(sh);
  if (trace_shard) {
    const auto tt1 = clock::now();
    sh.telem_spans.push_back(Telemetry::Span{
        "alarm", s + 1, round_, span_ts_us(telem_epoch_ns_, tt0),
        span_dur_us(tt0, tt1)});
  }
  const std::size_t span = static_cast<std::size_t>(sh.end - sh.begin);
  if (sh.wake_list.size() * 8 >= span) {
    // Dense round (most protocol rounds wake most nodes): rebuild the ID
    // order with one linear scan of the contiguous woken bitmap instead of
    // sorting the arrival-order list — O(span) sequential bytes beats
    // O(w log w) random-order comparisons well before w reaches span/8.
    sh.wake_list.clear();
    for (std::size_t i = 0; i < span; ++i) {
      if (sh.woken[i]) sh.wake_list.push_back(sh.begin + static_cast<NodeId>(i));
    }
  } else if (!std::is_sorted(sh.wake_list.begin(), sh.wake_list.end())) {
    std::sort(sh.wake_list.begin(), sh.wake_list.end());
  }
  // Both rebuild paths above must yield the same thing: the woken nodes in
  // ascending ID order. Protocol callbacks observe this order directly.
  nc_invariant(std::is_sorted(sh.wake_list.begin(), sh.wake_list.end()),
               "wake phase must run nodes in ascending ID order");
  if (telem_) sh.telem_wakeups += sh.wake_list.size();
  for (const NodeId v : sh.wake_list) {
    sh.woken[v - sh.begin] = 0;
    if (states_[v].done) continue;
    NodeApi api(*this, v);
    nodes_[v]->on_round(api);
    refresh_outgoing(v);
  }
  sh.wake_list.clear();
  if (trace_shard) {
    const auto tt1 = clock::now();
    sh.telem_spans.push_back(Telemetry::Span{
        "wake", s + 1, round_, span_ts_us(telem_epoch_ns_, tt0),
        span_dur_us(tt0, tt1)});
  }
}

bool Network::step(bool allow_fast_forward) {
  if (all_done()) return false;
  if (!any_active_links()) {
    // The next thing that can happen: an armed alarm, an in-flight delayed
    // message falling due, or a scheduled churn event. Alarms are one-shot
    // (an alarm at or before the current round already had its wake-up) and
    // the other two sources are strictly future by construction, so an idle
    // network with nothing ahead is stuck.
    std::uint64_t next = std::min(next_alarm_round(), next_delayed_round());
    next = std::min(next, next_fault_event_round());
    next = std::min(next, next_reliability_round());
    if (next == kNoAlarm || next <= round_) {
      stats_.stalled = true;
      stats_.rounds = round_;
      return false;
    }
    if (allow_fast_forward && next > round_ + 1) {
      round_ = next - 1;  // skipped rounds are idle but still counted
    }
  }
  if (round_ >= config_.max_rounds) {
    stats_.hit_round_limit = true;
    stats_.rounds = round_;
    return false;
  }
  ++round_;
  // Churn events fire at the top of their round, before any traffic of the
  // round is staged: a node crashing in round r already silences round r.
  if (faults_) apply_fault_events();
  // Two-phase delivery, then wake dispatch — each phase parallel over
  // shards with a barrier in between (stage writes source-shard state,
  // deliver reads the staged lanes and writes destination-shard state).
  // A single shard fuses the two phases: no lanes, no round-sized buffer —
  // except under an active fault plan, where even one shard takes the
  // staged path so the loss/delay/churn decision points exist exactly once.
  // Clock reads exist only on the opt-in profiling/tracing paths.
  using clock = std::chrono::steady_clock;
  const bool prof = config_.profile != nullptr;
  const bool tr = telem_ && telem_->trace_on();
  if (telem_) telem_->begin_round(round_);
  clock::time_point t0;
  if (prof || tr) t0 = clock::now();
  if (shards_.size() == 1 && !faults_ && !rel_) {
    deliver_round_serial();
    if (prof || tr) {
      // The fused loop schedules and delivers in one pass; splitting its
      // time into stage/deliver would require a clock read per edge. It is
      // booked honestly as its own phase instead (fused_seconds), so a
      // 1-thread profile no longer shows stage_seconds: 0 with the stage
      // work hidden inside deliver_seconds.
      const auto t1 = clock::now();
      if (prof) {
        prof_.fused_seconds += std::chrono::duration<double>(t1 - t0).count();
      }
      if (tr) {
        telem_->add_span("fused", 0, round_, span_ts_us(telem_epoch_ns_, t0),
                         span_dur_us(t0, t1));
      }
      t0 = t1;
    }
  } else {
    for_each_shard([this](unsigned s) { stage_shard(s); });
    if (prof || tr) {
      const auto t1 = clock::now();
      if (prof) {
        prof_.stage_seconds += std::chrono::duration<double>(t1 - t0).count();
      }
      if (tr) {
        telem_->add_span("stage", 0, round_, span_ts_us(telem_epoch_ns_, t0),
                         span_dur_us(t0, t1));
      }
      t0 = t1;
    }
    for_each_shard([this](unsigned s) { deliver_shard(s); });
    if (prof || tr) {
      const auto t1 = clock::now();
      if (prof) {
        prof_.deliver_seconds += std::chrono::duration<double>(t1 - t0).count();
      }
      if (tr) {
        telem_->add_span("deliver", 0, round_, span_ts_us(telem_epoch_ns_, t0),
                         span_dur_us(t0, t1));
      }
      t0 = t1;
    }
  }
  // Serial reduction in shard order: exact (integer sums/maxes), so stats_
  // is bit-identical to serial accumulation at every shard count.
  for (auto& sh : shards_) {
    stats_.merge_traffic(sh.traffic);
    sh.traffic = RunStats{};
  }
  // Stall-diagnostics breadcrumb: remember the last round that delivered
  // anything (two integer ops per round — kept unconditional).
  if (stats_.messages != last_delivery_messages_) {
    last_delivery_messages_ = stats_.messages;
    last_delivery_round_ = round_;
  }
  for_each_shard([this](unsigned s) { wake_shard(s); });
  double round_ts_us = -1.0;
  if (prof || tr) {
    const auto t1 = clock::now();
    if (prof) {
      prof_.wake_seconds += std::chrono::duration<double>(t1 - t0).count();
    }
    if (tr) {
      telem_->add_span("wake", 0, round_, span_ts_us(telem_epoch_ns_, t0),
                       span_dur_us(t0, t1));
      round_ts_us = span_ts_us(telem_epoch_ns_, t1);
    }
  }
  if (telem_) round_telemetry(round_ts_us);
  stats_.rounds = round_;
  return !all_done();
}

void Network::round_telemetry(double ts_us) {
  // Serial end-of-round drain, ascending shard order (the same discipline
  // as the stats reduction above; telemetry sums are u64, so the order is
  // a determinism convention rather than a correctness requirement).
  for (unsigned s = 0; s < shards_.size(); ++s) {
    Shard& sh = shards_[s];
    telem_->note_shard_round(s, sh.telem_wakeups, sh.telem_staged,
                             sh.telem_fec_parks);
    sh.telem_wakeups = 0;
    sh.telem_staged = 0;
    sh.telem_fec_parks = 0;
    for (const auto& sp : sh.telem_spans) {
      telem_->add_span(sp.name, sp.tid, sp.round, sp.ts_us, sp.dur_us);
    }
    sh.telem_spans.clear();
  }
  telem_->end_round(round_, active_link_count(), stats_, ts_us);
}

StallReport Network::stall_report() const {
  StallReport r;
  r.stalled = stats_.stalled;
  r.hit_round_limit = stats_.hit_round_limit;
  r.rounds = stats_.rounds;
  r.last_delivery_round = last_delivery_round_;
  r.nodes_total = n_;
  for (NodeId v = 0; v < n_; ++v) {
    const auto& st = states_[v];
    if (st.done) ++r.nodes_done;
    if (st.alarm != kNoAlarm) {
      ++r.armed_alarms;
      r.next_alarm_round = std::min(r.next_alarm_round, st.alarm);
    }
    if (faults_ && faults_->crashed_at(v, round_)) ++r.nodes_crashed;
  }
  for (const auto& sh : shards_) {
    for (const auto& [due, bucket] : sh.delayed) {
      r.delayed_in_flight += bucket.message_count();
      r.next_delayed_round = std::min(r.next_delayed_round, due);
    }
    r.fec_parked += sh.rel_parked.size();
    r.fec_pending_edges += sh.rel_pending_edges.size();
    r.active_links += sh.active_links.size();
  }
  return r;
}

void Network::flush_profile() {
  if (config_.profile == nullptr) return;
  prof_.arena_bytes_total = 0;
  prof_.arena_bytes_peak_shard = 0;
  prof_.lane_msgs_peak = 0;
  prof_.delayed_msgs_peak = 0;
  prof_.broadcast_payload_bytes_saved = 0;
  for (const auto& sh : shards_) {
    const auto hw = static_cast<std::uint64_t>(sh.arena.high_water_bytes());
    prof_.arena_bytes_total += hw;
    prof_.arena_bytes_peak_shard = std::max(prof_.arena_bytes_peak_shard, hw);
    prof_.lane_msgs_peak = std::max(prof_.lane_msgs_peak, sh.staged_peak);
    prof_.delayed_msgs_peak = std::max(prof_.delayed_msgs_peak, sh.delayed_peak);
    prof_.broadcast_payload_bytes_saved += sh.bcast_saved;
  }
  // Cumulative over the network's lifetime: repeated run_rounds() calls
  // overwrite the destination with ever-growing totals.
  *config_.profile = prof_;
}

void Network::flush_telemetry() {
  if (!telem_) return;
  telem_->flush(stats_, n_, shards_.size(), config_.seed);
}

RunStats Network::run() {
  while (step(/*allow_fast_forward=*/true)) {
  }
  flush_profile();
  flush_telemetry();
  return stats_;
}

bool Network::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (!step(/*allow_fast_forward=*/false)) break;
  }
  flush_profile();
  flush_telemetry();
  return all_done();
}

}  // namespace nc
