#include "runtime/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/bitio.hpp"

namespace nc {

// ---------------------------------------------------------------------------
// NodeApi
// ---------------------------------------------------------------------------

NodeId NodeApi::n() const noexcept { return net_->n_; }

std::uint64_t NodeApi::round() const noexcept { return net_->round_; }

std::span<const NodeId> NodeApi::neighbors() const {
  return net_->graph_->neighbors(id_);
}

std::size_t NodeApi::neighbor_index(NodeId v) const {
  const auto nb = neighbors();
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(it - nb.begin());
}

Rng& NodeApi::rng() { return net_->states_[id_].rng; }

OutChannel NodeApi::open_stream(const StreamKey& key,
                                std::span<const std::size_t> neighbor_indices) {
  OutChannel ch;
  auto& links = net_->states_[id_].out_links;
  for (const std::size_t ni : neighbor_indices) {
    assert(ni < links.size());
    links[ni].add_stream(key, ch.buffer(), ch.closed_flag());
  }
  return ch;
}

OutChannel NodeApi::open_stream_all(const StreamKey& key) {
  std::vector<std::size_t> all(degree());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return open_stream(key, all);
}

OutChannel NodeApi::open_stream_one(const StreamKey& key,
                                    std::size_t neighbor_index) {
  const std::size_t idx[1] = {neighbor_index};
  return open_stream(key, idx);
}

InStream* NodeApi::find_in(std::size_t ni, const StreamKey& key) {
  auto& inbox = net_->states_[id_].inbox;
  const auto it = inbox.find({ni, key});
  return it == inbox.end() ? nullptr : &it->second;
}

void NodeApi::for_each_in(
    std::uint16_t kind,
    const std::function<void(std::size_t, const StreamKey&, InStream&)>& fn) {
  auto& inbox = net_->states_[id_].inbox;
  for (auto& [addr, stream] : inbox) {
    if (addr.second.kind == kind) fn(addr.first, addr.second, stream);
  }
}

std::uint64_t NodeApi::rx_count(std::uint16_t kind) const {
  return net_->states_[id_].rx_by_kind[kind & 31u];
}

void NodeApi::set_alarm(std::uint64_t round) {
  net_->states_[id_].alarm = round;
}

void NodeApi::set_done() {
  auto& st = net_->states_[id_];
  if (!st.done) {
    st.done = true;
    st.alarm = Network::kNoAlarm;
    ++net_->done_count_;
  }
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const Graph& g, const NetConfig& config,
                 const std::function<std::unique_ptr<INode>(NodeId)>& factory)
    : graph_(&g),
      config_(config),
      n_(g.n()),
      id_bits_(id_width(g.n())),
      header_bits_(stream_header_bits(id_bits_)) {
  bandwidth_bits_ = config.mode == NetConfig::Mode::kLocal
                        ? std::numeric_limits<std::size_t>::max()
                        : static_cast<std::size_t>(config.bandwidth_factor) *
                              id_bits_;
  const Rng master(config.seed);
  nodes_.reserve(n_);
  states_.reserve(n_);
  for (NodeId v = 0; v < n_; ++v) {
    NodeState st{master.derive(v), std::vector<Link>(g.degree(v)), {}, {},
                 kNoAlarm, false};
    states_.push_back(std::move(st));
    nodes_.push_back(factory(v));
  }
  for (NodeId v = 0; v < n_; ++v) {
    NodeApi api(*this, v);
    nodes_[v]->on_start(api);
  }
}

bool Network::any_link_pending() const noexcept {
  for (const auto& st : states_) {
    for (const auto& link : st.out_links) {
      if (link.has_pending()) return true;
    }
  }
  return false;
}

std::uint64_t Network::min_alarm() const noexcept {
  std::uint64_t next = kNoAlarm;
  for (const auto& st : states_) {
    if (!st.done) next = std::min(next, st.alarm);
  }
  return next;
}

void Network::deliver(NodeId from, std::size_t ni, const Delivery& d) {
  const NodeId to = graph_->neighbors(from)[ni];
  NodeApi to_api(*this, to);
  const std::size_t back_index = to_api.neighbor_index(from);
  states_[to].rx_by_kind[d.key.kind & 31u] += 1;
  auto& stream = states_[to].inbox[{back_index, d.key}];
  for (const auto& [value, width] : d.symbols) stream.deliver(value, width);
  if (d.eos) stream.deliver_eos();
  stats_.messages += 1;
  stats_.bits += d.wire_bits;
  stats_.max_message_bits = std::max<std::uint64_t>(stats_.max_message_bits,
                                                    d.wire_bits);
  stats_.bits_by_kind[d.key.kind] += d.wire_bits;
}

void Network::deliver_round() {
  for (NodeId v = 0; v < n_; ++v) {
    auto& links = states_[v].out_links;
    for (std::size_t ni = 0; ni < links.size(); ++ni) {
      if (config_.mode == NetConfig::Mode::kLocal) {
        if (auto ds = links[ni].drain_all(header_bits_)) {
          for (const auto& d : *ds) deliver(v, ni, d);
        }
      } else {
        if (auto d = links[ni].schedule(bandwidth_bits_, header_bits_)) {
          deliver(v, ni, *d);
        }
      }
    }
  }
}

bool Network::step(bool allow_fast_forward) {
  if (all_done()) return false;
  if (!any_link_pending()) {
    const std::uint64_t next = min_alarm();
    // Alarms are one-shot: an alarm at or before the current round already
    // had its wake-up, so an idle network with only stale alarms is stuck.
    if (next == kNoAlarm || next <= round_) {
      stats_.stalled = true;
      stats_.rounds = round_;
      return false;
    }
    if (allow_fast_forward && next > round_ + 1) {
      round_ = next - 1;  // skipped rounds are idle but still counted
    }
  }
  if (round_ >= config_.max_rounds) {
    stats_.hit_round_limit = true;
    stats_.rounds = round_;
    return false;
  }
  ++round_;
  deliver_round();
  for (NodeId v = 0; v < n_; ++v) {
    if (states_[v].done) continue;
    // One-shot alarm: clear before the callback so a set_alarm inside it
    // re-arms for a future round.
    if (states_[v].alarm <= round_) states_[v].alarm = kNoAlarm;
    NodeApi api(*this, v);
    nodes_[v]->on_round(api);
  }
  stats_.rounds = round_;
  return !all_done();
}

RunStats Network::run() {
  while (step(/*allow_fast_forward=*/true)) {
  }
  return stats_;
}

bool Network::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (!step(/*allow_fast_forward=*/false)) break;
  }
  return all_done();
}

}  // namespace nc
