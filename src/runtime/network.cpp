#include "runtime/network.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/bitio.hpp"

namespace nc {

// ---------------------------------------------------------------------------
// NodeApi
// ---------------------------------------------------------------------------

NodeId NodeApi::n() const noexcept { return net_->n_; }

std::uint64_t NodeApi::round() const noexcept { return net_->round_; }

std::span<const NodeId> NodeApi::neighbors() const {
  return net_->graph_->neighbors(id_);
}

std::size_t NodeApi::neighbor_index(NodeId v) const {
  const auto nb = neighbors();
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  if (it == nb.end() || *it != v) return std::numeric_limits<std::size_t>::max();
  return static_cast<std::size_t>(it - nb.begin());
}

Rng& NodeApi::rng() { return net_->states_[id_].rng; }

OutChannel NodeApi::open_stream(const StreamKey& key,
                                std::span<const std::size_t> neighbor_indices) {
  if (key.kind >= kMaxMsgKinds) {
    throw std::invalid_argument(
        "open_stream: message kind does not fit the 5-bit header field");
  }
  if (key.version >= kMaxStreamVersions) {
    throw std::invalid_argument(
        "open_stream: stream version does not fit the 4-bit header field");
  }
  OutChannel ch;
  auto& links = net_->states_[id_].out_links;
  for (const std::size_t ni : neighbor_indices) {
    assert(ni < links.size());
    links[ni].add_stream(key, ch.state());
  }
  return ch;
}

OutChannel NodeApi::open_stream_all(const StreamKey& key) {
  // The shared iota table covers [0, max_degree): a full-fanout open is
  // allocation-free.
  return open_stream(
      key, std::span<const std::size_t>(net_->iota_.data(), degree()));
}

OutChannel NodeApi::open_stream_one(const StreamKey& key,
                                    std::size_t neighbor_index) {
  const std::size_t idx[1] = {neighbor_index};
  return open_stream(key, idx);
}

InStream* NodeApi::find_in(std::size_t ni, const StreamKey& key) {
  return net_->states_[id_].inbox.find(ni, key);
}

std::uint64_t NodeApi::rx_count(std::uint16_t kind) const {
  if (kind >= kMaxMsgKinds) {
    throw std::out_of_range("rx_count: message kind out of range");
  }
  return net_->states_[id_].rx_by_kind[kind];
}

void NodeApi::set_alarm(std::uint64_t round) {
  auto& st = net_->states_[id_];
  if (st.done || st.alarm == round) return;
  st.alarm = round;  // latest call wins; stale bucket entries are skipped
  if (round != Network::kNoAlarm) {
    // The owning shard's buckets: a node only ever arms itself, so the
    // write stays inside the shard running this callback.
    net_->shards_[net_->plan_.node_shard[id_]]
        .alarm_buckets[round]
        .push_back(id_);
  }
}

void NodeApi::set_done() {
  auto& st = net_->states_[id_];
  if (!st.done) {
    st.done = true;
    st.alarm = Network::kNoAlarm;
    ++net_->shards_[net_->plan_.node_shard[id_]].done_count;
  }
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const Graph& g, const NetConfig& config,
                 const std::function<std::unique_ptr<INode>(NodeId)>& factory)
    : graph_(&g),
      config_(config),
      n_(g.n()),
      id_bits_(id_width(g.n())),
      header_bits_(stream_header_bits(id_bits_)) {
  bandwidth_bits_ = config.mode == NetConfig::Mode::kLocal
                        ? std::numeric_limits<std::size_t>::max()
                        : static_cast<std::size_t>(config.bandwidth_factor) *
                              id_bits_;

  // CSR mirror: offsets, owners and the reverse-edge index table. Iterating
  // sources in ascending ID order means, for a fixed target u, sources
  // arrive in ascending order too — so a per-node cursor yields the position
  // of the source in u's sorted adjacency list in O(m) total, and deliveries
  // never binary-search again.
  edge_base_.resize(static_cast<std::size_t>(n_) + 1, 0);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < n_; ++v) {
    edge_base_[v + 1] = edge_base_[v] + g.degree(v);
    max_degree = std::max(max_degree, g.degree(v));
  }
  const std::size_t directed_edges = edge_base_[n_];
  edge_owner_.resize(directed_edges);
  reverse_index_.resize(directed_edges);
  {
    std::vector<std::size_t> cursor(n_, 0);
    for (NodeId v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const std::size_t e = edge_base_[v] + i;
        edge_owner_[e] = v;
        reverse_index_[e] = cursor[nb[i]]++;
      }
    }
  }
  iota_.resize(max_degree);
  for (std::size_t i = 0; i < max_degree; ++i) iota_[i] = i;
  link_active_.assign(directed_edges, 0);

  // Shard partition + pool. The partition is contiguous and balanced by
  // degree; every per-round structure below is shard-owned.
  plan_ = plan_shards(g, std::max(1u, config.threads));
  const unsigned k = plan_.shards();
  shards_.resize(k);
  for (unsigned s = 0; s < k; ++s) {
    shards_[s].begin = plan_.begin(s);
    shards_[s].end = plan_.end(s);
    shards_[s].lanes.resize(k);
  }
  if (k > 1) pool_ = std::make_unique<ShardPool>(k);

  const Rng master(config.seed);
  nodes_.reserve(n_);
  states_.reserve(n_);
  for (NodeId v = 0; v < n_; ++v) {
    NodeState st;
    st.rng = master.derive(v);
    st.out_links.resize(g.degree(v));
    states_.push_back(std::move(st));
    nodes_.push_back(factory(v));
  }
  // on_start runs serially: it is one-time work, and factories/initializers
  // are user code the runtime makes no thread-safety assumptions about.
  for (NodeId v = 0; v < n_; ++v) {
    NodeApi api(*this, v);
    nodes_[v]->on_start(api);
    refresh_outgoing(v);
  }
}

void Network::wake(Shard& sh, NodeId v) {
  auto& st = states_[v];
  if (!st.woken && !st.done) {
    st.woken = true;
    sh.wake_list.push_back(v);
  }
}

void Network::refresh_outgoing(NodeId v) {
  const std::size_t base = edge_base_[v];
  auto& links = states_[v].out_links;
  auto& active = shards_[plan_.node_shard[v]].active_links;
  for (std::size_t ni = 0; ni < links.size(); ++ni) {
    const std::size_t e = base + ni;
    if (!link_active_[e] && links[ni].has_pending()) {
      link_active_[e] = 1;
      active.push_back(e);
    }
  }
}

std::uint64_t Network::next_alarm_round() {
  std::uint64_t best = kNoAlarm;
  for (auto& sh : shards_) {
    while (!sh.alarm_buckets.empty()) {
      const auto it = sh.alarm_buckets.begin();
      const std::uint64_t round = it->first;
      auto& entries = it->second;
      std::erase_if(entries, [&](NodeId v) {
        return states_[v].done || states_[v].alarm != round;
      });
      if (!entries.empty()) {
        best = std::min(best, round);
        break;
      }
      sh.alarm_buckets.erase(it);
    }
  }
  return best;
}

void Network::collect_due_alarms(Shard& sh) {
  while (!sh.alarm_buckets.empty() &&
         sh.alarm_buckets.begin()->first <= round_) {
    const auto it = sh.alarm_buckets.begin();
    const std::uint64_t round = it->first;
    for (const NodeId v : it->second) {
      auto& st = states_[v];
      if (!st.done && st.alarm == round) {
        // One-shot: clear before the callback so a set_alarm inside it
        // re-arms for a future round.
        st.alarm = kNoAlarm;
        wake(sh, v);
      }
    }
    sh.alarm_buckets.erase(it);
  }
}

void Network::deliver(Shard& dst, const StagedDelivery& sd) {
  auto& st = states_[sd.to];
  st.rx_by_kind[sd.d.key.kind] += 1;
  InStream& stream = st.inbox.open(sd.back_index, sd.d.key);
  for (const auto& [value, width] : sd.d.symbols) stream.deliver(value, width);
  if (sd.d.eos) stream.deliver_eos();
  wake(dst, sd.to);
  dst.traffic.messages += 1;
  dst.traffic.bits += sd.d.wire_bits;
  dst.traffic.max_message_bits = std::max<std::uint64_t>(
      dst.traffic.max_message_bits, sd.d.wire_bits);
  dst.traffic.bits_by_kind[sd.d.key.kind] += sd.d.wire_bits;
}

void Network::stage_shard(unsigned s) {
  Shard& sh = shards_[s];
  for (auto& lane : sh.lanes) lane.reset();
  if (sh.active_links.empty()) return;
  // Ascending (owner, neighbour-index) order within the shard; shards are
  // contiguous ID ranges, so concatenating the shards' sorted sets in shard
  // order reproduces the historical global-scan delivery order exactly —
  // the invariant the determinism guarantee rests on.
  std::sort(sh.active_links.begin(), sh.active_links.end());
  std::size_t kept = 0;
  for (const std::size_t e : sh.active_links) {
    const NodeId from = edge_owner_[e];
    const std::size_t ni = e - edge_base_[from];
    Link& link = states_[from].out_links[ni];
    const NodeId to = graph_->neighbors(from)[ni];
    Lane& lane = sh.lanes[plan_.node_shard[to]];
    if (config_.mode == NetConfig::Mode::kLocal) {
      sh.scratch_local.clear();
      link.drain_all_into(header_bits_, sh.scratch_local);
      for (auto& d : sh.scratch_local) {
        StagedDelivery& slot = lane.next();
        slot.to = to;
        slot.back_index = reverse_index_[e];
        slot.d = std::move(d);
      }
    } else {
      StagedDelivery& slot = lane.next();
      if (link.schedule_into(bandwidth_bits_, header_bits_, slot.d)) {
        slot.to = to;
        slot.back_index = reverse_index_[e];
      } else {
        lane.unstage();
      }
    }
    if (link.has_pending()) {
      sh.active_links[kept++] = e;
    } else {
      link_active_[e] = 0;
    }
  }
  sh.active_links.resize(kept);
}

void Network::deliver_round_serial() {
  Shard& sh = shards_[0];
  if (sh.active_links.empty()) return;
  std::sort(sh.active_links.begin(), sh.active_links.end());
  std::size_t kept = 0;
  for (const std::size_t e : sh.active_links) {
    const NodeId from = edge_owner_[e];
    const std::size_t ni = e - edge_base_[from];
    Link& link = states_[from].out_links[ni];
    scratch_.to = graph_->neighbors(from)[ni];
    scratch_.back_index = reverse_index_[e];
    if (config_.mode == NetConfig::Mode::kLocal) {
      sh.scratch_local.clear();
      link.drain_all_into(header_bits_, sh.scratch_local);
      for (auto& d : sh.scratch_local) {
        scratch_.d = std::move(d);
        deliver(sh, scratch_);
      }
    } else {
      if (link.schedule_into(bandwidth_bits_, header_bits_, scratch_.d)) {
        deliver(sh, scratch_);
      }
    }
    if (link.has_pending()) {
      sh.active_links[kept++] = e;
    } else {
      link_active_[e] = 0;
    }
  }
  sh.active_links.resize(kept);
}

void Network::deliver_shard(unsigned d) {
  Shard& dst = shards_[d];
  for (const Shard& src : shards_) {
    const Lane& lane = src.lanes[d];
    for (std::size_t i = 0; i < lane.used; ++i) {
      deliver(dst, lane.items[i]);
    }
  }
}

void Network::wake_shard(unsigned s) {
  Shard& sh = shards_[s];
  collect_due_alarms(sh);
  std::sort(sh.wake_list.begin(), sh.wake_list.end());
  for (const NodeId v : sh.wake_list) {
    auto& st = states_[v];
    st.woken = false;
    if (st.done) continue;
    NodeApi api(*this, v);
    nodes_[v]->on_round(api);
    refresh_outgoing(v);
  }
  sh.wake_list.clear();
}

bool Network::step(bool allow_fast_forward) {
  if (all_done()) return false;
  if (!any_active_links()) {
    const std::uint64_t next = next_alarm_round();
    // Alarms are one-shot: an alarm at or before the current round already
    // had its wake-up, so an idle network with only stale alarms is stuck.
    if (next == kNoAlarm || next <= round_) {
      stats_.stalled = true;
      stats_.rounds = round_;
      return false;
    }
    if (allow_fast_forward && next > round_ + 1) {
      round_ = next - 1;  // skipped rounds are idle but still counted
    }
  }
  if (round_ >= config_.max_rounds) {
    stats_.hit_round_limit = true;
    stats_.rounds = round_;
    return false;
  }
  ++round_;
  // Two-phase delivery, then wake dispatch — each phase parallel over
  // shards with a barrier in between (stage writes source-shard state,
  // deliver reads the staged lanes and writes destination-shard state).
  // A single shard fuses the two phases: no lanes, no round-sized buffer.
  if (shards_.size() == 1) {
    deliver_round_serial();
  } else {
    for_each_shard([this](unsigned s) { stage_shard(s); });
    for_each_shard([this](unsigned s) { deliver_shard(s); });
  }
  // Serial reduction in shard order: exact (integer sums/maxes), so stats_
  // is bit-identical to serial accumulation at every shard count.
  for (auto& sh : shards_) {
    stats_.merge_traffic(sh.traffic);
    sh.traffic = RunStats{};
  }
  for_each_shard([this](unsigned s) { wake_shard(s); });
  stats_.rounds = round_;
  return !all_done();
}

RunStats Network::run() {
  while (step(/*allow_fast_forward=*/true)) {
  }
  return stats_;
}

bool Network::run_rounds(std::uint64_t rounds) {
  for (std::uint64_t i = 0; i < rounds; ++i) {
    if (!step(/*allow_fast_forward=*/false)) break;
  }
  return all_done();
}

}  // namespace nc
