#include "runtime/stream.hpp"

// All members are defined inline; this translation unit anchors the header
// so build systems that require one source file per module stay happy.
