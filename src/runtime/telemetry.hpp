#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/accounting.hpp"
#include "util/paramset.hpp"

namespace nc {

class JsonWriter;

/// Observation record of one execution: the sink a TelemetryPlan points at.
/// Owned by the caller (driver / CLI / sweep runner), filled by the engine,
/// read after the run through the writers below. Everything in here is
/// derived from counters the engine already maintains — recording never
/// feeds back into a simulation decision, which is what makes the
/// observer-effect contract (telemetry on/off runs are bit-identical)
/// testable rather than aspirational.
struct Telemetry {
  /// Column-oriented per-round metrics. One row per *sampled* round
  /// (every `stride`-th round, capped at `max_samples` rows); each row
  /// covers the window since the previous sample, so windowed columns
  /// (wakeups, delivered, bits, ...) sum to the run totals when stride > 1.
  struct Metrics {
    std::uint64_t stride = 1;  ///< echo of TelemetryPlan::stride

    std::vector<std::uint64_t> round;         ///< sampled round numbers
    std::vector<std::uint64_t> active_links;  ///< links pending after the round
    std::vector<std::uint64_t> wakeups;       ///< on_round callbacks in window
    std::vector<std::uint64_t> staged;        ///< lane messages staged in window
                                              ///< (0 on the fused 1-thread
                                              ///< clean path — nothing stages)
    std::vector<std::uint64_t> delivered;     ///< messages delivered in window
    std::vector<std::uint64_t> lost;          ///< fault-engine drops in window
    std::vector<std::uint64_t> delayed;       ///< delay deferrals in window
    std::vector<std::uint64_t> retransmitted; ///< ARQ resends in window
    std::vector<std::uint64_t> fec_parks;     ///< FEC head-of-line parks
    std::vector<std::uint64_t> bits;          ///< wire bits in window

    /// Shard load balance: min/max/mean of the per-shard staged-message
    /// counts accumulated over the window — the imbalance number the
    /// multicore work steers by.
    std::vector<std::uint64_t> shard_staged_min;
    std::vector<std::uint64_t> shard_staged_max;
    std::vector<double> shard_staged_mean;

    /// Per-kind wire bits in the window, flattened row-major:
    /// row r occupies [r * kMaxMsgKinds, (r + 1) * kMaxMsgKinds).
    std::vector<std::uint64_t> bits_by_kind;

    /// Wall-clock of each sample point in microseconds since engine
    /// construction. Only filled when tracing is on too (it exists to give
    /// the trace's counter tracks timestamps) and deliberately NOT emitted
    /// by the metrics writer — metrics files stay byte-deterministic.
    std::vector<double> ts_us;

    /// Sample points skipped after the max_samples row budget filled up.
    std::uint64_t samples_dropped = 0;

    [[nodiscard]] std::size_t samples() const noexcept { return round.size(); }
  } metrics;

  /// One phase span for the Chrome trace_event output. `name` is always an
  /// engine-owned string literal ("stage", "deliver", "fused", "wake",
  /// "alarm"); tid 0 is the engine's serial track, tid s+1 is shard s.
  struct Span {
    const char* name = "";
    std::uint32_t tid = 0;
    std::uint64_t round = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
  };
  std::vector<Span> spans;
  std::uint64_t spans_dropped = 0;  ///< spans discarded past max_spans

  /// One named protocol probe: a counter (sampled as its cumulative total)
  /// or a gauge (sampled as the sum of probe_add deltas in the window).
  /// `value` is aligned with metrics.round; series registered after
  /// sampling started are zero-padded at the front. Sorted by name at
  /// flush, so the output order is independent of registration order (and
  /// therefore of thread count).
  struct ProbeSeries {
    std::string name;
    bool counter = true;
    std::vector<std::uint64_t> value;
    std::uint64_t total = 0;
  };
  std::vector<ProbeSeries> probes;

  // Run echo, filled at flush time.
  RunStats stats;             ///< final merged RunStats of the run
  std::uint64_t n = 0;        ///< node count
  std::uint64_t threads = 1;  ///< NetConfig::threads
  std::uint64_t seed = 0;     ///< NetConfig::seed
};

/// Declarative telemetry request, plugged into NetConfig alongside
/// FaultPlan / ReliabilityPlan and parameterized through the same param-bag
/// machinery (telemetry_param_defaults declares the legal key set). The
/// `sink` pointer is attached by the driver layer, never parsed from
/// params: a plan with facets requested but no sink is inert, so a sweep
/// axis can flip tel_* keys without the runner wiring capture buffers.
struct TelemetryPlan {
  bool metrics = false;  ///< per-round metric rows (tel_metrics)
  bool trace = false;    ///< phase spans / Chrome trace (tel_trace)
  bool probes = false;   ///< protocol probe API live (tel_probes)

  /// Sample every stride-th round (1 = every round). Windowed columns
  /// cover the rounds since the previous sample, so totals are preserved.
  std::uint64_t stride = 1;

  /// Memory bounds: at most max_samples metric rows and max_spans trace
  /// spans are retained; overflow is counted (samples_dropped /
  /// spans_dropped), never silently truncated.
  std::uint64_t max_samples = 65536;
  std::uint64_t max_spans = 262144;

  /// Observation sink; owned by the caller, must outlive the Network.
  Telemetry* sink = nullptr;

  /// Facets requested (regardless of whether a sink is attached yet).
  [[nodiscard]] bool requested() const noexcept {
    return metrics || trace || probes;
  }

  /// True when the engine should be built: something is requested AND a
  /// sink is attached. The default plan keeps Network::telem_ null, so
  /// every hot-path hook is one branch on a null pointer.
  [[nodiscard]] bool any() const noexcept {
    return requested() && sink != nullptr;
  }

  /// Throws std::invalid_argument on stride == 0 or zero budgets.
  void validate() const;

  /// One-line "metrics+trace stride=8 cap=65536/262144" style rendering.
  [[nodiscard]] std::string summary() const;
};

/// The complete legal telemetry parameter set with its default (all-off)
/// values: tel_metrics, tel_trace, tel_probes (0/1 flags), tel_stride,
/// tel_max_samples, tel_max_spans. Network algorithms splice these keys
/// into their declared defaults exactly like the fault/reliability keys.
const ParamSet& telemetry_param_defaults();

/// Reads a TelemetryPlan from a param bag holding (a subset of) the
/// declared keys, validates it and returns it (sink left null).
TelemetryPlan telemetry_plan_from_params(const ParamSet& params);

/// Parses a "tel_metrics=1,tel_stride=8" CSV against the declared key set
/// (unknown keys throw with the catalogue) and validates the resulting
/// plan. The `--telemetry=` front end.
TelemetryPlan parse_telemetry_plan(const std::string& csv);

/// Post-mortem of a run that tripped a termination guard (RunStats::stalled
/// or hit_round_limit): where progress last happened and what was still
/// pending when the engine gave up. Built by Network::stall_report() from
/// state the engine keeps anyway, so it is available even with telemetry
/// off — `nearclique run` prints it on nonzero exit.
struct StallReport {
  static constexpr std::uint64_t kNone = ~0ULL;

  bool stalled = false;
  bool hit_round_limit = false;
  std::uint64_t rounds = 0;               ///< round the run stopped at
  std::uint64_t last_delivery_round = 0;  ///< last round a message arrived

  std::uint64_t nodes_total = 0;
  std::uint64_t nodes_done = 0;     ///< nodes that called set_done
  std::uint64_t nodes_crashed = 0;  ///< nodes crashed at the final round

  std::uint64_t armed_alarms = 0;  ///< nodes with a pending alarm
  std::uint64_t next_alarm_round = kNone;

  std::uint64_t delayed_in_flight = 0;  ///< delay-deferred messages pending
  std::uint64_t next_delayed_round = kNone;

  std::uint64_t fec_parked = 0;         ///< messages parked behind FEC windows
  std::uint64_t fec_pending_edges = 0;  ///< edges with an open FEC horizon

  std::uint64_t active_links = 0;  ///< links with traffic pending

  [[nodiscard]] bool triggered() const noexcept {
    return stalled || hit_round_limit;
  }

  /// Multi-line human-readable post-mortem (empty string when not
  /// triggered).
  [[nodiscard]] std::string summary() const;

  /// Complete JSON object (begin_object .. end_object) via util/json.
  void to_json(JsonWriter& w) const;
};

/// Recording engine: owned by Network when the plan is active (null
/// otherwise — the zero-cost-when-off contract lives in that null check).
/// The threading discipline mirrors the rest of the runtime: per-shard
/// accumulators are only touched by their owning shard's thread during the
/// parallel phases, and everything that orders or merges them runs in the
/// serial section at the end of each round, in ascending shard order.
class TelemetryEngine {
 public:
  /// Sentinel returned by probe registration when probes are off.
  static constexpr std::uint32_t kNoProbe = 0xffffffffu;

  TelemetryEngine(const TelemetryPlan& plan, unsigned shards);

  [[nodiscard]] bool metrics_on() const noexcept { return plan_.metrics; }
  [[nodiscard]] bool trace_on() const noexcept { return plan_.trace; }
  [[nodiscard]] bool probes_on() const noexcept { return plan_.probes; }

  /// True when the current round closes a sampling window (set by
  /// begin_round; shard code may consult it to skip per-round work on
  /// unsampled rounds).
  [[nodiscard]] bool sampled() const noexcept { return sampled_; }

  /// Engine epoch in wall-clock nanoseconds (set once by Network before
  /// round 1; the engine itself never reads a clock).
  void set_epoch_ns(std::uint64_t ns) noexcept { epoch_ns_ = ns; }
  [[nodiscard]] std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  /// Serial, top of each round.
  void begin_round(std::uint64_t round);

  /// Registers (or looks up) a named probe; thread-safe — nodes call this
  /// from on_start, which runs shard-parallel. Returns kNoProbe when
  /// probes are off. A name keeps the kind of its first registration.
  std::uint32_t register_probe(const char* name, bool counter);

  /// Charges `delta` to a probe from shard `shard`'s thread. Wait-free per
  /// shard: the outer table is sized at construction and each inner vector
  /// is only touched by its owning shard.
  void probe_add(unsigned shard, std::uint32_t probe,
                 std::uint64_t delta) {
    if (probe == kNoProbe) return;
    auto& v = shard_probe_deltas_[shard];
    if (probe >= v.size()) v.resize(probe + 1, 0);
    v[probe] += delta;
  }

  /// Serial per-round drain, called once per shard in ascending shard
  /// order: folds the shard's per-round counters into the current window.
  void note_shard_round(unsigned shard, std::uint64_t wakeups,
                        std::uint64_t staged, std::uint64_t fec_parks);

  /// Appends a phase span (serial section only; bounded by max_spans).
  void add_span(const char* name, std::uint32_t tid, std::uint64_t round,
                double ts_us, double dur_us);

  /// Serial, end of each round, after note_shard_round for every shard:
  /// drains probe deltas and — on sampled rounds — appends a metric row
  /// computed as the delta of `stats` against the previous sample.
  /// `ts_us` is the sample's wall-clock offset (< 0 when tracing is off).
  void end_round(std::uint64_t round, std::uint64_t active_links,
                 const RunStats& stats, double ts_us);

  /// Copies the run echo and the (name-sorted) probe series into the sink.
  void flush(const RunStats& stats, std::uint64_t n, std::uint64_t threads,
             std::uint64_t seed);

 private:
  TelemetryPlan plan_;
  Telemetry* sink_;
  unsigned shards_;
  std::uint64_t epoch_ns_ = 0;

  bool sampled_ = false;
  std::uint64_t rounds_in_window_ = 0;
  std::uint64_t last_round_ = 0;
  std::uint64_t last_active_links_ = 0;

  // Window accumulators (reset at each emitted sample).
  std::uint64_t win_wakeups_ = 0;
  std::uint64_t win_fec_parks_ = 0;
  std::vector<std::uint64_t> win_shard_staged_;  // per shard

  // Snapshot of the merged RunStats at the previous sample (for deltas).
  std::uint64_t last_messages_ = 0;
  std::uint64_t last_bits_ = 0;
  std::uint64_t last_lost_ = 0;
  std::uint64_t last_delayed_ = 0;
  std::uint64_t last_retransmitted_ = 0;
  std::array<std::uint64_t, kMaxMsgKinds> last_bits_by_kind_{};

  // Probe registry. Registration is mutex-guarded (parallel on_start);
  // per-shard delta tables are shard-owned; totals/windows/series are only
  // touched in the serial section.
  struct ProbeState {
    std::string name;
    bool counter = true;
    std::uint64_t total = 0;
    std::uint64_t window = 0;
    std::vector<std::uint64_t> samples;
  };
  std::mutex probe_mu_;
  std::unordered_map<std::string, std::uint32_t> probe_index_;
  std::vector<ProbeState> probe_states_;
  std::vector<std::vector<std::uint64_t>> shard_probe_deltas_;
};

/// Renders a Telemetry capture as JSON lines (the --metrics format): one
/// meta line (schema tag, run echo, RunStats via RunStats::to_json, probe
/// catalogue) followed by one object per sampled round. `label` annotates
/// the meta line when non-empty (the sweep runner stamps
/// "algorithm#trial seed=S"). Byte-deterministic for fixed-seed runs at
/// any thread count — docs/observability.md documents the schema, and
/// tests/data/metrics_schema_golden.jsonl pins it.
std::string telemetry_metrics_jsonl(const Telemetry& t,
                                    const std::string& label = "");

/// Appends the capture's Chrome trace_event objects (process/thread name
/// metadata, phase spans, counter tracks when sample timestamps exist) to
/// an open JSON array. `pid` namespaces the events so a sweep can combine
/// several runs in one trace.
void telemetry_trace_events(JsonWriter& w, const Telemetry& t,
                            std::uint64_t pid,
                            const std::string& process_name);

/// Complete single-run trace document: {"traceEvents":[...]} — loadable in
/// Perfetto / chrome://tracing.
std::string telemetry_trace_json(const Telemetry& t,
                                 const std::string& process_name = "nearclique");

}  // namespace nc
