#pragma once

#include <cstdint>
#include <cstring>

#include "runtime/link.hpp"
#include "runtime/message.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/ids.hpp"

namespace nc {

/// Structure-of-arrays block of staged messages — the storage behind the
/// sharded engine's (src-shard → dst-shard) lanes and the fault engine's
/// delayed buckets.
///
/// Each staged message is a row across parallel flat columns (destination,
/// back index, stream key, meta flags, wire bits, symbol count, two inline
/// words) — a deliver phase is a linear scan over contiguous arrays, no
/// pointer chasing, no per-message heap symbol vector. The payload encoding
/// is two-tier:
///   - *inline*: messages of at most two symbols — the dominant CONGEST
///     kinds carry 1–2 machine words — store their symbol values directly
///     in the v0/v1 columns and their widths packed into the w01 column;
///   - *spilled*: anything larger blits its packed payload into the block's
///     shared payload region (word-aligned per message, so copies between
///     blocks are memcpys) and stores (word offset, width offset) in v0/v1.
/// Either way the payload is copied exactly once at stage time, straight
/// from the producer's shared SymbolBuffer via a MsgView.
///
/// Broadcast rows: a stream opened on many links (open_stream_all) drains
/// identically on every sibling link, so the stage phase stores the shared
/// payload *once per lane* and fans it out over a packed receiver list. A
/// broadcast row (kBcastBit set) reuses the to/back columns as the
/// [receiver-range start, receiver count] of a run in the rcv_to/rcv_back/
/// rcv_round columns; each receiver keeps its own delivery round because
/// the fault engine decides loss and delay per (src, dst) edge — one shared
/// payload, independent per-copy verdicts. Rows start life as ordinary
/// unicast rows and are upgraded in place when a second receiver of the
/// same scheduled view lands in the same lane (add_receiver), so a
/// broadcast with one receiver per destination shard costs exactly what a
/// unicast does. The deliver phase expands the receiver run in staged
/// order, which reproduces the per-edge path's delivery sequence — and its
/// RunStats — bit for bit: every copy charges the full wire_bits.
///
/// Backing storage is an ArenaVec per column: lanes bind the owning shard's
/// per-round Arena (begin_round() re-carves them after the arena's O(1)
/// reset); delayed buckets stay heap-backed, because they outlive rounds and
/// a bump arena can never rewind one bucket out of the middle of a round's
/// allocations. RunStats bit accounting is untouched: wire_bits carries
/// header + payload exactly as the Delivery path charged it.
class MsgBlock {
 public:
  /// Decoded row handed to the deliver phase.
  struct Rec {
    NodeId to;
    std::uint32_t back_index;
    StreamKey key;
    bool eos;
    bool spilled;
    bool bcast;
    std::uint32_t symbol_count;
    std::uint64_t wire_bits;
    std::uint64_t deliver_round;
    // Broadcast rows: the receiver run [rcv_begin, rcv_begin + rcv_count)
    // in the receiver columns (read via receiver()); to/back_index/
    // deliver_round are meaningless on such rows.
    std::uint32_t rcv_begin;
    std::uint32_t rcv_count;
    // Inline payload (spilled == false): up to two value/width pairs.
    std::uint64_t v0, v1;
    unsigned w0, w1;
    // Spilled payload (spilled == true): word-aligned packed symbol run.
    const std::uint64_t* pay_words;
    std::size_t pay_word_count;
    std::size_t pay_bits;
    const std::uint8_t* pay_widths;
  };

  /// One expanded copy of a broadcast row.
  struct Receiver {
    NodeId to;
    std::uint32_t back_index;
    std::uint64_t deliver_round;
  };

  /// Binds every column to `arena` (nullptr = heap mode). Call once, while
  /// empty.
  void bind(Arena* arena) noexcept {
    nc_invariant(empty() && msg_count_ == 0,
                 "MsgBlock::bind must run on an empty block");
    to_.bind(arena);
    back_.bind(arena);
    tag_.bind(arena);
    meta_.bind(arena);
    wire_.bind(arena);
    count_.bind(arena);
    round_.bind(arena);
    v0_.bind(arena);
    v1_.bind(arena);
    w01_.bind(arena);
    pay_words_.bind(arena);
    pay_widths_.bind(arena);
    rcv_to_.bind(arena);
    rcv_back_.bind(arena);
    rcv_round_.bind(arena);
    arena_mode_ = arena != nullptr;
  }

  /// Arena mode only: called after the owning arena's reset() invalidated
  /// last round's spans. Drops them and re-carves capacity for the sizes the
  /// previous round needed, so a steady-state round allocates each column
  /// exactly once and never grows mid-round.
  void begin_round() {
    const std::size_t recs = to_.size();
    const std::size_t words = pay_words_.size();
    const std::size_t wids = pay_widths_.size();
    const std::size_t rcvs = rcv_to_.size();
    release_columns();
    msg_count_ = 0;
    if (arena_mode_ && recs > 0) {
      to_.reserve(recs);
      back_.reserve(recs);
      tag_.reserve(recs);
      meta_.reserve(recs);
      wire_.reserve(recs);
      count_.reserve(recs);
      round_.reserve(recs);
      v0_.reserve(recs);
      v1_.reserve(recs);
      w01_.reserve(recs);
      if (words > 0) pay_words_.reserve(words);
      if (wids > 0) pay_widths_.reserve(wids);
      if (rcvs > 0) {
        rcv_to_.reserve(rcvs);
        rcv_back_.reserve(rcvs);
        rcv_round_.reserve(rcvs);
      }
    }
  }

  /// Stages one scheduled message. The view's payload is copied into the
  /// block now (inline words or a word-aligned blit into the payload
  /// region); the caller may prune the source link afterwards.
  void push(const MsgView& v, NodeId to, std::uint32_t back_index,
            std::uint64_t deliver_round) {
    const bool spill = v.symbol_count > kInlineSymbols;
    ++msg_count_;
    to_.push_back(to);
    back_.push_back(back_index);
    tag_.push_back(v.key.tag);
    meta_.push_back(pack_meta(v.key, v.eos, spill));
    wire_.push_back(v.wire_bits);
    count_.push_back(static_cast<std::uint32_t>(v.symbol_count));
    round_.push_back(deliver_round);
    if (!spill) {
      std::uint64_t v0 = 0, v1 = 0;
      unsigned w0 = 0, w1 = 0;
      if (v.symbol_count >= 1) {
        w0 = v.buf->width_at(v.first_symbol);
        v0 = v.buf->value_at(v.bit_off, w0);
      }
      if (v.symbol_count == 2) {
        w1 = v.buf->width_at(v.first_symbol + 1);
        v1 = v.buf->value_at(v.bit_off + w0, w1);
      }
      v0_.push_back(v0);
      v1_.push_back(v1);
      w01_.push_back(static_cast<std::uint16_t>(w0 | (w1 << 8)));
    } else {
      const std::size_t word_off = pay_words_.size();
      const std::size_t width_off = pay_widths_.size();
      const std::size_t nwords = (v.bit_len + 63) >> 6;
      std::uint64_t* dst = pay_words_.append(nwords);
      std::size_t rem = v.bit_len;
      for (std::size_t w = 0; rem > 0; ++w) {
        const unsigned take = rem >= 64 ? 64u : static_cast<unsigned>(rem);
        dst[w] = read_packed_bits(v.buf->words(), v.buf->word_count(),
                                  v.bit_off + (w << 6), take);
        rem -= take;
      }
      std::memcpy(pay_widths_.append(v.symbol_count),
                  v.buf->widths() + v.first_symbol, v.symbol_count);
      v0_.push_back(word_off);
      v1_.push_back(width_off);
      w01_.push_back(0);
    }
  }

  /// Fans the block's *last* row out to one more receiver. The caller (the
  /// stage phase's broadcast grouping) guarantees the last row was staged
  /// from the same scheduled view this receiver matched — nothing else may
  /// have been pushed in between. A first extra receiver upgrades the row
  /// in place: its own (to, back, round) moves into the receiver columns,
  /// the to/back columns become the receiver range, and kBcastBit marks the
  /// new shape. The shared payload is not touched — that is the point.
  void add_receiver(NodeId to, std::uint32_t back_index,
                    std::uint64_t deliver_round) {
    nc_invariant(!to_.empty(),
                 "add_receiver needs a staged head row to fan out from");
    const std::size_t i = to_.size() - 1;
    ++msg_count_;
    if ((meta_[i] & kBcastBit) == 0) {
      meta_[i] = static_cast<std::uint16_t>(meta_[i] | kBcastBit);
      const std::size_t begin = rcv_to_.size();
      rcv_to_.push_back(to_[i]);
      rcv_back_.push_back(back_[i]);
      rcv_round_.push_back(round_[i]);
      to_[i] = static_cast<NodeId>(begin);
      back_[i] = 1;
    }
    rcv_to_.push_back(to);
    rcv_back_.push_back(back_index);
    rcv_round_.push_back(deliver_round);
    ++back_[i];
  }

  /// Receiver `idx` (absolute index into the receiver columns; take a
  /// broadcast Rec's rcv_begin + j).
  [[nodiscard]] Receiver receiver(std::size_t idx) const {
    nc_invariant(idx < rcv_to_.size(),
                 "broadcast receiver index past the packed receiver columns");
    return Receiver{rcv_to_[idx], rcv_back_[idx], rcv_round_[idx]};
  }

  /// Copies row `i` of `src` into this block (delayed-bucket hand-off; this
  /// block is heap-backed, the source lane is arena-backed and about to be
  /// reset). Spilled payloads are word-aligned, so the copy is a memcpy.
  /// Unicast rows only — a delayed broadcast copy is materialized per
  /// receiver via append_receiver_from, because each copy falls due on its
  /// own round.
  void append_from(const MsgBlock& src, std::size_t i, unsigned header_bits) {
    append_from(src, i, header_bits, src.round_[i]);
  }

  /// append_from with the deliver round rewritten: the reliability layer's
  /// release path (FEC window resolution, ARQ recovery floors) re-stages a
  /// parked/recovered row for the round the service computed, not the round
  /// the fault engine originally stamped.
  void append_from(const MsgBlock& src, std::size_t i, unsigned header_bits,
                   std::uint64_t deliver_round) {
    ++msg_count_;
    to_.push_back(src.to_[i]);
    back_.push_back(src.back_[i]);
    tag_.push_back(src.tag_[i]);
    meta_.push_back(src.meta_[i]);
    wire_.push_back(src.wire_[i]);
    count_.push_back(src.count_[i]);
    round_.push_back(deliver_round);
    copy_payload_from(src, i, header_bits);
  }

  /// Copies one receiver's copy of broadcast row `i` of `src` into this
  /// block as a plain unicast row (delayed-bucket hand-off: a delayed
  /// broadcast copy leaves the shared row and becomes an independent
  /// message parked until `r.deliver_round`).
  void append_receiver_from(const MsgBlock& src, std::size_t i,
                            const Receiver& r, unsigned header_bits) {
    ++msg_count_;
    to_.push_back(r.to);
    back_.push_back(r.back_index);
    tag_.push_back(src.tag_[i]);
    meta_.push_back(static_cast<std::uint16_t>(src.meta_[i] & ~kBcastBit));
    wire_.push_back(src.wire_[i]);
    count_.push_back(src.count_[i]);
    round_.push_back(r.deliver_round);
    copy_payload_from(src, i, header_bits);
  }

  /// Decodes row `i`. `header_bits` recovers the payload bit length from
  /// wire_bits (wire = header + payload by construction).
  [[nodiscard]] Rec record(std::size_t i, unsigned header_bits) const {
    nc_invariant(i < to_.size(), "MsgBlock row index out of range");
    Rec r;
    r.to = to_[i];
    r.back_index = back_[i];
    const std::uint16_t meta = meta_[i];
    r.key = StreamKey{static_cast<std::uint16_t>(meta & 31u), tag_[i],
                      static_cast<std::uint16_t>((meta >> 5) & 15u)};
    r.eos = (meta & kEosBit) != 0;
    r.spilled = (meta & kSpillBit) != 0;
    r.bcast = (meta & kBcastBit) != 0;
    if (r.bcast) {
      r.rcv_begin = static_cast<std::uint32_t>(to_[i]);
      r.rcv_count = back_[i];
    } else {
      r.rcv_begin = 0;
      r.rcv_count = 0;
    }
    r.symbol_count = count_[i];
    r.wire_bits = wire_[i];
    r.deliver_round = round_[i];
    if (!r.spilled) {
      r.v0 = v0_[i];
      r.v1 = v1_[i];
      r.w0 = w01_[i] & 0xffu;
      r.w1 = w01_[i] >> 8;
      r.pay_words = nullptr;
      r.pay_word_count = 0;
      r.pay_bits = 0;
      r.pay_widths = nullptr;
    } else {
      r.v0 = r.v1 = 0;
      r.w0 = r.w1 = 0;
      r.pay_bits = static_cast<std::size_t>(wire_[i]) - header_bits;
      r.pay_word_count = (r.pay_bits + 63) >> 6;
      r.pay_words = pay_words_.data() + v0_[i];
      r.pay_widths = pay_widths_.data() + v1_[i];
    }
    return r;
  }

  /// Rows (a broadcast row is one row however many receivers it fans to).
  [[nodiscard]] std::size_t size() const noexcept { return to_.size(); }
  [[nodiscard]] bool empty() const noexcept { return to_.empty(); }

  /// Physical messages staged — unicast rows plus every broadcast
  /// receiver. What lane_msgs_peak and the per-edge accounting count.
  [[nodiscard]] std::size_t message_count() const noexcept {
    return msg_count_;
  }

 private:
  static constexpr std::size_t kInlineSymbols = 2;
  static constexpr std::uint16_t kEosBit = 1u << 9;
  static constexpr std::uint16_t kSpillBit = 1u << 10;
  static constexpr std::uint16_t kBcastBit = 1u << 11;

  // meta layout: kind (5 bits) | version (4 bits) | eos (1) | spilled (1) |
  // broadcast (1).
  // The widths mirror the wire header's fields (see stream_header_bits), so
  // kMaxMsgKinds/kMaxStreamVersions bound them by construction.
  static std::uint16_t pack_meta(const StreamKey& key, bool eos,
                                 bool spill) noexcept {
    return static_cast<std::uint16_t>(key.kind | (key.version << 5) |
                                      (eos ? kEosBit : 0) |
                                      (spill ? kSpillBit : 0));
  }

  /// Shared payload-copy tail of append_from / append_receiver_from.
  void copy_payload_from(const MsgBlock& src, std::size_t i,
                         unsigned header_bits) {
    if ((src.meta_[i] & kSpillBit) == 0) {
      v0_.push_back(src.v0_[i]);
      v1_.push_back(src.v1_[i]);
      w01_.push_back(src.w01_[i]);
    } else {
      const std::size_t pay_bits = src.wire_[i] - header_bits;
      const std::size_t nwords = (pay_bits + 63) >> 6;
      const std::size_t word_off = pay_words_.size();
      const std::size_t width_off = pay_widths_.size();
      std::memcpy(pay_words_.append(nwords),
                  src.pay_words_.data() + src.v0_[i],
                  nwords * sizeof(std::uint64_t));
      std::memcpy(pay_widths_.append(src.count_[i]),
                  src.pay_widths_.data() + src.v1_[i], src.count_[i]);
      v0_.push_back(word_off);
      v1_.push_back(width_off);
      w01_.push_back(0);
    }
  }

  void release_columns() noexcept {
    to_.release();
    back_.release();
    tag_.release();
    meta_.release();
    wire_.release();
    count_.release();
    round_.release();
    v0_.release();
    v1_.release();
    w01_.release();
    pay_words_.release();
    pay_widths_.release();
    rcv_to_.release();
    rcv_back_.release();
    rcv_round_.release();
  }

  ArenaVec<NodeId> to_;
  ArenaVec<std::uint32_t> back_;
  ArenaVec<NodeId> tag_;
  ArenaVec<std::uint16_t> meta_;
  ArenaVec<std::uint64_t> wire_;
  ArenaVec<std::uint32_t> count_;
  ArenaVec<std::uint64_t> round_;  ///< fault-engine deliver round (0 = now)
  ArenaVec<std::uint64_t> v0_;     ///< inline value 0 / payload word offset
  ArenaVec<std::uint64_t> v1_;     ///< inline value 1 / payload width offset
  ArenaVec<std::uint16_t> w01_;    ///< inline widths, low byte w0, high w1
  ArenaVec<std::uint64_t> pay_words_;  ///< spilled payloads, word-aligned
  ArenaVec<std::uint8_t> pay_widths_;  ///< spilled payloads' symbol widths
  // Broadcast receiver runs (one entry per copy; a row's to_/back_ index a
  // contiguous run here). rcv_round_ carries the per-copy fault delay.
  ArenaVec<NodeId> rcv_to_;
  ArenaVec<std::uint32_t> rcv_back_;
  ArenaVec<std::uint64_t> rcv_round_;
  std::size_t msg_count_ = 0;  ///< physical messages (rows + extra receivers)
  bool arena_mode_ = false;
};

}  // namespace nc
