#pragma once

#include <cstdint>
#include <cstring>

#include "runtime/link.hpp"
#include "runtime/message.hpp"
#include "util/arena.hpp"
#include "util/ids.hpp"

namespace nc {

/// Structure-of-arrays block of staged messages — the storage behind the
/// sharded engine's (src-shard → dst-shard) lanes and the fault engine's
/// delayed buckets.
///
/// Each staged message is a row across parallel flat columns (destination,
/// back index, stream key, meta flags, wire bits, symbol count, two inline
/// words) — a deliver phase is a linear scan over contiguous arrays, no
/// pointer chasing, no per-message heap symbol vector. The payload encoding
/// is two-tier:
///   - *inline*: messages of at most two symbols — the dominant CONGEST
///     kinds carry 1–2 machine words — store their symbol values directly
///     in the v0/v1 columns and their widths packed into the w01 column;
///   - *spilled*: anything larger blits its packed payload into the block's
///     shared payload region (word-aligned per message, so copies between
///     blocks are memcpys) and stores (word offset, width offset) in v0/v1.
/// Either way the payload is copied exactly once at stage time, straight
/// from the producer's shared SymbolBuffer via a MsgView.
///
/// Backing storage is an ArenaVec per column: lanes bind the owning shard's
/// per-round Arena (begin_round() re-carves them after the arena's O(1)
/// reset); delayed buckets stay heap-backed, because they outlive rounds and
/// a bump arena can never rewind one bucket out of the middle of a round's
/// allocations. RunStats bit accounting is untouched: wire_bits carries
/// header + payload exactly as the Delivery path charged it.
class MsgBlock {
 public:
  /// Decoded row handed to the deliver phase.
  struct Rec {
    NodeId to;
    std::uint32_t back_index;
    StreamKey key;
    bool eos;
    bool spilled;
    std::uint32_t symbol_count;
    std::uint64_t wire_bits;
    std::uint64_t deliver_round;
    // Inline payload (spilled == false): up to two value/width pairs.
    std::uint64_t v0, v1;
    unsigned w0, w1;
    // Spilled payload (spilled == true): word-aligned packed symbol run.
    const std::uint64_t* pay_words;
    std::size_t pay_word_count;
    std::size_t pay_bits;
    const std::uint8_t* pay_widths;
  };

  /// Binds every column to `arena` (nullptr = heap mode). Call once, while
  /// empty.
  void bind(Arena* arena) noexcept {
    to_.bind(arena);
    back_.bind(arena);
    tag_.bind(arena);
    meta_.bind(arena);
    wire_.bind(arena);
    count_.bind(arena);
    round_.bind(arena);
    v0_.bind(arena);
    v1_.bind(arena);
    w01_.bind(arena);
    pay_words_.bind(arena);
    pay_widths_.bind(arena);
    arena_mode_ = arena != nullptr;
  }

  /// Arena mode only: called after the owning arena's reset() invalidated
  /// last round's spans. Drops them and re-carves capacity for the sizes the
  /// previous round needed, so a steady-state round allocates each column
  /// exactly once and never grows mid-round.
  void begin_round() {
    const std::size_t recs = to_.size();
    const std::size_t words = pay_words_.size();
    const std::size_t wids = pay_widths_.size();
    release_columns();
    if (arena_mode_ && recs > 0) {
      to_.reserve(recs);
      back_.reserve(recs);
      tag_.reserve(recs);
      meta_.reserve(recs);
      wire_.reserve(recs);
      count_.reserve(recs);
      round_.reserve(recs);
      v0_.reserve(recs);
      v1_.reserve(recs);
      w01_.reserve(recs);
      if (words > 0) pay_words_.reserve(words);
      if (wids > 0) pay_widths_.reserve(wids);
    }
  }

  /// Stages one scheduled message. The view's payload is copied into the
  /// block now (inline words or a word-aligned blit into the payload
  /// region); the caller may prune the source link afterwards.
  void push(const MsgView& v, NodeId to, std::uint32_t back_index,
            std::uint64_t deliver_round) {
    const bool spill = v.symbol_count > kInlineSymbols;
    to_.push_back(to);
    back_.push_back(back_index);
    tag_.push_back(v.key.tag);
    meta_.push_back(pack_meta(v.key, v.eos, spill));
    wire_.push_back(v.wire_bits);
    count_.push_back(static_cast<std::uint32_t>(v.symbol_count));
    round_.push_back(deliver_round);
    if (!spill) {
      std::uint64_t v0 = 0, v1 = 0;
      unsigned w0 = 0, w1 = 0;
      if (v.symbol_count >= 1) {
        w0 = v.buf->width_at(v.first_symbol);
        v0 = v.buf->value_at(v.bit_off, w0);
      }
      if (v.symbol_count == 2) {
        w1 = v.buf->width_at(v.first_symbol + 1);
        v1 = v.buf->value_at(v.bit_off + w0, w1);
      }
      v0_.push_back(v0);
      v1_.push_back(v1);
      w01_.push_back(static_cast<std::uint16_t>(w0 | (w1 << 8)));
    } else {
      const std::size_t word_off = pay_words_.size();
      const std::size_t width_off = pay_widths_.size();
      const std::size_t nwords = (v.bit_len + 63) >> 6;
      std::uint64_t* dst = pay_words_.append(nwords);
      std::size_t rem = v.bit_len;
      for (std::size_t w = 0; rem > 0; ++w) {
        const unsigned take = rem >= 64 ? 64u : static_cast<unsigned>(rem);
        dst[w] = read_packed_bits(v.buf->words(), v.buf->word_count(),
                                  v.bit_off + (w << 6), take);
        rem -= take;
      }
      std::memcpy(pay_widths_.append(v.symbol_count),
                  v.buf->widths() + v.first_symbol, v.symbol_count);
      v0_.push_back(word_off);
      v1_.push_back(width_off);
      w01_.push_back(0);
    }
  }

  /// Copies row `i` of `src` into this block (delayed-bucket hand-off; this
  /// block is heap-backed, the source lane is arena-backed and about to be
  /// reset). Spilled payloads are word-aligned, so the copy is a memcpy.
  void append_from(const MsgBlock& src, std::size_t i, unsigned header_bits) {
    to_.push_back(src.to_[i]);
    back_.push_back(src.back_[i]);
    tag_.push_back(src.tag_[i]);
    meta_.push_back(src.meta_[i]);
    wire_.push_back(src.wire_[i]);
    count_.push_back(src.count_[i]);
    round_.push_back(src.round_[i]);
    if ((src.meta_[i] & kSpillBit) == 0) {
      v0_.push_back(src.v0_[i]);
      v1_.push_back(src.v1_[i]);
      w01_.push_back(src.w01_[i]);
    } else {
      const std::size_t pay_bits = src.wire_[i] - header_bits;
      const std::size_t nwords = (pay_bits + 63) >> 6;
      const std::size_t word_off = pay_words_.size();
      const std::size_t width_off = pay_widths_.size();
      std::memcpy(pay_words_.append(nwords),
                  src.pay_words_.data() + src.v0_[i], nwords * sizeof(std::uint64_t));
      std::memcpy(pay_widths_.append(src.count_[i]),
                  src.pay_widths_.data() + src.v1_[i], src.count_[i]);
      v0_.push_back(word_off);
      v1_.push_back(width_off);
      w01_.push_back(0);
    }
  }

  /// Decodes row `i`. `header_bits` recovers the payload bit length from
  /// wire_bits (wire = header + payload by construction).
  [[nodiscard]] Rec record(std::size_t i, unsigned header_bits) const {
    Rec r;
    r.to = to_[i];
    r.back_index = back_[i];
    const std::uint16_t meta = meta_[i];
    r.key = StreamKey{static_cast<std::uint16_t>(meta & 31u), tag_[i],
                      static_cast<std::uint16_t>((meta >> 5) & 15u)};
    r.eos = (meta & kEosBit) != 0;
    r.spilled = (meta & kSpillBit) != 0;
    r.symbol_count = count_[i];
    r.wire_bits = wire_[i];
    r.deliver_round = round_[i];
    if (!r.spilled) {
      r.v0 = v0_[i];
      r.v1 = v1_[i];
      r.w0 = w01_[i] & 0xffu;
      r.w1 = w01_[i] >> 8;
      r.pay_words = nullptr;
      r.pay_word_count = 0;
      r.pay_bits = 0;
      r.pay_widths = nullptr;
    } else {
      r.v0 = r.v1 = 0;
      r.w0 = r.w1 = 0;
      r.pay_bits = static_cast<std::size_t>(wire_[i]) - header_bits;
      r.pay_word_count = (r.pay_bits + 63) >> 6;
      r.pay_words = pay_words_.data() + v0_[i];
      r.pay_widths = pay_widths_.data() + v1_[i];
    }
    return r;
  }

  [[nodiscard]] std::size_t size() const noexcept { return to_.size(); }
  [[nodiscard]] bool empty() const noexcept { return to_.empty(); }

 private:
  static constexpr std::size_t kInlineSymbols = 2;
  static constexpr std::uint16_t kEosBit = 1u << 9;
  static constexpr std::uint16_t kSpillBit = 1u << 10;

  // meta layout: kind (5 bits) | version (4 bits) | eos (1) | spilled (1).
  // The widths mirror the wire header's fields (see stream_header_bits), so
  // kMaxMsgKinds/kMaxStreamVersions bound them by construction.
  static std::uint16_t pack_meta(const StreamKey& key, bool eos,
                                 bool spill) noexcept {
    return static_cast<std::uint16_t>(key.kind | (key.version << 5) |
                                      (eos ? kEosBit : 0) |
                                      (spill ? kSpillBit : 0));
  }

  void release_columns() noexcept {
    to_.release();
    back_.release();
    tag_.release();
    meta_.release();
    wire_.release();
    count_.release();
    round_.release();
    v0_.release();
    v1_.release();
    w01_.release();
    pay_words_.release();
    pay_widths_.release();
  }

  ArenaVec<NodeId> to_;
  ArenaVec<std::uint32_t> back_;
  ArenaVec<NodeId> tag_;
  ArenaVec<std::uint16_t> meta_;
  ArenaVec<std::uint64_t> wire_;
  ArenaVec<std::uint32_t> count_;
  ArenaVec<std::uint64_t> round_;  ///< fault-engine deliver round (0 = now)
  ArenaVec<std::uint64_t> v0_;     ///< inline value 0 / payload word offset
  ArenaVec<std::uint64_t> v1_;     ///< inline value 1 / payload width offset
  ArenaVec<std::uint16_t> w01_;    ///< inline widths, low byte w0, high w1
  ArenaVec<std::uint64_t> pay_words_;  ///< spilled payloads, word-aligned
  ArenaVec<std::uint8_t> pay_widths_;  ///< spilled payloads' symbol widths
  bool arena_mode_ = false;
};

}  // namespace nc
