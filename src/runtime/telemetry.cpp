#include "runtime/telemetry.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace nc {

// ---------------------------------------------------------------------------
// TelemetryPlan

void TelemetryPlan::validate() const {
  if (stride == 0) {
    throw std::invalid_argument("telemetry plan: 'tel_stride' must be >= 1");
  }
  if (max_samples == 0) {
    throw std::invalid_argument(
        "telemetry plan: 'tel_max_samples' must be >= 1");
  }
  if (max_spans == 0) {
    throw std::invalid_argument("telemetry plan: 'tel_max_spans' must be >= 1");
  }
}

std::string TelemetryPlan::summary() const {
  if (!requested()) return "off";
  std::ostringstream os;
  const char* sep = "";
  if (metrics) {
    os << "metrics";
    sep = "+";
  }
  if (trace) {
    os << sep << "trace";
    sep = "+";
  }
  if (probes) {
    os << sep << "probes";
  }
  os << " stride=" << stride << " cap=" << max_samples << "/" << max_spans;
  if (sink == nullptr) os << " (no sink)";
  return os.str();
}

const ParamSet& telemetry_param_defaults() {
  static const ParamSet defaults = [] {
    TelemetryPlan d;
    return ParamSet()
        .with("tel_metrics", d.metrics ? 1 : 0)
        .with("tel_trace", d.trace ? 1 : 0)
        .with("tel_probes", d.probes ? 1 : 0)
        .with("tel_stride", d.stride)
        .with("tel_max_samples", d.max_samples)
        .with("tel_max_spans", d.max_spans);
  }();
  return defaults;
}

TelemetryPlan telemetry_plan_from_params(const ParamSet& params) {
  TelemetryPlan plan;
  const auto u64 = [&](const char* key, std::uint64_t def) {
    const double v = params.get_double_or(key, static_cast<double>(def));
    if (v < 0.0) {
      throw std::invalid_argument(std::string("telemetry plan: '") + key +
                                  "' must be >= 0");
    }
    return static_cast<std::uint64_t>(v);
  };
  plan.metrics = params.get_double_or("tel_metrics", 0.0) != 0.0;
  plan.trace = params.get_double_or("tel_trace", 0.0) != 0.0;
  plan.probes = params.get_double_or("tel_probes", 0.0) != 0.0;
  plan.stride = u64("tel_stride", plan.stride);
  plan.max_samples = u64("tel_max_samples", plan.max_samples);
  plan.max_spans = u64("tel_max_spans", plan.max_spans);
  plan.validate();
  return plan;
}

TelemetryPlan parse_telemetry_plan(const std::string& csv) {
  const ParamSet overrides = parse_params_csv(csv, &telemetry_param_defaults());
  const ParamSet merged =
      merge_params(telemetry_param_defaults(), overrides, "telemetry plan");
  return telemetry_plan_from_params(merged);
}

// ---------------------------------------------------------------------------
// StallReport

std::string StallReport::summary() const {
  if (!triggered()) return {};
  std::ostringstream os;
  os << "post-mortem: "
     << (stalled ? "protocol stalled" : "hit the round limit") << " at round "
     << rounds << "\n";
  os << "  last message delivered: ";
  if (last_delivery_round == 0) {
    os << "never\n";
  } else {
    os << "round " << last_delivery_round << " (" << rounds - last_delivery_round
       << " rounds before the stop)\n";
  }
  os << "  nodes: " << nodes_total << " total, " << nodes_done << " done, "
     << nodes_crashed << " crashed\n";
  os << "  alarms armed: " << armed_alarms;
  if (next_alarm_round != kNone) os << " (next due round " << next_alarm_round << ")";
  os << "\n";
  os << "  delayed messages in flight: " << delayed_in_flight;
  if (next_delayed_round != kNone) {
    os << " (next arrival round " << next_delayed_round << ")";
  }
  os << "\n";
  os << "  fec parked: " << fec_parked << " messages on " << fec_pending_edges
     << " edges\n";
  os << "  active links: " << active_links;
  return os.str();
}

void StallReport::to_json(JsonWriter& w) const {
  const auto opt_round = [&](const char* key, std::uint64_t v) {
    w.key(key);
    if (v == kNone) {
      w.null();
    } else {
      w.value(v);
    }
  };
  w.begin_object();
  w.key("stalled").value(stalled);
  w.key("hit_round_limit").value(hit_round_limit);
  w.key("rounds").value(rounds);
  w.key("last_delivery_round").value(last_delivery_round);
  w.key("nodes_total").value(nodes_total);
  w.key("nodes_done").value(nodes_done);
  w.key("nodes_crashed").value(nodes_crashed);
  w.key("armed_alarms").value(armed_alarms);
  opt_round("next_alarm_round", next_alarm_round);
  w.key("delayed_in_flight").value(delayed_in_flight);
  opt_round("next_delayed_round", next_delayed_round);
  w.key("fec_parked").value(fec_parked);
  w.key("fec_pending_edges").value(fec_pending_edges);
  w.key("active_links").value(active_links);
  w.end_object();
}

// ---------------------------------------------------------------------------
// TelemetryEngine

TelemetryEngine::TelemetryEngine(const TelemetryPlan& plan, unsigned shards)
    : plan_(plan),
      sink_(plan.sink),
      shards_(shards),
      win_shard_staged_(shards, 0),
      shard_probe_deltas_(shards) {
  plan_.validate();
}

void TelemetryEngine::begin_round(std::uint64_t round) {
  (void)round;
  ++rounds_in_window_;
  sampled_ =
      (metrics_on() || probes_on()) && rounds_in_window_ >= plan_.stride;
}

std::uint32_t TelemetryEngine::register_probe(const char* name, bool counter) {
  if (!probes_on()) return kNoProbe;
  const std::lock_guard<std::mutex> lock(probe_mu_);
  const auto it = probe_index_.find(name);
  if (it != probe_index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(probe_states_.size());
  probe_index_.emplace(name, idx);
  ProbeState st;
  st.name = name;
  st.counter = counter;
  probe_states_.push_back(std::move(st));
  return idx;
}

void TelemetryEngine::note_shard_round(unsigned shard, std::uint64_t wakeups,
                                       std::uint64_t staged,
                                       std::uint64_t fec_parks) {
  win_wakeups_ += wakeups;
  win_fec_parks_ += fec_parks;
  win_shard_staged_[shard] += staged;
}

void TelemetryEngine::add_span(const char* name, std::uint32_t tid,
                               std::uint64_t round, double ts_us,
                               double dur_us) {
  if (sink_->spans.size() >= plan_.max_spans) {
    sink_->spans_dropped += 1;
    return;
  }
  sink_->spans.push_back(Telemetry::Span{name, tid, round, ts_us, dur_us});
}

void TelemetryEngine::end_round(std::uint64_t round, std::uint64_t active_links,
                                const RunStats& stats, double ts_us) {
  last_round_ = round;
  last_active_links_ = active_links;
  // Drain per-shard probe deltas every round (ascending shard order; u64
  // sums, so the result is order-independent anyway).
  for (unsigned s = 0; s < shards_; ++s) {
    auto& deltas = shard_probe_deltas_[s];
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      if (deltas[i] == 0) continue;
      probe_states_[i].total += deltas[i];
      probe_states_[i].window += deltas[i];
      deltas[i] = 0;
    }
  }

  if (!sampled_) return;

  auto& m = sink_->metrics;
  if (m.samples() >= plan_.max_samples) {
    m.samples_dropped += 1;
  } else {
    m.round.push_back(round);
    if (metrics_on()) {
      std::uint64_t staged_total = 0;
      std::uint64_t staged_min = ~0ULL;
      std::uint64_t staged_max = 0;
      for (unsigned s = 0; s < shards_; ++s) {
        const std::uint64_t v = win_shard_staged_[s];
        staged_total += v;
        staged_min = std::min(staged_min, v);
        staged_max = std::max(staged_max, v);
      }
      m.active_links.push_back(active_links);
      m.wakeups.push_back(win_wakeups_);
      m.staged.push_back(staged_total);
      m.delivered.push_back(stats.messages - last_messages_);
      m.lost.push_back(stats.messages_lost - last_lost_);
      m.delayed.push_back(stats.messages_delayed - last_delayed_);
      m.retransmitted.push_back(stats.messages_retransmitted -
                                last_retransmitted_);
      m.fec_parks.push_back(win_fec_parks_);
      m.bits.push_back(stats.bits - last_bits_);
      m.shard_staged_min.push_back(shards_ == 0 ? 0 : staged_min);
      m.shard_staged_max.push_back(staged_max);
      m.shard_staged_mean.push_back(static_cast<double>(staged_total) /
                                    static_cast<double>(shards_));
      for (std::size_t k = 0; k < kMaxMsgKinds; ++k) {
        m.bits_by_kind.push_back(stats.bits_by_kind[k] - last_bits_by_kind_[k]);
      }
      if (ts_us >= 0.0) m.ts_us.push_back(ts_us);
    }
    if (probes_on()) {
      const std::size_t rows = m.round.size();
      for (auto& p : probe_states_) {
        // Front-pad series registered after sampling started.
        if (p.samples.size() + 1 < rows) p.samples.resize(rows - 1, 0);
        p.samples.push_back(p.counter ? p.total : p.window);
      }
    }
  }

  // Close the window whether or not the row fit the budget: dropped
  // windows vanish from the file but never skew the next row's deltas.
  for (auto& p : probe_states_) p.window = 0;
  std::fill(win_shard_staged_.begin(), win_shard_staged_.end(), 0);
  win_wakeups_ = 0;
  win_fec_parks_ = 0;
  last_messages_ = stats.messages;
  last_bits_ = stats.bits;
  last_lost_ = stats.messages_lost;
  last_delayed_ = stats.messages_delayed;
  last_retransmitted_ = stats.messages_retransmitted;
  last_bits_by_kind_ = stats.bits_by_kind;
  rounds_in_window_ = 0;
  sampled_ = false;
}

void TelemetryEngine::flush(const RunStats& stats, std::uint64_t n,
                            std::uint64_t threads, std::uint64_t seed) {
  // Close a partial tail window first (a stride that doesn't divide the
  // final round leaves the last rounds' deltas pending): without this row
  // the windowed columns would no longer sum to the run totals.
  if (rounds_in_window_ > 0) {
    sampled_ = true;
    end_round(last_round_, last_active_links_, stats, -1.0);
  }

  sink_->stats = stats;
  sink_->n = n;
  sink_->threads = threads;
  sink_->seed = seed;
  sink_->metrics.stride = plan_.stride;

  // Probe series, name-sorted so the output is independent of registration
  // order (and therefore of thread count).
  const std::size_t rows = sink_->metrics.round.size();
  std::vector<std::uint32_t> order(probe_states_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return probe_states_[a].name < probe_states_[b].name;
            });
  sink_->probes.clear();
  sink_->probes.reserve(order.size());
  for (const std::uint32_t idx : order) {
    auto& st = probe_states_[idx];
    if (st.samples.size() < rows) st.samples.resize(rows, 0);
    Telemetry::ProbeSeries series;
    series.name = st.name;
    series.counter = st.counter;
    series.value = st.samples;
    series.total = st.total;
    sink_->probes.push_back(std::move(series));
  }
}

// ---------------------------------------------------------------------------
// Writers

std::string telemetry_metrics_jsonl(const Telemetry& t,
                                    const std::string& label) {
  std::string out;
  {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("nc-metrics-v1");
    if (!label.empty()) w.key("label").value(label);
    w.key("n").value(t.n);
    w.key("threads").value(t.threads);
    w.key("seed").value(t.seed);
    w.key("stride").value(t.metrics.stride);
    w.key("samples").value(static_cast<std::uint64_t>(t.metrics.samples()));
    w.key("samples_dropped").value(t.metrics.samples_dropped);
    w.key("spans").value(static_cast<std::uint64_t>(t.spans.size()));
    w.key("spans_dropped").value(t.spans_dropped);
    w.key("probes").begin_array();
    for (const auto& p : t.probes) {
      w.begin_object();
      w.key("name").value(p.name);
      w.key("kind").value(p.counter ? "counter" : "gauge");
      w.key("total").value(p.total);
      w.end_object();
    }
    w.end_array();
    w.key("stats");
    t.stats.to_json(w);
    w.end_object();
    out += w.str();
    out += '\n';
  }

  const std::size_t rows = t.metrics.samples();
  const bool cols = rows > 0 && t.metrics.active_links.size() == rows;
  for (std::size_t i = 0; i < rows; ++i) {
    JsonWriter w;
    w.begin_object();
    w.key("round").value(t.metrics.round[i]);
    if (cols) {
      w.key("active_links").value(t.metrics.active_links[i]);
      w.key("wakeups").value(t.metrics.wakeups[i]);
      w.key("staged").value(t.metrics.staged[i]);
      w.key("delivered").value(t.metrics.delivered[i]);
      w.key("lost").value(t.metrics.lost[i]);
      w.key("delayed").value(t.metrics.delayed[i]);
      w.key("retransmitted").value(t.metrics.retransmitted[i]);
      w.key("fec_parks").value(t.metrics.fec_parks[i]);
      w.key("bits").value(t.metrics.bits[i]);
      w.key("shard_staged_min").value(t.metrics.shard_staged_min[i]);
      w.key("shard_staged_max").value(t.metrics.shard_staged_max[i]);
      w.key("shard_staged_mean").value(t.metrics.shard_staged_mean[i]);
      w.key("bits_by_kind").begin_object();
      for (std::size_t k = 0; k < kMaxMsgKinds; ++k) {
        const std::uint64_t v = t.metrics.bits_by_kind[i * kMaxMsgKinds + k];
        if (v != 0) w.key(std::to_string(k)).value(v);
      }
      w.end_object();
    }
    if (!t.probes.empty()) {
      w.key("probes").begin_object();
      for (const auto& p : t.probes) {
        if (p.value.size() == rows) w.key(p.name).value(p.value[i]);
      }
      w.end_object();
    }
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

void telemetry_trace_events(JsonWriter& w, const Telemetry& t,
                            std::uint64_t pid,
                            const std::string& process_name) {
  const auto name_event = [&](const char* what, std::uint64_t tid,
                              bool with_tid, const std::string& name) {
    w.begin_object();
    w.key("name").value(what);
    w.key("ph").value("M");
    w.key("pid").value(pid);
    if (with_tid) w.key("tid").value(tid);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
  };
  name_event("process_name", 0, false, process_name);

  std::uint32_t max_tid = 0;
  for (const auto& s : t.spans) max_tid = std::max(max_tid, s.tid);
  name_event("thread_name", 0, true, "engine");
  for (std::uint32_t tid = 1; tid <= max_tid; ++tid) {
    name_event("thread_name", tid, true,
               "shard " + std::to_string(tid - 1));
  }

  for (const auto& s : t.spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("ph").value("X");
    w.key("ts").value(s.ts_us);
    w.key("dur").value(s.dur_us);
    w.key("pid").value(pid);
    w.key("tid").value(static_cast<std::uint64_t>(s.tid));
    w.key("args").begin_object().key("round").value(s.round).end_object();
    w.end_object();
  }

  // Counter tracks for the sampled metrics (and probes), timestamped by the
  // sample points; only available when metrics and trace were both on.
  const auto& m = t.metrics;
  const std::size_t rows = m.samples();
  if (rows > 0 && m.ts_us.size() == rows && m.active_links.size() == rows) {
    for (std::size_t i = 0; i < rows; ++i) {
      w.begin_object();
      w.key("name").value("round metrics");
      w.key("ph").value("C");
      w.key("ts").value(m.ts_us[i]);
      w.key("pid").value(pid);
      w.key("args").begin_object();
      w.key("delivered").value(m.delivered[i]);
      w.key("staged").value(m.staged[i]);
      w.key("wakeups").value(m.wakeups[i]);
      w.key("lost").value(m.lost[i]);
      w.key("active_links").value(m.active_links[i]);
      w.end_object();
      w.end_object();
      if (!t.probes.empty()) {
        w.begin_object();
        w.key("name").value("probes");
        w.key("ph").value("C");
        w.key("ts").value(m.ts_us[i]);
        w.key("pid").value(pid);
        w.key("args").begin_object();
        for (const auto& p : t.probes) {
          if (p.value.size() == rows) w.key(p.name).value(p.value[i]);
        }
        w.end_object();
        w.end_object();
      }
    }
  }
}

std::string telemetry_trace_json(const Telemetry& t,
                                 const std::string& process_name) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  telemetry_trace_events(w, t, 1, process_name);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace nc
