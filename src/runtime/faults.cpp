#include "runtime/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nc {

namespace {

// Salts separating the independent decision streams drawn from one seed.
constexpr std::uint64_t kSaltLoss = 0x10c5;
constexpr std::uint64_t kSaltGeInit = 0x6e11;
constexpr std::uint64_t kSaltGeStep = 0x6e12;
constexpr std::uint64_t kSaltGeLoss = 0x6e13;
constexpr std::uint64_t kSaltDelay = 0xde1a;
constexpr std::uint64_t kSaltCrash = 0xc4a5;
constexpr std::uint64_t kSaltHookLoss = 0x40c5;

void check_prob(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("fault plan: '") + name +
                                "' must be a probability in [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_prob(loss, "loss");
  check_prob(ge_p, "ge_p");
  check_prob(ge_r, "ge_r");
  check_prob(ge_loss_good, "ge_loss_good");
  check_prob(ge_loss_bad, "ge_loss_bad");
  check_prob(crash_frac, "crash_frac");
  if (ge_p > 0.0 && ge_r == 0.0) {
    throw std::invalid_argument(
        "fault plan: ge_p > 0 requires ge_r > 0 (a chain that never leaves "
        "the bad state is just loss=" +
        std::to_string(ge_loss_bad) + ")");
  }
  if (delay_min > delay_max) {
    throw std::invalid_argument(
        "fault plan: delay_min must be <= delay_max");
  }
  if (crash_frac > 0.0 && crash_round == 0) {
    throw std::invalid_argument(
        "fault plan: crash_round must be >= 1 (rounds start at 1)");
  }
}

std::string FaultPlan::summary() const {
  if (!any()) return "none";
  std::ostringstream os;
  const char* sep = "";
  if (loss > 0.0) {
    os << sep << "loss=" << loss;
    sep = " ";
  }
  if (ge_p > 0.0) {
    os << sep << "ge=(p=" << ge_p << ",r=" << ge_r << ",good=" << ge_loss_good
       << ",bad=" << ge_loss_bad << ")";
    sep = " ";
  }
  if (delay_max > 0) {
    os << sep << "delay=[" << delay_min << "," << delay_max << "]";
    sep = " ";
  }
  if (crash_frac > 0.0) {
    os << sep << "crash=" << crash_frac << "@r" << crash_round;
    if (recover_after > 0) os << "+" << recover_after;
    sep = " ";
  }
  if (loss_hook) {
    os << sep << "hook";
    sep = " ";
  }
  return os.str();
}

const ParamSet& fault_param_defaults() {
  static const ParamSet defaults = [] {
    FaultPlan d;
    return ParamSet()
        .with("loss", d.loss)
        .with("ge_p", d.ge_p)
        .with("ge_r", d.ge_r)
        .with("ge_loss_good", d.ge_loss_good)
        .with("ge_loss_bad", d.ge_loss_bad)
        .with("delay_min", d.delay_min)
        .with("delay_max", d.delay_max)
        .with("crash_frac", d.crash_frac)
        .with("crash_round", d.crash_round)
        .with("recover_after", d.recover_after)
        .with("fault_seed", d.fault_seed);
  }();
  return defaults;
}

FaultPlan fault_plan_from_params(const ParamSet& params) {
  FaultPlan plan;
  const auto u64 = [&](const char* key, std::uint64_t def) {
    const double v = params.get_double_or(key, static_cast<double>(def));
    if (v < 0.0) {
      throw std::invalid_argument(std::string("fault plan: '") + key +
                                  "' must be >= 0");
    }
    return static_cast<std::uint64_t>(v);
  };
  plan.loss = params.get_double_or("loss", plan.loss);
  plan.ge_p = params.get_double_or("ge_p", plan.ge_p);
  plan.ge_r = params.get_double_or("ge_r", plan.ge_r);
  plan.ge_loss_good = params.get_double_or("ge_loss_good", plan.ge_loss_good);
  plan.ge_loss_bad = params.get_double_or("ge_loss_bad", plan.ge_loss_bad);
  plan.delay_min = u64("delay_min", plan.delay_min);
  plan.delay_max = u64("delay_max", plan.delay_max);
  plan.crash_frac = params.get_double_or("crash_frac", plan.crash_frac);
  plan.crash_round = u64("crash_round", plan.crash_round);
  plan.recover_after = u64("recover_after", plan.recover_after);
  plan.fault_seed = u64("fault_seed", plan.fault_seed);
  plan.validate();
  return plan;
}

FaultPlan parse_fault_plan(const std::string& csv) {
  const ParamSet overrides = parse_params_csv(csv, &fault_param_defaults());
  const ParamSet merged =
      merge_params(fault_param_defaults(), overrides, "fault plan");
  return fault_plan_from_params(merged);
}

std::uint64_t fault_mix(std::uint64_t seed, std::uint64_t salt,
                        std::uint64_t round, std::uint64_t a,
                        std::uint64_t b) noexcept {
  // Chained SplitMix64 finalizers over the key tuple: cheap, stateless and
  // well-mixed (each splitmix64 step is a bijective avalanche).
  std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  std::uint64_t h = splitmix64(s);
  s ^= round + 0x9e3779b97f4a7c15ULL;
  h ^= splitmix64(s);
  s ^= (a << 1) + 0xbf58476d1ce4e5b9ULL;
  h ^= splitmix64(s);
  s ^= (b << 1) + 0x94d049bb133111ebULL;
  h ^= splitmix64(s);
  return h;
}

double fault_uniform(std::uint64_t seed, std::uint64_t salt,
                     std::uint64_t round, std::uint64_t a,
                     std::uint64_t b) noexcept {
  return static_cast<double>(fault_mix(seed, salt, round, a, b) >> 11) *
         0x1.0p-53;
}

FaultEngine::FaultEngine(const FaultPlan& plan, NodeId n,
                         std::size_t directed_edges, std::uint64_t net_seed)
    : plan_(plan),
      seed_(plan.fault_seed != 0 ? plan.fault_seed
                                 : net_seed ^ 0xfa017ba5eba11ULL) {
  plan_.validate();

  if (plan_.ge_p > 0.0) {
    pi_bad_ = plan_.ge_p / (plan_.ge_p + plan_.ge_r);
    decay_ = 1.0 - plan_.ge_p - plan_.ge_r;
    // State packed as (last_round << 1 | bad); every edge starts at round 0
    // in the chain's stationary distribution (keyed per-edge draw), so the
    // marginal loss rate is stationary from the first round.
    ge_state_.resize(directed_edges);
    for (std::size_t e = 0; e < directed_edges; ++e) {
      const bool bad = fault_uniform(seed_, kSaltGeInit, 0, e, 0) < pi_bad_;
      ge_state_[e] = bad ? 1 : 0;
    }
  }

  if (plan_.delay_max > 0) arrival_.assign(directed_edges, 0);

  if (plan_.crash_frac > 0.0) {
    crash_round_.assign(n, kNever);
    recover_round_.assign(n, kNever);
    for (NodeId v = 0; v < n; ++v) {
      if (fault_uniform(seed_, kSaltCrash, 0, v, 0) < plan_.crash_frac) {
        crash_round_[v] = plan_.crash_round;
        if (plan_.recover_after > 0) {
          recover_round_[v] = plan_.crash_round + plan_.recover_after;
        }
      }
    }
  }
}

bool FaultEngine::lose(std::size_t edge, NodeId src, NodeId dst,
                       std::uint64_t round) {
  if (plan_.loss > 0.0 &&
      fault_uniform(seed_, kSaltLoss, round, src, dst) < plan_.loss) {
    return true;
  }
  if (plan_.loss_hook) {
    const double h = plan_.loss_hook(src, dst);
    if (h > 0.0 &&
        fault_uniform(seed_, kSaltHookLoss, round, src, dst) < h) {
      return true;
    }
  }
  if (!ge_state_.empty()) {
    std::uint64_t& packed = ge_state_[edge];
    const std::uint64_t last = packed >> 1;
    bool bad = (packed & 1) != 0;
    if (round > last) {
      // Exact t-step advance: P(bad now | state at `last`) has the closed
      // form below, so one keyed draw replaces t chain steps without
      // changing the distribution (this is what keeps fast-forwarded idle
      // stretches O(1) and the chain independent of evaluation cadence).
      const double drift =
          std::pow(decay_, static_cast<double>(round - last));
      const double p_bad = pi_bad_ + ((bad ? 1.0 : 0.0) - pi_bad_) * drift;
      bad = fault_uniform(seed_, kSaltGeStep, round, edge, 0) < p_bad;
      packed = (round << 1) | (bad ? 1 : 0);
    }
    const double p_loss = bad ? plan_.ge_loss_bad : plan_.ge_loss_good;
    if (p_loss > 0.0 &&
        fault_uniform(seed_, kSaltGeLoss, round, src, dst) < p_loss) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultEngine::delay_of(std::size_t edge, NodeId src, NodeId dst,
                                    std::uint64_t round) {
  if (plan_.delay_max == 0) return 0;
  const std::uint64_t span = plan_.delay_max - plan_.delay_min + 1;
  const std::uint64_t jitter =
      fault_mix(seed_, kSaltDelay, round, src, dst) % span;
  std::uint64_t due = round + plan_.delay_min + jitter;
  // FIFO clamp: jitter must never reorder a link's stream (the wire format
  // carries no sequence numbers). Messages may share an arrival round —
  // the delivery buckets keep staging order within one.
  std::uint64_t& watermark = arrival_[edge];
  due = std::max(due, watermark);
  nc_invariant(due >= watermark && due >= round,
               "per-edge FIFO watermark must be monotone and never in the "
               "past — jitter may not reorder a link's stream");
  watermark = due;
  return due - round;
}

}  // namespace nc
