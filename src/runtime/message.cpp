#include "runtime/message.hpp"

#include <cassert>

#include "util/bitio.hpp"

namespace nc {

// The 5-bit kind and 4-bit version fields below are what bound kMaxMsgKinds
// and kMaxStreamVersions; keep them in sync.
static_assert(kMaxMsgKinds == (1u << 5),
              "kMaxMsgKinds must match the 5-bit kind field of the header");
static_assert(kMaxStreamVersions == (1u << 4),
              "kMaxStreamVersions must match the 4-bit version field");

unsigned stream_header_bits(unsigned id_bits) noexcept {
  return 5u + id_bits + 4u + 1u;
}

void SymbolBuffer::put(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  assert(width == 64 || value < (1ULL << width));
  const std::size_t word = total_bits_ >> 6;
  const unsigned off = static_cast<unsigned>(total_bits_ & 63);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= value << off;
  if (off + width > 64) words_.push_back(value >> (64 - off));
  total_bits_ += width;
  widths_.push_back(static_cast<std::uint8_t>(width));
}

void SymbolBuffer::append_packed(const std::uint64_t* src_words,
                                 std::size_t src_word_count,
                                 std::size_t src_bit, std::size_t nbits,
                                 const std::uint8_t* widths,
                                 std::size_t count) {
  widths_.insert(widths_.end(), widths, widths + count);
  const std::size_t end_bits = total_bits_ + nbits;
  // put() never writes above total_bits_, so the tail word's high bits are
  // zero and resize() zero-fills the rest: OR-merging chunks is exact.
  words_.resize((end_bits + 63) >> 6, 0);
  std::size_t dst = total_bits_;
  std::size_t src = src_bit;
  for (std::size_t rem = nbits; rem > 0;) {
    const unsigned take = rem >= 64 ? 64u : static_cast<unsigned>(rem);
    const std::uint64_t v = read_packed_bits(src_words, src_word_count, src, take);
    const std::size_t word = dst >> 6;
    const unsigned off = static_cast<unsigned>(dst & 63);
    words_[word] |= v << off;
    if (off + take > 64) words_[word + 1] |= v >> (64 - off);
    dst += take;
    src += take;
    rem -= take;
  }
  total_bits_ = end_bits;
}

std::uint64_t SymbolBuffer::value_at(std::size_t bit_off,
                                     unsigned width) const noexcept {
  const std::size_t word = bit_off >> 6;
  const unsigned off = static_cast<unsigned>(bit_off & 63);
  std::uint64_t v = words_[word] >> off;
  if (off + width > 64) v |= words_[word + 1] << (64 - off);
  if (width < 64) v &= (1ULL << width) - 1;
  return v;
}

std::uint64_t SymbolCursor::pop() noexcept {
  const unsigned width = buf_->width_at(index_);
  const std::uint64_t v = buf_->value_at(bit_off_, width);
  bit_off_ += width;
  ++index_;
  return v;
}

}  // namespace nc
