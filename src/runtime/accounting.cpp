#include "runtime/accounting.hpp"

#include <algorithm>
#include <sstream>

namespace nc {

void RunStats::absorb(const RunStats& other) {
  rounds += other.rounds;
  messages += other.messages;
  bits += other.bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  hit_round_limit = hit_round_limit || other.hit_round_limit;
  stalled = stalled || other.stalled;
  for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
    bits_by_kind[k] += other.bits_by_kind[k];
  }
}

void RunStats::merge_traffic(const RunStats& other) {
  messages += other.messages;
  bits += other.bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
    bits_by_kind[k] += other.bits_by_kind[k];
  }
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages << " bits=" << bits
     << " max_msg_bits=" << max_message_bits
     << (hit_round_limit ? " [round-limit]" : "")
     << (stalled ? " [stalled]" : "");
  return os.str();
}

}  // namespace nc
