#include "runtime/accounting.hpp"

#include <algorithm>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace nc {

void RunStats::absorb(const RunStats& other) {
  rounds += other.rounds;
  messages += other.messages;
  bits += other.bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  hit_round_limit = hit_round_limit || other.hit_round_limit;
  stalled = stalled || other.stalled;
  messages_lost += other.messages_lost;
  messages_delayed += other.messages_delayed;
  messages_dropped_crash += other.messages_dropped_crash;
  crash_events += other.crash_events;
  recover_events += other.recover_events;
  messages_retransmitted += other.messages_retransmitted;
  acks_sent += other.acks_sent;
  fec_repairs += other.fec_repairs;
  for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
    bits_by_kind[k] += other.bits_by_kind[k];
  }
}

void RunStats::merge_traffic(const RunStats& other) {
  messages += other.messages;
  bits += other.bits;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  // Per-message fault and reliability outcomes are decided in the parallel
  // stage/deliver phases, so they are shard partials too; churn events are
  // counted by the serial round loop and deliberately not merged here.
  messages_lost += other.messages_lost;
  messages_delayed += other.messages_delayed;
  messages_dropped_crash += other.messages_dropped_crash;
  messages_retransmitted += other.messages_retransmitted;
  acks_sent += other.acks_sent;
  fec_repairs += other.fec_repairs;
  for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
    bits_by_kind[k] += other.bits_by_kind[k];
  }
}

void NetProfile::absorb(const NetProfile& other) {
  stage_seconds += other.stage_seconds;
  deliver_seconds += other.deliver_seconds;
  fused_seconds += other.fused_seconds;
  wake_seconds += other.wake_seconds;
  arena_bytes_total = std::max(arena_bytes_total, other.arena_bytes_total);
  arena_bytes_peak_shard =
      std::max(arena_bytes_peak_shard, other.arena_bytes_peak_shard);
  lane_msgs_peak = std::max(lane_msgs_peak, other.lane_msgs_peak);
  delayed_msgs_peak = std::max(delayed_msgs_peak, other.delayed_msgs_peak);
  broadcast_payload_bytes_saved += other.broadcast_payload_bytes_saved;
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages << " bits=" << bits
     << " max_msg_bits=" << max_message_bits
     << (hit_round_limit ? " [round-limit]" : "")
     << (stalled ? " [stalled]" : "");
  if (messages_lost > 0) os << " lost=" << messages_lost;
  if (messages_delayed > 0) os << " delayed=" << messages_delayed;
  if (messages_dropped_crash > 0) {
    os << " crash_dropped=" << messages_dropped_crash;
  }
  if (crash_events > 0) {
    os << " crashes=" << crash_events << " recoveries=" << recover_events;
  }
  if (messages_retransmitted > 0) os << " retx=" << messages_retransmitted;
  if (acks_sent > 0) os << " acks=" << acks_sent;
  if (fec_repairs > 0) os << " fec_repairs=" << fec_repairs;
  return os.str();
}

void RunStats::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("rounds").value(rounds);
  w.key("messages").value(messages);
  w.key("bits").value(bits);
  w.key("max_message_bits").value(max_message_bits);
  w.key("hit_round_limit").value(hit_round_limit);
  w.key("stalled").value(stalled);
  w.key("messages_lost").value(messages_lost);
  w.key("messages_delayed").value(messages_delayed);
  w.key("messages_dropped_crash").value(messages_dropped_crash);
  w.key("crash_events").value(crash_events);
  w.key("recover_events").value(recover_events);
  w.key("messages_retransmitted").value(messages_retransmitted);
  w.key("acks_sent").value(acks_sent);
  w.key("fec_repairs").value(fec_repairs);
  // Sparse object keyed by kind index: most runs use a handful of the 32
  // CONGEST kinds, and absent == 0 keeps lines short and diff-friendly.
  w.key("bits_by_kind").begin_object();
  for (std::size_t k = 0; k < bits_by_kind.size(); ++k) {
    if (bits_by_kind[k] != 0) w.key(std::to_string(k)).value(bits_by_kind[k]);
  }
  w.end_object();
  w.end_object();
}

}  // namespace nc
