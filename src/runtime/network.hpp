#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/accounting.hpp"
#include "runtime/link.hpp"
#include "runtime/stream.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nc {

class Network;
class NodeApi;

/// A processor in the synchronous message-passing model of Section 2.
///
/// `on_start` runs once before round 1 (local initialization; any messages
/// enqueued are delivered in round 1). `on_round` runs every executed round
/// after that round's deliveries. A node signals completion via
/// NodeApi::set_done(); `on_round` keeps being invoked until the whole
/// network finishes, so it must be idempotent once done.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_start(NodeApi& api) = 0;
  virtual void on_round(NodeApi& api) = 0;
};

/// Execution model: CONGEST (B = bandwidth_factor * ceil(log2(n+1)) bits per
/// edge per direction per round) or LOCAL (unbounded messages, one per edge
/// per round) as defined in [20].
struct NetConfig {
  enum class Mode { kCongest, kLocal };
  Mode mode = Mode::kCongest;
  unsigned bandwidth_factor = 8;
  std::uint64_t max_rounds = 1'000'000;
  std::uint64_t seed = 1;
};

/// The per-node view of the runtime: identity, topology (restricted to the
/// node's own neighbourhood, as the model requires), randomness, stream I/O
/// and the done flag. Handed to INode callbacks; never retained.
class NodeApi {
 public:
  NodeApi(Network& net, NodeId id) : net_(&net), id_(id) {}

  /// This node's ID (unique, O(log n) bits).
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Number of nodes in the network (known to all nodes, per Section 2).
  [[nodiscard]] NodeId n() const noexcept;

  /// Current round (0 during on_start).
  [[nodiscard]] std::uint64_t round() const noexcept;

  /// Sorted IDs of this node's neighbours.
  [[nodiscard]] std::span<const NodeId> neighbors() const;

  /// Degree.
  [[nodiscard]] std::size_t degree() const { return neighbors().size(); }

  /// Index of neighbour `v` in neighbors(), or SIZE_MAX if not adjacent.
  [[nodiscard]] std::size_t neighbor_index(NodeId v) const;

  /// This node's private random stream (derived from the network seed).
  [[nodiscard]] Rng& rng();

  /// Opens an outgoing stream to the given neighbour indices. The returned
  /// channel may be appended to across rounds; close() ends it. The payload
  /// buffer is shared across all listed links (broadcasts store data once).
  OutChannel open_stream(const StreamKey& key,
                         std::span<const std::size_t> neighbor_indices);

  /// Opens an outgoing stream to every neighbour.
  OutChannel open_stream_all(const StreamKey& key);

  /// Opens an outgoing stream to a single neighbour.
  OutChannel open_stream_one(const StreamKey& key, std::size_t neighbor_index);

  /// Incoming stream from neighbour index `ni` with the given key, or
  /// nullptr if nothing with that key has arrived yet.
  [[nodiscard]] InStream* find_in(std::size_t ni, const StreamKey& key);

  /// Invokes `fn(ni, key, stream)` for every incoming stream of `kind`.
  void for_each_in(std::uint16_t kind,
                   const std::function<void(std::size_t, const StreamKey&,
                                            InStream&)>& fn);

  /// Number of deliveries (messages) received so far whose kind is `kind`.
  /// Protocol code uses this to skip inbox scans on rounds where nothing of
  /// that kind arrived.
  [[nodiscard]] std::uint64_t rx_count(std::uint16_t kind) const;

  /// Requests a wake-up: the node is idle until the given (absolute) round.
  /// This is how protocol code waits on the synchronous round counter (the
  /// only global signal in the model — Section 4.1's deterministic time
  /// bounds are defined in terms of it). The simulator may fast-forward
  /// through rounds where no node has traffic and all waiters' alarms are in
  /// the future; skipped rounds still count toward round complexity.
  void set_alarm(std::uint64_t round);

  /// Marks this node finished.
  void set_done();

 private:
  Network* net_;
  NodeId id_;
};

/// Synchronous network simulator.
///
/// Executes rounds: (1) every directed edge delivers at most one message of
/// at most B bits (CONGEST) or drains completely (LOCAL); (2) every node's
/// on_round runs, in ID order. Execution stops when every node is done, when
/// max_rounds is hit (sets RunStats::hit_round_limit — the deterministic
/// time-bound wrapper of Section 4.1), or when no traffic is pending and no
/// alarm is set (sets RunStats::stalled; a liveness guard that protocol bugs
/// and fault-injection tests exercise).
class Network {
 public:
  /// Builds a network over communication graph `g`. `factory(v)` constructs
  /// the protocol instance for node v.
  Network(const Graph& g, const NetConfig& config,
          const std::function<std::unique_ptr<INode>(NodeId)>& factory);

  /// Runs to completion and returns traffic statistics.
  RunStats run();

  /// Runs at most `rounds` additional rounds without fast-forwarding (for
  /// step-by-step tests and the Section 6 indistinguishability experiment).
  /// Returns true if the network finished within them.
  bool run_rounds(std::uint64_t rounds);

  /// Statistics so far.
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

  /// Access to a protocol node (post-run inspection by drivers and tests).
  [[nodiscard]] INode& node(NodeId v) { return *nodes_[v]; }

  /// The communication graph.
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Bandwidth per edge per direction per round, in bits (SIZE_MAX in LOCAL
  /// mode).
  [[nodiscard]] std::size_t bandwidth_bits() const noexcept {
    return bandwidth_bits_;
  }

  /// True when every node has set_done().
  [[nodiscard]] bool all_done() const noexcept { return done_count_ == n_; }

 private:
  friend class NodeApi;

  struct NodeState {
    Rng rng;
    std::vector<Link> out_links;  // by neighbour index
    std::map<std::pair<std::size_t, StreamKey>, InStream> inbox;
    std::array<std::uint64_t, 32> rx_by_kind{};
    std::uint64_t alarm = kNoAlarm;
    bool done = false;
  };
  static constexpr std::uint64_t kNoAlarm = ~0ULL;

  /// Executes one round; returns false when execution must stop.
  bool step(bool allow_fast_forward);
  void deliver_round();
  void deliver(NodeId from, std::size_t ni, const Delivery& d);
  [[nodiscard]] bool any_link_pending() const noexcept;
  [[nodiscard]] std::uint64_t min_alarm() const noexcept;

  const Graph* graph_;
  NetConfig config_;
  NodeId n_;
  unsigned id_bits_;
  unsigned header_bits_;
  std::size_t bandwidth_bits_;
  std::uint64_t round_ = 0;
  NodeId done_count_ = 0;
  std::vector<std::unique_ptr<INode>> nodes_;
  std::vector<NodeState> states_;
  RunStats stats_;
};

}  // namespace nc
