#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/accounting.hpp"
#include "runtime/faults.hpp"
#include "runtime/inbox.hpp"
#include "runtime/link.hpp"
#include "runtime/msgblock.hpp"
#include "runtime/reliability.hpp"
#include "runtime/shard.hpp"
#include "runtime/stream.hpp"
#include "runtime/telemetry.hpp"
#include "util/arena.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace nc {

class Network;
class NodeApi;

/// A processor in the synchronous message-passing model of Section 2.
///
/// `on_start` runs once before round 1 (local initialization; any messages
/// enqueued are delivered in round 1). `on_round` runs in every executed
/// round in which the node is *woken*: a delivery arrived for it in that
/// round, or an alarm it set (NodeApi::set_alarm) fired. Quiet rounds cost a
/// node nothing — the simulator is event-driven — so a node that wants to be
/// polled on a specific round must arm an alarm for it. A node signals
/// completion via NodeApi::set_done(); until then `on_round` keeps being
/// invoked on wake-ups, so it must be idempotent once done.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_start(NodeApi& api) = 0;
  virtual void on_round(NodeApi& api) = 0;

  /// Churn hooks (NetConfig::faults; see src/runtime/faults.hpp). The
  /// runtime fires on_crash at the start of the node's crash round —
  /// before any delivery of that round — and on_recover at the start of
  /// its recovery round, after which the node is woken normally. While
  /// crashed the node is never woken, its alarms are cancelled (one-shot,
  /// so they are simply lost), and every message *scheduled* on its links
  /// during the window — in either direction — is silently dropped; a
  /// message addressed to it that falls due mid-window is dropped on
  /// arrival. One asymmetry, deliberately the physical semantics: a
  /// delayed message already in flight when its *sender* crashes is still
  /// delivered — it left the node before the crash. Local state survives
  /// the window; a protocol that wants crash-restart semantics resets
  /// itself in on_recover. Defaults are no-ops so existing nodes are
  /// unaffected.
  virtual void on_crash(NodeApi& api) { (void)api; }
  virtual void on_recover(NodeApi& api) { (void)api; }
};

/// Execution model: CONGEST (B = bandwidth_factor * ceil(log2(n+1)) bits per
/// edge per direction per round) or LOCAL (unbounded messages, one per edge
/// per round) as defined in [20].
struct NetConfig {
  enum class Mode { kCongest, kLocal };
  Mode mode = Mode::kCongest;
  unsigned bandwidth_factor = 8;
  std::uint64_t max_rounds = 1'000'000;
  std::uint64_t seed = 1;

  /// Delivery/wake parallelism: the nodes are partitioned into this many
  /// CSR-contiguous shards, each owning its active links, alarm buckets and
  /// wake list, and the per-round phases run on a fixed pool of this many
  /// threads. Fixed-seed executions are bit-identical at every value (the
  /// two-phase round merges staged messages in shard order, which equals
  /// the serial delivery order); 0 and 1 both mean the serial engine.
  /// Clamped to [1, kMaxShards].
  unsigned threads = 1;

  /// Injected adversity: message loss, link delay and node churn
  /// (src/runtime/faults.hpp). The default plan is fault-free and costs
  /// the hot path nothing. Fault decisions are keyed hashes of
  /// (fault seed, round, src, dst), so a fixed-seed faulty run is
  /// bit-identical at every thread count too.
  FaultPlan faults;

  /// Link-reliability service compensating the fault plan's loss
  /// (src/runtime/reliability.hpp): per-stream ACK + retransmission, or
  /// erasure coding over stream windows. CONGEST only (the control-plane
  /// accounting is defined against the CONGEST slot budget; the Network
  /// constructor throws for LOCAL mode). Off by default and free when off.
  /// Reliability decisions are keyed hashes like fault decisions, so
  /// fixed-seed reliable runs stay bit-identical at every thread count.
  ReliabilityPlan reliability;

  /// Broadcast payload dedup (CONGEST only): consecutive sibling links that
  /// would schedule the identical view of one shared stream are staged as a
  /// single broadcast row per (src-shard → dst-shard) lane — payload once,
  /// receivers as packed indices — instead of one payload copy per edge.
  /// Purely an engine optimization: fixed-seed RunStats, labels and fault
  /// verdicts are bit-identical either way (every copy still gets its own
  /// per-(src, dst) loss/delay/crash decision; locked by
  /// tests/test_determinism.cpp). False forces the historical per-edge
  /// path — the comparison baseline for benches and the determinism tests.
  bool broadcast_dedup = true;

  /// Opt-in engine profiling: when non-null, the network accumulates
  /// per-phase wall-clock and arena/lane peaks here over its lifetime
  /// (flushed at the end of run()/run_rounds()). Null — the default —
  /// keeps the hot path free of clock reads and peak bookkeeping.
  NetProfile* profile = nullptr;

  /// Opt-in observability (src/runtime/telemetry.hpp): per-round metric
  /// rows, phase trace spans and the protocol probe API, recorded into
  /// TelemetryPlan::sink. The default plan keeps the engine pointer null,
  /// so every telemetry hook in the hot path is one branch; recording never
  /// feeds back into a simulation decision, so fixed-seed runs are
  /// bit-identical with telemetry on or off at every thread count (locked
  /// by tests/test_telemetry.cpp).
  TelemetryPlan telemetry;
};

/// The per-node view of the runtime: identity, topology (restricted to the
/// node's own neighbourhood, as the model requires), randomness, stream I/O
/// and the done flag. Handed to INode callbacks; never retained.
class NodeApi {
 public:
  NodeApi(Network& net, NodeId id) : net_(&net), id_(id) {}

  /// This node's ID (unique, O(log n) bits).
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Number of nodes in the network (known to all nodes, per Section 2).
  [[nodiscard]] NodeId n() const noexcept;

  /// Current round (0 during on_start).
  [[nodiscard]] std::uint64_t round() const noexcept;

  /// Sorted IDs of this node's neighbours.
  [[nodiscard]] std::span<const NodeId> neighbors() const;

  /// Degree.
  [[nodiscard]] std::size_t degree() const { return neighbors().size(); }

  /// Index of neighbour `v` in neighbors(), or SIZE_MAX if not adjacent.
  [[nodiscard]] std::size_t neighbor_index(NodeId v) const;

  /// This node's private random stream (derived from the network seed).
  [[nodiscard]] Rng& rng();

  /// Opens an outgoing stream to the given neighbour indices. The returned
  /// channel may be appended to across rounds; close() ends it. The payload
  /// buffer is shared across all listed links (broadcasts store data once).
  /// Throws std::invalid_argument if key.kind is outside [0, kMaxMsgKinds)
  /// or key.version outside [0, kMaxStreamVersions) — the wire format's
  /// 5-bit kind / 4-bit version fields cannot carry them, and the per-kind
  /// counters would silently alias.
  OutChannel open_stream(const StreamKey& key,
                         std::span<const std::size_t> neighbor_indices);

  /// Opens an outgoing stream to every neighbour.
  OutChannel open_stream_all(const StreamKey& key);

  /// Opens an outgoing stream to a single neighbour.
  OutChannel open_stream_one(const StreamKey& key, std::size_t neighbor_index);

  /// Incoming stream from neighbour index `ni` with the given key, or
  /// nullptr if nothing with that key has arrived yet. The pointer is valid
  /// only for the duration of the current callback: the inbox stores
  /// streams in contiguous per-kind buckets, so the arrival of a new stream
  /// may relocate existing ones. Re-fetch each round instead of caching.
  [[nodiscard]] InStream* find_in(std::size_t ni, const StreamKey& key);

  /// Invokes `fn(ni, key, stream)` for every incoming stream of `kind`, in
  /// ascending (ni, key) order. `fn` is any callable — the visitor is a
  /// template, so the hot path pays no std::function indirection. The
  /// stream references share find_in's lifetime rule: valid only within
  /// the current callback.
  template <typename Fn>
  void for_each_in(std::uint16_t kind, Fn&& fn);

  /// Number of deliveries (messages) received so far whose kind is `kind`.
  /// Protocol code uses this to skip inbox scans on rounds where nothing of
  /// that kind arrived. Throws std::out_of_range for kind >= kMaxMsgKinds.
  [[nodiscard]] std::uint64_t rx_count(std::uint16_t kind) const;

  /// Registers (or looks up) a named telemetry probe of counter kind
  /// (sampled as its cumulative total). Returns kNoProbe — and probe_add
  /// becomes a no-op — when probes are off (NetConfig::telemetry), so
  /// instrumented protocols run unchanged without telemetry. Probe traffic
  /// is charged no wire bits and never perturbs RunStats. Typically called
  /// once from on_start; names are shared network-wide (every node adding
  /// to "proto.x" feeds one series).
  [[nodiscard]] std::uint32_t probe_counter(const char* name);

  /// Same as probe_counter but gauge kind: sampled as the sum of the
  /// probe_add deltas within each sampling window.
  [[nodiscard]] std::uint32_t probe_gauge(const char* name);

  /// Charges `delta` to a probe from this node (no-op on kNoProbe). Safe
  /// from any INode callback; per-shard accumulators keep it wait-free.
  void probe_add(std::uint32_t probe, std::uint64_t delta);

  /// Sentinel handle returned when probes are off.
  static constexpr std::uint32_t kNoProbe = TelemetryEngine::kNoProbe;

  /// Requests a wake-up: the node is idle until the given (absolute) round.
  /// This is how protocol code waits on the synchronous round counter (the
  /// only global signal in the model — Section 4.1's deterministic time
  /// bounds are defined in terms of it). The simulator may fast-forward
  /// through rounds where no node has traffic and all waiters' alarms are in
  /// the future; skipped rounds still count toward round complexity.
  void set_alarm(std::uint64_t round);

  /// Marks this node finished.
  void set_done();

 private:
  Network* net_;
  NodeId id_;
};

/// Synchronous network simulator, event-driven and shard-parallel.
///
/// Executes rounds: (1) every directed edge with pending traffic delivers at
/// most one message of at most B bits (CONGEST) or drains completely
/// (LOCAL); (2) every node woken in this round — by a delivery or by its
/// alarm — runs on_round, in ID order. Idle links and sleeping nodes cost
/// nothing: the simulator tracks an active set of links with pending traffic
/// and a bucketed alarm queue, so per-round work is proportional to actual
/// traffic, not to n + m, and fast-forwarding over an idle stretch is O(1).
///
/// With NetConfig::threads = k > 1 the nodes are partitioned into k
/// CSR-contiguous shards and every round runs as a deterministic two-phase
/// pipeline on a fixed thread pool: a parallel *stage* phase where each
/// source shard schedules its active links into per-(src-shard → dst-shard)
/// lanes, and a parallel *deliver + wake* phase where each destination
/// shard merges its incoming lanes in ascending source-shard order, applies
/// them to its nodes' inboxes, then runs its woken nodes in ID order.
/// Because shards are contiguous ID ranges, the merge order equals the
/// serial engine's global ascending-edge delivery order, so fixed-seed
/// executions are bit-identical at every thread count (locked by
/// tests/test_determinism.cpp).
///
/// With NetConfig::faults active the stage phase additionally runs every
/// scheduled message through the fault engine — crash silencing, loss,
/// delay — and the deliver phase holds delayed messages in per-destination-
/// shard round buckets until they fall due (drained ahead of the round's
/// on-time traffic, in canonical order). Fault decisions are keyed hashes
/// of (fault seed, round, src, dst), never draws tied to iteration order,
/// so faulty fixed-seed executions remain bit-identical at every thread
/// count. Node churn fires the INode::on_crash / on_recover hooks at the
/// boundary rounds; a permanently crashed node counts as done so the
/// execution can still terminate.
///
/// Execution stops when every node is done, when max_rounds is hit (sets
/// RunStats::hit_round_limit — the deterministic time-bound wrapper of
/// Section 4.1), or when no traffic is pending (including in-flight delayed
/// messages), no alarm is set and no churn event is scheduled in the future
/// (sets RunStats::stalled; a liveness guard that protocol bugs and
/// fault-injection tests exercise).
class Network {
 public:
  /// Builds a network over communication graph `g`. `factory(v)` constructs
  /// the protocol instance for node v.
  Network(const Graph& g, const NetConfig& config,
          const std::function<std::unique_ptr<INode>(NodeId)>& factory);

  /// Runs to completion and returns traffic statistics.
  RunStats run();

  /// Runs at most `rounds` additional rounds without fast-forwarding (for
  /// step-by-step tests and the Section 6 indistinguishability experiment).
  /// Returns true if the network finished within them.
  bool run_rounds(std::uint64_t rounds);

  /// Statistics so far.
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }

  /// Access to a protocol node (post-run inspection by drivers and tests).
  [[nodiscard]] INode& node(NodeId v) { return *nodes_[v]; }

  /// The communication graph.
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Bandwidth per edge per direction per round, in bits (SIZE_MAX in LOCAL
  /// mode).
  [[nodiscard]] std::size_t bandwidth_bits() const noexcept {
    return bandwidth_bits_;
  }

  /// True when every node has set_done().
  [[nodiscard]] bool all_done() const noexcept {
    NodeId done = 0;
    for (const auto& sh : shards_) done += sh.done_count;
    return done == n_;
  }

  /// Links with pending traffic right now (introspection for tests/benches).
  [[nodiscard]] std::size_t active_link_count() const noexcept {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh.active_links.size();
    return total;
  }

  /// Number of shards (== resolved thread count).
  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Post-mortem of the termination guards: where progress last happened
  /// and what was still pending (armed alarms, in-flight delayed traffic,
  /// FEC horizons). Available with telemetry off — it reads state the
  /// engine keeps anyway — and cheap (one scan of nodes and shards), so
  /// drivers call it after any aborted run.
  [[nodiscard]] StallReport stall_report() const;

 private:
  friend class NodeApi;

  struct NodeState {
    Rng rng;
    std::vector<Link> out_links;  // by neighbour index
    Inbox inbox;
    std::array<std::uint64_t, kMaxMsgKinds> rx_by_kind{};
    std::uint64_t alarm = kNoAlarm;
    bool done = false;
    // The "queued in this round's wake list" flag lives in the owning
    // shard's contiguous `woken` bitmap, not here: the wake phase scans it
    // densely, and NodeState is far too big to stride for one byte.
  };
  static constexpr std::uint64_t kNoAlarm = ~0ULL;

  /// Everything one shard owns. During the parallel phases a shard's data
  /// is touched only by the worker running that shard (lanes are written by
  /// the source shard in the stage phase and read by the destination shard
  /// in the deliver phase — the pool barrier between phases separates the
  /// two), so no per-shard locking exists anywhere.
  struct Shard {
    NodeId begin = 0;  ///< first owned node
    NodeId end = 0;    ///< one past the last owned node

    /// Directed edges owned by this shard's nodes with pending traffic.
    std::vector<std::size_t> active_links;

    /// round -> armed owned nodes; entries lazily invalidated on re-arm.
    std::map<std::uint64_t, std::vector<NodeId>> alarm_buckets;  // nclint:allow(ordered-map) sparse round buckets; common case is the memo, map walk is rare

    /// Bucket memo for set_alarm: protocols overwhelmingly re-arm for the
    /// same round their neighbours do, so the common case skips the map
    /// walk. Map values are node-stable, so the pointer survives unrelated
    /// inserts/erases; the erasing paths (collect_due_alarms,
    /// next_alarm_round) clear the memo when they pop its bucket.
    std::uint64_t alarm_memo_round = ~0ULL;
    std::vector<NodeId>* alarm_memo_bucket = nullptr;

    /// Owned nodes to run this round.
    std::vector<NodeId> wake_list;

    /// Per-owned-node "queued in wake_list" flags (index: id - begin). A
    /// contiguous bitmap so dense rounds can rebuild the wake order with a
    /// linear scan instead of sorting (see wake_shard).
    std::vector<std::uint8_t> woken;

    /// Owned nodes that called set_done().
    NodeId done_count = 0;

    /// Per-round transient storage: every lane column below carves from
    /// this bump arena, which the stage phase rewinds in O(1) at the top of
    /// each round (src/util/arena.hpp).
    Arena arena;

    /// Staged outgoing messages, by destination shard — SoA columns plus a
    /// shared packed-payload region per lane (src/runtime/msgblock.hpp),
    /// arena-backed.
    std::vector<MsgBlock> lanes;

    /// Per-round traffic partials, reduced into stats_ after the deliver
    /// phase (in shard order; integer sums/maxes make the reduction exact).
    RunStats traffic;

    /// In-flight delayed messages addressed to this shard's nodes, bucketed
    /// by delivery round (fault engine only). Filled by this shard's own
    /// deliver phase — staged rows whose deliver_round is in the future are
    /// copied here in canonical merge order, so the bucket's insertion
    /// order is thread-count-invariant — and drained at the start of the
    /// deliver phase of the due round. Heap-backed MsgBlocks, deliberately
    /// outside the arena: buckets outlive rounds, and a bump arena cannot
    /// rewind storage that crosses its reset boundary.
    std::map<std::uint64_t, MsgBlock> delayed;  // nclint:allow(ordered-map) cross-round delay buckets exist only under an active fault plan

    /// Broadcast-grouping scratch for the stage phase: bcast_open[d] marks
    /// that lane d's *last* row belongs to the broadcast group currently
    /// being staged (so the next sibling copy extends it via add_receiver
    /// instead of pushing a fresh payload); bcast_touched lists the lanes
    /// with a set flag so closing a group is O(group lanes), not O(k).
    std::vector<std::uint8_t> bcast_open;
    std::vector<unsigned> bcast_touched;

    /// Profiling partials (NetConfig::profile only; zero cost otherwise):
    /// peak messages staged by this shard in one round, the current / peak
    /// count of messages parked in `delayed`, and the payload bytes this
    /// shard avoided re-staging thanks to broadcast dedup.
    std::uint64_t staged_peak = 0;
    std::uint64_t delayed_msgs = 0;
    std::uint64_t delayed_peak = 0;
    std::uint64_t bcast_saved = 0;

    /// Telemetry partials (NetConfig::telemetry only; zero cost otherwise):
    /// per-round on_round invocations, lane messages staged and FEC parks,
    /// plus this shard's phase spans of the round. All shard-thread-owned;
    /// drained serially (in shard order) at the end of each round.
    std::uint64_t telem_wakeups = 0;
    std::uint64_t telem_staged = 0;
    std::uint64_t telem_fec_parks = 0;
    std::vector<Telemetry::Span> telem_spans;

    /// Churn schedule for this shard's nodes: round -> nodes whose crash or
    /// recovery fires then. Precomputed at construction; never stale.
    std::map<std::uint64_t, std::vector<NodeId>> fault_events;  // nclint:allow(ordered-map) churn events are rare and drained between rounds

    /// Reliability service, FEC mode: messages of this shard's edges parked
    /// behind an in-window loss (head-of-line blocking preserves stream
    /// order while the window's recovery is undecided). Heap-backed like
    /// the delayed buckets — parked rows cross rounds. The parallel vectors
    /// carry each row's owning directed edge and its own loss verdict;
    /// rel_pending_edges lists the blocked edges awaiting resolution
    /// (appended on first park, drained by resolve_fec_windows).
    MsgBlock rel_parked;
    std::vector<std::size_t> rel_parked_edge;
    std::vector<std::uint8_t> rel_parked_lost;
    std::vector<std::size_t> rel_pending_edges;
  };

  /// Executes one round; returns false when execution must stop.
  bool step(bool allow_fast_forward);

  /// Stage phase: schedules shard s's active links into its outgoing lanes
  /// and compacts the active set. Touches only shard-s-owned state.
  void stage_shard(unsigned s);

  /// The single-shard fast path: stage and deliver fused — each scheduled
  /// view is applied to its destination inbox immediately, with no lane
  /// buffering at all — in the exact delivery order of the pre-sharding
  /// serial engine.
  void deliver_round_serial();

  /// Deliver phase: merges every source shard's lane for destination shard
  /// d in ascending source-shard order and applies the staged messages to
  /// d's nodes (inboxes, rx counters, wake list, traffic partials).
  void deliver_shard(unsigned d);

  /// Wake phase: collects shard s's due alarms, then runs its woken nodes'
  /// on_round in ascending ID order and re-scans their outgoing links.
  void wake_shard(unsigned s);

  /// Runs fn(s) for every shard — on the pool when one exists, inline
  /// otherwise (threads = 1 never pays for synchronization).
  template <typename Fn>
  void for_each_shard(Fn&& fn) {
    if (pool_) {
      pool_->run(static_cast<unsigned>(shards_.size()),
                 std::function<void(unsigned)>(std::forward<Fn>(fn)));
    } else {
      for (unsigned s = 0; s < shards_.size(); ++s) fn(s);
    }
  }

  /// Applies one just-scheduled view directly to its destination node
  /// (serial fused path: the payload moves producer buffer → inbox in one
  /// blit, never touching a lane). Charges `batch`.
  void deliver_view(Shard& dst, TrafficBatch& batch, NodeId to,
                    std::size_t back_index, const MsgView& v);

  /// Applies one staged lane/bucket row to its destination node, charging
  /// `batch` (flushed into the shard's traffic partial once per phase).
  void deliver_record(Shard& dst, TrafficBatch& batch, const MsgBlock::Rec& r);

  /// Applies one receiver's copy of a staged *broadcast* row: identical to
  /// deliver_record except the destination and reverse index come from the
  /// packed receiver entry, while payload, key and wire accounting come
  /// from the shared row — each copy is charged exactly what the per-edge
  /// path would have charged it.
  void deliver_copy(Shard& dst, TrafficBatch& batch, const MsgBlock::Rec& r,
                    const MsgBlock::Receiver& rcv);

  /// Hints the destination node's hot state into cache one delivery ahead
  /// of use: deliveries land on essentially random ~2 KB NodeStates, and
  /// the dependent-miss chain (state header → inbox bucket → stream) is
  /// the measured per-copy bottleneck on high-degree graphs. A pure hint —
  /// no observable behaviour depends on it.
  void prefetch_dst(NodeId to) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    const auto& st = states_[to];
    __builtin_prefetch(&st.inbox);
    __builtin_prefetch(reinterpret_cast<const char*>(&st.inbox) + 64);
    __builtin_prefetch(st.rx_by_kind.data());
#else
    (void)to;
#endif
  }

  /// Outcome of the combined fault + reliability channel decision for one
  /// scheduled message: deliver (possibly at a future round), drop
  /// permanently, or park behind an unresolved FEC window.
  struct LinkVerdict {
    enum class Fate { kDeliver, kDrop, kPark };
    Fate fate = Fate::kDeliver;
    std::uint64_t deliver_round = 0;  ///< absolute round; 0 = on time
    bool lost = false;        ///< kPark only: this copy's own loss verdict
    bool first_park = false;  ///< kPark only: opened the edge's pending window
  };

  /// Channel verdict for the traffic scheduled on edge e this round
  /// (`count` physical messages: 1 in CONGEST, the drained batch in LOCAL —
  /// one channel decision covers the round). Runs crash silencing, loss,
  /// delay and the reliability service in order, charging the source
  /// shard's fault/reliability counters. `kind`/`wire_bits` feed the ARQ
  /// duplicate accounting (pass 0s in LOCAL mode, where reliability cannot
  /// be active). Only called when faults_ or rel_ is active.
  LinkVerdict link_verdict(Shard& sh, std::size_t e, NodeId from, NodeId to,
                           std::uint64_t count, std::uint16_t kind,
                           std::uint64_t wire_bits);

  /// Parks one scheduled view on its shard's FEC hold (LinkVerdict::kPark).
  void park_row(Shard& sh, std::size_t e, const MsgView& v, NodeId to,
                std::uint32_t back_index, const LinkVerdict& verdict);

  /// Resolves every pending FEC window of shard `sh` whose close round has
  /// passed: draws the repair survivals, releases the parked rows (in park
  /// = stream order) into the shard's lanes at the computed release round,
  /// or drops the unrecovered losses. Runs at the top of the stage phase,
  /// before any new traffic of the round is staged.
  void resolve_fec_windows(Shard& sh);

  /// Queues `v` on its owning shard's wake list (no-op if done or queued).
  void wake(Shard& sh, NodeId v);

  /// Re-scans v's outgoing links after one of its callbacks ran, adding any
  /// that now carry traffic to its shard's active set. All stream writes
  /// happen inside the owning node's callbacks, so this is the only place a
  /// link can turn pending.
  void refresh_outgoing(NodeId v);

  /// True when any shard has a pending link.
  [[nodiscard]] bool any_active_links() const noexcept {
    for (const auto& sh : shards_) {
      if (!sh.active_links.empty()) return true;
    }
    return false;
  }

  /// Smallest future round holding an in-flight delayed message, or
  /// kNoAlarm. Buckets at or before the current round are always drained
  /// by the round's deliver phase, so every key is strictly future.
  [[nodiscard]] std::uint64_t next_delayed_round() const noexcept {
    std::uint64_t best = kNoAlarm;
    for (const auto& sh : shards_) {
      if (!sh.delayed.empty()) {
        best = std::min(best, sh.delayed.begin()->first);
      }
    }
    return best;
  }

  /// Smallest future round at which a pending FEC window resolves, or
  /// kNoAlarm. Keeps the round loop alive (and fast-forwarding landing on
  /// the resolution round) while parked messages wait on a window close
  /// with no other traffic or alarm pending.
  [[nodiscard]] std::uint64_t next_reliability_round() const noexcept {
    std::uint64_t best = kNoAlarm;
    if (rel_ && rel_->fec()) {
      for (const auto& sh : shards_) {
        for (const std::size_t e : sh.rel_pending_edges) {
          best = std::min(best, rel_->fec_close_round(e));
        }
      }
    }
    return best;
  }

  /// Smallest unprocessed churn-event round, or kNoAlarm. Keeps the round
  /// loop alive (and fast-forwarding correctly) up to crashes/recoveries
  /// even when no traffic or alarm is pending.
  [[nodiscard]] std::uint64_t next_fault_event_round() const noexcept {
    std::uint64_t best = kNoAlarm;
    for (const auto& sh : shards_) {
      if (!sh.fault_events.empty()) {
        best = std::min(best, sh.fault_events.begin()->first);
      }
    }
    return best;
  }

  /// Fires the churn events due this round, in ascending shard (hence
  /// node-ID) order: on_crash / on_recover hooks, alarm cancellation, wake
  /// on recovery, done-accounting for permanent crashes. Serial — churn
  /// events are rare and hook order should be deterministic and documented.
  void apply_fault_events();

  /// Smallest round with a validly armed alarm of a live node, or kNoAlarm.
  /// Lazily discards stale bucket entries (alarms that were overwritten or
  /// whose node finished). O(1) amortized; serial (runs between rounds).
  [[nodiscard]] std::uint64_t next_alarm_round();

  /// Pops shard s's alarm buckets due at or before the current round,
  /// waking the nodes whose alarms are validly armed (one-shot: clears
  /// them).
  void collect_due_alarms(Shard& sh);

  const Graph* graph_;
  NetConfig config_;
  NodeId n_;
  unsigned id_bits_;
  unsigned header_bits_;
  std::size_t bandwidth_bits_;
  std::uint64_t round_ = 0;
  std::vector<std::unique_ptr<INode>> nodes_;
  std::vector<NodeState> states_;

  // CSR mirror of the communication graph's directed edges. Edge
  // e = edge_base_[v] + ni is v's ni-th outgoing link; reverse_index_[e] is
  // the index of v in the *target's* adjacency list, precomputed so a
  // delivery does no binary search; edge_owner_[e] recovers v from e.
  std::vector<std::size_t> edge_base_;     // n+1 offsets
  std::vector<NodeId> edge_owner_;         // 2m
  std::vector<std::size_t> reverse_index_; // 2m

  // Shared iota [0, max_degree) so open_stream_all needs no allocation.
  std::vector<std::size_t> iota_;

  // Membership flags for the per-shard active sets (2m; an edge is only
  // ever touched by its owner's shard).
  std::vector<std::uint8_t> link_active_;

  // The shard partition (contiguous node ranges balanced by degree), the
  // shards themselves, and the fixed pool (absent when threads = 1).
  ShardPlan plan_;
  std::vector<Shard> shards_;
  std::unique_ptr<ShardPool> pool_;

  // Fault engine (null for the default fault-free plan). When active, even
  // a 1-shard network takes the staged two-phase round so the loss/delay/
  // churn decision points exist exactly once, in the stage and deliver
  // phases.
  std::unique_ptr<FaultEngine> faults_;

  // Reliability engine (null when NetConfig::reliability is off). Same
  // rule as faults_: an active service forces the staged path so the
  // per-message decision point is unique.
  std::unique_ptr<ReliabilityEngine> rel_;

  // Engine profile partials, accumulated only when config_.profile is set
  // and flushed into *config_.profile at the end of run()/run_rounds().
  NetProfile prof_;

  /// Publishes prof_ (plus the arenas' current high-water marks and the
  /// shards' peak counters) into *config_.profile. No-op when unprofiled.
  void flush_profile();

  // Telemetry engine (null unless NetConfig::telemetry requests a facet
  // and attaches a sink — the zero-cost-when-off contract is this null
  // check). Unlike faults_/rel_, an active engine never changes the
  // round pipeline's path choice: the fused fast path stays fused.
  std::unique_ptr<TelemetryEngine> telem_;

  // Wall-clock offset helper state for trace spans: nanoseconds-since-
  // epoch captured at construction (only when tracing; the engine itself
  // never reads a clock).
  std::uint64_t telem_epoch_ns_ = 0;

  /// Serial end-of-round telemetry drain: folds the shards' per-round
  /// partials and spans into the engine (ascending shard order) and closes
  /// the round's sampling window. Called only when telem_ is non-null.
  void round_telemetry(double ts_us);

  /// Copies the run echo and probe series into the telemetry sink. No-op
  /// when telemetry is off.
  void flush_telemetry();

  // Stall-diagnostics breadcrumb, maintained unconditionally (two integer
  // ops per round): the last round whose deliver phase handed a message to
  // a node, and the messages total it was detected at.
  std::uint64_t last_delivery_round_ = 0;
  std::uint64_t last_delivery_messages_ = 0;

  RunStats stats_;
};

template <typename Fn>
void NodeApi::for_each_in(std::uint16_t kind, Fn&& fn) {
  net_->states_[id_].inbox.for_each(kind, std::forward<Fn>(fn));
}

}  // namespace nc
