#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/accounting.hpp"
#include "runtime/faults.hpp"
#include "util/ids.hpp"
#include "util/paramset.hpp"

namespace nc {

/// Wire kinds of the reliability service's control traffic. They live at the
/// top of the 5-bit kind space, far away from the protocol's MsgKind range
/// (src/core/protocol.hpp, 1..17), so a future protocol kind can never
/// collide with them; the static_assert and nclint's msgkind-budget rule
/// both pin them inside the header field. The kinds exist for accounting
/// (bits_by_kind) and wire-format golden tests — the engine resolves the
/// control exchanges in closed form, so no InStream ever carries them.
enum RelMsgKind : std::uint16_t {
  kRelAck = 30,     ///< per-message ACK on the reverse edge (ARQ mode)
  kRelRepair = 31,  ///< k-of-n repair chunk at a stream-window close (FEC)
};

static_assert(kRelRepair < kMaxMsgKinds,
              "RelMsgKind range exceeds the 5-bit wire header kind field");

/// Declarative description of the link-reliability service layered between
/// the stage and deliver phases (NetConfig::reliability, beside the
/// FaultPlan it compensates). Two modes:
///
///   - kAck: per-stream ACK + retransmission. Every delivered message is
///     acknowledged on the reverse edge; a lost message is retransmitted on
///     a fixed attempt schedule (ack_timeout rounds apart, at most max_retx
///     attempts — the bounded retransmit buffer) until an ACK comes back.
///     Recovered messages arrive late; the per-edge delivery floor keeps the
///     link FIFO (a message staged after a loss never overtakes the
///     retransmitted recovery).
///   - kFec: erasure coding over a stream window, the zero-round-trip
///     alternative. Each directed edge's traffic is grouped into windows of
///     fec_window consecutive rounds; at window close the sender emits
///     fec_repair repair chunks, and a window with at most that many
///     surviving repairs' worth of losses is recovered in full. Messages
///     staged behind an in-window loss are parked (receiver-side in-order
///     release) and the whole window is released, in stream order, the
///     round after it closes.
///
/// Determinism contract (the same one FaultPlan states): every reliability
/// decision — retransmit survival, ACK survival, repair survival — is a
/// pure keyed hash of (reliability seed, salt, schedule point, src, dst),
/// never a draw tied to iteration order, so fixed-seed runs are
/// bit-identical at every NetConfig::threads value. Retransmit and ACK
/// attempts deliberately use the fault plan's *marginal* loss rate via
/// stateless draws rather than the Gilbert–Elliott chain: the chain's lazy
/// per-edge state is monotone in round and owned by the forward edge's
/// source shard, so it can be advanced neither at future attempt rounds nor
/// for the reverse edge without breaking the thread-invariance guarantee.
struct ReliabilityPlan {
  enum class Mode : std::uint32_t { kOff = 0, kAck = 1, kFec = 2 };
  Mode mode = Mode::kOff;

  /// ARQ: rounds between retransmission attempts (the ACK timer), >= 1.
  std::uint64_t ack_timeout = 2;

  /// ARQ: retransmission attempts per message before the sender frees the
  /// buffer slot and the loss becomes permanent (charged to messages_lost).
  std::uint64_t max_retx = 8;

  /// FEC: stream-window length in rounds, >= 1. Window w covers rounds
  /// (w*fec_window, (w+1)*fec_window]; resolution happens at the next
  /// executed round after the close.
  std::uint64_t fec_window = 4;

  /// FEC: repair chunks emitted per closed window that carried data. A
  /// window is recovered iff its losses <= its surviving repairs.
  std::uint64_t fec_repair = 2;

  /// Seed of the reliability decision stream. 0 = derive from the network
  /// seed (re-seeding the run re-seeds the timers with it); any other value
  /// pins the control-plane randomness independently.
  std::uint64_t rel_seed = 0;

  [[nodiscard]] bool any() const noexcept { return mode != Mode::kOff; }

  /// Throws std::invalid_argument on a zero timer/window or an unknown mode.
  void validate() const;

  /// One-line "ack(timeout=2,retx=8)" / "fec(window=4,repair=2)" rendering.
  [[nodiscard]] std::string summary() const;
};

/// The complete legal reliability parameter set with its default (off)
/// values: rel_mode, rel_ack_timeout, rel_max_retx, rel_fec_window,
/// rel_fec_repair, rel_seed. Network algorithms splice these keys into
/// their declared defaults exactly like the fault keys, so reliability
/// knobs ride the param-bag validation, --algo-params, sweep axes and
/// spec files unchanged.
const ParamSet& reliability_param_defaults();

/// Reads a ReliabilityPlan from a param bag holding (a subset of) the
/// declared keys, validates it and returns it.
ReliabilityPlan reliability_plan_from_params(const ParamSet& params);

/// Parses a "rel_mode=1,rel_ack_timeout=2" CSV against the declared key set
/// (unknown keys throw with the catalogue). The `--reliability=` front end.
ReliabilityPlan parse_reliability_plan(const std::string& csv);

/// Per-execution reliability machinery: closed-form ACK/retransmit
/// resolution, FEC window bookkeeping and the per-edge delivery floor that
/// keeps recovered traffic FIFO. Owned by Network when the plan is active.
///
/// Threading: every mutating method takes a directed edge and must only be
/// called from the edge's owning (source) shard — the stage phase's natural
/// call site, the same ownership rule FaultEngine::lose obeys. The engine
/// charges its control-plane accounting (retransmissions, ACKs, repairs,
/// control bits) into the caller's per-shard RunStats partial, so the
/// end-of-round merge stays exact and thread-count-invariant.
class ReliabilityEngine {
 public:
  /// "Never recovered" sentinel (same value as Network's kNoAlarm).
  static constexpr std::uint64_t kNever = ~0ULL;

  /// `faults` may be null (reliability over a clean channel still pays the
  /// control-plane cost — the honest baseline column). `header_bits` sizes
  /// an ACK (header-only: FIFO streams need no sequence number), and
  /// `bandwidth_bits` sizes a repair chunk (a full CONGEST slot, the honest
  /// upper bound for a parity block over the window's messages).
  ReliabilityEngine(const ReliabilityPlan& plan, const FaultPlan& fault_plan,
                    const FaultEngine* faults, std::size_t directed_edges,
                    unsigned header_bits, std::size_t bandwidth_bits,
                    std::uint64_t net_seed);

  [[nodiscard]] const ReliabilityPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool arq() const noexcept {
    return plan_.mode == ReliabilityPlan::Mode::kAck;
  }
  [[nodiscard]] bool fec() const noexcept {
    return plan_.mode == ReliabilityPlan::Mode::kFec;
  }

  /// Per-edge delivery floor: the earliest round at which the next message
  /// on the edge may be delivered. Raised by every scheduled delivery and
  /// by recoveries/releases, so reliability traffic can never overtake the
  /// stream (the wire format carries no sequence numbers). The floor
  /// complements FaultEngine's delay watermark; the stage path takes the
  /// max of both.
  [[nodiscard]] std::uint64_t floor_of(std::size_t edge) const noexcept {
    return floor_[edge];
  }
  void raise_floor(std::size_t edge, std::uint64_t round) noexcept {
    if (round > floor_[edge]) floor_[edge] = round;
  }

  /// ARQ, delivered first transmission: resolves the ACK leg in closed
  /// form. The common case (ACK survives) charges one ACK; a lost ACK
  /// triggers spurious retransmissions on the attempt schedule — duplicates
  /// the receiver discards but the wire still carries — until an ACK lands
  /// or the attempt budget runs out. Charges acks_sent,
  /// messages_retransmitted and the control/duplicate bits into `t`.
  void arq_account_delivered(std::size_t edge, NodeId src, NodeId dst,
                             std::uint64_t round, std::uint16_t kind,
                             std::uint64_t wire_bits, RunStats& t);

  /// ARQ, lost first transmission: resolves the whole retransmission
  /// exchange in closed form. Returns the recovery round (the attempt round
  /// of the first surviving resend; the caller stages the message for it
  /// through the ordinary delayed-delivery path) or kNever when every
  /// attempt was exhausted (the caller charges messages_lost). Attempt
  /// survival uses the plan's marginal loss rate and respects churn: an
  /// attempt scheduled while either endpoint is crashed is silenced.
  [[nodiscard]] std::uint64_t arq_recover(std::size_t edge, NodeId src,
                                          NodeId dst, std::uint64_t round,
                                          std::uint16_t kind,
                                          std::uint64_t wire_bits,
                                          RunStats& t);

  /// FEC: accounts one staged message on `edge` in `round` and decides its
  /// fate. Maintains the edge's window state (lazily closing the previous
  /// window — charging its repair chunks — when the round crossed a window
  /// boundary). Returns true when the message must be *parked* (the edge
  /// has an unresolved in-window loss, or this message is the loss that
  /// opens one); `*first_park` reports whether this park opened the edge's
  /// pending window (the caller registers the edge once).
  [[nodiscard]] bool fec_on_message(std::size_t edge, NodeId src, NodeId dst,
                                    std::uint64_t round, bool lost,
                                    RunStats& t, bool* first_park);

  /// FEC: true when `edge`'s pending window closed before `round` and must
  /// be resolved now.
  [[nodiscard]] bool fec_due(std::size_t edge,
                             std::uint64_t round) const noexcept {
    return fec_win_[edge] != 0 && fec_win_[edge] * plan_.fec_window < round;
  }

  /// FEC: first round at which `edge`'s pending window is due (feeds the
  /// round loop's liveness/fast-forward logic, like next_delayed_round).
  [[nodiscard]] std::uint64_t fec_close_round(std::size_t edge) const noexcept {
    return fec_win_[edge] * plan_.fec_window + 1;
  }

  /// FEC: resolves `edge`'s pending window against `losses` parked losses.
  /// Draws the repair survivals (keyed on the window index, so lazy
  /// evaluation order is invisible), charges the window's repair chunks and
  /// control bits into `t`, clears the edge's window state and returns
  /// whether the window recovered (losses <= surviving repairs).
  [[nodiscard]] bool fec_resolve(std::size_t edge, NodeId src, NodeId dst,
                                 std::uint64_t losses, RunStats& t);

 private:
  /// Marginal per-message loss probability of a directed (src, dst)
  /// channel: the plan's iid loss composed with the Gilbert–Elliott
  /// stationary marginal and the targeted loss hook (if any).
  [[nodiscard]] double loss_marginal(NodeId src, NodeId dst) const;

  /// True when either endpoint is crashed at `round` (no churn model: false).
  [[nodiscard]] bool silenced(NodeId src, NodeId dst,
                              std::uint64_t round) const;

  /// Charges the repair chunks of window `w` on `edge` (fec_cnt_ data
  /// messages; no-op for an empty window) and resets the counter.
  void charge_repairs(std::size_t edge, NodeId src, NodeId dst,
                      std::uint64_t w, RunStats& t);

  ReliabilityPlan plan_;
  FaultPlan fault_plan_;
  const FaultEngine* faults_;  ///< null on a clean channel
  std::uint64_t seed_;
  double base_marginal_ = 0.0;  ///< hook-free channel loss marginal
  std::uint64_t ack_bits_ = 0;
  std::uint64_t repair_bits_ = 0;

  std::vector<std::uint64_t> floor_;  ///< per-directed-edge delivery floor

  // FEC per-directed-edge window state (allocated in FEC mode only):
  // fec_win_ holds the pending/current window index + 1 (0 = none),
  // fec_cnt_ the data messages staged in it, fec_blocked_ whether the
  // window holds a parked loss (head-of-line blocking).
  std::vector<std::uint64_t> fec_win_;
  std::vector<std::uint32_t> fec_cnt_;
  std::vector<std::uint8_t> fec_blocked_;
};

}  // namespace nc
